package sprout

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sprout/internal/board"
	"sprout/internal/ckt"
	"sprout/internal/drc"
	"sprout/internal/extract"
	"sprout/internal/geom"
	"sprout/internal/manual"
	"sprout/internal/obs"
	"sprout/internal/route"
	"sprout/internal/sparse"
)

// Re-exported names so downstream users interact with one import.
type (
	// Board is the routing problem description (outline, stackup, nets,
	// terminal groups, obstacles, design rules).
	Board = board.Board
	// Net is one power rail.
	Net = board.Net
	// NetID identifies a rail.
	NetID = board.NetID
	// TerminalGroup is an electrically common pad cluster.
	TerminalGroup = board.TerminalGroup
	// Stackup is the layer stack.
	Stackup = board.Stackup
	// Layer is one metal layer.
	Layer = board.Layer
	// DesignRules are the clearance and tiling rules.
	DesignRules = board.DesignRules
	// RouteConfig tunes the SPROUT pipeline.
	RouteConfig = route.Config
	// RouteResult is a routed net.
	RouteResult = route.Result
	// ExtractReport is an extracted impedance report.
	ExtractReport = extract.Report
	// PDNModel is the lumped rail model for transient analysis.
	PDNModel = ckt.PDNModel
	// Decap is a decoupling capacitor model.
	Decap = ckt.Decap
	// Tracer is the observability tracer; attach one to the context with
	// WithTracer to record spans, events, counters and histograms.
	Tracer = obs.Tracer
	// SolveStats summarizes solver-fallback-ladder telemetry.
	SolveStats = sparse.SolveStats
	// RunReport is the machine-readable run summary embedded in results.
	RunReport = obs.RunReport
)

// NewTracer returns an enabled tracer (see the obs package for options).
func NewTracer() *Tracer { return obs.New() }

// WithTracer attaches a tracer to the context so RouteBoardCtx (and every
// pipeline stage under it) records spans and solver telemetry.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return obs.WithTracer(ctx, t)
}

// NewBoard validates and constructs a Board.
func NewBoard(name string, outline geom.Rect, stackup Stackup, rules DesignRules) (*Board, error) {
	return board.New(name, outline, stackup, rules)
}

// DefaultDecap returns a typical 10 µF MLCC decoupling capacitor model.
func DefaultDecap() Decap { return ckt.DefaultDecap() }

// Profile is a swept PDN impedance profile Z(f).
type Profile = ckt.Profile

// TargetMask is a piecewise impedance limit |Z(f)| <= mask(f).
type TargetMask = ckt.TargetMask

// MaskReport is the outcome of checking a profile against a target mask.
type MaskReport = ckt.MaskReport

// RailProfile sweeps the impedance profile of an extracted rail with its
// decaps from fMin to fMax (log spaced, pointsPerDecade samples) — the
// quantity the paper's Fig. 1 flow compares against the target impedance.
func RailProfile(rep *extract.Report, net board.Net, decaps []ckt.Decap, fMin, fMax float64, pointsPerDecade int) (Profile, error) {
	if rep == nil {
		return nil, fmt.Errorf("sprout: nil extraction report")
	}
	iload := net.Current
	if iload <= 0 {
		iload = 1
	}
	slew := net.SlewTimeNS
	if slew <= 0 {
		slew = 1
	}
	model := ckt.PDNModel{
		VSupply: 1,
		ROhms:   rep.ResistanceOhms,
		LHenry:  rep.InductancePH * 1e-12,
		Decaps:  decaps,
		ILoad:   iload,
		SlewNS:  slew,
	}
	return model.ImpedanceProfile(fMin, fMax, pointsPerDecade)
}

// TargetImpedance builds the flat Vdd·ripple/Imax target mask.
func TargetImpedance(vdd, ripplePct, iMax float64) (TargetMask, error) {
	return ckt.TargetFromRLC(vdd, ripplePct, iMax)
}

// Violation is a design-rule audit finding.
type Violation = drc.Violation

// DRCLimits configures the Audit checks.
type DRCLimits = drc.Limits

// Audit runs the design-rule audit over a routed board: clearance,
// containment, blockages, terminal connectivity, minimum width, area
// budgets and current density. Zero-valued limits inherit the board's
// rules (clearance) and a one-tile budget slack.
func Audit(res *BoardResult, lim DRCLimits) []Violation {
	if lim.Clearance == 0 {
		lim.Clearance = res.Board.Rules.Clearance
	}
	if lim.BudgetSlack == 0 {
		lim.BudgetSlack = res.Board.Rules.TileDX * res.Board.Rules.TileDY
	}
	routed := map[string]drc.RoutedNet{}
	for _, rail := range res.Rails {
		if rail.Route == nil {
			continue // unrouted rail: nothing to audit
		}
		routed[rail.Name] = drc.RoutedNet{
			Copper:  rail.Route.Shape,
			Budget:  rail.Budget,
			Extract: rail.Extract,
		}
	}
	return drc.AuditBoard(res.Board, res.Layer, routed, lim)
}

// RailDiag records what went wrong (if anything) while routing one rail.
// With RouteOptions.FailFast disabled, a failing rail does not abort the
// board: the failure lands here and the board result still carries every
// other rail.
type RailDiag struct {
	// Err is the failure that prevented the full pipeline (or its
	// extraction / manual baseline) from completing for this rail. Nil for
	// a healthy rail.
	Err error
	// Degraded marks a rail whose Route is the seed-only fallback (paper
	// Alg. 2) because the full grow/refine pipeline failed.
	Degraded bool
}

// Failed reports whether the rail recorded any failure.
func (d RailDiag) Failed() bool { return d.Err != nil }

// RailResult bundles everything produced for one routed rail.
type RailResult struct {
	Net    board.NetID
	Name   string
	Budget int64
	// Route is the SPROUT synthesis result. With FailFast disabled it may
	// be the degraded seed-only route (Diag.Degraded) or nil when even the
	// seed stage failed (Diag.Err then says why).
	Route *route.Result
	// Extract is the impedance report of the SPROUT shape (nil when
	// extraction was skipped or failed; see Diag).
	Extract *extract.Report
	// Manual and ManualExtract hold the manual-baseline comparison when
	// requested (paper Tables II-III).
	Manual        *manual.Result
	ManualExtract *extract.Report
	// Solve summarizes the solver-fallback-ladder telemetry across every
	// nodal analysis of this rail's pipeline — successful solves included,
	// so escalations that recovered are still visible.
	Solve SolveStats
	// Diag carries this rail's failure record.
	Diag RailDiag
}

// BoardResult is the output of RouteBoard.
type BoardResult struct {
	Board *board.Board
	Layer int
	Rails []RailResult
	// Report is the machine-readable run summary: per-rail stage
	// durations, solver telemetry, impedance, and degradation flags
	// (plus tracer metrics when the run was traced).
	Report *obs.RunReport
}

// FailedRails lists the rails that recorded a failure (degraded or
// unrouted).
func (r *BoardResult) FailedRails() []RailResult {
	var out []RailResult
	for _, rail := range r.Rails {
		if rail.Diag.Failed() {
			out = append(out, rail)
		}
	}
	return out
}

// RouteOptions configures a board-level routing run.
type RouteOptions struct {
	// Layer is the routing layer (1-indexed).
	Layer int
	// Budgets maps each net to its metal-area budget A_max. Nets without
	// an entry use the router default (4x seed area).
	Budgets map[board.NetID]int64
	// Config tunes the per-net SPROUT pipeline; AreaMax inside it is
	// overridden by Budgets.
	Config route.Config
	// WithManual also routes each rail with the manual-designer baseline
	// at the same area budget and extracts it.
	WithManual bool
	// ExtractPitch overrides the extraction re-tiling pitch (0 = default).
	ExtractPitch int64
	// SkipExtract disables impedance extraction (routing-only runs).
	SkipExtract bool
	// Order overrides the sequential routing order (default: net id
	// order). Earlier nets get first claim on the shared space.
	Order []board.NetID
	// FailFast aborts RouteBoard on the first rail failure, restoring the
	// historical all-or-nothing behavior. When false (the default), a
	// failing rail degrades to its seed-only route (or is skipped when even
	// the seed fails), the failure is recorded in the rail's Diag, and the
	// remaining rails are still routed. Context cancellation always aborts
	// regardless of this switch.
	FailFast bool
	// ExploreWorkers bounds the order explorer's worker pool (0 =
	// runtime.GOMAXPROCS(0)). Only ExploreNetOrdersCtx reads it.
	ExploreWorkers int
	// ExploreSequential forces the retained sequential explorer path —
	// one order at a time, no prefix sharing. The parallel explorer is
	// provably equivalent (see the differential suite), so this is a
	// debugging/benchmarking escape hatch, not a correctness switch.
	ExploreSequential bool
	// ExploreNoPrefixCache disables prefix-tree memoization in the
	// parallel explorer: every order routes from scratch on its own
	// branch. For benchmarking the memoization win in isolation.
	ExploreNoPrefixCache bool
	// ExploreAllOrders explores every permutation regardless of net count
	// (the default switches to rotations above four nets). Combine with
	// ExploreMaxOrders to bound the sweep.
	ExploreAllOrders bool
	// ExploreMaxOrders truncates the enumeration after this many orders
	// (0 = unbounded). Orders are enumerated deterministically, so a
	// truncated sweep is a reproducible prefix of the full one.
	ExploreMaxOrders int
	// ExploreCheckpointEvery emits a durable checkpoint of the parallel
	// explorer's frontier after every N settled orders (0 = never). A
	// later run handed the checkpoint via ExploreResume replays the
	// settled prefix verbatim and routes only the remainder. The
	// sequential explorer ignores checkpointing entirely.
	ExploreCheckpointEvery int
	// ExploreCheckpointSink receives each emitted checkpoint. Sink
	// failures are counted but never fail the sweep — a checkpoint is an
	// optimization, not a correctness dependency.
	ExploreCheckpointSink func(*ExploreCheckpoint) error
	// ExploreResume seeds the sweep from a previously emitted checkpoint.
	// A checkpoint whose fingerprint does not match the current board,
	// options, and enumeration is rejected (counted, logged) and the
	// sweep restarts from scratch.
	ExploreResume *ExploreCheckpoint
}

// RouteBoard synthesizes every net of the board without cancellation
// support; see RouteBoardCtx.
func RouteBoard(b *board.Board, opt RouteOptions) (*BoardResult, error) {
	return RouteBoardCtx(context.Background(), b, opt)
}

// RouteBoardCtx synthesizes every net of the board on the chosen layer,
// sequentially: once a rail is routed, its copper (plus clearance) is
// removed from the available space of the remaining rails (paper §II-G:
// "it is crucial to remove the routed polygon from the available space of
// other nets"). Nets are processed in id order.
//
// Failure semantics: internal panics are converted to *PanicError; a
// cancelled or expired context aborts with ctx.Err(); and unless
// opt.FailFast is set, a rail whose pipeline fails is isolated — degraded
// to its seed-only route where possible — with the failure recorded in
// its RailResult.Diag. An error is returned only when no rail routed at
// all.
func RouteBoardCtx(ctx context.Context, b *board.Board, opt RouteOptions) (result *BoardResult, err error) {
	defer recoverToError(&err)
	start := time.Now()
	ctx, rootSp := obs.StartSpan(ctx, "RouteBoard",
		obs.A("board", b.Name), obs.A("layer", opt.Layer))
	defer func() {
		rootSp.Fail(err)
		rootSp.End()
	}()
	run, err := newBoardRun(b, opt)
	if err != nil {
		return nil, err
	}
	nets, err := resolveOrder(b, opt.Order)
	if err != nil {
		return nil, err
	}
	state := newRouteState()
	for _, net := range nets {
		state, err = run.routeNext(ctx, state, net)
		if err != nil {
			return nil, err
		}
	}
	return run.finalize(ctx, state, start)
}

// isCtxErr reports whether err stems from context cancellation or
// deadline expiry — failures that must abort the whole board rather than
// degrade a rail.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// railTerminals converts a net's terminal groups on the layer into routing
// terminals.
func railTerminals(b *board.Board, net board.NetID, layer int) ([]route.Terminal, error) {
	groups := b.GroupsOn(net, layer)
	terms := make([]route.Terminal, 0, len(groups))
	for _, g := range groups {
		terms = append(terms, route.Terminal{
			Name:    g.Name,
			Shape:   g.Shape(),
			Current: g.Current,
		})
	}
	return terms, nil
}

func termPads(terms []route.Terminal) geom.Region {
	u := geom.EmptyRegion()
	for _, t := range terms {
		u = u.Union(t.Shape)
	}
	return u
}

// RailAnalysis is the Fig. 12c/d system-level view of one extracted rail.
type RailAnalysis struct {
	MinLoadVoltage float64 // volts (Fig. 12c)
	EffLInductPH   float64 // effective inductance @ 25 MHz incl. decaps (Fig. 12b)
	DelayNorm      float64 // normalized FinFET propagation delay (Fig. 12d)
	PowerNorm      float64 // normalized dynamic power at the minimum voltage
}

// AnalyzeRail runs the transient and AC PDN analysis for an extracted rail
// using the paper's modelling chain: extracted R/L + decaps + ramped load,
// then the 32 nm FinFET guideline at the minimum load voltage.
func AnalyzeRail(rep *extract.Report, net board.Net, vSupply float64, decaps []ckt.Decap) (*RailAnalysis, error) {
	if rep == nil {
		return nil, fmt.Errorf("sprout: nil extraction report")
	}
	model := ckt.PDNModel{
		VSupply: vSupply,
		ROhms:   rep.ResistanceOhms,
		LHenry:  rep.InductancePH * 1e-12,
		Decaps:  decaps,
		ILoad:   net.Current,
		SlewNS:  net.SlewTimeNS,
		// A 100 nF package-level capacitance: enough to damp the numerical
		// ringing but small enough that the board-level inductance governs
		// the droop, as in the paper's Fig. 12c study.
		CLoadF:   100e-9,
		CLoadESR: 0.005,
	}
	vmin, err := model.MinLoadVoltage()
	if err != nil {
		return nil, fmt.Errorf("sprout: rail %s transient: %w", net.Name, err)
	}
	leff, err := model.EffectiveInductancePH(25e6)
	if err != nil {
		return nil, fmt.Errorf("sprout: rail %s AC: %w", net.Name, err)
	}
	fin := ckt.DefaultFinFET()
	delay, err := fin.Delay(vmin)
	if err != nil {
		return nil, fmt.Errorf("sprout: rail %s delay: %w", net.Name, err)
	}
	return &RailAnalysis{
		MinLoadVoltage: vmin,
		EffLInductPH:   leff,
		DelayNorm:      delay,
		PowerNorm:      fin.DynamicPower(vmin),
	}, nil
}
