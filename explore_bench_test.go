package sprout_test

// Explorer benchmarks: the same 24-order sweep of the six-rail board
// through the sequential reference path and the parallel prefix-tree
// path, with the cache on and off. On a single-core runner the speedup
// comes almost entirely from memoization — the permutation tree routes
// each shared prefix once — so the cache/nocache split isolates that
// effect from pool scheduling. Custom metrics report the cache traffic:
// rail-routes/op is the number of rail routes actually performed,
// prefix-hits/op the number a sequential sweep would have repeated.
//
// Committed results live in BENCH_pr5.json; regenerate with
//
//	go test -run='^$' -bench=BenchmarkExplore -benchtime=1x -count=3 .

import (
	"testing"

	"sprout"
	"sprout/internal/cases"
)

// benchExploreOptions is the full factorial sweep of the first four
// six-rail nets (lexicographic truncation at 24 orders = 4! complete
// subtrees), the same workload pinned in BENCH_pr5.json.
func benchExploreOptions(cs *cases.CaseStudy) sprout.RouteOptions {
	return sprout.RouteOptions{
		Layer:            cs.RoutingLayer,
		Budgets:          cs.Budgets,
		Config:           cs.Config,
		ExploreAllOrders: true,
		ExploreMaxOrders: 24,
	}
}

func benchExplore(b *testing.B, opt func(*cases.CaseStudy) sprout.RouteOptions) {
	b.Helper()
	cs, err := cases.SixRail()
	if err != nil {
		b.Fatal(err)
	}
	o := opt(cs)
	b.ReportAllocs()
	b.ResetTimer()
	var stats sprout.ExploreStats
	for i := 0; i < b.N; i++ {
		ex, err := sprout.ExploreNetOrders(cs.Board, o)
		if err != nil {
			b.Fatal(err)
		}
		if ex.Best == nil {
			b.Fatal("no winner")
		}
		stats = ex.Stats
	}
	b.ReportMetric(float64(stats.Orders), "orders/op")
	if stats.Parallel {
		b.ReportMetric(float64(stats.PrefixHits), "prefix-hits/op")
		b.ReportMetric(float64(stats.PrefixMisses), "rail-routes/op")
	}
}

func BenchmarkExploreSequential(b *testing.B) {
	benchExplore(b, func(cs *cases.CaseStudy) sprout.RouteOptions {
		o := benchExploreOptions(cs)
		o.ExploreSequential = true
		return o
	})
}

func BenchmarkExploreParallel(b *testing.B) {
	b.Run("cache", func(b *testing.B) {
		benchExplore(b, benchExploreOptions)
	})
	b.Run("nocache", func(b *testing.B) {
		benchExplore(b, func(cs *cases.CaseStudy) sprout.RouteOptions {
			o := benchExploreOptions(cs)
			o.ExploreNoPrefixCache = true
			return o
		})
	})
}
