package sprout

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"sprout/internal/extract"
	"sprout/internal/faultinject"
	"sprout/internal/geom"
	"sprout/internal/sparse"
)

// sampleCheckpoint is a frontier with every field class populated: a
// winner with routed rails, a failure, and plain scored orders.
func sampleCheckpoint() *ExploreCheckpoint {
	return &ExploreCheckpoint{
		OrdersHash: "abc123",
		Orders:     6,
		Done:       3,
		Settled: []CheckpointOrder{
			{Index: 0, Score: 2.25},
			{Index: 1, Failed: true, Err: "route: net stranded", Kind: "route", FailedNet: 1},
			{Index: 2, Score: 1.5},
		},
		BestIndex: 2,
		BestScore: 1.5,
		Best: &CheckpointState{
			Rails: []CheckpointRail{{
				Net: 0, Name: "VDD", Budget: 2200,
				Route: &CheckpointRoute{
					Shape:          []geom.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}},
					Resistance:     0.125,
					PairResistance: []float64{0.125},
					Solve:          sparse.SolveStats{Solves: 3, Iterations: 40},
				},
				Extract: &extract.Report{Nodes: 12, ResistanceOhms: 0.25},
				Solve:   sparse.SolveStats{Solves: 3, Iterations: 40},
			}},
			SproutCopper: []geom.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}},
		},
	}
}

func TestCheckpointFrameRoundTrip(t *testing.T) {
	for name, ck := range map[string]*ExploreCheckpoint{
		"with_best": sampleCheckpoint(),
		"all_failed": {
			OrdersHash: "def456", Orders: 2, Done: 1,
			Settled:   []CheckpointOrder{{Index: 0, Failed: true, Err: "boom", Kind: "route"}},
			BestIndex: -1,
		},
	} {
		frame, err := EncodeCheckpoint(ck)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeCheckpoint(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(ck, got) {
			t.Fatalf("%s: round trip diverged:\n want %+v\n got  %+v", name, ck, got)
		}
	}
}

func TestCheckpointDecodeRejectsDamage(t *testing.T) {
	frame, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	mutate := map[string]func([]byte) []byte{
		"empty":     func(f []byte) []byte { return nil },
		"truncated": func(f []byte) []byte { return f[:len(f)/2] },
		"torn_tail": func(f []byte) []byte { return f[:len(f)-1] },
		"magic": func(f []byte) []byte {
			f[0] ^= 0xff
			return f
		},
		"version": func(f []byte) []byte {
			binary.LittleEndian.PutUint32(f[4:8], 99)
			return f
		},
		"length": func(f []byte) []byte {
			binary.LittleEndian.PutUint32(f[8:12], uint32(len(f)))
			return f
		},
		"payload_bit_rot": func(f []byte) []byte {
			f[len(f)-3] ^= 0x40
			return f
		},
		"crc_field": func(f []byte) []byte {
			f[12] ^= 0x01
			return f
		},
		"appended_garbage": func(f []byte) []byte { return append(f, 0xde, 0xad) },
	}
	for name, fn := range mutate {
		damaged := fn(append([]byte(nil), frame...))
		if _, derr := DecodeCheckpoint(damaged); derr == nil {
			t.Errorf("%s: damaged frame decoded cleanly", name)
		}
	}
}

// TestCheckpointDecodeRejectsInconsistentFrontier covers damage the CRC
// cannot catch: a well-formed frame whose payload lies about itself.
func TestCheckpointDecodeRejectsInconsistentFrontier(t *testing.T) {
	bad := map[string]func(*ExploreCheckpoint){
		"no_orders":      func(ck *ExploreCheckpoint) { ck.Orders = 0 },
		"done_past_end":  func(ck *ExploreCheckpoint) { ck.Done = ck.Orders + 1; ck.Settled = nil },
		"settled_len":    func(ck *ExploreCheckpoint) { ck.Settled = ck.Settled[:1] },
		"settled_index":  func(ck *ExploreCheckpoint) { ck.Settled[1].Index = 7 },
		"best_unsettled": func(ck *ExploreCheckpoint) { ck.BestIndex = 5 },
		"best_no_state":  func(ck *ExploreCheckpoint) { ck.Best = nil },
		"state_no_best":  func(ck *ExploreCheckpoint) { ck.BestIndex = -1 },
		"best_is_failed": func(ck *ExploreCheckpoint) { ck.BestIndex = 1 },
	}
	for name, corrupt := range bad {
		ck := sampleCheckpoint()
		corrupt(ck)
		// Encode skips validation on purpose (the explorer only emits
		// consistent frontiers); the decode side must reject.
		frame, err := EncodeCheckpoint(ck)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, derr := DecodeCheckpoint(frame); derr == nil {
			t.Errorf("%s: inconsistent frontier decoded cleanly", name)
		}
	}
}

func TestCheckpointDecodeFaultInjection(t *testing.T) {
	frame, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	defer faultinject.Reset()
	boom := errors.New("disk returned trash")
	faultinject.Arm(faultinject.SiteCkptDecode, 1, func() error { return boom })
	if _, derr := DecodeCheckpoint(frame); !errors.Is(derr, boom) {
		t.Fatalf("armed decode site: got %v, want %v", derr, boom)
	}
	if _, derr := DecodeCheckpoint(frame); derr != nil {
		t.Fatalf("disarmed decode: %v", derr)
	}
}

func TestOrdersFingerprint(t *testing.T) {
	b := resumeBoard(t)
	orders := [][]NetID{{0, 1}, {1, 0}}
	opt := RouteOptions{Layer: 1, Budgets: map[NetID]int64{0: 100, 1: 200}}
	base := ordersFingerprint(b, opt, orders)
	if base != ordersFingerprint(b, opt, orders) {
		t.Fatal("fingerprint not stable across calls")
	}
	diffBudget := RouteOptions{Layer: 1, Budgets: map[NetID]int64{0: 100, 1: 201}}
	if base == ordersFingerprint(b, diffBudget, orders) {
		t.Fatal("budget change did not change the fingerprint")
	}
	diffConfig := opt
	diffConfig.Config.RefineIters = 3
	if base == ordersFingerprint(b, diffConfig, orders) {
		t.Fatal("config change did not change the fingerprint")
	}
	if base == ordersFingerprint(b, opt, [][]NetID{{1, 0}, {0, 1}}) {
		t.Fatal("enumeration change did not change the fingerprint")
	}
}

// FuzzCheckpointDecode hardens the frame parser: arbitrary bytes must
// never panic, and anything that decodes cleanly must satisfy the
// frontier invariants and survive a re-encode round trip.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-2])           // torn tail
	f.Add(valid[:checkpointHeaderSize])   // header only
	f.Add([]byte(checkpointMagic))        // bare magic
	f.Add([]byte{})                       // empty
	f.Add(bytes.Repeat([]byte{0xa5}, 64)) // noise
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, derr := DecodeCheckpoint(data)
		if derr != nil {
			return
		}
		if verr := ck.validate(); verr != nil {
			t.Fatalf("decode accepted an invalid frontier: %v", verr)
		}
		re, rerr := EncodeCheckpoint(ck)
		if rerr != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %v", rerr)
		}
		if _, derr2 := DecodeCheckpoint(re); derr2 != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", derr2)
		}
	})
}
