package sprout_test

// Checkpoint-resume equivalence: a sweep resumed from a durable
// checkpoint must be bit-identical to the uninterrupted sweep — same
// winner, same per-order scores and failures, same rail polygons and
// resistances — while routing strictly fewer rails (the resumed prefix
// is replayed, not re-routed). Frames round-trip through the real
// Encode/Decode framing so the test covers what the server persists.

import (
	"context"
	"testing"

	"sprout"
	"sprout/internal/cases"
)

// threeRailExploreOpt is the shared sweep configuration: three nets, six
// lexicographic orders, checkpoint every second settled order.
func threeRailExploreOpt(t *testing.T) (*sprout.Board, sprout.RouteOptions) {
	t.Helper()
	cs, err := cases.ThreeRail(cases.Table4()[0])
	if err != nil {
		t.Fatal(err)
	}
	return cs.Board, sprout.RouteOptions{
		Layer:                  cs.RoutingLayer,
		Budgets:                cs.Budgets,
		Config:                 cs.Config,
		ExploreCheckpointEvery: 2,
	}
}

// captureCheckpoints runs a sweep whose sink frames every checkpoint
// through the real encoder, returning the decoded frames in emission
// order alongside the sweep result.
func captureCheckpoints(t *testing.T, b *sprout.Board, opt sprout.RouteOptions) (*sprout.OrderExploration, []*sprout.ExploreCheckpoint) {
	t.Helper()
	var cks []*sprout.ExploreCheckpoint
	opt.ExploreCheckpointSink = func(ck *sprout.ExploreCheckpoint) error {
		frame, err := sprout.EncodeCheckpoint(ck)
		if err != nil {
			t.Errorf("sink encode: %v", err)
			return err
		}
		decoded, err := sprout.DecodeCheckpoint(frame)
		if err != nil {
			t.Errorf("sink decode: %v", err)
			return err
		}
		cks = append(cks, decoded)
		return nil
	}
	out, err := sprout.ExploreNetOrders(b, opt)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return out, cks
}

func TestResumeFromCheckpointMatchesFull(t *testing.T) {
	b, opt := threeRailExploreOpt(t)
	full, cks := captureCheckpoints(t, b, opt)
	// Six orders, checkpoint every 2, final emission skipped: 2 and 4.
	if len(cks) != 2 {
		t.Fatalf("captured %d checkpoints, want 2", len(cks))
	}
	for i, want := range []int{2, 4} {
		if cks[i].Done != want {
			t.Fatalf("checkpoint %d settled %d orders, want %d", i, cks[i].Done, want)
		}
	}
	for _, ck := range cks {
		ck := ck
		resumeOpt := opt
		resumeOpt.ExploreResume = ck
		resumed, err := sprout.ExploreNetOrders(b, resumeOpt)
		if err != nil {
			t.Fatalf("resume at %d: %v", ck.Done, err)
		}
		sameExploration(t, full, resumed)
		if resumed.Stats.ResumedOrders != ck.Done {
			t.Fatalf("resume at %d: ResumedOrders = %d", ck.Done, resumed.Stats.ResumedOrders)
		}
		// The replayed prefix must not route: strictly fewer real rail
		// routes than the uninterrupted sweep performed.
		if resumed.Stats.PrefixMisses >= full.Stats.PrefixMisses {
			t.Fatalf("resume at %d routed %d rails, uninterrupted sweep routed %d — no work was saved",
				ck.Done, resumed.Stats.PrefixMisses, full.Stats.PrefixMisses)
		}
	}
}

func TestResumeFromCheckpointAfterCancel(t *testing.T) {
	b, opt := threeRailExploreOpt(t)
	full, _ := captureCheckpoints(t, b, opt)

	// Interrupted sweep: cancel as soon as the first checkpoint lands, as
	// a crash mid-sweep would. The checkpoint survives; the rest of the
	// run dies with the context.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *sprout.ExploreCheckpoint
	interrupted := opt
	interrupted.ExploreCheckpointSink = func(ck *sprout.ExploreCheckpoint) error {
		frame, err := sprout.EncodeCheckpoint(ck)
		if err != nil {
			return err
		}
		if last, err = sprout.DecodeCheckpoint(frame); err != nil {
			return err
		}
		cancel()
		return nil
	}
	if _, err := sprout.ExploreNetOrdersCtx(ctx, b, interrupted); err == nil {
		t.Fatal("cancelled sweep must return the context error")
	}
	if last == nil {
		t.Fatal("no checkpoint escaped the interrupted sweep")
	}

	resumeOpt := opt
	resumeOpt.ExploreResume = last
	resumed, err := sprout.ExploreNetOrders(b, resumeOpt)
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	sameExploration(t, full, resumed)
}

func TestResumeFromCheckpointRejectsMismatch(t *testing.T) {
	b, opt := threeRailExploreOpt(t)
	_, cks := captureCheckpoints(t, b, opt)
	if len(cks) == 0 {
		t.Fatal("no checkpoints captured")
	}

	// Change a budget: the fingerprint moves, the stale checkpoint must be
	// rejected, and the sweep must come out identical to a fresh one.
	changed := opt
	changed.Budgets = map[sprout.NetID]int64{}
	for id, v := range opt.Budgets {
		changed.Budgets[id] = v + 64
	}
	fresh, err := sprout.ExploreNetOrders(b, changed)
	if err != nil {
		t.Fatalf("fresh sweep: %v", err)
	}
	stale := changed
	stale.ExploreResume = cks[len(cks)-1]
	resumed, err := sprout.ExploreNetOrders(b, stale)
	if err != nil {
		t.Fatalf("sweep with stale checkpoint: %v", err)
	}
	if resumed.Stats.ResumedOrders != 0 {
		t.Fatalf("stale checkpoint resumed %d orders, want rejection", resumed.Stats.ResumedOrders)
	}
	sameExploration(t, fresh, resumed)
}

// TestResumeFromCheckpointSequentialIgnores pins the documented contract:
// the sequential reference path ignores checkpoint knobs entirely — no
// emission, no resume — so it stays the plain reference implementation.
func TestResumeFromCheckpointSequentialIgnores(t *testing.T) {
	b, opt := threeRailExploreOpt(t)
	opt.ExploreSequential = true
	calls := 0
	opt.ExploreCheckpointSink = func(*sprout.ExploreCheckpoint) error {
		calls++
		return nil
	}
	out, err := sprout.ExploreNetOrders(b, opt)
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	if calls != 0 {
		t.Fatalf("sequential path emitted %d checkpoints, want 0", calls)
	}
	if out.Stats.ResumedOrders != 0 {
		t.Fatalf("sequential path reported %d resumed orders", out.Stats.ResumedOrders)
	}
}
