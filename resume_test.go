package sprout

// Resume-equivalence: routing on top of a memoized prefix snapshot must
// equal routing the same order from scratch, and extending a snapshot
// must never mutate it. These are the two properties the parallel
// explorer's correctness rests on (DESIGN "Exploration scaling"); they
// are asserted here directly against the internal routeState API, with a
// fuzz harness exercising snapshot reuse across diverging suffixes.

import (
	"context"
	"fmt"
	"testing"

	"sprout/internal/board"
	"sprout/internal/geom"
)

// resumeBoard builds a three-net board where the nets compete for a
// narrow channel, so routing order genuinely changes the polygons — a
// board where snapshot reuse would be trivially correct proves nothing.
func resumeBoard(t testing.TB) *board.Board {
	t.Helper()
	stack := Stackup{Layers: []Layer{
		{Name: "L1", CopperUM: 35, DielectricBelowUM: 100},
		{Name: "L2", CopperUM: 35, DielectricBelowUM: 0, IsPlane: true},
	}}
	rules := DesignRules{Clearance: 2, TileDX: 5, TileDY: 5, ViaCost: 5}
	b, err := NewBoard("resume", geom.R(0, 0, 200, 160), stack, rules)
	if err != nil {
		t.Fatal(err)
	}
	// A wall with one 40-wide channel: whoever routes first claims it.
	if err := b.AddObstacle(board.NetNone, 1, geom.RegionFromRect(geom.R(90, 0, 110, 55))); err != nil {
		t.Fatal(err)
	}
	if err := b.AddObstacle(board.NetNone, 1, geom.RegionFromRect(geom.R(90, 95, 110, 160))); err != nil {
		t.Fatal(err)
	}
	addPair := func(name string, y int64) {
		id := b.AddNet(name, 3, 5)
		for _, g := range []struct {
			n string
			k board.TerminalKind
			r geom.Rect
		}{
			{"s", board.KindPMIC, geom.R(2, y, 10, y+12)},
			{"t", board.KindBGA, geom.R(190, y, 198, y+12)},
		} {
			if err := b.AddGroup(TerminalGroup{
				Name: g.n, Kind: g.k, Net: id, Layer: 1, Current: 1,
				Pads: []geom.Region{geom.RegionFromRect(g.r)},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	addPair("A", 52)
	addPair("B", 68)
	addPair("C", 84)
	return b
}

func resumeOptions() RouteOptions {
	return RouteOptions{
		Layer:    1,
		Budgets:  map[board.NetID]int64{0: 2400, 1: 2400, 2: 2400},
		Config:   RouteConfig{DX: 5, DY: 5},
		FailFast: true,
	}
}

// routeChain routes an order by chaining routeNext from the empty
// snapshot, returning every intermediate snapshot (index i = first i
// nets routed).
func routeChain(t testing.TB, run *boardRun, order []board.NetID) []*routeState {
	t.Helper()
	states := []*routeState{newRouteState()}
	for _, id := range order {
		n, err := run.b.Net(id)
		if err != nil {
			t.Fatal(err)
		}
		next, err := run.routeNext(context.Background(), states[len(states)-1], n)
		if err != nil {
			t.Fatalf("routeNext net %s: %v", n.Name, err)
		}
		states = append(states, next)
	}
	return states
}

// sameRails asserts two snapshots carry bit-identical rail results.
func sameRails(t testing.TB, label string, a, b *routeState) {
	t.Helper()
	if len(a.rails) != len(b.rails) {
		t.Fatalf("%s: %d rails vs %d", label, len(a.rails), len(b.rails))
	}
	for i := range a.rails {
		x, y := a.rails[i], b.rails[i]
		if x.Net != y.Net || x.Name != y.Name {
			t.Fatalf("%s: rail[%d] %s vs %s", label, i, x.Name, y.Name)
		}
		if (x.Route == nil) != (y.Route == nil) {
			t.Fatalf("%s: rail[%d] %s route presence differs", label, i, x.Name)
		}
		if x.Route != nil {
			if !x.Route.Shape.Equal(y.Route.Shape) {
				t.Fatalf("%s: rail[%d] %s polygon differs", label, i, x.Name)
			}
			if x.Route.Resistance != y.Route.Resistance {
				t.Fatalf("%s: rail[%d] %s resistance %v vs %v",
					label, i, x.Name, x.Route.Resistance, y.Route.Resistance)
			}
		}
		if (x.Extract == nil) != (y.Extract == nil) {
			t.Fatalf("%s: rail[%d] %s extract presence differs", label, i, x.Name)
		}
		if x.Extract != nil && x.Extract.ResistanceOhms != y.Extract.ResistanceOhms {
			t.Fatalf("%s: rail[%d] %s extraction %v vs %v",
				label, i, x.Name, x.Extract.ResistanceOhms, y.Extract.ResistanceOhms)
		}
	}
	if !a.sproutCopper.Equal(b.sproutCopper) {
		t.Fatalf("%s: claimed copper differs", label)
	}
}

// snapshotFingerprint captures what the immutability rule forbids
// changing: the rail count and the claimed copper regions.
type snapshotFingerprint struct {
	rails        int
	sproutCopper geom.Region
	manualCopper geom.Region
}

func fingerprint(s *routeState) snapshotFingerprint {
	return snapshotFingerprint{rails: len(s.rails), sproutCopper: s.sproutCopper, manualCopper: s.manualCopper}
}

func (f snapshotFingerprint) check(t testing.TB, label string, s *routeState) {
	t.Helper()
	if len(s.rails) != f.rails {
		t.Fatalf("%s: snapshot mutated: rails %d -> %d", label, f.rails, len(s.rails))
	}
	if !s.sproutCopper.Equal(f.sproutCopper) || !s.manualCopper.Equal(f.manualCopper) {
		t.Fatalf("%s: snapshot mutated: claimed copper changed", label)
	}
}

// TestResumeEquivalence routes every suffix of every 3-net permutation
// from a shared prefix snapshot and from scratch; the results must be
// bit-identical, and extending a snapshot must leave it untouched.
func TestResumeEquivalence(t *testing.T) {
	b := resumeBoard(t)
	opt := resumeOptions()
	run, err := newBoardRun(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	orders := lexPermutations([]board.NetID{0, 1, 2}, 0)
	for _, order := range orders {
		scratch := routeChain(t, run, order)
		full := scratch[len(scratch)-1]
		for split := 1; split < len(order); split++ {
			// Resume from the prefix snapshot of length `split`.
			prefix := scratch[split]
			fp := fingerprint(prefix)
			state := prefix
			for _, id := range order[split:] {
				n, err := b.Net(id)
				if err != nil {
					t.Fatal(err)
				}
				state, err = run.routeNext(context.Background(), state, n)
				if err != nil {
					t.Fatal(err)
				}
			}
			label := fmt.Sprintf("order %v split %d", order, split)
			sameRails(t, label, full, state)
			fp.check(t, label, prefix)
		}
	}
}

// TestResumeMatchesRouteBoard ties the internal chain to the public
// API: chaining routeNext must give exactly what RouteBoardCtx returns
// for the same order.
func TestResumeMatchesRouteBoard(t *testing.T) {
	b := resumeBoard(t)
	opt := resumeOptions()
	run, err := newBoardRun(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	order := []board.NetID{2, 0, 1}
	chain := routeChain(t, run, order)
	final := chain[len(chain)-1]

	ropt := opt
	ropt.Order = order
	res, err := RouteBoardCtx(context.Background(), b, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rails) != len(final.rails) {
		t.Fatalf("rails: %d vs %d", len(res.Rails), len(final.rails))
	}
	for i := range res.Rails {
		if !res.Rails[i].Route.Shape.Equal(final.rails[i].Route.Shape) {
			t.Fatalf("rail[%d] %s polygon differs from RouteBoardCtx", i, res.Rails[i].Name)
		}
		if res.Rails[i].Route.Resistance != final.rails[i].Route.Resistance {
			t.Fatalf("rail[%d] %s resistance differs from RouteBoardCtx", i, res.Rails[i].Name)
		}
	}
}

// FuzzResumeEquivalence drives snapshot reuse across diverging suffixes:
// a shared prefix snapshot is extended by two different suffix orders,
// and each result must match its from-scratch chain. The seeds cover
// both divergence points of a 3-net board.
func FuzzResumeEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(1))
	f.Add(uint8(2), uint8(4))
	f.Add(uint8(1), uint8(5))
	b := resumeBoard(f)
	opt := resumeOptions()
	run, err := newBoardRun(b, opt)
	if err != nil {
		f.Fatal(err)
	}
	orders := lexPermutations([]board.NetID{0, 1, 2}, 0)
	// Snapshots are deterministic, so from-scratch chains can be computed
	// once and reused across fuzz executions.
	chains := make([][]*routeState, len(orders))
	for i, order := range orders {
		chains[i] = routeChain(f, run, order)
	}
	f.Fuzz(func(t *testing.T, a, c uint8) {
		oa, oc := orders[int(a)%len(orders)], orders[int(c)%len(orders)]
		// Find the longest common prefix of the two orders and branch both
		// suffixes off the first order's snapshot at that point.
		split := 0
		for split < len(oa) && oa[split] == oc[split] {
			split++
		}
		if split == len(oa) {
			return // identical orders: nothing diverges
		}
		prefix := chains[int(a)%len(orders)][split]
		fp := fingerprint(prefix)
		for _, tc := range []struct {
			order []board.NetID
			chain []*routeState
		}{
			{oa, chains[int(a)%len(orders)]},
			{oc, chains[int(c)%len(orders)]},
		} {
			state := prefix
			for _, id := range tc.order[split:] {
				n, err := b.Net(id)
				if err != nil {
					t.Fatal(err)
				}
				state, err = run.routeNext(context.Background(), state, n)
				if err != nil {
					t.Fatal(err)
				}
			}
			sameRails(t, fmt.Sprintf("resume %v from split %d", tc.order, split),
				tc.chain[len(tc.chain)-1], state)
		}
		fp.check(t, "shared prefix", prefix)
	})
}
