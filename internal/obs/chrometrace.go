package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavor understood by Perfetto and chrome://tracing). Field order
// matters only for golden-test stability; encoding/json emits fields in
// declaration order and sorts map keys, so the output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	ID   string         `json:"id,omitempty"` // flow-event binding id
	BP   string         `json:"bp,omitempty"` // flow binding point
	S    string         `json:"s,omitempty"`  // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// usec converts a tracer offset to trace microseconds.
func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// attrArgs converts span/event attrs to a Chrome args map.
func attrArgs(attrs []Attr, errMsg string) map[string]any {
	if len(attrs) == 0 && errMsg == "" {
		return nil
	}
	args := make(map[string]any, len(attrs)+1)
	for _, a := range attrs {
		args[a.Key] = a.Val
	}
	if errMsg != "" {
		args["error"] = errMsg
	}
	return args
}

// WriteChromeTrace exports every completed span, instant event and
// counter as Chrome trace-event JSON. The file loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing; each WithTrack track
// (one per rail) renders as its own named thread row. Writing on a nil
// or disabled tracer emits an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "sprout"},
	}}

	var spans []SpanRecord
	var instants []EventRecord
	var tracks []string
	if t != nil {
		t.mu.Lock()
		spans = append(spans, t.spans...)
		instants = append(instants, t.events...)
		tracks = append(tracks, t.tracks...)
		t.mu.Unlock()
	}

	tidOf := func(track string) int64 {
		for i, name := range tracks {
			if name == track {
				return int64(i + 1)
			}
		}
		return 0
	}
	events = append(events, chromeEvent{
		Name: "thread_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "main"},
	})
	for i, name := range tracks {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: int64(i + 1),
			Args: map[string]any{"name": name},
		})
	}

	// Spans are recorded in end order; emit them in start order so the
	// nesting reads top-down in the viewer and the output is stable.
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "stage",
			Ph:   "X",
			TS:   usec(s.Start),
			Dur:  usec(s.End - s.Start),
			PID:  chromePID,
			TID:  tidOf(s.Track),
			Args: attrArgs(s.Attrs, s.Err),
		})
	}
	for _, e := range instants {
		events = append(events, chromeEvent{
			Name: e.Name,
			Cat:  "iter",
			Ph:   "i",
			TS:   usec(e.TS),
			PID:  chromePID,
			TID:  tidOf(e.Track),
			S:    "t",
			Args: attrArgs(e.Attrs, ""),
		})
	}

	// Counters land as one final "C" sample each so Perfetto draws a
	// counter track with the end-of-run totals.
	counters, _ := t.MetricsSnapshot()
	var names []string
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var endTS float64
	for _, s := range spans {
		if ts := usec(s.End); ts > endTS {
			endTS = ts
		}
	}
	for _, name := range names {
		events = append(events, chromeEvent{
			Name: name, Cat: "metric", Ph: "C", TS: endTS, PID: chromePID, TID: 0,
			Args: map[string]any{"value": counters[name]},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the Chrome trace to the named file.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace file: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: trace file: %w", err)
	}
	return nil
}
