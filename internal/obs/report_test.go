package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleReport() *RunReport {
	return &RunReport{
		Tool:       "sprout",
		Board:      "two-rail-wireless",
		Layer:      7,
		DurationMS: 88.7,
		Rails: []RailReport{
			{
				Name:           "VDD1",
				Net:            1,
				AreaUnits:      5997,
				ResistanceOhms: 0.0022,
				InductancePH:   1124.7,
				Stages: []StageReport{
					{Stage: "seed", Iterations: 1, DurationMS: 1.4, Nodes: 42, Area: 2025, Resistance: 41},
					{Stage: "grow", Iterations: 9, DurationMS: 4.9, Nodes: 222, Area: 6447, Resistance: 8.9},
				},
				Solve: SolveReport{
					Solves: 46, Iterations: 900, Escalations: 1,
					WorstResidual: 3e-8,
					Rungs:         map[string]int{"cg-ic0": 45, "cg-jacobi-relaxed": 1},
				},
			},
			{
				Name: "VDD2", Net: 2, Degraded: true,
				Error: "route: grow: injected fault",
				Solve: SolveReport{Solves: 3, Iterations: 60, Failures: 1},
			},
		},
		Counters: map[string]int64{"solver.solves": 49, "solver.iterations": 960},
		Histograms: map[string]HistogramSummary{
			"solver.cg_iterations": {
				Count: 49, Sum: 960, Min: 4, Max: 41, Mean: 960.0 / 49,
				Bounds:  []float64{1, 4, 16, 64, 256, 1024, 4096, 16384},
				Buckets: []int64{0, 1, 10, 38, 0, 0, 0, 0, 0},
			},
		},
	}
}

func TestRunReportRoundTrip(t *testing.T) {
	want := sampleReport()
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the report:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestRunReportFileRoundTrip(t *testing.T) {
	want := sampleReport()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := want.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip changed the report")
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("want decode error")
	}
}
