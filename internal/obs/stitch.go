package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Trace stitching: every replica that touched a job exports its tracer
// as a TracePart (spans, events, epoch, replica name, remote-parent
// ref); Stitch merges the parts into one trace with globally unique span
// ids, resolves cross-replica parent links via span refs, aligns the
// per-replica clocks on the earliest part epoch, and renders the result
// as one Perfetto-loadable Chrome trace — each replica a process row,
// each track a thread row, cross-replica edges drawn as flow arrows.

// PartAttr is the JSON shape of one span/event annotation in a part.
type PartAttr struct {
	Key string `json:"k"`
	Val any    `json:"v"`
}

// PartSpan is one exported span. Times are nanosecond offsets from the
// part epoch.
type PartSpan struct {
	ID      uint64     `json:"id"`
	Parent  uint64     `json:"parent,omitempty"`
	Track   string     `json:"track,omitempty"`
	Name    string     `json:"name"`
	StartNS int64      `json:"start_ns"`
	EndNS   int64      `json:"end_ns"`
	Attrs   []PartAttr `json:"attrs,omitempty"`
	Err     string     `json:"err,omitempty"`
}

// PartEvent is one exported instant event.
type PartEvent struct {
	Track string     `json:"track,omitempty"`
	Name  string     `json:"name"`
	TSNS  int64      `json:"ts_ns"`
	Attrs []PartAttr `json:"attrs,omitempty"`
}

// TracePart is one replica's slice of a distributed trace — the unit
// served by GET /v1/jobs/{id}/traceparts and consumed by Stitch.
type TracePart struct {
	Replica string `json:"replica"`
	TraceID string `json:"trace_id,omitempty"`
	// ParentRef is the cross-replica ref of the remote span this part's
	// root spans nest under (0 = this part starts the trace).
	ParentRef uint64 `json:"parent_ref,omitempty"`
	// EpochUnixNano is the wall-clock origin of the part's offsets.
	EpochUnixNano int64       `json:"epoch_unix_nano"`
	Spans         []PartSpan  `json:"spans,omitempty"`
	Events        []PartEvent `json:"events,omitempty"`
}

func partAttrs(attrs []Attr) []PartAttr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]PartAttr, len(attrs))
	for i, a := range attrs {
		out[i] = PartAttr{Key: a.Key, Val: a.Val}
	}
	return out
}

// TracePart exports the tracer's completed spans and events for
// stitching. Safe on a nil tracer (returns an empty part).
func (t *Tracer) TracePart() TracePart {
	if t == nil {
		return TracePart{}
	}
	part := TracePart{
		Replica:       t.replica,
		TraceID:       t.traceID,
		ParentRef:     t.remoteParent,
		EpochUnixNano: t.epoch.UnixNano(),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		part.Spans = append(part.Spans, PartSpan{
			ID:      s.ID,
			Parent:  s.Parent,
			Track:   s.Track,
			Name:    s.Name,
			StartNS: s.Start.Nanoseconds(),
			EndNS:   s.End.Nanoseconds(),
			Attrs:   partAttrs(s.Attrs),
			Err:     s.Err,
		})
	}
	for _, e := range t.events {
		part.Events = append(part.Events, PartEvent{
			Track: e.Track,
			Name:  e.Name,
			TSNS:  e.TS.Nanoseconds(),
			Attrs: partAttrs(e.Attrs),
		})
	}
	return part
}

// StitchedSpan is one span of a merged trace, with a globally unique id
// and its parent resolved across replicas. Times are offsets from the
// stitched epoch (the earliest part epoch).
type StitchedSpan struct {
	ID      uint64
	Parent  uint64
	Replica string
	Track   string
	Name    string
	Start   time.Duration
	End     time.Duration
	Attrs   []PartAttr
	Err     string
	// Remote marks a span whose parent lives on a different replica —
	// the stitch point the Chrome exporter draws a flow arrow for.
	Remote bool
}

// StitchedEvent is one instant event of a merged trace.
type StitchedEvent struct {
	Replica string
	Track   string
	Name    string
	TS      time.Duration
	Attrs   []PartAttr
}

// StitchedTrace is the merged view of one distributed trace.
type StitchedTrace struct {
	TraceID string
	// Replicas lists the contributing replica names in part order.
	Replicas []string
	Spans    []StitchedSpan
	Events   []StitchedEvent
}

// Stitch merges per-replica trace parts into one trace. Parts are
// ordered deterministically (epoch, then replica name), duplicates
// (the same part gathered via two scatter paths) are dropped, and
// cross-replica parent links are resolved via span refs: a part whose
// ParentRef matches a span in another part nests its root spans under
// that span. Unresolvable refs degrade to root spans — a missing part
// must not hide the parts that did arrive.
func Stitch(parts []TracePart) (*StitchedTrace, error) {
	// Deduplicate by content identity, then order deterministically.
	seen := map[string]bool{}
	var kept []TracePart
	for _, p := range parts {
		if len(p.Spans) == 0 && len(p.Events) == 0 {
			continue
		}
		key, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("obs: stitch: encode part: %w", err)
		}
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		kept = append(kept, p)
	}
	sort.SliceStable(kept, func(i, j int) bool {
		if kept[i].EpochUnixNano != kept[j].EpochUnixNano {
			return kept[i].EpochUnixNano < kept[j].EpochUnixNano
		}
		return kept[i].Replica < kept[j].Replica
	})

	st := &StitchedTrace{}
	if len(kept) == 0 {
		return st, nil
	}
	epoch0 := kept[0].EpochUnixNano
	for _, p := range kept {
		if p.EpochUnixNano < epoch0 {
			epoch0 = p.EpochUnixNano
		}
		if st.TraceID == "" {
			st.TraceID = p.TraceID
		}
		st.Replicas = append(st.Replicas, p.Replica)
	}

	// Pass 1: assign global ids and index every span's cross-replica ref.
	type key struct {
		part int
		id   uint64
	}
	var next uint64
	gids := map[key]uint64{}
	refs := map[uint64]uint64{} // SpanRef -> global id
	for pi, p := range kept {
		for _, s := range p.Spans {
			next++
			gids[key{pi, s.ID}] = next
			refs[SpanRef(p.Replica, s.ID)] = next
		}
	}

	// Pass 2: emit spans with resolved parents on the common timeline.
	for pi, p := range kept {
		skew := time.Duration(p.EpochUnixNano - epoch0)
		for _, s := range p.Spans {
			out := StitchedSpan{
				ID:      gids[key{pi, s.ID}],
				Replica: p.Replica,
				Track:   s.Track,
				Name:    s.Name,
				Start:   skew + time.Duration(s.StartNS),
				End:     skew + time.Duration(s.EndNS),
				Attrs:   s.Attrs,
				Err:     s.Err,
			}
			switch {
			case s.Parent != 0:
				out.Parent = gids[key{pi, s.Parent}]
			case p.ParentRef != 0:
				if gid, ok := refs[p.ParentRef]; ok {
					out.Parent = gid
					out.Remote = true
				}
			}
			st.Spans = append(st.Spans, out)
		}
		for _, e := range p.Events {
			st.Events = append(st.Events, StitchedEvent{
				Replica: p.Replica,
				Track:   e.Track,
				Name:    e.Name,
				TS:      skew + time.Duration(e.TSNS),
				Attrs:   e.Attrs,
			})
		}
	}
	sort.SliceStable(st.Spans, func(i, j int) bool {
		if st.Spans[i].Start != st.Spans[j].Start {
			return st.Spans[i].Start < st.Spans[j].Start
		}
		return st.Spans[i].ID < st.Spans[j].ID
	})
	return st, nil
}

// WriteChromeTrace renders the stitched trace as Chrome trace-event
// JSON: one process row per replica, one thread row per track, duration
// events for spans, instant events, and flow arrows across the
// cross-replica stitch points.
func (st *StitchedTrace) WriteChromeTrace(w io.Writer) error {
	// Process ids in first-appearance order; tid 0 of each process is the
	// replica's main track.
	pidOf := map[string]int{}
	var replicas []string
	for _, r := range st.Replicas {
		if _, ok := pidOf[r]; !ok {
			pidOf[r] = len(replicas) + 1
			replicas = append(replicas, r)
		}
	}
	pid := func(replica string) int {
		if p, ok := pidOf[replica]; ok {
			return p
		}
		return 1
	}
	type trackKey struct {
		pid   int
		track string
	}
	tids := map[trackKey]int64{}
	var trackMeta []chromeEvent
	tid := func(p int, track string) int64 {
		if track == "" {
			return 0
		}
		k := trackKey{p, track}
		if id, ok := tids[k]; ok {
			return id
		}
		id := int64(len(tids) + 1)
		tids[k] = id
		trackMeta = append(trackMeta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: p, TID: id,
			Args: map[string]any{"name": track},
		})
		return id
	}

	var events []chromeEvent
	for i, r := range replicas {
		name := r
		if name == "" {
			name = "sprout"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: i + 1, TID: 0,
			Args: map[string]any{"name": name},
		}, chromeEvent{
			Name: "thread_name", Ph: "M", PID: i + 1, TID: 0,
			Args: map[string]any{"name": "main"},
		})
	}

	byID := map[uint64]*StitchedSpan{}
	for i := range st.Spans {
		byID[st.Spans[i].ID] = &st.Spans[i]
	}
	var body []chromeEvent
	for i := range st.Spans {
		s := &st.Spans[i]
		p := pid(s.Replica)
		body = append(body, chromeEvent{
			Name: s.Name,
			Cat:  "stage",
			Ph:   "X",
			TS:   usec(s.Start),
			Dur:  usec(s.End - s.Start),
			PID:  p,
			TID:  tid(p, s.Track),
			Args: attrArgs(toAttrs(s.Attrs), s.Err),
		})
		if s.Remote && s.Parent != 0 {
			if par, ok := byID[s.Parent]; ok {
				pp := pid(par.Replica)
				flowID := fmt.Sprintf("%d", s.ID)
				body = append(body, chromeEvent{
					Name: "hop", Cat: "trace", Ph: "s", ID: flowID,
					TS: usec(par.Start), PID: pp, TID: tid(pp, par.Track),
				}, chromeEvent{
					Name: "hop", Cat: "trace", Ph: "f", BP: "e", ID: flowID,
					TS: usec(s.Start), PID: p, TID: tid(p, s.Track),
				})
			}
		}
	}
	for _, e := range st.Events {
		p := pid(e.Replica)
		body = append(body, chromeEvent{
			Name: e.Name,
			Cat:  "iter",
			Ph:   "i",
			TS:   usec(e.TS),
			PID:  p,
			TID:  tid(p, e.Track),
			S:    "t",
			Args: attrArgs(toAttrs(e.Attrs), ""),
		})
	}

	events = append(events, trackMeta...)
	events = append(events, body...)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

func toAttrs(attrs []PartAttr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]Attr, len(attrs))
	for i, a := range attrs {
		out[i] = Attr{Key: a.Key, Val: a.Val}
	}
	return out
}
