package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the Chrome-trace golden file")

// goldenTracer replays a fixed two-rail pipeline against the deterministic
// clock so the exported trace is byte-stable.
func goldenTracer() *Tracer {
	tr := New(WithClock(fakeClock()))
	ctx := WithTracer(context.Background(), tr)

	rctx, root := StartSpan(ctx, "RouteBoard", A("board", "golden"))
	for _, rail := range []string{"VDD1", "VDD2"} {
		tctx := WithTrack(rctx, "rail:"+rail)
		sctx, railSp := StartSpan(tctx, "Rail", A("net", rail))
		_, seed := StartSpan(sctx, "Seed", A("nodes", 42))
		seed.End()
		Event(sctx, "iter.grow", A("nodes", 50), A("area", 1200))
		_, grow := StartSpan(sctx, "Grow")
		if rail == "VDD2" {
			grow.Fail(errors.New("grow exceeded budget"))
		}
		grow.End()
		railSp.End()
	}
	root.End()
	tr.Counter("solver.solves").Add(7)
	tr.Counter("solver.iterations").Add(131)
	tr.Histogram("solver.cg_iterations").Observe(19)
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run ChromeTraceGolden -update`)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	tidName := map[float64]string{}
	phases := map[string]int{}
	var failedArgs map[string]any
	for _, e := range trace.TraceEvents {
		ph := e["ph"].(string)
		phases[ph]++
		if ph == "M" && e["name"] == "thread_name" {
			tidName[e["tid"].(float64)] = e["args"].(map[string]any)["name"].(string)
		}
		if ph == "X" {
			if _, ok := e["dur"]; !ok {
				t.Fatalf("complete span %v lacks dur", e["name"])
			}
		}
		if e["name"] == "Grow" {
			if args, ok := e["args"].(map[string]any); ok {
				failedArgs = args
			}
		}
	}
	if phases["X"] != 7 { // RouteBoard + 2×(Rail, Seed, Grow)
		t.Fatalf("span events = %d, want 7", phases["X"])
	}
	if phases["i"] != 2 || phases["C"] != 2 {
		t.Fatalf("instants/counters = %d/%d, want 2/2", phases["i"], phases["C"])
	}
	want := map[float64]string{0: "main", 1: "rail:VDD1", 2: "rail:VDD2"}
	for tid, name := range want {
		if tidName[tid] != name {
			t.Fatalf("tid %v named %q, want %q", tid, tidName[tid], name)
		}
	}
	if failedArgs == nil || failedArgs["error"] != "grow exceeded budget" {
		t.Fatalf("failed span args = %v, want error annotation", failedArgs)
	}
}

func TestChromeTraceOnNilTracer(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	// Only the process/thread metadata; no spans.
	for _, e := range trace.TraceEvents {
		if e["ph"] != "M" {
			t.Fatalf("nil tracer exported a non-metadata event: %v", e)
		}
	}
}
