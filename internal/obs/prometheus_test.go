package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// promTracer builds a fully deterministic tracer covering all three
// metric kinds, a labeled histogram and a wildcard-family counter — the
// exposition surface the golden file pins down.
func promTracer() *Tracer {
	tr := New(WithClock(fakeClock()), WithReplica("a"))
	tr.Counter(MJobsAccepted).Add(3)
	tr.Counter(MSolverPrecondPrefix + "jacobi").Add(2)
	tr.Gauge(MServerWorkers).Set(4)
	tr.Gauge(MServerAccepting).Set(1)
	h := tr.Histogram(MJobRunMS)
	for _, v := range []float64{0.2, 3, 3, 700} {
		h.Observe(v)
	}
	tr.Histogram(WithLabels(MHTTPRequestMS, "route", "submit", "status", "202")).Observe(1.5)
	return tr
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	err := promTracer().WritePrometheus(&buf, PromOptions{
		Labels: []string{"replica", "a", "shard", "s1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s (run with -update to regenerate after a deliberate change)\n--- got ---\n%s",
			golden, buf.String())
	}
}

// TestWritePrometheusWellFormed checks the structural invariants of the
// exposition independent of the golden bytes: one TYPE line per family,
// counters suffixed _total, cumulative le buckets capped by +Inf, and
// quantile companions for every histogram.
func TestWritePrometheusWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := promTracer().WritePrometheus(&buf, PromOptions{Labels: []string{"replica", "a"}}); err != nil {
		t.Fatal(err)
	}
	types := map[string]string{}
	samples := map[string]int{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[f[2]]; dup {
				t.Fatalf("family %s declared twice", f[2])
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		name, rest, ok := strings.Cut(line, "{")
		if !ok {
			name, rest, ok = strings.Cut(line, " ")
		}
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		_ = rest
		samples[name]++
		if !strings.Contains(line, `replica="a"`) {
			t.Fatalf("sample %q lost the global replica label", line)
		}
	}
	if types["sprout_server_jobs_accepted_total"] != "counter" {
		t.Fatalf("counter family missing/_total-less: %v", types)
	}
	if types["sprout_server_workers"] != "gauge" {
		t.Fatalf("gauge family missing: %v", types)
	}
	if types["sprout_server_job_run_ms"] != "histogram" {
		t.Fatalf("histogram family missing: %v", types)
	}
	for _, q := range []string{"_p50", "_p95", "_p99"} {
		if types["sprout_server_job_run_ms"+q] != "gauge" {
			t.Fatalf("histogram lacks %s companion gauge: %v", q, types)
		}
	}
	// Buckets: one per bound plus +Inf, all under the single family name.
	if n := samples["sprout_server_job_run_ms_bucket"]; n != len(latencyBucketsMS)+1 {
		t.Fatalf("job_run_ms has %d bucket samples, want %d", n, len(latencyBucketsMS)+1)
	}
	// The labeled histogram keeps its labels as real Prometheus labels.
	if !strings.Contains(buf.String(), `sprout_http_request_ms_bucket{replica="a",route="submit",status="202",le=`) {
		t.Fatal("WithLabels suffix was not split back into Prometheus labels")
	}
}

func TestWritePrometheusDisabledTracerIsEmpty(t *testing.T) {
	var buf bytes.Buffer
	var nilTracer *Tracer
	if err := nilTracer.WritePrometheus(&buf, PromOptions{}); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer exposition = (%q, %v), want empty", buf.String(), err)
	}
	tr := New()
	tr.SetEnabled(false)
	if err := tr.WritePrometheus(&buf, PromOptions{}); err != nil || buf.Len() != 0 {
		t.Fatalf("disabled tracer exposition = (%q, %v), want empty", buf.String(), err)
	}
	// Odd global label counts are a caller bug, reported not ignored.
	if err := New().WritePrometheus(&buf, PromOptions{Labels: []string{"replica"}}); err == nil {
		t.Fatal("odd label count must error")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	tr := New()
	h := tr.Histogram(MJobRunMS)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i)) // uniform 1..100 ms
	}
	s := h.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	// Uniform data: the interpolated quantiles land near the true ones
	// (bucket bounds at ...,50,100 bracket them loosely).
	if s.P50 < 25 || s.P50 > 60 {
		t.Fatalf("p50 = %v, want ~50 within bucket resolution", s.P50)
	}
	if s.P95 < 80 || s.P95 > 100 {
		t.Fatalf("p95 = %v, want ~95 within bucket resolution", s.P95)
	}
	if s.P99 < s.P95 || s.P99 > 100 {
		t.Fatalf("p99 = %v, want >= p95 and <= max", s.P99)
	}
	// Quantiles clamp to the observed range even in the overflow bucket.
	h2 := New().Histogram(MSolverCGIterations)
	h2.Observe(1e6)
	if got := h2.Summary().P99; got != 1e6 {
		t.Fatalf("single overflow sample p99 = %v, want the sample itself", got)
	}
	if got := (HistogramSummary{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty summary quantile = %v, want 0", got)
	}
}

func TestAbsorbMetrics(t *testing.T) {
	job := New(WithReplica("job"))
	job.Counter(MSolverSolves).Add(7)
	job.Histogram(MStagePrefix + "grow").Observe(2)
	job.Histogram(MStagePrefix + "grow").Observe(8)
	job.Gauge(MExploreWorkers).Set(9)

	srv := New(WithReplica("srv"))
	srv.Counter(MSolverSolves).Add(1)
	srv.Histogram(MStagePrefix + "grow").Observe(100)
	srv.AbsorbMetrics(job)
	// A second identical-content job folds in cumulatively.
	srv.AbsorbMetrics(job)

	counters, hists := srv.MetricsSnapshot()
	if counters[MSolverSolves] != 15 {
		t.Fatalf("absorbed counter = %d, want 1+7+7", counters[MSolverSolves])
	}
	s := hists[MStagePrefix+"grow"]
	if s.Count != 5 || s.Min != 2 || s.Max != 100 || s.Sum != 120 {
		t.Fatalf("absorbed histogram = %+v, want count 5 sum 120 min 2 max 100", s)
	}
	// Gauges stay job-local: a point-in-time worker count must not leak
	// into the replica's gauges.
	if g := srv.GaugesSnapshot(); g[MExploreWorkers] != 0 {
		t.Fatalf("gauge leaked through absorb: %v", g)
	}
	// Nil/disabled sides are no-ops.
	var nilTracer *Tracer
	nilTracer.AbsorbMetrics(job)
	srv.AbsorbMetrics(nilTracer)
}
