package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically growing int64 metric, safe for concurrent
// use. The nil counter (returned by a nil/disabled tracer) is a safe
// no-op.
type Counter struct {
	v atomic.Int64
}

// Gauge is a last-value int64 metric (e.g. worker-pool size), safe for
// concurrent use. Unlike a Counter it can move both ways; the snapshot
// reports the most recently set value. The nil gauge is a safe no-op.
type Gauge struct {
	v atomic.Int64
}

// histBounds are the fixed histogram bucket upper bounds (powers of four
// cover both CG iteration counts and Laplacian nnz ranges); the final
// implicit bucket is +Inf.
var histBounds = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}

// Histogram tracks the distribution of a float64 metric with fixed
// power-of-four buckets plus count/sum/min/max, safe for concurrent use.
// The nil histogram is a safe no-op.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  []int64 // len(histBounds)+1, last = overflow
}

// HistogramSummary is the JSON-friendly snapshot of a Histogram.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// Bounds lists the bucket upper limits; Buckets[i] counts samples at
	// or below Bounds[i] (and above the previous bound), the final extra
	// entry counts the overflow above the last bound.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Counter returns the named counter, creating it on first use. A nil or
// disabled tracer returns nil, whose Add is a no-op.
func (t *Tracer) Counter(name string) *Counter {
	if !t.Enabled() {
		return nil
	}
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	if t.counters == nil {
		t.counters = map[string]*Counter{}
	}
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{}
		t.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil or
// disabled tracer returns nil, whose Set/Add are no-ops.
func (t *Tracer) Gauge(name string) *Gauge {
	if !t.Enabled() {
		return nil
	}
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	if t.gauges == nil {
		t.gauges = map[string]*Gauge{}
	}
	g, ok := t.gauges[name]
	if !ok {
		g = &Gauge{}
		t.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// or disabled tracer returns nil, whose Observe is a no-op.
func (t *Tracer) Histogram(name string) *Histogram {
	if !t.Enabled() {
		return nil
	}
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	if t.hists == nil {
		t.hists = map[string]*Histogram{}
	}
	h, ok := t.hists[name]
	if !ok {
		h = &Histogram{buckets: make([]int64, len(histBounds)+1)}
		t.hists[name] = h
	}
	return h
}

// Add increments the counter (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Set replaces the gauge value (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n (no-op on nil).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Observe records one sample (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(histBounds, v)
	h.buckets[i]++
}

// Summary snapshots the histogram (zero value on nil).
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistogramSummary{}
	}
	return HistogramSummary{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Mean:    h.sum / float64(h.count),
		Bounds:  append([]float64(nil), histBounds...),
		Buckets: append([]int64(nil), h.buckets...),
	}
}

// MetricsSnapshot returns the current counter values and histogram
// summaries by name (nil maps on a nil/disabled tracer).
func (t *Tracer) MetricsSnapshot() (map[string]int64, map[string]HistogramSummary) {
	if !t.Enabled() {
		return nil, nil
	}
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	var counters map[string]int64
	if len(t.counters) > 0 {
		counters = make(map[string]int64, len(t.counters))
		for name, c := range t.counters {
			counters[name] = c.Value()
		}
	}
	var hists map[string]HistogramSummary
	if len(t.hists) > 0 {
		hists = make(map[string]HistogramSummary, len(t.hists))
		for name, h := range t.hists {
			hists[name] = h.Summary()
		}
	}
	return counters, hists
}

// GaugesSnapshot returns the current gauge values by name (nil map on a
// nil/disabled tracer or when no gauge was ever touched).
func (t *Tracer) GaugesSnapshot() map[string]int64 {
	if !t.Enabled() {
		return nil
	}
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	if len(t.gauges) == 0 {
		return nil
	}
	gauges := make(map[string]int64, len(t.gauges))
	for name, g := range t.gauges {
		gauges[name] = g.Value()
	}
	return gauges
}
