package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically growing int64 metric, safe for concurrent
// use. The nil counter (returned by a nil/disabled tracer) is a safe
// no-op.
type Counter struct {
	v atomic.Int64
}

// Gauge is a last-value int64 metric (e.g. worker-pool size), safe for
// concurrent use. Unlike a Counter it can move both ways; the snapshot
// reports the most recently set value. The nil gauge is a safe no-op.
type Gauge struct {
	v atomic.Int64
}

// histBounds are the default histogram bucket upper bounds (powers of
// four cover both CG iteration counts and Laplacian nnz ranges); the
// final implicit bucket is +Inf. The metric registry (names.go) assigns
// latency-shaped bounds to *_ms histograms instead.
var histBounds = countBuckets

// Histogram tracks the distribution of a float64 metric with fixed
// per-metric buckets (assigned by the registry) plus count/sum/min/max,
// safe for concurrent use. The nil histogram is a safe no-op.
type Histogram struct {
	mu       sync.Mutex
	bounds   []float64
	count    int64
	sum      float64
	min, max float64
	buckets  []int64 // len(bounds)+1, last = overflow
}

// HistogramSummary is the JSON-friendly snapshot of a Histogram.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// P50/P95/P99 are quantile estimates interpolated from the fixed
	// buckets (exact at the bucket boundaries, clamped to [Min, Max]).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Bounds lists the bucket upper limits; Buckets[i] counts samples at
	// or below Bounds[i] (and above the previous bound), the final extra
	// entry counts the overflow above the last bound.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Quantile interpolates the q-quantile (0 < q < 1) from the bucket
// counts, Prometheus histogram_quantile style: locate the bucket holding
// the target rank, then interpolate linearly inside it. Results are
// clamped to the observed [Min, Max], which also makes the overflow
// bucket exact-bounded. Returns 0 on an empty summary.
func (s HistogramSummary) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo := s.Min
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < hi {
				hi = s.Bounds[i]
			}
			if lo > hi {
				lo = hi
			}
			frac := (target - float64(cum)) / float64(c)
			v := lo + (hi-lo)*frac
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += c
	}
	return s.Max
}

// Counter returns the named counter, creating it on first use. A nil or
// disabled tracer returns nil, whose Add is a no-op. The name must be
// registered in names.go (panics otherwise, like faultinject.Arm).
func (t *Tracer) Counter(name string) *Counter {
	if !t.Enabled() {
		return nil
	}
	mustMetric(name, KindCounter)
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	if t.counters == nil {
		t.counters = map[string]*Counter{}
	}
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{}
		t.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil or
// disabled tracer returns nil, whose Set/Add are no-ops. The name must
// be registered in names.go.
func (t *Tracer) Gauge(name string) *Gauge {
	if !t.Enabled() {
		return nil
	}
	mustMetric(name, KindGauge)
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	if t.gauges == nil {
		t.gauges = map[string]*Gauge{}
	}
	g, ok := t.gauges[name]
	if !ok {
		g = &Gauge{}
		t.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the bucket bounds its registration declares. A nil or disabled tracer
// returns nil, whose Observe is a no-op. The name must be registered in
// names.go.
func (t *Tracer) Histogram(name string) *Histogram {
	if !t.Enabled() {
		return nil
	}
	def := mustMetric(name, KindHistogram)
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	if t.hists == nil {
		t.hists = map[string]*Histogram{}
	}
	h, ok := t.hists[name]
	if !ok {
		bounds := def.Buckets
		if bounds == nil {
			bounds = histBounds
		}
		h = &Histogram{bounds: bounds, buckets: make([]int64, len(bounds)+1)}
		t.hists[name] = h
	}
	return h
}

// Add increments the counter (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Set replaces the gauge value (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n (no-op on nil).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Observe records one sample (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
}

// Summary snapshots the histogram (zero value on nil).
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistogramSummary{}
	}
	s := HistogramSummary{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Mean:    h.sum / float64(h.count),
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: append([]int64(nil), h.buckets...),
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// absorb folds a snapshotted histogram into this one. Bucket layouts
// come from the registry, so they match whenever both sides observe the
// same metric name; a layout mismatch (a foreign snapshot from a build
// with different bounds) degrades to counting everything as overflow
// rather than mis-binning it.
func (h *Histogram) absorb(s HistogramSummary) {
	if h == nil || s.Count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || s.Min < h.min {
		h.min = s.Min
	}
	if h.count == 0 || s.Max > h.max {
		h.max = s.Max
	}
	h.count += s.Count
	h.sum += s.Sum
	if len(s.Buckets) == len(h.buckets) {
		for i, c := range s.Buckets {
			h.buckets[i] += c
		}
	} else {
		h.buckets[len(h.buckets)-1] += s.Count
	}
}

// AbsorbMetrics folds another tracer's counters and histograms into this
// one — how per-job tracer metrics (stage latency, solver telemetry)
// reach the replica-wide tracer that /metrics exposes. Gauges are
// deliberately skipped: a job-scoped point-in-time value must not
// overwrite the replica's live gauges. Nil-safe on both sides.
func (t *Tracer) AbsorbMetrics(from *Tracer) {
	if !t.Enabled() || !from.Enabled() {
		return
	}
	counters, hists := from.MetricsSnapshot()
	for name, v := range counters {
		if v != 0 {
			t.Counter(name).Add(v)
		}
	}
	for name, s := range hists {
		t.Histogram(name).absorb(s)
	}
}

// MetricsSnapshot returns the current counter values and histogram
// summaries by name (nil maps on a nil/disabled tracer).
func (t *Tracer) MetricsSnapshot() (map[string]int64, map[string]HistogramSummary) {
	if !t.Enabled() {
		return nil, nil
	}
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	var counters map[string]int64
	if len(t.counters) > 0 {
		counters = make(map[string]int64, len(t.counters))
		for name, c := range t.counters {
			counters[name] = c.Value()
		}
	}
	var hists map[string]HistogramSummary
	if len(t.hists) > 0 {
		hists = make(map[string]HistogramSummary, len(t.hists))
		for name, h := range t.hists {
			hists[name] = h.Summary()
		}
	}
	return counters, hists
}

// GaugesSnapshot returns the current gauge values by name (nil map on a
// nil/disabled tracer or when no gauge was ever touched).
func (t *Tracer) GaugesSnapshot() map[string]int64 {
	if !t.Enabled() {
		return nil
	}
	t.metricsMu.Lock()
	defer t.metricsMu.Unlock()
	if len(t.gauges) == 0 {
		return nil
	}
	gauges := make(map[string]int64, len(t.gauges))
	for name, g := range t.gauges {
		gauges[name] = g.Value()
	}
	return gauges
}
