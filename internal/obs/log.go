package obs

import (
	"io"
	"log/slog"
)

// Verbosity selects the structured-log level for a run; commands map
// their -v/-q flags onto it so every subcommand filters consistently.
type Verbosity int

const (
	// Quiet logs errors only (-q).
	Quiet Verbosity = iota - 1
	// Normal logs progress at Info level (the default).
	Normal
	// Verbose adds Debug-level detail such as span completions (-v).
	Verbose
)

// Level converts the verbosity to a slog level.
func (v Verbosity) Level() slog.Level {
	switch {
	case v <= Quiet:
		return slog.LevelError
	case v >= Verbose:
		return slog.LevelDebug
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds the structured text logger used by the commands: a
// slog.Logger writing key=value lines to w, filtered by the verbosity.
func NewLogger(w io.Writer, v Verbosity) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: v.Level()}))
}
