package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// RunReport is the machine-readable summary of one routing run: per-rail
// stage durations, solver telemetry, impedance, and degradation flags.
// It is embedded in sprout.BoardResult (and the multilayer result) and
// written by `sprout -report out.json`. All fields marshal to plain JSON
// (no NaN/Inf — producers must sanitize), so the report round-trips
// through encoding/json.
type RunReport struct {
	Tool  string `json:"tool"`
	Board string `json:"board"`
	// Layer is the routing layer for single-layer runs (0 for multilayer).
	Layer      int  `json:"layer,omitempty"`
	Multilayer bool `json:"multilayer,omitempty"`
	// DurationMS is the wall-clock time of the whole run.
	DurationMS float64      `json:"duration_ms"`
	Rails      []RailReport `json:"rails"`
	// Counters, Gauges and Histograms snapshot the tracer metrics
	// (present only when the run was traced).
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// RailReport is one rail's slice of the run.
type RailReport struct {
	Name string `json:"name"`
	Net  int    `json:"net,omitempty"`
	// Degraded marks a rail that fell back to its seed-only route.
	Degraded bool `json:"degraded,omitempty"`
	// Error carries the rail's failure record ("" for a healthy rail).
	Error string `json:"error,omitempty"`
	// AreaUnits is the synthesized copper area in grid units squared.
	AreaUnits int64 `json:"area_units,omitempty"`
	// Vias counts the placed interlayer vias (multilayer runs only).
	Vias int `json:"vias,omitempty"`
	// ResistanceOhms / InductancePH mirror the extraction report.
	ResistanceOhms float64 `json:"resistance_ohms,omitempty"`
	InductancePH   float64 `json:"inductance_ph,omitempty"`
	// Stages breaks the pipeline down per paper stage, in execution
	// order.
	Stages []StageReport `json:"stages,omitempty"`
	// Solve summarizes the solver-ladder telemetry for every nodal
	// analysis the rail performed — including fully successful solves.
	Solve SolveReport `json:"solve"`
}

// StageReport aggregates the iterations of one pipeline stage.
type StageReport struct {
	Stage      string  `json:"stage"`
	Iterations int     `json:"iterations"`
	DurationMS float64 `json:"duration_ms"`
	// Nodes/Area/Resistance are the values after the stage's last
	// iteration.
	Nodes      int     `json:"nodes,omitempty"`
	Area       int64   `json:"area,omitempty"`
	Resistance float64 `json:"resistance,omitempty"`
}

// SolveReport summarizes solver-fallback-ladder telemetry: how many
// linear solves ran, their total CG iteration count, how often the
// ladder escalated past a rung, and the worst accepted residual.
type SolveReport struct {
	Solves      int `json:"solves"`
	Iterations  int `json:"iterations"`
	Escalations int `json:"escalations"`
	Failures    int `json:"failures,omitempty"`
	// WorstResidual is the largest relative residual any accepted solve
	// finished with (0 when no solve ran).
	WorstResidual float64 `json:"worst_residual,omitempty"`
	// Rungs counts solves won per ladder rung name.
	Rungs map[string]int `json:"rungs,omitempty"`
}

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: encode report: %w", err)
	}
	return nil
}

// WriteJSONFile writes the report to the named file.
func (r *RunReport) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: report file: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: report file: %w", err)
	}
	return nil
}

// ReadReport parses a RunReport previously written with WriteJSON.
func ReadReport(r io.Reader) (*RunReport, error) {
	var rep RunReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: decode report: %w", err)
	}
	return &rep, nil
}
