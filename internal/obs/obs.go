// Package obs is SPROUT's dependency-free observability layer: nestable
// tracing spans threaded through the pipeline via context.Context,
// counters and histograms for solver telemetry, a Chrome trace-event
// exporter (chrometrace.go), a structured slog sink (log.go), and the
// machine-readable RunReport (report.go) embedded in routing results.
//
// The paper notes that node-current evaluation dominates SPROUT's runtime
// (§II-H: ~90%); this package exists so that cost can be measured per
// rail and per pipeline stage before it is optimized.
//
// Everything is nil-safe and gated on one atomic load: a context without
// a tracer (or with a disabled one) makes StartSpan, Event, Counter.Add
// and Histogram.Observe near-zero-cost no-ops, so instrumentation is safe
// to leave on hot paths (verified by BenchmarkDisabled* in this package
// and the BenchmarkNodeCurrents before/after numbers).
package obs

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"context"
)

// Attr is one key/value annotation on a span or event. Values should be
// JSON-encodable (strings, numbers, bools).
type Attr struct {
	Key string
	Val any
}

// A builds an Attr.
func A(key string, val any) Attr { return Attr{Key: key, Val: val} }

// SpanRecord is one completed span as stored by the tracer. Records are
// appended when a span ends; nested spans therefore precede their parent
// in the record list, and the ordering is deterministic for a
// deterministic pipeline.
type SpanRecord struct {
	// ID is the span id, assigned in start order from 1.
	ID uint64
	// Parent is the id of the enclosing span (0 for a root span).
	Parent uint64
	// Track is the logical track name assigned with WithTrack ("" for the
	// main track). The Chrome exporter maps each track to its own thread
	// row.
	Track string
	// Name is the span name (a paper stage such as "Seed" or "Grow").
	Name string
	// Start and End are offsets from the tracer epoch.
	Start, End time.Duration
	// Attrs holds the span annotations.
	Attrs []Attr
	// Err is the failure recorded with Fail ("" for a clean span).
	Err string
}

// EventRecord is one instant event (Event), e.g. a single grow iteration.
type EventRecord struct {
	Track string
	Name  string
	TS    time.Duration
	Attrs []Attr
}

// Tracer collects spans, events, counters and histograms for one run.
// The zero value and the nil tracer are disabled; New returns an enabled
// one. A Tracer is safe for concurrent use.
type Tracer struct {
	enabled atomic.Bool
	logger  *slog.Logger

	// traceID names the distributed trace this tracer's spans belong to
	// (32 hex chars, random unless WithTraceID continued a propagated
	// one). replica annotates every exported span with the node that
	// recorded it; remoteParent is the cross-replica span ref the root
	// spans attach to at stitch time (0 = this tracer starts the trace).
	traceID      string
	replica      string
	remoteParent uint64
	// epoch is the wall-clock origin of the tracer offsets, used to place
	// this tracer's spans on the fleet-wide timeline when parts from
	// several replicas are stitched.
	epoch time.Time

	// now returns the current offset from the tracer epoch. Replaceable
	// for deterministic tests (WithClock).
	now func() time.Duration

	mu       sync.Mutex
	nextSpan uint64
	spans    []SpanRecord
	events   []EventRecord
	trackIDs map[string]int64 // track name -> tid (main track "" = 0)
	tracks   []string         // tid-1 -> name, in first-use order

	metricsMu sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithClock replaces the tracer clock — the function returning the
// offset from the tracer epoch — for deterministic tests.
func WithClock(now func() time.Duration) Option {
	return func(t *Tracer) { t.now = now }
}

// WithLogger attaches a structured logger; span completions are logged at
// Debug level and span failures at Warn level.
func WithLogger(l *slog.Logger) Option {
	return func(t *Tracer) { t.logger = l }
}

// WithTraceID continues a propagated trace instead of starting a new one.
// Invalid ids (wrong length) are ignored, keeping the generated one.
func WithTraceID(id string) Option {
	return func(t *Tracer) {
		if len(id) == 32 {
			t.traceID = id
		}
	}
}

// WithReplica names the replica recording this tracer's spans; the name
// qualifies span refs and labels the replica's process row in a stitched
// trace.
func WithReplica(name string) Option {
	return func(t *Tracer) { t.replica = name }
}

// WithRemoteParent attaches this tracer's root spans to a remote span
// (by ref) when the trace is stitched.
func WithRemoteParent(ref uint64) Option {
	return func(t *Tracer) { t.remoteParent = ref }
}

// WithEpoch pins the tracer's wall-clock origin — paired with WithClock
// for deterministic stitch tests.
func WithEpoch(epoch time.Time) Option {
	return func(t *Tracer) { t.epoch = epoch }
}

// New returns an enabled tracer whose epoch is the call time.
func New(opts ...Option) *Tracer {
	epoch := time.Now()
	t := &Tracer{
		epoch:   epoch,
		traceID: NewTraceID(),
		now:     func() time.Duration { return time.Since(epoch) },
	}
	for _, o := range opts {
		o(t)
	}
	t.enabled.Store(true)
	return t
}

// TraceID returns the tracer's distributed-trace id ("" on nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Replica returns the replica name the tracer records under ("" on nil).
func (t *Tracer) Replica() string {
	if t == nil {
		return ""
	}
	return t.replica
}

// Enabled reports whether the tracer records anything. Nil-safe: a nil
// tracer is disabled.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips the recording gate (no-op on a nil tracer).
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// SpanRecords returns a snapshot of the completed spans in end order.
func (t *Tracer) SpanRecords() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// EventRecords returns a snapshot of the recorded instant events.
func (t *Tracer) EventRecords() []EventRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]EventRecord(nil), t.events...)
}

// trackID interns a track name, assigning tids 1,2,... ("" is tid 0).
func (t *Tracer) trackID(name string) int64 {
	if name == "" {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.trackIDs == nil {
		t.trackIDs = map[string]int64{}
	}
	id, ok := t.trackIDs[name]
	if !ok {
		id = int64(len(t.tracks) + 1)
		t.trackIDs[name] = id
		t.tracks = append(t.tracks, name)
	}
	return id
}

// trackName resolves a tid back to its name.
func (t *Tracer) trackName(tid int64) string {
	if tid == 0 {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(tid) <= len(t.tracks) {
		return t.tracks[tid-1]
	}
	return ""
}

// ctxKey keys the context values carried by this package.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	trackKey
)

// WithTracer attaches a tracer to the context; the whole pipeline reads
// it back with FromContext.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the context's tracer, or nil (a disabled tracer)
// when none is attached.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Enabled reports whether the context carries an enabled tracer — the
// single check instrumentation sites use to skip non-trivial attribute
// computation.
func Enabled(ctx context.Context) bool { return FromContext(ctx).Enabled() }

// WithTrack assigns the logical track (e.g. "rail:VDD1") that subsequent
// spans and events on this context are recorded under. A no-op when
// tracing is disabled.
func WithTrack(ctx context.Context, name string) context.Context {
	t := FromContext(ctx)
	if !t.Enabled() {
		return ctx
	}
	return context.WithValue(ctx, trackKey, t.trackID(name))
}

// Span is one in-flight span. The nil span (returned by StartSpan when
// tracing is disabled) is a safe no-op for every method.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	tid    int64
	name   string
	start  time.Duration
	attrs  []Attr
	err    string
}

// StartSpan opens a span named after a pipeline stage. The returned
// context carries the span so children nest under it; when tracing is
// disabled the context is returned unchanged and the span is nil.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := FromContext(ctx)
	if !t.Enabled() {
		return ctx, nil
	}
	s := &Span{t: t, name: name, start: t.now()}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		s.parent = parent.id
		s.tid = parent.tid
	}
	if tid, ok := ctx.Value(trackKey).(int64); ok {
		s.tid = tid
	}
	t.mu.Lock()
	t.nextSpan++
	s.id = t.nextSpan
	t.mu.Unlock()
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttrs appends annotations to the span (no-op on nil).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Fail records the failure that ended the span. Nil-safe on both the
// span and the error, so `sp.Fail(err)` needs no guard at call sites.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// End closes the span and appends its record to the tracer (no-op on
// nil). End must be called exactly once, from the goroutine that started
// the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.now()
	track := s.t.trackName(s.tid)
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Track:  track,
		Name:   s.name,
		Start:  s.start,
		End:    end,
		Attrs:  s.attrs,
		Err:    s.err,
	})
	s.t.mu.Unlock()
	if l := s.t.logger; l != nil {
		if s.err != "" {
			l.Warn("span failed", "span", s.name, "dur", end-s.start, "err", s.err)
		} else {
			l.Debug("span", "span", s.name, "dur", end-s.start)
		}
	}
}

// Event records an instant event (e.g. one grow iteration) on the
// context's current track. A no-op when tracing is disabled.
func Event(ctx context.Context, name string, attrs ...Attr) {
	t := FromContext(ctx)
	if !t.Enabled() {
		return
	}
	var tid int64
	if sp, ok := ctx.Value(spanKey).(*Span); ok && sp != nil {
		tid = sp.tid
	}
	if v, ok := ctx.Value(trackKey).(int64); ok {
		tid = v
	}
	rec := EventRecord{Track: t.trackName(tid), Name: name, TS: t.now()}
	if len(attrs) > 0 {
		rec.Attrs = append(rec.Attrs, attrs...)
	}
	t.mu.Lock()
	t.events = append(t.events, rec)
	t.mu.Unlock()
}
