package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// Cross-replica trace propagation. A routing job that hops between
// sproutd replicas (shard forward, failover, scatter read) carries a
// W3C-traceparent-style header,
//
//	X-Sprout-Trace: 00-<32 hex trace id>-<16 hex parent span ref>-01
//
// so every replica's tracer records its spans under the same trace id,
// with its root spans attached to the remote parent span. Span ids are
// only unique within one tracer, so a cross-replica reference uses a
// span *ref*: a 64-bit hash of (replica name, local span id). The
// stitcher (stitch.go) recomputes every exported span's ref and resolves
// the remote parent links when it merges the per-replica parts.

// TraceHeaderName is the propagation header.
const TraceHeaderName = "X-Sprout-Trace"

// TraceContext identifies a position in a distributed trace: the trace
// itself plus the span ref a downstream hop should parent under (0 when
// the hop should attach at the trace root).
type TraceContext struct {
	// TraceID is 32 lowercase hex characters (empty = no trace).
	TraceID string
	// Parent is the span ref of the remote parent (0 = root).
	Parent uint64
}

// Valid reports whether the context names a trace.
func (tc TraceContext) Valid() bool { return len(tc.TraceID) == 32 }

// Header formats the context as an X-Sprout-Trace value ("" when
// invalid).
func (tc TraceContext) Header() string {
	if !tc.Valid() {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", tc.TraceID, tc.Parent)
}

// ParseTraceContext parses an X-Sprout-Trace value. Unknown versions and
// malformed fields yield ok=false — a bad header must never fail a
// submission, only detach its trace.
func ParseTraceContext(v string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return TraceContext{}, false
	}
	if _, err := hex.DecodeString(parts[1]); err != nil {
		return TraceContext{}, false
	}
	ref, err := hex.DecodeString(parts[2])
	if err != nil {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: parts[1], Parent: binary.BigEndian.Uint64(ref)}, true
}

// NewTraceID returns a fresh random 128-bit trace id as 32 hex chars.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant id keeps
		// tracing functional (spans still merge, just under one trace).
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SpanRef computes the cross-replica reference of a span: a 64-bit
// FNV-1a hash of the replica name and local span id, avalanche-finalized
// (the same finalizer as the shard ring, for the same reason: structured
// inputs must not cluster). Never returns 0, which is reserved for "no
// parent".
func SpanRef(replica string, spanID uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(replica); i++ {
		h ^= uint64(replica[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= (spanID >> (8 * i)) & 0xff
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	if h == 0 {
		h = 1
	}
	return h
}

// ContextTrace returns the trace context at the current point of ctx:
// the tracer's trace id plus the ref of the innermost open span (or the
// tracer's remote parent when no span is open). Zero when tracing is
// disabled.
func ContextTrace(ctx context.Context) TraceContext {
	t := FromContext(ctx)
	if !t.Enabled() {
		return TraceContext{}
	}
	tc := TraceContext{TraceID: t.traceID, Parent: t.remoteParent}
	if sp, ok := ctx.Value(spanKey).(*Span); ok && sp != nil {
		tc.Parent = SpanRef(t.replica, sp.id)
	}
	return tc
}

// TraceHeader formats the current trace position of ctx as an
// X-Sprout-Trace value ("" when tracing is disabled) — what a client or
// proxy sets on an outbound hop.
func TraceHeader(ctx context.Context) string {
	return ContextTrace(ctx).Header()
}
