package obs

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic tracer clock ticking 1ms per call.
func fakeClock() func() time.Duration {
	var t time.Duration
	return func() time.Duration {
		t += time.Millisecond
		return t
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must be disabled")
	}
	tr.SetEnabled(true) // must not panic
	if tr.SpanRecords() != nil || tr.EventRecords() != nil {
		t.Fatal("nil tracer must have no records")
	}
	if c, h := tr.MetricsSnapshot(); c != nil || h != nil {
		t.Fatal("nil tracer must have no metrics")
	}
	if tr.Counter("x") != nil || tr.Histogram("x") != nil {
		t.Fatal("nil tracer must hand out nil metrics")
	}
}

func TestNilSpanAndMetricsAreNoOps(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("bare context must carry no tracer")
	}
	if Enabled(ctx) {
		t.Fatal("bare context must be disabled")
	}
	sctx, sp := StartSpan(ctx, "Seed")
	if sp != nil {
		t.Fatal("disabled StartSpan must return a nil span")
	}
	if sctx != ctx {
		t.Fatal("disabled StartSpan must return the context unchanged")
	}
	sp.SetAttrs(A("k", 1))
	sp.Fail(errors.New("boom"))
	sp.End()
	Event(ctx, "iter.grow", A("nodes", 3))
	if got := WithTrack(ctx, "rail:VDD"); got != ctx {
		t.Fatal("disabled WithTrack must return the context unchanged")
	}

	var c *Counter
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	var h *Histogram
	h.Observe(4)
	if s := h.Summary(); s.Count != 0 {
		t.Fatal("nil histogram must stay empty")
	}
}

func TestSpanNestingAndSiblings(t *testing.T) {
	tr := New(WithClock(fakeClock()))
	ctx := WithTracer(context.Background(), tr)

	rctx, root := StartSpan(ctx, "RouteBoard")
	c1ctx, child1 := StartSpan(rctx, "Seed")
	_, grand := StartSpan(c1ctx, "Solve")
	grand.End()
	child1.End()
	// Sibling spans must branch from the parent's context, not a sibling's.
	_, child2 := StartSpan(rctx, "Grow")
	child2.End()
	root.End()

	recs := tr.SpanRecords()
	if len(recs) != 4 {
		t.Fatalf("got %d spans, want 4", len(recs))
	}
	// Records append in end order: inner spans precede their parent.
	wantNames := []string{"Solve", "Seed", "Grow", "RouteBoard"}
	byName := map[string]SpanRecord{}
	for i, r := range recs {
		if r.Name != wantNames[i] {
			t.Fatalf("record %d = %q, want %q", i, r.Name, wantNames[i])
		}
		byName[r.Name] = r
	}
	rootRec := byName["RouteBoard"]
	if rootRec.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", rootRec.Parent)
	}
	if byName["Seed"].Parent != rootRec.ID || byName["Grow"].Parent != rootRec.ID {
		t.Fatal("stage spans must nest under the root span")
	}
	if byName["Solve"].Parent != byName["Seed"].ID {
		t.Fatal("grandchild must nest under its direct parent")
	}
	for _, r := range recs {
		if r.End <= r.Start {
			t.Fatalf("span %s has non-positive duration [%v, %v]", r.Name, r.Start, r.End)
		}
	}
}

func TestSpanOrderIsDeterministic(t *testing.T) {
	run := func() []SpanRecord {
		tr := New(WithClock(fakeClock()))
		ctx := WithTracer(context.Background(), tr)
		rctx, root := StartSpan(ctx, "RouteBoard")
		for _, stage := range []string{"Seed", "Grow", "Refine"} {
			_, sp := StartSpan(rctx, stage)
			sp.End()
		}
		root.End()
		return tr.SpanRecords()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].ID != b[i].ID || a[i].Parent != b[i].Parent ||
			a[i].Start != b[i].Start || a[i].End != b[i].End {
			t.Fatalf("record %d differs between identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestWithTrackAssignsSpansAndEvents(t *testing.T) {
	tr := New(WithClock(fakeClock()))
	ctx := WithTracer(context.Background(), tr)
	v1 := WithTrack(ctx, "rail:VDD1")
	v2 := WithTrack(ctx, "rail:VDD2")

	_, s1 := StartSpan(v1, "Rail")
	Event(v1, "iter.grow", A("nodes", 10))
	s1.End()
	_, s2 := StartSpan(v2, "Rail")
	s2.End()
	_, m := StartSpan(ctx, "RouteBoard")
	m.End()

	recs := tr.SpanRecords()
	tracks := map[string]string{}
	for _, r := range recs {
		tracks[r.Track] = r.Name
	}
	if tracks["rail:VDD1"] != "Rail" || tracks["rail:VDD2"] != "Rail" || tracks[""] != "RouteBoard" {
		t.Fatalf("track assignment wrong: %v", tracks)
	}
	evs := tr.EventRecords()
	if len(evs) != 1 || evs[0].Track != "rail:VDD1" || evs[0].Name != "iter.grow" {
		t.Fatalf("event = %+v, want iter.grow on rail:VDD1", evs)
	}
	// Spans started under a track context inherit the track through nesting.
	rctx, parent := StartSpan(v1, "Grow")
	_, child := StartSpan(rctx, "Solve")
	child.End()
	parent.End()
	recs = tr.SpanRecords()
	last := recs[len(recs)-2] // child ends first
	if last.Name != "Solve" || last.Track != "rail:VDD1" {
		t.Fatalf("nested span track = %+v, want Solve on rail:VDD1", last)
	}
}

func TestSpanFailRecordsError(t *testing.T) {
	tr := New(WithClock(fakeClock()))
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "Grow")
	sp.Fail(nil) // must not mark the span failed
	sp.Fail(errors.New("grow exceeded budget"))
	sp.End()
	recs := tr.SpanRecords()
	if recs[0].Err != "grow exceeded budget" {
		t.Fatalf("span err = %q", recs[0].Err)
	}
}

func TestSetEnabledGatesRecording(t *testing.T) {
	tr := New(WithClock(fakeClock()))
	tr.SetEnabled(false)
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "Seed")
	sp.End()
	Event(ctx, "iter.grow")
	tr.Counter("n").Add(1)
	if len(tr.SpanRecords()) != 0 || len(tr.EventRecords()) != 0 {
		t.Fatal("disabled tracer recorded")
	}
	if c, _ := tr.MetricsSnapshot(); c != nil {
		t.Fatal("disabled tracer collected metrics")
	}
	tr.SetEnabled(true)
	_, sp = StartSpan(ctx, "Seed")
	sp.End()
	if len(tr.SpanRecords()) != 1 {
		t.Fatal("re-enabled tracer must record")
	}
}

func TestCountersAndHistogramsConcurrent(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Counter("solver.iterations").Add(2)
				tr.Histogram("solver.cg_iterations").Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	counters, hists := tr.MetricsSnapshot()
	if counters["solver.iterations"] != 1600 {
		t.Fatalf("counter = %d, want 1600", counters["solver.iterations"])
	}
	h := hists["solver.cg_iterations"]
	if h.Count != 800 {
		t.Fatalf("histogram count = %d, want 800", h.Count)
	}
	if h.Min != 0 || h.Max != 19 {
		t.Fatalf("histogram min/max = %v/%v, want 0/19", h.Min, h.Max)
	}
	var n int64
	for _, b := range h.Buckets {
		n += b
	}
	if n != h.Count {
		t.Fatalf("bucket sum %d != count %d", n, h.Count)
	}
}

func TestVerbosityLevels(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, Quiet)
	log.Info("progress")
	log.Error("failure")
	out := buf.String()
	if strings.Contains(out, "progress") {
		t.Fatal("quiet logger leaked Info")
	}
	if !strings.Contains(out, "failure") {
		t.Fatal("quiet logger dropped Error")
	}

	buf.Reset()
	log = NewLogger(&buf, Normal)
	log.Debug("span detail")
	log.Info("progress")
	out = buf.String()
	if strings.Contains(out, "span detail") || !strings.Contains(out, "progress") {
		t.Fatalf("normal logger filtered wrong: %q", out)
	}

	buf.Reset()
	log = NewLogger(&buf, Verbose)
	log.Debug("span detail")
	if !strings.Contains(buf.String(), "span detail") {
		t.Fatal("verbose logger dropped Debug")
	}
}

func TestWithLoggerEmitsSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := New(WithClock(fakeClock()), WithLogger(NewLogger(&buf, Verbose)))
	ctx := WithTracer(context.Background(), tr)
	_, ok := StartSpan(ctx, "Seed")
	ok.End()
	_, bad := StartSpan(ctx, "Grow")
	bad.Fail(errors.New("boom"))
	bad.End()
	out := buf.String()
	if !strings.Contains(out, "span=Seed") {
		t.Fatalf("missing clean-span log: %q", out)
	}
	if !strings.Contains(out, "span=Grow") || !strings.Contains(out, "level=WARN") {
		t.Fatalf("missing failed-span warn log: %q", out)
	}
}
