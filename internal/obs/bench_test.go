package obs

import (
	"context"
	"io"
	"testing"
)

// The disabled-path benchmarks back the <2% overhead claim: every
// instrumentation site in the pipeline reduces to these operations when no
// tracer is attached, so they must stay in the nanosecond range.

func BenchmarkDisabledStartSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "Seed")
		sp.End()
	}
}

func BenchmarkDisabledEvent(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Event(ctx, "iter.grow")
	}
}

func BenchmarkDisabledEnabledCheck(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Enabled(ctx) {
			b.Fatal("bare context must be disabled")
		}
	}
}

func BenchmarkDisabledCounterAdd(b *testing.B) {
	var tr *Tracer
	c := tr.Counter("solver.iterations")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledStartSpan(b *testing.B) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "Seed")
		sp.End()
	}
}

// benchParts builds a realistic stitched-trace input: three replicas,
// a few hundred spans each, cross-linked by remote parent refs.
func benchParts() []TracePart {
	var parts []TracePart
	var parentRef uint64
	for r, replica := range []string{"r1", "r2", "r3"} {
		part := TracePart{
			Replica:       replica,
			TraceID:       "0123456789abcdef0123456789abcdef",
			ParentRef:     parentRef,
			EpochUnixNano: int64(1700000000_000000000 + r*1000000),
		}
		for i := 0; i < 200; i++ {
			id := uint64(i + 1)
			var parent uint64
			if i > 0 {
				parent = uint64(i) // chain under the previous span
			}
			part.Spans = append(part.Spans, PartSpan{
				ID: id, Parent: parent, Name: "Grow",
				StartNS: int64(i) * 1000, EndNS: int64(i)*1000 + 500,
			})
		}
		parentRef = SpanRef(replica, 200)
		parts = append(parts, part)
	}
	return parts
}

// BenchmarkTraceStitch measures the cross-replica merge the /trace
// endpoint performs per request (600 spans across 3 parts).
func BenchmarkTraceStitch(b *testing.B) {
	parts := benchParts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stitch(parts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrometheusExposition measures one /metrics render over a
// metric population shaped like a loaded replica (wildcard counters,
// labeled and stage histograms).
func BenchmarkPrometheusExposition(b *testing.B) {
	tr := New(WithReplica("bench"))
	for i := 0; i < 8; i++ {
		tr.Counter(MSolverPrecondPrefix + string(rune('a'+i))).Add(int64(i + 1))
	}
	tr.Counter(MJobsAccepted).Add(1000)
	tr.Gauge(MServerWorkers).Set(8)
	hists := []string{
		MJobRunMS, MJobQueueWaitMS, MWALAppendMS, MExploreNodeMS,
		MStagePrefix + "grow", MStagePrefix + "refine", MStageSolve,
		WithLabels(MHTTPRequestMS, "route", "submit", "status", "202"),
		WithLabels(MHTTPRequestMS, "route", "status", "status", "200"),
	}
	for _, name := range hists {
		h := tr.Histogram(name)
		for v := 0.01; v < 10000; v *= 3 {
			h.Observe(v)
		}
	}
	opts := PromOptions{Labels: []string{"replica", "bench", "shard", "bench"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.WritePrometheus(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}
