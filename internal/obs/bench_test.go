package obs

import (
	"context"
	"testing"
)

// The disabled-path benchmarks back the <2% overhead claim: every
// instrumentation site in the pipeline reduces to these operations when no
// tracer is attached, so they must stay in the nanosecond range.

func BenchmarkDisabledStartSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "Seed")
		sp.End()
	}
}

func BenchmarkDisabledEvent(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Event(ctx, "iter.grow")
	}
}

func BenchmarkDisabledEnabledCheck(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Enabled(ctx) {
			b.Fatal("bare context must be disabled")
		}
	}
}

func BenchmarkDisabledCounterAdd(b *testing.B) {
	var tr *Tracer
	c := tr.Counter("solver.iterations")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledStartSpan(b *testing.B) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "Seed")
		sp.End()
	}
}
