package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestWithLabelsDeterministicAndRoundTrips(t *testing.T) {
	a := WithLabels(MHTTPRequestMS, "status", "202", "route", "submit")
	b := WithLabels(MHTTPRequestMS, "route", "submit", "status", "202")
	if a != b {
		t.Fatalf("label order leaked into the series name: %q vs %q", a, b)
	}
	base, labels := splitName(a)
	if base != MHTTPRequestMS {
		t.Fatalf("splitName base = %q", base)
	}
	want := []string{"route", "submit", "status", "202"}
	if len(labels) != len(want) {
		t.Fatalf("splitName labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("splitName labels = %v, want %v (sorted by key)", labels, want)
		}
	}
	if got := WithLabels(MHTTPRequestMS); got != MHTTPRequestMS {
		t.Fatalf("WithLabels with no pairs = %q, want the base name", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("odd kv count must panic — it is a call-site bug")
			}
		}()
		WithLabels(MHTTPRequestMS, "route")
	}()
}

func TestRegistryWildcardsAndKinds(t *testing.T) {
	for _, name := range []string{
		MSolverPrecondPrefix + "jacobi",              // wildcard counter
		MStagePrefix + "grow",                        // wildcard histogram
		MJobsFailedPrefix + "deadline",               // wildcard counter
		WithLabels(MHTTPRequestMS, "route", "trace"), // labeled histogram
	} {
		if !IsMetric(name) {
			t.Fatalf("%q should resolve via the registry", name)
		}
	}
	if IsMetric("totally.unregistered") {
		t.Fatal("unregistered name resolved")
	}
	// Longest wildcard prefix wins so "explore.prefix.hits" (exact) is not
	// shadowed by any shorter family.
	if d, ok := lookupMetric(MExplorePrefixHits); !ok || d.Kind != KindCounter {
		t.Fatalf("exact name lost to a wildcard: %+v %v", d, ok)
	}

	tr := New()
	for _, tc := range []struct {
		name string
		use  func()
	}{
		{"unregistered counter", func() { tr.Counter("no.such.metric") }},
		{"kind mismatch", func() { tr.Counter(MJobRunMS) }},
		{"unregistered histogram", func() { tr.Histogram("no.such.hist") }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic, like faultinject.Arm on an unknown site", tc.name)
				}
			}()
			tc.use()
		}()
	}
}

// metricCallFuncs are the call names whose first string-literal argument
// must be a registered metric name.
var metricCallFuncs = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"WithLabels": true, "count": true, "observe": true,
}

// TestMetricNameLiteralsRegistered is the lint half of the metric
// registry (mirroring the faultinject site registry's source scan): it
// walks every non-test Go file in the module and rejects any string
// literal passed to Counter/Gauge/Histogram/WithLabels (or the engine's
// count/observe helpers) that the registry does not know. Runtime panics
// in mustMetric catch dynamic names; this catches literals on paths no
// test executes.
func TestMetricNameLiteralsRegistered(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || name == "related" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			var fn string
			switch fe := call.Fun.(type) {
			case *ast.SelectorExpr:
				fn = fe.Sel.Name
			case *ast.Ident:
				fn = fe.Name
			default:
				return true
			}
			if !metricCallFuncs[fn] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // constants and built expressions check at runtime
			}
			name, uerr := strconv.Unquote(lit.Value)
			if uerr != nil || name == "" {
				return true
			}
			if !IsMetric(name) {
				violations = append(violations,
					fset.Position(lit.Pos()).String()+": "+fn+"("+lit.Value+") is not registered in internal/obs/names.go")
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the obs package")
		}
		dir = parent
	}
}
