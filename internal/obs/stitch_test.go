package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceContextHeaderRoundTrip(t *testing.T) {
	id := NewTraceID()
	tc := TraceContext{TraceID: id, Parent: 0xdeadbeefcafe0123}
	hdr := tc.Header()
	if !strings.HasPrefix(hdr, "00-"+id+"-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("header %q not in 00-<trace>-<ref>-01 form", hdr)
	}
	got, ok := ParseTraceContext(hdr)
	if !ok || got != tc {
		t.Fatalf("round trip: ParseTraceContext(%q) = (%+v, %v), want %+v", hdr, got, ok, tc)
	}
}

func TestParseTraceContextRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"01-00000000000000000000000000000000-0000000000000001-01", // unknown version
		"00-short-0000000000000001-01",
		"00-0000000000000000000000000000000g-0000000000000001-01", // non-hex trace
		"00-00000000000000000000000000000000-00000000000000zz-01", // non-hex ref
		"00-00000000000000000000000000000000-01",                  // missing field
	}
	for _, v := range bad {
		if tc, ok := ParseTraceContext(v); ok {
			t.Fatalf("ParseTraceContext(%q) accepted as %+v; a bad header must detach the trace", v, tc)
		}
	}
	// A zero context formats to "" and a "" header parses to nothing —
	// the no-trace case needs no special casing at call sites.
	if h := (TraceContext{}).Header(); h != "" {
		t.Fatalf("zero context header = %q, want empty", h)
	}
}

func TestSpanRefNeverZeroAndReplicaQualified(t *testing.T) {
	seen := map[uint64]string{}
	for _, replica := range []string{"", "a", "b", "replica-long-name"} {
		for id := uint64(0); id < 50; id++ {
			ref := SpanRef(replica, id)
			if ref == 0 {
				t.Fatalf("SpanRef(%q, %d) = 0; zero is reserved for no-parent", replica, id)
			}
			key := replica + "/" + string(rune(id))
			if prev, dup := seen[ref]; dup {
				t.Fatalf("SpanRef collision: %s and %s both map to %d", prev, key, ref)
			}
			seen[ref] = key
		}
	}
	if SpanRef("a", 1) == SpanRef("b", 1) {
		t.Fatal("span refs must be qualified by replica name")
	}
	if SpanRef("a", 1) != SpanRef("a", 1) {
		t.Fatal("span refs must be deterministic")
	}
}

func TestContextTraceTracksInnermostSpan(t *testing.T) {
	tr := New(WithReplica("a"), WithClock(fakeClock()))
	ctx := WithTracer(context.Background(), tr)

	// No span open: the header points at the trace root.
	tc := ContextTrace(ctx)
	if tc.TraceID != tr.TraceID() || tc.Parent != 0 {
		t.Fatalf("root context trace = %+v, want trace %s parent 0", tc, tr.TraceID())
	}

	ctx1, sp1 := StartSpan(ctx, "outer")
	ctx2, sp2 := StartSpan(ctx1, "inner")
	if got := ContextTrace(ctx2).Parent; got != SpanRef("a", 2) {
		t.Fatalf("inner context parent ref = %d, want ref of span 2 (%d)", got, SpanRef("a", 2))
	}
	if got := ContextTrace(ctx1).Parent; got != SpanRef("a", 1) {
		t.Fatalf("outer context parent ref = %d, want ref of span 1 (%d)", got, SpanRef("a", 1))
	}
	sp2.End()
	sp1.End()

	// Disabled tracing yields no header at all.
	if h := TraceHeader(context.Background()); h != "" {
		t.Fatalf("TraceHeader without a tracer = %q, want empty", h)
	}
}

func TestTracerAdoptsPropagatedTrace(t *testing.T) {
	origin := New(WithReplica("a"), WithClock(fakeClock()))
	ctx := WithTracer(context.Background(), origin)
	ctx, hop := StartSpan(ctx, "ShardSubmit")
	hdr := TraceHeader(ctx)
	hop.End()

	tc, ok := ParseTraceContext(hdr)
	if !ok {
		t.Fatalf("ParseTraceContext(%q) failed", hdr)
	}
	remote := New(WithReplica("b"), WithTraceID(tc.TraceID), WithRemoteParent(tc.Parent))
	if remote.TraceID() != origin.TraceID() {
		t.Fatalf("remote tracer id %s, want propagated %s", remote.TraceID(), origin.TraceID())
	}
	// Invalid ids are ignored, keeping the generated one.
	kept := New(WithTraceID("nope"))
	if len(kept.TraceID()) != 32 || kept.TraceID() == "nope" {
		t.Fatalf("WithTraceID must ignore invalid ids, got %q", kept.TraceID())
	}
}

// stitchFixture builds the canonical two-replica trace: replica a opens a
// ShardSubmit hop span, replica b runs a Job span (with a nested stage)
// under the propagated ref. Returns the two exported parts.
func stitchFixture(t *testing.T) (partA, partB TracePart) {
	t.Helper()
	epoch := time.Unix(1700000000, 0)
	a := New(WithReplica("a"), WithClock(fakeClock()), WithEpoch(epoch))
	actx := WithTracer(context.Background(), a)
	actx, hop := StartSpan(actx, "ShardSubmit", A("peer", "b"))
	hdr := TraceHeader(actx)

	tc, ok := ParseTraceContext(hdr)
	if !ok {
		t.Fatalf("bad hop header %q", hdr)
	}
	// Replica b's clock is 5ms ahead — the stitcher must align epochs.
	b := New(WithReplica("b"), WithClock(fakeClock()),
		WithEpoch(epoch.Add(5*time.Millisecond)),
		WithTraceID(tc.TraceID), WithRemoteParent(tc.Parent))
	bctx := WithTracer(context.Background(), b)
	bctx, job := StartSpan(bctx, "Job", A("job", "b-1"))
	_, stage := StartSpan(bctx, "Grow")
	stage.End()
	job.End()
	hop.End()
	return a.TracePart(), b.TracePart()
}

func TestStitchResolvesRemoteParents(t *testing.T) {
	partA, partB := stitchFixture(t)
	if partA.TraceID != partB.TraceID {
		t.Fatalf("parts carry different trace ids: %s vs %s", partA.TraceID, partB.TraceID)
	}

	st, err := Stitch([]TracePart{partA, partB})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != partA.TraceID {
		t.Fatalf("stitched trace id %s, want %s", st.TraceID, partA.TraceID)
	}
	if len(st.Spans) != 3 {
		t.Fatalf("stitched %d spans, want 3 (hop, job, stage)", len(st.Spans))
	}
	byName := map[string]StitchedSpan{}
	for _, s := range st.Spans {
		byName[s.Name] = s
	}
	hop, job, stage := byName["ShardSubmit"], byName["Job"], byName["Grow"]
	if hop.Replica != "a" || job.Replica != "b" {
		t.Fatalf("replica attribution wrong: hop on %q, job on %q", hop.Replica, job.Replica)
	}
	if !job.Remote || job.Parent != hop.ID {
		t.Fatalf("Job span must nest under the remote ShardSubmit span: parent=%d remote=%v, hop id=%d",
			job.Parent, job.Remote, hop.ID)
	}
	if stage.Remote || stage.Parent != job.ID {
		t.Fatalf("Grow span must nest locally under Job: parent=%d remote=%v, job id=%d",
			stage.Parent, stage.Remote, job.ID)
	}
	// Epoch skew: b's offsets shift onto a's (earlier) timeline, so the
	// job starts after the hop opened.
	if job.Start <= hop.Start {
		t.Fatalf("epoch alignment lost: job start %v <= hop start %v", job.Start, hop.Start)
	}
}

func TestStitchDeduplicatesAndDegradesGracefully(t *testing.T) {
	partA, partB := stitchFixture(t)

	// The same part gathered via two scatter paths counts once.
	st, err := Stitch([]TracePart{partA, partB, partB, partA})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Spans) != 3 {
		t.Fatalf("dedupe failed: %d spans, want 3", len(st.Spans))
	}

	// A missing part (a's hop never arrived) must not hide b's spans:
	// the unresolvable ref degrades to a root span.
	st, err = Stitch([]TracePart{partB})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Spans) != 2 {
		t.Fatalf("stitched %d spans from the surviving part, want 2", len(st.Spans))
	}
	for _, s := range st.Spans {
		if s.Name == "Job" && (s.Parent != 0 || s.Remote) {
			t.Fatalf("unresolvable remote ref must degrade to a root span, got parent=%d remote=%v", s.Parent, s.Remote)
		}
	}

	// Empty input and empty parts stitch to an empty, valid trace.
	st, err = Stitch([]TracePart{{Replica: "idle"}})
	if err != nil || len(st.Spans) != 0 {
		t.Fatalf("empty parts: (%d spans, %v), want (0, nil)", len(st.Spans), err)
	}
}

func TestStitchedChromeTraceDrawsHops(t *testing.T) {
	partA, partB := stitchFixture(t)
	st, err := Stitch([]TracePart{partA, partB})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	pids := map[string]int{}
	var flowStarts, flowEnds int
	spanPID := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "process_name" && ev.Ph == "M":
			pids[ev.Args["name"].(string)] = ev.PID
		case ev.Name == "hop" && ev.Ph == "s":
			flowStarts++
		case ev.Name == "hop" && ev.Ph == "f":
			flowEnds++
		case ev.Ph == "X":
			spanPID[ev.Name] = ev.PID
		}
	}
	if pids["a"] == 0 || pids["b"] == 0 || pids["a"] == pids["b"] {
		t.Fatalf("want one process row per replica, got %v", pids)
	}
	if flowStarts != 1 || flowEnds != 1 {
		t.Fatalf("want exactly one flow arrow across the hop, got %d starts / %d ends", flowStarts, flowEnds)
	}
	if spanPID["ShardSubmit"] != pids["a"] || spanPID["Job"] != pids["b"] {
		t.Fatalf("span/process attribution wrong: %v vs %v", spanPID, pids)
	}
}
