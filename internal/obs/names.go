package obs

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the canonical metric registry, mirroring the faultinject
// site registry: every counter, gauge and histogram name used anywhere in
// the tree is declared here as a constant and registered with its kind,
// help text and (for histograms) bucket bounds. Tracer.Counter/Gauge/
// Histogram panic on an unregistered name — exactly like faultinject.Arm
// on an unregistered site — and TestMetricNameLiteralsRegistered rejects
// stray string literals at lint time, so metric names cannot drift apart
// across the server, explorer and WAL again.
//
// Families with a dynamic tail (per-rung solver counters, per-failure-kind
// job counters) register a "prefix.*" wildcard. Per-series dimensions that
// Prometheus should see as labels (HTTP route/status) are appended with
// WithLabels, which the registry strips before matching.

// MetricKind distinguishes the three metric families.
type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(k))
	}
}

// Canonical metric names. Keep the strings identical to what earlier PRs
// emitted — dashboards and tests key off them.
const (
	// Solver telemetry (PR 3).
	MSolverSolves           = "solver.solves"
	MSolverIterations       = "solver.iterations"
	MSolverEscalations      = "solver.escalations"
	MSolverFailures         = "solver.failures"
	MSolverPrecondPrefix    = "solver.precond." // + preconditioner name
	MSolverRungPrefix       = "solver.rung."    // + ladder rung name
	MSolverCGIterations     = "solver.cg_iterations"
	MSolverResidualNegLog10 = "solver.residual_neglog10"
	MLaplacianNNZ           = "laplacian.nnz"

	// Incremental solver session (PR 10): the per-pipeline solver cache
	// that keeps the induced subgraph, Laplacian, and preconditioner
	// alive across grow/refine iterations.
	MSolverCacheHits          = "solver.cache.hits"
	MSolverCacheRebuilds      = "solver.cache.rebuilds"
	MSolverCacheInvalidations = "solver.cache.invalidations"
	// Aggregation-AMG ladder rung (PR 10): hierarchy constructions and
	// their level counts (one build per Laplacian, lazily on first
	// escalation into the cg-amg rung).
	MSolverAMGBuilds = "solver.amg.builds"
	MSolverAMGLevels = "solver.amg.levels"

	// Pipeline stage latency (PR 8): one histogram per paper stage,
	// observed in milliseconds when the stage span closes. MStageSolve is
	// the nodal-analysis slice observed around each linear-system solve.
	MStagePrefix = "stage." // + lowercased stage span name
	MStageSolve  = "stage.solve"

	// Explorer (PR 5).
	MExploreOrders       = "explore.orders"
	MExploreWorkers      = "explore.workers"
	MExplorePrefixHits   = "explore.prefix.hits"
	MExplorePrefixMisses = "explore.prefix.misses"
	MExploreNodeMS       = "explore.node_ms"

	// sproutd engine (PR 4/5/6).
	MJobsAccepted           = "server.jobs.accepted"
	MJobsDeduped            = "server.jobs.deduped"
	MJobsDone               = "server.jobs.done"
	MJobsFailed             = "server.jobs.failed"
	MJobsFailedPrefix       = "server.jobs.failed_" // + ErrKind
	MJobsPanics             = "server.jobs.panics"
	MJobsRecovered          = "server.jobs.recovered"
	MJobsRejectedOverloaded = "server.jobs.rejected_overloaded"
	MJobsRejectedShutdown   = "server.jobs.rejected_shutdown"
	MJobsRejectedStore      = "server.jobs.rejected_store"
	MServerExploreOrders    = "server.explore.orders"
	MServerExploreHits      = "server.explore.prefix_hits"
	MServerExploreMisses    = "server.explore.prefix_misses"
	MJobQueueWaitMS         = "server.job.queue_wait_ms"
	MJobRunMS               = "server.job.run_ms"
	MDedupeHits             = "dedupe.hits"

	// Engine gauges surfaced at scrape time (PR 8).
	MServerAccepting = "server.accepting"
	MServerQueueLen  = "server.queue_len"
	MServerQueueCap  = "server.queue_cap"
	MServerInFlight  = "server.in_flight"
	MServerWorkers   = "server.workers"

	// Durable store (PR 6) plus PR 8 latency histograms.
	MWALAppends       = "wal.appends"
	MWALCompactions   = "wal.compactions"
	MWALRecoveredJobs = "wal.recovered_jobs"
	MWALTruncatedTail = "wal.truncated_tail"
	MWALAppendMS      = "wal.append_ms"
	MWALCompactMS     = "wal.compact_ms"
	MWALRecoverMS     = "wal.recover_ms"

	// Shard routing (PR 6) and fleet aggregation (PR 8).
	MShardFailovers    = "shard.failovers"
	MFleetPeerErrors   = "fleet.peer_errors"
	MFleetScrapeMS     = "fleet.scrape_ms"
	MTracePartsStored  = "trace.parts.stored"
	MTracePartsEvicted = "trace.parts.evicted"

	// HTTP surface (PR 8): request latency by route/status via WithLabels.
	MHTTPRequestMS = "http.request_ms"

	// Client-side retry telemetry (PR 8).
	MClientSubmitAttempts   = "client.submit.attempts"
	MClientSubmitBackoffMS  = "client.submit.backoff_ms"
	MClientRetryAfterUsed   = "client.submit.retry_after_honored"
	MClientTransportRetries = "client.submit.transport_retries"

	// Self-healing execution (PR 9): attempt budgets, poison quarantine
	// and durable exploration checkpoints.
	MJobsQuarantined     = "server.jobs.quarantined"
	MJobsRequeued        = "server.jobs.requeued"
	MJobAttempts         = "server.job.attempts"
	MCkptResumes         = "server.ckpt.resumes"
	MCkptDecodeFailures  = "server.ckpt.decode_failures"
	MWALCkptWrites       = "wal.checkpoint.writes"
	MWALCkptWriteErrors  = "wal.checkpoint.write_errors"
	MExploreCkptSaved    = "explore.ckpt.saved"
	MExploreCkptSinkErrs = "explore.ckpt.sink_errors"
	MExploreCkptOrders   = "explore.ckpt.resumed_orders"
	MExploreCkptRejected = "explore.ckpt.rejected"
)

// countBuckets are the original power-of-four bounds: they cover CG
// iteration counts, Laplacian nnz and other size-like distributions.
var countBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}

// latencyBucketsMS are the bounds for every *_ms histogram: sub-10µs WAL
// appends through multi-minute routing jobs.
var latencyBucketsMS = []float64{0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 60000}

// attemptBuckets bound small try-count distributions (client retries).
var attemptBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16}

// MetricDef describes one registered metric (or a "prefix.*" family).
type MetricDef struct {
	// Name is the canonical name, or a wildcard ending in "*" matching any
	// name with that prefix.
	Name string
	Kind MetricKind
	// Help is the Prometheus HELP text.
	Help string
	// Buckets are the histogram bucket upper bounds (nil on counters and
	// gauges; nil on a histogram selects countBuckets).
	Buckets []float64
}

var metricRegistry = map[string]MetricDef{}

func register(defs ...MetricDef) {
	for _, d := range defs {
		if _, dup := metricRegistry[d.Name]; dup {
			panic("obs: duplicate metric registration: " + d.Name)
		}
		metricRegistry[d.Name] = d
	}
}

func init() {
	register(
		MetricDef{Name: MSolverSolves, Kind: KindCounter, Help: "Linear solves attempted by the fallback ladder."},
		MetricDef{Name: MSolverIterations, Kind: KindCounter, Help: "Total CG iterations across all solves."},
		MetricDef{Name: MSolverEscalations, Kind: KindCounter, Help: "Solver-ladder escalations past a failed rung."},
		MetricDef{Name: MSolverFailures, Kind: KindCounter, Help: "Solves that exhausted every ladder rung."},
		MetricDef{Name: MSolverPrecondPrefix + "*", Kind: KindCounter, Help: "Solves per active preconditioner."},
		MetricDef{Name: MSolverRungPrefix + "*", Kind: KindCounter, Help: "Solves won per ladder rung."},
		MetricDef{Name: MSolverCGIterations, Kind: KindHistogram, Help: "CG iterations per solve attempt.", Buckets: countBuckets},
		MetricDef{Name: MSolverResidualNegLog10, Kind: KindHistogram, Help: "Accepted-solve relative residual as -log10.", Buckets: countBuckets},
		MetricDef{Name: MLaplacianNNZ, Kind: KindHistogram, Help: "Nonzeros of each solved Laplacian.", Buckets: countBuckets},
		MetricDef{Name: MSolverCacheHits, Kind: KindCounter, Help: "Nodal analyses served from the cached solver session (unchanged member mask)."},
		MetricDef{Name: MSolverCacheRebuilds, Kind: KindCounter, Help: "Solver-session structural rebuilds after a member-mask delta."},
		MetricDef{Name: MSolverCacheInvalidations, Kind: KindCounter, Help: "Warm-start vectors dropped after a rung-1 stall; the solve fell back to a cold rebuild."},
		MetricDef{Name: MSolverAMGBuilds, Kind: KindCounter, Help: "AMG hierarchy constructions (lazy, one per Laplacian reaching the cg-amg rung)."},
		MetricDef{Name: MSolverAMGLevels, Kind: KindHistogram, Help: "Levels per constructed AMG hierarchy.", Buckets: countBuckets},

		MetricDef{Name: MStagePrefix + "*", Kind: KindHistogram, Help: "Pipeline stage latency in milliseconds.", Buckets: latencyBucketsMS},

		MetricDef{Name: MExploreOrders, Kind: KindCounter, Help: "Net orders enumerated by the explorer."},
		MetricDef{Name: MExploreWorkers, Kind: KindGauge, Help: "Explorer worker-pool size."},
		MetricDef{Name: MExplorePrefixHits, Kind: KindCounter, Help: "Explorer prefix-cache hits (memoized rail routes)."},
		MetricDef{Name: MExplorePrefixMisses, Kind: KindCounter, Help: "Explorer prefix-cache misses (actual rail routes)."},
		MetricDef{Name: MExploreNodeMS, Kind: KindHistogram, Help: "Explorer permutation-tree node latency in milliseconds.", Buckets: latencyBucketsMS},

		MetricDef{Name: MJobsAccepted, Kind: KindCounter, Help: "Jobs accepted by admission control."},
		MetricDef{Name: MJobsDeduped, Kind: KindCounter, Help: "Submissions answered from an existing job."},
		MetricDef{Name: MJobsDone, Kind: KindCounter, Help: "Jobs finished successfully."},
		MetricDef{Name: MJobsFailed, Kind: KindCounter, Help: "Jobs finished with a typed error."},
		MetricDef{Name: MJobsFailedPrefix + "*", Kind: KindCounter, Help: "Failed jobs by error kind."},
		MetricDef{Name: MJobsPanics, Kind: KindCounter, Help: "Contained job panics."},
		MetricDef{Name: MJobsRecovered, Kind: KindCounter, Help: "Jobs re-enqueued from the durable store at startup."},
		MetricDef{Name: MJobsRejectedOverloaded, Kind: KindCounter, Help: "Submissions rejected with 429 (queue full)."},
		MetricDef{Name: MJobsRejectedShutdown, Kind: KindCounter, Help: "Submissions rejected with 503 (draining)."},
		MetricDef{Name: MJobsRejectedStore, Kind: KindCounter, Help: "Submissions rejected because the store could not make them durable."},
		MetricDef{Name: MServerExploreOrders, Kind: KindCounter, Help: "Orders evaluated across exploration jobs."},
		MetricDef{Name: MServerExploreHits, Kind: KindCounter, Help: "Explorer prefix-cache hits across jobs."},
		MetricDef{Name: MServerExploreMisses, Kind: KindCounter, Help: "Explorer prefix-cache misses across jobs."},
		MetricDef{Name: MJobQueueWaitMS, Kind: KindHistogram, Help: "Queue wait per job in milliseconds.", Buckets: latencyBucketsMS},
		MetricDef{Name: MJobRunMS, Kind: KindHistogram, Help: "Run time per job in milliseconds.", Buckets: latencyBucketsMS},
		MetricDef{Name: MDedupeHits, Kind: KindCounter, Help: "Keyless submissions singleflighted onto a live job by content hash."},

		MetricDef{Name: MServerAccepting, Kind: KindGauge, Help: "1 while admission is open, 0 while draining."},
		MetricDef{Name: MServerQueueLen, Kind: KindGauge, Help: "Jobs waiting in the admission queue."},
		MetricDef{Name: MServerQueueCap, Kind: KindGauge, Help: "Admission queue capacity."},
		MetricDef{Name: MServerInFlight, Kind: KindGauge, Help: "Jobs currently routing."},
		MetricDef{Name: MServerWorkers, Kind: KindGauge, Help: "Worker-pool size."},

		MetricDef{Name: MWALAppends, Kind: KindCounter, Help: "WAL records appended."},
		MetricDef{Name: MWALCompactions, Kind: KindCounter, Help: "Snapshot+compaction passes."},
		MetricDef{Name: MWALRecoveredJobs, Kind: KindCounter, Help: "Accepted-but-unfinished jobs re-enqueued by recovery."},
		MetricDef{Name: MWALTruncatedTail, Kind: KindCounter, Help: "Torn or corrupt WAL tails truncated during recovery."},
		MetricDef{Name: MWALAppendMS, Kind: KindHistogram, Help: "WAL append (incl. fsync when enabled) latency in milliseconds.", Buckets: latencyBucketsMS},
		MetricDef{Name: MWALCompactMS, Kind: KindHistogram, Help: "Snapshot+compaction latency in milliseconds.", Buckets: latencyBucketsMS},
		MetricDef{Name: MWALRecoverMS, Kind: KindHistogram, Help: "Startup recovery latency in milliseconds.", Buckets: latencyBucketsMS},

		MetricDef{Name: MShardFailovers, Kind: KindCounter, Help: "Submissions that failed over past the ring owner."},
		MetricDef{Name: MFleetPeerErrors, Kind: KindCounter, Help: "Fleet-metrics scrapes that found a peer unreachable."},
		MetricDef{Name: MFleetScrapeMS, Kind: KindHistogram, Help: "Per-peer fleet-metrics scrape latency in milliseconds.", Buckets: latencyBucketsMS},
		MetricDef{Name: MTracePartsStored, Kind: KindCounter, Help: "Foreign trace parts recorded for stitching."},
		MetricDef{Name: MTracePartsEvicted, Kind: KindCounter, Help: "Foreign trace parts evicted by the bounded part store."},

		MetricDef{Name: MHTTPRequestMS, Kind: KindHistogram, Help: "HTTP handler latency in milliseconds by route and status.", Buckets: latencyBucketsMS},

		MetricDef{Name: MClientSubmitAttempts, Kind: KindHistogram, Help: "Submit attempts used per client submission.", Buckets: attemptBuckets},
		MetricDef{Name: MClientSubmitBackoffMS, Kind: KindHistogram, Help: "Client backoff sleeps in milliseconds.", Buckets: latencyBucketsMS},
		MetricDef{Name: MClientRetryAfterUsed, Kind: KindCounter, Help: "Backoff sleeps that honored a server Retry-After hint."},
		MetricDef{Name: MClientTransportRetries, Kind: KindCounter, Help: "Submit attempts retried after a transport-level failure."},

		MetricDef{Name: MJobsQuarantined, Kind: KindCounter, Help: "Jobs quarantined after exhausting their attempt budget."},
		MetricDef{Name: MJobsRequeued, Kind: KindCounter, Help: "Quarantined jobs revived by an operator requeue."},
		MetricDef{Name: MJobAttempts, Kind: KindHistogram, Help: "Start attempts used per finished job.", Buckets: attemptBuckets},
		MetricDef{Name: MCkptResumes, Kind: KindCounter, Help: "Jobs resumed from a durable exploration checkpoint."},
		MetricDef{Name: MCkptDecodeFailures, Kind: KindCounter, Help: "Stored exploration checkpoints that failed to decode (job restarted from scratch)."},
		MetricDef{Name: MWALCkptWrites, Kind: KindCounter, Help: "Exploration checkpoints persisted to the WAL."},
		MetricDef{Name: MWALCkptWriteErrors, Kind: KindCounter, Help: "Exploration-checkpoint persists that failed (sweep continues unchecked)."},
		MetricDef{Name: MExploreCkptSaved, Kind: KindCounter, Help: "Checkpoints emitted by the explorer's reducer."},
		MetricDef{Name: MExploreCkptSinkErrs, Kind: KindCounter, Help: "Checkpoint sink invocations that returned an error (non-fatal)."},
		MetricDef{Name: MExploreCkptOrders, Kind: KindCounter, Help: "Net orders skipped by resuming from a checkpoint."},
		MetricDef{Name: MExploreCkptRejected, Kind: KindCounter, Help: "Resume checkpoints rejected as stale or inconsistent."},
	)
}

// WithLabels appends a deterministic label suffix to a registered metric
// name: WithLabels("http.request_ms", "route", "submit", "status", "202")
// yields `http.request_ms{route=submit,status=202}`. The Prometheus
// encoder splits the suffix back into real labels; the JSON surface keeps
// the combined string as the map key. Keys are sorted so the same label
// set always produces the same series name. Panics on an odd kv count —
// a call-site bug, like an unregistered name.
func WithLabels(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("obs: WithLabels: odd key/value count for " + base)
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a metric name from its WithLabels suffix. Labels
// come back as alternating key/value pairs, already in sorted-key order.
func splitName(name string) (base string, labels []string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base = name[:i]
	for _, kv := range strings.Split(name[i+1:len(name)-1], ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		labels = append(labels, k, v)
	}
	return base, labels
}

// lookupMetric resolves a (possibly labeled, possibly wildcard-matched)
// name to its registration.
func lookupMetric(name string) (MetricDef, bool) {
	base, _ := splitName(name)
	if d, ok := metricRegistry[base]; ok {
		return d, ok
	}
	// Wildcard families: longest matching "prefix.*" wins.
	best := MetricDef{}
	found := false
	for wname, d := range metricRegistry {
		if !strings.HasSuffix(wname, "*") {
			continue
		}
		p := strings.TrimSuffix(wname, "*")
		if strings.HasPrefix(base, p) && (!found || len(p) > len(strings.TrimSuffix(best.Name, "*"))) {
			best, found = d, true
		}
	}
	return best, found
}

// IsMetric reports whether name (after stripping any label suffix)
// matches a registered metric or wildcard family.
func IsMetric(name string) bool {
	_, ok := lookupMetric(name)
	return ok
}

// MetricNames returns the registered canonical names and wildcard
// families in sorted order.
func MetricNames() []string {
	out := make([]string, 0, len(metricRegistry))
	for n := range metricRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// mustMetric resolves a name or panics — the faultinject.Arm contract
// applied to metrics, so an unregistered name fails loudly in the first
// test that touches it instead of silently forking the naming scheme.
func mustMetric(name string, kind MetricKind) MetricDef {
	d, ok := lookupMetric(name)
	if !ok {
		panic(fmt.Sprintf("obs: %s %q is not a registered metric (add it to internal/obs/names.go)", kind, name))
	}
	if d.Kind != kind {
		panic(fmt.Sprintf("obs: metric %q is registered as a %s, used as a %s", name, d.Kind, kind))
	}
	return d
}
