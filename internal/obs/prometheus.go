package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the tracer's
// counters, gauges and histograms. Internal dotted names map to a
// sprout_ namespace ("wal.append_ms" -> "sprout_wal_append_ms"),
// WithLabels suffixes become real Prometheus labels, counters gain the
// conventional _total suffix, and each histogram family is emitted as
// cumulative _bucket series plus _sum/_count and three companion gauge
// families (_p50/_p95/_p99) with quantiles interpolated from the fixed
// buckets — so an SLO dashboard needs no histogram_quantile() at all.

// PromContentType is the Content-Type of the exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromOptions configure the exposition.
type PromOptions struct {
	// Labels are alternating key/value pairs attached to every series
	// (e.g. "replica", "a", "shard", "a").
	Labels []string
}

// promName maps an internal dotted metric name to a Prometheus metric
// name: sprout_ namespace, [.-] -> _, any other invalid rune -> _.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("sprout_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelValue escapes a label value per the exposition format.
func promLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promLabels renders alternating key/value pairs as a {k="v",...} block
// ("" when empty). Pairs must already be in emission order.
func promLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(promLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat formats a sample value; integral floats print without an
// exponent so counters read naturally.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLine is one fully-labeled sample pending emission. Suffix extends
// the family name ("_bucket", "_sum", "" ...); labels are alternating
// kv pairs emitted after the global ones.
type promLine struct {
	suffix string
	labels []string
	value  float64
}

// promFamily groups the samples of one metric family under a single
// HELP/TYPE header, as the exposition format requires.
type promFamily struct {
	name string // Prometheus family name (incl. _total for counters)
	typ  string
	help string
	rows []promLine
}

// familySet accumulates families keyed by name in first-use order.
type familySet struct {
	byName map[string]*promFamily
	order  []string
}

func (fs *familySet) add(name, typ, help string, rows ...promLine) {
	if fs.byName == nil {
		fs.byName = map[string]*promFamily{}
	}
	f, ok := fs.byName[name]
	if !ok {
		f = &promFamily{name: name, typ: typ, help: help}
		fs.byName[name] = f
		fs.order = append(fs.order, name)
	}
	f.rows = append(f.rows, rows...)
}

// WritePrometheus writes the tracer's metrics in Prometheus text format.
// A nil or disabled tracer writes nothing (an empty, valid exposition).
func (t *Tracer) WritePrometheus(w io.Writer, opts PromOptions) error {
	if !t.Enabled() {
		return nil
	}
	counters, hists := t.MetricsSnapshot()
	gauges := t.GaugesSnapshot()
	return writePromSnapshot(w, counters, gauges, hists, opts)
}

// writePromSnapshot renders already-snapshotted metric maps — shared by
// WritePrometheus and the fleet-metrics aggregator, which re-exposes
// peers' snapshots under their own replica labels.
func writePromSnapshot(w io.Writer, counters, gauges map[string]int64, hists map[string]HistogramSummary, opts PromOptions) error {
	if len(opts.Labels)%2 != 0 {
		return fmt.Errorf("obs: prometheus: odd global label count")
	}
	var fs familySet

	for _, name := range sortedKeys(counters) {
		base, labels := splitName(name)
		fs.add(promName(base)+"_total", "counter", registeredHelp(base),
			promLine{labels: labels, value: float64(counters[name])})
	}
	for _, name := range sortedKeys(gauges) {
		base, labels := splitName(name)
		fs.add(promName(base), "gauge", registeredHelp(base),
			promLine{labels: labels, value: float64(gauges[name])})
	}
	for _, name := range sortedKeys(hists) {
		base, labels := splitName(name)
		help := registeredHelp(base)
		s := hists[name]
		pn := promName(base)
		rows := make([]promLine, 0, len(s.Bounds)+3)
		var cum int64
		for i, bound := range s.Bounds {
			if i < len(s.Buckets) {
				cum += s.Buckets[i]
			}
			rows = append(rows, promLine{
				suffix: "_bucket",
				labels: append(append([]string(nil), labels...), "le", promFloat(bound)),
				value:  float64(cum),
			})
		}
		rows = append(rows,
			promLine{suffix: "_bucket", labels: append(append([]string(nil), labels...), "le", "+Inf"), value: float64(s.Count)},
			promLine{suffix: "_sum", labels: labels, value: s.Sum},
			promLine{suffix: "_count", labels: labels, value: float64(s.Count)},
		)
		fs.add(pn, "histogram", help, rows...)
		for _, q := range []struct {
			suffix string
			v      float64
		}{{"_p50", s.P50}, {"_p95", s.P95}, {"_p99", s.P99}} {
			fs.add(pn+q.suffix, "gauge", help+" ("+strings.TrimPrefix(q.suffix, "_")+" estimate)",
				promLine{labels: labels, value: q.v})
		}
	}

	for _, name := range fs.order {
		f := fs.byName[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, row := range f.rows {
			all := append(append([]string(nil), opts.Labels...), row.labels...)
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, row.suffix, promLabels(all), promFloat(row.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// registeredHelp returns the registry HELP text for a base name ("" when
// the name resolves to nothing — foreign fleet snapshots may carry names
// a newer replica registered).
func registeredHelp(base string) string {
	if d, ok := lookupMetric(base); ok {
		return d.Help
	}
	return ""
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
