package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolygonSignedArea(t *testing.T) {
	ccw := Poly(Pt(0, 0), Pt(4, 0), Pt(4, 3), Pt(0, 3))
	if got := ccw.SignedArea2(); got != 24 {
		t.Fatalf("ccw signed area2 = %d, want 24", got)
	}
	cw := Poly(Pt(0, 0), Pt(0, 3), Pt(4, 3), Pt(4, 0))
	if got := cw.SignedArea2(); got != -24 {
		t.Fatalf("cw signed area2 = %d, want -24", got)
	}
	if got := ccw.Area(); got != 12 {
		t.Fatalf("area = %g, want 12", got)
	}
}

func TestPolygonBounds(t *testing.T) {
	p := Poly(Pt(2, -1), Pt(10, 4), Pt(-3, 7))
	if got, want := p.Bounds(), (Rect{-3, -1, 10, 7}); got != want {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
}

func TestPolygonContains(t *testing.T) {
	tri := Poly(Pt(0, 0), Pt(10, 0), Pt(0, 10))
	if !tri.Contains(Pt(2, 2)) {
		t.Fatal("interior point")
	}
	if tri.Contains(Pt(8, 8)) {
		t.Fatal("exterior point")
	}
	if tri.Contains(Pt(-1, 5)) {
		t.Fatal("left of polygon")
	}
}

func TestPolygonIsRectilinear(t *testing.T) {
	if !PolyFromRect(Rect{0, 0, 5, 5}).IsRectilinear() {
		t.Fatal("rect polygon is rectilinear")
	}
	if Poly(Pt(0, 0), Pt(10, 0), Pt(0, 10)).IsRectilinear() {
		t.Fatal("triangle is not rectilinear")
	}
}

func TestRasterizeRectExact(t *testing.T) {
	p := PolyFromRect(Rect{3, 4, 17, 9})
	g, err := p.Rasterize(1)
	if err != nil {
		t.Fatal(err)
	}
	regionEq(t, g, RegionFromRect(Rect{3, 4, 17, 9}), "rect rasterizes exactly")
}

func TestRasterizeLShapeExact(t *testing.T) {
	// Counterclockwise L.
	p := Poly(Pt(0, 0), Pt(10, 0), Pt(10, 4), Pt(4, 4), Pt(4, 10), Pt(0, 10))
	g, err := p.Rasterize(5)
	if err != nil {
		t.Fatal(err)
	}
	want := RegionFromRects([]Rect{{0, 0, 10, 4}, {0, 4, 4, 10}})
	regionEq(t, g, want, "rectilinear L rasterizes exactly regardless of pitch")
	if got := g.Area(); got != 64 {
		t.Fatalf("area = %d, want 64", got)
	}
}

func TestRasterizeTriangleApprox(t *testing.T) {
	p := Poly(Pt(0, 0), Pt(100, 0), Pt(0, 100))
	g, err := p.Rasterize(2)
	if err != nil {
		t.Fatal(err)
	}
	// Stair-stepped area must be within a couple of band-areas of 5000.
	got := float64(g.Area())
	if math.Abs(got-5000) > 150 {
		t.Fatalf("triangle raster area = %g, want ~5000", got)
	}
}

func TestRasterizeErrors(t *testing.T) {
	if _, err := Poly(Pt(0, 0), Pt(1, 1)).Rasterize(1); err == nil {
		t.Fatal("2-vertex polygon must error")
	}
	if _, err := PolyFromRect(Rect{0, 0, 5, 5}).Rasterize(0); err == nil {
		t.Fatal("pitch 0 must error")
	}
	// Degenerate zero-area polygon is fine and empty.
	g, err := Poly(Pt(0, 0), Pt(5, 0), Pt(5, 0), Pt(0, 0)).Rasterize(1)
	if err != nil || !g.Empty() {
		t.Fatalf("degenerate polygon: g=%v err=%v", g, err)
	}
}

func TestCircle(t *testing.T) {
	g := Circle(Pt(0, 0), 50, 1)
	area := float64(g.Area())
	ideal := math.Pi * 50 * 50
	if math.Abs(area-ideal)/ideal > 0.03 {
		t.Fatalf("circle area %g deviates >3%% from %g", area, ideal)
	}
	if !g.Contains(Pt(0, 0)) {
		t.Fatal("circle contains center")
	}
	if g.Contains(Pt(49, 49)) {
		t.Fatal("circle excludes corner")
	}
	if !Circle(Pt(0, 0), 0, 1).Empty() {
		t.Fatal("zero-radius circle empty")
	}
}

func TestOctagon(t *testing.T) {
	g := Octagon(Pt(100, 100), 20)
	if g.Empty() {
		t.Fatal("octagon not empty")
	}
	if !g.Contains(Pt(100, 100)) {
		t.Fatal("octagon contains center")
	}
	if g.Contains(Pt(119, 119)) {
		t.Fatal("octagon chamfers corners")
	}
	b := g.Bounds()
	if b.W() != 40 || b.H() != 40 {
		t.Fatalf("octagon bbox = %v, want 40x40", b)
	}
}

func TestQuickRasterizeRectilinearMatchesRegion(t *testing.T) {
	// For unions of rects, tracing to polygons and re-rasterizing must give
	// back the identical region (round-trip through the polygon domain).
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		g := randomRegion(rng)
		var back Region
		for _, pw := range g.Polygons() {
			outer, err := pw.Outer.Rasterize(1)
			if err != nil {
				return false
			}
			for _, h := range pw.Holes {
				hr, err := h.Rasterize(1)
				if err != nil {
					return false
				}
				outer = outer.Subtract(hr)
			}
			back = back.Union(outer)
		}
		return back.Equal(g)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
