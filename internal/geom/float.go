package geom

import "math"

// Eps is the default relative tolerance for floating-point comparisons in
// the geometry layer: coarse enough to absorb the rounding of area and
// chord computations, far finer than any design-rule quantity.
const Eps = 1e-9

// AlmostEqual reports whether a and b agree to within Eps, combining an
// absolute test (for values near zero) with a relative one (for large
// areas, where an absolute epsilon would be meaningless). This is the
// comparison the floateq analyzer demands in place of == on floats.
func AlmostEqual(a, b float64) bool {
	return AlmostEqualTol(a, b, Eps)
}

// AlmostEqualTol is AlmostEqual with a caller-chosen tolerance.
func AlmostEqualTol(a, b, tol float64) bool {
	if a == b { //lint:ignore floateq the exact fast path is the point of this helper
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}
