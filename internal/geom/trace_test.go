package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTraceRect(t *testing.T) {
	g := RegionFromRect(Rect{0, 0, 10, 5})
	loops := g.Trace()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if len(l.V) != 4 {
		t.Fatalf("rect loop vertices = %d, want 4: %v", len(l.V), l.V)
	}
	if l.SignedArea2() != 100 {
		t.Fatalf("signed area2 = %d, want 100 (CCW)", l.SignedArea2())
	}
}

func TestTraceLShape(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 10, 4}, {0, 4, 4, 10}})
	loops := g.Trace()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if got := len(loops[0].V); got != 6 {
		t.Fatalf("L-shape vertices = %d, want 6: %v", got, loops[0].V)
	}
	if loops[0].SignedArea2() != 2*64 {
		t.Fatalf("L-shape area2 = %d, want 128", loops[0].SignedArea2())
	}
}

func TestTraceHole(t *testing.T) {
	g := RegionFromRect(Rect{0, 0, 10, 10}).Subtract(RegionFromRect(Rect{4, 4, 6, 6}))
	loops := g.Trace()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2 (outer+hole)", len(loops))
	}
	var outer, hole *Loop
	for i := range loops {
		if loops[i].IsHole() {
			hole = &loops[i]
		} else {
			outer = &loops[i]
		}
	}
	if outer == nil || hole == nil {
		t.Fatalf("expected one outer and one hole, got %+v", loops)
	}
	if outer.SignedArea2() != 200 {
		t.Fatalf("outer area2 = %d, want 200", outer.SignedArea2())
	}
	if hole.SignedArea2() != -8 {
		t.Fatalf("hole area2 = %d, want -8", hole.SignedArea2())
	}

	pws := g.Polygons()
	if len(pws) != 1 || len(pws[0].Holes) != 1 {
		t.Fatalf("polygons grouping = %+v, want 1 outer with 1 hole", pws)
	}
}

func TestTraceTwoComponents(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 3, 3}, {10, 10, 13, 13}})
	loops := g.Trace()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	for _, l := range loops {
		if l.IsHole() {
			t.Fatalf("disjoint squares should have no holes: %v", l.V)
		}
	}
}

func TestTraceCornerTouch(t *testing.T) {
	// Two squares sharing only the corner (1,1): two separate CCW loops.
	g := RegionFromRects([]Rect{{0, 0, 1, 1}, {1, 1, 2, 2}})
	loops := g.Trace()
	if len(loops) != 2 {
		t.Fatalf("corner-touch loops = %d, want 2: %+v", len(loops), loops)
	}
	for _, l := range loops {
		if l.SignedArea2() != 2 {
			t.Fatalf("each unit square loop area2 = %d, want 2", l.SignedArea2())
		}
		if len(l.V) != 4 {
			t.Fatalf("unit square loop must have 4 vertices, got %v", l.V)
		}
	}
}

func TestTraceCheckerboardVertexWithHole(t *testing.T) {
	// Big square minus two sub-squares meeting at the center: the remaining
	// region is two corner-touching squares.
	g := RegionFromRect(Rect{0, 0, 2, 2}).
		Subtract(RegionFromRect(Rect{0, 0, 1, 1})).
		Subtract(RegionFromRect(Rect{1, 1, 2, 2}))
	loops := g.Trace()
	if len(loops) != 2 {
		t.Fatalf("pinwheel loops = %d, want 2", len(loops))
	}
	var total int64
	for _, l := range loops {
		if l.IsHole() {
			t.Fatal("no holes expected")
		}
		total += l.SignedArea2()
	}
	if total != 4 {
		t.Fatalf("total area2 = %d, want 4", total)
	}
}

func TestVertexCount(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 10, 4}, {0, 4, 4, 10}})
	if got := g.VertexCount(); got != 6 {
		t.Fatalf("vertex count = %d, want 6", got)
	}
}

func TestQuickTraceAreaMatches(t *testing.T) {
	// Sum of signed loop areas equals region area for any region.
	rng := rand.New(rand.NewSource(10))
	f := func() bool {
		g := randomRegion(rng)
		var area2 int64
		for _, l := range g.Trace() {
			area2 += l.SignedArea2()
		}
		return area2 == 2*g.Area()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTraceLoopsClosedRectilinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		g := randomRegion(rng)
		for _, l := range g.Trace() {
			n := len(l.V)
			if n < 4 || n%2 != 0 {
				return false // rectilinear loops have an even vertex count
			}
			for i := 0; i < n; i++ {
				a, b := l.V[i], l.V[(i+1)%n]
				if a.X != b.X && a.Y != b.Y {
					return false // every edge axis-parallel
				}
				if a == b {
					return false // no zero-length edges
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestMustRasterizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mustRasterize must panic on invalid input")
		}
	}()
	mustRasterize(Poly(Pt(0, 0)), 1)
}
