package geom

import "fmt"

// Rect is an axis-aligned rectangle with half-open extent
// [X0,X1) x [Y0,Y1). A Rect with X1 <= X0 or Y1 <= Y0 is empty.
type Rect struct {
	X0, Y0, X1, Y1 int64
}

// R constructs a Rect from two corner coordinates, normalizing the order so
// that X0 <= X1 and Y0 <= Y1.
func R(x0, y0, x1, y1 int64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// RectAround returns the square of half-width r centered on p.
func RectAround(p Point, r int64) Rect {
	return Rect{p.X - r, p.Y - r, p.X + r, p.Y + r}
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// W returns the width of the rectangle (0 if empty).
func (r Rect) W() int64 {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the height of the rectangle (0 if empty).
func (r Rect) H() int64 {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns the area of the rectangle in grid units squared.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return (r.X1 - r.X0) * (r.Y1 - r.Y0)
}

// Center returns the midpoint of the rectangle (rounded toward -inf).
func (r Rect) Center() Point {
	return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2}
}

// Contains reports whether p lies inside the half-open extent.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// ContainsRect reports whether s is entirely inside r. An empty s is
// contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		maxInt64(r.X0, s.X0), maxInt64(r.Y0, s.Y0),
		minInt64(r.X1, s.X1), minInt64(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool {
	return !r.Empty() && !s.Empty() &&
		r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Union returns the bounding box of r and s. Empty inputs are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		minInt64(r.X0, s.X0), minInt64(r.Y0, s.Y0),
		maxInt64(r.X1, s.X1), maxInt64(r.Y1, s.Y1),
	}
}

// Expand grows the rectangle by d on every side (shrinks for negative d).
// The result may be empty.
func (r Rect) Expand(d int64) Rect {
	if r.Empty() {
		return Rect{}
	}
	out := Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Translate shifts the rectangle by the vector p.
func (r Rect) Translate(p Point) Rect {
	if r.Empty() {
		return Rect{}
	}
	return Rect{r.X0 + p.X, r.Y0 + p.Y, r.X1 + p.X, r.Y1 + p.Y}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d;%d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}
