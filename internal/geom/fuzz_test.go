package geom

import (
	"testing"
)

// FuzzRegionOps drives the region algebra with fuzzer-chosen rectangles
// and checks the algebraic laws that must hold for arbitrary inputs. Run
// the seeds as normal tests, or explore with `go test -fuzz=FuzzRegionOps`.
func FuzzRegionOps(f *testing.F) {
	f.Add(int64(0), int64(0), int64(10), int64(10), int64(5), int64(5), int64(15), int64(15), int64(2))
	f.Add(int64(-5), int64(-5), int64(5), int64(5), int64(0), int64(0), int64(3), int64(8), int64(1))
	f.Add(int64(0), int64(0), int64(1), int64(1), int64(1), int64(1), int64(2), int64(2), int64(3))
	f.Add(int64(0), int64(0), int64(100), int64(2), int64(0), int64(1), int64(100), int64(3), int64(4))
	f.Fuzz(func(t *testing.T, ax0, ay0, ax1, ay1, bx0, by0, bx1, by1, d int64) {
		// Clamp to keep arithmetic far from overflow.
		clamp := func(v int64) int64 {
			const lim = 1 << 20
			if v > lim {
				return lim
			}
			if v < -lim {
				return -lim
			}
			return v
		}
		a := RegionFromRect(R(clamp(ax0), clamp(ay0), clamp(ax1), clamp(ay1)))
		b := RegionFromRect(R(clamp(bx0), clamp(by0), clamp(bx1), clamp(by1)))
		if d < 0 {
			d = -d
		}
		d = d % 16

		union := a.Union(b)
		inter := a.Intersect(b)
		diff := a.Subtract(b)

		if union.Area()+inter.Area() != a.Area()+b.Area() {
			t.Fatal("inclusion-exclusion violated")
		}
		if !diff.Intersect(b).Empty() {
			t.Fatal("difference overlaps subtrahend")
		}
		if !diff.Union(inter).Equal(a) {
			t.Fatal("partition of A violated")
		}
		if !a.Xor(b).Equal(union.Subtract(inter)) {
			t.Fatal("xor identity violated")
		}
		// Bloat must contain the original; erode of bloat must contain it
		// back (closing ⊇ identity).
		bl := a.Bloat(d)
		if !a.Subtract(bl).Empty() {
			t.Fatal("bloat lost area")
		}
		if !a.Subtract(bl.Erode(d)).Empty() {
			t.Fatal("closing lost area")
		}
		// Trace must reproduce the exact area for any region.
		var area2 int64
		for _, l := range union.Trace() {
			area2 += l.SignedArea2()
		}
		if area2 != 2*union.Area() {
			t.Fatal("trace area mismatch")
		}
	})
}

// FuzzPolygonClip exercises the polygon → region clipping chain with two
// fuzzer-chosen triangles: each is rasterized (the epsilon-free integer
// discretization of the paper's polygon handling) and then clipped
// against the other, checking the containment and partition laws that any
// correct clipper must satisfy exactly in integer arithmetic.
func FuzzPolygonClip(f *testing.F) {
	f.Add(int64(0), int64(0), int64(40), int64(0), int64(0), int64(40),
		int64(10), int64(10), int64(50), int64(10), int64(10), int64(50), int64(1))
	f.Add(int64(-20), int64(-20), int64(20), int64(-20), int64(0), int64(30),
		int64(-20), int64(20), int64(20), int64(20), int64(0), int64(-30), int64(2))
	f.Add(int64(0), int64(0), int64(100), int64(1), int64(1), int64(100),
		int64(0), int64(0), int64(100), int64(1), int64(1), int64(100), int64(1)) // identical slivers
	f.Add(int64(0), int64(0), int64(8), int64(0), int64(0), int64(8),
		int64(100), int64(100), int64(108), int64(100), int64(100), int64(108), int64(3)) // disjoint
	f.Fuzz(func(t *testing.T, ax0, ay0, ax1, ay1, ax2, ay2, bx0, by0, bx1, by1, bx2, by2, pitch int64) {
		clamp := func(v int64) int64 {
			const lim = 1 << 12
			if v > lim {
				return lim
			}
			if v < -lim {
				return -lim
			}
			return v
		}
		if pitch < 1 {
			pitch = 1
		}
		pitch = 1 + pitch%8
		pa := Poly(Pt(clamp(ax0), clamp(ay0)), Pt(clamp(ax1), clamp(ay1)), Pt(clamp(ax2), clamp(ay2)))
		pb := Poly(Pt(clamp(bx0), clamp(by0)), Pt(clamp(bx1), clamp(by1)), Pt(clamp(bx2), clamp(by2)))
		a, err := pa.Rasterize(pitch)
		if err != nil {
			t.Fatalf("rasterize A: %v", err)
		}
		b, err := pb.Rasterize(pitch)
		if err != nil {
			t.Fatalf("rasterize B: %v", err)
		}

		inter := a.Intersect(b)
		// The clip is contained in both operands.
		if !inter.Subtract(a).Empty() || !inter.Subtract(b).Empty() {
			t.Fatal("clip escaped an operand")
		}
		// Clipping partitions A: (A−B) ⊎ (A∩B) = A, and the parts are disjoint.
		diff := a.Subtract(b)
		if !diff.Union(inter).Equal(a) {
			t.Fatal("clip partition of A violated")
		}
		if !diff.Intersect(inter).Empty() {
			t.Fatal("clip parts overlap")
		}
		if diff.Area()+inter.Area() != a.Area() {
			t.Fatal("clip areas do not sum to A")
		}
		// Rectangle clipping must agree with general clipping.
		if !b.Empty() {
			r := b.Bounds()
			if !a.IntersectRect(r).Equal(a.Intersect(RegionFromRect(r))) {
				t.Fatal("IntersectRect disagrees with Intersect")
			}
		}
		// Clipping against itself and against empty are identities.
		if !a.Intersect(a).Equal(a) {
			t.Fatal("self-clip not identity")
		}
		if !a.Intersect(EmptyRegion()).Empty() {
			t.Fatal("empty-clip not empty")
		}
	})
}

// FuzzRasterize exercises the polygon scanline fill with fuzzer-chosen
// triangles, checking that the result stays within the bounding box and
// roughly matches the analytic area.
func FuzzRasterize(f *testing.F) {
	f.Add(int64(0), int64(0), int64(50), int64(0), int64(0), int64(50))
	f.Add(int64(0), int64(0), int64(30), int64(40), int64(-20), int64(10))
	f.Add(int64(5), int64(5), int64(5), int64(5), int64(5), int64(5)) // degenerate
	f.Fuzz(func(t *testing.T, x0, y0, x1, y1, x2, y2 int64) {
		clamp := func(v int64) int64 {
			const lim = 1 << 12
			if v > lim {
				return lim
			}
			if v < -lim {
				return -lim
			}
			return v
		}
		p := Poly(Pt(clamp(x0), clamp(y0)), Pt(clamp(x1), clamp(y1)), Pt(clamp(x2), clamp(y2)))
		g, err := p.Rasterize(1)
		if err != nil {
			t.Fatalf("triangle rasterize error: %v", err)
		}
		if g.Empty() {
			return // degenerate triangle
		}
		if !p.Bounds().ContainsRect(g.Bounds()) {
			t.Fatalf("raster %v escaped polygon bounds %v", g.Bounds(), p.Bounds())
		}
		want := p.Area()
		got := float64(g.Area())
		// Stair-stepping error is bounded by the perimeter; allow a loose
		// envelope plus absolute slack for slivers.
		perim := float64(p.Bounds().W()+p.Bounds().H()) * 2
		if diff := got - want; diff > perim+8 || diff < -perim-8 {
			t.Fatalf("raster area %g vs analytic %g (perimeter %g)", got, want, perim)
		}
	})
}
