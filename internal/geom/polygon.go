package geom

import (
	"fmt"
	"math"
)

// Polygon is a simple (non-self-intersecting) polygon given by its vertex
// ring. The ring is implicitly closed: the last vertex connects back to the
// first. Vertex order may be clockwise or counterclockwise; SignedArea2
// reveals the orientation.
//
// Polygons are the input interchange format (component pads, blockages,
// board outlines). All set algebra happens on Region; Rasterize converts a
// polygon to a region, stair-stepping non-rectilinear edges at a chosen
// pitch exactly as a grid-snapped layout database would.
type Polygon struct {
	V []Point
}

// Poly builds a polygon from a vertex list.
func Poly(v ...Point) Polygon { return Polygon{V: v} }

// PolyFromRect returns the counterclockwise rectangle polygon.
func PolyFromRect(r Rect) Polygon {
	return Polygon{V: []Point{
		{r.X0, r.Y0}, {r.X1, r.Y0}, {r.X1, r.Y1}, {r.X0, r.Y1},
	}}
}

// SignedArea2 returns twice the signed area of the polygon (positive for
// counterclockwise rings). Using twice the area keeps the value exact in
// integer arithmetic.
func (p Polygon) SignedArea2() int64 {
	var sum int64
	n := len(p.V)
	for i := 0; i < n; i++ {
		a, b := p.V[i], p.V[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	return sum
}

// Area returns the absolute polygon area.
func (p Polygon) Area() float64 {
	return math.Abs(float64(p.SignedArea2())) / 2
}

// Bounds returns the bounding box of the polygon vertices.
func (p Polygon) Bounds() Rect {
	if len(p.V) == 0 {
		return Rect{}
	}
	out := Rect{p.V[0].X, p.V[0].Y, p.V[0].X, p.V[0].Y}
	for _, v := range p.V[1:] {
		out.X0 = minInt64(out.X0, v.X)
		out.Y0 = minInt64(out.Y0, v.Y)
		out.X1 = maxInt64(out.X1, v.X)
		out.Y1 = maxInt64(out.Y1, v.Y)
	}
	return out
}

// Contains reports whether the point lies strictly inside the polygon
// (even-odd rule, boundary points may report either way for degenerate
// horizontal edges; use Region-based tests where exactness matters).
func (p Polygon) Contains(pt Point) bool {
	in := false
	n := len(p.V)
	for i := 0; i < n; i++ {
		a, b := p.V[i], p.V[(i+1)%n]
		if (a.Y > pt.Y) != (b.Y > pt.Y) {
			// x coordinate of edge crossing at pt.Y, compared without division:
			// xCross = a.X + (pt.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			num := (pt.Y - a.Y) * (b.X - a.X)
			den := b.Y - a.Y
			// pt.X < xCross  <=>  pt.X - a.X < num/den
			lhs := (pt.X - a.X) * den
			rhs := num
			if den < 0 {
				lhs, rhs = -lhs, -rhs
			}
			if lhs < rhs {
				in = !in
			}
		}
	}
	return in
}

// IsRectilinear reports whether every edge is axis-parallel.
func (p Polygon) IsRectilinear() bool {
	n := len(p.V)
	for i := 0; i < n; i++ {
		a, b := p.V[i], p.V[(i+1)%n]
		if a.X != b.X && a.Y != b.Y {
			return false
		}
	}
	return true
}

// Rasterize converts the polygon into a Region. Rectilinear polygons
// convert exactly (pitch is ignored for band placement: bands are cut at the
// polygon's own y coordinates). Polygons with slanted edges are
// stair-stepped: bands taller than pitch are subdivided and each slab is
// filled between the edge crossings evaluated at the slab's midline, which
// is the standard grid-snap discretization. pitch must be >= 1.
func (p Polygon) Rasterize(pitch int64) (Region, error) {
	if len(p.V) < 3 {
		return Region{}, fmt.Errorf("geom: polygon needs >= 3 vertices, got %d", len(p.V))
	}
	if pitch < 1 {
		return Region{}, fmt.Errorf("geom: rasterize pitch must be >= 1, got %d", pitch)
	}
	if p.SignedArea2() == 0 {
		return Region{}, nil
	}
	rectilinear := p.IsRectilinear()

	ys := make([]int64, 0, len(p.V))
	for _, v := range p.V {
		ys = append(ys, v.Y)
	}
	ys = uniqueSorted(ys)

	var rects []Rect
	for i := 0; i+1 < len(ys); i++ {
		y0, y1 := ys[i], ys[i+1]
		steps := int64(1)
		if !rectilinear {
			steps = (y1 - y0 + pitch - 1) / pitch
		}
		for s := int64(0); s < steps; s++ {
			sy0 := y0 + s*(y1-y0)/steps
			sy1 := y0 + (s+1)*(y1-y0)/steps
			if sy0 >= sy1 {
				continue
			}
			rects = appendSlabRects(rects, p, sy0, sy1)
		}
	}
	return RegionFromRects(rects), nil
}

// appendSlabRects fills the slab [y0,y1) using even-odd crossings of the
// polygon edges evaluated at the slab midline.
func appendSlabRects(rects []Rect, p Polygon, y0, y1 int64) []Rect {
	// Midline in doubled coordinates to stay in integers.
	ym2 := y0 + y1 // 2*ymid
	var xs []int64
	n := len(p.V)
	for i := 0; i < n; i++ {
		a, b := p.V[i], p.V[(i+1)%n]
		ay2, by2 := 2*a.Y, 2*b.Y
		if (ay2 > ym2) == (by2 > ym2) {
			continue // edge does not straddle the midline
		}
		// x at ymid: a.X + (ymid-a.Y)*(b.X-a.X)/(b.Y-a.Y); round to nearest.
		num := (ym2 - ay2) * (b.X - a.X)
		den := 2 * (by2 - ay2)
		xs = append(xs, a.X+roundDiv(num*2, den))
	}
	xs = uniqueXings(xs)
	for i := 0; i+1 < len(xs); i += 2 {
		if xs[i] < xs[i+1] {
			rects = append(rects, Rect{xs[i], y0, xs[i+1], y1})
		}
	}
	return rects
}

// uniqueXings sorts crossings preserving multiplicity parity; duplicates are
// kept in pairs (they cancel in even-odd fill), so plain sorting suffices.
func uniqueXings(xs []int64) []int64 {
	if len(xs)%2 != 0 {
		// Midline passed exactly through a vertex between two straddling
		// edges; drop the last unpaired crossing (measure-zero artifact).
		xs = xs[:len(xs)-1]
	}
	return uniqueSortKeep(xs)
}

func uniqueSortKeep(v []int64) []int64 {
	// insertion sort: crossing lists are tiny
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v
}

// roundDiv divides num by den rounding half away from zero.
func roundDiv(num, den int64) int64 {
	if den < 0 {
		num, den = -num, -den
	}
	if num >= 0 {
		return (num + den/2) / den
	}
	return -((-num + den/2) / den)
}

// Circle approximates a disc of radius r centered at c as a Region,
// stair-stepped in slabs of the given pitch (>=1). Each slab is filled to
// the chord width at the slab midline, matching how circular pads land on a
// manufacturing grid.
func Circle(c Point, r, pitch int64) Region {
	if r <= 0 {
		return Region{}
	}
	if pitch < 1 {
		pitch = 1
	}
	var rects []Rect
	for y := -r; y < r; y += pitch {
		y1 := y + pitch
		if y1 > r {
			y1 = r
		}
		// Midline offset from center (in halves).
		ym := float64(y+y1) / 2
		w := math.Sqrt(float64(r)*float64(r) - ym*ym)
		half := int64(math.Round(w))
		if half <= 0 {
			continue
		}
		rects = append(rects, Rect{c.X - half, c.Y + y, c.X + half, c.Y + y1})
	}
	return RegionFromRects(rects)
}

// Octagon returns a regular-ish octagonal pad region of half-width r
// (chamfer 29% of r), a common BGA land shape; exact on the grid.
func Octagon(c Point, r int64) Region {
	ch := (r*29 + 50) / 100
	if ch <= 0 {
		return RegionFromRect(RectAround(c, r))
	}
	return RegionFromRects([]Rect{
		{c.X - r + ch, c.Y - r, c.X + r - ch, c.Y + r},
		{c.X - r, c.Y - r + ch, c.X + r, c.Y + r - ch},
		{c.X - r + ch/2, c.Y - r + ch/2, c.X + r - ch/2, c.Y + r - ch/2},
	})
}
