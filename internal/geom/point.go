// Package geom provides the 2-D geometry substrate for SPROUT: integer
// points and rectangles on a manufacturing grid, a canonical rectilinear
// Region type with boolean set algebra (union, intersection, difference,
// symmetric difference), morphological operations (bloat and erode by a
// square structuring element), polygon rasterization for arbitrary input
// shapes, and boundary tracing that converts a Region back into rectilinear
// polygons with holes.
//
// The paper relies on a commercial layout database and general polygon
// clipping (Vatti / Greiner-Hormann). Industrial layout flows are
// grid-snapped, so an exact rectangle-band region algebra on an integer grid
// reproduces the same available-space computation (paper Eq. 1) with full
// robustness: every operation here is exact integer arithmetic with no
// epsilon tuning. Non-rectilinear shapes (circular pads, arbitrary
// blockages) are conservatively stair-stepped at a caller-chosen pitch,
// which is exactly how they are discretized by SPROUT's own tiling stage
// (paper Algorithm 1) anyway.
//
// Coordinates are int64 grid units. One unit is 0.1 mm in the case studies,
// but the package is unit-agnostic. Rectangles use half-open semantics:
// [X0,X1) x [Y0,Y1), so adjacency, area and tiling compose without
// double-counting.
package geom

import "fmt"

// Point is a location on the integer manufacturing grid.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return absInt64(p.X-q.X) + absInt64(p.Y-q.Y)
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
