package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func regionEq(t *testing.T, got, want Region, msg string) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("%s:\n got %v\nwant %v", msg, got, want)
	}
}

func TestRegionFromRectsMergesTouching(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 5, 5}, {5, 0, 10, 5}})
	regionEq(t, g, RegionFromRect(Rect{0, 0, 10, 5}), "horizontally touching rects merge")

	g = RegionFromRects([]Rect{{0, 0, 5, 5}, {0, 5, 5, 10}})
	regionEq(t, g, RegionFromRect(Rect{0, 0, 5, 10}), "vertically touching rects merge")
}

func TestRegionFromRectsOverlap(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 6, 6}, {3, 3, 9, 9}})
	if got := g.Area(); got != 36+36-9 {
		t.Fatalf("area = %d, want 63", got)
	}
}

func TestRegionAreaAdditivity(t *testing.T) {
	a := RegionFromRects([]Rect{{0, 0, 10, 10}})
	b := RegionFromRects([]Rect{{5, 5, 15, 15}, {20, 0, 25, 5}})
	union := a.Union(b)
	inter := a.Intersect(b)
	if union.Area()+inter.Area() != a.Area()+b.Area() {
		t.Fatalf("inclusion-exclusion violated: |A∪B|=%d |A∩B|=%d |A|=%d |B|=%d",
			union.Area(), inter.Area(), a.Area(), b.Area())
	}
}

func TestRegionSubtract(t *testing.T) {
	a := RegionFromRect(Rect{0, 0, 10, 10})
	b := RegionFromRect(Rect{4, 4, 6, 6})
	d := a.Subtract(b)
	if got := d.Area(); got != 96 {
		t.Fatalf("area after punch = %d, want 96", got)
	}
	if d.Contains(Pt(5, 5)) {
		t.Fatal("hole interior must be removed")
	}
	if !d.Contains(Pt(0, 0)) || !d.Contains(Pt(9, 9)) {
		t.Fatal("outside hole must remain")
	}
	// Subtracting everything yields empty.
	if !a.Subtract(a).Empty() {
		t.Fatal("A - A must be empty")
	}
}

func TestRegionXor(t *testing.T) {
	a := RegionFromRect(Rect{0, 0, 10, 10})
	b := RegionFromRect(Rect{5, 0, 15, 10})
	x := a.Xor(b)
	if got := x.Area(); got != 100 {
		t.Fatalf("xor area = %d, want 100", got)
	}
	if x.Contains(Pt(7, 5)) {
		t.Fatal("xor must exclude the overlap")
	}
	if !a.Xor(a).Empty() {
		t.Fatal("A xor A must be empty")
	}
}

func TestRegionContains(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 4, 4}, {10, 10, 14, 14}})
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true}, {Pt(3, 3), true}, {Pt(4, 4), false},
		{Pt(10, 10), true}, {Pt(13, 13), true}, {Pt(14, 13), false},
		{Pt(7, 7), false}, {Pt(-1, 0), false},
	}
	for _, c := range cases {
		if got := g.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRegionContainsRect(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 10, 5}, {0, 5, 5, 10}})
	if !g.ContainsRect(Rect{1, 1, 4, 9}) {
		t.Fatal("L-shape must contain its left column")
	}
	if g.ContainsRect(Rect{6, 6, 8, 8}) {
		t.Fatal("notch must not be contained")
	}
}

func TestRegionBounds(t *testing.T) {
	g := RegionFromRects([]Rect{{3, 1, 5, 2}, {-2, 4, 1, 9}})
	if got, want := g.Bounds(), (Rect{-2, 1, 5, 9}); got != want {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	if !EmptyRegion().Bounds().Empty() {
		t.Fatal("empty region bounds must be empty")
	}
}

func TestRegionIntersectRectFastPath(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 10, 10}, {20, 0, 30, 10}})
	clip := Rect{5, 2, 25, 8}
	fast := g.IntersectRect(clip)
	slow := g.Intersect(RegionFromRect(clip))
	regionEq(t, fast, slow, "IntersectRect must match Intersect")
}

func TestRegionBloatErode(t *testing.T) {
	g := RegionFromRect(Rect{10, 10, 20, 20})
	b := g.Bloat(3)
	regionEq(t, b, RegionFromRect(Rect{7, 7, 23, 23}), "bloat of rect is expanded rect")

	e := b.Erode(3)
	regionEq(t, e, g, "erode undoes bloat for convex region")

	// Bloat joins nearby pieces.
	two := RegionFromRects([]Rect{{0, 0, 4, 4}, {6, 0, 10, 4}})
	if n := len(two.Bloat(1).Components()); n != 1 {
		t.Fatalf("bloat(1) should join pieces 2 apart, got %d components", n)
	}
	// Erode removes thin necks.
	dumbbell := RegionFromRects([]Rect{{0, 0, 10, 10}, {10, 4, 20, 6}, {20, 0, 30, 10}})
	if n := len(dumbbell.Erode(2).Components()); n != 2 {
		t.Fatalf("erode(2) should cut the 2-wide neck, got %d components", n)
	}
}

func TestRegionComponents(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 5, 5}, {5, 5, 10, 10}, {20, 20, 25, 25}})
	comps := g.Components()
	// Corner-touching squares are electrically disjoint: 3 components.
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 (corner touch does not connect)", len(comps))
	}
	var total int64
	for _, c := range comps {
		total += c.Area()
	}
	if total != g.Area() {
		t.Fatalf("component areas %d != region area %d", total, g.Area())
	}

	l := RegionFromRects([]Rect{{0, 0, 10, 2}, {0, 2, 2, 10}})
	if n := len(l.Components()); n != 1 {
		t.Fatalf("L-shape must be a single component, got %d", n)
	}
}

func TestRegionTranslate(t *testing.T) {
	g := RegionFromRects([]Rect{{0, 0, 3, 3}, {5, 5, 8, 8}})
	got := g.Translate(Pt(100, -50))
	want := RegionFromRects([]Rect{{100, -50, 103, -47}, {105, -45, 108, -42}})
	regionEq(t, got, want, "translate")
	if got.Area() != g.Area() {
		t.Fatal("translate must preserve area")
	}
}

func TestRegionEqualCanonical(t *testing.T) {
	// Same point set constructed two different ways must compare equal.
	a := RegionFromRects([]Rect{{0, 0, 10, 10}})
	b := RegionFromRects([]Rect{{0, 0, 10, 5}, {0, 5, 10, 10}})
	regionEq(t, a, b, "canonical form must merge band split")

	c := RegionFromRects([]Rect{{0, 0, 5, 10}, {5, 0, 10, 10}})
	regionEq(t, a, c, "canonical form must merge span split")
}

// randomRegion builds a region from up to 8 random small rects.
func randomRegion(r *rand.Rand) Region {
	n := 1 + r.Intn(8)
	rects := make([]Rect, n)
	for i := range rects {
		x, y := int64(r.Intn(40)), int64(r.Intn(40))
		w, h := int64(1+r.Intn(15)), int64(1+r.Intn(15))
		rects[i] = Rect{x, y, x + w, y + h}
	}
	return RegionFromRects(rects)
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(42)),
		Values:   nil,
	}
}

func TestQuickUnionCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomRegion(rng), randomRegion(rng)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randomRegion(rng), randomRegion(rng)
		return a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// A \ (B ∪ C) == (A \ B) ∩ (A \ C)
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b, c := randomRegion(rng), randomRegion(rng), randomRegion(rng)
		lhs := a.Subtract(b.Union(c))
		rhs := a.Subtract(b).Intersect(a.Subtract(c))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInclusionExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randomRegion(rng), randomRegion(rng)
		return a.Union(b).Area()+a.Intersect(b).Area() == a.Area()+b.Area()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractDisjoint(t *testing.T) {
	// (A \ B) ∩ B == ∅ and (A \ B) ∪ (A ∩ B) == A
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		a, b := randomRegion(rng), randomRegion(rng)
		diff := a.Subtract(b)
		if !diff.Intersect(b).Empty() {
			return false
		}
		return diff.Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickXorIdentity(t *testing.T) {
	// A xor B == (A ∪ B) \ (A ∩ B)
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		a, b := randomRegion(rng), randomRegion(rng)
		return a.Xor(b).Equal(a.Union(b).Subtract(a.Intersect(b)))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBloatMonotone(t *testing.T) {
	// g ⊆ Bloat(g, d); Area(Bloat) >= Area; Erode(Bloat(g)) ⊇ g.
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		g := randomRegion(rng)
		d := int64(1 + rng.Intn(4))
		b := g.Bloat(d)
		if !g.Subtract(b).Empty() {
			return false
		}
		if b.Area() < g.Area() {
			return false
		}
		// Opening (erode of bloat) must contain the original region.
		return g.Subtract(b.Erode(d)).Empty()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func() bool {
		g := randomRegion(rng)
		comps := g.Components()
		var u Region
		var total int64
		for _, c := range comps {
			if c.Empty() {
				return false
			}
			if u.Overlaps(c) {
				return false // components must be disjoint
			}
			u = u.Union(c)
			total += c.Area()
		}
		return u.Equal(g) && total == g.Area()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRegionStringSmoke(t *testing.T) {
	if EmptyRegion().String() != "{}" {
		t.Fatal("empty region string")
	}
	g := RegionFromRect(Rect{-1, 0, 2, 3})
	if g.String() == "" {
		t.Fatal("non-empty region must render")
	}
}
