package geom

import "testing"

func TestRectNormalize(t *testing.T) {
	r := R(10, 20, 0, 5)
	want := Rect{0, 5, 10, 20}
	if r != want {
		t.Fatalf("R normalize = %v, want %v", r, want)
	}
}

func TestRectEmpty(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 0, 0}, true},
		{Rect{0, 0, 1, 0}, true},
		{Rect{0, 0, 0, 1}, true},
		{Rect{0, 0, 1, 1}, false},
		{Rect{5, 5, 3, 9}, true},
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRectArea(t *testing.T) {
	if got := (Rect{0, 0, 4, 3}).Area(); got != 12 {
		t.Fatalf("area = %d, want 12", got)
	}
	if got := (Rect{2, 2, 2, 9}).Area(); got != 0 {
		t.Fatalf("empty area = %d, want 0", got)
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("expected overlap")
	}
	c := Rect{10, 0, 20, 10} // touching edge, half-open: no overlap
	if a.Overlaps(c) {
		t.Fatal("touching rects must not overlap")
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("touching intersection must be empty")
	}
}

func TestRectUnionBBox(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{5, 5, 6, 7}
	got := a.Union(b)
	want := Rect{0, 0, 6, 7}
	if got != want {
		t.Fatalf("union bbox = %v, want %v", got, want)
	}
	if a.Union(Rect{}) != a || (Rect{}).Union(a) != a {
		t.Fatal("union with empty must be identity")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(Pt(0, 0)) {
		t.Fatal("contains lower-left corner")
	}
	if r.Contains(Pt(10, 10)) {
		t.Fatal("half-open: upper-right corner excluded")
	}
	if !r.ContainsRect(Rect{2, 2, 10, 10}) {
		t.Fatal("contains inner rect up to the open edge")
	}
	if r.ContainsRect(Rect{2, 2, 11, 10}) {
		t.Fatal("must not contain protruding rect")
	}
	if !r.ContainsRect(Rect{}) {
		t.Fatal("empty rect contained everywhere")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{5, 5, 10, 10}
	if got, want := r.Expand(2), (Rect{3, 3, 12, 12}); got != want {
		t.Fatalf("expand = %v, want %v", got, want)
	}
	if got := r.Expand(-3); !got.Empty() {
		t.Fatalf("over-shrunk rect should be empty, got %v", got)
	}
}

func TestRectTranslateCenter(t *testing.T) {
	r := Rect{0, 0, 4, 6}
	if got, want := r.Translate(Pt(10, -2)), (Rect{10, -2, 14, 4}); got != want {
		t.Fatalf("translate = %v, want %v", got, want)
	}
	if got, want := r.Center(), Pt(2, 3); got != want {
		t.Fatalf("center = %v, want %v", got, want)
	}
}

func TestPointOps(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, -2)
	if got, want := p.Add(q), Pt(4, 2); got != want {
		t.Fatalf("add = %v, want %v", got, want)
	}
	if got, want := p.Sub(q), Pt(2, 6); got != want {
		t.Fatalf("sub = %v, want %v", got, want)
	}
	if got := p.ManhattanDist(q); got != 8 {
		t.Fatalf("manhattan = %d, want 8", got)
	}
}
