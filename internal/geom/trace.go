package geom

import (
	"fmt"
	"sort"
)

// Loop is a closed rectilinear boundary ring produced by tracing a Region.
// Vertices follow the interior-on-the-left convention: outer boundaries are
// counterclockwise (positive signed area), hole boundaries are clockwise
// (negative signed area).
type Loop struct {
	V []Point
}

// Polygon converts the loop to a Polygon value.
func (l Loop) Polygon() Polygon { return Polygon{V: l.V} }

// SignedArea2 returns twice the signed area of the loop.
func (l Loop) SignedArea2() int64 { return Polygon{V: l.V}.SignedArea2() }

// IsHole reports whether the loop is a hole (clockwise).
func (l Loop) IsHole() bool { return l.SignedArea2() < 0 }

// PolygonWithHoles couples an outer ring with the holes it contains,
// the natural output of paper §II-G back conversion.
type PolygonWithHoles struct {
	Outer Polygon
	Holes []Polygon
}

// dirEdge is a directed axis-parallel boundary edge (interior on the left).
type dirEdge struct {
	from, to Point
}

// Trace converts the region boundary into closed loops. The algorithm
// collects the directed boundary edges of the canonical rectangle
// decomposition, cancels coincident opposite segments shared by adjacent
// rectangles, and stitches the survivors into loops. At vertices where two
// loops touch corner-to-corner the sharpest-left-turn rule keeps each loop
// simple. Collinear runs are merged.
func (g Region) Trace() []Loop {
	if g.Empty() {
		return nil
	}
	edges := g.boundaryEdges()
	return stitchLoops(edges)
}

// Polygons groups traced loops into outer polygons with their holes.
func (g Region) Polygons() []PolygonWithHoles {
	loops := g.Trace()
	var outers, holes []Loop
	for _, l := range loops {
		if l.IsHole() {
			holes = append(holes, l)
		} else {
			outers = append(outers, l)
		}
	}
	out := make([]PolygonWithHoles, len(outers))
	for i, o := range outers {
		out[i].Outer = o.Polygon()
	}
	// Assign each hole to the smallest containing outer ring.
	for _, h := range holes {
		p := h.V[0]
		best := -1
		var bestArea int64
		for i, o := range outers {
			op := o.Polygon()
			if op.Contains(p) || op.Contains(Point{p.X, p.Y + 1}) {
				a := op.SignedArea2()
				if best == -1 || a < bestArea {
					best, bestArea = i, a
				}
			}
		}
		if best >= 0 {
			out[best].Holes = append(out[best].Holes, h.Polygon())
		}
	}
	return out
}

// boundaryEdges returns the directed boundary segments of the region with
// interior on the left, after cancelling interior-shared segments.
func (g Region) boundaryEdges() []dirEdge {
	var edges []dirEdge

	// Horizontal edges: at every band boundary y, coverage above minus
	// coverage below gives bottom edges (+x direction); coverage below minus
	// coverage above gives top edges (-x direction).
	type bandAt struct{ above, below []span }
	cov := map[int64]*bandAt{}
	at := func(y int64) *bandAt {
		if c, ok := cov[y]; ok {
			return c
		}
		c := &bandAt{}
		cov[y] = c
		return c
	}
	for _, b := range g.bands {
		at(b.Y0).above = b.Spans
		at(b.Y1).below = b.Spans
	}
	ys := make([]int64, 0, len(cov))
	for y := range cov {
		ys = append(ys, y)
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	for _, y := range ys {
		c := cov[y]
		for _, s := range spanBool(c.above, c.below, func(a, b bool) bool { return a && !b }) {
			edges = append(edges, dirEdge{Point{s.X0, y}, Point{s.X1, y}}) // bottom: +x
		}
		for _, s := range spanBool(c.below, c.above, func(a, b bool) bool { return a && !b }) {
			edges = append(edges, dirEdge{Point{s.X1, y}, Point{s.X0, y}}) // top: -x
		}
	}

	// Vertical edges: span ends within each band. Left edge runs -y
	// (interior at +x on the left of travel), right edge runs +y.
	for _, b := range g.bands {
		for _, s := range b.Spans {
			edges = append(edges, dirEdge{Point{s.X0, b.Y1}, Point{s.X0, b.Y0}}) // left: -y
			edges = append(edges, dirEdge{Point{s.X1, b.Y0}, Point{s.X1, b.Y1}}) // right: +y
		}
	}
	return edges
}

// stitchLoops connects directed edges head-to-tail into closed loops.
func stitchLoops(edges []dirEdge) []Loop {
	// Index outgoing edges by start point.
	type key = Point
	out := map[key][]int{}
	for i, e := range edges {
		out[e.from] = append(out[e.from], i)
	}
	// Deterministic traversal order within a bucket.
	for _, lst := range out {
		sort.Slice(lst, func(i, j int) bool {
			a, b := edges[lst[i]], edges[lst[j]]
			if a.to.X != b.to.X {
				return a.to.X < b.to.X
			}
			return a.to.Y < b.to.Y
		})
	}
	used := make([]bool, len(edges))
	var loops []Loop
	for start := 0; start < len(edges); start++ {
		if used[start] {
			continue
		}
		startPt := edges[start].from
		var ring []Point
		cur := start
		for {
			used[cur] = true
			e := edges[cur]
			ring = append(ring, e.from)
			if e.to == startPt {
				break // closed the loop
			}
			next := pickNext(edges, out, used, e)
			if next == -1 {
				ring = nil // open chain: cannot happen for valid regions
				break
			}
			cur = next
		}
		ring = dedupCollinear(ring)
		if len(ring) >= 4 {
			loops = append(loops, Loop{V: ring})
		}
	}
	return loops
}

// pickNext selects the unused outgoing edge at e.to that makes the
// sharpest left turn relative to e's direction, which keeps loops simple
// at corner-touch vertices.
func pickNext(edges []dirEdge, out map[Point][]int, used []bool, e dirEdge) int {
	best := -1
	bestScore := -1
	dx, dy := sign(e.to.X-e.from.X), sign(e.to.Y-e.from.Y)
	for _, i := range out[e.to] {
		if used[i] {
			continue
		}
		ndx, ndy := sign(edges[i].to.X-edges[i].from.X), sign(edges[i].to.Y-edges[i].from.Y)
		score := turnScore(dx, dy, ndx, ndy)
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	return best
}

// turnScore ranks the turn from direction (dx,dy) to (nx,ny):
// left turn > straight > right turn > U-turn.
func turnScore(dx, dy, nx, ny int64) int {
	cross := dx*ny - dy*nx
	dot := dx*nx + dy*ny
	switch {
	case cross > 0:
		return 3 // left
	case cross == 0 && dot > 0:
		return 2 // straight
	case cross < 0:
		return 1 // right
	default:
		return 0 // U-turn
	}
}

func sign(v int64) int64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// dedupCollinear removes consecutive duplicate and collinear points from a
// closed ring.
func dedupCollinear(ring []Point) []Point {
	if len(ring) < 3 {
		return ring
	}
	// Remove consecutive duplicates first (closed).
	tmp := ring[:0]
	for i, p := range ring {
		if i == 0 || p != tmp[len(tmp)-1] {
			tmp = append(tmp, p)
		}
	}
	if len(tmp) > 1 && tmp[0] == tmp[len(tmp)-1] {
		tmp = tmp[:len(tmp)-1]
	}
	n := len(tmp)
	if n < 3 {
		return tmp
	}
	keep := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		prev := tmp[(i+n-1)%n]
		cur := tmp[i]
		next := tmp[(i+1)%n]
		cross := (cur.X-prev.X)*(next.Y-cur.Y) - (cur.Y-prev.Y)*(next.X-cur.X)
		if cross != 0 {
			keep = append(keep, cur)
		}
	}
	return keep
}

// VertexCount returns the total number of vertices over all boundary loops,
// the metric paper §II-H uses for clipping complexity.
func (g Region) VertexCount() int {
	n := 0
	for _, l := range g.Trace() {
		n += len(l.V)
	}
	return n
}

// mustRasterize is a test helper wrapper used by internal examples; it
// panics on error and is intentionally unexported.
func mustRasterize(p Polygon, pitch int64) Region {
	r, err := p.Rasterize(pitch)
	if err != nil {
		panic(fmt.Sprintf("geom: %v", err))
	}
	return r
}
