package geom

import (
	"sort"
	"strings"
)

// span is a half-open x interval [X0, X1).
type span struct {
	X0, X1 int64
}

// band is a horizontal slab [Y0, Y1) covered by a sorted list of disjoint,
// non-touching spans.
type band struct {
	Y0, Y1 int64
	Spans  []span
}

// Region is a set of points in the plane represented canonically as a list
// of horizontal bands. The canonical form satisfies:
//
//   - bands are sorted by Y0 and disjoint in y;
//   - within a band, spans are sorted by X0, disjoint and non-touching
//     (touching spans are merged);
//   - no band is empty;
//   - vertically adjacent bands with identical span lists are merged.
//
// Canonical form makes equality, area and boolean operations exact and
// deterministic. The zero value is the empty region. Regions are immutable:
// every operation returns a new Region.
type Region struct {
	bands []band
}

// EmptyRegion returns the empty region.
func EmptyRegion() Region { return Region{} }

// RegionFromRect returns the region covering exactly r.
func RegionFromRect(r Rect) Region {
	if r.Empty() {
		return Region{}
	}
	return Region{bands: []band{{r.Y0, r.Y1, []span{{r.X0, r.X1}}}}}
}

// RegionFromRects returns the union of the given rectangles in canonical
// form. Overlapping and touching rectangles are merged.
func RegionFromRects(rects []Rect) Region {
	// Collect y breakpoints.
	ys := make([]int64, 0, 2*len(rects))
	live := rects[:0:0]
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		live = append(live, r)
		ys = append(ys, r.Y0, r.Y1)
	}
	if len(live) == 0 {
		return Region{}
	}
	ys = uniqueSorted(ys)
	sort.Slice(live, func(i, j int) bool {
		if live[i].Y0 != live[j].Y0 {
			return live[i].Y0 < live[j].Y0
		}
		return live[i].X0 < live[j].X0
	})
	var bands []band
	for i := 0; i+1 < len(ys); i++ {
		y0, y1 := ys[i], ys[i+1]
		var spans []span
		for _, r := range live {
			if r.Y0 >= y1 {
				break // sorted by Y0; nothing further can cover this slab
			}
			if r.Y0 <= y0 && r.Y1 >= y1 {
				spans = append(spans, span{r.X0, r.X1})
			}
		}
		if len(spans) == 0 {
			continue
		}
		bands = append(bands, band{y0, y1, mergeSpans(spans)})
	}
	return Region{bands: coalesceBands(bands)}
}

// uniqueSorted sorts v and removes duplicates in place.
func uniqueSorted(v []int64) []int64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// mergeSpans sorts spans and merges overlapping or touching ones.
func mergeSpans(spans []span) []span {
	sort.Slice(spans, func(i, j int) bool { return spans[i].X0 < spans[j].X0 })
	out := spans[:0]
	for _, s := range spans {
		if s.X1 <= s.X0 {
			continue
		}
		if n := len(out); n > 0 && s.X0 <= out[n-1].X1 {
			if s.X1 > out[n-1].X1 {
				out[n-1].X1 = s.X1
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// coalesceBands merges vertically adjacent bands with identical span lists
// and drops empty bands.
func coalesceBands(bands []band) []band {
	out := bands[:0]
	for _, b := range bands {
		if b.Y1 <= b.Y0 || len(b.Spans) == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Y1 == b.Y0 && spansEqual(out[n-1].Spans, b.Spans) {
			out[n-1].Y1 = b.Y1
			continue
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func spansEqual(a, b []span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the region covers no area.
func (g Region) Empty() bool { return len(g.bands) == 0 }

// Area returns the total covered area.
func (g Region) Area() int64 {
	var total int64
	for _, b := range g.bands {
		h := b.Y1 - b.Y0
		for _, s := range b.Spans {
			total += h * (s.X1 - s.X0)
		}
	}
	return total
}

// Bounds returns the bounding box of the region (empty Rect if empty).
func (g Region) Bounds() Rect {
	if g.Empty() {
		return Rect{}
	}
	out := Rect{g.bands[0].Spans[0].X0, g.bands[0].Y0, g.bands[0].Spans[0].X1, g.bands[len(g.bands)-1].Y1}
	for _, b := range g.bands {
		out.X0 = minInt64(out.X0, b.Spans[0].X0)
		out.X1 = maxInt64(out.X1, b.Spans[len(b.Spans)-1].X1)
	}
	return out
}

// Rects returns the canonical rectangle decomposition of the region:
// one rectangle per (band, span), sorted bottom-to-top then left-to-right.
func (g Region) Rects() []Rect {
	var out []Rect
	for _, b := range g.bands {
		for _, s := range b.Spans {
			out = append(out, Rect{s.X0, b.Y0, s.X1, b.Y1})
		}
	}
	return out
}

// NumRects returns the number of rectangles in the canonical decomposition.
func (g Region) NumRects() int {
	n := 0
	for _, b := range g.bands {
		n += len(b.Spans)
	}
	return n
}

// Contains reports whether p lies inside the region.
func (g Region) Contains(p Point) bool {
	i := sort.Search(len(g.bands), func(i int) bool { return g.bands[i].Y1 > p.Y })
	if i == len(g.bands) || g.bands[i].Y0 > p.Y {
		return false
	}
	sp := g.bands[i].Spans
	j := sort.Search(len(sp), func(j int) bool { return sp[j].X1 > p.X })
	return j < len(sp) && sp[j].X0 <= p.X
}

// ContainsRect reports whether r is entirely covered by the region.
func (g Region) ContainsRect(r Rect) bool {
	if r.Empty() {
		return true
	}
	return RegionFromRect(r).Subtract(g).Empty()
}

// Equal reports whether two regions cover exactly the same points.
func (g Region) Equal(h Region) bool {
	if len(g.bands) != len(h.bands) {
		return false
	}
	for i := range g.bands {
		if g.bands[i].Y0 != h.bands[i].Y0 || g.bands[i].Y1 != h.bands[i].Y1 ||
			!spansEqual(g.bands[i].Spans, h.bands[i].Spans) {
			return false
		}
	}
	return true
}

// boolOp combines two span lists per the truth table selected by keep.
// keep(inA, inB) decides whether a segment is in the output.
func spanBool(a, b []span, keep func(bool, bool) bool) []span {
	// Sweep over merged breakpoints.
	var xs []int64
	for _, s := range a {
		xs = append(xs, s.X0, s.X1)
	}
	for _, s := range b {
		xs = append(xs, s.X0, s.X1)
	}
	xs = uniqueSorted(xs)
	var out []span
	ia, ib := 0, 0
	for i := 0; i+1 < len(xs); i++ {
		x0, x1 := xs[i], xs[i+1]
		for ia < len(a) && a[ia].X1 <= x0 {
			ia++
		}
		for ib < len(b) && b[ib].X1 <= x0 {
			ib++
		}
		inA := ia < len(a) && a[ia].X0 <= x0
		inB := ib < len(b) && b[ib].X0 <= x0
		if keep(inA, inB) {
			if n := len(out); n > 0 && out[n-1].X1 == x0 {
				out[n-1].X1 = x1
			} else {
				out = append(out, span{x0, x1})
			}
		}
	}
	return out
}

// combine applies a per-segment boolean op between g and h.
func (g Region) combine(h Region, keep func(bool, bool) bool) Region {
	if g.Empty() && h.Empty() {
		return Region{}
	}
	var ys []int64
	for _, b := range g.bands {
		ys = append(ys, b.Y0, b.Y1)
	}
	for _, b := range h.bands {
		ys = append(ys, b.Y0, b.Y1)
	}
	ys = uniqueSorted(ys)
	var out []band
	ig, ih := 0, 0
	for i := 0; i+1 < len(ys); i++ {
		y0, y1 := ys[i], ys[i+1]
		for ig < len(g.bands) && g.bands[ig].Y1 <= y0 {
			ig++
		}
		for ih < len(h.bands) && h.bands[ih].Y1 <= y0 {
			ih++
		}
		var sa, sb []span
		if ig < len(g.bands) && g.bands[ig].Y0 <= y0 {
			sa = g.bands[ig].Spans
		}
		if ih < len(h.bands) && h.bands[ih].Y0 <= y0 {
			sb = h.bands[ih].Spans
		}
		spans := spanBool(sa, sb, keep)
		if len(spans) > 0 {
			out = append(out, band{y0, y1, spans})
		}
	}
	return Region{bands: coalesceBands(out)}
}

// Union returns the set union of g and h.
func (g Region) Union(h Region) Region {
	if g.Empty() {
		return h
	}
	if h.Empty() {
		return g
	}
	return g.combine(h, func(a, b bool) bool { return a || b })
}

// Intersect returns the set intersection of g and h.
func (g Region) Intersect(h Region) Region {
	if g.Empty() || h.Empty() {
		return Region{}
	}
	if !g.Bounds().Overlaps(h.Bounds()) {
		return Region{}
	}
	return g.combine(h, func(a, b bool) bool { return a && b })
}

// Subtract returns g minus h.
func (g Region) Subtract(h Region) Region {
	if g.Empty() || h.Empty() {
		return g
	}
	if !g.Bounds().Overlaps(h.Bounds()) {
		return g
	}
	return g.combine(h, func(a, b bool) bool { return a && !b })
}

// Xor returns the symmetric difference of g and h.
func (g Region) Xor(h Region) Region {
	return g.combine(h, func(a, b bool) bool { return a != b })
}

// IntersectRect is a fast path for clipping the region to a rectangle.
func (g Region) IntersectRect(r Rect) Region {
	if r.Empty() || g.Empty() {
		return Region{}
	}
	var out []band
	for _, b := range g.bands {
		y0, y1 := maxInt64(b.Y0, r.Y0), minInt64(b.Y1, r.Y1)
		if y0 >= y1 {
			continue
		}
		var spans []span
		for _, s := range b.Spans {
			x0, x1 := maxInt64(s.X0, r.X0), minInt64(s.X1, r.X1)
			if x0 < x1 {
				spans = append(spans, span{x0, x1})
			}
		}
		if len(spans) > 0 {
			out = append(out, band{y0, y1, spans})
		}
	}
	return Region{bands: coalesceBands(out)}
}

// Overlaps reports whether g and h share any area, without materializing
// the intersection.
func (g Region) Overlaps(h Region) bool {
	if g.Empty() || h.Empty() || !g.Bounds().Overlaps(h.Bounds()) {
		return false
	}
	ig, ih := 0, 0
	for ig < len(g.bands) && ih < len(h.bands) {
		a, b := g.bands[ig], h.bands[ih]
		if a.Y1 <= b.Y0 {
			ig++
			continue
		}
		if b.Y1 <= a.Y0 {
			ih++
			continue
		}
		// Bands overlap in y; check spans.
		ja, jb := 0, 0
		for ja < len(a.Spans) && jb < len(b.Spans) {
			if a.Spans[ja].X1 <= b.Spans[jb].X0 {
				ja++
			} else if b.Spans[jb].X1 <= a.Spans[ja].X0 {
				jb++
			} else {
				return true
			}
		}
		if a.Y1 <= b.Y1 {
			ig++
		} else {
			ih++
		}
	}
	return false
}

// Bloat returns the morphological dilation of the region by a square
// structuring element of half-width d (Minkowski sum with a 2d x 2d
// square). This implements the "buffer" of paper Fig. 4: the region of
// points within Chebyshev distance d of the shape. d <= 0 returns g.
func (g Region) Bloat(d int64) Region {
	if d <= 0 || g.Empty() {
		return g
	}
	rects := g.Rects()
	for i := range rects {
		rects[i] = rects[i].Expand(d)
	}
	return RegionFromRects(rects)
}

// Erode returns the morphological erosion of the region by a square
// structuring element of half-width d: the set of points whose d-square
// neighbourhood lies entirely inside g. Erode is the dual of Bloat:
// Erode(g, d) == complement(Bloat(complement(g), d)).
func (g Region) Erode(d int64) Region {
	if d <= 0 || g.Empty() {
		return g
	}
	frame := g.Bounds().Expand(2 * d)
	comp := RegionFromRect(frame).Subtract(g)
	return g.Subtract(comp.Bloat(d))
}

// Translate shifts the whole region by the vector p.
func (g Region) Translate(p Point) Region {
	if g.Empty() {
		return g
	}
	out := make([]band, len(g.bands))
	for i, b := range g.bands {
		spans := make([]span, len(b.Spans))
		for j, s := range b.Spans {
			spans[j] = span{s.X0 + p.X, s.X1 + p.X}
		}
		out[i] = band{b.Y0 + p.Y, b.Y1 + p.Y, spans}
	}
	return Region{bands: out}
}

// Components splits the region into edge-connected components.
// Two rectangles belong to the same component when
// they share a boundary segment of positive length. Corner-touching pieces
// are separate components, matching the electrical connectivity model: a
// zero-width contact carries no current (paper Fig. 6 assigns conductance
// proportional to contact width).
func (g Region) Components() []Region {
	rects := g.Rects()
	n := len(rects)
	if n == 0 {
		return nil
	}
	uf := newUnionFind(n)
	// Within a band, spans never touch (canonical form), so only vertical
	// adjacency matters. Band rectangles are emitted bottom-to-top, so for
	// each band find the next band and match overlapping spans.
	// Build index of rect -> (band, span) implicitly by re-walking bands.
	type bandRange struct{ lo, hi int } // rect index range of a band
	var ranges []bandRange
	idx := 0
	for _, b := range g.bands {
		ranges = append(ranges, bandRange{idx, idx + len(b.Spans)})
		idx += len(b.Spans)
	}
	for bi := 0; bi+1 < len(g.bands); bi++ {
		lower, upper := g.bands[bi], g.bands[bi+1]
		if lower.Y1 != upper.Y0 {
			continue
		}
		ju := 0
		for jl, s := range lower.Spans {
			for ju < len(upper.Spans) && upper.Spans[ju].X1 <= s.X0 {
				ju++
			}
			for k := ju; k < len(upper.Spans) && upper.Spans[k].X0 < s.X1; k++ {
				// Positive-length overlap joins the components.
				uf.union(ranges[bi].lo+jl, ranges[bi+1].lo+k)
			}
		}
	}
	groups := map[int][]Rect{}
	for i, r := range rects {
		root := uf.find(i)
		groups[root] = append(groups[root], r)
	}
	out := make([]Region, 0, len(groups))
	roots := make([]int, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		out = append(out, RegionFromRects(groups[root]))
	}
	return out
}

// unionFind is a standard disjoint-set forest with path compression.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(i int) int {
	for uf.parent[i] != i {
		uf.parent[i] = uf.parent[uf.parent[i]]
		i = uf.parent[i]
	}
	return i
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// String renders a compact band listing, useful in test failures.
func (g Region) String() string {
	if g.Empty() {
		return "{}"
	}
	var sb strings.Builder
	for i, b := range g.bands {
		if i > 0 {
			sb.WriteByte(' ')
		}
		_, _ = sb.WriteString("y[")
		writeInt(&sb, b.Y0)
		sb.WriteByte(',')
		writeInt(&sb, b.Y1)
		sb.WriteString("):")
		for j, s := range b.Spans {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteByte('[')
			writeInt(&sb, s.X0)
			sb.WriteByte(',')
			writeInt(&sb, s.X1)
			sb.WriteByte(')')
		}
	}
	return sb.String()
}

func writeInt(sb *strings.Builder, v int64) {
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		i--
		buf[i] = '-'
	}
	sb.Write(buf[i:])
}
