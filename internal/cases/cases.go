// Package cases constructs the three case-study boards of the paper's
// evaluation (§III): the two-rail wireless board (Fig. 9, Table II), the
// six-rail congested-BGA board (Fig. 10, Table III), and the three-rail
// modem/CPU/DSP exploration board (Fig. 11, Table IV, Fig. 12). The
// proprietary industrial layouts are unavailable, so these are parametric
// synthetic boards with the same structure: the same layer roles, terminal
// topology, congestion character, blockages and decap placement. All
// geometry is in grid units of 0.1 mm.
package cases

import (
	"fmt"

	"sprout/internal/board"
	"sprout/internal/ckt"
	"sprout/internal/geom"
	"sprout/internal/route"
)

// CaseStudy bundles a board with the routing parameters of its experiment.
type CaseStudy struct {
	Board        *board.Board
	RoutingLayer int
	// Budgets is the per-net metal area budget in grid units squared.
	Budgets map[board.NetID]int64
	// Config tunes the router for this board.
	Config route.Config
	// Decaps lists the decoupling capacitors of each rail for the PDN
	// analysis (Fig. 12b/c).
	Decaps map[board.NetID][]ckt.Decap
	// VSupply is the rail voltage (1 V in the paper's study).
	VSupply float64
}

// viaPad returns a via land pad region of half-width r at p.
func viaPad(p geom.Point, r int64) geom.Region {
	return geom.RegionFromRect(geom.RectAround(p, r))
}

// viaCluster builds a cols x rows grid of via pads.
func viaCluster(origin geom.Point, cols, rows int, pitch, padHalf int64) []geom.Region {
	pads := make([]geom.Region, 0, cols*rows)
	for j := 0; j < rows; j++ {
		for i := 0; i < cols; i++ {
			pads = append(pads, viaPad(geom.Pt(origin.X+int64(i)*pitch, origin.Y+int64(j)*pitch), padHalf))
		}
	}
	return pads
}

// mustGroup adds a terminal group or returns an error with context.
func addGroup(b *board.Board, g board.TerminalGroup) error {
	if err := b.AddGroup(g); err != nil {
		return fmt.Errorf("cases: group %s: %w", g.Name, err)
	}
	return nil
}
