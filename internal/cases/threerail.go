package cases

import (
	"fmt"

	"sprout/internal/board"
	"sprout/internal/ckt"
	"sprout/internal/geom"
	"sprout/internal/route"
)

// AreaRow is one row of the paper's Table IV: the target metal area of
// each rail in the paper's normalized units.
type AreaRow struct {
	Layout int
	Modem  float64
	CPU    float64
	DSP    float64
}

// Table4 returns the nine area budgets of paper Table IV.
func Table4() []AreaRow {
	rows := make([]AreaRow, 9)
	for i := range rows {
		rows[i] = AreaRow{
			Layout: i + 1,
			Modem:  15 + 2.5*float64(i),
			CPU:    15 + 2.5*float64(i),
			DSP:    2.5 + 0.625*float64(i),
		}
	}
	return rows
}

// UnitArea converts one normalized area unit of Table IV into grid
// units squared (one normalized unit = 3 mm² = 300 grid units²).
const UnitArea = 300.0

// ThreeRailNets names the rails of the exploration board in net-id order.
var ThreeRailNets = []string{"MODEM", "CPU", "DSP"}

// ThreeRail builds the Fig. 11 exploration board for a given Table IV
// area row: modem, CPU and DSP power nets on a ten-layer board with 86
// BGA vias, blockages, and decoupling capacitors (two on the modem rail,
// five on the CPU rail) whose lands sit on the routing layer. Board
// section: 30 x 30 mm.
func ThreeRail(row AreaRow) (*CaseStudy, error) {
	if row.Modem <= 0 || row.CPU <= 0 || row.DSP <= 0 {
		return nil, fmt.Errorf("cases: non-positive area row %+v", row)
	}
	stack := board.Stackup{Layers: []board.Layer{
		{Name: "L1-top", CopperUM: 35, DielectricBelowUM: 80},
		{Name: "L2-gnd", CopperUM: 35, DielectricBelowUM: 80, IsPlane: true},
		{Name: "L3", CopperUM: 18, DielectricBelowUM: 80},
		{Name: "L4", CopperUM: 18, DielectricBelowUM: 80},
		{Name: "L5", CopperUM: 18, DielectricBelowUM: 80},
		{Name: "L6-gnd", CopperUM: 35, DielectricBelowUM: 80, IsPlane: true},
		{Name: "L7", CopperUM: 18, DielectricBelowUM: 80},
		{Name: "L8-gnd", CopperUM: 35, DielectricBelowUM: 80, IsPlane: true},
		{Name: "L9-pwr", CopperUM: 35, DielectricBelowUM: 80},
		{Name: "L10-bot", CopperUM: 35, DielectricBelowUM: 0},
	}}
	rules := board.DesignRules{Clearance: 2, TileDX: 4, TileDY: 4, ViaCost: 5}
	b, err := board.New("three-rail-exploration", geom.R(0, 0, 300, 300), stack, rules)
	if err != nil {
		return nil, err
	}
	const layer = 9

	modem := b.AddNet("MODEM", 4, 4)
	cpu := b.AddNet("CPU", 6, 3)
	dsp := b.AddNet("DSP", 1.5, 4)
	gnd := b.AddNet("GND", 0, 0)

	// BGA vias (Fig. 11a): modem cluster top-left, CPU center, DSP bottom
	// right, ground vias interspersed. 24 + 36 + 8 + 18 = 86 vias.
	add := func(name string, kind board.TerminalKind, net board.NetID, pads []geom.Region, current float64) error {
		return addGroup(b, board.TerminalGroup{
			Name: name, Kind: kind, Net: net, Layer: layer, Pads: pads, Current: current,
		})
	}
	if err := add("bga_modem", board.KindBGA, modem, viaCluster(geom.Pt(66, 192), 6, 4, 10, 2), 3); err != nil {
		return nil, err
	}
	if err := add("bga_cpu", board.KindBGA, cpu, viaCluster(geom.Pt(126, 126), 6, 6, 10, 2), 5); err != nil {
		return nil, err
	}
	if err := add("bga_dsp", board.KindBGA, dsp, viaCluster(geom.Pt(240, 66), 4, 2, 6, 2), 0.8); err != nil {
		return nil, err
	}
	// Ground vias ring the CPU cluster and separate the modem field, as
	// obstacles with buffers.
	gndPts := []geom.Point{
		{X: 114, Y: 114}, {X: 138, Y: 114}, {X: 162, Y: 114}, {X: 186, Y: 114},
		{X: 114, Y: 198}, {X: 138, Y: 198}, {X: 162, Y: 198}, {X: 186, Y: 198},
		{X: 114, Y: 142}, {X: 114, Y: 170}, {X: 198, Y: 142}, {X: 198, Y: 170},
		{X: 66, Y: 160}, {X: 90, Y: 160}, {X: 228, Y: 100}, {X: 252, Y: 100},
		{X: 48, Y: 100}, {X: 252, Y: 200},
	}
	for _, p := range gndPts {
		if err := b.AddObstacle(gnd, layer, viaPad(p, 2)); err != nil {
			return nil, err
		}
	}

	// Blockages (hatched rectangles in Fig. 11a).
	for _, r := range []geom.Rect{
		geom.R(20, 20, 70, 60),
		geom.R(200, 230, 260, 270),
	} {
		if err := b.AddObstacle(board.NetNone, layer, geom.RegionFromRect(r)); err != nil {
			return nil, err
		}
	}

	// PMIC outputs at the board edges.
	if err := add("pmic_modem", board.KindPMIC, modem, []geom.Region{viaPad(geom.Pt(14, 220), 6)}, 3); err != nil {
		return nil, err
	}
	if err := add("pmic_cpu", board.KindPMIC, cpu, []geom.Region{viaPad(geom.Pt(150, 14), 6)}, 5); err != nil {
		return nil, err
	}
	if err := add("pmic_dsp", board.KindPMIC, dsp, []geom.Region{viaPad(geom.Pt(284, 72), 5)}, 0.8); err != nil {
		return nil, err
	}

	// Decap lands (bottom-layer capacitors surfacing through vias):
	// two on the modem rail, five on the CPU rail (paper §III-C).
	if err := add("decap_modem", board.KindDecap, modem,
		[]geom.Region{viaPad(geom.Pt(40, 250), 3), viaPad(geom.Pt(100, 260), 3)}, 0.5); err != nil {
		return nil, err
	}
	if err := add("decap_cpu", board.KindDecap, cpu,
		[]geom.Region{
			viaPad(geom.Pt(110, 90), 3), viaPad(geom.Pt(150, 88), 3), viaPad(geom.Pt(190, 90), 3),
			viaPad(geom.Pt(210, 150), 3), viaPad(geom.Pt(210, 190), 3),
		}, 0.5); err != nil {
		return nil, err
	}

	return &CaseStudy{
		Board:        b,
		RoutingLayer: layer,
		Budgets: map[board.NetID]int64{
			modem: int64(row.Modem * UnitArea),
			cpu:   int64(row.CPU * UnitArea),
			dsp:   int64(row.DSP * UnitArea),
		},
		Config: route.Config{
			DX: 4, DY: 4,
			GrowNodes: 20, RefineNodes: 10, RefineIters: 6,
		},
		Decaps: map[board.NetID][]ckt.Decap{
			modem: {ckt.DefaultDecap(), ckt.DefaultDecap()},
			cpu: {ckt.DefaultDecap(), ckt.DefaultDecap(), ckt.DefaultDecap(),
				ckt.DefaultDecap(), ckt.DefaultDecap()},
		},
		VSupply: 1.0,
	}, nil
}
