package cases

import (
	"sprout/internal/geom"
	"sprout/internal/route"
)

// Fig8Scene returns the three-terminal demonstration space of paper
// Fig. 8: an open region with a central blockage and three terminals, used
// to visualize the seed → voidless → grow → refine progression.
func Fig8Scene() (geom.Region, []route.Terminal) {
	avail := geom.RegionFromRect(geom.R(0, 0, 120, 80)).
		Subtract(geom.RegionFromRect(geom.R(50, 28, 74, 54)))
	terms := []route.Terminal{
		{Name: "A", Shape: geom.RegionFromRect(geom.R(4, 36, 10, 46)), Current: 4},
		{Name: "B", Shape: geom.RegionFromRect(geom.R(110, 8, 116, 18)), Current: 2},
		{Name: "C", Shape: geom.RegionFromRect(geom.R(110, 62, 116, 72)), Current: 2},
	}
	return avail, terms
}
