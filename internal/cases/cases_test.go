package cases_test

import (
	"testing"

	"sprout"
	"sprout/internal/board"
	"sprout/internal/cases"
	"sprout/internal/geom"
	"sprout/internal/route"
)

func TestTwoRailBoardWellFormed(t *testing.T) {
	cs, err := cases.TwoRail()
	if err != nil {
		t.Fatal(err)
	}
	b := cs.Board
	if got := len(b.Nets); got != 2 {
		t.Fatalf("nets = %d, want 2", got)
	}
	if b.Stackup.NumLayers() != 8 {
		t.Fatalf("layers = %d, want 8", b.Stackup.NumLayers())
	}
	planes := 0
	for i := 1; i <= 8; i++ {
		if b.Stackup.Layer(i).IsPlane {
			planes++
		}
	}
	if planes != 3 {
		t.Fatalf("ground planes = %d, want 3 (layers 2, 6, 8)", planes)
	}
	// Each net: PMIC + BGA groups on the routing layer.
	for _, net := range b.Nets {
		groups := b.GroupsOn(net.ID, cs.RoutingLayer)
		if len(groups) != 2 {
			t.Fatalf("net %s groups = %d, want 2", net.Name, len(groups))
		}
	}
	// Available space must be connected for each net (single-layer route).
	for _, net := range b.Nets {
		avail := b.AvailableSpace(net.ID, cs.RoutingLayer)
		comps := avail.Components()
		main := comps[0]
		for _, c := range comps[1:] {
			if c.Area() > main.Area() {
				main = c
			}
		}
		for _, g := range b.GroupsOn(net.ID, cs.RoutingLayer) {
			if !main.Overlaps(g.Shape()) {
				t.Fatalf("net %s group %s outside the main component", net.Name, g.Name)
			}
		}
	}
}

func TestSixRailBoardWellFormed(t *testing.T) {
	cs, err := cases.SixRail()
	if err != nil {
		t.Fatal(err)
	}
	b := cs.Board
	if got := len(b.Nets); got != 7 { // 6 power + GND
		t.Fatalf("nets = %d, want 7", got)
	}
	// 306 ground vias as obstacles.
	gndVias := 0
	for _, o := range b.Obstacle {
		if o.Net != board.NetNone {
			gndVias++
		}
	}
	if gndVias != 306 {
		t.Fatalf("ground vias = %d, want 306", gndVias)
	}
	// 51 BGA vias per power net plus one PMIC via.
	power := 0
	for _, net := range b.Nets {
		if net.Name == "GND" {
			continue
		}
		power++
		var bga, pmic int
		for _, g := range b.GroupsOn(net.ID, cs.RoutingLayer) {
			switch g.Kind {
			case board.KindBGA:
				bga += len(g.Pads)
			case board.KindPMIC:
				pmic++
			}
		}
		if bga != 51 {
			t.Fatalf("net %s BGA vias = %d, want 51", net.Name, bga)
		}
		if pmic != 1 {
			t.Fatalf("net %s PMICs = %d, want 1", net.Name, pmic)
		}
	}
	if power != 6 {
		t.Fatalf("power nets = %d, want 6", power)
	}
}

func TestThreeRailBoardWellFormed(t *testing.T) {
	row := cases.Table4()[2] // layout 3: 20/20/3.75
	cs, err := cases.ThreeRail(row)
	if err != nil {
		t.Fatal(err)
	}
	b := cs.Board
	// 86 BGA vias total: 24 modem + 36 cpu + 8 dsp + 18 ground.
	bga := 0
	for _, g := range b.Groups {
		if g.Kind == board.KindBGA {
			bga += len(g.Pads)
		}
	}
	gnd := 0
	for _, o := range b.Obstacle {
		if o.Net != board.NetNone {
			gnd++
		}
	}
	if bga+gnd != 86 {
		t.Fatalf("BGA total = %d (power %d + gnd %d), want 86", bga+gnd, bga, gnd)
	}
	// Decaps: 2 modem + 5 cpu lands.
	decapPads := map[string]int{}
	for _, g := range b.Groups {
		if g.Kind == board.KindDecap {
			name, _ := b.Net(g.Net)
			decapPads[name.Name] += len(g.Pads)
		}
	}
	if decapPads["MODEM"] != 2 || decapPads["CPU"] != 5 {
		t.Fatalf("decap lands = %+v, want MODEM:2 CPU:5", decapPads)
	}
	// Budgets follow the Table IV row.
	wantModem := int64(row.Modem * cases.UnitArea)
	if cs.Budgets[0] != wantModem {
		t.Fatalf("modem budget = %d, want %d", cs.Budgets[0], wantModem)
	}
}

func TestTable4Progression(t *testing.T) {
	rows := cases.Table4()
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	if rows[0].Modem != 15 || rows[0].CPU != 15 || rows[0].DSP != 2.5 {
		t.Fatalf("row 1 = %+v", rows[0])
	}
	if rows[8].Modem != 35 || rows[8].CPU != 35 || rows[8].DSP != 7.5 {
		t.Fatalf("row 9 = %+v", rows[8])
	}
	for i := 1; i < 9; i++ {
		if rows[i].Modem <= rows[i-1].Modem || rows[i].DSP <= rows[i-1].DSP {
			t.Fatalf("areas must increase monotonically: %+v", rows)
		}
	}
}

func TestFig8SceneRoutes(t *testing.T) {
	avail, terms := cases.Fig8Scene()
	res, err := route.Route(avail, terms, route.Config{DX: 4, DY: 4, AreaMax: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range terms {
		if !res.Shape.Overlaps(term.Shape) {
			t.Fatalf("copper misses terminal %s", term.Name)
		}
	}
	// The blockage must stay clear.
	if res.Shape.Overlaps(geom.RegionFromRect(geom.R(50, 28, 74, 54))) {
		t.Fatal("copper entered the blockage")
	}
}

// TestTwoRailEndToEnd routes the full Fig. 9 case including the manual
// baseline — the Table II experiment at test scale.
func TestTwoRailEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end case study")
	}
	cs, err := cases.TwoRail()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sprout.RouteBoard(cs.Board, sprout.RouteOptions{
		Layer:      cs.RoutingLayer,
		Budgets:    cs.Budgets,
		Config:     cs.Config,
		WithManual: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rails) != 2 {
		t.Fatalf("rails routed = %d, want 2", len(res.Rails))
	}
	var copper []geom.Region
	for _, rail := range res.Rails {
		if rail.Extract == nil || rail.ManualExtract == nil {
			t.Fatalf("rail %s missing extraction", rail.Name)
		}
		if rail.Extract.ResistanceOhms <= 0 || rail.Extract.InductancePH <= 0 {
			t.Fatalf("rail %s bad impedance %+v", rail.Name, rail.Extract)
		}
		// Paper Table II: SPROUT tracks manual closely. Allow a wide
		// envelope at test scale.
		ratio := rail.Extract.ResistanceOhms / rail.ManualExtract.ResistanceOhms
		if ratio > 1.6 || ratio < 0.4 {
			t.Fatalf("rail %s SPROUT/manual R ratio = %g", rail.Name, ratio)
		}
		// Area budget respected (one tile tolerance).
		tile := cs.Config.DX * cs.Config.DY
		if got := rail.Route.Shape.Area(); got > cs.Budgets[rail.Net]+tile*int64(cs.Config.GrowNodes) {
			t.Fatalf("rail %s area %d exceeds budget %d", rail.Name, got, cs.Budgets[rail.Net])
		}
		copper = append(copper, rail.Route.Shape)
	}
	// Rails must not short.
	if copper[0].Overlaps(copper[1]) {
		t.Fatal("rails short together")
	}
	// Rails must respect mutual clearance.
	if copper[0].Bloat(cs.Board.Rules.Clearance).Overlaps(copper[1]) {
		t.Fatal("rails violate clearance")
	}
}

// TestSixRailEndToEnd routes the full Fig. 10 congested board with the
// manual baseline — the Table III experiment at test scale.
func TestSixRailEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end case study")
	}
	cs, err := cases.SixRail()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sprout.RouteBoard(cs.Board, sprout.RouteOptions{
		Layer:      cs.RoutingLayer,
		Budgets:    cs.Budgets,
		Config:     cs.Config,
		WithManual: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rails) != 6 {
		t.Fatalf("rails routed = %d, want 6", len(res.Rails))
	}
	var copper []geom.Region
	sproutBetter := 0
	for _, rail := range res.Rails {
		ratio := rail.Extract.ResistanceOhms / rail.ManualExtract.ResistanceOhms
		if ratio <= 1 {
			sproutBetter++
		}
		if ratio > 1.6 || ratio < 0.3 {
			t.Fatalf("rail %s SPROUT/manual R ratio = %g out of envelope", rail.Name, ratio)
		}
		copper = append(copper, rail.Route.Shape)
	}
	// Paper Table III: SPROUT loop inductance is 1-4% *smaller* than
	// manual; at reproduction scale require SPROUT to win on at least a
	// couple of rails.
	if sproutBetter < 2 {
		t.Fatalf("SPROUT better on only %d/6 rails", sproutBetter)
	}
	// No two rails may short or violate clearance.
	for i := 0; i < len(copper); i++ {
		for j := i + 1; j < len(copper); j++ {
			if copper[i].Bloat(cs.Board.Rules.Clearance).Overlaps(copper[j]) {
				t.Fatalf("rails %d and %d violate clearance", i, j)
			}
		}
	}
	// Copper must dodge every ground via obstacle.
	for _, o := range cs.Board.Obstacle {
		for i, c := range copper {
			if c.Overlaps(o.Shape) {
				t.Fatalf("rail %d copper crosses a ground via at %v", i, o.Shape.Bounds())
			}
		}
	}
	// The full design-rule audit must be clean on the congested board.
	if vs := sprout.Audit(res, sprout.DRCLimits{}); len(vs) != 0 {
		t.Fatalf("six-rail board must pass DRC, got %v", vs)
	}
}

// TestThreeRailLayoutRoutes routes one Table IV layout end to end.
func TestThreeRailLayoutRoutes(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end case study")
	}
	cs, err := cases.ThreeRail(cases.Table4()[4]) // layout 5 (middle)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sprout.RouteBoard(cs.Board, sprout.RouteOptions{
		Layer:   cs.RoutingLayer,
		Budgets: cs.Budgets,
		Config:  cs.Config,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rails) != 3 {
		t.Fatalf("rails = %d, want 3", len(res.Rails))
	}
	for _, rail := range res.Rails {
		net, _ := cs.Board.Net(rail.Net)
		an, err := sprout.AnalyzeRail(rail.Extract, net, cs.VSupply, cs.Decaps[rail.Net])
		if err != nil {
			t.Fatalf("rail %s: %v", rail.Name, err)
		}
		if an.MinLoadVoltage <= 0.5 || an.MinLoadVoltage >= cs.VSupply {
			t.Fatalf("rail %s min voltage %g implausible", rail.Name, an.MinLoadVoltage)
		}
		if an.DelayNorm < 1 {
			t.Fatalf("rail %s delay %g must be >= nominal", rail.Name, an.DelayNorm)
		}
	}
}
