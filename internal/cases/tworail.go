package cases

import (
	"sprout/internal/board"
	"sprout/internal/ckt"
	"sprout/internal/geom"
	"sprout/internal/route"
)

// TwoRail builds the Fig. 9 scenario: part of an eight-layer PCB for a
// wireless application. The PMIC sits on bottom layer 8 and feeds two
// rails, V_DD1 and V_DD2, through inductors whose outputs reach routing
// layer 7 by vias; the rails connect to two groups of BGA vias on layer 7.
// Dedicated ground planes occupy layers 2, 6 and 8, and a blockage crosses
// the routing region. Board section: 30 x 20 mm (300 x 200 units).
func TwoRail() (*CaseStudy, error) {
	stack := board.Stackup{Layers: []board.Layer{
		{Name: "L1-top", CopperUM: 35, DielectricBelowUM: 100},
		{Name: "L2-gnd", CopperUM: 35, DielectricBelowUM: 100, IsPlane: true},
		{Name: "L3", CopperUM: 18, DielectricBelowUM: 100},
		{Name: "L4", CopperUM: 18, DielectricBelowUM: 100},
		{Name: "L5", CopperUM: 18, DielectricBelowUM: 100},
		{Name: "L6-gnd", CopperUM: 35, DielectricBelowUM: 100, IsPlane: true},
		{Name: "L7-pwr", CopperUM: 70, DielectricBelowUM: 100},
		{Name: "L8-gnd", CopperUM: 35, DielectricBelowUM: 0, IsPlane: true},
	}}
	rules := board.DesignRules{Clearance: 2, TileDX: 10, TileDY: 10, ViaCost: 5}
	b, err := board.New("two-rail-wireless", geom.R(0, 0, 300, 200), stack, rules)
	if err != nil {
		return nil, err
	}
	const layer = 7

	vdd1 := b.AddNet("VDD1", 4, 5)
	vdd2 := b.AddNet("VDD2", 3, 5)

	// PMIC inductor output vias near the left edge (the PMIC itself is on
	// layer 8; its outputs surface on layer 7 through vias).
	if err := addGroup(b, board.TerminalGroup{
		Name: "pmic_vdd1", Kind: board.KindPMIC, Net: vdd1, Layer: layer,
		Pads: []geom.Region{viaPad(geom.Pt(30, 135), 6)}, Current: 4,
	}); err != nil {
		return nil, err
	}
	if err := addGroup(b, board.TerminalGroup{
		Name: "pmic_vdd2", Kind: board.KindPMIC, Net: vdd2, Layer: layer,
		Pads: []geom.Region{viaPad(geom.Pt(30, 65), 6)}, Current: 3,
	}); err != nil {
		return nil, err
	}

	// BGA via groups on the right side: 3x3 clusters at 8-unit pitch.
	if err := addGroup(b, board.TerminalGroup{
		Name: "bga_vdd1", Kind: board.KindBGA, Net: vdd1, Layer: layer,
		Pads: viaCluster(geom.Pt(246, 134), 3, 3, 8, 2), Current: 4,
	}); err != nil {
		return nil, err
	}
	if err := addGroup(b, board.TerminalGroup{
		Name: "bga_vdd2", Kind: board.KindBGA, Net: vdd2, Layer: layer,
		Pads: viaCluster(geom.Pt(246, 50), 3, 3, 8, 2), Current: 3,
	}); err != nil {
		return nil, err
	}

	// Blockages (diagonal hatch in Fig. 9a): a central keepout and a
	// corner cutout.
	if err := b.AddObstacle(board.NetNone, layer, geom.RegionFromRect(geom.R(130, 80, 165, 125))); err != nil {
		return nil, err
	}
	if err := b.AddObstacle(board.NetNone, layer, geom.RegionFromRect(geom.R(190, 0, 220, 35))); err != nil {
		return nil, err
	}

	return &CaseStudy{
		Board:        b,
		RoutingLayer: layer,
		Budgets: map[board.NetID]int64{
			vdd1: 6000,
			vdd2: 5200,
		},
		Config: route.Config{
			DX: 5, DY: 5,
			GrowNodes: 20, RefineNodes: 10, RefineIters: 10,
			ReheatDilations: 2,
		},
		Decaps:  map[board.NetID][]ckt.Decap{},
		VSupply: 1.0,
	}, nil
}
