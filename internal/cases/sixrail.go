package cases

import (
	"fmt"

	"sprout/internal/board"
	"sprout/internal/ckt"
	"sprout/internal/geom"
	"sprout/internal/route"
)

// SixRail builds the Fig. 10 scenario: a congested BGA arrangement with
// 612 BGA vias — 306 for six power nets (51 each) and 306 for ground —
// projected onto routing layer 9 of a ten-layer PCB. Two PMICs sit on the
// bottom layer, each regulating three voltage domains; their outputs reach
// layer 9 through vias along the bottom edge. Ground planes occupy layers
// 4, 6 and 8, and the ground BGA vias act as buffered obstacles on the
// routing layer (the layer is otherwise flooded with ground metal in the
// manual layout of Fig. 10c). Board section: 32 x 30 mm.
func SixRail() (*CaseStudy, error) {
	stack := board.Stackup{Layers: []board.Layer{
		{Name: "L1-top", CopperUM: 35, DielectricBelowUM: 80},
		{Name: "L2", CopperUM: 18, DielectricBelowUM: 80},
		{Name: "L3", CopperUM: 18, DielectricBelowUM: 80},
		{Name: "L4-gnd", CopperUM: 35, DielectricBelowUM: 80, IsPlane: true},
		{Name: "L5", CopperUM: 18, DielectricBelowUM: 80},
		{Name: "L6-gnd", CopperUM: 35, DielectricBelowUM: 80, IsPlane: true},
		{Name: "L7", CopperUM: 18, DielectricBelowUM: 80},
		{Name: "L8-gnd", CopperUM: 35, DielectricBelowUM: 80, IsPlane: true},
		{Name: "L9-pwr", CopperUM: 70, DielectricBelowUM: 80},
		{Name: "L10-bot", CopperUM: 35, DielectricBelowUM: 0},
	}}
	rules := board.DesignRules{Clearance: 1, TileDX: 4, TileDY: 4, ViaCost: 5}
	b, err := board.New("six-rail-congested", geom.R(0, 0, 320, 300), stack, rules)
	if err != nil {
		return nil, err
	}
	const layer = 9

	nets := make([]board.NetID, 6)
	currents := []float64{3, 2, 2.5, 2, 2, 3}
	for i := range nets {
		nets[i] = b.AddNet(fmt.Sprintf("V%d", i+1), currents[i], 5)
	}
	gnd := b.AddNet("GND", 0, 0)

	// BGA via field: 27 x 24 candidate positions at 0.8 mm pitch; the
	// checkerboard and per-net caps below trim this to exactly 612 vias
	// (306 ground + 6 x 51 power).
	const (
		cols     = 27
		rows     = 24
		pitch    = 8
		padHalf  = 2
		originX  = 58
		originY  = 66
		perNet   = 51
		gndTotal = 306
	)
	netPads := make(map[board.NetID][]geom.Region)
	gndCount := 0
	for j := 0; j < rows; j++ {
		for i := 0; i < cols; i++ {
			p := geom.Pt(originX+int64(i)*pitch, originY+int64(j)*pitch)
			pad := viaPad(p, padHalf)
			if (i+j)%2 == 0 {
				// Ground via: a buffered obstacle for every power net.
				if gndCount >= gndTotal {
					continue
				}
				gndCount++
				if err := b.AddObstacle(gnd, layer, pad); err != nil {
					return nil, err
				}
				continue
			}
			// Power via: sector assignment, three columns by two rows of
			// sectors matching Fig. 10a's numbered net regions.
			sx := i * 3 / cols
			sy := j * 2 / rows
			net := nets[sy*3+sx]
			if len(netPads[net]) >= perNet {
				continue
			}
			netPads[net] = append(netPads[net], pad)
		}
	}
	for i, net := range nets {
		if len(netPads[net]) != perNet {
			return nil, fmt.Errorf("cases: net V%d has %d BGA vias, want %d", i+1, len(netPads[net]), perNet)
		}
		if err := addGroup(b, board.TerminalGroup{
			Name: fmt.Sprintf("bga_v%d", i+1), Kind: board.KindBGA, Net: net, Layer: layer,
			Pads: netPads[net], Current: currents[i],
		}); err != nil {
			return nil, err
		}
	}
	if gndCount != gndTotal {
		return nil, fmt.Errorf("cases: ground via count %d, want %d", gndCount, gndTotal)
	}

	// PMIC output vias along the bottom edge: PMIC1 feeds V1-V3 (left),
	// PMIC2 feeds V4-V6 (right).
	pmicX := []int64{40, 80, 120, 200, 240, 280}
	for i, net := range nets {
		if err := addGroup(b, board.TerminalGroup{
			Name: fmt.Sprintf("pmic_v%d", i+1), Kind: board.KindPMIC, Net: net, Layer: layer,
			Pads: []geom.Region{viaPad(geom.Pt(pmicX[i], 20), 5)}, Current: currents[i],
		}); err != nil {
			return nil, err
		}
	}

	budgets := map[board.NetID]int64{}
	for i, net := range nets {
		// Outer sectors travel farther; give them slightly more copper.
		budgets[net] = 3600
		if i == 0 || i == 5 {
			budgets[net] = 4200
		}
	}
	return &CaseStudy{
		Board:        b,
		RoutingLayer: layer,
		Budgets:      budgets,
		Config: route.Config{
			DX: 4, DY: 4,
			GrowNodes: 14, RefineNodes: 15, RefineIters: 12,
			ReheatDilations: 1,
		},
		Decaps:  map[board.NetID][]ckt.Decap{},
		VSupply: 1.0,
	}, nil
}
