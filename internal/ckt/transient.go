package ckt

import (
	"fmt"

	"sprout/internal/sparse"
)

// Waveform is a simulated node voltage trace.
type Waveform struct {
	T []float64 // seconds
	V []float64 // volts
}

// Min returns the minimum sample value (0 for an empty waveform).
func (w Waveform) Min() float64 {
	if len(w.V) == 0 {
		return 0
	}
	min := w.V[0]
	for _, v := range w.V[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the maximum sample value (0 for an empty waveform).
func (w Waveform) Max() float64 {
	if len(w.V) == 0 {
		return 0
	}
	max := w.V[0]
	for _, v := range w.V[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Transient integrates the circuit from t=0 (all states zero) to tStop
// with fixed step dt using the trapezoidal rule (A-stable; the standard
// SPICE companion models). It returns one waveform per node, indexed by
// node id.
func (c *Circuit) Transient(tStop, dt float64) ([]Waveform, error) {
	if dt <= 0 || tStop <= 0 || tStop < dt {
		return nil, fmt.Errorf("ckt: bad transient window tStop=%g dt=%g", tStop, dt)
	}
	n := len(c.names) - 1
	if n == 0 {
		return []Waveform{{}}, nil
	}
	steps := int(tStop/dt) + 1

	// Constant conductance matrix: resistors plus companion conductances.
	g := sparse.NewDense(n)
	stamp := func(a, b int, adm float64) {
		ia, ib := a-1, b-1
		if ia >= 0 {
			g.Addd(ia, ia, adm)
		}
		if ib >= 0 {
			g.Addd(ib, ib, adm)
		}
		if ia >= 0 && ib >= 0 {
			g.Addd(ia, ib, -adm)
			g.Addd(ib, ia, -adm)
		}
	}
	// Per-element companion state.
	type state struct {
		geq  float64
		volt float64 // previous branch voltage v(a)-v(b)
		cur  float64 // previous branch current a->b
	}
	states := make([]state, len(c.elems))
	for i, e := range c.elems {
		switch e.kind {
		case kindR:
			stamp(e.a, e.b, 1/e.val)
		case kindC:
			geq := 2 * e.val / dt
			states[i].geq = geq
			stamp(e.a, e.b, geq)
		case kindL:
			geq := dt / (2 * e.val)
			states[i].geq = geq
			stamp(e.a, e.b, geq)
		}
	}
	chol, err := g.Cholesky()
	if err != nil {
		return nil, fmt.Errorf("ckt: transient matrix not SPD (floating node?): %w", err)
	}

	wf := make([]Waveform, len(c.names))
	for i := range wf {
		wf[i].T = make([]float64, 0, steps)
		wf[i].V = make([]float64, 0, steps)
	}
	volts := make([]float64, len(c.names))
	rhs := make([]float64, n)
	record := func(t float64) {
		for i := range wf {
			wf[i].T = append(wf[i].T, t)
			wf[i].V = append(wf[i].V, volts[i])
		}
	}
	record(0)

	for s := 1; s < steps; s++ {
		t := float64(s) * dt
		for i := range rhs {
			rhs[i] = 0
		}
		inject := func(a, b int, i float64) {
			// Current i flows a -> b through the element: it leaves node a
			// and enters node b.
			if a > 0 {
				rhs[a-1] -= i
			}
			if b > 0 {
				rhs[b-1] += i
			}
		}
		for i, e := range c.elems {
			st := &states[i]
			switch e.kind {
			case kindC:
				// Trapezoidal capacitor: i_eq = geq*v_prev + i_prev,
				// companion source pushes from b to a (history source).
				inject(e.b, e.a, st.geq*st.volt+st.cur)
			case kindL:
				// Trapezoidal inductor: i_eq = i_prev + geq*v_prev,
				// history source pushes a -> b.
				inject(e.a, e.b, st.cur+st.geq*st.volt)
			case kindI:
				inject(e.a, e.b, e.src(t))
			}
		}
		x := chol.Solve(rhs)
		volts[0] = 0
		copy(volts[1:], x)
		// Update companion states.
		for i, e := range c.elems {
			st := &states[i]
			if e.kind != kindC && e.kind != kindL {
				continue
			}
			v := volts[e.a] - volts[e.b]
			switch e.kind {
			case kindC:
				st.cur = st.geq*(v-st.volt) - st.cur
			case kindL:
				st.cur = st.cur + st.geq*(v+st.volt)
			}
			st.volt = v
		}
		record(t)
	}
	return wf, nil
}
