package ckt

import (
	"math"
	"testing"
)

func testModel() PDNModel {
	return PDNModel{
		VSupply: 1, ROhms: 0.002, LHenry: 500e-12,
		Decaps: []Decap{DefaultDecap()},
		ILoad:  2, SlewNS: 5,
	}
}

func TestImpedanceProfileShape(t *testing.T) {
	p, err := testModel().ImpedanceProfile(1e3, 1e9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) < 50 {
		t.Fatalf("points = %d, want >= 50 over 6 decades", len(p))
	}
	// Frequencies strictly increasing, log-spaced.
	for i := 1; i < len(p); i++ {
		if p[i].FreqHz <= p[i-1].FreqHz {
			t.Fatal("frequencies must increase")
		}
	}
	// At DC-ish frequencies the profile approaches the rail resistance.
	if got := p[0].MagOhms(); math.Abs(got-0.002)/0.002 > 0.2 {
		t.Fatalf("low-frequency |Z| = %g, want ~R = 0.002", got)
	}
	// At very high frequencies the inductances dominate: the rail L in
	// parallel with the decap ESL (its C is a short by then), so
	// |Z| ~ ω·(L_rail ∥ ESL) = ω·250 pH here.
	last := p[len(p)-1]
	lhf := 500e-12 * 0.5e-9 / (500e-12 + 0.5e-9)
	want := 2 * math.Pi * last.FreqHz * lhf
	if math.Abs(last.MagOhms()-want)/want > 0.3 {
		t.Fatalf("high-frequency |Z| = %g, want ~ω(L∥ESL) = %g", last.MagOhms(), want)
	}
	// The decap series resonance carves a dip: the profile is not
	// monotone in |Z| — somewhere in the interior it strictly decreases.
	dips := 0
	for i := 1; i < len(p); i++ {
		if p[i].MagOhms() < p[i-1].MagOhms()*0.999 {
			dips++
		}
	}
	if dips == 0 {
		t.Fatal("profile missing the decap resonance dip")
	}
	// The global peak is the inductive tail end for this topology.
	peak, freq := p.PeakOhms()
	if freq != last.FreqHz || peak != last.MagOhms() {
		t.Fatalf("peak %g at %g Hz, want the inductive tail", peak, freq)
	}
}

func TestImpedanceProfileValidation(t *testing.T) {
	m := testModel()
	if _, err := m.ImpedanceProfile(0, 1e9, 10); err == nil {
		t.Fatal("zero fMin must error")
	}
	if _, err := m.ImpedanceProfile(1e6, 1e3, 10); err == nil {
		t.Fatal("inverted range must error")
	}
	if _, err := m.ImpedanceProfile(1e3, 1e9, 0); err == nil {
		t.Fatal("zero points must error")
	}
}

func TestTargetFromRLC(t *testing.T) {
	mask, err := TargetFromRLC(1.0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	limit, err := mask.LimitAt(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(limit-0.015) > 1e-12 {
		t.Fatalf("flat target = %g, want 0.015", limit)
	}
	if _, err := TargetFromRLC(0, 3, 2); err == nil {
		t.Fatal("bad params must error")
	}
}

func TestMaskInterpolation(t *testing.T) {
	mask := TargetMask{{1e3, 0.1}, {1e6, 0.001}}
	// Clamping outside the range.
	lo, _ := mask.LimitAt(10)
	hi, _ := mask.LimitAt(1e9)
	if lo != 0.1 || hi != 0.001 {
		t.Fatalf("clamps = %g, %g", lo, hi)
	}
	// Log-log midpoint: sqrt(0.1*0.001) ~ 0.01 at f = sqrt(1e3*1e6).
	mid, err := mask.LimitAt(math.Sqrt(1e3 * 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mid-0.01)/0.01 > 1e-9 {
		t.Fatalf("log-log interpolation = %g, want 0.01", mid)
	}
	if _, err := (TargetMask{}).LimitAt(1e6); err == nil {
		t.Fatal("empty mask must error")
	}
}

func TestMaskCheck(t *testing.T) {
	m := testModel()
	p, err := m.ImpedanceProfile(1e3, 1e8, 10)
	if err != nil {
		t.Fatal(err)
	}
	peak, _ := p.PeakOhms()
	// Generous mask: passes.
	loose := TargetMask{{1, peak * 2}, {1e12, peak * 2}}
	rep, err := loose.Check(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.WorstRatio > 1 {
		t.Fatalf("loose mask must pass: %+v", rep)
	}
	// Tight mask: fails at the peak frequency.
	tight := TargetMask{{1, peak / 2}, {1e12, peak / 2}}
	rep, err = tight.Check(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.WorstRatio <= 1 {
		t.Fatalf("tight mask must fail: %+v", rep)
	}
	if _, err := tight.Check(nil); err == nil {
		t.Fatal("empty profile must error")
	}
}

func TestProfileMoreDecapsLowerPeak(t *testing.T) {
	base := testModel()
	more := base
	more.Decaps = []Decap{DefaultDecap(), DefaultDecap(), DefaultDecap()}
	p1, err := base.ImpedanceProfile(1e4, 1e8, 12)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := more.ImpedanceProfile(1e4, 1e8, 12)
	if err != nil {
		t.Fatal(err)
	}
	peak1, _ := p1.PeakOhms()
	peak2, _ := p2.PeakOhms()
	if peak2 >= peak1 {
		t.Fatalf("more decaps must lower the peak: %g vs %g", peak2, peak1)
	}
}
