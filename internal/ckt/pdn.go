package ckt

import (
	"fmt"
	"math"
)

// Decap is a decoupling capacitor with its parasitics.
type Decap struct {
	C   float64 // farads
	ESR float64 // ohms
	ESL float64 // henries
}

// DefaultDecap returns a typical 10 µF MLCC (ESR 5 mΩ, ESL 0.5 nH), the
// class of on-board decaps in the paper's case studies.
func DefaultDecap() Decap {
	return Decap{C: 10e-6, ESR: 0.005, ESL: 0.5e-9}
}

// PDNModel is the lumped model of one rail used for the Fig. 12c/d
// analysis: the supply (PMIC output, treated as ideal at DC) feeds the
// load through the extracted rail resistance and inductance; decaps hang
// at the load; the load draws a ramped current step.
type PDNModel struct {
	// VSupply is the nominal rail voltage (1 V in the case study).
	VSupply float64
	// ROhms, LHenry are the extracted rail parasitics.
	ROhms  float64
	LHenry float64
	// Decaps at the load node.
	Decaps []Decap
	// ILoad is the load current step magnitude in amperes.
	ILoad float64
	// SlewNS is the 0→ILoad ramp time in nanoseconds.
	SlewNS float64
	// CLoadF is the lumped die/package capacitance at the load node in
	// farads; it damps the rail inductance physically. Zero selects 1 µF.
	CLoadF float64
	// CLoadESR is the ESR of the load capacitance in ohms. Zero selects
	// 10 mΩ.
	CLoadESR float64
}

// Validate reports the first modelling error.
func (m PDNModel) Validate() error {
	if m.VSupply <= 0 {
		return fmt.Errorf("ckt: supply voltage %g must be positive", m.VSupply)
	}
	if m.ROhms <= 0 || m.LHenry <= 0 {
		return fmt.Errorf("ckt: rail parasitics R=%g L=%g must be positive", m.ROhms, m.LHenry)
	}
	if m.ILoad <= 0 || m.SlewNS <= 0 {
		return fmt.Errorf("ckt: load %gA slew %gns must be positive", m.ILoad, m.SlewNS)
	}
	for i, d := range m.Decaps {
		if d.C <= 0 || d.ESR <= 0 || d.ESL <= 0 {
			return fmt.Errorf("ckt: decap %d has non-positive parameters", i)
		}
	}
	return nil
}

// build assembles the drop network: ground plays the supply, `load` is the
// load node, and the returned circuit computes the voltage drop v(load)
// caused by the ramped load current.
func (m PDNModel) build(withLoadCap bool) (*Circuit, int, error) {
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	c := New()
	mid := c.Node("rail_mid")
	load := c.Node("load")
	if err := c.AddR(Ground, mid, m.ROhms); err != nil {
		return nil, 0, err
	}
	if err := c.AddL(mid, load, m.LHenry); err != nil {
		return nil, 0, err
	}
	if withLoadCap {
		// Die/package capacitance at the load: always present physically,
		// and it provides the damping path for the rail inductance in the
		// transient analysis.
		cload := m.CLoadF
		if cload <= 0 {
			cload = 1e-6
		}
		cesr := m.CLoadESR
		if cesr <= 0 {
			cesr = 0.01
		}
		nl := c.Node("cload_rc")
		if err := c.AddR(load, nl, cesr); err != nil {
			return nil, 0, err
		}
		if err := c.AddC(nl, Ground, cload); err != nil {
			return nil, 0, err
		}
	}
	for i, d := range m.Decaps {
		n1 := c.Node(fmt.Sprintf("decap%d_rc", i))
		n2 := c.Node(fmt.Sprintf("decap%d_lc", i))
		if err := c.AddR(load, n1, d.ESR); err != nil {
			return nil, 0, err
		}
		if err := c.AddL(n1, n2, d.ESL); err != nil {
			return nil, 0, err
		}
		if err := c.AddC(n2, Ground, d.C); err != nil {
			return nil, 0, err
		}
	}
	slew := m.SlewNS * 1e-9
	iload := m.ILoad
	ramp := func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		if t >= slew {
			return iload
		}
		return iload * t / slew
	}
	if err := c.AddI(load, Ground, ramp); err != nil {
		return nil, 0, err
	}
	return c, load, nil
}

// MinLoadVoltage simulates the load-step transient and returns the minimum
// instantaneous load voltage (Fig. 12c). The simulated node voltage is the
// deviation from the supply (the load draws current, so it swings
// negative); the result is V_supply + min(deviation). The window is sized
// to cover the ramp plus several rail L/R time constants and the load-cap
// recharge.
func (m PDNModel) MinLoadVoltage() (float64, error) {
	c, load, err := m.build(true)
	if err != nil {
		return 0, err
	}
	slew := m.SlewNS * 1e-9
	tau := m.LHenry / m.ROhms
	window := slew + 10*tau
	cload := m.CLoadF
	if cload <= 0 {
		cload = 1e-6
	}
	if t := 10 * m.ROhms * cload; t > window {
		window = t
	}
	for _, d := range m.Decaps {
		if t := 5 * math.Sqrt(d.C*(m.LHenry+d.ESL)); t > window {
			window = t
		}
	}
	dt := window / 4000
	wf, err := c.Transient(window, dt)
	if err != nil {
		return 0, err
	}
	return m.VSupply + wf[load].Min(), nil
}

// SteadyStateDrop returns the DC IR drop I*R (the floor the transient
// settles to).
func (m PDNModel) SteadyStateDrop() float64 {
	return m.ILoad * m.ROhms
}

// EffectiveInductancePH reports Im(Z)/ω of the rail seen from the load at
// freqHz, including the decaps, in picohenries. This is the paper's
// "normalized inductance @ 25 MHz" (Tables II/III, Fig. 12b): decaps shunt
// the rail inductance, which is why the modem and CPU rails in the paper
// barely improve with area. The die capacitance is excluded — the metric
// characterizes the board PDN the die sees, not the die itself.
func (m PDNModel) EffectiveInductancePH(freqHz float64) (float64, error) {
	c, load, err := m.build(false)
	if err != nil {
		return 0, err
	}
	l, err := c.EffectiveInductanceH(load, freqHz)
	if err != nil {
		return 0, err
	}
	return l * 1e12, nil
}

// FinFETGuideline maps a load voltage to normalized transistor propagation
// delay using the alpha-power law fitted to the 32 nm FinFET guidelines of
// paper reference [35]: t_p ∝ V / (V - V_th)^α. Delay is normalized to 1.0
// at V = VNom. Dynamic power scales as (V/VNom)².
type FinFETGuideline struct {
	VNom  float64 // nominal supply (1 V)
	VTh   float64 // threshold voltage
	Alpha float64 // velocity-saturation exponent
}

// DefaultFinFET returns the 32 nm FinFET guideline constants.
func DefaultFinFET() FinFETGuideline {
	return FinFETGuideline{VNom: 1.0, VTh: 0.25, Alpha: 1.4}
}

// Delay returns the normalized propagation delay at load voltage v.
func (g FinFETGuideline) Delay(v float64) (float64, error) {
	if v <= g.VTh {
		return 0, fmt.Errorf("ckt: load voltage %g below threshold %g", v, g.VTh)
	}
	nom := g.VNom / math.Pow(g.VNom-g.VTh, g.Alpha)
	return (v / math.Pow(v-g.VTh, g.Alpha)) / nom, nil
}

// DynamicPower returns the normalized dynamic power at load voltage v.
func (g FinFETGuideline) DynamicPower(v float64) float64 {
	r := v / g.VNom
	return r * r
}
