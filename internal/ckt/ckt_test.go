package ckt

import (
	"math"
	"math/cmplx"
	"testing"
)

func step(i float64) func(float64) float64 {
	return func(t float64) float64 { return i }
}

func TestACResistorDivider(t *testing.T) {
	// 1A into two 2Ω resistors in parallel to ground: V = 1.
	c := New()
	n := c.Node("n")
	if err := c.AddR(Ground, n, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR(n, Ground, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddI(Ground, n, step(1)); err != nil {
		t.Fatal(err)
	}
	v, err := c.ACSolve(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(v[n])-1) > 1e-9 || math.Abs(imag(v[n])) > 1e-9 {
		t.Fatalf("divider voltage = %v, want 1", v[n])
	}
}

func TestACRCImpedance(t *testing.T) {
	// Series R-C driven at f: Z = R - j/(ωC).
	c := New()
	n1 := c.Node("n1")
	if err := c.AddR(Ground, n1, 10); err != nil {
		t.Fatal(err)
	}
	n2 := c.Node("n2")
	if err := c.AddC(n1, n2, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Ground the far end through a tiny resistor to keep the matrix
	// non-singular, then probe the series impedance from n2.
	if err := c.AddR(n2, Ground, 1e9); err != nil {
		t.Fatal(err)
	}
	f := 1e4
	z, err := c.Impedance(n1, f)
	if err != nil {
		t.Fatal(err)
	}
	// From n1 the path to ground is the 10Ω resistor in parallel with
	// (C + 1e9Ω); at 10 kHz the branch is ~1e9Ω so Z ≈ 10.
	if math.Abs(real(z)-10) > 0.1 {
		t.Fatalf("Z = %v, want ~10", z)
	}
}

func TestACInductorImpedance(t *testing.T) {
	// Z of L to ground: jωL.
	c := New()
	n := c.Node("n")
	l := 1e-9
	if err := c.AddL(n, Ground, l); err != nil {
		t.Fatal(err)
	}
	f := 25e6
	z, err := c.Impedance(n, f)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Pi * f * l
	if math.Abs(imag(z)-want)/want > 1e-9 {
		t.Fatalf("Im(Z) = %g, want %g", imag(z), want)
	}
	lEff, err := c.EffectiveInductanceH(n, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lEff-l)/l > 1e-9 {
		t.Fatalf("effective L = %g, want %g", lEff, l)
	}
}

func TestACDecapShuntsInductance(t *testing.T) {
	// Rail L with a decap at the load: effective L @ 25 MHz drops well
	// below the bare rail L (the paper's Table II/III mechanism).
	bare := New()
	load := bare.Node("load")
	mid := bare.Node("mid")
	if err := bare.AddR(Ground, mid, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := bare.AddL(mid, load, 1e-9); err != nil {
		t.Fatal(err)
	}
	lBare, err := bare.EffectiveInductanceH(load, 25e6)
	if err != nil {
		t.Fatal(err)
	}

	m := PDNModel{VSupply: 1, ROhms: 0.01, LHenry: 1e-9,
		Decaps: []Decap{DefaultDecap()}, ILoad: 1, SlewNS: 10}
	lWith, err := m.EffectiveInductancePH(25e6)
	if err != nil {
		t.Fatal(err)
	}
	if lWith >= lBare*1e12 {
		t.Fatalf("decap must reduce 25 MHz inductance: bare %g pH with %g pH",
			lBare*1e12, lWith)
	}
}

func TestACSingularDetection(t *testing.T) {
	c := New()
	n := c.Node("floating")
	_ = n
	m := c.Node("m")
	if err := c.AddR(m, Ground, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ACSolve(0); err == nil {
		t.Fatal("floating node must make the matrix singular")
	}
}

func TestTransientRCStepResponse(t *testing.T) {
	// Current step I into R ∥ C: v(t) = IR(1 - e^{-t/RC}).
	c := New()
	n := c.Node("n")
	r, cap, i0 := 100.0, 1e-6, 0.01
	if err := c.AddR(n, Ground, r); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC(n, Ground, cap); err != nil {
		t.Fatal(err)
	}
	if err := c.AddI(Ground, n, step(i0)); err != nil {
		t.Fatal(err)
	}
	tau := r * cap
	wf, err := c.Transient(5*tau, tau/200)
	if err != nil {
		t.Fatal(err)
	}
	for k, tt := range wf[n].T {
		want := i0 * r * (1 - math.Exp(-tt/tau))
		if math.Abs(wf[n].V[k]-want) > 0.02*i0*r {
			t.Fatalf("t=%g: v=%g want %g", tt, wf[n].V[k], want)
		}
	}
}

func TestTransientRLCSettlesToIRDrop(t *testing.T) {
	// Series R-L rail feeding a load with a damping capacitor, drawing a
	// ramped current: the load deviation must settle to -I*R.
	c := New()
	mid := c.Node("mid")
	load := c.Node("load")
	cap1 := c.Node("cap1")
	r, l, i0 := 0.1, 1e-9, 1.0
	if err := c.AddR(Ground, mid, r); err != nil {
		t.Fatal(err)
	}
	if err := c.AddL(mid, load, l); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR(load, cap1, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC(cap1, Ground, 1e-6); err != nil {
		t.Fatal(err)
	}
	slew := 20e-9
	ramp := func(t float64) float64 {
		if t >= slew {
			return i0
		}
		return i0 * t / slew
	}
	if err := c.AddI(load, Ground, ramp); err != nil {
		t.Fatal(err)
	}
	window := 10 * r * 1e-6 // 10 RC of the damping cap
	wf, err := c.Transient(window, window/4000)
	if err != nil {
		t.Fatal(err)
	}
	final := wf[load].V[len(wf[load].V)-1]
	if math.Abs(final-(-i0*r)) > 0.02*i0*r {
		t.Fatalf("settled deviation = %g, want %g", final, -i0*r)
	}
	// The deviation never swings past a few IR drops.
	if wf[load].Min() < -3*i0*r {
		t.Fatalf("excessive droop %g vs IR %g", wf[load].Min(), i0*r)
	}
}

func TestTransientLCOscillation(t *testing.T) {
	// LC tank kicked by a brief current: energy must oscillate at
	// f = 1/(2π√(LC)) with little numerical damping (trapezoidal is
	// A-stable and non-dissipative).
	c := New()
	n := c.Node("n")
	l, cap := 1e-9, 1e-9
	if err := c.AddL(n, Ground, l); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC(n, Ground, cap); err != nil {
		t.Fatal(err)
	}
	pulse := func(t float64) float64 {
		if t < 2e-10 {
			return 1
		}
		return 0
	}
	if err := c.AddI(Ground, n, pulse); err != nil {
		t.Fatal(err)
	}
	period := 2 * math.Pi * math.Sqrt(l*cap)
	wf, err := c.Transient(5*period, period/400)
	if err != nil {
		t.Fatal(err)
	}
	// Count zero crossings in the tail: ~2 per period over 4 periods.
	cross := 0
	v := wf[n].V
	for k := len(v) / 5; k+1 < len(v); k++ {
		if (v[k] > 0) != (v[k+1] > 0) {
			cross++
		}
	}
	if cross < 6 || cross > 10 {
		t.Fatalf("zero crossings = %d, want ~8 (oscillation at the LC frequency)", cross)
	}
}

func TestTransientValidation(t *testing.T) {
	c := New()
	n := c.Node("n")
	if err := c.AddR(n, Ground, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transient(0, 1e-9); err == nil {
		t.Fatal("zero window must error")
	}
	if _, err := c.Transient(1e-6, 0); err == nil {
		t.Fatal("zero step must error")
	}
}

func TestCircuitValidation(t *testing.T) {
	c := New()
	n := c.Node("n")
	if err := c.AddR(n, n, 1); err == nil {
		t.Fatal("self loop must error")
	}
	if err := c.AddR(n, 99, 1); err == nil {
		t.Fatal("bad node must error")
	}
	if err := c.AddR(n, Ground, -1); err == nil {
		t.Fatal("negative R must error")
	}
	if err := c.AddL(n, Ground, 0); err == nil {
		t.Fatal("zero L must error")
	}
	if err := c.AddC(n, Ground, -1e-6); err == nil {
		t.Fatal("negative C must error")
	}
	if err := c.AddI(n, Ground, nil); err == nil {
		t.Fatal("nil source must error")
	}
	if c.NodeName(n) != "n" || c.NodeName(Ground) != "gnd" || c.NodeName(50) == "" {
		t.Fatal("node names")
	}
}

func TestPDNMinLoadVoltage(t *testing.T) {
	m := PDNModel{
		VSupply: 1, ROhms: 0.015, LHenry: 150e-12,
		ILoad: 2, SlewNS: 5,
	}
	vmin, err := m.MinLoadVoltage()
	if err != nil {
		t.Fatal(err)
	}
	// Drop must be at least the IR floor and less than 3x it (inductive
	// overshoot bounded for this gentle slew).
	ir := m.SteadyStateDrop()
	if vmin > 1-ir+1e-6 {
		t.Fatalf("min voltage %g misses the IR floor %g", vmin, 1-ir)
	}
	if vmin < 1-3*ir {
		t.Fatalf("min voltage %g implausibly low vs IR %g", vmin, ir)
	}
}

func TestPDNDecapImprovesMinVoltage(t *testing.T) {
	base := PDNModel{VSupply: 1, ROhms: 0.01, LHenry: 2e-9, ILoad: 3, SlewNS: 2}
	vBare, err := base.MinLoadVoltage()
	if err != nil {
		t.Fatal(err)
	}
	withDecap := base
	withDecap.Decaps = []Decap{DefaultDecap(), DefaultDecap()}
	vDecap, err := withDecap.MinLoadVoltage()
	if err != nil {
		t.Fatal(err)
	}
	if vDecap < vBare-1e-9 {
		t.Fatalf("decaps must not worsen the droop: bare %g with %g", vBare, vDecap)
	}
}

func TestPDNLowerRHigherVmin(t *testing.T) {
	hiR := PDNModel{VSupply: 1, ROhms: 0.03, LHenry: 150e-12, ILoad: 2, SlewNS: 5}
	loR := hiR
	loR.ROhms = 0.01
	vHi, err := hiR.MinLoadVoltage()
	if err != nil {
		t.Fatal(err)
	}
	vLo, err := loR.MinLoadVoltage()
	if err != nil {
		t.Fatal(err)
	}
	if vLo <= vHi {
		t.Fatalf("lower R must raise the minimum voltage: %g vs %g", vLo, vHi)
	}
}

func TestPDNValidation(t *testing.T) {
	bad := []PDNModel{
		{VSupply: 0, ROhms: 1, LHenry: 1, ILoad: 1, SlewNS: 1},
		{VSupply: 1, ROhms: 0, LHenry: 1, ILoad: 1, SlewNS: 1},
		{VSupply: 1, ROhms: 1, LHenry: 0, ILoad: 1, SlewNS: 1},
		{VSupply: 1, ROhms: 1, LHenry: 1, ILoad: 0, SlewNS: 1},
		{VSupply: 1, ROhms: 1, LHenry: 1, ILoad: 1, SlewNS: 0},
		{VSupply: 1, ROhms: 1, LHenry: 1, ILoad: 1, SlewNS: 1, Decaps: []Decap{{}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d must be rejected", i)
		}
	}
}

func TestFinFETDelayMonotone(t *testing.T) {
	g := DefaultFinFET()
	d1, err := g.Delay(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1-1) > 1e-12 {
		t.Fatalf("delay at nominal = %g, want 1", d1)
	}
	prev := d1
	for _, v := range []float64{0.98, 0.95, 0.9, 0.85} {
		d, err := g.Delay(v)
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Fatalf("delay must increase as voltage drops: %g at %g", d, v)
		}
		prev = d
	}
	if _, err := g.Delay(0.2); err == nil {
		t.Fatal("sub-threshold voltage must error")
	}
}

func TestFinFETDelaySensitivity(t *testing.T) {
	// Paper: +36 mV on a ~0.95 V rail gives ~7% delay improvement. Our
	// guideline should be in that ballpark (3-12% for 36 mV).
	g := DefaultFinFET()
	dLow, err := g.Delay(0.914)
	if err != nil {
		t.Fatal(err)
	}
	dHigh, err := g.Delay(0.950)
	if err != nil {
		t.Fatal(err)
	}
	imp := (dLow - dHigh) / dLow
	if imp < 0.03 || imp > 0.12 {
		t.Fatalf("36 mV delay improvement = %.1f%%, want 3-12%%", imp*100)
	}
}

func TestFinFETPower(t *testing.T) {
	g := DefaultFinFET()
	if p := g.DynamicPower(1.0); math.Abs(p-1) > 1e-12 {
		t.Fatalf("power at nominal = %g", p)
	}
	if p := g.DynamicPower(0.964); math.Abs(p-0.964*0.964) > 1e-12 {
		t.Fatalf("power = %g, want V²", p)
	}
}

func TestWaveformMinMax(t *testing.T) {
	w := Waveform{T: []float64{0, 1, 2}, V: []float64{0.5, -1, 2}}
	if w.Min() != -1 || w.Max() != 2 {
		t.Fatalf("min/max = %g/%g", w.Min(), w.Max())
	}
	var empty Waveform
	if empty.Min() != 0 || empty.Max() != 0 {
		t.Fatal("empty waveform min/max must be 0")
	}
}

func TestSolveComplexKnownSystem(t *testing.T) {
	// [1 j; -j 2] x = [1+j, 0]
	a := []complex128{1, 1i, -1i, 2}
	b := []complex128{1 + 1i, 0}
	x, err := solveComplex(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual.
	r0 := a[0]*x[0] + a[1]*x[1] - b[0]
	r1 := a[2]*x[0] + a[3]*x[1] - b[1]
	if cmplx.Abs(r0) > 1e-12 || cmplx.Abs(r1) > 1e-12 {
		t.Fatalf("residual = %v %v", r0, r1)
	}
}
