package ckt

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ACSolve computes the complex node voltages at angular conditions implied
// by freqHz. Current sources inject src(0) amperes as their phasor
// magnitude. The returned slice is indexed by node id with ground fixed at
// 0. freqHz = 0 degenerates to DC: inductors become shorts (modelled as
// tiny resistances) and capacitors open circuits.
func (c *Circuit) ACSolve(freqHz float64) ([]complex128, error) {
	n := len(c.names) - 1 // unknowns (ground eliminated)
	if n == 0 {
		return []complex128{0}, nil
	}
	omega := 2 * math.Pi * freqHz
	y := make([]complex128, n*n)
	rhs := make([]complex128, n)
	stamp := func(a, b int, adm complex128) {
		ia, ib := a-1, b-1
		if ia >= 0 {
			y[ia*n+ia] += adm
		}
		if ib >= 0 {
			y[ib*n+ib] += adm
		}
		if ia >= 0 && ib >= 0 {
			y[ia*n+ib] -= adm
			y[ib*n+ia] -= adm
		}
	}
	for _, e := range c.elems {
		switch e.kind {
		case kindR:
			stamp(e.a, e.b, complex(1/e.val, 0))
		case kindL:
			if omega == 0 {
				// DC: near-short.
				stamp(e.a, e.b, complex(1e12, 0))
			} else {
				stamp(e.a, e.b, 1/complex(0, omega*e.val))
			}
		case kindC:
			if omega != 0 {
				stamp(e.a, e.b, complex(0, omega*e.val))
			}
		case kindI:
			i := complex(e.src(0), 0)
			if e.a > 0 {
				rhs[e.a-1] -= i
			}
			if e.b > 0 {
				rhs[e.b-1] += i
			}
		}
	}
	x, err := solveComplex(y, rhs, n)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(c.names))
	for i := 0; i < n; i++ {
		out[i+1] = x[i]
	}
	return out, nil
}

// Impedance returns the driving-point impedance seen at `node` against
// ground at freqHz, ignoring the circuit's own current sources.
func (c *Circuit) Impedance(node int, freqHz float64) (complex128, error) {
	if node <= 0 || node >= len(c.names) {
		return 0, fmt.Errorf("ckt: impedance node %d out of range", node)
	}
	probe := *c
	probe.elems = make([]element, 0, len(c.elems)+1)
	for _, e := range c.elems {
		if e.kind != kindI {
			probe.elems = append(probe.elems, e)
		}
	}
	probe.elems = append(probe.elems, element{kindI, Ground, node, 0, func(float64) float64 { return 1 }})
	v, err := probe.ACSolve(freqHz)
	if err != nil {
		return 0, err
	}
	return v[node], nil
}

// EffectiveInductanceH extracts Im(Z)/ω at freqHz — the paper's
// "normalized inductance @ 25 MHz" metric for a rail including its
// decoupling capacitors.
func (c *Circuit) EffectiveInductanceH(node int, freqHz float64) (float64, error) {
	z, err := c.Impedance(node, freqHz)
	if err != nil {
		return 0, err
	}
	return imag(z) / (2 * math.Pi * freqHz), nil
}

// solveComplex performs Gaussian elimination with partial pivoting on an
// n x n complex system (row-major a, rhs b).
func solveComplex(a []complex128, b []complex128, n int) ([]complex128, error) {
	// Work on copies: callers may reuse the stamps.
	m := make([]complex128, len(a))
	copy(m, a)
	x := make([]complex128, len(b))
	copy(x, b)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := cmplx.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(m[r*n+col]); v > best {
				best, piv = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return nil, fmt.Errorf("ckt: singular nodal matrix at column %d (floating node?)", col)
		}
		if piv != col {
			for k := col; k < n; k++ {
				m[col*n+k], m[piv*n+k] = m[piv*n+k], m[col*n+k]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				m[r*n+k] -= f * m[col*n+k]
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := x[r]
		for k := r + 1; k < n; k++ {
			sum -= m[r*n+k] * x[k]
		}
		x[r] = sum / m[r*n+r]
	}
	return x[:n], nil
}
