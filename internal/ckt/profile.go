package ckt

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ProfilePoint is one frequency sample of a PDN impedance profile.
type ProfilePoint struct {
	FreqHz float64
	Z      complex128
}

// MagOhms returns |Z| at the sample.
func (p ProfilePoint) MagOhms() float64 { return cmplx.Abs(p.Z) }

// Profile is a log-swept PDN impedance profile — the quantity the paper's
// Fig. 1 flow checks against the target impedance before sign-off
// ("if the impedance profile of the resulting layout does not satisfy the
// target requirements, the layout is iteratively adjusted").
type Profile []ProfilePoint

// PeakOhms returns the highest impedance magnitude and its frequency.
func (p Profile) PeakOhms() (float64, float64) {
	best, freq := 0.0, 0.0
	for _, pt := range p {
		if m := pt.MagOhms(); m > best {
			best, freq = m, pt.FreqHz
		}
	}
	return best, freq
}

// ImpedanceProfile sweeps the rail's driving-point impedance (decaps
// included, die capacitance excluded) logarithmically from fMin to fMax
// with the given number of points per decade.
func (m PDNModel) ImpedanceProfile(fMin, fMax float64, pointsPerDecade int) (Profile, error) {
	if fMin <= 0 || fMax <= fMin {
		return nil, fmt.Errorf("ckt: bad frequency range [%g, %g]", fMin, fMax)
	}
	if pointsPerDecade < 1 {
		return nil, fmt.Errorf("ckt: need >= 1 point per decade, got %d", pointsPerDecade)
	}
	c, load, err := m.build(false)
	if err != nil {
		return nil, err
	}
	decades := math.Log10(fMax / fMin)
	n := int(math.Ceil(decades*float64(pointsPerDecade))) + 1
	var out Profile
	for i := 0; i < n; i++ {
		f := fMin * math.Pow(10, decades*float64(i)/float64(n-1))
		z, err := c.Impedance(load, f)
		if err != nil {
			return nil, fmt.Errorf("ckt: profile at %g Hz: %w", f, err)
		}
		out = append(out, ProfilePoint{FreqHz: f, Z: z})
	}
	return out, nil
}

// TargetMask is a piecewise-log-linear impedance limit |Z(f)| <= limit(f),
// given as breakpoints sorted by frequency. Between breakpoints the limit
// interpolates linearly in log-log space; outside the range it clamps to
// the nearest breakpoint.
type TargetMask []MaskPoint

// MaskPoint is one breakpoint of a target mask.
type MaskPoint struct {
	FreqHz    float64
	LimitOhms float64
}

// TargetFromRLC builds the classic target mask VddRipple/Itransient flat
// limit: Z_target = (Vdd * ripple%) / Imax at all frequencies.
func TargetFromRLC(vdd, ripplePct, iMax float64) (TargetMask, error) {
	if vdd <= 0 || ripplePct <= 0 || iMax <= 0 {
		return nil, fmt.Errorf("ckt: bad target parameters vdd=%g ripple=%g i=%g", vdd, ripplePct, iMax)
	}
	z := vdd * ripplePct / 100 / iMax
	return TargetMask{{1, z}, {1e12, z}}, nil
}

// LimitAt evaluates the mask at freq.
func (mask TargetMask) LimitAt(freq float64) (float64, error) {
	if len(mask) == 0 {
		return 0, fmt.Errorf("ckt: empty target mask")
	}
	if freq <= mask[0].FreqHz {
		return mask[0].LimitOhms, nil
	}
	last := mask[len(mask)-1]
	if freq >= last.FreqHz {
		return last.LimitOhms, nil
	}
	for i := 0; i+1 < len(mask); i++ {
		a, b := mask[i], mask[i+1]
		if freq < a.FreqHz || freq > b.FreqHz {
			continue
		}
		if a.FreqHz <= 0 || b.FreqHz <= a.FreqHz || a.LimitOhms <= 0 || b.LimitOhms <= 0 {
			return 0, fmt.Errorf("ckt: malformed mask segment %d", i)
		}
		t := math.Log(freq/a.FreqHz) / math.Log(b.FreqHz/a.FreqHz)
		return a.LimitOhms * math.Pow(b.LimitOhms/a.LimitOhms, t), nil
	}
	return last.LimitOhms, nil
}

// MaskReport is the result of checking a profile against a mask.
type MaskReport struct {
	Pass bool
	// WorstFreqHz and WorstRatio locate the tightest point: ratio is
	// |Z|/limit (>1 means violation).
	WorstFreqHz float64
	WorstRatio  float64
}

// Check evaluates the profile against the mask.
func (mask TargetMask) Check(p Profile) (MaskReport, error) {
	if len(p) == 0 {
		return MaskReport{}, fmt.Errorf("ckt: empty profile")
	}
	rep := MaskReport{Pass: true}
	for _, pt := range p {
		limit, err := mask.LimitAt(pt.FreqHz)
		if err != nil {
			return MaskReport{}, err
		}
		if limit <= 0 {
			return MaskReport{}, fmt.Errorf("ckt: non-positive limit at %g Hz", pt.FreqHz)
		}
		ratio := pt.MagOhms() / limit
		if ratio > rep.WorstRatio {
			rep.WorstRatio = ratio
			rep.WorstFreqHz = pt.FreqHz
		}
	}
	rep.Pass = rep.WorstRatio <= 1
	return rep, nil
}
