// Package ckt provides the lumped circuit simulation substrate for the
// paper's voltage-drop and performance analysis (Fig. 12c-d): complex AC
// nodal analysis, trapezoidal transient simulation of R/L/C networks with
// time-varying current loads, a PDN model builder (rail R-L, decoupling
// capacitors with ESR/ESL, load current ramps), and the 32 nm FinFET
// alpha-power delay and dynamic power guidelines of paper reference [35].
package ckt

import "fmt"

// Ground is the reference node id.
const Ground = 0

// elemKind enumerates circuit element types.
type elemKind int

const (
	kindR elemKind = iota
	kindL
	kindC
	kindI
)

// element is one two-terminal circuit element between nodes a and b.
type element struct {
	kind elemKind
	a, b int
	val  float64
	// src is the time-dependent current for kindI (amperes flowing from a
	// to b through the source).
	src func(t float64) float64
}

// Circuit is a lumped linear circuit. Node 0 is ground. The zero value is
// not usable; construct with New.
type Circuit struct {
	names []string
	elems []element
}

// New creates an empty circuit containing only the ground node.
func New() *Circuit {
	return &Circuit{names: []string{"gnd"}}
}

// Node allocates a new circuit node and returns its id.
func (c *Circuit) Node(name string) int {
	c.names = append(c.names, name)
	return len(c.names) - 1
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// NodeName returns the name of a node.
func (c *Circuit) NodeName(id int) string {
	if id < 0 || id >= len(c.names) {
		return fmt.Sprintf("node%d", id)
	}
	return c.names[id]
}

func (c *Circuit) checkNodes(a, b int) error {
	if a < 0 || a >= len(c.names) || b < 0 || b >= len(c.names) {
		return fmt.Errorf("ckt: nodes (%d,%d) out of range [0,%d)", a, b, len(c.names))
	}
	if a == b {
		return fmt.Errorf("ckt: element shorted to itself at node %d", a)
	}
	return nil
}

// AddR inserts a resistor of the given ohms between a and b.
func (c *Circuit) AddR(a, b int, ohms float64) error {
	if err := c.checkNodes(a, b); err != nil {
		return err
	}
	if ohms <= 0 {
		return fmt.Errorf("ckt: resistance must be positive, got %g", ohms)
	}
	c.elems = append(c.elems, element{kindR, a, b, ohms, nil})
	return nil
}

// AddL inserts an inductor of the given henries between a and b.
func (c *Circuit) AddL(a, b int, henries float64) error {
	if err := c.checkNodes(a, b); err != nil {
		return err
	}
	if henries <= 0 {
		return fmt.Errorf("ckt: inductance must be positive, got %g", henries)
	}
	c.elems = append(c.elems, element{kindL, a, b, henries, nil})
	return nil
}

// AddC inserts a capacitor of the given farads between a and b.
func (c *Circuit) AddC(a, b int, farads float64) error {
	if err := c.checkNodes(a, b); err != nil {
		return err
	}
	if farads <= 0 {
		return fmt.Errorf("ckt: capacitance must be positive, got %g", farads)
	}
	c.elems = append(c.elems, element{kindC, a, b, farads, nil})
	return nil
}

// AddI inserts a time-varying current source pushing src(t) amperes from
// node a into node b (conventional current). For AC analysis the source
// magnitude is src(0).
func (c *Circuit) AddI(a, b int, src func(t float64) float64) error {
	if err := c.checkNodes(a, b); err != nil {
		return err
	}
	if src == nil {
		return fmt.Errorf("ckt: nil current source")
	}
	c.elems = append(c.elems, element{kindI, a, b, 0, src})
	return nil
}
