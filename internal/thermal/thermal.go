// Package thermal estimates the steady-state temperature rise of a routed
// power shape under its DC operating point. The paper lists the thermal
// profile among the constraints that distinguish power routing from signal
// routing (§I, Table I: "current density, temperature, metal resources");
// this package closes that loop: Joule heat from the extracted branch
// currents spreads laterally through the copper and sinks vertically into
// the board, giving a per-tile temperature-rise map and the hotspot.
//
// Model: on the extraction tile graph, lateral thermal conductance between
// adjacent tiles is κ_cu·t_cu per square times the contact geometry (the
// same "squares" the electrical graph uses), and every tile leaks to
// ambient through an effective board heat-transfer coefficient times its
// area. The resulting (Laplacian + diagonal) system is SPD and solved with
// the same preconditioned CG as the electrical analysis.
package thermal

import (
	"fmt"

	"sprout/internal/extract"
	"sprout/internal/geom"
	"sprout/internal/sparse"
)

// Options sets the material and boundary parameters.
type Options struct {
	// CopperWPerMK is copper thermal conductivity. Zero selects 400 W/mK.
	CopperWPerMK float64
	// CopperUM is the copper thickness in µm. Zero selects 35.
	CopperUM float64
	// BoardHTC is the effective heat-transfer coefficient from a tile into
	// the board and onward to ambient, in W/m²K. Zero selects 800 (FR4
	// with inner-plane spreading).
	BoardHTC float64
	// UnitMM is the size of one grid unit in millimetres. Zero selects 0.1.
	UnitMM float64
}

func (o Options) withDefaults() Options {
	if o.CopperWPerMK == 0 {
		o.CopperWPerMK = 400
	}
	if o.CopperUM == 0 {
		o.CopperUM = 35
	}
	if o.BoardHTC == 0 {
		o.BoardHTC = 800
	}
	if o.UnitMM == 0 {
		o.UnitMM = 0.1
	}
	return o
}

// Map is the temperature-rise field over the shape's tiles.
type Map struct {
	// Cells locates each node's tile.
	Cells []geom.Region
	// RiseC is the temperature rise above ambient per node, in kelvin.
	RiseC []float64
	// MaxRiseC and Hotspot locate the peak.
	MaxRiseC float64
	Hotspot  geom.Point
	// TotalPowerW echoes the dissipated power driving the map.
	TotalPowerW float64
}

// Simulate solves the steady-state heat balance for an electrical
// operating point. sheetOhms must match the extraction that produced op.
func Simulate(op *extract.OperatingPoint, sheetOhms float64, opt Options) (*Map, error) {
	if op == nil || op.TG == nil {
		return nil, fmt.Errorf("thermal: nil operating point")
	}
	if sheetOhms <= 0 {
		return nil, fmt.Errorf("thermal: sheet resistance %g must be positive", sheetOhms)
	}
	opt = opt.withDefaults()
	tg := op.TG
	n := tg.G.N()
	if n == 0 {
		return nil, fmt.Errorf("thermal: empty graph")
	}

	// Lateral: κ_cu·t_cu (W/K per square) scaled by the electrical edge's
	// squares count (contact/pitch — identical geometry factor).
	kSheet := opt.CopperWPerMK * opt.CopperUM * 1e-6 // W/K per square
	// Vertical: h · area, with area converted from grid units² to m².
	unitM := opt.UnitMM * 1e-3
	areaScale := unitM * unitM

	b := sparse.NewBuilder(n)
	for _, e := range tg.G.Edges() {
		g := kSheet * e.Weight
		if g <= 0 {
			continue
		}
		b.Add(e.U, e.U, g)
		b.Add(e.V, e.V, g)
		b.Add(e.U, e.V, -g)
		b.Add(e.V, e.U, -g)
	}
	for i := 0; i < n; i++ {
		gv := opt.BoardHTC * float64(tg.Area[i]) * areaScale
		if gv <= 0 {
			return nil, fmt.Errorf("thermal: node %d has no sink path", i)
		}
		b.Add(i, i, gv)
	}
	mat := b.Build()

	q := op.NodeJouleHeat(sheetOhms)
	ic, icErr := sparse.NewIC0(mat)
	cgOpt := sparse.CGOptions{Precond: mat.Diag()}
	if icErr == nil {
		cgOpt.Apply = ic.Apply
	}
	temp, _, err := sparse.CG(mat, q, nil, cgOpt)
	if err != nil {
		return nil, fmt.Errorf("thermal: solve: %w", err)
	}

	m := &Map{Cells: tg.Cells, RiseC: temp, TotalPowerW: op.TotalPowerW}
	for i, t := range temp {
		if t > m.MaxRiseC {
			m.MaxRiseC = t
			m.Hotspot = tg.Cells[i].Bounds().Center()
		}
	}
	return m, nil
}
