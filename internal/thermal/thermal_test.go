package thermal

import (
	"math"
	"testing"

	"sprout/internal/extract"
	"sprout/internal/geom"
	"sprout/internal/route"
)

func stripOp(t *testing.T, w, h int64, amps float64) (*extract.OperatingPoint, extract.Options) {
	t.Helper()
	shape := geom.RegionFromRect(geom.R(0, 0, w, h))
	source := route.Terminal{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 0, 5, h)), Current: amps}
	load := route.Terminal{Name: "T", Shape: geom.RegionFromRect(geom.R(w-5, 0, w, h)), Current: amps}
	opt := extract.Options{Pitch: 5, SheetOhms: 0.001, HeightUM: 100}
	op, err := extract.DCOperate(shape, source, []route.Terminal{load}, amps, opt)
	if err != nil {
		t.Fatal(err)
	}
	return op, opt
}

func TestSimulateEnergyBalance(t *testing.T) {
	// Total heat in equals total heat out: Σ h·A_i·T_i == Σ q_i.
	op, exOpt := stripOp(t, 100, 10, 2)
	opt := Options{BoardHTC: 800, UnitMM: 0.1, CopperUM: 35}
	m, err := Simulate(op, exOpt.SheetOhms, opt)
	if err != nil {
		t.Fatal(err)
	}
	unitM := 0.1e-3
	var out float64
	for i, rise := range m.RiseC {
		out += 800 * float64(op.TG.Area[i]) * unitM * unitM * rise
	}
	if math.Abs(out-m.TotalPowerW)/m.TotalPowerW > 1e-6 {
		t.Fatalf("heat out %g != heat in %g", out, m.TotalPowerW)
	}
}

func TestSimulateNoLateralMatchesLocalBalance(t *testing.T) {
	// With (effectively) zero lateral conduction every node balances
	// locally: T_i = q_i / (h·A_i).
	op, exOpt := stripOp(t, 100, 10, 1)
	opt := Options{CopperWPerMK: 1e-12, BoardHTC: 500, UnitMM: 0.1, CopperUM: 35}
	m, err := Simulate(op, exOpt.SheetOhms, opt)
	if err != nil {
		t.Fatal(err)
	}
	q := op.NodeJouleHeat(exOpt.SheetOhms)
	unitM := 0.1e-3
	for i := range m.RiseC {
		want := q[i] / (500 * float64(op.TG.Area[i]) * unitM * unitM)
		if math.Abs(m.RiseC[i]-want) > 1e-9+1e-6*want {
			t.Fatalf("node %d rise %g, want %g", i, m.RiseC[i], want)
		}
	}
}

func TestSimulateLateralSpreadingFlattens(t *testing.T) {
	// Strong lateral conduction must reduce the hotspot versus weak
	// lateral conduction (same heat, same sink).
	op, exOpt := stripOp(t, 100, 10, 2)
	weak, err := Simulate(op, exOpt.SheetOhms, Options{CopperWPerMK: 1})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Simulate(op, exOpt.SheetOhms, Options{CopperWPerMK: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if strong.MaxRiseC >= weak.MaxRiseC {
		t.Fatalf("spreading must flatten the hotspot: %g vs %g", strong.MaxRiseC, weak.MaxRiseC)
	}
}

func TestSimulateHotspotAtConstriction(t *testing.T) {
	// A dumbbell: two plates joined by a narrow neck. The neck carries the
	// full current at high density — the hotspot must sit in or near it.
	shape := geom.RegionFromRects([]geom.Rect{
		{X0: 0, Y0: 0, X1: 40, Y1: 40},
		{X0: 40, Y0: 17, X1: 80, Y1: 23}, // 6-wide neck
		{X0: 80, Y0: 0, X1: 120, Y1: 40},
	})
	source := route.Terminal{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 15, 5, 25)), Current: 3}
	load := route.Terminal{Name: "T", Shape: geom.RegionFromRect(geom.R(115, 15, 120, 25)), Current: 3}
	exOpt := extract.Options{Pitch: 5, SheetOhms: 0.001, HeightUM: 100}
	op, err := extract.DCOperate(shape, source, []route.Terminal{load}, 3, exOpt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Simulate(op, exOpt.SheetOhms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Hotspot.X < 35 || m.Hotspot.X > 85 {
		t.Fatalf("hotspot at %v, want inside the neck (x in [40,80])", m.Hotspot)
	}
	if m.MaxRiseC <= 0 {
		t.Fatalf("max rise = %g", m.MaxRiseC)
	}
}

func TestSimulateMoreCurrentQuadraticallyHotter(t *testing.T) {
	op1, exOpt := stripOp(t, 100, 10, 1)
	op2, _ := stripOp(t, 100, 10, 2)
	m1, err := Simulate(op1, exOpt.SheetOhms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Simulate(op2, exOpt.SheetOhms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := m2.MaxRiseC / m1.MaxRiseC
	if math.Abs(ratio-4) > 0.2 {
		t.Fatalf("doubling current must ~quadruple the rise, got x%g", ratio)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, 0.001, Options{}); err == nil {
		t.Fatal("nil op must error")
	}
	op, _ := stripOp(t, 50, 10, 1)
	if _, err := Simulate(op, 0, Options{}); err == nil {
		t.Fatal("zero sheet resistance must error")
	}
}
