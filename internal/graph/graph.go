// Package graph provides the weighted undirected graph substrate used by
// SPROUT's routing stages: adjacency storage, Dijkstra and Bellman-Ford
// shortest paths (paper §II-C cites both), breadth-first search, connected
// components, induced subgraphs, and subgraph boundary sets (the set C of
// paper §II-D).
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected weighted edge between node indices U and V.
// Weight is interpreted as a cost for shortest paths; SPROUT uses the
// reciprocal of the inter-tile conductance so that low-resistance corridors
// are preferred.
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is a weighted undirected graph over nodes 0..N-1 with adjacency
// lists. The zero value is unusable; construct with New.
type Graph struct {
	n   int
	adj [][]halfEdge
	m   int
}

// halfEdge is the adjacency-list entry: the far endpoint and the weight.
type halfEdge struct {
	to int
	w  float64
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]halfEdge, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// M returns the undirected edge count.
func (g *Graph) M() int { return g.m }

// AddEdge inserts an undirected edge. Multi-edges are allowed (they act as
// parallel conductances for electrical use and as alternatives for paths).
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if w < 0 {
		return fmt.Errorf("graph: negative weight %g on (%d,%d)", w, u, v)
	}
	g.adj[u] = append(g.adj[u], halfEdge{v, w})
	g.adj[v] = append(g.adj[v], halfEdge{u, w})
	g.m++
	return nil
}

// Degree returns the number of incident edges at u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors calls fn for every incident edge of u with the far endpoint and
// the edge weight. Iteration order is insertion order (deterministic).
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	for _, he := range g.adj[u] {
		fn(he.to, he.w)
	}
}

// Edges returns all undirected edges with U < V, sorted, for deterministic
// downstream assembly.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, he := range g.adj[u] {
			if u < he.to {
				out = append(out, Edge{u, he.to, he.w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		if out[i].V != out[j].V {
			return out[i].V < out[j].V
		}
		return out[i].Weight < out[j].Weight
	})
	return out
}

// InducedSubgraph returns the subgraph on the given node set together with
// the mapping from new node index to original node index. Nodes absent
// from the set are dropped along with their edges (paper Alg. 4 line 13,
// Γ_n[V_n^s]).
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	keep := make([]int, g.n)
	for i := range keep {
		keep[i] = -1
	}
	orig := make([]int, 0, len(nodes))
	for _, u := range nodes {
		if u >= 0 && u < g.n && keep[u] == -1 {
			keep[u] = len(orig)
			orig = append(orig, u)
		}
	}
	sub := New(len(orig))
	for newU, u := range orig {
		for _, he := range g.adj[u] {
			if he.to > u { // each undirected edge once
				if newV := keep[he.to]; newV != -1 {
					_ = sub.AddEdge(newU, newV, he.w)
				}
			}
		}
	}
	return sub, orig
}

// Boundary returns the nodes of g adjacent to, but not members of, the set
// `inside` — the boundary set C of paper §II-D. Result is sorted.
func (g *Graph) Boundary(inside []bool) []int {
	if len(inside) != g.n {
		panic(fmt.Sprintf("graph: Boundary mask len %d, want %d", len(inside), g.n))
	}
	seen := make([]bool, g.n)
	var out []int
	for u := 0; u < g.n; u++ {
		if !inside[u] {
			continue
		}
		for _, he := range g.adj[u] {
			if !inside[he.to] && !seen[he.to] {
				seen[he.to] = true
				out = append(out, he.to)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Components labels each node with a component id (0-based, in order of
// first occurrence) and returns the labels plus the component count.
func (g *Graph) Components() ([]int, int) {
	label := make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	next := 0
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if label[s] != -1 {
			continue
		}
		label[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, he := range g.adj[u] {
				if label[he.to] == -1 {
					label[he.to] = next
					queue = append(queue, he.to)
				}
			}
		}
		next++
	}
	return label, next
}

// Connected reports whether all of the listed nodes lie in one component.
func (g *Graph) Connected(nodes ...int) bool {
	if len(nodes) <= 1 {
		return true
	}
	label, _ := g.Components()
	first := label[nodes[0]]
	for _, u := range nodes[1:] {
		if label[u] != first {
			return false
		}
	}
	return true
}

// BFSDist returns hop distances from src (-1 for unreachable).
func (g *Graph) BFSDist(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, he := range g.adj[u] {
			if dist[he.to] == -1 {
				dist[he.to] = dist[u] + 1
				queue = append(queue, he.to)
			}
		}
	}
	return dist
}
