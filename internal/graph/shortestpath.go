package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Dijkstra computes single-source shortest path distances and predecessor
// links from src. Unreachable nodes have distance +Inf and predecessor -1.
// Complexity O((V+E) log V) as analyzed in paper Eq. 6.
func (g *Graph) Dijkstra(src int) (dist []float64, prev []int, err error) {
	if src < 0 || src >= g.n {
		return nil, nil, fmt.Errorf("graph: dijkstra source %d out of range", src)
	}
	dist = make([]float64, g.n)
	prev = make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &distHeap{}
	heap.Push(pq, distItem{src, 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue // stale entry
		}
		for _, he := range g.adj[it.node] {
			nd := it.d + he.w
			if nd < dist[he.to] {
				dist[he.to] = nd
				prev[he.to] = it.node
				heap.Push(pq, distItem{he.to, nd})
			}
		}
	}
	return dist, prev, nil
}

// ShortestPath returns the node sequence of a minimum-cost path from src to
// dst (inclusive) and its total cost. It returns an error when dst is
// unreachable.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64, error) {
	dist, prev, err := g.Dijkstra(src)
	if err != nil {
		return nil, 0, err
	}
	return extractPath(dist, prev, src, dst)
}

// ShortestPaths returns minimum-cost paths from src to each dst, sharing a
// single Dijkstra pass (paper Alg. 2 line 4 computes one-to-many paths).
func (g *Graph) ShortestPaths(src int, dsts []int) ([][]int, error) {
	dist, prev, err := g.Dijkstra(src)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(dsts))
	for i, dst := range dsts {
		path, _, err := extractPath(dist, prev, src, dst)
		if err != nil {
			return nil, err
		}
		out[i] = path
	}
	return out, nil
}

func extractPath(dist []float64, prev []int, src, dst int) ([]int, float64, error) {
	if dst < 0 || dst >= len(dist) {
		return nil, 0, fmt.Errorf("graph: path target %d out of range", dst)
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0, fmt.Errorf("graph: no path from %d to %d", src, dst)
	}
	var rev []int
	for u := dst; u != -1; u = prev[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[dst], nil
}

// BellmanFord computes single-source shortest path distances; it is the
// slower oracle used to cross-validate Dijkstra in tests (both are cited in
// paper §II-C). Negative edges are rejected at AddEdge, so no negative
// cycles can exist.
func (g *Graph) BellmanFord(src int) ([]float64, error) {
	if src < 0 || src >= g.n {
		return nil, fmt.Errorf("graph: bellman-ford source %d out of range", src)
	}
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	edges := g.Edges()
	for i := 0; i < g.n; i++ {
		changed := false
		for _, e := range edges {
			if dist[e.U]+e.Weight < dist[e.V] {
				dist[e.V] = dist[e.U] + e.Weight
				changed = true
			}
			if dist[e.V]+e.Weight < dist[e.U] {
				dist[e.U] = dist[e.V] + e.Weight
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist, nil
}

// distItem is a priority-queue element.
type distItem struct {
	node int
	d    float64
}

// distHeap is a binary min-heap of distItems.
type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
