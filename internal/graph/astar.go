package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// AStarPath finds a minimum-cost path from src to dst guided by an
// admissible heuristic h(u) — a lower bound on the remaining cost from u
// to dst. With h ≡ 0 it degenerates to Dijkstra; with a consistent
// heuristic it returns the same cost while expanding fewer nodes, the
// acceleration paper §II-H attributes to A* [30]. The returned expanded
// count is the number of settled nodes (for the complexity study).
func (g *Graph) AStarPath(src, dst int, h func(int) float64) (path []int, cost float64, expanded int, err error) {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		return nil, 0, 0, fmt.Errorf("graph: astar endpoints (%d,%d) out of range", src, dst)
	}
	if h == nil {
		h = func(int) float64 { return 0 }
	}
	dist := make([]float64, g.n)
	prev := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &distHeap{}
	heap.Push(pq, distItem{src, h(src)})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		expanded++
		if u == dst {
			break
		}
		for _, he := range g.adj[u] {
			nd := dist[u] + he.w
			if nd < dist[he.to] {
				dist[he.to] = nd
				prev[he.to] = u
				heap.Push(pq, distItem{he.to, nd + h(he.to)})
			}
		}
	}
	p, c, err := extractPath(dist, prev, src, dst)
	if err != nil {
		return nil, 0, expanded, err
	}
	return p, c, expanded, nil
}
