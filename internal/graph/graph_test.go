package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, g *Graph, u, v int, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Fatal("out-of-range edge must error")
	}
	if err := g.AddEdge(1, 1, 1); err == nil {
		t.Fatal("self loop must error")
	}
	if err := g.AddEdge(0, 1, -1); err == nil {
		t.Fatal("negative weight must error")
	}
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("M=%d deg0=%d deg1=%d", g.M(), g.Degree(0), g.Degree(1))
	}
}

func TestNeighborsAndEdges(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 0, 2, 2)
	mustAdd(t, g, 2, 3, 3)
	var got []int
	g.Neighbors(0, func(v int, w float64) { got = append(got, v) })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("neighbors of 0 = %v", got)
	}
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	want := []Edge{{0, 1, 1}, {0, 2, 2}, {2, 3, 3}}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestDijkstraSimple(t *testing.T) {
	//  0 --1-- 1 --1-- 2
	//   \------5------/
	g := New(3)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 0, 2, 5)
	path, cost, err := g.ShortestPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Fatalf("cost = %g, want 2", cost)
	}
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Fatalf("path = %v, want [0 1 2]", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, 1)
	if _, _, err := g.ShortestPath(0, 3); err == nil {
		t.Fatal("unreachable node must error")
	}
	dist, _, err := g.Dijkstra(0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[3], 1) {
		t.Fatalf("unreachable dist = %g, want +Inf", dist[3])
	}
}

func TestShortestPathsOneToMany(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		mustAdd(t, g, i, i+1, float64(i+1))
	}
	paths, err := g.ShortestPaths(0, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || len(paths[0]) != 3 || len(paths[1]) != 5 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestQuickDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		n := 2 + rng.Intn(20)
		g := New(n)
		mEdges := n + rng.Intn(3*n)
		for k := 0; k < mEdges; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddEdge(u, v, rng.Float64()*10)
			}
		}
		src := rng.Intn(n)
		d1, _, err := g.Dijkstra(src)
		if err != nil {
			return false
		}
		d2, err := g.BellmanFord(src)
		if err != nil {
			return false
		}
		for i := range d1 {
			if math.IsInf(d1[i], 1) != math.IsInf(d2[i], 1) {
				return false
			}
			if !math.IsInf(d1[i], 1) && math.Abs(d1[i]-d2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 3, 4, 1)
	label, n := g.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if label[0] != label[2] || label[3] != label[4] || label[0] == label[3] || label[5] == label[0] {
		t.Fatalf("labels = %v", label)
	}
	if !g.Connected(0, 1, 2) {
		t.Fatal("0,1,2 connected")
	}
	if g.Connected(0, 5) {
		t.Fatal("0,5 not connected")
	}
	if !g.Connected(3) || !g.Connected() {
		t.Fatal("trivial cases are connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 2)
	mustAdd(t, g, 2, 3, 3)
	mustAdd(t, g, 3, 4, 4)
	sub, orig := g.InducedSubgraph([]int{1, 2, 4, 2}) // duplicate ignored
	if sub.N() != 3 {
		t.Fatalf("sub nodes = %d, want 3", sub.N())
	}
	if sub.M() != 1 {
		t.Fatalf("sub edges = %d, want 1 (only 1-2 survives)", sub.M())
	}
	if len(orig) != 3 || orig[0] != 1 || orig[1] != 2 || orig[2] != 4 {
		t.Fatalf("orig mapping = %v", orig)
	}
}

func TestBoundary(t *testing.T) {
	// Path 0-1-2-3-4, inside = {1,2}: boundary = {0,3}.
	g := New(5)
	for i := 0; i < 4; i++ {
		mustAdd(t, g, i, i+1, 1)
	}
	inside := []bool{false, true, true, false, false}
	b := g.Boundary(inside)
	if len(b) != 2 || b[0] != 0 || b[1] != 3 {
		t.Fatalf("boundary = %v, want [0 3]", b)
	}
}

func TestBFSDist(t *testing.T) {
	g := New(5)
	mustAdd(t, g, 0, 1, 9)
	mustAdd(t, g, 1, 2, 9)
	mustAdd(t, g, 0, 3, 9)
	d := g.BFSDist(0)
	want := []int{0, 1, 2, 1, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("bfs dist = %v, want %v", d, want)
		}
	}
}

func TestMultiEdgePathUsesCheapest(t *testing.T) {
	g := New(2)
	mustAdd(t, g, 0, 1, 5)
	mustAdd(t, g, 0, 1, 2)
	_, cost, err := g.ShortestPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Fatalf("multi-edge cost = %g, want 2", cost)
	}
}
