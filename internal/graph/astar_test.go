package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gridGraph builds a w x h unit-cost grid and returns it with a Manhattan
// heuristic toward the given target.
func gridGraph(w, h int) (*Graph, func(dst int) func(int) float64) {
	g := New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				_ = g.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				_ = g.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	heur := func(dst int) func(int) float64 {
		dx, dy := dst%w, dst/w
		return func(u int) float64 {
			ux, uy := u%w, u/w
			return math.Abs(float64(ux-dx)) + math.Abs(float64(uy-dy))
		}
	}
	return g, heur
}

func TestAStarMatchesDijkstraOnGrid(t *testing.T) {
	g, heur := gridGraph(20, 15)
	src, dst := 0, 20*15-1
	_, want, err := g.ShortestPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	path, got, _, err := g.AStarPath(src, dst, heur(dst))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("A* cost %g != Dijkstra %g", got, want)
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("path endpoints wrong: %v", path)
	}
}

func TestAStarExpandsFewerNodes(t *testing.T) {
	g, heur := gridGraph(40, 40)
	src, dst := 0, 40*40-1
	_, _, expandedZero, err := g.AStarPath(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, expandedHeur, err := g.AStarPath(src, dst, heur(dst))
	if err != nil {
		t.Fatal(err)
	}
	if expandedHeur >= expandedZero {
		t.Fatalf("heuristic must reduce expansions: %d vs %d", expandedHeur, expandedZero)
	}
}

func TestAStarUnreachableAndValidation(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1, 1)
	if _, _, _, err := g.AStarPath(0, 3, nil); err == nil {
		t.Fatal("unreachable must error")
	}
	if _, _, _, err := g.AStarPath(-1, 3, nil); err == nil {
		t.Fatal("bad src must error")
	}
	if _, _, _, err := g.AStarPath(0, 9, nil); err == nil {
		t.Fatal("bad dst must error")
	}
	// src == dst is a zero-cost single-node path.
	p, c, _, err := g.AStarPath(1, 1, nil)
	if err != nil || c != 0 || len(p) != 1 {
		t.Fatalf("self path = %v cost %g err %v", p, c, err)
	}
}

func TestQuickAStarOptimalOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func() bool {
		n := 3 + rng.Intn(25)
		g := New(n)
		for k := 0; k < 3*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddEdge(u, v, 0.1+rng.Float64()*5)
			}
		}
		src, dst := rng.Intn(n), rng.Intn(n)
		dWant, _, err := g.Dijkstra(src)
		if err != nil {
			return false
		}
		_, got, _, err := g.AStarPath(src, dst, nil)
		if math.IsInf(dWant[dst], 1) {
			return err != nil
		}
		if err != nil {
			return false
		}
		return math.Abs(got-dWant[dst]) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(78))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
