package sparse

import "math"

// SolveStats aggregates solver-fallback-ladder telemetry across many
// solves — the per-rung RungAttempt records that used to be visible only
// inside a SolveError are summarized here for successful solves too, so
// a degraded-but-recovered solve (e.g. one that escalated to the relaxed
// rung) is observable without a failure.
type SolveStats struct {
	// Solves counts ladder invocations.
	Solves int
	// Iterations is the total CG iteration count across every rung of
	// every solve.
	Iterations int
	// Escalations counts rejected rungs: each rung that failed before a
	// later rung (or nothing) delivered.
	Escalations int
	// Failures counts solves where every rung failed.
	Failures int
	// WorstResidual is the largest relative residual an accepted solve
	// finished with (0 until a solve records one).
	WorstResidual float64
	// Rungs counts accepted solves per winning rung name (RungCG,
	// RungCGRelaxed, RungDense).
	Rungs map[string]int
}

// Record folds one ladder trace (the attempts of a single solve, in
// escalation order, the last one being the accepted rung when its Err is
// nil) into the stats.
func (s *SolveStats) Record(attempts []RungAttempt) {
	if len(attempts) == 0 {
		return
	}
	s.Solves++
	for _, a := range attempts {
		s.Iterations += a.Iterations
		if a.Err != nil {
			s.Escalations++
		}
	}
	last := attempts[len(attempts)-1]
	if last.Err != nil {
		s.Failures++
		return
	}
	if s.Rungs == nil {
		s.Rungs = map[string]int{}
	}
	s.Rungs[last.Rung]++
	if !math.IsNaN(last.Residual) && last.Residual > s.WorstResidual {
		s.WorstResidual = last.Residual
	}
}

// Merge folds another stats block into s.
func (s *SolveStats) Merge(o SolveStats) {
	s.Solves += o.Solves
	s.Iterations += o.Iterations
	s.Escalations += o.Escalations
	s.Failures += o.Failures
	if o.WorstResidual > s.WorstResidual {
		s.WorstResidual = o.WorstResidual
	}
	if len(o.Rungs) > 0 && s.Rungs == nil {
		s.Rungs = make(map[string]int, len(o.Rungs))
	}
	for rung, n := range o.Rungs {
		s.Rungs[rung] += n
	}
}

// Escalated reports whether any solve needed more than its first rung.
func (s SolveStats) Escalated() bool { return s.Escalations > 0 }
