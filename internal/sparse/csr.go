// Package sparse provides the linear-algebra substrate for SPROUT's nodal
// analysis (paper Algorithm 3, Eqs. 3-4): symmetric sparse matrices in CSR
// form, graph Laplacians with a grounded reference node, a preconditioned
// conjugate-gradient solver for the (symmetric positive definite) grounded
// Laplacian systems, and a dense Cholesky factorization used for small
// systems and as a cross-validation oracle in tests.
//
// The paper notes (§II-H) that solving the Laplacian systems consumes up to
// 90% of SPROUT's runtime, with sparse-solver complexity O(|V|^q),
// q ∈ [1.5, 3]. CG with a Jacobi preconditioner on 2-D grid Laplacians sits
// near the bottom of that range, matching the paper's best case.
package sparse

import (
	"fmt"
	"sort"
)

// Matrix is a square operator that can multiply a vector.
type Matrix interface {
	// Dim returns the matrix dimension n (the matrix is n x n).
	Dim() int
	// MulVec computes dst = A*x. dst and x must have length Dim and must
	// not alias.
	MulVec(dst, x []float64)
}

// entry is a coordinate-format matrix element used during assembly.
type entry struct {
	row, col int
	val      float64
}

// Builder accumulates coordinate-format entries; duplicate (row, col)
// entries are summed, which makes stamping conductances idiomatic.
type Builder struct {
	n       int
	entries []entry
}

// NewBuilder returns a Builder for an n x n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Reset reuses the builder's entry storage for a fresh n x n assembly.
// Repeated assemblies through a reset builder are allocation-free once the
// entry buffer has grown to the working-set size.
func (b *Builder) Reset(n int) {
	b.n = n
	b.entries = b.entries[:0]
}

// Add accumulates v at (row, col). Out-of-range indices panic: assembly
// indices are program logic, not data.
func (b *Builder) Add(row, col int, v float64) {
	if row < 0 || row >= b.n || col < 0 || col >= b.n {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range for n=%d", row, col, b.n))
	}
	b.entries = append(b.entries, entry{row, col, v})
}

// AddSym accumulates v at (row, col) and (col, row).
func (b *Builder) AddSym(row, col int, v float64) {
	b.Add(row, col, v)
	if row != col {
		b.Add(col, row, v)
	}
}

// Build assembles the CSR matrix, summing duplicates and dropping explicit
// zeros that cancelled out.
func (b *Builder) Build() *CSR {
	return b.BuildInto(nil)
}

// BuildInto assembles into m, reusing its backing slices when they are
// large enough (nil m allocates a fresh matrix). The resulting matrix is
// element-for-element identical to Build on the same entry sequence: the
// sort and duplicate summation run over the same values in the same order,
// only the destination storage differs.
func (b *Builder) BuildInto(m *CSR) *CSR {
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].row != b.entries[j].row {
			return b.entries[i].row < b.entries[j].row
		}
		return b.entries[i].col < b.entries[j].col
	})
	if m == nil {
		m = &CSR{}
	}
	m.N = b.n
	m.RowPtr = growInts(m.RowPtr, b.n+1)
	for i := range m.RowPtr {
		m.RowPtr[i] = 0
	}
	m.Col = m.Col[:0]
	m.Val = m.Val[:0]
	for i := 0; i < len(b.entries); {
		j := i
		v := 0.0
		for j < len(b.entries) && b.entries[j].row == b.entries[i].row && b.entries[j].col == b.entries[i].col {
			v += b.entries[j].val
			j++
		}
		if v != 0 {
			m.Col = append(m.Col, b.entries[i].col)
			m.Val = append(m.Val, v)
			m.RowPtr[b.entries[i].row+1]++
		}
		i = j
	}
	for r := 0; r < b.n; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// growInts returns s resized to length n, reusing its backing array when
// the capacity suffices. Contents are unspecified.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growFloats returns s resized to length n, reusing its backing array when
// the capacity suffices. Contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int
	Col    []int
	Val    []float64
}

// Dim implements Matrix.
func (m *CSR) Dim() int { return m.N }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec implements Matrix: dst = A*x.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic(fmt.Sprintf("sparse: MulVec dims dst=%d x=%d n=%d", len(dst), len(x), m.N))
	}
	for r := 0; r < m.N; r++ {
		sum := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			sum += m.Val[k] * x[m.Col[k]]
		}
		dst[r] = sum
	}
}

// At returns the element at (row, col); zero if not stored.
func (m *CSR) At(row, col int) float64 {
	for k := m.RowPtr[row]; k < m.RowPtr[row+1]; k++ {
		if m.Col[k] == col {
			return m.Val[k]
		}
	}
	return 0
}

// Diag extracts the diagonal into a new slice.
func (m *CSR) Diag() []float64 {
	return m.DiagInto(nil)
}

// DiagInto extracts the diagonal into dst, reusing its backing array when
// large enough (nil dst allocates).
func (m *CSR) DiagInto(dst []float64) []float64 {
	dst = growFloats(dst, m.N)
	for r := 0; r < m.N; r++ {
		dst[r] = m.At(r, r)
	}
	return dst
}

// Dense converts the matrix to dense form (for tests and small systems).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.N)
	for r := 0; r < m.N; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			d.Set(r, m.Col[k], m.Val[k])
		}
	}
	return d
}
