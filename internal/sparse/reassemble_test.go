package sparse

import (
	"context"
	"math/rand"
	"testing"
)

// randomConnectedEdges builds a connected weighted graph on n nodes: a
// random spanning chain plus extra chords. Deterministic per seed.
func randomConnectedEdges(n int, extra int, seed int64) []WeightedEdge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]WeightedEdge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, WeightedEdge{U: u, V: v, W: 0.5 + rng.Float64()})
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, WeightedEdge{U: u, V: v, W: 0.5 + rng.Float64()})
	}
	return edges
}

func bitEqualFloats(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %x vs %x (bit mismatch)", what, i, got[i], want[i])
		}
	}
}

func bitEqualInts(t *testing.T, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %d vs %d", what, i, got[i], want[i])
		}
	}
}

// TestReassembleLaplacianBitIdentical is the contract the route solver
// session rests on: reassembling into a reused Laplacian — across edge
// sets of different sizes, in any order — produces exactly the matrix,
// preconditioner, and solve results a fresh NewLaplacian would.
func TestReassembleLaplacianBitIdentical(t *testing.T) {
	const n = 60
	setA := randomConnectedEdges(n, 40, 1)
	setB := randomConnectedEdges(n, 90, 2)
	setC := randomConnectedEdges(n, 5, 3)

	var reused *Laplacian
	for round, edges := range [][]WeightedEdge{setA, setB, setC, setA, setC, setB} {
		fresh, err := NewLaplacian(n, edges, 0)
		if err != nil {
			t.Fatalf("round %d: NewLaplacian: %v", round, err)
		}
		reused, err = ReassembleLaplacian(reused, n, edges, 0)
		if err != nil {
			t.Fatalf("round %d: ReassembleLaplacian: %v", round, err)
		}
		bitEqualInts(t, "RowPtr", reused.Matrix().RowPtr, fresh.Matrix().RowPtr)
		bitEqualInts(t, "Col", reused.Matrix().Col, fresh.Matrix().Col)
		bitEqualFloats(t, "Val", reused.Matrix().Val, fresh.Matrix().Val)
		if reused.Preconditioner() != fresh.Preconditioner() {
			t.Fatalf("round %d: preconditioner %q vs %q", round, reused.Preconditioner(), fresh.Preconditioner())
		}

		b := make([]float64, n)
		b[n-1] = 1
		b[0] = -1
		xr, ar, err := reused.SolveAttemptsCtx(context.Background(), b, nil)
		if err != nil {
			t.Fatalf("round %d: reused solve: %v", round, err)
		}
		xf, af, err := fresh.SolveAttemptsCtx(context.Background(), b, nil)
		if err != nil {
			t.Fatalf("round %d: fresh solve: %v", round, err)
		}
		bitEqualFloats(t, "solution", xr, xf)
		if len(ar) != len(af) || ar[0].Iterations != af[0].Iterations || ar[0].Residual != af[0].Residual {
			t.Fatalf("round %d: attempt traces diverge: %+v vs %+v", round, ar, af)
		}
	}
}

// TestReassembleLaplacianRejectsBadInput pins the validation errors on the
// reuse path and that a reused Laplacian survives a failed reassembly once
// a later one succeeds.
func TestReassembleLaplacianRejectsBadInput(t *testing.T) {
	edges := []WeightedEdge{{0, 1, 1}, {1, 2, 1}}
	l, err := NewLaplacian(3, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReassembleLaplacian(l, 1, nil, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := ReassembleLaplacian(l, 3, edges, 5); err == nil {
		t.Fatal("ground out of range accepted")
	}
	if _, err := ReassembleLaplacian(l, 3, []WeightedEdge{{0, 0, 1}}, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := ReassembleLaplacian(l, 3, []WeightedEdge{{0, 1, -2}}, 0); err == nil {
		t.Fatal("negative weight accepted")
	}
	// Recovery: a successful reassembly after failures works normally.
	l, err = ReassembleLaplacian(l, 3, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := l.EffectiveResistance(0, 2); err != nil || !almostEq(r, 2, 1e-9) {
		t.Fatalf("resistance after recovery = %g, %v; want 2", r, err)
	}
}

// TestSolveWorkspaceBitIdentical checks the workspace-backed solve path
// performs identical arithmetic: same solution bits, same ladder trace,
// across repeated solves reusing one Workspace.
func TestSolveWorkspaceBitIdentical(t *testing.T) {
	lap, b := gridLaplacian(t, 12, 12)
	var ws Workspace
	var prev []float64
	for round := 0; round < 3; round++ {
		// Vary the injection a little each round so the workspace sees
		// different values; warm-start from the previous full solution.
		rhs := make([]float64, len(b))
		copy(rhs, b)
		rhs[1+round] += 0.25
		want, wa, err := lap.SolveAttemptsCtx(context.Background(), rhs, prev)
		if err != nil {
			t.Fatal(err)
		}
		got, ga, err := lap.SolveAttemptsCtxWork(context.Background(), rhs, prev, &ws)
		if err != nil {
			t.Fatal(err)
		}
		bitEqualFloats(t, "solution", got, want)
		if len(ga) != len(wa) || ga[0].Iterations != wa[0].Iterations || ga[0].Residual != wa[0].Residual {
			t.Fatalf("round %d: traces diverge: %+v vs %+v", round, ga, wa)
		}
		// The workspace-backed solution aliases ws.out — copy to keep.
		prev = append([]float64(nil), want...)
	}
}

// TestSolveWorkspaceSteadyStateAllocs pins the point of the workspace: a
// warmed-up repeated solve allocates only the attempts trace, not vectors.
func TestSolveWorkspaceSteadyStateAllocs(t *testing.T) {
	lap, b := gridLaplacian(t, 12, 12)
	var ws Workspace
	warm, _, err := lap.SolveAttemptsCtx(context.Background(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := lap.SolveAttemptsCtxWork(ctx, b, warm, &ws); err != nil {
			t.Fatal(err)
		}
	})
	// One slice header for the attempts append is expected; vector
	// allocations would push this into the dozens.
	if allocs > 4 {
		t.Fatalf("steady-state solve allocates %.0f objects/op, want <= 4", allocs)
	}
}

func TestBuilderResetAndBuildInto(t *testing.T) {
	bld := NewBuilder(3)
	bld.Add(0, 0, 2)
	bld.Add(1, 1, 2)
	bld.Add(2, 2, 2)
	bld.Add(0, 1, -1)
	bld.Add(1, 0, -1)
	first := bld.Build()

	bld.Reset(3)
	bld.Add(0, 0, 2)
	bld.Add(1, 1, 2)
	bld.Add(2, 2, 2)
	bld.Add(0, 1, -1)
	bld.Add(1, 0, -1)
	second := bld.BuildInto(first) // reuse first's arrays in place
	if second != first {
		t.Fatal("BuildInto did not return its destination")
	}
	bitEqualInts(t, "RowPtr", second.RowPtr, []int{0, 2, 4, 5})
	bitEqualInts(t, "Col", second.Col, []int{0, 1, 0, 1, 2})
	bitEqualFloats(t, "Val", second.Val, []float64{2, -1, -1, 2, 2})
	d := second.DiagInto(nil)
	bitEqualFloats(t, "Diag", d, []float64{2, 2, 2})
	bitEqualFloats(t, "DiagInto reuse", second.DiagInto(d), []float64{2, 2, 2})
}
