package sparse

import (
	"fmt"
	"math"
)

// IC0 is a zero-fill incomplete Cholesky factorization A ≈ L·Lᵀ used as a
// CG preconditioner. Grounded graph Laplacians are symmetric M-matrices,
// for which IC(0) exists and is stable; it typically halves the CG
// iteration count versus Jacobi on 2-D grid problems, tightening SPROUT's
// position at the q ≈ 1.5 end of the paper's solver-cost band (Eq. 7).
type IC0 struct {
	n      int
	rowPtr []int
	col    []int // lower-triangle column indices per row (ascending), diag last
	val    []float64
	diag   []int // index of the diagonal entry within each row
}

// NewIC0 computes the incomplete factor of a symmetric positive definite
// CSR matrix, keeping only the sparsity of the lower triangle of A.
func NewIC0(a *CSR) (*IC0, error) {
	return NewIC0Into(nil, a)
}

// NewIC0Into computes the factor into dst, reusing its storage when large
// enough (nil dst allocates). The factorization is numerically identical
// to NewIC0 — every buffer is fully rewritten before use. On error dst's
// contents are unspecified; callers must not use a factor whose
// construction failed.
func NewIC0Into(dst *IC0, a *CSR) (*IC0, error) {
	n := a.N
	ic := dst
	if ic == nil {
		ic = &IC0{}
	}
	ic.n = n
	ic.rowPtr = growInts(ic.rowPtr, n+1)
	ic.rowPtr[0] = 0
	ic.diag = growInts(ic.diag, n)
	ic.col = ic.col[:0]
	ic.val = ic.val[:0]
	// Collect the lower triangle (including diagonal) row by row.
	for r := 0; r < n; r++ {
		hasDiag := false
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			c := a.Col[k]
			if c > r {
				continue
			}
			if c == r {
				hasDiag = true
			}
			ic.col = append(ic.col, c)
			ic.val = append(ic.val, a.Val[k])
		}
		if !hasDiag {
			return nil, fmt.Errorf("sparse: IC0 row %d has no diagonal", r)
		}
		ic.rowPtr[r+1] = len(ic.col)
	}
	// In-place IKJ factorization over the fixed pattern.
	// For each row r: for each stored (r, c) with c < r:
	//   L[r][c] = (A[r][c] - Σ_k L[r][k]·L[c][k]) / L[c][c]
	// and the diagonal: L[r][r] = sqrt(A[r][r] - Σ L[r][k]²).
	for r := 0; r < n; r++ {
		rowStart, rowEnd := ic.rowPtr[r], ic.rowPtr[r+1]
		for k := rowStart; k < rowEnd; k++ {
			c := ic.col[k]
			if c == r {
				// Diagonal entry.
				sum := ic.val[k]
				for kk := rowStart; kk < k; kk++ {
					sum -= ic.val[kk] * ic.val[kk]
				}
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("sparse: IC0 breakdown at row %d (pivot %g)", r, sum)
				}
				ic.val[k] = math.Sqrt(sum)
				ic.diag[r] = k
				continue
			}
			// Off-diagonal: dot the overlapping patterns of rows r and c.
			sum := ic.val[k]
			cStart, cEnd := ic.rowPtr[c], ic.rowPtr[c+1]
			i, j := rowStart, cStart
			//lint:ignore ctxdelegate two-pointer merge over two finite CSR rows: each step advances i or j, so the loop is bounded by the row lengths
			for i < k && j < cEnd-1 { // exclude c's diagonal (last entry)
				ci, cj := ic.col[i], ic.col[j]
				switch {
				case ci == cj:
					sum -= ic.val[i] * ic.val[j]
					i++
					j++
				case ci < cj:
					i++
				default:
					j++
				}
			}
			ic.val[k] = sum / ic.val[ic.diag[c]]
		}
	}
	return ic, nil
}

// Apply computes dst = (L·Lᵀ)⁻¹ r by forward and back substitution.
// dst and r must not alias.
func (ic *IC0) Apply(dst, r []float64) {
	n := ic.n
	// Forward solve L·y = r.
	for i := 0; i < n; i++ {
		sum := r[i]
		for k := ic.rowPtr[i]; k < ic.diag[i]; k++ {
			sum -= ic.val[k] * dst[ic.col[k]]
		}
		dst[i] = sum / ic.val[ic.diag[i]]
	}
	// Back solve Lᵀ·x = y, traversing columns in reverse.
	for i := n - 1; i >= 0; i-- {
		dst[i] /= ic.val[ic.diag[i]]
		xi := dst[i]
		for k := ic.rowPtr[i]; k < ic.diag[i]; k++ {
			dst[ic.col[k]] -= ic.val[k] * xi
		}
	}
}
