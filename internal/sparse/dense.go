package sparse

import (
	"fmt"
	"math"
)

// Dense is a row-major dense square matrix, used for small systems and as a
// cross-validation oracle for the iterative solver.
type Dense struct {
	N int
	A []float64
}

// NewDense returns a zeroed n x n dense matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, A: make([]float64, n*n)}
}

// Dim implements Matrix.
func (d *Dense) Dim() int { return d.N }

// At returns the element at (r, c).
func (d *Dense) At(r, c int) float64 { return d.A[r*d.N+c] }

// Set assigns the element at (r, c).
func (d *Dense) Set(r, c int, v float64) { d.A[r*d.N+c] = v }

// Addd accumulates v at (r, c).
func (d *Dense) Addd(r, c int, v float64) { d.A[r*d.N+c] += v }

// MulVec implements Matrix.
func (d *Dense) MulVec(dst, x []float64) {
	for r := 0; r < d.N; r++ {
		sum := 0.0
		row := d.A[r*d.N : (r+1)*d.N]
		for c, v := range row {
			sum += v * x[c]
		}
		dst[r] = sum
	}
}

// Cholesky computes the lower-triangular factor L with A = L*Lᵀ.
// It returns an error when the matrix is not (numerically) symmetric
// positive definite.
func (d *Dense) Cholesky() (*Cholesky, error) {
	n := d.N
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		sum := d.At(j, j)
		for k := 0; k < j; k++ {
			sum -= l[j*n+k] * l[j*n+k]
		}
		if sum <= 0 || math.IsNaN(sum) {
			return nil, fmt.Errorf("sparse: matrix not SPD at pivot %d (value %g)", j, sum)
		}
		l[j*n+j] = math.Sqrt(sum)
		inv := 1 / l[j*n+j]
		for i := j + 1; i < n; i++ {
			s := d.At(i, j)
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = s * inv
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Cholesky holds a lower-triangular factorization A = L*Lᵀ.
type Cholesky struct {
	n int
	l []float64
}

// Solve computes x with A*x = b by forward and back substitution.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.n
	if len(b) != n {
		panic(fmt.Sprintf("sparse: Cholesky.Solve dim %d, want %d", len(b), n))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l[i*n+k] * y[k]
		}
		y[i] = s / c.l[i*n+i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l[k*n+i] * x[k]
		}
		x[i] = s / c.l[i*n+i]
	}
	return x
}
