package sparse

import (
	"context"
	"errors"
	"math"
	"testing"

	"sprout/internal/faultinject"
)

// gridLaplacian builds a w x h grid-graph Laplacian with unit conductances
// grounded at node 0, plus a matching rhs injecting +1 at the far corner.
func gridLaplacian(t *testing.T, w, h int) (*Laplacian, []float64) {
	t.Helper()
	n := w * h
	var edges []WeightedEdge
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := y*w + x
			if x+1 < w {
				edges = append(edges, WeightedEdge{id, id + 1, 1})
			}
			if y+1 < h {
				edges = append(edges, WeightedEdge{id, id + w, 1})
			}
		}
	}
	lap, err := NewLaplacian(n, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	b[n-1] = 1
	b[0] = -1
	return lap, b
}

// denseOracle solves the grounded system with dense Cholesky.
func denseOracle(t *testing.T, lap *Laplacian, b []float64) []float64 {
	t.Helper()
	rhs := make([]float64, lap.N()-1)
	gi := 0
	for node := 0; node < lap.N(); node++ {
		if node == lap.Ground() {
			continue
		}
		rhs[gi] = b[node]
		gi++
	}
	ch, err := lap.Matrix().Dense().Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve(rhs)
	out := make([]float64, lap.N())
	gi = 0
	for node := 0; node < lap.N(); node++ {
		if node == lap.Ground() {
			continue
		}
		out[node] = x[gi]
		gi++
	}
	return out
}

func TestCGRejectsNegativeOptions(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	m := b.Build()
	rhs := []float64{1, 1}
	if _, _, err := CG(m, rhs, nil, CGOptions{MaxIter: -1}); err == nil {
		t.Fatal("negative MaxIter must be rejected")
	}
	if _, _, err := CG(m, rhs, nil, CGOptions{Tol: -1e-9}); err == nil {
		t.Fatal("negative Tol must be rejected")
	}
	if _, _, err := CG(m, rhs, nil, CGOptions{Tol: math.NaN()}); err == nil {
		t.Fatal("NaN Tol must be rejected")
	}
}

func TestCGBreakdownIsTyped(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 1)
	d.Set(1, 1, -2)
	_, _, err := CG(d, []float64{0, 1}, nil, CGOptions{})
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("indefinite matrix: want ErrBreakdown, got %v", err)
	}
}

func TestCGNoConvergenceReturnsBestIterate(t *testing.T) {
	lap, b := gridLaplacian(t, 12, 12)
	rhs := make([]float64, lap.N()-1)
	for i := range rhs {
		rhs[i] = b[i+1] // ground is node 0
	}
	x, iters, err := CG(lap.Matrix(), rhs, nil, CGOptions{MaxIter: 2, Tol: 1e-14})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
	if iters != 2 {
		t.Fatalf("iters = %d, want the MaxIter budget 2", iters)
	}
	if x == nil {
		t.Fatal("non-convergence must still return the best iterate")
	}
}

func TestCGCancelledContext(t *testing.T) {
	lap, b := gridLaplacian(t, 16, 16)
	rhs := make([]float64, lap.N()-1)
	for i := range rhs {
		rhs[i] = b[i+1]
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := CGCtx(ctx, lap.Matrix(), rhs, nil, CGOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: want context.Canceled, got %v", err)
	}
}

func TestLadderRecoversFromInjectedNoConvergence(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	lap, b := gridLaplacian(t, 10, 10)
	want := denseOracle(t, lap, b)

	// Rung 1's CG call fails with forced non-convergence; rung 2 must
	// recover with the relaxed retry.
	faultinject.Arm(faultinject.SiteCG, 1, func() error { return ErrNoConvergence })
	got, err := lap.Solve(b, nil)
	if err != nil {
		t.Fatalf("ladder did not recover: %v", err)
	}
	if calls := faultinject.Calls(faultinject.SiteCG); calls < 2 {
		t.Fatalf("expected a second CG attempt, saw %d calls", calls)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-5) {
			t.Fatalf("x[%d]: ladder %g vs oracle %g", i, got[i], want[i])
		}
	}
}

func TestLadderFallsBackToDenseCholesky(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	lap, b := gridLaplacian(t, 10, 10)
	want := denseOracle(t, lap, b)

	// Every CG invocation fails: both iterative rungs are exhausted and
	// only the dense rung can deliver.
	faultinject.Arm(faultinject.SiteCG, 0, func() error { return ErrNoConvergence })
	got, err := lap.Solve(b, nil)
	if err != nil {
		t.Fatalf("dense fallback did not recover: %v", err)
	}
	if calls := faultinject.Calls(faultinject.SiteCG); calls != 2 {
		t.Fatalf("CG calls = %d, want exactly the two iterative rungs", calls)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-5) {
			t.Fatalf("x[%d]: dense fallback %g vs oracle %g", i, got[i], want[i])
		}
	}
}

func TestLadderSolveErrorCarriesRungTrace(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	old := denseFallbackMax
	denseFallbackMax = 1 // force the "system too large for dense" path
	defer func() { denseFallbackMax = old }()

	lap, b := gridLaplacian(t, 6, 6)
	faultinject.Arm(faultinject.SiteCG, 0, func() error { return ErrNoConvergence })
	_, err := lap.Solve(b, nil)
	if err == nil {
		t.Fatal("all rungs failing must surface an error")
	}
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("want *SolveError, got %T: %v", err, err)
	}
	if len(se.Attempts) != 3 {
		t.Fatalf("attempts = %d, want 3 rungs", len(se.Attempts))
	}
	wantRungs := []string{RungCG, RungCGRelaxed, RungDense}
	for i, a := range se.Attempts {
		if a.Rung != wantRungs[i] {
			t.Fatalf("attempt %d rung = %q, want %q", i, a.Rung, wantRungs[i])
		}
		if a.Err == nil {
			t.Fatalf("attempt %d has no error", i)
		}
	}
	if !errors.Is(err, se.Err) {
		t.Fatal("SolveError must unwrap to the last rung error")
	}
}

func TestWarmStartNearSingularLaplacian(t *testing.T) {
	// Two 4x4 grids joined by one very weak edge: the grounded Laplacian is
	// near-singular (condition number ~1/1e-9), the regime where warm
	// starts historically produced stale answers.
	w, h := 4, 4
	n := 2 * w * h
	var edges []WeightedEdge
	block := func(off int) {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				id := off + y*w + x
				if x+1 < w {
					edges = append(edges, WeightedEdge{id, id + 1, 1})
				}
				if y+1 < h {
					edges = append(edges, WeightedEdge{id, id + w, 1})
				}
			}
		}
	}
	block(0)
	block(w * h)
	edges = append(edges, WeightedEdge{w*h - 1, w * h, 1e-9}) // weak bridge
	lap, err := NewLaplacian(n, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	b[0] = -1
	b[n-1] = 1
	want := denseOracle(t, lap, b)

	cold, err := lap.Solve(b, nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	warm, err := lap.Solve(b, cold)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	// The voltage across the weak bridge dominates; compare against the
	// dense oracle in relative terms.
	for i := range want {
		if !almostEq(cold[i], want[i], 1e-4) {
			t.Fatalf("cold x[%d]: %g vs oracle %g", i, cold[i], want[i])
		}
		if !almostEq(warm[i], want[i], 1e-4) {
			t.Fatalf("warm x[%d]: %g vs oracle %g", i, warm[i], want[i])
		}
	}
}
