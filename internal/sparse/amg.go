package sparse

import (
	"fmt"
	"math"
)

// Aggregation-based algebraic multigrid, used as an escalation rung of the
// solver fallback ladder for large boards (PAPERS.md: power-grid analysis
// favors multigrid-preconditioned Krylov solvers once IC(0) stalls). The
// hierarchy is built once per Laplacian and cached; a V(1,1)-cycle with
// weighted-Jacobi smoothing serves as a symmetric positive definite
// preconditioner for CG.
//
// The setup is deliberately plain greedy aggregation with a Galerkin
// (PᵀAP) coarse operator: deterministic, allocation-bounded, and robust on
// the grounded grid Laplacians SPROUT solves — the goal is a rung that
// rescues large systems the IC(0) rung gave up on, not peak multigrid
// throughput.

const (
	// amgCoarseMax is the dimension at which coarsening stops and the
	// remaining system is solved densely inside the cycle.
	amgCoarseMax = 64
	// amgMaxLevels bounds the hierarchy depth (greedy aggregation at
	// least halves the unknown count per level in practice; the bound is
	// a safety net against degenerate coarsening).
	amgMaxLevels = 24
	// amgOmega is the weighted-Jacobi damping factor; 2/3 is the
	// standard choice for Laplacian-like operators.
	amgOmega = 2.0 / 3.0
	// amgJacobiFallbackSweeps is the coarsest-level iteration count used
	// when the dense Cholesky factorization of the coarsest operator
	// fails (it should not, for an SPD Galerkin product — safety net).
	amgJacobiFallbackSweeps = 50
)

// amgLevel is one level of the hierarchy: the operator, its diagonal for
// the Jacobi smoother, and the fine-to-coarse aggregate map (nil on the
// coarsest level).
type amgLevel struct {
	a    *CSR
	diag []float64
	agg  []int // fine node -> coarse aggregate index
	nc   int   // aggregate count (dimension of the next level)
}

// AMG is an aggregation-multigrid hierarchy over an SPD matrix. The
// hierarchy itself is immutable after NewAMG and safe for concurrent use;
// per-goroutine iteration scratch lives in an AMGApplier.
type AMG struct {
	levels []*amgLevel
	chol   *Cholesky // dense factor of the coarsest operator (nil on breakdown)
}

// NewAMG builds the multigrid hierarchy for an SPD CSR matrix (in SPROUT:
// a grounded graph Laplacian). The construction is deterministic — greedy
// aggregation visits nodes in ascending index order.
func NewAMG(a *CSR) (*AMG, error) {
	if a == nil || a.N == 0 {
		return nil, fmt.Errorf("sparse: AMG needs a non-empty matrix")
	}
	m := &AMG{}
	cur := a
	for len(m.levels) < amgMaxLevels {
		lvl := &amgLevel{a: cur, diag: cur.Diag()}
		for i, d := range lvl.diag {
			if d <= 0 || math.IsNaN(d) {
				return nil, fmt.Errorf("sparse: AMG diagonal %g at row %d is not positive", d, i)
			}
		}
		m.levels = append(m.levels, lvl)
		if cur.N <= amgCoarseMax {
			break
		}
		agg, nc := aggregate(cur)
		if nc >= cur.N {
			break // no coarsening progress; stop with what we have
		}
		lvl.agg = agg
		lvl.nc = nc
		cur = galerkin(cur, agg, nc)
	}
	coarse := m.levels[len(m.levels)-1].a
	if ch, err := coarse.Dense().Cholesky(); err == nil {
		m.chol = ch
	}
	return m, nil
}

// Levels returns the hierarchy depth (1 means no coarsening happened).
func (m *AMG) Levels() int { return len(m.levels) }

// CoarseDim returns the dimension of the coarsest-level operator.
func (m *AMG) CoarseDim() int { return m.levels[len(m.levels)-1].a.N }

// aggregate greedily partitions the nodes of a into aggregates: a seed
// node claims itself and its unaggregated neighbors; leftover nodes join
// the neighboring aggregate with the strongest coupling. Deterministic by
// ascending node order.
func aggregate(a *CSR) (agg []int, nc int) {
	n := a.N
	agg = make([]int, n)
	for i := range agg {
		agg[i] = -1
	}
	// Pass 1: seed aggregates around nodes with an unaggregated neighbor.
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		open := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := a.Col[k]; j != i && agg[j] == -1 {
				open = true
				break
			}
		}
		if !open {
			continue
		}
		agg[i] = nc
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := a.Col[k]; j != i && agg[j] == -1 {
				agg[j] = nc
			}
		}
		nc++
	}
	// Pass 2: attach leftovers to the strongest neighboring aggregate;
	// isolated leftovers become singletons.
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		best, bestW := -1, 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			if j == i || agg[j] == -1 {
				continue
			}
			if w := math.Abs(a.Val[k]); best == -1 || w > bestW {
				best, bestW = agg[j], w
			}
		}
		if best == -1 {
			best = nc
			nc++
		}
		agg[i] = best
	}
	return agg, nc
}

// galerkin forms the coarse operator PᵀAP for the piecewise-constant
// prolongator defined by agg.
func galerkin(a *CSR, agg []int, nc int) *CSR {
	b := NewBuilder(nc)
	for r := 0; r < a.N; r++ {
		cr := agg[r]
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			b.Add(cr, agg[a.Col[k]], a.Val[k])
		}
	}
	return b.Build()
}

// AMGApplier carries the per-level iteration scratch of one goroutine's
// V-cycles. Use AMG.NewApplier per concurrent solver; Apply matches the
// CGOptions.Apply signature.
type AMGApplier struct {
	m *AMG
	// Per level: the right-hand side, the iterate, and the residual.
	r, x, res [][]float64
}

// NewApplier allocates iteration scratch for the hierarchy.
func (m *AMG) NewApplier() *AMGApplier {
	ap := &AMGApplier{
		m:   m,
		r:   make([][]float64, len(m.levels)),
		x:   make([][]float64, len(m.levels)),
		res: make([][]float64, len(m.levels)),
	}
	for i, lvl := range m.levels {
		ap.r[i] = make([]float64, lvl.a.N)
		ap.x[i] = make([]float64, lvl.a.N)
		ap.res[i] = make([]float64, lvl.a.N)
	}
	return ap
}

// Apply computes dst = B·r where B is one symmetric V(1,1)-cycle with
// weighted-Jacobi smoothing — an SPD preconditioner for CG. dst and r must
// not alias.
func (ap *AMGApplier) Apply(dst, r []float64) {
	m := ap.m
	last := len(m.levels) - 1
	copy(ap.r[0], r)
	// Down sweep: pre-smooth from a zero iterate (one damped-Jacobi step
	// is x = ω·D⁻¹·r), then restrict the residual.
	for l := 0; l < last; l++ {
		lvl := m.levels[l]
		x, rl, res := ap.x[l], ap.r[l], ap.res[l]
		for i := range x {
			x[i] = amgOmega * rl[i] / lvl.diag[i]
		}
		lvl.a.MulVec(res, x)
		for i := range res {
			res[i] = rl[i] - res[i]
		}
		rc := ap.r[l+1]
		for i := range rc {
			rc[i] = 0
		}
		for i, ci := range lvl.agg {
			rc[ci] += res[i]
		}
	}
	// Coarsest level: direct solve (Jacobi sweeps when the dense factor
	// was unavailable).
	ap.coarseSolve()
	// Up sweep: prolong the correction and post-smooth with the same
	// damped-Jacobi step, keeping the cycle symmetric.
	for l := last - 1; l >= 0; l-- {
		lvl := m.levels[l]
		x, rl, res := ap.x[l], ap.r[l], ap.res[l]
		xc := ap.x[l+1]
		for i, ci := range lvl.agg {
			x[i] += xc[ci]
		}
		lvl.a.MulVec(res, x)
		for i := range x {
			x[i] += amgOmega * (rl[i] - res[i]) / lvl.diag[i]
		}
	}
	copy(dst, ap.x[0])
}

// coarseSolve solves the coarsest-level system into ap.x[last].
func (ap *AMGApplier) coarseSolve() {
	last := len(ap.m.levels) - 1
	lvl := ap.m.levels[last]
	if ch := ap.m.chol; ch != nil {
		copy(ap.x[last], ch.Solve(ap.r[last]))
		return
	}
	// Fallback: damped-Jacobi sweeps — symmetric, converges for SPD
	// diagonally dominant operators, and only reachable when the dense
	// factorization broke down.
	x, rl, res := ap.x[last], ap.r[last], ap.res[last]
	for i := range x {
		x[i] = 0
	}
	for s := 0; s < amgJacobiFallbackSweeps; s++ {
		lvl.a.MulVec(res, x)
		for i := range x {
			x[i] += amgOmega * (rl[i] - res[i]) / lvl.diag[i]
		}
	}
}
