package sparse

import (
	"errors"
	"testing"

	"sprout/internal/faultinject"
)

func TestSolveAttemptsCtxRecordsSuccessfulSolve(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	lap, b := gridLaplacian(t, 10, 10)
	x, attempts, err := lap.SolveAttemptsCtx(t.Context(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x == nil {
		t.Fatal("no solution")
	}
	if len(attempts) != 1 {
		t.Fatalf("attempts = %d, want 1 for a clean first-rung solve", len(attempts))
	}
	a := attempts[0]
	if a.Rung != RungCG || a.Err != nil {
		t.Fatalf("attempt = %+v, want accepted %s", a, RungCG)
	}
	if a.Iterations == 0 {
		t.Fatal("successful attempt must carry its CG iteration count")
	}
	if a.Residual <= 0 {
		t.Fatalf("successful attempt residual = %g, want the achieved residual", a.Residual)
	}
}

func TestSolveAttemptsCtxRecordsEscalation(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	lap, b := gridLaplacian(t, 10, 10)
	faultinject.Arm(faultinject.SiteCG, 1, func() error { return ErrNoConvergence })
	_, attempts, err := lap.SolveAttemptsCtx(t.Context(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 2 {
		t.Fatalf("attempts = %d, want the failed primary rung plus the accepted retry", len(attempts))
	}
	if attempts[0].Rung != RungCG || attempts[0].Err == nil {
		t.Fatalf("attempt 0 = %+v, want failed %s", attempts[0], RungCG)
	}
	if attempts[1].Rung != RungCGRelaxed || attempts[1].Err != nil {
		t.Fatalf("attempt 1 = %+v, want accepted %s", attempts[1], RungCGRelaxed)
	}
}

func TestSolveStatsRecord(t *testing.T) {
	boom := errors.New("boom")
	var s SolveStats
	s.Record(nil) // empty trace must not count as a solve
	s.Record([]RungAttempt{{Rung: RungCG, Iterations: 40, Residual: 2e-10}})
	s.Record([]RungAttempt{
		{Rung: RungCG, Iterations: 500, Err: boom},
		{Rung: RungCGRelaxed, Iterations: 30, Residual: 5e-8},
	})
	s.Record([]RungAttempt{
		{Rung: RungCG, Iterations: 500, Err: boom},
		{Rung: RungCGRelaxed, Iterations: 500, Err: boom},
		{Rung: RungDense, Err: boom},
	})
	if s.Solves != 3 || s.Iterations != 1570 || s.Escalations != 4 || s.Failures != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.WorstResidual != 5e-8 {
		t.Fatalf("worst residual = %g, want 5e-8", s.WorstResidual)
	}
	if s.Rungs[RungCG] != 1 || s.Rungs[RungCGRelaxed] != 1 || s.Rungs[RungDense] != 0 {
		t.Fatalf("rungs = %v", s.Rungs)
	}
	if !s.Escalated() {
		t.Fatal("Escalated() must report the rejected rungs")
	}
}

func TestSolveStatsMerge(t *testing.T) {
	a := SolveStats{Solves: 2, Iterations: 80, WorstResidual: 1e-9,
		Rungs: map[string]int{RungCG: 2}}
	b := SolveStats{Solves: 1, Iterations: 40, Escalations: 1, WorstResidual: 3e-8,
		Rungs: map[string]int{RungCGRelaxed: 1}}
	a.Merge(b)
	if a.Solves != 3 || a.Iterations != 120 || a.Escalations != 1 {
		t.Fatalf("merged = %+v", a)
	}
	if a.WorstResidual != 3e-8 {
		t.Fatalf("merged worst residual = %g", a.WorstResidual)
	}
	if a.Rungs[RungCG] != 2 || a.Rungs[RungCGRelaxed] != 1 {
		t.Fatalf("merged rungs = %v", a.Rungs)
	}
	var zero SolveStats
	zero.Merge(b) // merging into the zero value must allocate the map
	if zero.Rungs[RungCGRelaxed] != 1 {
		t.Fatalf("zero merge rungs = %v", zero.Rungs)
	}
}
