package sparse

import (
	"testing"
)

// FuzzCSRMatVec drives the COO→CSR assembly and the CSR mat-vec with
// fuzzer-chosen entry lists, cross-checking the structural invariants of
// the compressed form and the product against a naive coordinate-format
// accumulation. Run the seeds as normal tests, or explore with
// `go test -fuzz=FuzzCSRMatVec`.
func FuzzCSRMatVec(f *testing.F) {
	f.Add([]byte{3, 0, 0, 8, 1, 1, 16, 2, 2, 24})
	f.Add([]byte{5, 0, 1, 1, 1, 0, 1, 0, 1, 255, 4, 4, 7})
	f.Add([]byte{1, 0, 0, 100})
	f.Add([]byte{8, 7, 7, 1, 7, 7, 255, 0, 7, 3, 7, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0]%8)
		data = data[1:]

		type coo struct {
			r, c int
			v    float64
		}
		var entries []coo
		b := NewBuilder(n)
		for i := 0; i+2 < len(data) && len(entries) < 64; i += 3 {
			e := coo{
				r: int(data[i]) % n,
				c: int(data[i+1]) % n,
				v: float64(int8(data[i+2])) / 8,
			}
			entries = append(entries, e)
			b.Add(e.r, e.c, e.v)
		}
		m := b.Build()

		// Structural invariants of the compressed form.
		if m.Dim() != n {
			t.Fatalf("dim %d, want %d", m.Dim(), n)
		}
		if m.RowPtr[0] != 0 || m.RowPtr[n] != m.NNZ() {
			t.Fatalf("RowPtr endpoints %d,%d with nnz %d", m.RowPtr[0], m.RowPtr[n], m.NNZ())
		}
		for r := 0; r < n; r++ {
			if m.RowPtr[r] > m.RowPtr[r+1] {
				t.Fatalf("RowPtr not monotone at row %d", r)
			}
			for k := m.RowPtr[r] + 1; k < m.RowPtr[r+1]; k++ {
				if m.Col[k-1] >= m.Col[k] {
					t.Fatalf("row %d columns not strictly increasing", r)
				}
			}
		}

		// Mat-vec against a naive coordinate accumulation.
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		got := make([]float64, n)
		m.MulVec(got, x)
		want := make([]float64, n)
		for _, e := range entries {
			want[e.r] += e.v * x[e.c]
		}
		for i := range want {
			if !ApproxEqualTol(got[i], want[i], 1e-9) {
				t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want[i])
			}
		}

		// At must agree with the accumulated entries exactly where stored.
		for r := 0; r < n; r++ {
			for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
				if m.Val[k] == 0 {
					t.Fatalf("explicit zero stored at (%d,%d): Build must drop cancelled entries", r, m.Col[k])
				}
			}
		}
	})
}
