package sparse

// Workspace is reusable scratch for repeated Laplacian solves. One
// workspace serves one goroutine: SolveAttemptsCtxWork stages the grounded
// right-hand side, warm start, and solution in it and hands the CG rungs
// their iteration vectors from it, so a steady stream of solves over
// same-sized systems performs no per-solve allocations. The solution slice
// a workspace-backed solve returns aliases the workspace and is only valid
// until the next solve through the same workspace.
type Workspace struct {
	rhs, x0, out []float64
	cg           CGWork
}

// CGWork is reusable scratch for CGCtx: the iterate, residual,
// preconditioned residual, search direction, and mat-vec product vectors.
// A CGWork serves one CG invocation at a time; the solution CGCtx returns
// aliases it.
type CGWork struct {
	x, r, z, p, ap []float64
}

// vec returns *buf resized to length n, reusing the backing array when
// possible. Contents are unspecified.
func vec(buf *[]float64, n int) []float64 {
	*buf = growFloats(*buf, n)
	return *buf
}
