package sparse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"sprout/internal/obs"
)

// Rung names of the solver fallback ladder, in escalation order.
const (
	// RungCG is the primary attempt: CG with the IC(0) preconditioner
	// (Jacobi when the factorization was unavailable) at the default
	// tolerance, warm-started when the caller has a previous solution.
	RungCG = "cg-ic0"
	// RungCGAMG is the large-board escalation: a cold CG restart
	// preconditioned by an aggregation-AMG V-cycle at the full tolerance.
	// It only runs when the grounded dimension is at least amgMinDim —
	// below that the relaxed rung is cheaper than building a hierarchy —
	// and the hierarchy is built lazily and cached on the Laplacian.
	RungCGAMG = "cg-amg"
	// RungCGRelaxed retries cold with plain Jacobi preconditioning, a
	// relaxed tolerance and a doubled iteration budget. It recovers cases
	// where a stale IC(0) factor or a bad warm start stalls the primary
	// attempt.
	RungCGRelaxed = "cg-jacobi-relaxed"
	// RungDense is the last resort for small systems: a dense Cholesky
	// factorization, immune to iterative stagnation.
	RungDense = "dense-cholesky"
)

// relaxedTol is the rung-2 tolerance. Node-current ranking and effective
// resistances are stable well above this accuracy, so a relaxed solve is
// preferable to no solve.
const relaxedTol = 1e-7

// denseFallbackMax is the largest grounded-system dimension the dense
// Cholesky rung accepts (n² floats of scratch; 2048² ≈ 32 MB). A variable
// so tests can exercise the "system too large" path cheaply.
var denseFallbackMax = 2048

// amgMinDim is the smallest grounded-system dimension for which the
// cg-amg rung runs: the hierarchy setup only pays off on large boards,
// and keeping small systems off the rung preserves the ladder's historic
// escalation traces. A variable so tests can force the rung cheaply.
var amgMinDim = 512

// RungAttempt records one rung of the fallback ladder.
type RungAttempt struct {
	// Rung is the rung name (RungCG, RungCGRelaxed, RungDense).
	Rung string
	// Iterations is the iteration count the rung spent (0 for dense).
	Iterations int
	// Residual is the relative residual ‖b-Ax‖/‖b‖ the rung achieved;
	// NaN when the rung produced no iterate at all.
	Residual float64
	// Err is why the rung was rejected.
	Err error
}

// SolveError reports that every rung of the solver fallback ladder failed.
// It carries the per-rung diagnostics so callers (and bug reports) can see
// how far each attempt got.
type SolveError struct {
	// Attempts lists the rungs tried, in order.
	Attempts []RungAttempt
	// Iterations is the total iteration count across all rungs.
	Iterations int
	// Residual is the best relative residual achieved by any rung.
	Residual float64
	// Err is the error from the last rung attempted.
	Err error
}

// Error formats the ladder trace: which rungs ran, their iteration counts
// and residuals, and the final error.
func (e *SolveError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sparse: all %d solver rungs failed (total %d iterations, best residual %.3g):",
		len(e.Attempts), e.Iterations, e.Residual)
	for _, a := range e.Attempts {
		fmt.Fprintf(&b, " [%s: %d it, res %.3g: %v]", a.Rung, a.Iterations, a.Residual, a.Err)
	}
	return b.String()
}

// Unwrap exposes the last rung's error for errors.Is/As.
func (e *SolveError) Unwrap() error { return e.Err }

// relResidual computes ‖b-Ax‖/‖b‖ (NaN when x is nil or b is zero).
func relResidual(a Matrix, b, x []float64) float64 {
	if x == nil {
		return math.NaN()
	}
	normB := norm2(b)
	if normB == 0 {
		return math.NaN()
	}
	r := make([]float64, len(b))
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return norm2(r) / normB
}

// solveLadder runs the fallback ladder on the grounded system mat*x = rhs.
// x0 optionally warm-starts the first rung. Context cancellation aborts
// the ladder immediately — a cancelled solve is not a solver fault. ws,
// when non-nil, supplies the CG iteration vectors (the returned solution
// may then alias it).
//
// The returned attempts list every rung tried, in order; on success the
// final attempt is the accepted rung with a nil Err and the residual the
// solve actually achieved, so callers see degraded-but-recovered solves
// without a SolveError.
func (l *Laplacian) solveLadder(ctx context.Context, rhs, x0 []float64, ws *Workspace) ([]float64, []RungAttempt, error) {
	mat, diag, ic := l.mat, l.diag, l.ic
	var cgw *CGWork
	if ws != nil {
		cgw = &ws.cg
	}
	var attempts []RungAttempt
	totalIters := 0
	bestRes := math.NaN()
	note := func(rung string, iters int, res float64, err error) {
		attempts = append(attempts, RungAttempt{Rung: rung, Iterations: iters, Residual: res, Err: err})
		totalIters += iters
		if !math.IsNaN(res) && (math.IsNaN(bestRes) || res < bestRes) {
			bestRes = res
		}
	}

	// Rung 1: CG with IC(0) (Jacobi when IC(0) broke down at assembly).
	var st CGStats
	opt := CGOptions{Precond: diag, Stats: &st, Work: cgw}
	if ic != nil {
		opt.Apply = ic.Apply
	}
	x, iters, err := CGCtx(ctx, mat, rhs, x0, opt)
	if err == nil {
		note(RungCG, iters, st.Residual, nil)
		return x, attempts, nil
	}
	if ctxErr(err) {
		return nil, attempts, err
	}
	note(RungCG, iters, relResidual(mat, rhs, x), err)
	// Escalation is rare, so the event cost never lands on the happy
	// path; the trace makes recovered-but-degraded solves visible.
	obs.Event(ctx, "solver.escalate",
		obs.A("from", RungCG), obs.A("iterations", iters))

	// Rung 2 (large boards only): cold CG restart preconditioned by an
	// aggregation-AMG V-cycle at the full tolerance. The hierarchy is
	// built lazily, once, and cached on the Laplacian; small systems skip
	// straight to the relaxed rung, which is cheaper than a setup.
	n := mat.Dim()
	if n >= amgMinDim {
		amg, built, aerr := l.amgHierarchy()
		if built && aerr == nil {
			tr := obs.FromContext(ctx)
			if tr.Enabled() {
				tr.Counter(obs.MSolverAMGBuilds).Add(1)
				tr.Histogram(obs.MSolverAMGLevels).Observe(float64(amg.Levels()))
			}
		}
		if aerr != nil {
			note(RungCGAMG, 0, math.NaN(), fmt.Errorf("sparse: AMG setup: %w", aerr))
			obs.Event(ctx, "solver.escalate",
				obs.A("from", RungCGAMG), obs.A("iterations", 0))
		} else {
			x, iters, err = CGCtx(ctx, mat, rhs, nil, CGOptions{
				Apply: amg.NewApplier().Apply,
				Stats: &st,
				Work:  cgw,
			})
			if err == nil {
				note(RungCGAMG, iters, st.Residual, nil)
				return x, attempts, nil
			}
			if ctxErr(err) {
				return nil, attempts, err
			}
			note(RungCGAMG, iters, relResidual(mat, rhs, x), err)
			obs.Event(ctx, "solver.escalate",
				obs.A("from", RungCGAMG), obs.A("iterations", iters))
		}
	}

	// Rung 3: cold restart, plain Jacobi, relaxed tolerance, doubled
	// budget. A fresh Krylov space sidesteps warm-start or IC(0)
	// pathologies; the relaxed tolerance accepts solves that stalled just
	// short of the default.
	x, iters, err = CGCtx(ctx, mat, rhs, nil, CGOptions{
		Tol:     relaxedTol,
		MaxIter: 20*n + 200,
		Precond: diag,
		Stats:   &st,
		Work:    cgw,
	})
	if err == nil {
		note(RungCGRelaxed, iters, st.Residual, nil)
		return x, attempts, nil
	}
	if ctxErr(err) {
		return nil, attempts, err
	}
	note(RungCGRelaxed, iters, relResidual(mat, rhs, x), err)
	obs.Event(ctx, "solver.escalate",
		obs.A("from", RungCGRelaxed), obs.A("iterations", iters))

	// Final rung: dense Cholesky for small systems.
	if n <= denseFallbackMax {
		ch, cerr := mat.Dense().Cholesky()
		if cerr == nil {
			x = ch.Solve(rhs)
			res := relResidual(mat, rhs, x)
			if !math.IsNaN(res) && res <= relaxedTol*10 {
				note(RungDense, 0, res, nil)
				return x, attempts, nil
			}
			cerr = fmt.Errorf("sparse: dense fallback residual %.3g exceeds %.3g", res, relaxedTol*10)
			note(RungDense, 0, res, cerr)
		} else {
			note(RungDense, 0, math.NaN(), cerr)
		}
	} else {
		note(RungDense, 0, math.NaN(), fmt.Errorf("sparse: system dim %d exceeds dense fallback cap %d", n, denseFallbackMax))
	}

	last := attempts[len(attempts)-1].Err
	return nil, attempts, &SolveError{
		Attempts:   attempts,
		Iterations: totalIters,
		Residual:   bestRes,
		Err:        last,
	}
}

// ctxErr reports whether err is a context cancellation or deadline.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
