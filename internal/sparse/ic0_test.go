package sparse

import (
	"math"
	"testing"
)

// gridLaplacianCSR builds the grounded Laplacian CSR of a w x h unit grid.
func gridLaplacianCSR(t *testing.T, w, h int) (*CSR, []float64, *Laplacian) {
	t.Helper()
	id := func(x, y int) int { return y*w + x }
	var edges []WeightedEdge
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, WeightedEdge{id(x, y), id(x+1, y), 1})
			}
			if y+1 < h {
				edges = append(edges, WeightedEdge{id(x, y), id(x, y+1), 1})
			}
		}
	}
	lap, err := NewLaplacian(w*h, edges, w*h-1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, w*h-1)
	rhs[0] = 1
	return lap.Matrix(), rhs, lap
}

func TestIC0DiagonalMatrix(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 4)
	b.Add(1, 1, 9)
	b.Add(2, 2, 16)
	ic, err := NewIC0(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	// Apply on a diagonal matrix is exact: dst = r / diag.
	dst := make([]float64, 3)
	ic.Apply(dst, []float64{4, 9, 32})
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("apply = %v, want %v", dst, want)
		}
	}
}

func TestIC0ExactOnTridiagonal(t *testing.T) {
	// For a tridiagonal SPD matrix IC(0) has no dropped fill, so the
	// factorization is exact and Apply solves the system.
	n := 12
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2.5)
		if i+1 < n {
			b.AddSym(i, i+1, -1)
		}
	}
	m := b.Build()
	ic, err := NewIC0(m)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n)
	rhs[0], rhs[n-1] = 1, -2
	got := make([]float64, n)
	ic.Apply(got, rhs)
	ch, err := m.Dense().Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	want := ch.Solve(rhs)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestIC0RejectsMissingDiagonal(t *testing.T) {
	b := NewBuilder(2)
	b.AddSym(0, 1, -1) // no diagonal entries
	if _, err := NewIC0(b.Build()); err == nil {
		t.Fatal("missing diagonal must error")
	}
}

func TestIC0RejectsIndefinite(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, -1)
	if _, err := NewIC0(b.Build()); err == nil {
		t.Fatal("indefinite matrix must break down")
	}
}

func TestIC0BeatsJacobiOnGrid(t *testing.T) {
	m, rhs, _ := gridLaplacianCSR(t, 30, 30)
	_, itJacobi, err := CG(m, rhs, nil, CGOptions{Precond: m.Diag()})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIC0(m)
	if err != nil {
		t.Fatal(err)
	}
	_, itIC, err := CG(m, rhs, nil, CGOptions{Apply: ic.Apply})
	if err != nil {
		t.Fatal(err)
	}
	if itIC >= itJacobi {
		t.Fatalf("IC(0) should converge faster: %d vs %d iterations", itIC, itJacobi)
	}
}

func TestIC0SolutionMatchesJacobi(t *testing.T) {
	m, rhs, _ := gridLaplacianCSR(t, 15, 10)
	xJ, _, err := CG(m, rhs, nil, CGOptions{Precond: m.Diag(), Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIC0(m)
	if err != nil {
		t.Fatal(err)
	}
	xI, _, err := CG(m, rhs, nil, CGOptions{Apply: ic.Apply, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xJ {
		if math.Abs(xJ[i]-xI[i]) > 1e-8 {
			t.Fatalf("x[%d]: %g vs %g", i, xJ[i], xI[i])
		}
	}
}

func TestLaplacianUsesIC0(t *testing.T) {
	// The Laplacian constructor should pick up IC(0); its solves stay
	// correct (series chain oracle).
	lap, err := NewLaplacian(4, []WeightedEdge{{0, 1, 2}, {1, 2, 2}, {2, 3, 2}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lap.ic == nil {
		t.Fatal("laplacian should carry an IC(0) preconditioner")
	}
	r, err := lap.EffectiveResistance(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1.5) > 1e-9 {
		t.Fatalf("R = %g, want 1.5 (three 0.5Ω in series)", r)
	}
}
