package sparse

import "math"

// DefaultTol is the default relative tolerance for comparing solver
// quantities (residuals, resistances, matrix entries): looser than the CG
// convergence tolerance, so values that the solver considers converged
// also compare equal.
const DefaultTol = 1e-9

// ApproxEqual reports whether a and b agree to within DefaultTol,
// combining an absolute test near zero with a relative one elsewhere.
// This is the comparison the floateq analyzer demands in place of == on
// floats. NaNs never compare equal, matching IEEE semantics.
func ApproxEqual(a, b float64) bool {
	return ApproxEqualTol(a, b, DefaultTol)
}

// ApproxEqualTol is ApproxEqual with a caller-chosen tolerance.
func ApproxEqualTol(a, b, tol float64) bool {
	if a == b { //lint:ignore floateq the exact fast path is the point of this helper
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}
