package sparse

import (
	"context"
	"fmt"
	"sync"
)

// WeightedEdge is an undirected graph edge with a positive conductance.
type WeightedEdge struct {
	U, V int
	W    float64
}

// Laplacian is a grounded graph Laplacian: the full Laplacian of a weighted
// undirected graph with one node chosen as the voltage reference (paper
// Eq. 3 uses "a grounded Laplacian matrix" L so that V = L⁻¹E is well
// defined). The grounded matrix is symmetric positive definite whenever the
// graph is connected.
type Laplacian struct {
	n       int
	ground  int
	mat     *CSR
	diag    []float64
	ic      *IC0  // incomplete Cholesky preconditioner (nil on breakdown)
	indexOf []int // full node id -> grounded index, -1 for ground
	nodeOf  []int // grounded index -> full node id

	// Assembly arenas retained for ReassembleLaplacian: the coordinate
	// builder and the IC(0) storage (kept even while ic is nil so a later
	// reassembly can reuse it).
	asm     *Builder
	icStore *IC0

	// Lazily built AMG hierarchy for the cg-amg ladder rung. Guarded by a
	// mutex because pair solves run concurrently over one Laplacian;
	// reassembly resets the cache.
	amgMu    sync.Mutex
	amgVal   *AMG
	amgErr   error
	amgBuilt bool
}

// NewLaplacian assembles the grounded Laplacian of an n-node graph.
// Edges with non-positive weight or out-of-range endpoints are rejected.
func NewLaplacian(n int, edges []WeightedEdge, ground int) (*Laplacian, error) {
	return ReassembleLaplacian(nil, n, edges, ground)
}

// ReassembleLaplacian assembles the grounded Laplacian into dst, reusing
// its matrix, preconditioner, and index storage (nil dst allocates a fresh
// Laplacian — NewLaplacian is exactly that). The result is numerically
// identical to NewLaplacian on the same inputs: the builder receives the
// same entry sequence, so the assembled matrix and its IC(0) factor match
// bit for bit. On error dst is unusable until a later reassembly succeeds.
func ReassembleLaplacian(dst *Laplacian, n int, edges []WeightedEdge, ground int) (*Laplacian, error) {
	if n <= 1 {
		return nil, fmt.Errorf("sparse: laplacian needs n >= 2, got %d", n)
	}
	if ground < 0 || ground >= n {
		return nil, fmt.Errorf("sparse: ground node %d out of range [0,%d)", ground, n)
	}
	l := dst
	if l == nil {
		l = &Laplacian{}
	}
	l.n = n
	l.ground = ground
	l.amgMu.Lock()
	l.amgVal, l.amgErr, l.amgBuilt = nil, nil, false
	l.amgMu.Unlock()
	l.indexOf = growInts(l.indexOf, n)
	l.nodeOf = growInts(l.nodeOf, n-1)[:0]
	for i := 0; i < n; i++ {
		if i == ground {
			l.indexOf[i] = -1
			continue
		}
		l.indexOf[i] = len(l.nodeOf)
		l.nodeOf = append(l.nodeOf, i)
	}
	if l.asm == nil {
		l.asm = NewBuilder(n - 1)
	} else {
		l.asm.Reset(n - 1)
	}
	b := l.asm
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("sparse: edge (%d,%d) out of range for n=%d", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("sparse: self-loop at node %d", e.U)
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("sparse: edge (%d,%d) has non-positive weight %g", e.U, e.V, e.W)
		}
		iu, iv := l.indexOf[e.U], l.indexOf[e.V]
		if iu >= 0 {
			b.Add(iu, iu, e.W)
		}
		if iv >= 0 {
			b.Add(iv, iv, e.W)
		}
		if iu >= 0 && iv >= 0 {
			b.Add(iu, iv, -e.W)
			b.Add(iv, iu, -e.W)
		}
	}
	l.mat = b.BuildInto(l.mat)
	l.diag = l.mat.DiagInto(l.diag)
	// IC(0) exists for the grounded Laplacian (an M-matrix); fall back to
	// Jacobi if a degenerate input breaks the factorization.
	ic, err := NewIC0Into(l.icStore, l.mat)
	if err != nil {
		l.ic = nil
	} else {
		l.ic = ic
		l.icStore = ic
	}
	return l, nil
}

// amgHierarchy returns the cached AMG hierarchy for the grounded matrix,
// building it on first use. built reports whether this call performed the
// construction (for telemetry). Safe for concurrent solvers.
func (l *Laplacian) amgHierarchy() (m *AMG, built bool, err error) {
	l.amgMu.Lock()
	defer l.amgMu.Unlock()
	if !l.amgBuilt {
		l.amgVal, l.amgErr = NewAMG(l.mat)
		l.amgBuilt = true
		built = true
	}
	return l.amgVal, built, l.amgErr
}

// N returns the number of nodes in the full (ungrounded) graph.
func (l *Laplacian) N() int { return l.n }

// Ground returns the reference node id.
func (l *Laplacian) Ground() int { return l.ground }

// Matrix exposes the grounded CSR matrix (dimension n-1).
func (l *Laplacian) Matrix() *CSR { return l.mat }

// Preconditioner names the preconditioner the primary rung will use:
// "ic0" when the incomplete Cholesky factorization succeeded at assembly,
// "jacobi" when it broke down and the solver fell back to the diagonal.
func (l *Laplacian) Preconditioner() string {
	if l.ic != nil {
		return "ic0"
	}
	return "jacobi"
}

// NNZ returns the number of stored nonzeros in the grounded matrix.
func (l *Laplacian) NNZ() int { return l.mat.NNZ() }

// Solve computes node potentials without cancellation support; see
// SolveCtx.
func (l *Laplacian) Solve(b []float64, warm []float64) ([]float64, error) {
	return l.SolveCtx(context.Background(), b, warm)
}

// SolveCtx computes node potentials for the injected currents b
// (full-length n; the entry at the ground node is ignored — ground absorbs
// the return current). The result is full-length with the ground entry
// fixed at 0. warm, when non-nil, seeds the iteration with a previous
// full-length solution.
//
// The solve runs a resilience ladder: CG with IC(0) at the default
// tolerance, then a cold Jacobi retry at a relaxed tolerance, then a dense
// Cholesky factorization for small systems. When every rung fails the
// returned error is a *SolveError carrying per-rung iteration counts and
// residuals. Context cancellation aborts the ladder with ctx.Err().
func (l *Laplacian) SolveCtx(ctx context.Context, b []float64, warm []float64) ([]float64, error) {
	x, _, err := l.SolveAttemptsCtx(ctx, b, warm)
	return x, err
}

// SolveAttemptsCtx is SolveCtx plus the solver-ladder trace: the returned
// attempts list every rung tried, the last one being the accepted rung on
// success. Callers that aggregate solver telemetry (SolveStats.Record) use
// this variant so successful solves are observable too.
func (l *Laplacian) SolveAttemptsCtx(ctx context.Context, b []float64, warm []float64) ([]float64, []RungAttempt, error) {
	return l.SolveAttemptsCtxWork(ctx, b, warm, nil)
}

// SolveAttemptsCtxWork is SolveAttemptsCtx with caller-owned scratch: when
// ws is non-nil the grounded staging vectors and the CG iteration vectors
// come from the workspace, making repeated solves allocation-free. The
// returned solution then aliases the workspace and is only valid until its
// next solve; callers must copy what they keep. The arithmetic is
// identical to the workspace-free path.
func (l *Laplacian) SolveAttemptsCtxWork(ctx context.Context, b []float64, warm []float64, ws *Workspace) ([]float64, []RungAttempt, error) {
	if len(b) != l.n {
		return nil, nil, fmt.Errorf("sparse: Solve rhs dim %d, want %d", len(b), l.n)
	}
	var rhs []float64
	if ws != nil {
		rhs = vec(&ws.rhs, l.n-1)
	} else {
		rhs = make([]float64, l.n-1)
	}
	for gi, node := range l.nodeOf {
		rhs[gi] = b[node]
	}
	var x0 []float64
	if warm != nil {
		if len(warm) != l.n {
			return nil, nil, fmt.Errorf("sparse: warm start dim %d, want %d", len(warm), l.n)
		}
		if ws != nil {
			x0 = vec(&ws.x0, l.n-1)
		} else {
			x0 = make([]float64, l.n-1)
		}
		for gi, node := range l.nodeOf {
			x0[gi] = warm[node]
		}
	}
	x, attempts, err := l.solveLadder(ctx, rhs, x0, ws)
	if err != nil {
		return nil, attempts, fmt.Errorf("sparse: laplacian solve: %w", err)
	}
	var out []float64
	if ws != nil {
		out = vec(&ws.out, l.n)
		out[l.ground] = 0
	} else {
		out = make([]float64, l.n)
	}
	for gi, node := range l.nodeOf {
		out[node] = x[gi]
	}
	return out, attempts, nil
}

// EffectiveResistance returns the two-terminal effective resistance between
// nodes s and t: inject +1 A at s, -1 A at t, and report V(s) - V(t).
func (l *Laplacian) EffectiveResistance(s, t int) (float64, error) {
	if s == t {
		return 0, nil
	}
	if s < 0 || s >= l.n || t < 0 || t >= l.n {
		return 0, fmt.Errorf("sparse: effective resistance nodes (%d,%d) out of range", s, t)
	}
	b := make([]float64, l.n)
	b[s] = 1
	b[t] = -1
	v, err := l.Solve(b, nil)
	if err != nil {
		return 0, err
	}
	return v[s] - v[t], nil
}
