package sparse

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sprout/internal/faultinject"
)

// ErrNoConvergence is returned when the iterative solver fails to reach the
// requested tolerance within the iteration budget.
var ErrNoConvergence = errors.New("sparse: conjugate gradient did not converge")

// ErrBreakdown is returned (wrapped, with the offending pᵀAp value) when
// the CG recurrence breaks down, which signals a matrix that is not
// symmetric positive definite.
var ErrBreakdown = errors.New("sparse: CG breakdown (matrix not SPD?)")

// ctxCheckStride is how many CG iterations run between context
// cancellation checks; one check per iteration would be noise next to the
// sparse mat-vec, but a stride keeps the response latency bounded.
const ctxCheckStride = 16

// CGStats reports what one CG invocation actually did. The residual is
// captured from the convergence test the iteration already computes, so
// filling the struct adds no arithmetic to the solve.
type CGStats struct {
	// Iterations is the number of iterations performed.
	Iterations int
	// Residual is the last relative residual ‖b-Ax‖/‖b‖ the iteration
	// evaluated (NaN when the solve never reached a residual check).
	Residual float64
}

// CGOptions configures the preconditioned conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖b-Ax‖/‖b‖. Zero selects 1e-10.
	// Negative or NaN values are rejected.
	Tol float64
	// MaxIter caps the iteration count. Zero selects 10*n + 100. Negative
	// values are rejected.
	MaxIter int
	// Precond is the preconditioner diagonal (Jacobi). Nil disables
	// preconditioning.
	Precond []float64
	// Apply, when non-nil, is a general preconditioner dst = M⁻¹r (e.g.
	// IC(0)); it takes precedence over Precond.
	Apply func(dst, r []float64)
	// Stats, when non-nil, receives the iteration count and final
	// residual of the solve — telemetry for the fallback ladder and the
	// observability layer.
	Stats *CGStats
	// Work, when non-nil, supplies the iteration vectors so repeated
	// solves allocate nothing. The returned solution then aliases the
	// workspace and is only valid until its next use. The arithmetic is
	// identical either way — the buffers are fully (re)initialized before
	// use.
	Work *CGWork
}

// validate rejects option values that would loop forever (negative Tol
// never satisfied by a residual check) or never iterate (negative
// MaxIter).
func (o CGOptions) validate() error {
	if o.MaxIter < 0 {
		return fmt.Errorf("sparse: CG MaxIter %d is negative; use 0 for the default budget", o.MaxIter)
	}
	if o.Tol < 0 || math.IsNaN(o.Tol) {
		return fmt.Errorf("sparse: CG Tol %g must be a non-negative number; use 0 for the default 1e-10", o.Tol)
	}
	return nil
}

// CG solves A*x = b without cancellation support; see CGCtx.
func CG(a Matrix, b, x0 []float64, opt CGOptions) ([]float64, int, error) {
	return CGCtx(context.Background(), a, b, x0, opt)
}

// CGCtx solves A*x = b for symmetric positive definite A using the
// conjugate gradient method with optional Jacobi preconditioning. x0 seeds
// the iteration when non-nil (warm starts matter: SmartGrow re-solves
// nearly identical systems every iteration). It returns the solution and
// the number of iterations performed. The context is checked periodically;
// on cancellation the iteration aborts and ctx.Err() is returned.
//
// On ErrNoConvergence the best iterate found so far is still returned
// alongside the error, so callers can inspect the residual or hand the
// partial solution to a fallback.
func CGCtx(ctx context.Context, a Matrix, b, x0 []float64, opt CGOptions) ([]float64, int, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, 0, fmt.Errorf("sparse: CG rhs dim %d, want %d", len(b), n)
	}
	if err := opt.validate(); err != nil {
		return nil, 0, err
	}
	if err := faultinject.Check(faultinject.SiteCG); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 10*n + 100
	}

	// setStats publishes the telemetry before every return; lastRes is
	// reused from the convergence checks, so this costs nothing extra.
	lastRes := math.NaN()
	setStats := func(iters int) {
		if opt.Stats != nil {
			*opt.Stats = CGStats{Iterations: iters, Residual: lastRes}
		}
	}

	var x, r []float64
	if opt.Work != nil {
		x = vec(&opt.Work.x, n)
		for i := range x {
			x[i] = 0
		}
		r = vec(&opt.Work.r, n)
	} else {
		x = make([]float64, n)
		r = make([]float64, n)
	}
	if x0 != nil {
		copy(x, x0)
	}
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := norm2(b)
	if normB == 0 {
		lastRes = 0
		setStats(0)
		for i := range x {
			x[i] = 0
		}
		return x, 0, nil // b = 0 ⇒ x = 0
	}
	lastRes = norm2(r) / normB
	if lastRes <= tol {
		setStats(0)
		return x, 0, nil
	}

	precond := opt.Apply
	if precond == nil {
		diag := opt.Precond
		precond = func(dst, r []float64) { applyJacobi(dst, r, diag) }
	}
	var z, p, ap []float64
	if opt.Work != nil {
		z = vec(&opt.Work.z, n)
		p = vec(&opt.Work.p, n)
		ap = vec(&opt.Work.ap, n)
	} else {
		z = make([]float64, n)
		p = make([]float64, n)
		ap = make([]float64, n)
	}
	precond(z, r)
	copy(p, z)
	rz := dot(r, z)

	for it := 1; it <= maxIter; it++ {
		if it%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				setStats(it)
				return nil, it, err
			}
		}
		a.MulVec(ap, p)
		pap := dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			setStats(it)
			return nil, it, fmt.Errorf("sparse: pᵀAp=%g at iteration %d: %w", pap, it, ErrBreakdown)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		lastRes = norm2(r) / normB
		if lastRes <= tol {
			setStats(it)
			return x, it, nil
		}
		precond(z, r)
		rzNext := dot(r, z)
		beta := rzNext / rz
		rz = rzNext
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	setStats(maxIter)
	return x, maxIter, ErrNoConvergence
}

func applyJacobi(dst, r, diag []float64) {
	if diag == nil {
		copy(dst, r)
		return
	}
	for i := range r {
		if diag[i] != 0 {
			dst[i] = r[i] / diag[i]
		} else {
			dst[i] = r[i]
		}
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}
