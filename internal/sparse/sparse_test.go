package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestBuilderAccumulates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(2, 2, -1)
	b.Add(1, 0, 4)
	m := b.Build()
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("duplicate accumulation: got %g, want 5", got)
	}
	if got := m.At(1, 0); got != 4 {
		t.Fatalf("At(1,0) = %g, want 4", got)
	}
	if got := m.At(2, 2); got != -1 {
		t.Fatalf("At(2,2) = %g, want -1", got)
	}
	if got := m.At(2, 0); got != 0 {
		t.Fatalf("missing entry must read 0, got %g", got)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
}

func TestBuilderDropsCancelledZeros(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1.5)
	b.Add(0, 0, -1.5)
	b.Add(1, 1, 2)
	m := b.Build()
	if m.NNZ() != 1 {
		t.Fatalf("cancelled entry must be dropped, nnz = %d", m.NNZ())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	NewBuilder(2).Add(2, 0, 1)
}

func TestCSRMulVec(t *testing.T) {
	// [2 1; 0 3] * [1 2] = [4 6]
	b := NewBuilder(2)
	b.Add(0, 0, 2)
	b.Add(0, 1, 1)
	b.Add(1, 1, 3)
	m := b.Build()
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 2})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("MulVec = %v, want [4 6]", dst)
	}
}

func TestDenseCholeskySolve(t *testing.T) {
	// SPD matrix [4 2; 2 3], b = [8 7] -> x = [1.25, 1.5]
	d := NewDense(2)
	d.Set(0, 0, 4)
	d.Set(0, 1, 2)
	d.Set(1, 0, 2)
	d.Set(1, 1, 3)
	ch, err := d.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve([]float64{8, 7})
	if !almostEq(x[0], 1.25, 1e-12) || !almostEq(x[1], 1.5, 1e-12) {
		t.Fatalf("solve = %v, want [1.25 1.5]", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 1)
	d.Set(1, 1, -1)
	if _, err := d.Cholesky(); err == nil {
		t.Fatal("indefinite matrix must be rejected")
	}
}

func TestCGMatchesCholesky(t *testing.T) {
	// Random SPD system A = Mᵀ M + I; CG and Cholesky must agree.
	rng := rand.New(rand.NewSource(17))
	n := 30
	d := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			d.Addd(i, j, v)
		}
	}
	// A = L Lᵀ + n*I (SPD by construction).
	a := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += d.At(i, k) * d.At(j, k)
			}
			a.Set(i, j, s)
		}
		a.Addd(i, i, float64(n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ch, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	want := ch.Solve(b)
	got, iters, err := CG(a, b, nil, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Fatal("CG should iterate for a random rhs")
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-8) {
			t.Fatalf("x[%d]: CG %g vs Cholesky %g", i, got[i], want[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	x, iters, err := CG(b.Build(), []float64{0, 0}, nil, CGOptions{})
	if err != nil || iters != 0 {
		t.Fatalf("zero rhs: err=%v iters=%d", err, iters)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("zero rhs must give zero solution, got %v", x)
	}
}

func TestCGWarmStart(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 2)
	b.Add(1, 1, 5)
	m := b.Build()
	rhs := []float64{4, 10}
	exact := []float64{2, 2}
	_, cold, err := CG(m, rhs, nil, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := CG(m, rhs, exact, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm != 0 {
		t.Fatalf("warm start at the solution must take 0 iterations, took %d", warm)
	}
	if cold == 0 {
		t.Fatal("cold start must iterate")
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	if _, _, err := CG(b.Build(), []float64{1}, nil, CGOptions{}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 1)
	d.Set(1, 1, -2)
	if _, _, err := CG(d, []float64{0, 1}, nil, CGOptions{}); err == nil {
		t.Fatal("CG must report breakdown on an indefinite matrix")
	}
}

func TestLaplacianSeriesResistors(t *testing.T) {
	// 0 -1Ω- 1 -1Ω- 2: R(0,2) = 2.
	lap, err := NewLaplacian(3, []WeightedEdge{{0, 1, 1}, {1, 2, 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := lap.EffectiveResistance(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 2, 1e-9) {
		t.Fatalf("series resistance = %g, want 2", r)
	}
}

func TestLaplacianParallelResistors(t *testing.T) {
	// Two 1Ω conductors in parallel between 0 and 1: R = 0.5.
	lap, err := NewLaplacian(2, []WeightedEdge{{0, 1, 1}, {0, 1, 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := lap.EffectiveResistance(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 0.5, 1e-9) {
		t.Fatalf("parallel resistance = %g, want 0.5", r)
	}
}

func TestLaplacianWheatstoneBridge(t *testing.T) {
	// Balanced Wheatstone bridge, all 1Ω: R(s,t) = 1.
	// s=0, t=3, mid nodes 1, 2, bridge 1-2.
	edges := []WeightedEdge{
		{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}, {1, 2, 1},
	}
	lap, err := NewLaplacian(4, edges, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := lap.EffectiveResistance(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-9) {
		t.Fatalf("balanced bridge resistance = %g, want 1", r)
	}
}

func TestLaplacianGridAgainstCholesky(t *testing.T) {
	// 5x5 grid graph, unit conductances: CG solve must match the dense
	// Cholesky solve of the grounded Laplacian.
	const w, h = 5, 5
	id := func(x, y int) int { return y*w + x }
	var edges []WeightedEdge
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, WeightedEdge{id(x, y), id(x+1, y), 1})
			}
			if y+1 < h {
				edges = append(edges, WeightedEdge{id(x, y), id(x, y+1), 1})
			}
		}
	}
	ground := id(w-1, h-1)
	lap, err := NewLaplacian(w*h, edges, ground)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, w*h)
	b[id(0, 0)] = 1
	b[ground] = -1
	got, err := lap.Solve(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := lap.Matrix().Dense().Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, w*h-1)
	rhs[0] = 1 // node (0,0) maps to grounded index 0
	want := ch.Solve(rhs)
	for gi, node := 0, 0; node < w*h; node++ {
		if node == ground {
			continue
		}
		if !almostEq(got[node], want[gi], 1e-7) {
			t.Fatalf("node %d: CG %g vs Cholesky %g", node, got[node], want[gi])
		}
		gi++
	}
}

func TestLaplacianRejectsBadInput(t *testing.T) {
	if _, err := NewLaplacian(1, nil, 0); err == nil {
		t.Fatal("n=1 must be rejected")
	}
	if _, err := NewLaplacian(3, nil, 5); err == nil {
		t.Fatal("ground out of range must be rejected")
	}
	if _, err := NewLaplacian(3, []WeightedEdge{{0, 0, 1}}, 0); err == nil {
		t.Fatal("self loop must be rejected")
	}
	if _, err := NewLaplacian(3, []WeightedEdge{{0, 1, -2}}, 0); err == nil {
		t.Fatal("negative weight must be rejected")
	}
	if _, err := NewLaplacian(3, []WeightedEdge{{0, 7, 1}}, 0); err == nil {
		t.Fatal("out-of-range edge must be rejected")
	}
}

func TestQuickEffectiveResistanceTriangleInequality(t *testing.T) {
	// Effective resistance is a metric: R(a,c) <= R(a,b) + R(b,c).
	rng := rand.New(rand.NewSource(23))
	f := func() bool {
		n := 4 + rng.Intn(5)
		var edges []WeightedEdge
		// Ring to guarantee connectivity, plus random chords.
		for i := 0; i < n; i++ {
			edges = append(edges, WeightedEdge{i, (i + 1) % n, 0.5 + rng.Float64()})
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, WeightedEdge{u, v, 0.5 + rng.Float64()})
			}
		}
		lap, err := NewLaplacian(n, edges, 0)
		if err != nil {
			return false
		}
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		rab, err1 := lap.EffectiveResistance(a, b)
		rbc, err2 := lap.EffectiveResistance(b, c)
		rac, err3 := lap.EffectiveResistance(a, c)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return rac <= rab+rbc+1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(24))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRayleighMonotonicity(t *testing.T) {
	// Adding an edge can only decrease effective resistance.
	rng := rand.New(rand.NewSource(25))
	f := func() bool {
		n := 4 + rng.Intn(4)
		var edges []WeightedEdge
		for i := 0; i < n; i++ {
			edges = append(edges, WeightedEdge{i, (i + 1) % n, 0.5 + rng.Float64()})
		}
		lap1, err := NewLaplacian(n, edges, 0)
		if err != nil {
			return false
		}
		u, v := rng.Intn(n), rng.Intn(n)
		for u == v {
			v = rng.Intn(n)
		}
		more := append(append([]WeightedEdge(nil), edges...), WeightedEdge{u, v, 1})
		lap2, err := NewLaplacian(n, more, 0)
		if err != nil {
			return false
		}
		s, tt := rng.Intn(n), rng.Intn(n)
		r1, err1 := lap1.EffectiveResistance(s, tt)
		r2, err2 := lap2.EffectiveResistance(s, tt)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2 <= r1+1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(26))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDenseMulVecMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := NewBuilder(8)
	for k := 0; k < 20; k++ {
		b.Add(rng.Intn(8), rng.Intn(8), rng.NormFloat64())
	}
	m := b.Build()
	d := m.Dense()
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 8)
	y2 := make([]float64, 8)
	m.MulVec(y1, x)
	d.MulVec(y2, x)
	for i := range y1 {
		if !almostEq(y1[i], y2[i], 1e-12) {
			t.Fatalf("CSR vs Dense MulVec differ at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}
