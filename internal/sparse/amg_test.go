package sparse

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"sprout/internal/faultinject"
)

func TestAMGHierarchyCoarsensGrid(t *testing.T) {
	lap, _ := gridLaplacian(t, 40, 40)
	m, err := NewAMG(lap.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	if m.Levels() < 2 {
		t.Fatalf("levels = %d, want a real hierarchy on a 1599-unknown grid", m.Levels())
	}
	if m.CoarseDim() > amgCoarseMax {
		t.Fatalf("coarse dim = %d, want <= %d", m.CoarseDim(), amgCoarseMax)
	}
	// Determinism: a second construction yields the same shape.
	m2, err := NewAMG(lap.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Levels() != m.Levels() || m2.CoarseDim() != m.CoarseDim() {
		t.Fatalf("hierarchy not deterministic: (%d,%d) vs (%d,%d)",
			m.Levels(), m.CoarseDim(), m2.Levels(), m2.CoarseDim())
	}
}

// TestAMGApplierIsSymmetric checks the preconditioner property CG depends
// on: B must satisfy <B r1, r2> = <r1, B r2> (a symmetric V-cycle).
func TestAMGApplierIsSymmetric(t *testing.T) {
	lap, _ := gridLaplacian(t, 20, 20)
	m, err := NewAMG(lap.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	ap := m.NewApplier()
	n := lap.Matrix().Dim()
	rng := rand.New(rand.NewSource(7))
	r1 := make([]float64, n)
	r2 := make([]float64, n)
	for i := 0; i < n; i++ {
		r1[i] = rng.NormFloat64()
		r2[i] = rng.NormFloat64()
	}
	z1 := make([]float64, n)
	z2 := make([]float64, n)
	ap.Apply(z1, r1)
	ap.Apply(z2, r2)
	a := dot(z1, r2)
	b := dot(z2, r1)
	if math.Abs(a-b) > 1e-9*(math.Abs(a)+math.Abs(b)+1) {
		t.Fatalf("V-cycle not symmetric: <Br1,r2>=%g <r1,Br2>=%g", a, b)
	}
	// And positive on a nonzero residual.
	if dot(z1, r1) <= 0 {
		t.Fatalf("V-cycle not positive: <Br,r>=%g", dot(z1, r1))
	}
}

func TestCGWithAMGMatchesOracle(t *testing.T) {
	lap, b := gridLaplacian(t, 24, 24)
	want := denseOracle(t, lap, b)
	m, err := NewAMG(lap.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, lap.N()-1)
	for i := range rhs {
		rhs[i] = b[i+1] // ground is node 0
	}
	x, iters, err := CG(lap.Matrix(), rhs, nil, CGOptions{Apply: m.NewApplier().Apply})
	if err != nil {
		t.Fatalf("CG with AMG preconditioner: %v (%d iterations)", err, iters)
	}
	for i := range x {
		if !almostEq(x[i], want[i+1], 1e-6) {
			t.Fatalf("x[%d]: amg-cg %g vs oracle %g", i, x[i], want[i+1])
		}
	}
	// The hierarchy should also beat plain Jacobi on iteration count —
	// that is the point of the rung.
	_, jacIters, err := CG(lap.Matrix(), rhs, nil, CGOptions{Precond: lap.Matrix().Diag()})
	if err != nil {
		t.Fatal(err)
	}
	if iters >= jacIters {
		t.Fatalf("amg iters %d >= jacobi iters %d; hierarchy buys nothing", iters, jacIters)
	}
}

// TestLadderEscalatesToAMGRung forces the primary rung to fail on a board
// above amgMinDim and checks the AMG rung recovers at full tolerance
// before the relaxed rung would have accepted a degraded answer.
func TestLadderEscalatesToAMGRung(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	oldMin := amgMinDim
	amgMinDim = 32
	defer func() { amgMinDim = oldMin }()

	lap, b := gridLaplacian(t, 10, 10)
	want := denseOracle(t, lap, b)
	faultinject.Arm(faultinject.SiteCG, 1, func() error { return ErrNoConvergence })
	got, attempts, err := lap.SolveAttemptsCtx(context.Background(), b, nil)
	if err != nil {
		t.Fatalf("ladder did not recover: %v", err)
	}
	if len(attempts) != 2 {
		t.Fatalf("attempts = %d, want failed cg-ic0 then cg-amg", len(attempts))
	}
	if attempts[0].Rung != RungCG || attempts[0].Err == nil {
		t.Fatalf("attempt 0 = %+v, want failed %s", attempts[0], RungCG)
	}
	if attempts[1].Rung != RungCGAMG || attempts[1].Err != nil {
		t.Fatalf("attempt 1 = %+v, want accepted %s", attempts[1], RungCGAMG)
	}
	if attempts[1].Residual > 1e-10 {
		t.Fatalf("amg rung residual %g, want full tolerance", attempts[1].Residual)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-6) {
			t.Fatalf("x[%d]: %g vs oracle %g", i, got[i], want[i])
		}
	}
}

// TestLadderAMGRungSkippedBelowMinDim pins the historic ladder shape for
// small systems: rung traces stay [cg-ic0, cg-jacobi-relaxed, dense].
func TestLadderAMGRungSkippedBelowMinDim(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	old := denseFallbackMax
	denseFallbackMax = 1
	defer func() { denseFallbackMax = old }()

	lap, b := gridLaplacian(t, 6, 6)
	faultinject.Arm(faultinject.SiteCG, 0, func() error { return ErrNoConvergence })
	_, err := lap.Solve(b, nil)
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("want *SolveError, got %v", err)
	}
	for _, a := range se.Attempts {
		if a.Rung == RungCGAMG {
			t.Fatalf("cg-amg ran on a %d-unknown system below amgMinDim=%d", lap.Matrix().Dim(), amgMinDim)
		}
	}
}
