package lockcheck_test

import (
	"testing"

	"sprout/internal/lint/analysistest"
	"sprout/internal/lint/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "a")
}
