// Package a is the lockcheck corpus: pairing along all paths, blocking
// while holding, and copylocks — positive and negative cases.
package a

import (
	"net/http"
	"os"
	"sync"
)

type guarded struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	n    int
	ch   chan int
	file *os.File
	cli  *http.Client
}

// --- pairing: negatives (clean) ---

// DeferPair is the canonical clean shape.
func (g *guarded) DeferPair() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// ExplicitPairAllPaths unlocks on both the early return and the main
// path.
func (g *guarded) ExplicitPairAllPaths(x bool) int {
	g.mu.Lock()
	if x {
		g.mu.Unlock()
		return 0
	}
	g.n++
	g.mu.Unlock()
	return g.n
}

// PanicPathExempt never unlocks on the dying path; panic exits the
// program, not the function, so it is not a leak.
func (g *guarded) PanicPathExempt(x bool) {
	g.mu.Lock()
	if x {
		panic("poisoned")
	}
	g.mu.Unlock()
}

// RWPair pairs the read side.
func (g *guarded) RWPair() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

// ConditionalLockWithDefer locks and registers its release on the same
// path; joining with the unlocked path is not a pairing violation.
func (g *guarded) ConditionalLockWithDefer(x bool) {
	if x {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.n++
	}
	g.n--
}

// DeferredClosureUnlock releases inside a deferred literal.
func (g *guarded) DeferredClosureUnlock() {
	g.mu.Lock()
	defer func() {
		g.n = 0
		g.mu.Unlock()
	}()
	g.n++
}

// --- pairing: positives ---

// NeverUnlocked holds the lock to return on every path.
func (g *guarded) NeverUnlocked() int {
	g.mu.Lock() // want `g\.mu\.Lock\(\) is never released in NeverUnlocked`
	return g.n
}

// EarlyReturnLeak misses the unlock on the early return only.
func (g *guarded) EarlyReturnLeak(x bool) int {
	g.mu.Lock() // want `released on some paths through EarlyReturnLeak but not others`
	if x {
		return 0
	}
	g.mu.Unlock()
	return g.n
}

// RWSideMismatch releases the write side it never took; the read side
// stays held.
func (g *guarded) RWSideMismatch() int {
	g.rw.RLock() // want `g\.rw\.RLock\(\) is never released in RWSideMismatch`
	g.rw.Unlock()
	return g.n
}

// --- blocking while holding ---

// SendWhileHolding blocks on a channel inside the critical section.
func (g *guarded) SendWhileHolding(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- v // want `channel send while holding g\.mu`
}

// RecvWhileHolding blocks on a receive.
func (g *guarded) RecvWhileHolding() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want `channel receive while holding g\.mu`
}

// SelectWhileHolding blocks on a defaultless select.
func (g *guarded) SelectWhileHolding() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select with no default case while holding g\.mu`
	case v := <-g.ch:
		return v
	}
}

// SyncWhileHolding fsyncs under the lock.
func (g *guarded) SyncWhileHolding() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.file.Sync() // want `\(\*os\.File\)\.Sync while holding g\.mu`
}

// RoundTripWhileHolding performs an HTTP request under the lock.
func (g *guarded) RoundTripWhileHolding(req *http.Request) (*http.Response, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cli.Do(req) // want `HTTP round-trip \(\(\*http\.Client\)\.Do\) while holding g\.mu`
}

// UnlockedBeforeBlocking releases first: clean.
func (g *guarded) UnlockedBeforeBlocking() int {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	return <-g.ch
}

// NonBlockingSelect has a default case: clean.
func (g *guarded) NonBlockingSelect() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.ch:
		return v
	default:
		return 0
	}
}

// --- copylocks ---

// ByValueParam copies the receiver's mutex into the callee.
func ByValueParam(g guarded) int { // want `parameter passes a value containing sync\.Mutex by value`
	return g.n
}

// ByValueReturn forks the lock on the way out.
func ByValueReturn() guarded { // want `result passes a value containing sync\.Mutex by value`
	return guarded{}
}

// ValueReceiver copies on every call.
func (g guarded) ValueReceiver() int { // want `receiver passes a value containing sync\.Mutex by value`
	return g.n
}

type wrapsWG struct {
	wg sync.WaitGroup
}

// CopyArg copies a WaitGroup-bearing value at the call site.
func CopyArg(p *wrapsWG) {
	use(*p) // want `call copies a value containing sync\.WaitGroup`
}

func use(w any) { _ = w }

// PointerParam is the clean shape.
func PointerParam(g *guarded) int {
	return g.n
}
