// Package lockcheck enforces SPROUT's mutex discipline with a forward
// dataflow analysis over the cfg pass:
//
//  1. Pairing along all paths: a sync.Mutex/RWMutex locked in a function
//     must be unlocked on every path to return — either explicitly on
//     each path or with a defer. A lock released on some paths but not
//     others (the early-return bug) is reported at the Lock call.
//  2. No blocking while holding: a channel send/receive, a select
//     without a default, an (*os.File).Sync, or an HTTP round-trip
//     executed while a mutex is held couples the critical section to an
//     unbounded external wait — the drain-deadline and WAL-latency
//     guarantees in DESIGN §5b assume critical sections are short.
//  3. Copylocks: a value containing a sync.Mutex, sync.RWMutex, or
//     sync.WaitGroup passed, received, or returned by value silently
//     forks the lock state; such types must travel by pointer.
//
// The analysis is intraprocedural: helpers documented as "callers hold
// mu" neither lock nor unlock and pass untouched, and a lock handed off
// across a call boundary is out of scope (suppress with a justified
// //lint:ignore if a function intentionally returns holding its lock).
// Paths that end in panic or os.Exit never reach the CFG's exit block,
// so a critical section aborted by panic is not a false "missing
// unlock".
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sprout/internal/lint/analysis"
	"sprout/internal/lint/cfg"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:     "lockcheck",
	Doc:      "mutexes must be released on every path, never held across blocking operations, and never copied by value",
	Requires: []*analysis.Analyzer{cfg.Analyzer},
	Run:      run,
}

// abs is the per-mutex abstract state.
type abs int8

const (
	absNo    abs = iota // not held / not registered
	absYes              // held / registered on every path here
	absMixed            // held / registered on some paths only
)

func joinAbs(a, b abs) abs {
	if a == b {
		return a
	}
	return absMixed
}

// lockKey names one mutex as seen from the function: the receiver
// expression text plus the read/write side of an RWMutex.
type lockKey struct {
	expr string
	read bool
}

func (k lockKey) lockName() string {
	if k.read {
		return k.expr + ".RLock"
	}
	return k.expr + ".Lock"
}

func (k lockKey) unlockName() string {
	if k.read {
		return k.expr + ".RUnlock"
	}
	return k.expr + ".Unlock"
}

// state is the dataflow fact: which mutexes are held and which have a
// deferred unlock registered. Maps are treated as immutable; transfer
// copies before writing.
type state struct {
	held map[lockKey]abs
	def  map[lockKey]abs
}

func (s state) clone() state {
	h := make(map[lockKey]abs, len(s.held))
	for k, v := range s.held {
		h[k] = v
	}
	d := make(map[lockKey]abs, len(s.def))
	for k, v := range s.def {
		d[k] = v
	}
	return state{held: h, def: d}
}

func equalAbsMap(a, b map[lockKey]abs) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func joinAbsMap(a, b map[lockKey]abs) map[lockKey]abs {
	out := make(map[lockKey]abs, len(a)+len(b))
	for k, va := range a {
		out[k] = joinAbs(va, b[k])
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out[k] = joinAbs(absNo, vb)
		}
	}
	// Normalize: drop absNo entries so Equal treats absent and absNo
	// alike.
	for k, v := range out {
		if v == absNo {
			delete(out, k)
		}
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	graphs := pass.ResultOf[cfg.Analyzer].(*cfg.Result)
	for _, g := range graphs.All {
		checkGraph(pass, g)
	}
	checkCopylocks(pass)
	return nil, nil
}

// checkGraph runs the held/deferred fixpoint over one function and
// reports pairing and blocking violations.
func checkGraph(pass *analysis.Pass, g *cfg.Graph) {
	if fd, ok := g.Fn.(*ast.FuncDecl); ok {
		switch fd.Name.Name {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock":
			return // lock-wrapper methods hold or release by design
		}
	}
	a := &checker{pass: pass, g: g, lockPos: map[lockKey]token.Pos{}}
	// Quick reject: no Lock calls anywhere in the function.
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Inspect(n, func(sub ast.Node) bool {
				if call, ok := sub.(*ast.CallExpr); ok {
					if _, _, op := a.lockOp(call); op == opLock {
						found = true
					}
				}
				return !found
			})
		}
	}
	if !found {
		return
	}

	empty := state{held: map[lockKey]abs{}, def: map[lockKey]abs{}}
	in := cfg.Forward(g, cfg.Problem[state]{
		Entry: empty,
		Transfer: func(b *cfg.Block, in state) state {
			return a.transferBlock(b, in, false)
		},
		Join: func(x, y state) state {
			return state{held: joinAbsMap(x.held, y.held), def: joinAbsMap(x.def, y.def)}
		},
		Equal: func(x, y state) bool {
			return equalAbsMap(x.held, y.held) && equalAbsMap(x.def, y.def)
		},
	})

	// Reporting pass: replay the stable states over reachable blocks.
	for _, b := range reachableBlocks(g) {
		a.transferBlock(b, in[b], true)
	}

	// Exit check: anything still held (and without a deferred release)
	// escaped a path to return.
	exit := in[g.Exit]
	var keys []lockKey
	for k, h := range exit.held {
		if h == absNo || exit.def[k] != absNo {
			continue // released, or a defer will release it
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].lockName() < keys[j].lockName() })
	for _, k := range keys {
		pos := a.lockPos[k]
		switch exit.held[k] {
		case absYes:
			pass.Reportf(pos, "%s() is never released in %s: add %s() or defer it",
				k.lockName(), g.Name, k.unlockName())
		case absMixed:
			pass.Reportf(pos, "%s() is released on some paths through %s but not others (early return without %s()?): use defer %s()",
				k.lockName(), g.Name, k.unlockName(), k.unlockName())
		}
	}
}

func reachableBlocks(g *cfg.Graph) []*cfg.Block {
	seen := map[*cfg.Block]bool{}
	var order []*cfg.Block
	var walk func(b *cfg.Block)
	walk = func(b *cfg.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		order = append(order, b)
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry())
	sort.Slice(order, func(i, j int) bool { return order[i].Index < order[j].Index })
	return order
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

type checker struct {
	pass    *analysis.Pass
	g       *cfg.Graph
	lockPos map[lockKey]token.Pos
}

// lockOp classifies a call as Lock/Unlock (incl. the R variants) on a
// sync.Mutex or sync.RWMutex and returns the mutex key.
func (c *checker) lockOp(call *ast.CallExpr) (key lockKey, pos token.Pos, op lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return key, 0, opNone
	}
	var read bool
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op, read = opLock, true
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op, read = opUnlock, true
	default:
		return key, 0, opNone
	}
	recv := c.pass.TypesInfo.Types[sel.X].Type
	if recv == nil || !isSyncMutex(recv) {
		return key, 0, opNone
	}
	return lockKey{expr: types.ExprString(sel.X), read: read}, call.Pos(), op
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// transferBlock interprets one block's nodes over st. With report set it
// emits diagnostics (used only after the fixpoint, on stable states).
func (c *checker) transferBlock(b *cfg.Block, st state, report bool) state {
	cur := st.clone()
	for _, n := range b.Nodes {
		cur = c.node(n, cur, report)
	}
	return cur
}

func (c *checker) node(n ast.Node, st state, report bool) state {
	switch n := n.(type) {
	case *ast.DeferStmt:
		return c.deferStmt(n, st)
	case *ast.SelectStmt:
		if !hasDefaultClause(n) && report {
			c.reportBlocking(n.Pos(), st, "select with no default case")
		}
		return st
	}
	// A bare channel-typed node is a range-loop header (`for range ch`):
	// a blocking receive.
	if e, ok := n.(ast.Expr); ok && report {
		if t := c.pass.TypesInfo.Types[e].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				c.reportBlocking(e.Pos(), st, "range over channel")
			}
		}
	}
	// A select comm statement's channel op is the select's own blocking
	// point, already reported on the SelectStmt node.
	isComm := c.g.SelectComms[n]
	cfg.Inspect(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.DeferStmt:
			st = c.deferStmt(sub, st)
			return false
		case *ast.SendStmt:
			if report && !isComm {
				c.reportBlocking(sub.Arrow, st, "channel send")
			}
		case *ast.UnaryExpr:
			if sub.Op == token.ARROW && report && !isComm {
				c.reportBlocking(sub.OpPos, st, "channel receive")
			}
		case *ast.CallExpr:
			if key, pos, op := c.lockOp(sub); op != opNone {
				held := make(map[lockKey]abs, len(st.held))
				for k, v := range st.held {
					held[k] = v
				}
				if op == opLock {
					held[key] = absYes
					if _, ok := c.lockPos[key]; !ok {
						c.lockPos[key] = pos
					}
				} else {
					delete(held, key)
				}
				st = state{held: held, def: st.def}
				return true
			}
			if report {
				if desc := blockingCall(c.pass, sub); desc != "" {
					c.reportBlocking(sub.Pos(), st, desc)
				}
			}
		}
		return true
	})
	return st
}

// deferStmt registers deferred unlocks: `defer mu.Unlock()` directly, or
// any unlock inside a deferred function literal.
func (c *checker) deferStmt(d *ast.DeferStmt, st state) state {
	reg := func(st state, key lockKey) state {
		def := make(map[lockKey]abs, len(st.def))
		for k, v := range st.def {
			def[k] = v
		}
		def[key] = absYes
		return state{held: st.held, def: def}
	}
	if key, _, op := c.lockOp(d.Call); op == opUnlock {
		return reg(st, key)
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(sub ast.Node) bool {
			if call, ok := sub.(*ast.CallExpr); ok {
				if key, _, op := c.lockOp(call); op == opUnlock {
					st = reg(st, key)
				}
			}
			return true
		})
	}
	return st
}

func (c *checker) reportBlocking(pos token.Pos, st state, what string) {
	var held []string
	for k, v := range st.held {
		if v == absYes {
			held = append(held, k.expr)
		}
	}
	if len(held) == 0 {
		return
	}
	sort.Strings(held)
	c.pass.Reportf(pos, "%s while holding %s: blocking operations inside a critical section risk deadlock; unlock first or move the wait out",
		what, strings.Join(held, ", "))
}

func hasDefaultClause(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies calls that block on the outside world:
// (*os.File).Sync and HTTP round-trips.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	// Package-level net/http round-trips.
	if pkg, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); ok {
			if obj.Imported().Path() == "net/http" {
				switch name {
				case "Get", "Post", "PostForm", "Head":
					return "HTTP round-trip (http." + name + ")"
				}
				return ""
			}
		}
	}
	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil {
		return ""
	}
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	path, tname := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case path == "os" && tname == "File" && name == "Sync":
		return "(*os.File).Sync"
	case path == "net/http" && tname == "Client" && (name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		return "HTTP round-trip ((*http.Client)." + name + ")"
	}
	return ""
}

// checkCopylocks reports lock-bearing values passed, received, or
// returned by value — signatures first, then call arguments.
func checkCopylocks(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldList(pass, n.Recv, "receiver")
				}
				checkFuncType(pass, n.Type)
			case *ast.FuncLit:
				checkFuncType(pass, n.Type)
			case *ast.CallExpr:
				for _, arg := range n.Args {
					tv, ok := pass.TypesInfo.Types[arg]
					// Type arguments (new(sync.Mutex), make chans of locks)
					// construct, not copy.
					if !ok || tv.IsType() || tv.Type == nil {
						continue
					}
					if containsLock(tv.Type) {
						pass.Reportf(arg.Pos(), "call copies a value containing %s: pass a pointer instead", lockIn(tv.Type))
					}
				}
			}
			return true
		})
	}
}

func checkFuncType(pass *analysis.Pass, ft *ast.FuncType) {
	checkFieldList(pass, ft.Params, "parameter")
	checkFieldList(pass, ft.Results, "result")
}

func checkFieldList(pass *analysis.Pass, fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t != nil && containsLock(t) {
			pass.Reportf(field.Type.Pos(), "%s passes a value containing %s by value: use a pointer", what, lockIn(t))
		}
	}
}

// containsLock walks value-embedded types (structs, arrays, named) for
// sync.Mutex/RWMutex/WaitGroup. Pointers, slices, maps, channels and
// interfaces carry references, not copies, and stop the walk.
func containsLock(t types.Type) bool { return lockIn(t) != "" }

func lockIn(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s := lockIn(u.Field(i).Type()); s != "" {
				return s
			}
		}
	case *types.Array:
		return lockIn(u.Elem())
	}
	return ""
}
