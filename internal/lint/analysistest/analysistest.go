// Package analysistest runs a lint analyzer over a GOPATH-style testdata
// tree and checks its diagnostics against `// want` comment expectations,
// mirroring the golang.org/x/tools/go/analysis/analysistest contract: a
// comment of the form
//
//	code() // want `regexp` "another regexp"
//
// declares that the analyzer must report, on that line, one diagnostic
// matching each listed pattern — and no others. Lines without a want
// comment must produce no diagnostics. Both double-quoted and backquoted
// patterns are accepted.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sprout/internal/lint/analysis"
	"sprout/internal/lint/loader"
)

// wantRx extracts quoted or backquoted patterns from a want comment.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one want pattern at a file line.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// Run loads each package path from dir/src, applies the analyzer, and
// compares diagnostics with the packages' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld, err := loader.New(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	src, err := filepath.Abs(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	ld.ExtraRoots = []string{src}

	for _, path := range pkgPaths {
		pkg, err := ld.Load(path)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", path, err)
		}

		wants := map[string][]*expectation{} // "file:line" -> patterns
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
						continue
					}
					pos := ld.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantRx.FindAllString(text[idx+len("want "):], -1) {
						pat, err := unquote(m)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", key, m, err)
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], &expectation{rx: rx})
					}
				}
			}
		}

		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			ResultOf:  map[*analysis.Analyzer]any{},
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		// Run Requires dependencies first, exactly as the driver does;
		// their diagnostics (normally none — the cfg pass only computes)
		// are checked against want comments too.
		for _, req := range requirementOrder(a) {
			rpass := *pass
			rpass.Analyzer = req
			rpass.ResultOf = map[*analysis.Analyzer]any{}
			for _, rr := range req.Requires {
				rpass.ResultOf[rr] = pass.ResultOf[rr]
			}
			res, err := req.Run(&rpass)
			if err != nil {
				t.Fatalf("analysistest: requirement %s on %s: %v", req.Name, path, err)
			}
			pass.ResultOf[req] = res
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("analysistest: %s on %s: %v", a.Name, path, err)
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

		for _, d := range diags {
			pos := ld.Fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			exps := wants[key]
			match := false
			for _, e := range exps {
				if !e.matched && e.rx.MatchString(d.Message) {
					e.matched = true
					match = true
					break
				}
			}
			if !match {
				t.Errorf("%s: unexpected diagnostic: %s", relKey(key, src), d.Message)
			}
		}
		for key, exps := range wants {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s: expected diagnostic matching %q, got none", relKey(key, src), e.rx)
				}
			}
		}
	}
}

// requirementOrder returns a's transitive requirements in dependency
// order (requirements before dependents, a itself excluded).
func requirementOrder(a *analysis.Analyzer) []*analysis.Analyzer {
	var order []*analysis.Analyzer
	seen := map[*analysis.Analyzer]bool{a: true}
	var visit func(x *analysis.Analyzer)
	visit = func(x *analysis.Analyzer) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, req := range x.Requires {
			visit(req)
		}
		order = append(order, x)
	}
	for _, req := range a.Requires {
		visit(req)
	}
	return order
}

// unquote decodes a double-quoted or backquoted want token.
func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}

// relKey shortens file:line keys to be testdata-relative for readability.
func relKey(key, src string) string {
	if rel, err := filepath.Rel(src, key); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return key
}
