// Package a exercises the discarded-result rule against the real
// sprout/internal/geom and sprout/internal/sparse kernels.
package a

import (
	"sprout/internal/geom"
	"sprout/internal/sparse"
)

// DropClip discards a pure region operation: flagged.
func DropClip(a, b geom.Region) {
	a.Union(b) // want `result of geom.Union discarded`
}

// BlankClip hides the result behind the blank identifier: flagged.
func BlankClip(a, b geom.Region) {
	_ = a.Intersect(b) // want `result of geom.Intersect assigned to the blank identifier`
}

// UseClip is the accepted fix: the result flows onward.
func UseClip(a, b geom.Region) geom.Region {
	return a.Subtract(b)
}

// DropSolve throws away both the solution and the convergence error: flagged.
func DropSolve(m sparse.Matrix, rhs []float64) {
	sparse.CG(m, rhs, nil, sparse.CGOptions{}) // want `result of sparse.CG discarded`
}

// BlankSolve discards every result explicitly: flagged.
func BlankSolve(m sparse.Matrix, rhs []float64) {
	_, _, _ = sparse.CG(m, rhs, nil, sparse.CGOptions{}) // want `result of sparse.CG assigned to the blank identifier`
}

// UseSolve is the accepted fix: solution and error are consumed.
func UseSolve(m sparse.Matrix, rhs []float64) ([]float64, error) {
	x, _, err := sparse.CG(m, rhs, nil, sparse.CGOptions{})
	return x, err
}

// MutatorsAreFine: functions outside the must-use table keep working as
// statements.
func MutatorsAreFine(b *sparse.Builder) {
	b.Add(0, 0, 1.0)
}
