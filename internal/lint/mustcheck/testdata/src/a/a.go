// Package a exercises the discarded-result rule against the real
// sprout/internal/geom and sprout/internal/sparse kernels.
package a

import (
	"sprout/internal/geom"
	"sprout/internal/route"
	"sprout/internal/sparse"
)

// DropClip discards a pure region operation: flagged.
func DropClip(a, b geom.Region) {
	a.Union(b) // want `result of geom.Union discarded`
}

// BlankClip hides the result behind the blank identifier: flagged.
func BlankClip(a, b geom.Region) {
	_ = a.Intersect(b) // want `result of geom.Intersect assigned to the blank identifier`
}

// UseClip is the accepted fix: the result flows onward.
func UseClip(a, b geom.Region) geom.Region {
	return a.Subtract(b)
}

// DropSolve throws away both the solution and the convergence error: flagged.
func DropSolve(m sparse.Matrix, rhs []float64) {
	sparse.CG(m, rhs, nil, sparse.CGOptions{}) // want `result of sparse.CG discarded`
}

// BlankSolve discards every result explicitly: flagged.
func BlankSolve(m sparse.Matrix, rhs []float64) {
	_, _, _ = sparse.CG(m, rhs, nil, sparse.CGOptions{}) // want `result of sparse.CG assigned to the blank identifier`
}

// UseSolve is the accepted fix: solution and error are consumed.
func UseSolve(m sparse.Matrix, rhs []float64) ([]float64, error) {
	x, _, err := sparse.CG(m, rhs, nil, sparse.CGOptions{})
	return x, err
}

// DropWorkspaceSolve loses the session-path solve and its ladder trace:
// flagged.
func DropWorkspaceSolve(l *sparse.Laplacian, rhs []float64, ws *sparse.Workspace) {
	l.SolveAttemptsCtxWork(nil, rhs, nil, ws) // want `result of sparse.SolveAttemptsCtxWork discarded`
}

// DropReassemble throws away both the assembled Laplacian and the
// validation error: flagged.
func DropReassemble(l *sparse.Laplacian, edges []sparse.WeightedEdge) {
	_, _ = sparse.ReassembleLaplacian(l, 4, edges, 0) // want `result of sparse.ReassembleLaplacian assigned to the blank identifier`
}

// DropAMG discards the hierarchy and its breakdown error: flagged.
func DropAMG(m *sparse.CSR) {
	sparse.NewAMG(m) // want `result of sparse.NewAMG discarded`
}

// DropNodeCurrents loses the metric evaluation and its error: flagged.
func DropNodeCurrents(tg *route.TileGraph, members []bool) {
	tg.NodeCurrents(members, nil) // want `result of route.NodeCurrents discarded`
}

// BlankResistance hides the objective and its error: flagged.
func BlankResistance(tg *route.TileGraph, members []bool) {
	_, _ = tg.Resistance(members) // want `result of route.Resistance assigned to the blank identifier`
}

// UseNodeCurrents is the accepted fix: metrics and error are consumed.
func UseNodeCurrents(tg *route.TileGraph, members []bool) (*route.Metrics, error) {
	return tg.NodeCurrents(members, nil)
}

// MutatorsAreFine: functions outside the must-use table keep working as
// statements.
func MutatorsAreFine(b *sparse.Builder) {
	b.Add(0, 0, 1.0)
}
