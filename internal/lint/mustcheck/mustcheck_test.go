package mustcheck_test

import (
	"testing"

	"sprout/internal/lint/analysistest"
	"sprout/internal/lint/mustcheck"
)

func TestMustcheck(t *testing.T) {
	analysistest.Run(t, "testdata", mustcheck.Analyzer, "a")
}
