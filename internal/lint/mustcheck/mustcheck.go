// Package mustcheck flags discarded results of the pure numeric and
// geometric kernels: sparse solves (sparse.CG/CGCtx, Laplacian.Solve*,
// Cholesky.Solve, the workspace-backed SolveAttemptsCtxWork), solver
// setup that reports breakdowns (sparse.NewAMG, sparse.ReassembleLaplacian),
// route's nodal-analysis entry points (NodeCurrents*, PairVoltages*,
// Resistance), and geom's region/polygon clipping algebra (Union,
// Intersect, Subtract, Xor, Bloat, Erode, Rasterize, ...). These
// functions have no side effects — calling one as a statement, or
// assigning every result to the blank identifier, throws the computation
// (and, for solves, the error that says whether it converged) away. Such
// a call is either dead code or a lost error check; both are bugs.
package mustcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"sprout/internal/lint/analysis"
)

// Analyzer is the mustcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "mustcheck",
	Doc:  "results of sparse solves and geom clipping must not be discarded",
	Run:  run,
}

// mustUse maps a package-path suffix to the function and method names
// whose results must be consumed. Method names apply to any receiver type
// in that package.
var mustUse = map[string]map[string]bool{
	"internal/sparse": {
		"CG": true, "CGCtx": true,
		"Solve": true, "SolveCtx": true, "SolveAttemptsCtx": true,
		"SolveAttemptsCtxWork": true,
		"EffectiveResistance":  true,
		"NewAMG":               true, "ReassembleLaplacian": true,
	},
	"internal/route": {
		"NodeCurrents": true, "NodeCurrentsCtx": true,
		"PairVoltages": true, "PairVoltagesCtx": true,
		"Resistance": true,
	},
	"internal/geom": {
		"Union": true, "Intersect": true, "Subtract": true, "Xor": true,
		"IntersectRect": true, "Bloat": true, "Erode": true,
		"Translate": true, "Rasterize": true, "Components": true,
	},
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
					report(pass, call, "discarded")
				}
			case *ast.AssignStmt:
				if !allBlank(stmt.Lhs) || len(stmt.Rhs) != 1 {
					return true
				}
				if call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr); ok {
					report(pass, call, "assigned to the blank identifier")
				}
			}
			return true
		})
	}
	return nil, nil
}

// allBlank reports whether every left-hand side is the blank identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// report emits a diagnostic when the call resolves to a must-use kernel.
func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	for suffix, names := range mustUse {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) && names[fn.Name()] {
			pass.Reportf(call.Pos(),
				"result of %s.%s %s: the call is pure — its result (and error, if any) must be used",
				fn.Pkg().Name(), fn.Name(), how)
			return
		}
	}
}
