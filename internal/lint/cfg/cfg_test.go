package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parse builds the graph of the first function declared in src.
func parse(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return buildGraph(fd, fd.Name.Name, fd.Body)
		}
	}
	t.Fatal("no function in src")
	return nil
}

// reachable returns the block indices reachable from the entry.
func reachable(g *Graph) []int {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry())
	var idx []int
	for b := range seen {
		idx = append(idx, b.Index)
	}
	sort.Ints(idx)
	return idx
}

// preds computes the predecessor sets.
func preds(g *Graph) map[*Block][]*Block {
	p := map[*Block][]*Block{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			p[s] = append(p[s], b)
		}
	}
	return p
}

func TestIfElseJoins(t *testing.T) {
	g := parse(t, `func f(x bool) int {
	a := 1
	if x {
		a = 2
	} else {
		a = 3
	}
	return a
}`)
	pr := preds(g)
	if len(pr[g.Exit]) != 1 {
		t.Fatalf("want 1 exit pred (the join), got %d", len(pr[g.Exit]))
	}
	join := pr[g.Exit][0]
	if len(pr[join]) != 2 {
		t.Errorf("want then+else feeding the join, got %d preds", len(pr[join]))
	}
}

func TestEarlyReturnBypassesJoin(t *testing.T) {
	g := parse(t, `func f(x bool) int {
	if x {
		return 1
	}
	return 2
}`)
	if n := len(preds(g)[g.Exit]); n != 2 {
		t.Errorf("want 2 return paths into exit, got %d", n)
	}
}

func TestForLoopEdges(t *testing.T) {
	g := parse(t, `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	// Find the header: the block with two successors (body, exit-of-loop).
	var header *Block
	for _, b := range g.Blocks {
		if len(b.Succs) == 2 {
			header = b
			break
		}
	}
	if header == nil {
		t.Fatal("no two-way branch block (loop header) found")
	}
	// The header must be reachable from itself (back edge through body+post).
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		for _, s := range b.Succs {
			if s == header {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if walk(s) {
					return true
				}
			}
		}
		return false
	}
	if !walk(header) {
		t.Error("loop header has no back edge")
	}
}

func TestInfiniteLoopOnlyExitsViaBreak(t *testing.T) {
	g := parse(t, `func f(ch chan int) {
	for {
		v := <-ch
		if v == 0 {
			break
		}
	}
}`)
	if got := reachable(g); got[len(got)-1] < g.Exit.Index && !contains(got, g.Exit.Index) {
		t.Errorf("exit not reachable via break: reachable=%v exit=%d", got, g.Exit.Index)
	}
	if !contains(reachable(g), g.Exit.Index) {
		t.Error("break must make the exit reachable")
	}
}

func TestPanicPathDoesNotReachExit(t *testing.T) {
	g := parse(t, `func f(x bool) {
	if x {
		panic("boom")
	}
}`)
	// The panic block must have no successors.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if len(b.Succs) != 0 {
						t.Errorf("panic block has successors %v", b.Succs)
					}
					return
				}
			}
		}
	}
	t.Fatal("panic node not found in any block")
}

func TestSwitchFallthroughChains(t *testing.T) {
	g := parse(t, `func f(x int) string {
	switch x {
	case 1:
		fallthrough
	case 2:
		return "low"
	default:
		return "high"
	}
}`)
	// All three clause bodies return; exit collects them. Clause 1 falls
	// into clause 2, so only clause 2 and default reach the exit (the
	// post-switch join is wired to the exit but unreachable — every
	// clause returns — so it does not count).
	live := reachable(g)
	n := 0
	for _, p := range preds(g)[g.Exit] {
		if contains(live, p.Index) {
			n++
		}
	}
	if n != 2 {
		t.Errorf("want 2 reachable exit preds (case2, default), got %d", n)
	}
}

func TestSelectClausesBranchFromHeader(t *testing.T) {
	g := parse(t, `func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}`)
	var sel *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				sel = b
			}
		}
	}
	if sel == nil {
		t.Fatal("select node not recorded")
	}
	if len(sel.Succs) != 2 {
		t.Errorf("want 2 comm-clause successors, got %d", len(sel.Succs))
	}
}

func TestGotoForwardEdge(t *testing.T) {
	g := parse(t, `func f(x bool) int {
	if x {
		goto done
	}
	return 0
done:
	return 1
}`)
	if !contains(reachable(g), g.Exit.Index) {
		t.Fatal("exit unreachable")
	}
	// Both returns reach the exit; the goto path must be wired.
	if n := len(preds(g)[g.Exit]); n != 2 {
		t.Errorf("want 2 exit preds, got %d", n)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := parse(t, `func f(m [][]int) int {
outer:
	for _, row := range m {
		for _, v := range row {
			if v == 0 {
				break outer
			}
		}
	}
	return 1
}`)
	if !contains(reachable(g), g.Exit.Index) {
		t.Error("labeled break must keep the exit reachable")
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestForwardFixpoint runs a small may-analysis — "which assignment
// statements may have executed" — over a loop, checking that the
// worklist converges and that states merge across the back edge.
func TestForwardFixpoint(t *testing.T) {
	g := parse(t, `func f(n int) int {
	a := 1
	for i := 0; i < n; i++ {
		a = 2
	}
	return a
}`)
	type state = string // sorted comma-joined set of seen assignment texts
	join := func(a, b state) state {
		set := map[string]bool{}
		for _, s := range strings.Split(a+","+b, ",") {
			if s != "" {
				set[s] = true
			}
		}
		var out []string
		for s := range set {
			out = append(out, s)
		}
		sort.Strings(out)
		return strings.Join(out, ",")
	}
	transfer := func(b *Block, in state) state {
		out := in
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				out = join(out, fmt.Sprintf("assign@%d", as.Pos()))
			}
		}
		return out
	}
	in := Forward(g, Problem[state]{
		Entry:    "",
		Transfer: transfer,
		Join:     join,
		Equal:    func(a, b state) bool { return a == b },
	})
	exitIn := in[g.Exit]
	// Both `a := 1` (and friends) and the loop-body `a = 2` may have run
	// by the time the function returns.
	if got := len(strings.Split(exitIn, ",")); got < 2 {
		t.Errorf("exit in-state %q: want at least the two assignments merged across the loop", exitIn)
	}
}
