package cfg

// Problem defines one forward dataflow problem over a Graph. States are
// opaque to the driver; the lattice (and its finite height, which
// guarantees termination) is the problem's responsibility. Transfer and
// Join must treat states as immutable — return fresh values rather than
// mutating arguments, since the driver aliases states across blocks.
type Problem[S any] struct {
	// Entry is the state on entry to the function.
	Entry S
	// Transfer computes a block's out-state from its in-state.
	Transfer func(b *Block, in S) S
	// Join merges the out-states of two predecessors.
	Join func(a, b S) S
	// Equal reports whether two states are equal (fixpoint test).
	Equal func(a, b S) bool
}

// Forward runs the problem to a fixpoint with a worklist and returns the
// in-state of every block. Blocks unreachable from the entry keep the
// entry state. The fixpoint is guaranteed by the problem's lattice; as a
// backstop against a non-converging Join the driver stops after
// len(blocks)² + a constant rounds and returns the states it has — a
// sound over-approximation is the caller's concern, not a hang.
func Forward[S any](g *Graph, p Problem[S]) map[*Block]S {
	in := make(map[*Block]S, len(g.Blocks))
	seen := make(map[*Block]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = p.Entry
	}
	entry := g.Entry()
	seen[entry] = true

	work := []*Block{entry}
	budget := len(g.Blocks)*len(g.Blocks) + 64
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		out := p.Transfer(b, in[b])
		for _, s := range b.Succs {
			var next S
			if !seen[s] {
				// First flow into s replaces the placeholder entry state.
				next = out
				seen[s] = true
			} else {
				next = p.Join(in[s], out)
				if p.Equal(next, in[s]) {
					continue
				}
			}
			in[s] = next
			work = append(work, s)
		}
	}
	return in
}
