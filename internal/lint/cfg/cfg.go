// Package cfg builds per-function control-flow graphs over go/ast and
// runs forward dataflow problems to a fixpoint over them (dataflow.go).
// It is the flow-analysis substrate for the concurrency analyzers
// (lockcheck, goroleak, atomicmix): they declare cfg.Analyzer in their
// Requires list and receive the package's graphs through Pass.ResultOf,
// so the graphs are built once per package no matter how many analyzers
// consume them.
//
// The graph is deliberately small: basic blocks of statements (and the
// controlling expressions of branches) connected by edges for if/else,
// loops (including range), switch/type-switch (with fallthrough),
// select, and break/continue/goto/return. A synthetic Exit block
// collects every normal return path — paths that end in panic or
// os.Exit do not reach it, so "on all paths" analyses (lock pairing)
// naturally exempt dying paths. Defer statements appear as ordinary
// nodes; analyzers interpret their at-exit semantics themselves.
package cfg

import (
	"go/ast"
	"go/token"

	"sprout/internal/lint/analysis"
)

// Block is one basic block: nodes that execute sequentially, followed by
// a branch to one of Succs (no successors = the path ends here, either
// at the synthetic exit or by panicking).
type Block struct {
	// Index is the block's position in Graph.Blocks (entry = 0).
	Index int
	// Nodes are the block's statements and controlling expressions in
	// execution order. Analyzers walking a node's subtree should use
	// Inspect, which does not descend into nested function literals.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Graph is the control-flow graph of one function or function literal.
type Graph struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fn ast.Node
	// Name is the declared function name ("func literal" for literals),
	// for diagnostics.
	Name string
	// Blocks lists every block; Blocks[0] is the entry.
	Blocks []*Block
	// Exit is the synthetic block every return path feeds into. It holds
	// no nodes.
	Exit *Block
	// SelectComms marks the comm statements of select clauses (the
	// `v := <-ch` in `case v := <-ch:`). Their channel operation is the
	// select's, already represented by the SelectStmt node — analyzers
	// treating sends/receives as blocking points must not count these
	// twice.
	SelectComms map[ast.Node]bool
}

// Entry returns the function's entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// Result is the value cfg.Analyzer delivers through Pass.ResultOf.
type Result struct {
	// Funcs maps each *ast.FuncDecl and *ast.FuncLit with a body to its
	// graph.
	Funcs map[ast.Node]*Graph
	// All lists the same graphs in source order, for deterministic
	// iteration (map order would scramble diagnostic order).
	All []*Graph
}

// Analyzer builds the package's control-flow graphs. It reports no
// diagnostics; it exists to be listed in other analyzers' Requires.
var Analyzer = &analysis.Analyzer{
	Name: "cfgbuild",
	Doc:  "builds per-function control-flow graphs consumed by the flow-aware analyzers (reports nothing itself)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	res := &Result{Funcs: map[ast.Node]*Graph{}}
	build := func(fn ast.Node, name string, body *ast.BlockStmt) {
		if body == nil {
			return
		}
		g := buildGraph(fn, name, body)
		res.Funcs[fn] = g
		res.All = append(res.All, g)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				build(n, n.Name.Name, n.Body)
			case *ast.FuncLit:
				build(n, "func literal", n.Body)
			}
			return true
		})
	}
	return res, nil
}

// Inspect walks node's subtree like ast.Inspect but does not descend
// into nested function literals — their bodies belong to their own
// graphs, not to the block being analyzed.
func Inspect(node ast.Node, f func(ast.Node) bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != node {
			return false
		}
		return f(n)
	})
}

// frame is one enclosing breakable/continuable construct during the
// build.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type gotoPatch struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	cur    *Block // nil after a terminating statement
	frames []frame
	// fallTo is the next case clause while building a switch clause
	// body (the fallthrough target), nil in the last clause.
	fallTo *Block
	labels map[string]*Block
	gotos  []gotoPatch
	// pendingLabel is set by a LabeledStmt so the labeled loop or
	// switch registers its frame under that name.
	pendingLabel string
}

func buildGraph(fn ast.Node, name string, body *ast.BlockStmt) *Graph {
	g := &Graph{Fn: fn, Name: name, SelectComms: map[ast.Node]bool{}}
	b := &builder{g: g, labels: map[string]*Block{}}
	entry := b.newBlock()
	g.Exit = b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit) // implicit return off the end of the body
	for _, p := range b.gotos {
		if target, ok := b.labels[p.label]; ok {
			b.edge(p.from, target)
		}
	}
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds from→to, tolerating a nil from (unreachable path).
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, starting a fresh (unreachable)
// block if the path already terminated — unreachable code still gets
// blocks so its nodes are visible to flow-insensitive walks.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.ensure()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) ensure() {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct registering a
// frame.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findBreak returns the break target for the optionally labeled break.
func (b *builder) findBreak(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.breakTo
		}
	}
	return nil
}

// findContinue returns the continue target (loops only).
func (b *builder) findContinue(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f.continueTo
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	b.ensure()
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		blk := b.newBlock()
		b.edge(b.cur, blk)
		b.cur = blk
		b.labels[s.Label.Name] = blk
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(cond, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(cond, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.newBlock()
		b.edge(b.cur, header)
		b.cur = header
		b.add(s.Cond)
		exit := b.newBlock()
		continueTo := header
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			continueTo = post
		}
		if s.Cond != nil {
			b.edge(header, exit)
		}
		body := b.newBlock()
		b.edge(header, body)
		b.frames = append(b.frames, frame{label: label, breakTo: exit, continueTo: continueTo})
		b.cur = body
		b.stmt(s.Body)
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.add(s.Post)
			b.edge(post, header)
		} else {
			b.edge(b.cur, header)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlock()
		b.edge(b.cur, header)
		b.cur = header
		b.add(s) // the range node itself: analyzers see `range ch`
		exit := b.newBlock()
		body := b.newBlock()
		b.edge(header, exit)
		b.edge(header, body)
		b.frames = append(b.frames, frame{label: label, breakTo: exit, continueTo: header})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, header)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s) // the select node marks the blocking point
		header := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, frame{label: label, breakTo: join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(header, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.g.SelectComms[cc.Comm] = true
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			b.edge(b.cur, b.findBreak(label))
		case token.CONTINUE:
			b.edge(b.cur, b.findContinue(label))
		case token.GOTO:
			b.gotos = append(b.gotos, gotoPatch{from: b.cur, label: label})
		case token.FALLTHROUGH:
			b.edge(b.cur, b.fallTo)
		}
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if terminates(s.X) {
			b.cur = nil // panic/os.Exit: the path dies without returning
		}

	default:
		// Assignments, declarations, sends, incdec, go, defer: plain
		// nodes. Send blocking-ness and defer at-exit semantics are the
		// analyzers' concern.
		b.add(s)
	}
}

// switchStmt builds both expression and type switches: header → each
// clause, fallthrough chaining clause i to clause i+1, and an edge past
// the switch when there is no default clause.
func (b *builder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Tag)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		body = s.Body
	}
	b.ensure()
	header := b.cur
	join := b.newBlock()
	clauses := body.List
	blks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blks[i] = b.newBlock()
		b.edge(header, blks[i])
	}
	b.frames = append(b.frames, frame{label: label, breakTo: join})
	savedFall := b.fallTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.fallTo = nil
		if i+1 < len(clauses) {
			b.fallTo = blks[i+1]
		}
		b.cur = blks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
	}
	b.fallTo = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(header, join)
	}
	b.cur = join
}

// terminates reports whether the expression statement is a call that
// never returns: the panic builtin, os.Exit, or runtime.Goexit.
func terminates(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}
