// Package ctxdelegate enforces SPROUT's cancellation conventions:
//
//  1. An exported context-free wrapper F whose package also defines FCtx
//     (same receiver) must consist of exactly one statement that delegates
//     to FCtx with context.Background() or context.TODO() as the first
//     argument. Wrappers that re-implement logic drift from their Ctx
//     variant and lose cancellation coverage.
//
//  2. In the solver-adjacent packages (internal/route, internal/sparse),
//     any function containing an unbounded loop — `for { ... }` or a
//     condition-only `for cond { ... }` — must accept a context.Context so
//     the loop has a cancellation path. Condition-only loops that drain a
//     slice (`for len(q) > 0`, `for i < len(s)`) are structurally bounded
//     by their data and exempt; three-clause and range loops are bounded
//     by construction.
package ctxdelegate

import (
	"go/ast"
	"go/types"
	"strings"

	"sprout/internal/lint/analysis"
)

// Analyzer is the ctxdelegate pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdelegate",
	Doc:  "context-free wrappers must delegate to their Ctx variant; unbounded loops in route/sparse need a context.Context parameter",
	Run:  run,
}

// loopScopeSuffixes are the package-path suffixes rule 2 applies to.
var loopScopeSuffixes = []string{"internal/route", "internal/sparse"}

func run(pass *analysis.Pass) (any, error) {
	loopScope := false
	for _, s := range loopScopeSuffixes {
		if strings.HasSuffix(pass.Pkg.Path(), s) {
			loopScope = true
			break
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWrapper(pass, f, fd)
			if loopScope {
				checkLoops(pass, fd)
			}
		}
	}
	return nil, nil
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass.TypesInfo.Types[field.Type].Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkWrapper applies rule 1 to one function declaration.
func checkWrapper(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || strings.HasSuffix(fd.Name.Name, "Ctx") || hasCtxParam(pass, fd.Type) {
		return
	}
	ctxName := fd.Name.Name + "Ctx"
	if !siblingExists(pass, file, fd, ctxName) {
		return
	}
	if len(fd.Body.List) == 1 && delegates(pass, fd.Body.List[0], ctxName) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"context-free wrapper %s must only delegate to %s with context.Background() or context.TODO()",
		fd.Name.Name, ctxName)
}

// siblingExists reports whether the package declares name as a function
// with the same receiver base type as fd (or none, when fd has none).
func siblingExists(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl, name string) bool {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			cand, ok := decl.(*ast.FuncDecl)
			if !ok || cand.Name.Name != name {
				continue
			}
			if recvTypeName(cand) == recvTypeName(fd) {
				return true
			}
		}
	}
	return false
}

// recvTypeName returns the receiver's base type name ("" for functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// delegates reports whether stmt is `return FCtx(context.Background(),
// ...)` (or a bare call for result-free wrappers).
func delegates(pass *analysis.Pass, stmt ast.Stmt, ctxName string) bool {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call, _ = s.Results[0].(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	}
	if call == nil || calleeName(call) != ctxName || len(call.Args) == 0 {
		return false
	}
	first, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := first.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
	return ok && obj.Imported().Path() == "context"
}

// calleeName returns the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkLoops applies rule 2 to one function declaration.
func checkLoops(pass *analysis.Pass, fd *ast.FuncDecl) {
	if hasCtxParam(pass, fd.Type) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || !unbounded(loop) {
			return true
		}
		pass.Reportf(loop.Pos(),
			"unbounded loop in %s: functions with unbounded loops in %s must accept a context.Context",
			fd.Name.Name, pass.Pkg.Name())
		return true
	})
}

// unbounded classifies `for {}` and condition-only loops as unbounded,
// exempting slice-drain conditions that mention len(...).
func unbounded(loop *ast.ForStmt) bool {
	if loop.Init != nil || loop.Post != nil {
		return false
	}
	if loop.Cond == nil {
		return true
	}
	drains := false
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" {
				drains = true
			}
		}
		return true
	})
	return !drains
}
