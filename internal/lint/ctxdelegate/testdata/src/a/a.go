// Package a exercises the wrapper-delegation rule.
package a

import "context"

// Route is the good shape: a context-free wrapper that only delegates.
func Route(n int) (int, error) {
	return RouteCtx(context.Background(), n)
}

// RouteCtx is the real implementation.
func RouteCtx(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n * 2, nil
}

// Solve re-implements logic instead of delegating: flagged.
func Solve(n int) (int, error) { // want `context-free wrapper Solve must only delegate to SolveCtx`
	if n < 0 {
		return 0, nil
	}
	return SolveCtx(context.Background(), n)
}

// SolveCtx is the real implementation.
func SolveCtx(ctx context.Context, n int) (int, error) {
	return n + 1, nil
}

// Grow delegates but fabricates its own context instead of Background/TODO: flagged.
func Grow(n int) int { // want `context-free wrapper Grow must only delegate to GrowCtx`
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	v, _ := GrowCtx(ctx, n)
	return v
}

// GrowCtx is the real implementation.
func GrowCtx(ctx context.Context, n int) (int, error) { return n, nil }

// Standalone has no Ctx sibling, so the rule does not apply.
func Standalone(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// T carries the method variants.
type T struct{}

// Run delegates with context.TODO: accepted.
func (t *T) Run(n int) error {
	return t.RunCtx(context.TODO(), n)
}

// RunCtx is the real implementation.
func (t *T) RunCtx(ctx context.Context, n int) error { return ctx.Err() }
