// Package route exercises the unbounded-loop rule (the package path ends
// in internal/route, so the rule is in scope).
package route

import "context"

// converge has a condition-only loop and no context: flagged. (It is
// unexported so the wrapper-delegation rule stays out of the picture.)
func converge(res float64) float64 {
	for res > 1e-3 { // want `unbounded loop in converge`
		res /= 2
	}
	return res
}

var _ = converge

// Spin has an infinite loop and no context: flagged.
func Spin(ch chan int) {
	for { // want `unbounded loop in Spin`
		if <-ch == 0 {
			return
		}
	}
}

// ConvergeCtx is the accepted fix: the same loop with a context parameter.
func ConvergeCtx(ctx context.Context, res float64) float64 {
	for res > 1e-3 {
		if ctx.Err() != nil {
			return res
		}
		res /= 2
	}
	return res
}

// Drain is exempt: the condition is a structural slice drain.
func Drain(queue []int) int {
	sum := 0
	for len(queue) > 0 {
		sum += queue[0]
		queue = queue[1:]
	}
	return sum
}

// Bounded three-clause and range loops are exempt.
func Bounded(v []float64) float64 {
	sum := 0.0
	for i := 0; i < len(v); i++ {
		sum += v[i]
	}
	for _, x := range v {
		sum += x
	}
	return sum
}
