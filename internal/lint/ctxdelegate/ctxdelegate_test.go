package ctxdelegate_test

import (
	"testing"

	"sprout/internal/lint/analysistest"
	"sprout/internal/lint/ctxdelegate"
)

func TestWrapperDelegation(t *testing.T) {
	analysistest.Run(t, "testdata", ctxdelegate.Analyzer, "a")
}

func TestUnboundedLoops(t *testing.T) {
	analysistest.Run(t, "testdata", ctxdelegate.Analyzer, "x/internal/route")
}
