// Package sparse exercises the float-equality rule inside a scoped
// package path (ends in internal/sparse).
package sparse

// Tol is a named tolerance used by the accepted comparisons.
const Tol = 1e-9

// approxEq is the epsilon comparison this package's production code is
// expected to use.
func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= Tol
}

// Converged compares residuals exactly: flagged.
func Converged(res, prev float64) bool {
	return res == prev // want `exact floating-point ==`
}

// Changed compares exactly with !=: flagged.
func Changed(a, b float64) bool {
	return a != b // want `exact floating-point !=`
}

// ConvergedEps is the accepted fix.
func ConvergedEps(res, prev float64) bool {
	return approxEq(res, prev)
}

// ZeroChecks are exempt: comparisons against an exact constant zero are
// IEEE-exact and idiomatic ("knob unset", "skip stored zero").
func ZeroChecks(tol float64, vals []float64) int {
	if tol == 0 {
		tol = 1e-10
	}
	n := 0
	for _, v := range vals {
		if v != 0 {
			n++
		}
	}
	return n
}

// IntCompares are out of the rule's jurisdiction entirely.
func IntCompares(a, b int) bool {
	return a == b
}
