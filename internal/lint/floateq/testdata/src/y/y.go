// Package y is outside the scoped packages (geom/sparse/route): exact
// float equality is not flagged here.
package y

// Same would be flagged in internal/sparse but is accepted here.
func Same(a, b float64) bool {
	return a == b
}
