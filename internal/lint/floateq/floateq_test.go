package floateq_test

import (
	"testing"

	"sprout/internal/lint/analysistest"
	"sprout/internal/lint/floateq"
)

func TestFloateqInScope(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "x/internal/sparse")
}

func TestFloateqOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "y")
}
