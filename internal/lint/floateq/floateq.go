// Package floateq forbids exact floating-point equality in the numeric
// core (internal/geom, internal/sparse, internal/route). `a == b` on
// floats is almost always a latent bug around rounding — the SPROUT
// pipeline's V = L⁻¹E solves and geometry predicates accumulate error —
// so comparisons must go through the epsilon helpers
// (geom.AlmostEqual, sparse.ApproxEqual) instead.
//
// Comparisons against an exact constant zero are exempt: in IEEE-754,
// "was this knob left at its zero value" (cfg.Tol == 0) and "skip the
// explicitly stored zero" (v != 0) are exact by construction and
// idiomatic throughout the solver.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"sprout/internal/lint/analysis"
)

// Analyzer is the floateq pass.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= between floating-point expressions in geom/sparse/route; use the epsilon helpers",
	Run:  run,
}

// scopeSuffixes are the package-path suffixes the pass applies to.
var scopeSuffixes = []string{"internal/geom", "internal/sparse", "internal/route"}

func run(pass *analysis.Pass) (any, error) {
	inScope := false
	for _, s := range scopeSuffixes {
		if strings.HasSuffix(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, b.X) || !isFloat(pass, b.Y) {
				return true
			}
			if isZero(pass, b.X) || isZero(pass, b.Y) {
				return true
			}
			pass.Reportf(b.OpPos,
				"exact floating-point %s: use an epsilon comparison (geom.AlmostEqual / sparse.ApproxEqual) or //lint:ignore with a justification", b.Op)
			return true
		})
	}
	return nil, nil
}

// isFloat reports whether the expression's type is a floating-point (or
// complex) kind.
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isZero reports whether e is a compile-time constant equal to zero.
func isZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
