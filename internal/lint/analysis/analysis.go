// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named check,
// a Pass hands the analyzer one type-checked package, and diagnostics are
// reported through the Pass. The x/tools module is intentionally not a
// dependency — the repo builds offline — so sproutlint carries the small
// slice of the API it actually needs. Analyzers written against this
// package keep the upstream shape (Name/Doc/Run, Pass.Reportf) and could
// be ported to x/tools mechanically if the dependency ever lands.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass. Run is invoked once per
// loaded package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by `sproutlint -help`.
	Doc string
	// Requires lists analyzers whose results this one consumes. The
	// driver runs requirements first (once per package, shared between
	// dependents) and delivers their return values in Pass.ResultOf.
	// Mirrors the x/tools Requires/ResultOf contract.
	Requires []*Analyzer
	// Run executes the analyzer over one package. The returned value is
	// delivered to dependent analyzers via Pass.ResultOf; analyzers
	// nobody depends on return nil.
	Run func(*Pass) (any, error)
}

// Pass is the interface between the driver and one analyzer run over one
// package: the syntax trees, the type information, and the report sink.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed (with comments) source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries Types, Defs, Uses and Selections for Files.
	TypesInfo *types.Info
	// ResultOf holds the return values of the analyzers listed in
	// Analyzer.Requires, keyed by analyzer, for this package.
	ResultOf map[*Analyzer]any
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
