// Package lint wires the sproutlint analyzer suite together: the
// analyzer registry, the package-loading driver, and the
// //lint:ignore suppression mechanism.
//
// Suppression: a comment of the form
//
//	//lint:ignore analyzer1,analyzer2 reason text
//
// silences the named analyzers' diagnostics on the comment's line and on
// the line directly below it (so the directive can trail the offending
// expression or sit on its own line above it). A comment of the form
//
//	//lint:file-ignore analyzer1,analyzer2 reason text
//
// silences the named analyzers for the whole file containing it (for
// files that are wall-to-wall exceptions, e.g. a lock intentionally held
// across fsync to serialize a WAL). In both forms the reason is
// mandatory — a suppression without a recorded justification is itself
// reported.
//
// Analyzers may declare Requires dependencies (the cfg pass); the driver
// runs each analyzer once per package in dependency order and delivers
// requirement results through Pass.ResultOf.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"sprout/internal/lint/analysis"
	"sprout/internal/lint/atomicmix"
	"sprout/internal/lint/ctxdelegate"
	"sprout/internal/lint/errwrap"
	"sprout/internal/lint/faultpoint"
	"sprout/internal/lint/floateq"
	"sprout/internal/lint/goroleak"
	"sprout/internal/lint/loader"
	"sprout/internal/lint/lockcheck"
	"sprout/internal/lint/mustcheck"
)

// Analyzers returns the full sproutlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		ctxdelegate.Analyzer,
		errwrap.Analyzer,
		faultpoint.Analyzer,
		floateq.Analyzer,
		goroleak.Analyzer,
		lockcheck.Analyzer,
		mustcheck.Analyzer,
	}
}

// Finding is one unsuppressed diagnostic.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("sproutlint" for driver
	// findings such as malformed ignore directives).
	Analyzer string
	// Position locates the finding.
	Position token.Position
	// Message is the diagnostic text.
	Message string
}

// String formats the finding the way compilers do, so editors can jump
// to it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore
// comment. A file-ignore covers every line of its file.
type ignoreDirective struct {
	analyzers map[string]bool
	line      int
	wholeFile bool
}

// Run loads the packages matched by patterns (resolved relative to the
// module containing dir) and applies every analyzer, returning the
// unsuppressed findings sorted by position.
func Run(dir string, patterns []string) ([]Finding, error) {
	ld, err := loader.New(dir)
	if err != nil {
		return nil, err
	}
	paths, err := ld.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, path := range paths {
		pkg, err := ld.Load(path)
		if err != nil {
			return nil, err
		}
		findings = append(findings, runPackage(ld, pkg)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// runPackage applies the whole suite to one package and filters
// suppressed diagnostics. Each analyzer — including Requires
// dependencies shared by several suite members — runs exactly once per
// package; requirement results flow to dependents via Pass.ResultOf.
func runPackage(ld *loader.Loader, pkg *loader.Package) []Finding {
	ignores, bad := collectIgnores(ld, pkg)
	findings := bad
	results := map[*analysis.Analyzer]any{}
	ran := map[*analysis.Analyzer]bool{}
	var exec func(a *analysis.Analyzer)
	exec = func(a *analysis.Analyzer) {
		if ran[a] {
			return
		}
		ran[a] = true
		resultOf := map[*analysis.Analyzer]any{}
		for _, req := range a.Requires {
			exec(req)
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			ResultOf:  resultOf,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := ld.Fset.Position(d.Pos)
			if suppressed(ignores[pos.Filename], a.Name, pos.Line) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
		}
		res, err := a.Run(pass)
		if err != nil {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Position: ld.Fset.Position(pkg.Files[0].Pos()),
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
		}
		results[a] = res
	}
	for _, a := range Analyzers() {
		exec(a)
	}
	return findings
}

// collectIgnores parses the //lint:ignore and //lint:file-ignore
// directives of every file in the package. Malformed directives (no
// analyzer list or no reason) are returned as findings.
func collectIgnores(ld *loader.Loader, pkg *loader.Package) (map[string][]ignoreDirective, []Finding) {
	ignores := map[string][]ignoreDirective{}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wholeFile := false
				text, ok := strings.CutPrefix(c.Text, "//lint:file-ignore")
				if ok {
					wholeFile = true
				} else if text, ok = strings.CutPrefix(c.Text, "//lint:ignore"); !ok {
					continue
				}
				pos := ld.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					directive := "//lint:ignore"
					if wholeFile {
						directive = "//lint:file-ignore"
					}
					bad = append(bad, Finding{
						Analyzer: "sproutlint",
						Position: pos,
						Message:  fmt.Sprintf("malformed %s: want `%s analyzer[,analyzer] reason`", directive, directive),
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				ignores[pos.Filename] = append(ignores[pos.Filename], ignoreDirective{analyzers: names, line: pos.Line, wholeFile: wholeFile})
			}
		}
	}
	return ignores, bad
}

// suppressed reports whether an ignore directive covers the analyzer at
// the line.
func suppressed(dirs []ignoreDirective, analyzer string, line int) bool {
	for _, d := range dirs {
		if !d.analyzers[analyzer] {
			continue
		}
		if d.wholeFile || d.line == line || d.line == line-1 {
			return true
		}
	}
	return false
}
