// Package lint wires the sproutlint analyzer suite together: the
// analyzer registry, the package-loading driver, and the
// //lint:ignore suppression mechanism.
//
// Suppression: a comment of the form
//
//	//lint:ignore analyzer1,analyzer2 reason text
//
// silences the named analyzers' diagnostics on the comment's line and on
// the line directly below it (so the directive can trail the offending
// expression or sit on its own line above it). The reason is mandatory —
// a suppression without a recorded justification is itself reported.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"sprout/internal/lint/analysis"
	"sprout/internal/lint/ctxdelegate"
	"sprout/internal/lint/errwrap"
	"sprout/internal/lint/faultpoint"
	"sprout/internal/lint/floateq"
	"sprout/internal/lint/loader"
	"sprout/internal/lint/mustcheck"
)

// Analyzers returns the full sproutlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxdelegate.Analyzer,
		errwrap.Analyzer,
		faultpoint.Analyzer,
		floateq.Analyzer,
		mustcheck.Analyzer,
	}
}

// Finding is one unsuppressed diagnostic.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("sproutlint" for driver
	// findings such as malformed ignore directives).
	Analyzer string
	// Position locates the finding.
	Position token.Position
	// Message is the diagnostic text.
	Message string
}

// String formats the finding the way compilers do, so editors can jump
// to it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool
	line      int
}

// Run loads the packages matched by patterns (resolved relative to the
// module containing dir) and applies every analyzer, returning the
// unsuppressed findings sorted by position.
func Run(dir string, patterns []string) ([]Finding, error) {
	ld, err := loader.New(dir)
	if err != nil {
		return nil, err
	}
	paths, err := ld.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, path := range paths {
		pkg, err := ld.Load(path)
		if err != nil {
			return nil, err
		}
		findings = append(findings, runPackage(ld, pkg)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// runPackage applies the whole suite to one package and filters
// suppressed diagnostics.
func runPackage(ld *loader.Loader, pkg *loader.Package) []Finding {
	ignores, bad := collectIgnores(ld, pkg)
	findings := bad
	for _, a := range Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := ld.Fset.Position(d.Pos)
			if suppressed(ignores[pos.Filename], a.Name, pos.Line) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Position: ld.Fset.Position(pkg.Files[0].Pos()),
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
		}
	}
	return findings
}

// collectIgnores parses the //lint:ignore directives of every file in the
// package. Malformed directives (no analyzer list or no reason) are
// returned as findings.
func collectIgnores(ld *loader.Loader, pkg *loader.Package) (map[string][]ignoreDirective, []Finding) {
	ignores := map[string][]ignoreDirective{}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := ld.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "sproutlint",
						Position: pos,
						Message:  "malformed //lint:ignore: want `//lint:ignore analyzer[,analyzer] reason`",
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				ignores[pos.Filename] = append(ignores[pos.Filename], ignoreDirective{analyzers: names, line: pos.Line})
			}
		}
	}
	return ignores, bad
}

// suppressed reports whether an ignore directive covers the analyzer at
// the line.
func suppressed(dirs []ignoreDirective, analyzer string, line int) bool {
	for _, d := range dirs {
		if d.analyzers[analyzer] && (d.line == line || d.line == line-1) {
			return true
		}
	}
	return false
}
