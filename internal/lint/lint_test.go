package lint_test

import (
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"testing"

	"sprout/internal/lint"
)

// TestRepoIsClean runs the full analyzer suite over the whole module —
// the same check CI's lint job performs — so `go test ./...` fails the
// moment a convention regresses.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-module lint")
	}
	findings, err := lint.Run(".", []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSuppression builds a throwaway module with one real violation, one
// suppressed violation, and one malformed directive, and checks the
// driver's accounting.
func TestSuppression(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixture\n\ngo 1.22\n")
	write("internal/sparse/s.go", `package sparse

// Flagged compares floats exactly with no directive: reported.
func Flagged(a, b float64) bool {
	return a == b
}

// Silenced carries a justified directive: suppressed.
func Silenced(a, b float64) bool {
	//lint:ignore floateq fixture exercises suppression
	return a == b
}

// Malformed has a directive without a reason: the directive itself is
// reported and does not suppress.
func Malformed(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}
`)

	findings, err := lint.Run(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	var floateqLines []int
	malformed := 0
	for _, f := range findings {
		switch {
		case f.Analyzer == "floateq":
			floateqLines = append(floateqLines, f.Position.Line)
		case f.Analyzer == "sproutlint" && strings.Contains(f.Message, "malformed"):
			malformed++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if len(floateqLines) != 2 {
		t.Errorf("want 2 floateq findings (Flagged + Malformed), got %d at lines %v", len(floateqLines), floateqLines)
	}
	if malformed != 1 {
		t.Errorf("want 1 malformed-directive finding, got %d", malformed)
	}
}

// TestFileIgnore checks the whole-file suppression form: a
// //lint:file-ignore directive anywhere in a file silences the named
// analyzers for every line of that file — and only that file, only
// those analyzers — while a file-ignore without a reason is itself
// reported and suppresses nothing.
func TestFileIgnore(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixture\n\ngo 1.22\n")
	write("internal/sparse/ignored.go", `//lint:file-ignore floateq fixture file is wall-to-wall exact comparisons
package sparse

// Top and Bottom sit far from the directive; both are covered.
func Top(a, b float64) bool {
	return a == b
}

func Bottom(a, b float64) bool {
	return a != b
}
`)
	write("internal/sparse/other.go", `package sparse

// OtherFile is outside the ignored file: still reported.
func OtherFile(a, b float64) bool {
	return a == b
}
`)
	write("internal/sparse/malformed.go", `//lint:file-ignore floateq
package sparse

// NotCovered: the directive above lacks a reason, so it is reported as
// malformed and suppresses nothing.
func NotCovered(a, b float64) bool {
	return a == b
}
`)

	findings, err := lint.Run(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	var floateqFiles []string
	malformed := 0
	for _, f := range findings {
		switch {
		case f.Analyzer == "floateq":
			floateqFiles = append(floateqFiles, filepath.Base(f.Position.Filename))
		case f.Analyzer == "sproutlint" && strings.Contains(f.Message, "malformed //lint:file-ignore"):
			malformed++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	want := []string{"malformed.go", "other.go"}
	sort.Strings(floateqFiles)
	if !slices.Equal(floateqFiles, want) {
		t.Errorf("floateq findings in %v, want %v (ignored.go fully suppressed)", floateqFiles, want)
	}
	if malformed != 1 {
		t.Errorf("want 1 malformed file-ignore finding, got %d", malformed)
	}
}

// TestFileIgnoreScopedToAnalyzer checks that a file-ignore for one
// analyzer leaves the rest of the suite reporting in that file.
func TestFileIgnoreScopedToAnalyzer(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "internal/sparse"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `//lint:file-ignore lockcheck fixture holds a lock across a send on purpose
package sparse

import "sync"

type g struct {
	mu sync.Mutex
	ch chan int
}

// HeldAcrossSend is silenced for lockcheck by the file directive, but
// the floateq violation below is untouched.
func (x *g) HeldAcrossSend(v int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ch <- v
}

func Exact(a, b float64) bool {
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "internal/sparse/s.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	findings, err := lint.Run(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	if byAnalyzer["lockcheck"] != 0 {
		t.Errorf("lockcheck findings survived a file-ignore: %v", findings)
	}
	if byAnalyzer["floateq"] != 1 {
		t.Errorf("want 1 floateq finding despite the lockcheck file-ignore, got %d", byAnalyzer["floateq"])
	}
}
