package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sprout/internal/lint"
)

// TestRepoIsClean runs the full analyzer suite over the whole module —
// the same check CI's lint job performs — so `go test ./...` fails the
// moment a convention regresses.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-module lint")
	}
	findings, err := lint.Run(".", []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSuppression builds a throwaway module with one real violation, one
// suppressed violation, and one malformed directive, and checks the
// driver's accounting.
func TestSuppression(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixture\n\ngo 1.22\n")
	write("internal/sparse/s.go", `package sparse

// Flagged compares floats exactly with no directive: reported.
func Flagged(a, b float64) bool {
	return a == b
}

// Silenced carries a justified directive: suppressed.
func Silenced(a, b float64) bool {
	//lint:ignore floateq fixture exercises suppression
	return a == b
}

// Malformed has a directive without a reason: the directive itself is
// reported and does not suppress.
func Malformed(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}
`)

	findings, err := lint.Run(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	var floateqLines []int
	malformed := 0
	for _, f := range findings {
		switch {
		case f.Analyzer == "floateq":
			floateqLines = append(floateqLines, f.Position.Line)
		case f.Analyzer == "sproutlint" && strings.Contains(f.Message, "malformed"):
			malformed++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if len(floateqLines) != 2 {
		t.Errorf("want 2 floateq findings (Flagged + Malformed), got %d at lines %v", len(floateqLines), floateqLines)
	}
	if malformed != 1 {
		t.Errorf("want 1 malformed-directive finding, got %d", malformed)
	}
}
