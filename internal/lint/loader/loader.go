// Package loader type-checks Go packages from source without any
// dependency outside the standard library. It is the package-loading
// substrate for sproutlint: module-local import paths resolve to
// directories inside the module, extra roots let analyzer tests load
// GOPATH-style testdata trees, and everything else (the standard library)
// is delegated to the source importer built into go/importer.
//
// The loader deliberately analyzes production files only (no _test.go):
// the invariants sproutlint enforces are about shipped code, and test
// files are free to poke at failure paths in ways the analyzers forbid.
package loader

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was loaded as.
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
}

// Loader loads and caches type-checked packages. It implements
// types.ImporterFrom so the type-checker can pull in dependencies
// recursively through the same instance.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// ModulePath and ModuleDir map module-local import paths to
	// directories (ModulePath "sprout" + path "sprout/internal/geom" →
	// ModuleDir/internal/geom).
	ModulePath string
	ModuleDir  string
	// ExtraRoots are GOPATH-style source roots (dir/<importpath>/*.go)
	// consulted before the standard library; analyzer tests point one at
	// their testdata/src tree.
	ExtraRoots []string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// New returns a Loader rooted at the module containing dir. The module
// path is read from go.mod.
func New(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("loader: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("loader: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("loader: no go.mod above %s", abs)
		}
	}
}

// Expand resolves go package patterns ("./...") to import paths using the
// go tool, in module-dir context. Only module-local packages are returned.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-f", "{{.ImportPath}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %v: %w\n%s", patterns, err, errb.String())
	}
	var paths []string
	for _, line := range strings.Split(out.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line == l.ModulePath || strings.HasPrefix(line, l.ModulePath+"/") {
			paths = append(paths, line)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// Load type-checks the package with the given import path (and,
// transitively, its dependencies) and returns it.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.resolveDir(path)
	if !ok {
		return nil, fmt.Errorf("loader: cannot resolve %q to a directory", path)
	}
	return l.loadDir(dir, path)
}

// resolveDir maps an import path to a source directory via the module
// mapping and the extra roots. Standard-library paths are not resolved
// here; they go through the source importer.
func (l *Loader) resolveDir(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	for _, root := range l.ExtraRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks one directory as the package at path.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := types.Config{
		Importer:    l,
		FakeImportC: true,
	}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths and extra
// roots load through this Loader; everything else (the standard library,
// including its vendored dependencies) is delegated to the source
// importer, which shares our FileSet.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if dir, ok := l.resolveDir(path); ok {
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
