package loader

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file tree under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// newFixtureLoader builds a throwaway module and returns a loader rooted
// in it.
func newFixtureLoader(t *testing.T, files map[string]string) (*Loader, string) {
	t.Helper()
	dir := t.TempDir()
	writeTree(t, dir, files)
	ld, err := New(dir)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ld, dir
}

// TestStdlibFallback: an import the module mapping and extra roots
// cannot resolve must be served by the source importer — the package
// type-checks against real stdlib declarations, not stubs.
func TestStdlibFallback(t *testing.T) {
	ld, _ := newFixtureLoader(t, map[string]string{
		"go.mod": "module fixture\n\ngo 1.22\n",
		"p.go": `package fixture

import "strings"

// Upper leans on a stdlib function so type-checking must resolve the
// real strings package.
func Upper(s string) string { return strings.ToUpper(s) }
`,
	})
	pkg, err := ld.Load("fixture")
	if err != nil {
		t.Fatalf("Load(fixture): %v", err)
	}
	fn := pkg.Types.Scope().Lookup("Upper")
	if fn == nil {
		t.Fatal("Upper not in package scope")
	}
	// The fallback import is reachable directly too.
	sp, err := ld.Import("strings")
	if err != nil {
		t.Fatalf("Import(strings): %v", err)
	}
	if sp.Name() != "strings" || sp.Scope().Lookup("ToUpper") == nil {
		t.Fatalf("Import(strings) = %v, want the real strings package with ToUpper", sp)
	}
}

// TestModuleMappingShadowsExtraRoot: when a testdata root contains a
// directory spelled exactly like a module-local import path, the module
// mapping must win — analyzer fixtures cannot silently replace the code
// under analysis.
func TestModuleMappingShadowsExtraRoot(t *testing.T) {
	ld, dir := newFixtureLoader(t, map[string]string{
		"go.mod":            "module fixture\n\ngo 1.22\n",
		"internal/aux/a.go": "package aux\n\nconst Origin = \"module\"\n",
		// The shadow: same import path, different content, under a
		// GOPATH-style extra root.
		"testdata/src/fixture/internal/aux/a.go": "package aux\n\nconst Origin = \"extraroot\"\n",
	})
	ld.ExtraRoots = []string{filepath.Join(dir, "testdata", "src")}

	pkg, err := ld.Load("fixture/internal/aux")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	wantDir := filepath.Join(dir, "internal", "aux")
	if pkg.Dir != wantDir {
		t.Fatalf("Load resolved to %s, want the module directory %s", pkg.Dir, wantDir)
	}
	c, ok := pkg.Types.Scope().Lookup("Origin").(*types.Const)
	if !ok || c.Val().ExactString() != `"module"` {
		t.Fatalf("Origin = %v, want the module-side constant \"module\"", c)
	}
}

// TestExtraRootResolvesNonModulePaths: paths outside the module resolve
// through the extra roots — the mechanism analysistest uses to load
// GOPATH-style corpora.
func TestExtraRootResolvesNonModulePaths(t *testing.T) {
	ld, dir := newFixtureLoader(t, map[string]string{
		"go.mod":                  "module fixture\n\ngo 1.22\n",
		"testdata/src/corp/c.go":  "package corp\n\nconst K = 1\n",
		"testdata/src/empty/.g29": "not a go file: directory must not resolve",
	})
	ld.ExtraRoots = []string{filepath.Join(dir, "testdata", "src")}

	pkg, err := ld.Load("corp")
	if err != nil {
		t.Fatalf("Load(corp): %v", err)
	}
	if pkg.Types.Scope().Lookup("K") == nil {
		t.Fatal("K not in corp scope")
	}
	// A directory with no Go files is not a package, even when it exists
	// under an extra root.
	if _, err := ld.Load("empty"); err == nil {
		t.Fatal("Load(empty) succeeded on a directory with no Go files")
	}
}

// TestExtraRootShadowsStdlib: extra roots are consulted before the
// source importer, so a corpus can pin its own version of a
// stdlib-named package.
func TestExtraRootShadowsStdlib(t *testing.T) {
	ld, dir := newFixtureLoader(t, map[string]string{
		"go.mod":                    "module fixture\n\ngo 1.22\n",
		"testdata/src/strings/s.go": "package strings\n\nconst Stub = true\n",
	})
	ld.ExtraRoots = []string{filepath.Join(dir, "testdata", "src")}

	sp, err := ld.Import("strings")
	if err != nil {
		t.Fatalf("Import(strings): %v", err)
	}
	if sp.Scope().Lookup("Stub") == nil {
		t.Fatal("Import(strings) ignored the extra-root stub")
	}
}

// TestUnresolvablePath: a path neither module-local, under an extra
// root, nor importable as stdlib fails with a resolve error.
func TestUnresolvablePath(t *testing.T) {
	ld, _ := newFixtureLoader(t, map[string]string{
		"go.mod": "module fixture\n\ngo 1.22\n",
		"p.go":   "package fixture\n",
	})
	_, err := ld.Load("no.such.example/pkg")
	if err == nil || !strings.Contains(err.Error(), "cannot resolve") {
		t.Fatalf("Load(no.such.example/pkg) = %v, want a cannot-resolve error", err)
	}
}

// TestImportCycle: mutually importing module packages are reported as a
// cycle instead of recursing forever.
func TestImportCycle(t *testing.T) {
	ld, _ := newFixtureLoader(t, map[string]string{
		"go.mod":  "module fixture\n\ngo 1.22\n",
		"a/a.go":  "package a\n\nimport \"fixture/b\"\n\nconst A = b.B\n",
		"b/b.go":  "package b\n\nimport \"fixture/a\"\n\nconst B = a.A\n",
		"go.sum_": "",
	})
	_, err := ld.Load("fixture/a")
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Load(fixture/a) = %v, want an import-cycle error", err)
	}
}

// TestFindModuleWalksUp: New from a nested directory finds the
// enclosing go.mod and maps paths against it.
func TestFindModuleWalksUp(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":            "module fixture\n\ngo 1.22\n",
		"deep/nest/n.go":    "package nest\n\nconst N = 3\n",
		"deep/nest/sub.txt": "",
	})
	ld, err := New(filepath.Join(dir, "deep", "nest"))
	if err != nil {
		t.Fatalf("New from nested dir: %v", err)
	}
	if ld.ModulePath != "fixture" {
		t.Fatalf("ModulePath = %q, want fixture", ld.ModulePath)
	}
	pkg, err := ld.Load("fixture/deep/nest")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if pkg.Types.Scope().Lookup("N") == nil {
		t.Fatal("N not in nest scope")
	}
}
