// Package goroleak demands a termination witness for every goroutine
// launched from a function literal in the concurrent subsystems — the
// sproutd engine (internal/server), the routing pipeline's solver pool
// (internal/route), and the parallel explorer (the root sprout package).
// A goroutine with no visible way to stop outlives its request: under
// sproutd's graceful drain it keeps the process alive past the bounded
// deadline, and in the explorer it pins a board snapshot long after the
// reducer discarded it.
//
// A termination witness is any of:
//
//   - a channel receive — <-ctx.Done(), <-ch, a select with a receive
//     case, or `for range ch` — the goroutine is parked on something the
//     owner can close or cancel;
//   - a sync.WaitGroup registration — the body calls Done (usually
//     deferred), so a Wait-er observes its exit;
//   - waiting out a pool — the body calls (*sync.WaitGroup).Wait, so it
//     ends exactly when the pool it watches drains;
//   - a bounded-pool token release — the body sends a struct{} token
//     back into a semaphore channel.
//
// A bare result send (`go func() { out <- compute() }()`) is NOT a
// witness: if the receiver gives up, that send blocks forever — that is
// precisely the leak this analyzer exists to catch. The scan is
// syntactic over the literal's body, skipping nested `go` statements
// (their witnesses are their own).
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"

	"sprout/internal/lint/analysis"
	"sprout/internal/lint/cfg"
)

// Analyzer is the goroleak pass.
var Analyzer = &analysis.Analyzer{
	Name:     "goroleak",
	Doc:      "goroutines in server/route/explorer packages need a termination witness (ctx.Done/channel receive, WaitGroup Done, or pool token)",
	Requires: []*analysis.Analyzer{cfg.Analyzer},
	Run:      run,
}

// scopeSuffixes are the package-path suffixes the pass applies to; the
// root explorer package is matched by its base name "sprout".
var scopeSuffixes = []string{"internal/server", "internal/route"}

func inScope(pkgPath string) bool {
	for _, s := range scopeSuffixes {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return path.Base(pkgPath) == "sprout"
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	// The cfg result is consulted only to share the per-function walk
	// order; the witness scan itself is syntactic.
	graphs := pass.ResultOf[cfg.Analyzer].(*cfg.Result)
	seen := map[*ast.GoStmt]bool{}
	for _, g := range graphs.All {
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				cfg.Inspect(n, func(sub ast.Node) bool {
					gs, ok := sub.(*ast.GoStmt)
					if !ok || seen[gs] {
						return true
					}
					seen[gs] = true
					check(pass, gs)
					return true
				})
			}
		}
	}
	return nil, nil
}

// check inspects one go statement. Only function literals are checked:
// `go x.method()` terminates (or not) inside the method, which is
// analyzed where it is defined.
func check(pass *analysis.Pass, gs *ast.GoStmt) {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	if hasWitness(pass, lit.Body) {
		return
	}
	pass.Reportf(gs.Go, "goroutine has no termination witness (ctx.Done/channel receive, WaitGroup Done/Wait, or pool-token release): potential leak")
}

// hasWitness scans the body for any of the witness shapes, skipping
// nested go statements (a witness inside a nested goroutine says nothing
// about this one) but descending into other nested literals (deferred
// closures run on this goroutine).
func hasWitness(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// Still evaluate the call's arguments — they run here — but
			// not the spawned literal's body.
			for _, arg := range n.Call.Args {
				if hasWitnessExpr(pass, arg) {
					found = true
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // receive: parked on a closable channel
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					found = true
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SendStmt:
			// A token release: sending a bare struct{} back into a
			// semaphore channel. Result sends carry data and do not count.
			if isStructTokenSend(pass, n) {
				found = true
			}
		case *ast.CallExpr:
			if isWaitGroupCall(pass, n, "Done") || isWaitGroupCall(pass, n, "Wait") {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasWitnessExpr applies the same scan to a bare expression.
func hasWitnessExpr(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
		}
		return !found
	})
	return found
}

// isStructTokenSend reports whether the send pushes a struct{}-typed
// token (the bounded-pool release idiom `sem <- struct{}{}`).
func isStructTokenSend(pass *analysis.Pass, s *ast.SendStmt) bool {
	t := pass.TypesInfo.Types[s.Value].Type
	if t == nil {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isWaitGroupCall reports whether call is (*sync.WaitGroup).<name>.
func isWaitGroupCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
