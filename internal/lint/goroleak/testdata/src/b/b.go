// Package b is outside goroleak's scope (not internal/server,
// internal/route, or the root sprout package): the same leak shapes
// produce no diagnostics here.
package b

func compute() int { return 7 }

// OutOfScopeLeak would be flagged inside the concurrent subsystems.
func OutOfScopeLeak(out chan int) {
	go func() {
		out <- compute()
	}()
}
