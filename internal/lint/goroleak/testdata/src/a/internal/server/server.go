// Package server is the goroleak corpus: every goroutine launched from
// a literal needs a termination witness.
package server

import (
	"context"
	"sync"
)

func compute() int { return 42 }

func work() {}

// --- positives ---

// ResultSendLeak is the classic leak: if the receiver gives up, the
// send blocks forever.
func ResultSendLeak(out chan int) {
	go func() { // want `goroutine has no termination witness`
		out <- compute()
	}()
}

// FireAndForget has no visible way to stop at all.
func FireAndForget() {
	go func() { // want `goroutine has no termination witness`
		for {
			work()
		}
	}()
}

// NestedLeak: the outer goroutine parks on a channel (fine), but the
// inner one it spawns has no witness of its own.
func NestedLeak(ch chan int, out chan int) {
	go func() {
		<-ch
		go func() { // want `goroutine has no termination witness`
			out <- compute()
		}()
	}()
}

// --- negatives ---

// WaitGroupDone registers with a pool: a Wait-er observes its exit.
func WaitGroupDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// CtxSelect parks on cancellation.
func CtxSelect(ctx context.Context, out chan int) {
	go func() {
		select {
		case out <- compute():
		case <-ctx.Done():
		}
	}()
}

// RangeOverChannel drains until the owner closes the channel.
func RangeOverChannel(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

// TokenRelease returns its slot to a bounded pool.
func TokenRelease(sem chan struct{}) {
	<-sem
	go func() {
		defer func() { sem <- struct{}{} }()
		work()
	}()
}

// PoolWatcher ends exactly when the pool it watches drains.
func PoolWatcher(wg *sync.WaitGroup, done chan struct{}) {
	go func() {
		wg.Wait()
		close(done)
	}()
}

// NamedFunc is not checked: `go work()` terminates (or not) inside
// work, which is analyzed where it is defined.
func NamedFunc() {
	go work()
}

// SpawnArgReceiveIsNotAWitness: the argument receive parks the
// spawning function before the goroutine even starts; the spawned body
// itself still has no witness.
func SpawnArgReceiveIsNotAWitness(in chan int, out chan int) {
	go func(v int) { // want `goroutine has no termination witness`
		out <- v
	}(<-in)
}
