package goroleak_test

import (
	"testing"

	"sprout/internal/lint/analysistest"
	"sprout/internal/lint/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer, "a/internal/server", "b")
}
