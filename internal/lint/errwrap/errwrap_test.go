package errwrap_test

import (
	"testing"

	"sprout/internal/lint/analysistest"
	"sprout/internal/lint/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "a")
}
