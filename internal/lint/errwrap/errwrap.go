// Package errwrap enforces SPROUT's error-propagation conventions:
//
//  1. fmt.Errorf with an error-typed argument must wrap it with %w (so
//     errors.Is/As can see through package boundaries) instead of
//     flattening it into text with %v/%s.
//
//  2. Matching on error text — comparing x.Error() with ==/!= or feeding
//     it to strings.Contains/HasPrefix/HasSuffix — is forbidden; use
//     errors.Is/errors.As against the typed errors in errors.go.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"sprout/internal/lint/analysis"
)

// Analyzer is the errwrap pass.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "errors must be wrapped with %w or typed errors, never flattened with %v or matched by string",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, node)
				checkStringsMatch(pass, node)
			case *ast.BinaryExpr:
				checkCompare(pass, node)
			}
			return true
		})
	}
	return nil, nil
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isError reports whether the expression has (or implements) type error.
func isError(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	return t != nil && types.Implements(t, errorType)
}

// callee resolves a call to its package path and function name.
func callee(pass *analysis.Pass, call *ast.CallExpr) (pkgPath, name string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// checkErrorf applies rule 1 to one call expression.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name := callee(pass, call)
	if pkg != "fmt" || name != "Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := constString(pass, call.Args[0])
	if !ok {
		return
	}
	verbs := scanVerbs(format)
	args := call.Args[1:]
	for i, v := range verbs {
		if i >= len(args) || v == 'w' {
			continue
		}
		if isError(pass, args[i]) {
			pass.Reportf(args[i].Pos(),
				"error flattened with %%%c: wrap it with %%w (or return a typed error) so callers can errors.Is/As it", v)
		}
	}
}

// constString extracts a compile-time string constant.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// scanVerbs returns the verb letter for each argument-consuming printf
// verb in format, in order. Flags, width and precision are skipped; `*`
// width/precision consume an argument and are recorded as '*'.
func scanVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' { // literal %%
				break
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' {
				i++
				continue
			}
			verbs = append(verbs, rune(c))
			break
		}
	}
	return verbs
}

// isErrorCall reports whether e is a call of the Error() method on an
// error value.
func isErrorCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isError(pass, sel.X)
}

// checkCompare applies rule 2 to ==/!= expressions.
func checkCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isErrorCall(pass, b.X) || isErrorCall(pass, b.Y) {
		pass.Reportf(b.OpPos,
			"string comparison on err.Error(): use errors.Is/errors.As against a typed error instead")
	}
}

// checkStringsMatch applies rule 2 to strings.* substring helpers.
func checkStringsMatch(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name := callee(pass, call)
	if pkg != "strings" {
		return
	}
	switch name {
	case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorCall(pass, arg) {
			pass.Reportf(arg.Pos(),
				"strings.%s on err.Error(): use errors.Is/errors.As against a typed error instead", name)
		}
	}
}
