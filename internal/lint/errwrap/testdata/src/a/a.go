// Package a exercises the error-wrapping and string-matching rules.
package a

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBudget is a typed sentinel, the accepted alternative to text matching.
var ErrBudget = errors.New("a: budget exhausted")

// Flatten loses the cause: flagged on the error argument.
func Flatten(name string, err error) error {
	return fmt.Errorf("route %s failed: %v", name, err) // want `error flattened with %v`
}

// FlattenString loses the cause via %s: flagged.
func FlattenString(err error) error {
	return fmt.Errorf("solve: %s", err) // want `error flattened with %s`
}

// Wrap is the accepted fix: %w keeps the chain visible to errors.Is/As.
func Wrap(name string, err error) error {
	return fmt.Errorf("route %s failed: %w", name, err)
}

// NonErrorVerbs are fine: %v on non-error values is ordinary formatting.
func NonErrorVerbs(name string, n int) error {
	return fmt.Errorf("route %s: %v tiles", name, n)
}

// TextMatch compares error text: flagged.
func TextMatch(err error) bool {
	return err.Error() == "sparse: conjugate gradient did not converge" // want `string comparison on err.Error\(\)`
}

// TextContains greps error text: flagged.
func TextContains(err error) bool {
	return strings.Contains(err.Error(), "did not converge") // want `strings.Contains on err.Error\(\)`
}

// TypedMatch is the accepted fix: errors.Is against a sentinel.
func TypedMatch(err error) bool {
	return errors.Is(err, ErrBudget)
}

// PlainStrings keeps strings.Contains usable on non-error text.
func PlainStrings(s string) bool {
	return strings.Contains(s, "ok")
}
