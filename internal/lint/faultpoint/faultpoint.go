// Package faultpoint checks that every site name passed to the
// internal/faultinject APIs (Check, Arm, Disarm, Calls) is a compile-time
// string constant drawn from the canonical registry in that package. A
// typo'd hook name compiles fine but silently never fires; this analyzer
// turns it into a CI failure. The analyzer imports the registry directly,
// so registering a new site in internal/faultinject is the only step
// needed to teach both the runtime and the linter about it.
package faultpoint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"sprout/internal/faultinject"
	"sprout/internal/lint/analysis"
)

// Analyzer is the faultpoint pass.
var Analyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc:  "faultinject site names must be registered constants from the canonical site table",
	Run:  run,
}

// siteFuncs are the faultinject functions whose first argument is a site.
var siteFuncs = map[string]bool{
	"Check":            true,
	"Arm":              true,
	"ArmProbabilistic": true,
	"ArmLatency":       true,
	"Disarm":           true,
	"Calls":            true,
	"Fired":            true,
	"SiteDoc":          true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/faultinject") {
				return true
			}
			if !siteFuncs[fn.Name()] || len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"faultinject.%s: site must be a compile-time string constant from the canonical site table", fn.Name())
				return true
			}
			site := constant.StringVal(tv.Value)
			if !faultinject.IsSite(site) {
				pass.Reportf(arg.Pos(),
					"faultinject.%s: %q is not a registered site (known: %s)",
					fn.Name(), site, strings.Join(faultinject.Sites(), ", "))
			}
			return true
		})
	}
	return nil, nil
}
