// Package a exercises the canonical fault-injection site rule. It calls
// into the real sprout/internal/faultinject package, so the analyzer
// checks literals against the actual registry.
package a

import "sprout/internal/faultinject"

// UseConstant is the preferred shape: the registered constant.
func UseConstant() error {
	return faultinject.Check(faultinject.SiteCG)
}

// UseRegisteredLiteral is accepted: the literal matches a registered site.
func UseRegisteredLiteral() error {
	return faultinject.Check("route.grow")
}

// Typo never fires at runtime: flagged.
func Typo() error {
	return faultinject.Check("sparse.gc") // want `"sparse.gc" is not a registered site`
}

// ArmTypo would arm a hook that no production check point reads: flagged.
func ArmTypo() {
	faultinject.Arm("route.gorw", 1, nil) // want `"route.gorw" is not a registered site`
}

// Dynamic site names defeat static checking: flagged.
func Dynamic(site string) error {
	return faultinject.Check(site) // want `site must be a compile-time string constant`
}

// ProbabilisticOK arms a registered site probabilistically: accepted.
func ProbabilisticOK() {
	faultinject.ArmProbabilistic(faultinject.SiteCG, 42, 0.5, nil)
}

// ProbabilisticTypo arms an unregistered site: flagged.
func ProbabilisticTypo() {
	faultinject.ArmProbabilistic("sparse.cgg", 42, 0.5, nil) // want `"sparse.cgg" is not a registered site`
}

// LatencyTypo injects latency at an unregistered site: flagged.
func LatencyTypo() {
	faultinject.ArmLatency("grow.route", 42, 1, 0) // want `"grow.route" is not a registered site`
}
