package faultpoint_test

import (
	"testing"

	"sprout/internal/lint/analysistest"
	"sprout/internal/lint/faultpoint"
)

func TestFaultpoint(t *testing.T) {
	analysistest.Run(t, "testdata", faultpoint.Analyzer, "a")
}
