package atomicmix_test

import (
	"testing"

	"sprout/internal/lint/analysistest"
	"sprout/internal/lint/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "a")
}
