// Package a is the atomicmix corpus: once a field or var is touched
// through sync/atomic, every other access must be atomic too.
package a

import "sync/atomic"

type counter struct {
	hits int64 // accessed atomically — plain access elsewhere is a race
	cold int64 // never touched atomically — plain access is fine
}

// Inc is the access that puts hits in the atomic set.
func (c *counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// Snapshot reads atomically: clean.
func (c *counter) Snapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

// PlainRead races with Inc.
func (c *counter) PlainRead() int64 {
	return c.hits // want `non-atomic access of hits, which is accessed with sync/atomic at a\.go:\d+`
}

// PlainWrite races with Inc.
func (c *counter) PlainWrite() {
	c.hits = 0 // want `non-atomic access of hits`
}

// ColdAccess touches the never-atomic field: clean.
func (c *counter) ColdAccess() int64 {
	c.cold++
	return c.cold
}

// NewCounter initialises by composite-literal key: deliberately exempt —
// the value is unshared until the constructor returns.
func NewCounter() *counter {
	return &counter{hits: 0, cold: 0}
}

// gate is a package-level flag flipped atomically.
var gate int32

// Arm stores atomically.
func Arm() {
	atomic.StoreInt32(&gate, 1)
}

// Armed mixes in a plain read.
func Armed() bool {
	return gate == 1 // want `non-atomic access of gate`
}

// plain is only ever accessed without atomics: clean everywhere.
var plain int32

// Bump is a plain increment of a plain var.
func Bump() {
	plain++
}
