// Package atomicmix reports mixed atomic/plain access: once any code in
// a package touches a variable or field through sync/atomic, every other
// access must be atomic too. A plain read next to an atomic.Store is a
// data race the race detector only catches when both sides happen to
// fire — the gate fields this guards (the obs enable flag, sproutd's
// admission counters) flip rarely, so the mix survives tests and
// corrupts state in production.
//
// The pass is two package-wide sweeps: the first collects every object
// whose address is passed to a sync/atomic function, the second reports
// any other use of those objects. Composite-literal field keys are
// deliberately exempt — `counter{hits: 0}` initialises a value nothing
// else can see yet, and flagging it would force atomics on constructors.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"sprout/internal/lint/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// Sweep 1: objects addressed by sync/atomic calls, with the position
	// of the first such call (quoted in diagnostics), plus the operand
	// subtrees so sweep 2 does not report the atomic accesses themselves.
	atomicObjs := map[types.Object]token.Pos{}
	operands := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := addressedObject(pass, addr.X); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call.Pos()
				}
				operands[addr] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil, nil
	}

	// Sweep 2: any other use of those objects is a plain — racy — access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if operands[n] {
				return false // the atomic call's own &x operand
			}
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					if v, isVar := pass.TypesInfo.Uses[id].(*types.Var); isVar && v.IsField() {
						ast.Inspect(kv.Value, func(m ast.Node) bool { return inspectIdent(pass, m, atomicObjs, operands) })
						return false // field key: composite-literal init
					}
				}
			}
			return inspectIdent(pass, n, atomicObjs, operands)
		})
	}
	return nil, nil
}

// inspectIdent reports n if it is a use of an atomically-accessed object.
func inspectIdent(pass *analysis.Pass, n ast.Node, atomicObjs map[types.Object]token.Pos, operands map[ast.Node]bool) bool {
	if operands[n] {
		return false
	}
	id, ok := n.(*ast.Ident)
	if !ok {
		return true
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true
	}
	if firstAt, ok := atomicObjs[obj]; ok {
		at := pass.Fset.Position(firstAt)
		pass.Reportf(id.Pos(), "non-atomic access of %s, which is accessed with sync/atomic at %s:%d",
			obj.Name(), filepath.Base(at.Filename), at.Line)
	}
	return true
}

// addressedObject resolves &x's x to the variable or field object it
// names, or nil when the operand is not a plain variable/field (an index
// expression, a call result, ...).
func addressedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	case *ast.ParenExpr:
		return addressedObject(pass, e.X)
	}
	return nil
}
