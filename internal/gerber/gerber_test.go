package gerber

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sprout/internal/geom"
)

func render(t *testing.T, nets []NetCopper, opt Options) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, "pwr", nets, opt); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestGerberHeaderAndTrailer(t *testing.T) {
	out := render(t, nil, Options{Comment: "hello"})
	for _, want := range []string{
		"%FSLAX46Y46*%", "%MOMM*%", "G01*", "M02*",
		"%TF.FileFunction,Copper,L1,pwr*%", "G04 hello*",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestGerberRegionContours(t *testing.T) {
	g := geom.RegionFromRect(geom.R(0, 0, 10, 10)).
		Subtract(geom.RegionFromRect(geom.R(4, 4, 6, 6)))
	out := render(t, []NetCopper{{Name: "VDD", Copper: g}}, Options{})
	if strings.Count(out, "G36*") != 2 || strings.Count(out, "G37*") != 2 {
		t.Fatalf("want 2 contours (outer + hole):\n%s", out)
	}
	if strings.Count(out, "%LPD*%") != 1 || strings.Count(out, "%LPC*%") != 1 {
		t.Fatalf("polarity switches wrong:\n%s", out)
	}
	// 0.1 mm units, 4.6 format: x=10 units -> 1 mm -> 1000000.
	if !strings.Contains(out, "X1000000Y0D01*") {
		t.Fatalf("coordinate scaling wrong:\n%s", out)
	}
	if !strings.Contains(out, "G04 net VDD*") {
		t.Fatal("net comment missing")
	}
}

func TestGerberCustomUnit(t *testing.T) {
	g := geom.RegionFromRect(geom.R(0, 0, 2, 2))
	out := render(t, []NetCopper{{Name: "v", Copper: g}}, Options{UnitMM: 1})
	// 2 units at 1 mm = 2 mm = 2000000.
	if !strings.Contains(out, "X2000000Y0D01*") {
		t.Fatalf("custom unit scaling wrong:\n%s", out)
	}
	var buf bytes.Buffer
	if err := Write(&buf, "x", nil, Options{UnitMM: -1}); err == nil {
		t.Fatal("negative unit must error")
	}
}

func TestGerberDeterministicAndTimestamp(t *testing.T) {
	g := geom.RegionFromRects([]geom.Rect{{X0: 0, Y0: 0, X1: 5, Y1: 5}, {X0: 10, Y0: 0, X1: 15, Y1: 5}})
	nets := []NetCopper{{Name: "a", Copper: g}}
	ts := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	a := render(t, nets, Options{Timestamp: ts})
	b := render(t, nets, Options{Timestamp: ts})
	if a != b {
		t.Fatal("output must be deterministic")
	}
	if !strings.Contains(a, "2026-07-04T12:00:00Z") {
		t.Fatal("timestamp missing")
	}
}

func TestGerberSanitize(t *testing.T) {
	out := render(t, []NetCopper{{
		Name:   "bad*name%",
		Copper: geom.RegionFromRect(geom.R(0, 0, 1, 1)),
	}}, Options{})
	if strings.Contains(out, "bad*name") {
		t.Fatal("asterisk must be sanitized from names")
	}
	if !strings.Contains(out, "bad_name_") {
		t.Fatalf("sanitized name missing:\n%s", out)
	}
}

func TestGerberSkipsEmptyNets(t *testing.T) {
	out := render(t, []NetCopper{{Name: "empty"}}, Options{})
	if strings.Contains(out, "G36*") {
		t.Fatal("empty net must not emit contours")
	}
}

func TestGerberClosedContours(t *testing.T) {
	// Every G36 block must end at its starting coordinate.
	g := geom.RegionFromRects([]geom.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 4}, {X0: 0, Y0: 4, X1: 4, Y1: 10}})
	out := render(t, []NetCopper{{Name: "L", Copper: g}}, Options{})
	blocks := strings.Split(out, "G36*")
	for _, blk := range blocks[1:] {
		end := strings.Index(blk, "G37*")
		if end < 0 {
			t.Fatal("unterminated contour")
		}
		lines := strings.Split(strings.TrimSpace(blk[:end]), "\n")
		first := strings.TrimSuffix(lines[0], "D02*")
		last := strings.TrimSuffix(lines[len(lines)-1], "D01*")
		if first != last {
			t.Fatalf("contour not closed: %q vs %q", first, last)
		}
	}
}
