// Package gerber emits synthesized copper as RS-274X (Gerber) layer files,
// the interchange format downstream PCB fabrication and CAD flows consume.
// Regions are written as G36/G37 contour fills: each traced outer boundary
// is drawn with dark polarity and its holes with clear polarity, so the
// imported artwork matches the Region geometry exactly.
//
// Coordinates use the 4.6 format in millimetres; one geometry grid unit is
// 0.1 mm (the convention of the case studies), configurable via UnitMM.
package gerber

import (
	"fmt"
	"io"
	"strings"
	"time"

	"sprout/internal/geom"
)

// Options configures the writer.
type Options struct {
	// UnitMM is the size of one geometry grid unit in millimetres.
	// Zero selects 0.1 mm.
	UnitMM float64
	// Comment is an optional header comment (tool stamp).
	Comment string
	// Timestamp is embedded in the header when non-zero (kept injectable
	// for reproducible output and tests).
	Timestamp time.Time
}

// NetCopper is one net's copper on the layer being written.
type NetCopper struct {
	Name   string
	Copper geom.Region
}

// Write emits one Gerber layer file containing the given nets' copper.
func Write(w io.Writer, layerName string, nets []NetCopper, opt Options) error {
	unit := opt.UnitMM
	if unit == 0 {
		unit = 0.1
	}
	if unit <= 0 {
		return fmt.Errorf("gerber: non-positive unit %g", unit)
	}
	var sb strings.Builder
	sb.WriteString("%TF.GenerationSoftware,sprout,PDN router*%\n")
	if opt.Comment != "" {
		fmt.Fprintf(&sb, "G04 %s*\n", sanitize(opt.Comment))
	}
	if !opt.Timestamp.IsZero() {
		fmt.Fprintf(&sb, "%%TF.CreationDate,%s*%%\n", opt.Timestamp.Format(time.RFC3339))
	}
	fmt.Fprintf(&sb, "%%TF.FileFunction,Copper,L1,%s*%%\n", sanitize(layerName))
	sb.WriteString("%FSLAX46Y46*%\n")
	sb.WriteString("%MOMM*%\n")
	sb.WriteString("G01*\n")

	coord := func(v int64) int64 {
		// 4.6 format: value in units of 1e-6 mm.
		return int64(float64(v) * unit * 1e6)
	}
	emitLoop := func(loop geom.Loop) {
		sb.WriteString("G36*\n")
		for i, p := range loop.V {
			op := "D01"
			if i == 0 {
				op = "D02"
			}
			fmt.Fprintf(&sb, "X%dY%d%s*\n", coord(p.X), coord(p.Y), op)
		}
		// Close the contour back to the first vertex.
		fmt.Fprintf(&sb, "X%dY%dD01*\n", coord(loop.V[0].X), coord(loop.V[0].Y))
		sb.WriteString("G37*\n")
	}

	for _, net := range nets {
		if net.Copper.Empty() {
			continue
		}
		fmt.Fprintf(&sb, "G04 net %s*\n", sanitize(net.Name))
		for _, pw := range net.Copper.Polygons() {
			sb.WriteString("%LPD*%\n")
			emitLoop(geom.Loop{V: pw.Outer.V})
			for _, hole := range pw.Holes {
				sb.WriteString("%LPC*%\n")
				emitLoop(geom.Loop{V: hole.V})
			}
		}
	}
	sb.WriteString("M02*\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// sanitize strips characters that terminate Gerber data blocks.
func sanitize(s string) string {
	r := strings.NewReplacer("*", "_", "%", "_", "\n", " ")
	return r.Replace(s)
}
