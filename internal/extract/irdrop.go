package extract

import (
	"fmt"

	"sprout/internal/geom"
	"sprout/internal/route"
	"sprout/internal/sparse"
)

// EdgeCurrent is the DC current in one tile-graph edge at the operating
// point.
type EdgeCurrent struct {
	U, V int
	Amps float64 // positive from U to V
}

// OperatingPoint is a full DC solution of a routed shape under a
// distributed load: the PMIC terminal sources the total current and every
// load terminal sinks its share — the paper's §III-C loading model ("the
// current demand of each rail is uniformly distributed within the ball
// grid array"). It exposes the node IR-drop map (Fig. 12c's underlying
// field) and the per-edge currents that drive the thermal analysis.
type OperatingPoint struct {
	// TG is the extraction tile graph; Cells[i] locates node i.
	TG *route.TileGraph
	// NodeDropV is the IR drop of every node below the source, in volts.
	NodeDropV []float64
	// Edges lists the branch currents.
	Edges []EdgeCurrent
	// MaxDropV is the worst drop over the load terminals.
	MaxDropV float64
	// WorstLoad indexes the loads slice entry with the worst drop.
	WorstLoad int
	// TotalPowerW is the dissipated ohmic power at the operating point.
	TotalPowerW float64
}

// DCOperate solves the distributed-load operating point of a copper shape:
// source supplies totalA amperes; each load sinks a share proportional to
// its Current weight.
func DCOperate(shape geom.Region, source route.Terminal, loads []route.Terminal, totalA float64, opt Options) (*OperatingPoint, error) {
	opt = opt.withDefaults()
	if totalA <= 0 {
		return nil, fmt.Errorf("extract: total current %g must be positive", totalA)
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("extract: no loads")
	}
	terms := append([]route.Terminal{source}, loads...)
	tg, err := route.BuildTileGraph(shape, terms, opt.Pitch, opt.Pitch)
	if err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	// Conductance edges in siemens: squares / sheetOhms.
	var edges []sparse.WeightedEdge
	for _, e := range tg.G.Edges() {
		edges = append(edges, sparse.WeightedEdge{U: e.U, V: e.V, W: e.Weight / opt.SheetOhms})
	}
	srcNode := tg.Terminals[0]
	lap, err := sparse.NewLaplacian(tg.G.N(), edges, srcNode)
	if err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	// Load shares.
	var wsum float64
	for _, l := range loads {
		w := l.Current
		if w <= 0 {
			w = 1
		}
		wsum += w
	}
	inj := make([]float64, tg.G.N())
	inj[srcNode] = totalA
	for i, l := range loads {
		w := l.Current
		if w <= 0 {
			w = 1
		}
		inj[tg.Terminals[i+1]] -= totalA * w / wsum
	}
	v, err := lap.Solve(inj, nil)
	if err != nil {
		return nil, fmt.Errorf("extract: operating point: %w", err)
	}
	op := &OperatingPoint{TG: tg, NodeDropV: make([]float64, tg.G.N())}
	// Source potential is 0 (ground reference); drops are -v.
	for i, vi := range v {
		op.NodeDropV[i] = -vi
	}
	op.WorstLoad = -1
	for i := range loads {
		if d := op.NodeDropV[tg.Terminals[i+1]]; op.WorstLoad == -1 || d > op.MaxDropV {
			op.MaxDropV = d
			op.WorstLoad = i
		}
	}
	for _, e := range tg.G.Edges() {
		g := e.Weight / opt.SheetOhms
		i := g * (v[e.U] - v[e.V])
		op.Edges = append(op.Edges, EdgeCurrent{U: e.U, V: e.V, Amps: i})
		op.TotalPowerW += i * i / g
	}
	return op, nil
}

// NodeJouleHeat distributes the per-edge ohmic power onto the nodes (half
// to each endpoint), the heat-source vector of the thermal analysis.
func (op *OperatingPoint) NodeJouleHeat(sheetOhms float64) []float64 {
	q := make([]float64, op.TG.G.N())
	// Recover each edge's conductance from the graph for the power split.
	type key struct{ u, v int }
	gOf := map[key]float64{}
	for _, e := range op.TG.G.Edges() {
		gOf[key{e.U, e.V}] = e.Weight / sheetOhms
	}
	for _, ec := range op.Edges {
		g := gOf[key{ec.U, ec.V}]
		if g <= 0 {
			continue
		}
		p := ec.Amps * ec.Amps / g
		q[ec.U] += p / 2
		q[ec.V] += p / 2
	}
	return q
}
