package extract

import (
	"fmt"
	"math"
)

// ViaSpec describes one via barrel for parasitic estimation.
type ViaSpec struct {
	// DrillUM is the finished drill diameter in µm.
	DrillUM float64
	// PlatingUM is the barrel plating thickness in µm (typ. 25).
	PlatingUM float64
	// LengthUM is the barrel length (layer-to-layer dielectric span).
	LengthUM float64
}

// Validate reports the first bad parameter.
func (v ViaSpec) Validate() error {
	if v.DrillUM <= 0 || v.PlatingUM <= 0 || v.LengthUM <= 0 {
		return fmt.Errorf("extract: via spec %+v must be positive", v)
	}
	if v.PlatingUM*2 >= v.DrillUM+2*v.PlatingUM {
		// Always true structurally; guard kept for clarity of the model:
		// the barrel is an annulus of outer radius drill/2+plating.
		_ = v
	}
	return nil
}

// ResistanceOhms returns the DC resistance of the plated barrel:
// ρ·L / A with A the plating annulus cross-section.
func (v ViaSpec) ResistanceOhms() (float64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	const rhoOhmUM = 0.0172 // copper, Ω·µm
	rOuter := v.DrillUM/2 + v.PlatingUM
	rInner := v.DrillUM / 2
	area := math.Pi * (rOuter*rOuter - rInner*rInner) // µm²
	return rhoOhmUM * v.LengthUM / area, nil
}

// InductancePH returns the partial self-inductance of the barrel using the
// standard round-wire formula L = (μ0/2π)·l·(ln(4l/d) - 0.75)
// (Grover), in picohenries.
func (v ViaSpec) InductancePH() (float64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	lM := v.LengthUM * 1e-6
	dM := v.DrillUM * 1e-6
	arg := 4 * lM / dM
	if arg <= 1 {
		// Stubby via: inductance is negligible; clamp the log.
		arg = math.E
	}
	const mu0Over2Pi = 2e-7 // H/m
	l := mu0Over2Pi * lM * (math.Log(arg) - 0.75)
	if l < 0 {
		l = 0
	}
	return l * 1e12, nil
}

// ViaArray aggregates n parallel vias of the same spec: resistance and
// inductance divide by n (mutual coupling neglected at typical BGA
// pitches), the model the paper's multilayer appendix needs to cost
// interlayer connections.
func ViaArray(spec ViaSpec, n int) (rOhms, lPH float64, err error) {
	if n < 1 {
		return 0, 0, fmt.Errorf("extract: via count %d must be >= 1", n)
	}
	r, err := spec.ResistanceOhms()
	if err != nil {
		return 0, 0, err
	}
	l, err := spec.InductancePH()
	if err != nil {
		return 0, 0, err
	}
	return r / float64(n), l / float64(n), nil
}
