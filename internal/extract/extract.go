// Package extract estimates the parasitic impedance of a synthesized power
// shape, standing in for the commercial parasitic extraction tool used in
// the paper's evaluation (§III: "the impedance of the layouts is extracted
// using a commercial parasitic extraction tool").
//
// DC resistance: the copper shape is re-tiled at a fine pitch, the tile
// conductance graph is assembled exactly as in routing (contact width per
// pitch = sheet squares), and the effective resistance between terminal
// pairs is solved by nodal analysis. Multiplying the sheet-square result
// by the layer's sheet resistance yields ohms — this is what a commercial
// extractor computes at DC for planar shapes.
//
// Loop inductance at 25 MHz: at that frequency board copper is far below
// its skin-effect corner for the relevant dimensions and the return flows
// in the adjacent reference plane, so the current distribution follows the
// DC solution and each tile edge behaves as a microstrip-over-plane
// segment with partial inductance L = μ0·h·ℓ/w. The loop inductance
// follows from the energy method: with a unit injected current,
// L_loop = Σ_edges L_edge·I_edge². This reproduces the geometry dependence
// that drives the paper's Tables II/III and Fig. 12b: long narrow shapes
// are inductive, wide shapes are not.
package extract

import (
	"context"
	"fmt"
	"math"

	"sprout/internal/faultinject"
	"sprout/internal/geom"
	"sprout/internal/obs"
	"sprout/internal/route"
)

// Mu0PHPerUM is the vacuum permeability expressed in picohenries per
// micrometer: μ0 = 4π×10⁻⁷ H/m = 0.4π pH/µm.
const Mu0PHPerUM = 0.4 * math.Pi

// Options configures an extraction.
type Options struct {
	// Pitch is the fine re-tiling pitch in grid units. Default 5.
	Pitch int64
	// SheetOhms is the layer's sheet resistance in ohms per square.
	// Default 0.5 mΩ/sq (1 oz copper).
	SheetOhms float64
	// HeightUM is the dielectric distance to the return reference plane in
	// micrometers. Default 100.
	HeightUM float64
}

func (o Options) withDefaults() Options {
	if o.Pitch <= 0 {
		o.Pitch = 5
	}
	if o.SheetOhms <= 0 {
		o.SheetOhms = 0.0005
	}
	if o.HeightUM <= 0 {
		o.HeightUM = 100
	}
	return o
}

// Report is the extracted impedance of one net's copper shape.
type Report struct {
	// ResistanceOhms is the injection-weighted pairwise effective
	// resistance in ohms.
	ResistanceOhms float64
	// PairResistanceOhms lists per-pair effective resistances.
	PairResistanceOhms []float64
	// InductancePH is the injection-weighted loop inductance in
	// picohenries at the 25 MHz plane-return model.
	InductancePH float64
	// PairInductancePH lists per-pair loop inductances.
	PairInductancePH []float64
	// MaxCurrentDensity is the highest edge current per unit contact
	// width for a 1 A total injection (A per grid unit), the paper's
	// §I current-density design metric.
	MaxCurrentDensity float64
	// SquaresResistance is the raw resistance in sheet squares.
	SquaresResistance float64
	// Nodes is the size of the extraction graph (diagnostics).
	Nodes int
}

// Extract computes the impedance report without cancellation or tracing
// support; see ExtractCtx.
func Extract(shape geom.Region, terms []route.Terminal, opt Options) (*Report, error) {
	return ExtractCtx(context.Background(), shape, terms, opt)
}

// ExtractCtx computes the impedance report for a copper shape connecting
// the given terminals. The fine re-tiling and the per-pair nodal solves
// run under an "Extract" tracing span; context cancellation aborts the
// solves.
func ExtractCtx(ctx context.Context, shape geom.Region, terms []route.Terminal, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	if shape.Empty() {
		return nil, fmt.Errorf("extract: empty shape")
	}
	sctx, sp := obs.StartSpan(ctx, "Extract", obs.A("pitch", opt.Pitch))
	defer sp.End()
	if err := faultinject.Check(faultinject.SiteExtract); err != nil {
		sp.Fail(err)
		return nil, fmt.Errorf("extract: %w", err)
	}
	tg, err := route.BuildTileGraph(shape, terms, opt.Pitch, opt.Pitch)
	if err != nil {
		sp.Fail(err)
		return nil, fmt.Errorf("extract: %w", err)
	}
	sp.SetAttrs(obs.A("nodes", tg.G.N()))
	members := make([]bool, tg.G.N())
	for i := range members {
		members[i] = true
	}
	volts, pairs, weights, err := tg.PairVoltagesCtx(sctx, members)
	if err != nil {
		sp.Fail(err)
		return nil, fmt.Errorf("extract: %w", err)
	}

	rep := &Report{Nodes: tg.G.N()}
	edges := tg.G.Edges()
	var wsum float64
	for pi := range pairs {
		v := volts[pi]
		s := tg.Terminals[pairs[pi][0]]
		t := tg.Terminals[pairs[pi][1]]
		squares := v[s] - v[t]
		rOhms := squares * opt.SheetOhms

		// Energy-method loop inductance: L = μ0·h·Σ I²/g, with I the edge
		// current under the unit pair injection and g the edge conductance
		// in squares (see package comment for the derivation; the segment
		// aspect ratio ℓ/w equals 1/g).
		var l float64
		for _, e := range edges {
			i := e.Weight * math.Abs(v[e.U]-v[e.V])
			if i == 0 {
				continue
			}
			l += i * i / e.Weight
			// Edge current per contact width: width = g·pitch.
			dens := i / (e.Weight * float64(opt.Pitch))
			if dens > rep.MaxCurrentDensity {
				rep.MaxCurrentDensity = dens
			}
		}
		lPH := Mu0PHPerUM * opt.HeightUM * l

		rep.PairResistanceOhms = append(rep.PairResistanceOhms, rOhms)
		rep.PairInductancePH = append(rep.PairInductancePH, lPH)
		rep.ResistanceOhms += weights[pi] * rOhms
		rep.InductancePH += weights[pi] * lPH
		rep.SquaresResistance += weights[pi] * squares
		wsum += weights[pi]
	}
	if wsum > 0 {
		rep.ResistanceOhms /= wsum
		rep.InductancePH /= wsum
		rep.SquaresResistance /= wsum
	}
	return rep, nil
}
