package extract

import (
	"math"
	"testing"
)

func typicalVia() ViaSpec {
	// 0.2 mm drill, 25 µm plating, 0.8 mm span — a standard through via.
	return ViaSpec{DrillUM: 200, PlatingUM: 25, LengthUM: 800}
}

func TestViaResistanceBallpark(t *testing.T) {
	r, err := typicalVia().ResistanceOhms()
	if err != nil {
		t.Fatal(err)
	}
	// Annulus area ~ π(125² - 100²) ≈ 17671 µm²;
	// R = 0.0172·800/17671 ≈ 0.78 mΩ.
	if r < 0.0004 || r > 0.0015 {
		t.Fatalf("via R = %g Ω, want ~0.78 mΩ", r)
	}
}

func TestViaInductanceBallpark(t *testing.T) {
	l, err := typicalVia().InductancePH()
	if err != nil {
		t.Fatal(err)
	}
	// Standard result: a 0.8 mm via is a few hundred pH.
	if l < 100 || l > 600 {
		t.Fatalf("via L = %g pH, want a few hundred", l)
	}
}

func TestViaScaling(t *testing.T) {
	short := ViaSpec{DrillUM: 200, PlatingUM: 25, LengthUM: 200}
	long := ViaSpec{DrillUM: 200, PlatingUM: 25, LengthUM: 1600}
	rs, _ := short.ResistanceOhms()
	rl, _ := long.ResistanceOhms()
	if math.Abs(rl/rs-8) > 1e-9 {
		t.Fatalf("R must scale linearly with length: ratio %g", rl/rs)
	}
	ls, _ := short.InductancePH()
	ll, _ := long.InductancePH()
	if ll <= ls {
		t.Fatal("longer via must be more inductive")
	}
	fat := ViaSpec{DrillUM: 400, PlatingUM: 25, LengthUM: 800}
	lf, _ := fat.InductancePH()
	lt, _ := typicalVia().InductancePH()
	if lf >= lt {
		t.Fatal("fatter via must be less inductive")
	}
}

func TestViaArray(t *testing.T) {
	r1, l1, err := ViaArray(typicalVia(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, l4, err := ViaArray(typicalVia(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r4*4-r1) > 1e-12 || math.Abs(l4*4-l1) > 1e-9 {
		t.Fatalf("array must divide by n: R %g/%g L %g/%g", r1, r4, l1, l4)
	}
	if _, _, err := ViaArray(typicalVia(), 0); err == nil {
		t.Fatal("zero count must error")
	}
}

func TestViaValidation(t *testing.T) {
	bad := []ViaSpec{
		{DrillUM: 0, PlatingUM: 25, LengthUM: 800},
		{DrillUM: 200, PlatingUM: 0, LengthUM: 800},
		{DrillUM: 200, PlatingUM: 25, LengthUM: 0},
	}
	for _, v := range bad {
		if _, err := v.ResistanceOhms(); err == nil {
			t.Fatalf("spec %+v must be rejected", v)
		}
		if _, err := v.InductancePH(); err == nil {
			t.Fatalf("spec %+v must be rejected", v)
		}
	}
	// Stubby via clamps the log instead of going negative.
	stub := ViaSpec{DrillUM: 800, PlatingUM: 25, LengthUM: 100}
	l, err := stub.InductancePH()
	if err != nil || l < 0 {
		t.Fatalf("stub via L = %g err=%v", l, err)
	}
}
