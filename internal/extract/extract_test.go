package extract

import (
	"math"
	"testing"

	"sprout/internal/geom"
	"sprout/internal/route"
)

// strip builds a W-long, H-wide rectangle with full-height terminals at
// both ends of width tw.
func strip(w, h, tw int64) (geom.Region, []route.Terminal) {
	shape := geom.RegionFromRect(geom.R(0, 0, w, h))
	terms := []route.Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 0, tw, h)), Current: 1},
		{Name: "T", Shape: geom.RegionFromRect(geom.R(w-tw, 0, w, h)), Current: 1},
	}
	return shape, terms
}

func TestExtractStripResistanceMatchesSheetModel(t *testing.T) {
	// 100x10 strip, 5-wide end terminals: interior is 90/10 = 9 squares.
	shape, terms := strip(100, 10, 5)
	rep, err := Extract(shape, terms, Options{Pitch: 5, SheetOhms: 0.001, HeightUM: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.001 * 9.0
	if math.Abs(rep.ResistanceOhms-want)/want > 0.12 {
		t.Fatalf("strip resistance = %g, want ~%g (within 12%%)", rep.ResistanceOhms, want)
	}
	if len(rep.PairResistanceOhms) != 1 {
		t.Fatalf("pair count = %d, want 1", len(rep.PairResistanceOhms))
	}
}

func TestExtractStripInductanceMatchesMicrostrip(t *testing.T) {
	// L = μ0·h·ℓ/w for a uniform strip: 9 squares at h=100 µm.
	shape, terms := strip(100, 10, 5)
	rep, err := Extract(shape, terms, Options{Pitch: 5, SheetOhms: 0.001, HeightUM: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := Mu0PHPerUM * 100 * 9.0
	if math.Abs(rep.InductancePH-want)/want > 0.12 {
		t.Fatalf("strip inductance = %g pH, want ~%g pH", rep.InductancePH, want)
	}
}

func TestExtractWiderShapeLowerImpedance(t *testing.T) {
	shapeN, termsN := strip(100, 10, 5)
	shapeW, termsW := strip(100, 20, 5)
	repN, err := Extract(shapeN, termsN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	repW, err := Extract(shapeW, termsW, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if repW.ResistanceOhms >= repN.ResistanceOhms {
		t.Fatalf("wider strip must have lower R: %g vs %g", repW.ResistanceOhms, repN.ResistanceOhms)
	}
	if repW.InductancePH >= repN.InductancePH {
		t.Fatalf("wider strip must have lower L: %g vs %g", repW.InductancePH, repN.InductancePH)
	}
	// Doubling width roughly halves both.
	if r := repN.ResistanceOhms / repW.ResistanceOhms; r < 1.6 || r > 2.4 {
		t.Fatalf("width doubling R ratio = %g, want ~2", r)
	}
}

func TestExtractTallerDielectricHigherInductance(t *testing.T) {
	shape, terms := strip(100, 10, 5)
	lo, err := Extract(shape, terms, Options{HeightUM: 50})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Extract(shape, terms, Options{HeightUM: 200})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := hi.InductancePH / lo.InductancePH; math.Abs(ratio-4) > 0.01 {
		t.Fatalf("L must scale linearly with height: ratio = %g, want 4", ratio)
	}
	if hi.ResistanceOhms != lo.ResistanceOhms {
		t.Fatal("height must not affect DC resistance")
	}
}

func TestExtractLShapeHigherThanDirect(t *testing.T) {
	// An L-shaped detour between the same terminals is longer and thus
	// more resistive than a straight strip of the same width.
	direct, terms := strip(100, 10, 5)
	l := geom.RegionFromRects([]geom.Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 100},
		{X0: 0, Y0: 90, X1: 100, Y1: 100},
	})
	lTerms := []route.Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 0, 10, 5)), Current: 1},
		{Name: "T", Shape: geom.RegionFromRect(geom.R(95, 90, 100, 100)), Current: 1},
	}
	repD, err := Extract(direct, terms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	repL, err := Extract(l, lTerms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if repL.ResistanceOhms <= repD.ResistanceOhms {
		t.Fatalf("L detour must be more resistive: %g vs %g", repL.ResistanceOhms, repD.ResistanceOhms)
	}
}

func TestExtractCurrentDensityPositive(t *testing.T) {
	shape, terms := strip(100, 10, 5)
	rep, err := Extract(shape, terms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxCurrentDensity <= 0 {
		t.Fatal("current density must be positive")
	}
	// Unit current through a 10-wide strip: density ~0.1 per unit width.
	if rep.MaxCurrentDensity < 0.05 || rep.MaxCurrentDensity > 0.5 {
		t.Fatalf("current density = %g, want ~0.1", rep.MaxCurrentDensity)
	}
}

func TestExtractMultiTerminalWeighting(t *testing.T) {
	// Three terminals: PMIC with high current plus two BGA groups.
	shape := geom.RegionFromRect(geom.R(0, 0, 100, 40))
	terms := []route.Terminal{
		{Name: "PMIC", Shape: geom.RegionFromRect(geom.R(0, 15, 5, 25)), Current: 10},
		{Name: "B1", Shape: geom.RegionFromRect(geom.R(95, 0, 100, 10)), Current: 5},
		{Name: "B2", Shape: geom.RegionFromRect(geom.R(95, 30, 100, 40)), Current: 5},
	}
	rep, err := Extract(shape, terms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PairResistanceOhms) != 3 {
		t.Fatalf("pairs = %d, want 3", len(rep.PairResistanceOhms))
	}
	for i, r := range rep.PairResistanceOhms {
		if r <= 0 {
			t.Fatalf("pair %d resistance = %g", i, r)
		}
	}
	// The weighted aggregate lies within the pair range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rep.PairResistanceOhms {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if rep.ResistanceOhms < lo || rep.ResistanceOhms > hi {
		t.Fatalf("aggregate %g outside pair range [%g, %g]", rep.ResistanceOhms, lo, hi)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(geom.EmptyRegion(), nil, Options{}); err == nil {
		t.Fatal("empty shape must error")
	}
	shape := geom.RegionFromRect(geom.R(0, 0, 10, 10))
	terms := []route.Terminal{{Name: "only", Shape: shape}}
	if _, err := Extract(shape, terms, Options{}); err == nil {
		t.Fatal("single terminal must error")
	}
}

func TestExtractDefaultsApplied(t *testing.T) {
	shape, terms := strip(100, 10, 5)
	rep, err := Extract(shape, terms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes == 0 || rep.ResistanceOhms <= 0 || rep.InductancePH <= 0 {
		t.Fatalf("defaults produced bad report: %+v", rep)
	}
}
