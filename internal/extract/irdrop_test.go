package extract

import (
	"math"
	"testing"

	"sprout/internal/geom"
	"sprout/internal/route"
)

func TestDCOperateUniformStrip(t *testing.T) {
	// 1 A through a 100x10 strip (sheet 1 mΩ/sq): end-to-end drop equals
	// the squares count times sheet times current.
	shape, terms := strip(100, 10, 5)
	op, err := DCOperate(shape, terms[0], terms[1:], 1.0,
		Options{Pitch: 5, SheetOhms: 0.001, HeightUM: 100})
	if err != nil {
		t.Fatal(err)
	}
	wantDrop := 0.001 * 9.0 * 1.0 // ~9 squares
	if math.Abs(op.MaxDropV-wantDrop)/wantDrop > 0.12 {
		t.Fatalf("drop = %g, want ~%g", op.MaxDropV, wantDrop)
	}
	// Power = I²R.
	if math.Abs(op.TotalPowerW-wantDrop)/wantDrop > 0.12 {
		t.Fatalf("power = %g, want ~%g W", op.TotalPowerW, wantDrop)
	}
	if op.WorstLoad != 0 {
		t.Fatalf("worst load = %d, want 0", op.WorstLoad)
	}
	// Source node drop must be 0 and all drops non-negative (no node can
	// sit above the source in a resistive sink network).
	for i, d := range op.NodeDropV {
		if d < -1e-9 {
			t.Fatalf("node %d drop %g below source", i, d)
		}
	}
}

func TestDCOperateKCL(t *testing.T) {
	// Branch currents must satisfy KCL: net flow out of the source equals
	// the injected total.
	shape, terms := strip(100, 10, 5)
	op, err := DCOperate(shape, terms[0], terms[1:], 2.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := op.TG.Terminals[0]
	var out float64
	for _, ec := range op.Edges {
		if ec.U == src {
			out += ec.Amps
		}
		if ec.V == src {
			out -= ec.Amps
		}
	}
	if math.Abs(out-2.0) > 1e-6 {
		t.Fatalf("source outflow = %g, want 2", out)
	}
}

func TestDCOperateDistributedLoads(t *testing.T) {
	// Two loads with 3:1 weights on a wide plate: the heavier load sits
	// farther down in voltage when equidistant... place them symmetric and
	// check the drop ordering follows the weights.
	shape := geom.RegionFromRect(geom.R(0, 0, 120, 60))
	source := route.Terminal{Name: "PMIC", Shape: geom.RegionFromRect(geom.R(0, 25, 5, 35)), Current: 4}
	loads := []route.Terminal{
		{Name: "heavy", Shape: geom.RegionFromRect(geom.R(110, 5, 118, 13)), Current: 3},
		{Name: "light", Shape: geom.RegionFromRect(geom.R(110, 47, 118, 55)), Current: 1},
	}
	op, err := DCOperate(shape, source, loads, 4.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	heavyDrop := op.NodeDropV[op.TG.Terminals[1]]
	lightDrop := op.NodeDropV[op.TG.Terminals[2]]
	if heavyDrop <= lightDrop {
		t.Fatalf("heavier load must droop more: %g vs %g", heavyDrop, lightDrop)
	}
	if op.WorstLoad != 0 {
		t.Fatalf("worst load should be the heavy one, got %d", op.WorstLoad)
	}
}

func TestDCOperateValidation(t *testing.T) {
	shape, terms := strip(100, 10, 5)
	if _, err := DCOperate(shape, terms[0], terms[1:], 0, Options{}); err == nil {
		t.Fatal("zero current must error")
	}
	if _, err := DCOperate(shape, terms[0], nil, 1, Options{}); err == nil {
		t.Fatal("no loads must error")
	}
}

func TestNodeJouleHeatSumsToTotalPower(t *testing.T) {
	shape, terms := strip(100, 10, 5)
	opt := Options{Pitch: 5, SheetOhms: 0.001, HeightUM: 100}
	op, err := DCOperate(shape, terms[0], terms[1:], 1.5, opt)
	if err != nil {
		t.Fatal(err)
	}
	q := op.NodeJouleHeat(opt.SheetOhms)
	var sum float64
	for _, v := range q {
		if v < 0 {
			t.Fatal("negative heat")
		}
		sum += v
	}
	if math.Abs(sum-op.TotalPowerW) > 1e-9*math.Max(1, op.TotalPowerW) {
		t.Fatalf("node heat sum %g != total power %g", sum, op.TotalPowerW)
	}
}
