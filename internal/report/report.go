// Package report renders aligned plain-text tables and series for the
// experiment harness, so every paper table and figure regenerates as a
// readable console artifact.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders to a string, for tests.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// Series is a labelled (x, y) sequence standing in for a figure curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// RenderSeries writes one or more curves as aligned columns sharing the x
// axis of the first series.
func RenderSeries(w io.Writer, title, xLabel string, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	cols := []string{xLabel}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	t := NewTable(title, cols...)
	for i := range series[0].X {
		row := make([]interface{}, 0, len(series)+1)
		row = append(row, series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, s.Y[i])
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// Monotone reports whether the series y-values are non-increasing within
// a relative tolerance — used to audit the Fig. 12 trends.
func (s *Series) Monotone(tol float64) bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1]*(1+tol) {
			return false
		}
	}
	return true
}
