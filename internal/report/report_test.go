package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table II", "Net", "Manual", "SPROUT")
	tab.AddRow("VDD1", 100.0, 87.5)
	tab.AddRow("VDD2", 136, 138)
	out := tab.String()
	if !strings.Contains(out, "Table II") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "VDD1") || !strings.Contains(out, "87.5") {
		t.Fatalf("missing data: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Columns align: header "Net" padded to width of "VDD1".
	if !strings.HasPrefix(lines[1], "Net ") {
		t.Fatalf("header misaligned: %q", lines[1])
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(0.00012345)
	if !strings.Contains(tab.String(), "0.0001234") {
		t.Fatalf("float formatting: %s", tab.String())
	}
}

func TestSeriesRender(t *testing.T) {
	a := &Series{Name: "R"}
	a.Add(15, 3.2)
	a.Add(20, 2.1)
	b := &Series{Name: "L"}
	b.Add(15, 120)
	var buf bytes.Buffer
	if err := RenderSeries(&buf, "Fig 12a", "area", a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 12a") || !strings.Contains(out, "3.2") {
		t.Fatalf("series render: %s", out)
	}
	// Second series shorter: missing cell renders "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder: %s", out)
	}
	if err := RenderSeries(&buf, "empty", "x"); err == nil {
		t.Fatal("no series must error")
	}
}

func TestSeriesMonotone(t *testing.T) {
	s := &Series{Name: "R"}
	for _, y := range []float64{5, 4, 3.5, 3.4} {
		s.Add(0, y)
	}
	if !s.Monotone(0) {
		t.Fatal("decreasing series must be monotone")
	}
	s.Add(0, 3.41)
	if s.Monotone(0) {
		t.Fatal("bump must break zero-tolerance monotonicity")
	}
	if !s.Monotone(0.01) {
		t.Fatal("tiny bump within tolerance must pass")
	}
	s.Add(0, 4.5)
	if s.Monotone(0.05) {
		t.Fatal("large bump must break monotonicity")
	}
}
