package board

import (
	"testing"

	"sprout/internal/geom"
)

func testStackup() Stackup {
	return Stackup{Layers: []Layer{
		{Name: "L1", CopperUM: 35, DielectricBelowUM: 100},
		{Name: "L2-GND", CopperUM: 35, DielectricBelowUM: 100, IsPlane: true},
		{Name: "L3", CopperUM: 35, DielectricBelowUM: 100},
	}}
}

func testRules() DesignRules {
	return DesignRules{Clearance: 2, TileDX: 10, TileDY: 10, ViaCost: 5}
}

func newTestBoard(t *testing.T) *Board {
	t.Helper()
	b, err := New("test", geom.R(0, 0, 1000, 1000), testStackup(), testRules())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", geom.Rect{}, testStackup(), testRules()); err == nil {
		t.Fatal("empty outline must error")
	}
	if _, err := New("x", geom.R(0, 0, 10, 10), Stackup{}, testRules()); err == nil {
		t.Fatal("empty stackup must error")
	}
	bad := testRules()
	bad.TileDX = 0
	if _, err := New("x", geom.R(0, 0, 10, 10), testStackup(), bad); err == nil {
		t.Fatal("bad rules must error")
	}
}

func TestSheetResistance(t *testing.T) {
	l := Layer{CopperUM: 35}
	want := CopperResistivityOhmUM / 35
	if got := l.SheetResistance(); got != want {
		t.Fatalf("sheet resistance = %g, want %g", got, want)
	}
	if got := (Layer{}).SheetResistance(); got != 0 {
		t.Fatalf("zero thickness sheet resistance = %g, want 0", got)
	}
}

func TestDistanceToPlane(t *testing.T) {
	s := testStackup()
	// L1 -> plane at L2: one dielectric below L1 = 100.
	if got := s.DistanceToPlaneUM(1); got != 100 {
		t.Fatalf("L1 distance = %g, want 100", got)
	}
	// L3 -> plane at L2 above: dielectric below L2 = 100.
	if got := s.DistanceToPlaneUM(3); got != 100 {
		t.Fatalf("L3 distance = %g, want 100", got)
	}
	// No plane at all: falls back to total height.
	noPlane := Stackup{Layers: []Layer{
		{CopperUM: 35, DielectricBelowUM: 60},
		{CopperUM: 35, DielectricBelowUM: 40},
	}}
	if got := noPlane.DistanceToPlaneUM(1); got != 100 {
		t.Fatalf("no-plane distance = %g, want 100", got)
	}
}

func TestAddNetAndGroup(t *testing.T) {
	b := newTestBoard(t)
	vdd := b.AddNet("VDD1", 5, 1)
	if vdd != 0 {
		t.Fatalf("first net id = %d, want 0", vdd)
	}
	g := TerminalGroup{
		Name: "pmic", Kind: KindPMIC, Net: vdd, Layer: 1,
		Pads:    []geom.Region{geom.RegionFromRect(geom.R(10, 10, 30, 30))},
		Current: 5,
	}
	if err := b.AddGroup(g); err != nil {
		t.Fatal(err)
	}
	got := b.GroupsOn(vdd, 1)
	if len(got) != 1 || got[0].Name != "pmic" {
		t.Fatalf("GroupsOn = %+v", got)
	}
	if len(b.GroupsOn(vdd, 3)) != 0 {
		t.Fatal("no groups on layer 3")
	}
}

func TestAddGroupValidation(t *testing.T) {
	b := newTestBoard(t)
	vdd := b.AddNet("VDD", 1, 1)
	pad := geom.RegionFromRect(geom.R(0, 0, 10, 10))
	cases := []TerminalGroup{
		{Name: "badnet", Net: 9, Layer: 1, Pads: []geom.Region{pad}},
		{Name: "badlayer", Net: vdd, Layer: 0, Pads: []geom.Region{pad}},
		{Name: "nopads", Net: vdd, Layer: 1},
		{Name: "emptypad", Net: vdd, Layer: 1, Pads: []geom.Region{geom.EmptyRegion()}},
		{Name: "outside", Net: vdd, Layer: 1, Pads: []geom.Region{geom.RegionFromRect(geom.R(990, 990, 1010, 1010))}},
		{Name: "negcurrent", Net: vdd, Layer: 1, Pads: []geom.Region{pad}, Current: -1},
	}
	for _, g := range cases {
		if err := b.AddGroup(g); err == nil {
			t.Errorf("group %q must be rejected", g.Name)
		}
	}
}

func TestAvailableSpaceSubtractsBufferedOtherNets(t *testing.T) {
	b := newTestBoard(t)
	vdd := b.AddNet("VDD", 1, 1)
	vss := b.AddNet("VSS", 1, 1)
	pad := geom.RegionFromRect(geom.R(100, 100, 120, 120))
	if err := b.AddGroup(TerminalGroup{Name: "vsspad", Kind: KindVia, Net: vss, Layer: 1, Pads: []geom.Region{pad}, Current: 1}); err != nil {
		t.Fatal(err)
	}

	avail := b.AvailableSpace(vdd, 1)
	// Pad plus clearance-2 buffer removed.
	if avail.Contains(geom.Pt(110, 110)) {
		t.Fatal("other-net pad must be removed")
	}
	if avail.Contains(geom.Pt(99, 110)) {
		t.Fatal("buffer around other-net pad must be removed")
	}
	if !avail.Contains(geom.Pt(97, 110)) {
		t.Fatal("space beyond the buffer must remain")
	}
	// VSS's own available space keeps its own pad.
	availVss := b.AvailableSpace(vss, 1)
	if !availVss.Contains(geom.Pt(110, 110)) {
		t.Fatal("own pad must remain available")
	}
	// Other layers unaffected.
	if !b.AvailableSpace(vdd, 3).Contains(geom.Pt(110, 110)) {
		t.Fatal("layer 3 must be unaffected by a layer 1 pad")
	}
}

func TestAvailableSpaceKeepout(t *testing.T) {
	b := newTestBoard(t)
	vdd := b.AddNet("VDD", 1, 1)
	block := geom.RegionFromRect(geom.R(500, 0, 600, 1000))
	if err := b.AddObstacle(NetNone, 1, block); err != nil {
		t.Fatal(err)
	}
	avail := b.AvailableSpace(vdd, 1)
	if avail.Contains(geom.Pt(550, 500)) {
		t.Fatal("keepout must block every net")
	}
	// Keepout splits the layer into two components.
	if n := len(avail.Components()); n != 2 {
		t.Fatalf("keepout should split the space, got %d components", n)
	}
}

func TestAvailableSpaceOwnObstacleKept(t *testing.T) {
	b := newTestBoard(t)
	vdd := b.AddNet("VDD", 1, 1)
	own := geom.RegionFromRect(geom.R(100, 100, 200, 200))
	if err := b.AddObstacle(vdd, 1, own); err != nil {
		t.Fatal(err)
	}
	if !b.AvailableSpace(vdd, 1).Contains(geom.Pt(150, 150)) {
		t.Fatal("own-net obstacle must stay routable for the owner")
	}
	vss := b.AddNet("VSS", 1, 1)
	if b.AvailableSpace(vss, 1).Contains(geom.Pt(150, 150)) {
		t.Fatal("own-net obstacle must block other nets")
	}
}

func TestAddObstacleValidation(t *testing.T) {
	b := newTestBoard(t)
	if err := b.AddObstacle(5, 1, geom.RegionFromRect(geom.R(0, 0, 1, 1))); err == nil {
		t.Fatal("unknown net must error")
	}
	if err := b.AddObstacle(NetNone, 9, geom.RegionFromRect(geom.R(0, 0, 1, 1))); err == nil {
		t.Fatal("bad layer must error")
	}
	if err := b.AddObstacle(NetNone, 1, geom.EmptyRegion()); err == nil {
		t.Fatal("empty shape must error")
	}
}

func TestRoutableLayers(t *testing.T) {
	b := newTestBoard(t)
	got := b.RoutableLayers()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("routable layers = %v, want [1 3]", got)
	}
}

func TestTerminalKindString(t *testing.T) {
	if KindPMIC.String() != "PMIC" || KindBGA.String() != "BGA" ||
		KindDecap.String() != "Decap" || KindVia.String() != "Via" {
		t.Fatal("kind strings")
	}
	if TerminalKind(42).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestGroupShapeUnion(t *testing.T) {
	g := TerminalGroup{Pads: []geom.Region{
		geom.RegionFromRect(geom.R(0, 0, 2, 2)),
		geom.RegionFromRect(geom.R(4, 0, 6, 2)),
	}}
	if got := g.Shape().Area(); got != 8 {
		t.Fatalf("group shape area = %d, want 8", got)
	}
}

func TestSortGroupsDeterministic(t *testing.T) {
	b := newTestBoard(t)
	v0 := b.AddNet("A", 1, 1)
	v1 := b.AddNet("B", 1, 1)
	pad := []geom.Region{geom.RegionFromRect(geom.R(0, 0, 5, 5))}
	_ = b.AddGroup(TerminalGroup{Name: "z", Net: v1, Layer: 1, Pads: pad})
	_ = b.AddGroup(TerminalGroup{Name: "a", Net: v0, Layer: 3, Pads: pad})
	_ = b.AddGroup(TerminalGroup{Name: "a", Net: v0, Layer: 1, Pads: pad})
	b.SortGroups()
	if b.Groups[0].Layer != 1 || b.Groups[0].Net != v0 || b.Groups[2].Net != v1 {
		t.Fatalf("sorted groups wrong: %+v", b.Groups)
	}
}

func TestNetNamesAndLookup(t *testing.T) {
	b := newTestBoard(t)
	b.AddNet("VDD1", 1, 1)
	b.AddNet("VDD2", 2, 1)
	names := b.NetNames()
	if len(names) != 2 || names[0] != "VDD1" || names[1] != "VDD2" {
		t.Fatalf("net names = %v", names)
	}
	if _, err := b.Net(NetID(7)); err == nil {
		t.Fatal("unknown net lookup must error")
	}
	n, err := b.Net(NetID(1))
	if err != nil || n.Name != "VDD2" || n.Current != 2 {
		t.Fatalf("net lookup = %+v err=%v", n, err)
	}
}

func TestLayerPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testStackup().Layer(0)
}
