// Package board models the printed-circuit-board input to SPROUT: the
// layer stackup, nets, terminal groups (PMIC outputs, BGA ball clusters,
// decoupling capacitor pads), blockages, and the design rules that define
// clearance buffers. It computes the available routing space of paper
// Eq. 1: A_n = U \ ∪_{n_j≠n} b_j, where b_j is the buffered geometry of
// every other net.
//
// Geometry lives on an integer manufacturing grid (1 unit = 0.1 mm in the
// case studies). Electrical layer properties (copper thickness, dielectric
// heights) feed the extraction models.
package board

import (
	"fmt"
	"sort"

	"sprout/internal/geom"
)

// NetID identifies a power net. NetNone marks keepouts that block all nets.
type NetID int

// NetNone marks geometry that belongs to no net (blocks every net).
const NetNone NetID = -1

// Net is a power rail.
type Net struct {
	ID   NetID
	Name string
	// Current is the expected load current drawn by this rail in amperes;
	// it scales the node-current injections (paper §II-D) and the transient
	// load in the voltage-drop analysis.
	Current float64
	// SlewTimeNS is the load current transition time in nanoseconds, used
	// by the transient voltage-drop model (Fig. 12c).
	SlewTimeNS float64
}

// CopperResistivityOhmUM is the resistivity of copper in ohm·µm.
const CopperResistivityOhmUM = 0.0172

// Layer describes one metal layer of the stackup. Layers are indexed
// 1..L from the top.
type Layer struct {
	Name string
	// CopperUM is the copper thickness in µm (35 µm for 1 oz copper).
	CopperUM float64
	// DielectricBelowUM is the dielectric height between this layer and
	// the next layer down, in µm.
	DielectricBelowUM float64
	// IsPlane marks a solid reference plane (ground); planes are return
	// paths for the inductance model and are not routable.
	IsPlane bool
}

// SheetResistance returns the layer's sheet resistance in ohms per square.
func (l Layer) SheetResistance() float64 {
	if l.CopperUM <= 0 {
		return 0
	}
	return CopperResistivityOhmUM / l.CopperUM
}

// Stackup is the ordered list of metal layers, top first.
type Stackup struct {
	Layers []Layer
}

// NumLayers returns the layer count.
func (s Stackup) NumLayers() int { return len(s.Layers) }

// Valid reports an error when the stackup is unusable.
func (s Stackup) Valid() error {
	if len(s.Layers) == 0 {
		return fmt.Errorf("board: stackup has no layers")
	}
	for i, l := range s.Layers {
		if l.CopperUM < 0 || l.DielectricBelowUM < 0 {
			return fmt.Errorf("board: layer %d has negative thickness", i+1)
		}
	}
	return nil
}

// Layer returns the 1-indexed layer. It panics on out-of-range indices:
// layer indices are program logic established at board construction.
func (s Stackup) Layer(idx int) Layer {
	if idx < 1 || idx > len(s.Layers) {
		panic(fmt.Sprintf("board: layer %d out of range [1,%d]", idx, len(s.Layers)))
	}
	return s.Layers[idx-1]
}

// DistanceToPlaneUM returns the dielectric distance in µm from the given
// layer to the nearest reference plane, used by the plane-pair inductance
// model. When the stackup has no plane it returns the total board height.
func (s Stackup) DistanceToPlaneUM(idx int) float64 {
	best := -1.0
	// Walk down.
	d := 0.0
	for i := idx; i < len(s.Layers); i++ {
		d += s.Layers[i-1].DielectricBelowUM
		if s.Layers[i].IsPlane {
			best = d
			break
		}
	}
	// Walk up.
	d = 0.0
	for i := idx - 1; i >= 1; i-- {
		d += s.Layers[i-1].DielectricBelowUM
		if s.Layers[i-1].IsPlane {
			if best < 0 || d < best {
				best = d
			}
			break
		}
	}
	if best < 0 {
		total := 0.0
		for _, l := range s.Layers {
			total += l.DielectricBelowUM
		}
		if total == 0 {
			total = 100
		}
		return total
	}
	return best
}

// TerminalKind classifies what a terminal group physically is.
type TerminalKind int

// Terminal kinds.
const (
	KindPMIC TerminalKind = iota
	KindBGA
	KindDecap
	KindVia
)

// String implements fmt.Stringer.
func (k TerminalKind) String() string {
	switch k {
	case KindPMIC:
		return "PMIC"
	case KindBGA:
		return "BGA"
	case KindDecap:
		return "Decap"
	case KindVia:
		return "Via"
	}
	return fmt.Sprintf("TerminalKind(%d)", int(k))
}

// TerminalGroup is an electrically common cluster of pads on one layer —
// e.g. the group of BGA vias of one rail, the PMIC inductor output via, or
// a decap pad. SPROUT routes between terminal groups; within a group the
// pads are already stitched (via barrels, upper-layer lands).
type TerminalGroup struct {
	Name  string
	Kind  TerminalKind
	Net   NetID
	Layer int
	Pads  []geom.Region
	// Current is the expected current carried to or from this group in
	// amperes; pairwise injections are weighted by it (paper §II-D: pairs
	// with large current, e.g. PMIC↔BGA, are injected with larger current).
	Current float64
}

// Shape returns the union of the group's pads.
func (t TerminalGroup) Shape() geom.Region {
	var u geom.Region
	for _, p := range t.Pads {
		u = u.Union(p)
	}
	return u
}

// Obstacle is net-owned or keepout geometry on a layer. Other nets must
// stay a clearance away from it (paper Fig. 4 buffers).
type Obstacle struct {
	Net   NetID
	Layer int
	Shape geom.Region
}

// DesignRules capture the manufacturing constraints SPROUT honors.
type DesignRules struct {
	// Clearance is the buffer half-width in grid units between geometry of
	// different nets (paper Fig. 4).
	Clearance int64
	// TileDX, TileDY are the routing tile dimensions (paper Alg. 1 Δx, Δy).
	TileDX, TileDY int64
	// ViaCost is the extra path cost of crossing one layer through a via,
	// relative to traversing one tile (paper Appendix: vertical edges are
	// assigned a higher cost).
	ViaCost float64
}

// Valid reports an error when the rules are unusable.
func (r DesignRules) Valid() error {
	if r.Clearance < 0 {
		return fmt.Errorf("board: negative clearance %d", r.Clearance)
	}
	if r.TileDX < 1 || r.TileDY < 1 {
		return fmt.Errorf("board: tile size %dx%d must be >= 1", r.TileDX, r.TileDY)
	}
	if r.ViaCost < 0 {
		return fmt.Errorf("board: negative via cost %g", r.ViaCost)
	}
	return nil
}

// Board is the full routing problem description.
type Board struct {
	Name     string
	Outline  geom.Rect
	Stackup  Stackup
	Rules    DesignRules
	Nets     []Net
	Groups   []TerminalGroup
	Obstacle []Obstacle
}

// New validates and returns a Board.
func New(name string, outline geom.Rect, stackup Stackup, rules DesignRules) (*Board, error) {
	if outline.Empty() {
		return nil, fmt.Errorf("board: empty outline")
	}
	if err := stackup.Valid(); err != nil {
		return nil, err
	}
	if err := rules.Valid(); err != nil {
		return nil, err
	}
	return &Board{Name: name, Outline: outline, Stackup: stackup, Rules: rules}, nil
}

// AddNet registers a rail and returns its id.
func (b *Board) AddNet(name string, current, slewNS float64) NetID {
	id := NetID(len(b.Nets))
	b.Nets = append(b.Nets, Net{ID: id, Name: name, Current: current, SlewTimeNS: slewNS})
	return id
}

// Net returns the net record for id.
func (b *Board) Net(id NetID) (Net, error) {
	if id < 0 || int(id) >= len(b.Nets) {
		return Net{}, fmt.Errorf("board: net %d not defined", id)
	}
	return b.Nets[id], nil
}

// AddGroup registers a terminal group after validation.
func (b *Board) AddGroup(g TerminalGroup) error {
	if _, err := b.Net(g.Net); err != nil {
		return err
	}
	if g.Layer < 1 || g.Layer > b.Stackup.NumLayers() {
		return fmt.Errorf("board: group %q layer %d out of range", g.Name, g.Layer)
	}
	if len(g.Pads) == 0 {
		return fmt.Errorf("board: group %q has no pads", g.Name)
	}
	for i, p := range g.Pads {
		if p.Empty() {
			return fmt.Errorf("board: group %q pad %d is empty", g.Name, i)
		}
		if !p.Subtract(geom.RegionFromRect(b.Outline)).Empty() {
			return fmt.Errorf("board: group %q pad %d extends outside the outline", g.Name, i)
		}
	}
	if g.Current < 0 {
		return fmt.Errorf("board: group %q has negative current", g.Name)
	}
	b.Groups = append(b.Groups, g)
	return nil
}

// AddObstacle registers net-owned or keepout geometry.
func (b *Board) AddObstacle(net NetID, layer int, shape geom.Region) error {
	if net != NetNone {
		if _, err := b.Net(net); err != nil {
			return err
		}
	}
	if layer < 1 || layer > b.Stackup.NumLayers() {
		return fmt.Errorf("board: obstacle layer %d out of range", layer)
	}
	if shape.Empty() {
		return fmt.Errorf("board: empty obstacle shape")
	}
	b.Obstacle = append(b.Obstacle, Obstacle{Net: net, Layer: layer, Shape: shape})
	return nil
}

// GroupsOn returns the terminal groups of the given net on the given
// layer, in registration order.
func (b *Board) GroupsOn(net NetID, layer int) []TerminalGroup {
	var out []TerminalGroup
	for _, g := range b.Groups {
		if g.Net == net && g.Layer == layer {
			out = append(out, g)
		}
	}
	return out
}

// AvailableSpace computes the routable region of `net` on `layer` per
// paper Eq. 1: the outline minus the clearance-buffered geometry of every
// other net (terminal pads and obstacles), minus keepouts. Same-net
// geometry is never removed — a net may legally cross its own buffers
// (paper Fig. 4 caption).
func (b *Board) AvailableSpace(net NetID, layer int) geom.Region {
	avail := geom.RegionFromRect(b.Outline)
	c := b.Rules.Clearance
	for _, g := range b.Groups {
		if g.Layer != layer || g.Net == net {
			continue
		}
		for _, p := range g.Pads {
			avail = avail.Subtract(p.Bloat(c))
		}
	}
	for _, o := range b.Obstacle {
		if o.Layer != layer || (o.Net == net && o.Net != NetNone) {
			continue
		}
		avail = avail.Subtract(o.Shape.Bloat(c))
	}
	return avail
}

// RoutableLayers returns the 1-indexed non-plane layers in order.
func (b *Board) RoutableLayers() []int {
	var out []int
	for i := 1; i <= b.Stackup.NumLayers(); i++ {
		if !b.Stackup.Layer(i).IsPlane {
			out = append(out, i)
		}
	}
	return out
}

// NetNames returns net names sorted by id, for reports.
func (b *Board) NetNames() []string {
	out := make([]string, len(b.Nets))
	for i, n := range b.Nets {
		out[i] = n.Name
	}
	return out
}

// SortGroups orders groups deterministically (net, layer, name); builders
// that assemble boards from maps call this before routing.
func (b *Board) SortGroups() {
	sort.SliceStable(b.Groups, func(i, j int) bool {
		gi, gj := b.Groups[i], b.Groups[j]
		if gi.Net != gj.Net {
			return gi.Net < gj.Net
		}
		if gi.Layer != gj.Layer {
			return gi.Layer < gj.Layer
		}
		return gi.Name < gj.Name
	})
}
