// Package faultinject provides deterministic fault-injection hooks for
// testing SPROUT's failure paths. Production code places named check
// points (Check) at interesting boundaries — the CG solver entry, the
// SmartGrow loop, the refinement loop — and tests arm those sites to
// fire a chosen action at a chosen call count: force a solver breakdown,
// return ErrNoConvergence, or cancel a context mid-pipeline.
//
// Three arming modes cover the failure shapes the tests need:
//
//   - Arm fires at an exact call count (or every call) — deterministic
//     hard faults.
//   - ArmProbabilistic fires each call with probability p drawn from a
//     seeded generator — intermittent faults that are still reproducible
//     run to run (the chaos/soak tests depend on this).
//   - ArmLatency injects a delay (optionally probabilistic) instead of
//     an error — slow-path faults that exercise deadlines and drains.
//
// The package is disabled by default and adds a single atomic load to
// the hot path when no hook is armed, so check points are safe to leave
// in performance-sensitive loops.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known injection sites. Constants live here (not in the packages
// that check them) so tests can arm sites without import cycles.
const (
	// SiteCG fires once per CG invocation, before the first iteration.
	SiteCG = "sparse.cg"
	// SiteGrow fires once per SmartGrow loop iteration of the pipeline.
	SiteGrow = "route.grow"
	// SiteRefine fires once per SmartRefine iteration of the pipeline.
	SiteRefine = "route.refine"
	// SiteExtract fires once per impedance extraction, before the fine
	// re-tiling.
	SiteExtract = "extract.extract"
	// SiteWALWrite fires once per sproutd WAL record write, before the
	// bytes reach the file; a non-nil fire fails the append (disk fault).
	SiteWALWrite = "server.wal.write"
	// SiteWALSync fires once per sproutd WAL fsync, before the flush; a
	// non-nil fire fails the durability barrier (disk fault).
	SiteWALSync = "server.wal.sync"
	// SiteWALCorrupt fires once per sproutd WAL record write; a non-nil
	// fire makes the append write a deliberately torn record while
	// reporting success — the crash-mid-write shape recovery must
	// truncate, never trip over.
	SiteWALCorrupt = "server.wal.corrupt"
	// SiteDirSync fires once per data-directory fsync (after the snapshot
	// rename); a non-nil fire fails the directory durability barrier.
	SiteDirSync = "server.dir.sync"
	// SiteCkptWrite fires once per exploration-checkpoint persist, before
	// the WAL append; a non-nil fire fails the checkpoint write.
	SiteCkptWrite = "server.ckpt.write"
	// SiteCkptDecode fires once per exploration-checkpoint decode, before
	// the frame is parsed; a non-nil fire fails the decode (the recovered
	// job then restarts its sweep from scratch).
	SiteCkptDecode = "sprout.ckpt.decode"
)

// registry is the canonical site table: every check point the production
// code contains, with a one-line description of where it fires. It is the
// single source of truth shared by the runtime (Arm rejects unknown
// sites, so a typo'd hook name fails loudly instead of silently never
// firing) and by the sproutlint faultpoint analyzer, which flags string
// literals passed to this package that are not in the table.
var registry = map[string]string{
	SiteCG:         "sparse: CG solver entry, before the first iteration",
	SiteGrow:       "route: one SmartGrow iteration of the pipeline",
	SiteRefine:     "route: one SmartRefine iteration of the pipeline",
	SiteExtract:    "extract: impedance extraction entry, before re-tiling",
	SiteWALWrite:   "server: WAL record write, before bytes reach the file",
	SiteWALSync:    "server: WAL fsync, before the durability barrier flush",
	SiteWALCorrupt: "server: WAL append tears the record while reporting success",
	SiteDirSync:    "server: data-directory fsync after the snapshot rename",
	SiteCkptWrite:  "server: exploration-checkpoint persist, before the WAL append",
	SiteCkptDecode: "sprout: exploration-checkpoint decode, before parsing the frame",
}

// Sites returns the canonical site names in sorted order.
func Sites() []string {
	out := make([]string, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// IsSite reports whether name is a registered injection site.
func IsSite(name string) bool {
	_, ok := registry[name]
	return ok
}

// SiteDoc returns the registered description of a site ("" if unknown).
func SiteDoc(name string) string { return registry[name] }

// hook is one armed injection site.
type hook struct {
	// at is the 1-indexed call count the hook fires on; 0 fires on every
	// call. Ignored when rng is set (probabilistic mode).
	at int
	// rng drives probabilistic triggering; nil means count-based. The
	// generator is seeded at arm time and only ever drawn under the
	// package mutex, so a given seed replays the same fire pattern.
	rng *rand.Rand
	// prob is the per-call trigger probability in probabilistic mode.
	prob float64
	// delay is slept (outside the lock) when the hook triggers, before
	// fire runs — latency injection.
	delay time.Duration
	// fire runs when the hook triggers. A non-nil return is handed to the
	// caller of Check as the injected fault; a nil return lets execution
	// continue (useful for side effects such as cancelling a context).
	fire func() error
	// calls counts Check invocations against this site; fired counts how
	// many of them triggered.
	calls int
	fired int
}

var (
	// armed is the fast-path gate: zero means every Check is a no-op
	// beyond one atomic load.
	armed atomic.Int32
	mu    sync.Mutex
	hooks map[string]*hook
)

// Arm installs a hook at the site. at is the 1-indexed call count on
// which fire runs (0 = every call). Re-arming a site resets its counter.
// Arming a site that is not in the canonical registry panics: an unknown
// name is a test typo whose hook would otherwise silently never fire.
func Arm(site string, at int, fire func() error) {
	install(site, &hook{at: at, fire: fire})
}

// ArmProbabilistic installs a hook that fires on each Check with
// probability p, drawn from a generator seeded with seed — intermittent
// faults whose exact fire pattern is reproducible run to run. p is
// clamped to [0,1]. Re-arming resets the counter and the generator, so
// the same seed replays the same decisions.
func ArmProbabilistic(site string, seed int64, p float64, fire func() error) {
	install(site, &hook{rng: rand.New(rand.NewSource(seed)), prob: clamp01(p), fire: fire})
}

// ArmLatency installs a hook that, with probability p per Check (drawn
// from a generator seeded with seed; p is clamped to [0,1], and p >= 1
// delays every call), sleeps d and then lets execution continue. It
// injects slowness, not errors — the tool for exercising deadlines,
// admission backpressure, and shutdown drains.
func ArmLatency(site string, seed int64, p float64, d time.Duration) {
	install(site, &hook{rng: rand.New(rand.NewSource(seed)), prob: clamp01(p), delay: d})
}

func clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// install registers the hook under the canonical-registry contract shared
// by every arming mode.
func install(site string, h *hook) {
	if !IsSite(site) {
		panic(fmt.Sprintf("faultinject: Arm(%q): not a registered site (known: %v)", site, Sites()))
	}
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = map[string]*hook{}
	}
	if _, exists := hooks[site]; !exists {
		armed.Add(1)
	}
	hooks[site] = h
}

// Disarm removes the hook at the site, if any.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := hooks[site]; exists {
		delete(hooks, site)
		armed.Add(-1)
	}
}

// Reset removes every hook and zeroes all counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(0)
	hooks = nil
}

// Check is the production-side check point. It returns nil unless the
// site is armed and the armed call count is reached, in which case it
// returns whatever the hook's fire function returns. Check is safe for
// concurrent use (CG runs inside a worker pool).
func Check(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	h := hooks[site]
	if h == nil {
		mu.Unlock()
		return nil
	}
	h.calls++
	var trigger bool
	if h.rng != nil {
		trigger = h.rng.Float64() < h.prob
	} else {
		trigger = h.at == 0 || h.calls == h.at
	}
	if trigger {
		h.fired++
	}
	fire := h.fire
	delay := h.delay
	mu.Unlock()
	if !trigger {
		return nil
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if fire == nil {
		return nil
	}
	return fire()
}

// Calls reports how many times Check has run against an armed site since
// it was armed. Unarmed sites report zero.
func Calls(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if h := hooks[site]; h != nil {
		return h.calls
	}
	return 0
}

// Fired reports how many Check calls actually triggered the armed hook
// (delay and/or fire) since it was armed. Unarmed sites report zero.
func Fired(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if h := hooks[site]; h != nil {
		return h.fired
	}
	return 0
}
