package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestUnarmedCheckIsNil(t *testing.T) {
	Reset()
	if err := Check(SiteRefine); err != nil {
		t.Fatalf("unarmed check: %v", err)
	}
}

func TestFiresAtChosenCallCount(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Arm(SiteCG, 3, func() error { return boom })
	for call := 1; call <= 5; call++ {
		err := Check(SiteCG)
		if call == 3 && !errors.Is(err, boom) {
			t.Fatalf("call %d: want boom, got %v", call, err)
		}
		if call != 3 && err != nil {
			t.Fatalf("call %d: want nil, got %v", call, err)
		}
	}
	if got := Calls(SiteCG); got != 5 {
		t.Fatalf("Calls = %d, want 5", got)
	}
}

func TestFiresEveryCallWhenAtZero(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Arm(SiteCG, 0, func() error { return boom })
	for call := 0; call < 3; call++ {
		if err := Check(SiteCG); !errors.Is(err, boom) {
			t.Fatalf("call %d: want boom, got %v", call, err)
		}
	}
}

func TestNilFireContinues(t *testing.T) {
	Reset()
	defer Reset()
	fired := false
	Arm(SiteCG, 1, func() error { fired = true; return nil })
	if err := Check(SiteCG); err != nil {
		t.Fatalf("nil-returning fire must continue, got %v", err)
	}
	if !fired {
		t.Fatal("fire did not run")
	}
}

func TestDisarm(t *testing.T) {
	Reset()
	defer Reset()
	Arm(SiteCG, 0, func() error { return errors.New("boom") })
	Disarm(SiteCG)
	if err := Check(SiteCG); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
}

func TestConcurrentChecks(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Arm(SiteCG, 50, func() error { return boom })
	var wg sync.WaitGroup
	var mu sync.Mutex
	hits := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if Check(SiteCG) != nil {
					mu.Lock()
					hits++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if hits != 1 {
		t.Fatalf("hook fired %d times, want exactly once", hits)
	}
	if got := Calls(SiteCG); got != 200 {
		t.Fatalf("Calls = %d, want 200", got)
	}
}

func TestRegistry(t *testing.T) {
	want := []string{SiteExtract, SiteGrow, SiteRefine, SiteCG} // sorted: extract.extract, route.grow, route.refine, sparse.cg
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites() = %v, want %v", got, want)
	}
	for i, s := range want {
		if got[i] != s {
			t.Fatalf("Sites()[%d] = %q, want %q", i, got[i], s)
		}
		if !IsSite(s) {
			t.Fatalf("IsSite(%q) = false", s)
		}
		if SiteDoc(s) == "" {
			t.Fatalf("SiteDoc(%q) empty: every registered site needs a description", s)
		}
	}
	if IsSite("sparse.gc") {
		t.Fatal("IsSite accepted a typo'd site")
	}
}

func TestArmRejectsUnregisteredSite(t *testing.T) {
	Reset()
	defer Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("Arm on an unregistered site must panic")
		}
	}()
	Arm("sparse.gc", 1, nil)
}
