package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestUnarmedCheckIsNil(t *testing.T) {
	Reset()
	if err := Check(SiteRefine); err != nil {
		t.Fatalf("unarmed check: %v", err)
	}
}

func TestFiresAtChosenCallCount(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Arm(SiteCG, 3, func() error { return boom })
	for call := 1; call <= 5; call++ {
		err := Check(SiteCG)
		if call == 3 && !errors.Is(err, boom) {
			t.Fatalf("call %d: want boom, got %v", call, err)
		}
		if call != 3 && err != nil {
			t.Fatalf("call %d: want nil, got %v", call, err)
		}
	}
	if got := Calls(SiteCG); got != 5 {
		t.Fatalf("Calls = %d, want 5", got)
	}
}

func TestFiresEveryCallWhenAtZero(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Arm(SiteCG, 0, func() error { return boom })
	for call := 0; call < 3; call++ {
		if err := Check(SiteCG); !errors.Is(err, boom) {
			t.Fatalf("call %d: want boom, got %v", call, err)
		}
	}
}

func TestNilFireContinues(t *testing.T) {
	Reset()
	defer Reset()
	fired := false
	Arm(SiteCG, 1, func() error { fired = true; return nil })
	if err := Check(SiteCG); err != nil {
		t.Fatalf("nil-returning fire must continue, got %v", err)
	}
	if !fired {
		t.Fatal("fire did not run")
	}
}

func TestDisarm(t *testing.T) {
	Reset()
	defer Reset()
	Arm(SiteCG, 0, func() error { return errors.New("boom") })
	Disarm(SiteCG)
	if err := Check(SiteCG); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
}

func TestConcurrentChecks(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Arm(SiteCG, 50, func() error { return boom })
	var wg sync.WaitGroup
	var mu sync.Mutex
	hits := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if Check(SiteCG) != nil {
					mu.Lock()
					hits++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if hits != 1 {
		t.Fatalf("hook fired %d times, want exactly once", hits)
	}
	if got := Calls(SiteCG); got != 200 {
		t.Fatalf("Calls = %d, want 200", got)
	}
}

func TestProbabilisticIsDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	pattern := func(seed int64) []bool {
		ArmProbabilistic(SiteCG, seed, 0.3, func() error { return boom })
		var got []bool
		for i := 0; i < 200; i++ {
			got = append(got, Check(SiteCG) != nil)
		}
		return got
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fired := 0
	for _, hit := range a {
		if hit {
			fired++
		}
	}
	// 200 draws at p=0.3: the pattern must be intermittent, neither
	// always-on nor never-firing.
	if fired == 0 || fired == 200 {
		t.Fatalf("fired %d/200 times, want intermittent", fired)
	}
	if got := Fired(SiteCG); got != fired {
		t.Fatalf("Fired = %d, want %d", got, fired)
	}
	if got := Calls(SiteCG); got != 200 {
		t.Fatalf("Calls = %d, want 200", got)
	}
}

func TestProbabilisticExtremes(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	ArmProbabilistic(SiteGrow, 1, 0, func() error { return boom })
	for i := 0; i < 50; i++ {
		if Check(SiteGrow) != nil {
			t.Fatal("p=0 must never fire")
		}
	}
	ArmProbabilistic(SiteGrow, 1, 2, func() error { return boom }) // clamped to 1
	for i := 0; i < 50; i++ {
		if Check(SiteGrow) == nil {
			t.Fatal("p>=1 must always fire")
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	Reset()
	defer Reset()
	const d = 5 * time.Millisecond
	ArmLatency(SiteRefine, 3, 1, d)
	start := time.Now()
	if err := Check(SiteRefine); err != nil {
		t.Fatalf("latency hook must not inject an error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("Check returned after %v, want >= %v of injected latency", elapsed, d)
	}
	if Fired(SiteRefine) != 1 {
		t.Fatalf("Fired = %d, want 1", Fired(SiteRefine))
	}
}

func TestLatencyProbabilisticIsDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	run := func() int {
		ArmLatency(SiteRefine, 11, 0.5, 0)
		for i := 0; i < 100; i++ {
			if err := Check(SiteRefine); err != nil {
				t.Fatalf("latency hook returned error: %v", err)
			}
		}
		return Fired(SiteRefine)
	}
	if a, b := run(), run(); a != b || a == 0 || a == 100 {
		t.Fatalf("fired %d then %d of 100, want equal and intermittent", a, b)
	}
}

func TestRegistry(t *testing.T) {
	// Sorted: extract.extract, route.grow, route.refine, the server.*
	// durability sites (checkpoint write, directory fsync, three WAL
	// disk-fault sites), sparse.cg, then the checkpoint decode site.
	want := []string{
		SiteExtract, SiteGrow, SiteRefine,
		SiteCkptWrite, SiteDirSync,
		SiteWALCorrupt, SiteWALSync, SiteWALWrite,
		SiteCG, SiteCkptDecode,
	}
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites() = %v, want %v", got, want)
	}
	for i, s := range want {
		if got[i] != s {
			t.Fatalf("Sites()[%d] = %q, want %q", i, got[i], s)
		}
		if !IsSite(s) {
			t.Fatalf("IsSite(%q) = false", s)
		}
		if SiteDoc(s) == "" {
			t.Fatalf("SiteDoc(%q) empty: every registered site needs a description", s)
		}
	}
	if IsSite("sparse.gc") {
		t.Fatal("IsSite accepted a typo'd site")
	}
}

func TestArmRejectsUnregisteredSite(t *testing.T) {
	Reset()
	defer Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("Arm on an unregistered site must panic")
		}
	}()
	Arm("sparse.gc", 1, nil)
}
