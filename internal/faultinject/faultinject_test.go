package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestUnarmedCheckIsNil(t *testing.T) {
	Reset()
	if err := Check("nope"); err != nil {
		t.Fatalf("unarmed check: %v", err)
	}
}

func TestFiresAtChosenCallCount(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Arm("site", 3, func() error { return boom })
	for call := 1; call <= 5; call++ {
		err := Check("site")
		if call == 3 && !errors.Is(err, boom) {
			t.Fatalf("call %d: want boom, got %v", call, err)
		}
		if call != 3 && err != nil {
			t.Fatalf("call %d: want nil, got %v", call, err)
		}
	}
	if got := Calls("site"); got != 5 {
		t.Fatalf("Calls = %d, want 5", got)
	}
}

func TestFiresEveryCallWhenAtZero(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Arm("site", 0, func() error { return boom })
	for call := 0; call < 3; call++ {
		if err := Check("site"); !errors.Is(err, boom) {
			t.Fatalf("call %d: want boom, got %v", call, err)
		}
	}
}

func TestNilFireContinues(t *testing.T) {
	Reset()
	defer Reset()
	fired := false
	Arm("site", 1, func() error { fired = true; return nil })
	if err := Check("site"); err != nil {
		t.Fatalf("nil-returning fire must continue, got %v", err)
	}
	if !fired {
		t.Fatal("fire did not run")
	}
}

func TestDisarm(t *testing.T) {
	Reset()
	defer Reset()
	Arm("site", 0, func() error { return errors.New("boom") })
	Disarm("site")
	if err := Check("site"); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
}

func TestConcurrentChecks(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Arm("site", 50, func() error { return boom })
	var wg sync.WaitGroup
	var mu sync.Mutex
	hits := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if Check("site") != nil {
					mu.Lock()
					hits++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if hits != 1 {
		t.Fatalf("hook fired %d times, want exactly once", hits)
	}
	if got := Calls("site"); got != 200 {
		t.Fatalf("Calls = %d, want 200", got)
	}
}
