package drc

import (
	"strings"
	"testing"

	"sprout/internal/board"
	"sprout/internal/geom"
	"sprout/internal/route"
)

func term(name string, r geom.Rect) route.Terminal {
	return route.Terminal{Name: name, Shape: geom.RegionFromRect(r), Current: 1}
}

func cleanShape() Shape {
	return Shape{
		Net:    "VDD",
		Copper: geom.RegionFromRect(geom.R(0, 0, 100, 20)),
		Terminals: []route.Terminal{
			term("S", geom.R(0, 5, 5, 15)),
			term("T", geom.R(95, 5, 100, 15)),
		},
		Budget: 2100,
	}
}

func TestAuditCleanLayout(t *testing.T) {
	s := cleanShape()
	avail := map[string]geom.Region{"VDD": geom.RegionFromRect(geom.R(0, 0, 200, 100))}
	vs := Audit([]Shape{s}, avail, geom.EmptyRegion(), Limits{Clearance: 2, MinWidth: 4, BudgetSlack: 0})
	if len(vs) != 0 {
		t.Fatalf("clean layout produced violations: %v", vs)
	}
}

func TestAuditEmptyCopper(t *testing.T) {
	vs := Audit([]Shape{{Net: "VDD"}}, nil, geom.EmptyRegion(), Limits{})
	if len(vs) != 1 || vs[0].Rule != "empty" || vs[0].Severity != Error {
		t.Fatalf("violations = %v", vs)
	}
}

func TestAuditContainment(t *testing.T) {
	s := cleanShape()
	avail := map[string]geom.Region{"VDD": geom.RegionFromRect(geom.R(0, 0, 90, 100))}
	vs := Audit([]Shape{s}, avail, geom.EmptyRegion(), Limits{Clearance: 2})
	found := false
	for _, v := range vs {
		if v.Rule == "containment" && v.Severity == Error {
			found = true
			if v.Where.X0 < 90 {
				t.Fatalf("escape localized wrong: %v", v.Where)
			}
		}
	}
	if !found {
		t.Fatalf("containment violation missing: %v", vs)
	}
}

func TestAuditBlockageOverlap(t *testing.T) {
	s := cleanShape()
	blockage := geom.RegionFromRect(geom.R(40, 0, 60, 10))
	vs := Audit([]Shape{s}, nil, blockage, Limits{Clearance: 2})
	if len(vs) == 0 || vs[0].Rule != "blockage" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestAuditConnectivity(t *testing.T) {
	s := cleanShape()
	s.Copper = geom.RegionFromRects([]geom.Rect{{X0: 0, Y0: 0, X1: 40, Y1: 20}, {X0: 60, Y0: 0, X1: 100, Y1: 20}})
	vs := Audit([]Shape{s}, nil, geom.EmptyRegion(), Limits{Clearance: 2})
	found := false
	for _, v := range vs {
		if v.Rule == "connectivity" && v.Severity == Error {
			found = true
		}
	}
	if !found {
		t.Fatalf("connectivity violation missing: %v", vs)
	}
}

func TestAuditClearance(t *testing.T) {
	a := cleanShape()
	b := Shape{
		Net:    "VSS",
		Copper: geom.RegionFromRect(geom.R(0, 21, 100, 40)), // only 1 unit away
	}
	vs := Audit([]Shape{a, b}, nil, geom.EmptyRegion(), Limits{Clearance: 2})
	if len(vs) == 0 || vs[0].Rule != "clearance" {
		t.Fatalf("violations = %v", vs)
	}
	// At 1-unit clearance requirement the same pair is legal.
	vs = Audit([]Shape{a, b}, nil, geom.EmptyRegion(), Limits{Clearance: 1})
	for _, v := range vs {
		if v.Rule == "clearance" {
			t.Fatalf("unexpected clearance violation: %v", v)
		}
	}
}

func TestAuditMinWidth(t *testing.T) {
	s := cleanShape()
	// A 2-wide neck at the T terminal.
	s.Copper = geom.RegionFromRects([]geom.Rect{
		{X0: 0, Y0: 0, X1: 60, Y1: 20},
		{X0: 60, Y0: 9, X1: 100, Y1: 11},
	})
	vs := Audit([]Shape{s}, nil, geom.EmptyRegion(), Limits{Clearance: 2, MinWidth: 6})
	found := false
	for _, v := range vs {
		if v.Rule == "min-width" {
			found = true
			if v.Severity != Warning {
				t.Fatalf("min-width should be a warning: %v", v)
			}
			if !strings.Contains(v.Msg, "T") {
				t.Fatalf("should name the starved terminal: %v", v)
			}
		}
	}
	if !found {
		t.Fatalf("min-width violation missing: %v", vs)
	}
}

func TestAuditBudgetAndDensity(t *testing.T) {
	s := cleanShape()
	s.Budget = 1500 // copper is 2000
	s.MaxCurrentDensity = 0.5
	vs := Audit([]Shape{s}, nil, geom.EmptyRegion(),
		Limits{Clearance: 2, BudgetSlack: 100, DensityLimit: 0.3})
	rules := map[string]bool{}
	for _, v := range vs {
		rules[v.Rule] = true
		if v.Severity != Warning {
			t.Fatalf("%s should be a warning", v.Rule)
		}
	}
	if !rules["budget"] || !rules["current-density"] {
		t.Fatalf("missing warnings: %v", vs)
	}
}

func TestAuditBoardWrapper(t *testing.T) {
	stack := board.Stackup{Layers: []board.Layer{
		{Name: "L1", CopperUM: 35, DielectricBelowUM: 100},
	}}
	rules := board.DesignRules{Clearance: 2, TileDX: 5, TileDY: 5}
	b, err := board.New("audit", geom.R(0, 0, 100, 50), stack, rules)
	if err != nil {
		t.Fatal(err)
	}
	vdd := b.AddNet("VDD", 2, 5)
	if err := b.AddGroup(board.TerminalGroup{
		Name: "s", Kind: board.KindPMIC, Net: vdd, Layer: 1, Current: 2,
		Pads: []geom.Region{geom.RegionFromRect(geom.R(0, 20, 8, 30))},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddGroup(board.TerminalGroup{
		Name: "t", Kind: board.KindBGA, Net: vdd, Layer: 1, Current: 2,
		Pads: []geom.Region{geom.RegionFromRect(geom.R(92, 20, 100, 30))},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddObstacle(board.NetNone, 1, geom.RegionFromRect(geom.R(40, 40, 60, 50))); err != nil {
		t.Fatal(err)
	}
	// A clean routed strip.
	clean := map[string]RoutedNet{
		"VDD": {Copper: geom.RegionFromRect(geom.R(0, 18, 100, 32)), Budget: 1500},
	}
	if vs := AuditBoard(b, 1, clean, Limits{Clearance: 2, BudgetSlack: 25}); len(vs) != 0 {
		t.Fatalf("clean board audit found %v", vs)
	}
	// Copper crossing the keepout must be flagged: both as blockage
	// overlap and as a containment escape (the keepout is excluded from
	// the net's available space).
	dirty := map[string]RoutedNet{
		"VDD": {Copper: geom.RegionFromRect(geom.R(0, 18, 100, 45)), Budget: 5000},
	}
	vs := AuditBoard(b, 1, dirty, Limits{Clearance: 2})
	rules2 := map[string]bool{}
	for _, v := range vs {
		rules2[v.Rule] = true
	}
	if !rules2["blockage"] || !rules2["containment"] {
		t.Fatalf("expected blockage+containment findings, got %v", vs)
	}
	// A net name unknown to the board audits with no available-space rule.
	orphan := map[string]RoutedNet{
		"GHOST": {Copper: geom.RegionFromRect(geom.R(0, 0, 10, 10))},
	}
	if vs := AuditBoard(b, 1, orphan, Limits{Clearance: 2}); len(vs) != 0 {
		t.Fatalf("orphan net should only be geometry-checked: %v", vs)
	}
}

func TestAuditSortingAndErrors(t *testing.T) {
	a := cleanShape()
	a.Budget = 100 // warning
	b := Shape{Net: "AAA"}
	vs := Audit([]Shape{a, b}, nil, geom.EmptyRegion(), Limits{Clearance: 2})
	if len(vs) < 2 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Severity != Error {
		t.Fatal("errors must sort first")
	}
	errs := Errors(vs)
	for _, v := range errs {
		if v.Severity != Error {
			t.Fatal("Errors() must filter warnings")
		}
	}
	if len(errs) == 0 || len(errs) == len(vs) {
		t.Fatalf("filtering wrong: %d of %d", len(errs), len(vs))
	}
	if !strings.Contains(vs[0].String(), "ERROR") {
		t.Fatalf("violation string: %s", vs[0])
	}
}
