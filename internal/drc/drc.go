// Package drc audits synthesized layouts against the design rules and
// electrical constraints the paper lists for power routing (§I, Table I:
// "current density, temperature, metal resources"): inter-net clearance,
// minimum feature width, blockage violations, terminal connectivity, area
// budgets, and peak current density. SPROUT's construction should make
// these pass by design; the auditor turns that belief into a checked
// invariant, which is what a production flow signs off on.
package drc

import (
	"fmt"
	"sort"

	"sprout/internal/board"
	"sprout/internal/extract"
	"sprout/internal/geom"
	"sprout/internal/route"
)

// Severity grades a violation.
type Severity int

// Severity levels.
const (
	// Error violations make a layout unmanufacturable or electrically
	// broken.
	Error Severity = iota
	// Warning violations are quality concerns (excess current density,
	// budget overshoot).
	Warning
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "ERROR"
	}
	return "WARNING"
}

// Violation is one audit finding.
type Violation struct {
	Severity Severity
	Rule     string
	Net      string
	// Where localizes the finding when geometry is involved.
	Where geom.Rect
	Msg   string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s [%s] net=%s at %v: %s", v.Severity, v.Rule, v.Net, v.Where, v.Msg)
}

// Shape is one routed net to audit.
type Shape struct {
	Net       string
	Copper    geom.Region
	Terminals []route.Terminal
	// Budget is the area budget; zero disables the budget check.
	Budget int64
	// MaxCurrentDensity is the extracted peak density (A per grid unit of
	// contact width for a 1 A injection); zero disables the check.
	MaxCurrentDensity float64
}

// Limits configures the audit.
type Limits struct {
	// Clearance is the required inter-net spacing (grid units).
	Clearance int64
	// MinWidth is the minimum feature width (grid units); shapes must
	// survive erosion by MinWidth/2. Zero disables the check.
	MinWidth int64
	// BudgetSlack is the tolerated overshoot above the budget in grid
	// units² (one grow batch of tiles is typical). Zero means exact.
	BudgetSlack int64
	// DensityLimit flags shapes whose extracted peak current density
	// exceeds it. Zero disables the check.
	DensityLimit float64
}

// Audit checks every rule and returns the findings sorted by severity then
// net. blockages is the keepout-and-other-net geometry each shape must
// avoid entirely (unbloated); avail maps each net to its legal space.
func Audit(shapes []Shape, avail map[string]geom.Region, blockages geom.Region, lim Limits) []Violation {
	var out []Violation
	add := func(sev Severity, rule, net string, where geom.Rect, format string, args ...interface{}) {
		out = append(out, Violation{
			Severity: sev, Rule: rule, Net: net, Where: where,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	for i, s := range shapes {
		if s.Copper.Empty() {
			add(Error, "empty", s.Net, geom.Rect{}, "net has no copper")
			continue
		}
		// Containment within the net's available space.
		if a, ok := avail[s.Net]; ok {
			if escape := s.Copper.Subtract(a); !escape.Empty() {
				add(Error, "containment", s.Net, escape.Bounds(),
					"%d units² of copper outside the available space", escape.Area())
			}
		}
		// Blockage overlap.
		if !blockages.Empty() {
			if hit := s.Copper.Intersect(blockages); !hit.Empty() {
				add(Error, "blockage", s.Net, hit.Bounds(),
					"copper overlaps a blockage by %d units²", hit.Area())
			}
		}
		// Terminal connectivity: one component must reach every terminal.
		if len(s.Terminals) >= 2 && !connectsAll(s.Copper, s.Terminals) {
			add(Error, "connectivity", s.Net, s.Copper.Bounds(),
				"no single copper component reaches all %d terminals", len(s.Terminals))
		}
		// Inter-net clearance (pairwise).
		for j := i + 1; j < len(shapes); j++ {
			o := shapes[j]
			if o.Copper.Empty() {
				continue
			}
			if hit := s.Copper.Bloat(lim.Clearance).Intersect(o.Copper); !hit.Empty() {
				add(Error, "clearance", s.Net+"/"+o.Net, hit.Bounds(),
					"nets closer than %d units", lim.Clearance)
			}
		}
		// Minimum width: eroding by MinWidth/2 must not erase any
		// component that carries a terminal (thin necks are acceptable only
		// in non-critical stubs; a vanished terminal patch is not).
		if lim.MinWidth > 1 {
			eroded := s.Copper.Erode(lim.MinWidth / 2)
			for _, t := range s.Terminals {
				if !eroded.Overlaps(t.Shape.Bloat(lim.MinWidth)) {
					add(Warning, "min-width", s.Net, t.Shape.Bounds(),
						"copper at terminal %s thinner than %d units", t.Name, lim.MinWidth)
				}
			}
		}
		// Area budget.
		if s.Budget > 0 {
			if got := s.Copper.Area(); got > s.Budget+lim.BudgetSlack {
				add(Warning, "budget", s.Net, s.Copper.Bounds(),
					"area %d exceeds budget %d (+%d slack)", got, s.Budget, lim.BudgetSlack)
			}
		}
		// Current density.
		if lim.DensityLimit > 0 && s.MaxCurrentDensity > lim.DensityLimit {
			add(Warning, "current-density", s.Net, s.Copper.Bounds(),
				"peak density %.3g exceeds limit %.3g", s.MaxCurrentDensity, lim.DensityLimit)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity < out[j].Severity
		}
		return out[i].Net < out[j].Net
	})
	return out
}

// connectsAll reports whether the copper plus the terminals form one
// electrical net. A terminal group's pads are virtually stitched (a BGA
// via cluster is bonded through its balls on other layers), so every
// copper component touching any pad of a group is connected to every other
// component touching that group. The check is a union-find over copper
// components with one virtual bridge per terminal.
func connectsAll(copper geom.Region, terms []route.Terminal) bool {
	joined := copper
	for _, t := range terms {
		joined = joined.Union(t.Shape)
	}
	comps := joined.Components()
	parent := make([]int, len(comps))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	termRoot := make([]int, len(terms))
	for ti, t := range terms {
		first := -1
		for ci, comp := range comps {
			if comp.Overlaps(t.Shape) {
				if first == -1 {
					first = ci
				} else {
					parent[find(ci)] = find(first)
				}
			}
		}
		if first == -1 {
			return false // terminal untouched by any conductor
		}
		termRoot[ti] = first
	}
	root := find(termRoot[0])
	for _, r := range termRoot[1:] {
		if find(r) != root {
			return false
		}
	}
	return true
}

// Errors filters the findings to Error severity.
func Errors(vs []Violation) []Violation {
	var out []Violation
	for _, v := range vs {
		if v.Severity == Error {
			out = append(out, v)
		}
	}
	return out
}

// AuditBoard is a convenience wrapper: it audits a routed board result
// directly from the board description, deriving available spaces, blockage
// geometry and terminal sets.
func AuditBoard(b *board.Board, layer int, routed map[string]RoutedNet, lim Limits) []Violation {
	blockages := geom.EmptyRegion()
	for _, o := range b.Obstacle {
		if o.Layer == layer {
			blockages = blockages.Union(o.Shape)
		}
	}
	avail := map[string]geom.Region{}
	var shapes []Shape
	names := make([]string, 0, len(routed))
	for name := range routed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rn := routed[name]
		var netID board.NetID = -1
		for _, n := range b.Nets {
			if n.Name == name {
				netID = n.ID
			}
		}
		if netID >= 0 {
			avail[name] = b.AvailableSpace(netID, layer)
		}
		var terms []route.Terminal
		if netID >= 0 {
			for _, g := range b.GroupsOn(netID, layer) {
				terms = append(terms, route.Terminal{Name: g.Name, Shape: g.Shape(), Current: g.Current})
			}
		}
		shapes = append(shapes, Shape{
			Net: name, Copper: rn.Copper, Terminals: terms,
			Budget: rn.Budget, MaxCurrentDensity: density(rn.Extract),
		})
	}
	return Audit(shapes, avail, blockages, lim)
}

// RoutedNet is the audit input for one net of a routed board.
type RoutedNet struct {
	Copper  geom.Region
	Budget  int64
	Extract *extract.Report
}

func density(rep *extract.Report) float64 {
	if rep == nil {
		return 0
	}
	return rep.MaxCurrentDensity
}
