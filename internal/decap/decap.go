// Package decap selects decoupling capacitors for a rail so that its
// impedance profile meets a target mask — the companion decision to
// SPROUT's shape synthesis. The paper's flow connects "the PMIC output,
// ball grid array, and, optionally, decoupling capacitors" (§I) and its
// references [2], [15], [16] study exactly this selection problem; here a
// deterministic greedy search adds, at every step, the candidate that most
// reduces the worst impedance-to-mask ratio.
package decap

import (
	"fmt"

	"sprout/internal/ckt"
)

// Candidate is a decap kind available to the planner.
type Candidate struct {
	Name  string
	Decap ckt.Decap
}

// StandardKit returns a typical three-tier decap kit: bulk electrolytic,
// mid-frequency MLCC, and a small high-frequency MLCC.
func StandardKit() []Candidate {
	return []Candidate{
		{Name: "bulk-100uF", Decap: ckt.Decap{C: 100e-6, ESR: 0.030, ESL: 3e-9}},
		{Name: "mlcc-10uF", Decap: ckt.Decap{C: 10e-6, ESR: 0.005, ESL: 0.5e-9}},
		{Name: "mlcc-1uF", Decap: ckt.Decap{C: 1e-6, ESR: 0.010, ESL: 0.3e-9}},
	}
}

// Options bounds the search.
type Options struct {
	// MaxDecaps caps the total count. Zero selects 12.
	MaxDecaps int
	// FMin, FMax bound the checked band. Zeros select 10 kHz – 100 MHz.
	FMin, FMax float64
	// PointsPerDecade sets the sweep resolution. Zero selects 12.
	PointsPerDecade int
}

func (o Options) withDefaults() Options {
	if o.MaxDecaps == 0 {
		o.MaxDecaps = 12
	}
	if o.FMin == 0 {
		o.FMin = 1e4
	}
	if o.FMax == 0 {
		o.FMax = 1e8
	}
	if o.PointsPerDecade == 0 {
		o.PointsPerDecade = 12
	}
	return o
}

// Result is the planner outcome.
type Result struct {
	// Chosen lists the selected decaps in selection order.
	Chosen []Candidate
	// Counts tallies selections per candidate name.
	Counts map[string]int
	// Report is the final mask check.
	Report ckt.MaskReport
	// Profile is the final impedance profile.
	Profile ckt.Profile
}

// Plan greedily selects decaps until the rail (railROhms, railLHenry)
// meets the mask or no candidate improves the worst ratio. It returns the
// best configuration found together with its mask report; Report.Pass
// tells whether the target was met.
func Plan(railROhms, railLHenry float64, cands []Candidate, mask ckt.TargetMask, opt Options) (*Result, error) {
	if railROhms <= 0 || railLHenry <= 0 {
		return nil, fmt.Errorf("decap: rail R=%g L=%g must be positive", railROhms, railLHenry)
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("decap: no candidates")
	}
	if len(mask) == 0 {
		return nil, fmt.Errorf("decap: empty target mask")
	}
	opt = opt.withDefaults()

	evaluate := func(chosen []Candidate) (ckt.MaskReport, ckt.Profile, error) {
		model := ckt.PDNModel{
			VSupply: 1, ROhms: railROhms, LHenry: railLHenry,
			ILoad: 1, SlewNS: 1,
		}
		for _, c := range chosen {
			model.Decaps = append(model.Decaps, c.Decap)
		}
		profile, err := model.ImpedanceProfile(opt.FMin, opt.FMax, opt.PointsPerDecade)
		if err != nil {
			return ckt.MaskReport{}, nil, err
		}
		rep, err := mask.Check(profile)
		if err != nil {
			return ckt.MaskReport{}, nil, err
		}
		return rep, profile, nil
	}

	var chosen []Candidate
	rep, profile, err := evaluate(chosen)
	if err != nil {
		return nil, err
	}
	for !rep.Pass && len(chosen) < opt.MaxDecaps {
		bestIdx := -1
		var bestRep ckt.MaskReport
		var bestProfile ckt.Profile
		for i, cand := range cands {
			trial := append(append([]Candidate(nil), chosen...), cand)
			trialRep, trialProfile, err := evaluate(trial)
			if err != nil {
				return nil, err
			}
			if bestIdx == -1 || trialRep.WorstRatio < bestRep.WorstRatio {
				bestIdx, bestRep, bestProfile = i, trialRep, trialProfile
			}
		}
		if bestRep.WorstRatio >= rep.WorstRatio {
			break // no candidate helps: the rail inductance is the wall
		}
		chosen = append(chosen, cands[bestIdx])
		rep, profile = bestRep, bestProfile
	}

	counts := map[string]int{}
	for _, c := range chosen {
		counts[c.Name]++
	}
	return &Result{Chosen: chosen, Counts: counts, Report: rep, Profile: profile}, nil
}
