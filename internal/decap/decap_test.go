package decap

import (
	"testing"

	"sprout/internal/ckt"
)

// relaxedMask allows the inevitable high-frequency inductive rise: flat
// floor to 1 MHz, then 20 dB/decade.
func relaxedMask(floor float64) ckt.TargetMask {
	return ckt.TargetMask{
		{FreqHz: 1e4, LimitOhms: floor},
		{FreqHz: 1e6, LimitOhms: floor},
		{FreqHz: 1e8, LimitOhms: floor * 100},
	}
}

func TestPlanMeetsGenerousMask(t *testing.T) {
	// Rail: 2 mΩ, 2 nH — bare, ωL crosses the 10 mΩ floor near 800 kHz,
	// so decaps are mandatory; with them the mask is achievable.
	res, err := Plan(0.002, 2e-9, StandardKit(), relaxedMask(0.010), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Pass {
		t.Fatalf("plan failed: worst ratio %g at %g Hz with %d decaps",
			res.Report.WorstRatio, res.Report.WorstFreqHz, len(res.Chosen))
	}
	if len(res.Chosen) == 0 {
		t.Fatal("a 2 nH rail needs at least one decap for the mid band")
	}
	if len(res.Chosen) > 8 {
		t.Fatalf("greedy used %d decaps for an easy mask", len(res.Chosen))
	}
}

func TestPlanNoDecapsNeeded(t *testing.T) {
	// A very low-impedance rail against a loose mask passes bare.
	res, err := Plan(0.0005, 50e-12, StandardKit(), relaxedMask(0.050), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Pass {
		t.Fatalf("bare rail should pass: %+v", res.Report)
	}
	if len(res.Chosen) != 0 {
		t.Fatalf("no decaps should be selected, got %d", len(res.Chosen))
	}
}

func TestPlanImpossibleMaskStopsGracefully(t *testing.T) {
	// A 1 µΩ floor cannot be met; the planner must stop at the budget or
	// when progress stalls, reporting failure rather than looping.
	res, err := Plan(0.002, 500e-12, StandardKit(), relaxedMask(1e-6), Options{MaxDecaps: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Pass {
		t.Fatal("impossible mask cannot pass")
	}
	if len(res.Chosen) > 6 {
		t.Fatalf("budget exceeded: %d", len(res.Chosen))
	}
}

func TestPlanMonotoneImprovement(t *testing.T) {
	// The final configuration must be no worse than the bare rail.
	bare, err := Plan(0.002, 400e-12, StandardKit(), relaxedMask(1e-6), Options{MaxDecaps: 0})
	_ = bare
	if err != nil {
		t.Fatal(err)
	}
	full, err := Plan(0.002, 400e-12, StandardKit(), relaxedMask(0.008), Options{})
	if err != nil {
		t.Fatal(err)
	}
	model := ckt.PDNModel{VSupply: 1, ROhms: 0.002, LHenry: 400e-12, ILoad: 1, SlewNS: 1}
	bareProfile, err := model.ImpedanceProfile(1e4, 1e8, 12)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := relaxedMask(0.008).Check(bareProfile)
	if err != nil {
		t.Fatal(err)
	}
	if full.Report.WorstRatio > rep.WorstRatio {
		t.Fatalf("plan made things worse: %g vs bare %g",
			full.Report.WorstRatio, rep.WorstRatio)
	}
}

func TestPlanDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Plan(0.003, 600e-12, StandardKit(), relaxedMask(0.012), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Chosen) != len(b.Chosen) {
		t.Fatal("nondeterministic selection count")
	}
	for i := range a.Chosen {
		if a.Chosen[i].Name != b.Chosen[i].Name {
			t.Fatal("nondeterministic selection order")
		}
	}
}

func TestPlanValidation(t *testing.T) {
	kit := StandardKit()
	mask := relaxedMask(0.01)
	if _, err := Plan(0, 1e-10, kit, mask, Options{}); err == nil {
		t.Fatal("zero R must error")
	}
	if _, err := Plan(0.001, 0, kit, mask, Options{}); err == nil {
		t.Fatal("zero L must error")
	}
	if _, err := Plan(0.001, 1e-10, nil, mask, Options{}); err == nil {
		t.Fatal("no candidates must error")
	}
	if _, err := Plan(0.001, 1e-10, kit, nil, Options{}); err == nil {
		t.Fatal("empty mask must error")
	}
}

func TestStandardKitSane(t *testing.T) {
	kit := StandardKit()
	if len(kit) != 3 {
		t.Fatalf("kit size = %d", len(kit))
	}
	for _, c := range kit {
		if c.Decap.C <= 0 || c.Decap.ESR <= 0 || c.Decap.ESL <= 0 {
			t.Fatalf("candidate %s has non-physical parameters", c.Name)
		}
	}
	// Bulk has the most capacitance, HF the least ESL.
	if kit[0].Decap.C <= kit[1].Decap.C || kit[2].Decap.ESL >= kit[1].Decap.ESL {
		t.Fatal("kit tiers out of order")
	}
}
