// Package boardio serializes Board definitions to and from a JSON
// interchange format, so boards can be authored by hand or by other tools
// and routed with the sprout CLI. Geometry accepts rectangles, circles and
// polygons; non-rectilinear shapes are snapped to the manufacturing grid on
// load, exactly as the geometry substrate documents.
package boardio

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"sprout/internal/board"
	"sprout/internal/geom"
	"sprout/internal/route"
)

// ShapeJSON is one geometric primitive. Exactly one field must be set.
type ShapeJSON struct {
	// Rect is [x0, y0, x1, y1].
	Rect []int64 `json:"rect,omitempty"`
	// Circle is [cx, cy, r].
	Circle []int64 `json:"circle,omitempty"`
	// Poly is a vertex list [[x, y], ...].
	Poly [][2]int64 `json:"poly,omitempty"`
}

// Region converts the shape to a Region, rasterizing at pitch 1.
func (s ShapeJSON) Region() (geom.Region, error) {
	set := 0
	if len(s.Rect) > 0 {
		set++
	}
	if len(s.Circle) > 0 {
		set++
	}
	if len(s.Poly) > 0 {
		set++
	}
	if set != 1 {
		return geom.Region{}, fmt.Errorf("boardio: shape must set exactly one of rect, circle, poly")
	}
	switch {
	case len(s.Rect) > 0:
		if len(s.Rect) != 4 {
			return geom.Region{}, fmt.Errorf("boardio: rect needs 4 numbers, got %d", len(s.Rect))
		}
		return geom.RegionFromRect(geom.R(s.Rect[0], s.Rect[1], s.Rect[2], s.Rect[3])), nil
	case len(s.Circle) > 0:
		if len(s.Circle) != 3 {
			return geom.Region{}, fmt.Errorf("boardio: circle needs 3 numbers, got %d", len(s.Circle))
		}
		return geom.Circle(geom.Pt(s.Circle[0], s.Circle[1]), s.Circle[2], 1), nil
	default:
		pts := make([]geom.Point, len(s.Poly))
		for i, p := range s.Poly {
			pts[i] = geom.Pt(p[0], p[1])
		}
		return geom.Polygon{V: pts}.Rasterize(1)
	}
}

// LayerJSON mirrors board.Layer.
type LayerJSON struct {
	Name              string  `json:"name"`
	CopperUM          float64 `json:"copper_um"`
	DielectricBelowUM float64 `json:"dielectric_below_um"`
	IsPlane           bool    `json:"is_plane,omitempty"`
}

// RulesJSON mirrors board.DesignRules.
type RulesJSON struct {
	Clearance int64   `json:"clearance"`
	TileDX    int64   `json:"tile_dx"`
	TileDY    int64   `json:"tile_dy"`
	ViaCost   float64 `json:"via_cost"`
}

// NetJSON mirrors board.Net; budgets are carried alongside for the CLI.
type NetJSON struct {
	Name       string  `json:"name"`
	Current    float64 `json:"current"`
	SlewNS     float64 `json:"slew_ns"`
	AreaBudget int64   `json:"area_budget,omitempty"`
}

// GroupJSON mirrors board.TerminalGroup with the net referenced by name.
type GroupJSON struct {
	Name    string      `json:"name"`
	Kind    string      `json:"kind"` // pmic, bga, decap, via
	Net     string      `json:"net"`
	Layer   int         `json:"layer"`
	Current float64     `json:"current"`
	Pads    []ShapeJSON `json:"pads"`
}

// ObstacleJSON mirrors board.Obstacle; empty net means keepout.
type ObstacleJSON struct {
	Net   string      `json:"net,omitempty"`
	Layer int         `json:"layer"`
	Shape []ShapeJSON `json:"shape"`
}

// RouterJSON carries optional SPROUT pipeline tuning (see route.Config).
type RouterJSON struct {
	GrowNodes       int     `json:"grow_nodes,omitempty"`
	RefineNodes     int     `json:"refine_nodes,omitempty"`
	RefineIters     int     `json:"refine_iters,omitempty"`
	RefineTol       float64 `json:"refine_tol,omitempty"`
	ReheatDilations int     `json:"reheat_dilations,omitempty"`
}

// BoardJSON is the interchange document.
type BoardJSON struct {
	Name      string         `json:"name"`
	Outline   []int64        `json:"outline"` // [x0, y0, x1, y1]
	Stackup   []LayerJSON    `json:"stackup"`
	Rules     RulesJSON      `json:"rules"`
	Nets      []NetJSON      `json:"nets"`
	Groups    []GroupJSON    `json:"groups"`
	Obstacles []ObstacleJSON `json:"obstacles,omitempty"`
	// RoutingLayer is the default layer the CLI routes on.
	RoutingLayer int `json:"routing_layer"`
	// Router optionally tunes the pipeline.
	Router *RouterJSON `json:"router,omitempty"`
}

var kindNames = map[string]board.TerminalKind{
	"pmic":  board.KindPMIC,
	"bga":   board.KindBGA,
	"decap": board.KindDecap,
	"via":   board.KindVia,
}

func kindName(k board.TerminalKind) string {
	for name, v := range kindNames {
		if v == k {
			return name
		}
	}
	return "via"
}

// Decoded is the result of loading a board document.
type Decoded struct {
	Board        *board.Board
	RoutingLayer int
	// Budgets holds per-net area budgets from the document.
	Budgets map[board.NetID]int64
	// Config is the router tuning: tile sizes from the rules plus any
	// optional "router" section of the document.
	Config route.Config
	// Doc is the parsed source document, retained so callers can
	// re-serialize the submission in canonical form (persistence, content
	// hashing). Nil when the Decoded was built directly from a Board.
	Doc *BoardJSON
}

// Decode reads a BoardJSON document and builds the Board.
func Decode(r io.Reader) (*Decoded, error) {
	var doc BoardJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("boardio: %w", err)
	}
	return FromJSON(&doc)
}

// Canonical re-encodes the parsed document deterministically: one JSON
// object with the struct field order of BoardJSON, no insignificant
// whitespace. Two submissions that differ only in key order, whitespace
// or number formatting canonicalize to the same bytes; element order
// (nets, groups, obstacles) is preserved because it is semantically
// meaningful — net order is the routing order. The canonical form
// round-trips through Decode, so it doubles as the persisted shape of a
// submission.
func (doc *BoardJSON) Canonical() ([]byte, error) {
	b, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("boardio: canonicalize: %w", err)
	}
	return b, nil
}

// CanonicalHash is the hex SHA-256 of the canonical encoding — the
// content identity of a submission, used by sproutd to dedupe equivalent
// boards and by the shard router to place them.
func (doc *BoardJSON) CanonicalHash() (string, error) {
	b, err := doc.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// FromJSON builds a Board from a parsed document.
func FromJSON(doc *BoardJSON) (*Decoded, error) {
	if len(doc.Outline) != 4 {
		return nil, fmt.Errorf("boardio: outline needs 4 numbers, got %d", len(doc.Outline))
	}
	layers := make([]board.Layer, len(doc.Stackup))
	for i, l := range doc.Stackup {
		layers[i] = board.Layer{
			Name: l.Name, CopperUM: l.CopperUM,
			DielectricBelowUM: l.DielectricBelowUM, IsPlane: l.IsPlane,
		}
	}
	rules := board.DesignRules{
		Clearance: doc.Rules.Clearance,
		TileDX:    doc.Rules.TileDX, TileDY: doc.Rules.TileDY,
		ViaCost: doc.Rules.ViaCost,
	}
	b, err := board.New(doc.Name,
		geom.R(doc.Outline[0], doc.Outline[1], doc.Outline[2], doc.Outline[3]),
		board.Stackup{Layers: layers}, rules)
	if err != nil {
		return nil, fmt.Errorf("boardio: %w", err)
	}
	netOf := map[string]board.NetID{}
	budgets := map[board.NetID]int64{}
	for _, n := range doc.Nets {
		if n.Name == "" {
			return nil, fmt.Errorf("boardio: net with empty name")
		}
		if _, dup := netOf[n.Name]; dup {
			return nil, fmt.Errorf("boardio: duplicate net %q", n.Name)
		}
		id := b.AddNet(n.Name, n.Current, n.SlewNS)
		netOf[n.Name] = id
		if n.AreaBudget > 0 {
			budgets[id] = n.AreaBudget
		}
	}
	for _, g := range doc.Groups {
		kind, ok := kindNames[g.Kind]
		if !ok {
			return nil, fmt.Errorf("boardio: group %q has unknown kind %q", g.Name, g.Kind)
		}
		net, ok := netOf[g.Net]
		if !ok {
			return nil, fmt.Errorf("boardio: group %q references unknown net %q", g.Name, g.Net)
		}
		pads := make([]geom.Region, len(g.Pads))
		for i, s := range g.Pads {
			pads[i], err = s.Region()
			if err != nil {
				return nil, fmt.Errorf("boardio: group %q pad %d: %w", g.Name, i, err)
			}
		}
		if err := b.AddGroup(board.TerminalGroup{
			Name: g.Name, Kind: kind, Net: net, Layer: g.Layer,
			Pads: pads, Current: g.Current,
		}); err != nil {
			return nil, fmt.Errorf("boardio: %w", err)
		}
	}
	for i, o := range doc.Obstacles {
		net := board.NetNone
		if o.Net != "" {
			id, ok := netOf[o.Net]
			if !ok {
				return nil, fmt.Errorf("boardio: obstacle %d references unknown net %q", i, o.Net)
			}
			net = id
		}
		shape := geom.EmptyRegion()
		for j, s := range o.Shape {
			r, err := s.Region()
			if err != nil {
				return nil, fmt.Errorf("boardio: obstacle %d shape %d: %w", i, j, err)
			}
			shape = shape.Union(r)
		}
		if err := b.AddObstacle(net, o.Layer, shape); err != nil {
			return nil, fmt.Errorf("boardio: %w", err)
		}
	}
	if doc.RoutingLayer < 1 || doc.RoutingLayer > b.Stackup.NumLayers() {
		return nil, fmt.Errorf("boardio: routing_layer %d out of range [1,%d]",
			doc.RoutingLayer, b.Stackup.NumLayers())
	}
	cfg := route.Config{DX: rules.TileDX, DY: rules.TileDY}
	if doc.Router != nil {
		cfg.GrowNodes = doc.Router.GrowNodes
		cfg.RefineNodes = doc.Router.RefineNodes
		cfg.RefineIters = doc.Router.RefineIters
		cfg.RefineTol = doc.Router.RefineTol
		cfg.ReheatDilations = doc.Router.ReheatDilations
	}
	return &Decoded{Board: b, RoutingLayer: doc.RoutingLayer, Budgets: budgets, Config: cfg, Doc: doc}, nil
}

// Encode writes the Board as a BoardJSON document. Region geometry is
// emitted as canonical rectangles.
func Encode(w io.Writer, b *board.Board, routingLayer int, budgets map[board.NetID]int64) error {
	doc := BoardJSON{
		Name:    b.Name,
		Outline: []int64{b.Outline.X0, b.Outline.Y0, b.Outline.X1, b.Outline.Y1},
		Rules: RulesJSON{
			Clearance: b.Rules.Clearance,
			TileDX:    b.Rules.TileDX, TileDY: b.Rules.TileDY,
			ViaCost: b.Rules.ViaCost,
		},
		RoutingLayer: routingLayer,
	}
	for _, l := range b.Stackup.Layers {
		doc.Stackup = append(doc.Stackup, LayerJSON{
			Name: l.Name, CopperUM: l.CopperUM,
			DielectricBelowUM: l.DielectricBelowUM, IsPlane: l.IsPlane,
		})
	}
	for _, n := range b.Nets {
		doc.Nets = append(doc.Nets, NetJSON{
			Name: n.Name, Current: n.Current, SlewNS: n.SlewTimeNS,
			AreaBudget: budgets[n.ID],
		})
	}
	for _, g := range b.Groups {
		net, err := b.Net(g.Net)
		if err != nil {
			return fmt.Errorf("boardio: %w", err)
		}
		gj := GroupJSON{
			Name: g.Name, Kind: kindName(g.Kind), Net: net.Name,
			Layer: g.Layer, Current: g.Current,
		}
		for _, p := range g.Pads {
			gj.Pads = append(gj.Pads, regionShapes(p)...)
		}
		doc.Groups = append(doc.Groups, gj)
	}
	for _, o := range b.Obstacle {
		oj := ObstacleJSON{Layer: o.Layer, Shape: regionShapes(o.Shape)}
		if o.Net != board.NetNone {
			net, err := b.Net(o.Net)
			if err != nil {
				return fmt.Errorf("boardio: %w", err)
			}
			oj.Net = net.Name
		}
		doc.Obstacles = append(doc.Obstacles, oj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("boardio: %w", err)
	}
	return nil
}

func regionShapes(g geom.Region) []ShapeJSON {
	var out []ShapeJSON
	for _, r := range g.Rects() {
		out = append(out, ShapeJSON{Rect: []int64{r.X0, r.Y0, r.X1, r.Y1}})
	}
	return out
}
