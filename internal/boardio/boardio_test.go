package boardio

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"sprout"

	"sprout/internal/board"
	"sprout/internal/cases"
	"sprout/internal/geom"
)

const minimalDoc = `{
  "name": "mini",
  "outline": [0, 0, 200, 100],
  "stackup": [
    {"name": "L1", "copper_um": 35, "dielectric_below_um": 100},
    {"name": "L2", "copper_um": 35, "dielectric_below_um": 0, "is_plane": true}
  ],
  "rules": {"clearance": 2, "tile_dx": 10, "tile_dy": 10, "via_cost": 5},
  "nets": [{"name": "VDD", "current": 3, "slew_ns": 5, "area_budget": 2500}],
  "groups": [
    {"name": "pmic", "kind": "pmic", "net": "VDD", "layer": 1, "current": 3,
     "pads": [{"rect": [5, 40, 15, 60]}]},
    {"name": "bga", "kind": "bga", "net": "VDD", "layer": 1, "current": 3,
     "pads": [{"circle": [180, 50, 6]}]}
  ],
  "obstacles": [
    {"layer": 1, "shape": [{"rect": [90, 0, 110, 40]}]}
  ],
  "routing_layer": 1
}`

func TestDecodeMinimal(t *testing.T) {
	dec, err := Decode(strings.NewReader(minimalDoc))
	if err != nil {
		t.Fatal(err)
	}
	b := dec.Board
	if b.Name != "mini" || dec.RoutingLayer != 1 {
		t.Fatalf("decoded %q layer %d", b.Name, dec.RoutingLayer)
	}
	if len(b.Nets) != 1 || b.Nets[0].Current != 3 {
		t.Fatalf("nets = %+v", b.Nets)
	}
	if dec.Budgets[0] != 2500 {
		t.Fatalf("budget = %d", dec.Budgets[0])
	}
	if len(b.Groups) != 2 {
		t.Fatalf("groups = %d", len(b.Groups))
	}
	if b.Groups[0].Kind != board.KindPMIC || b.Groups[1].Kind != board.KindBGA {
		t.Fatalf("kinds = %v %v", b.Groups[0].Kind, b.Groups[1].Kind)
	}
	// Circle pad rasterized around (180, 50).
	if !b.Groups[1].Shape().Contains(geom.Pt(180, 50)) {
		t.Fatal("circle pad must contain its center")
	}
	if len(b.Obstacle) != 1 || b.Obstacle[0].Net != board.NetNone {
		t.Fatalf("obstacles = %+v", b.Obstacle)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"bad json", `{`},
		{"unknown field", `{"name":"x","bogus":1}`},
		{"short outline", `{"name":"x","outline":[0,0,10],"stackup":[{"name":"L1","copper_um":35,"dielectric_below_um":0}],"rules":{"clearance":0,"tile_dx":1,"tile_dy":1,"via_cost":1},"routing_layer":1}`},
		{"dup net", strings.Replace(minimalDoc, `{"name": "VDD", "current": 3, "slew_ns": 5, "area_budget": 2500}`,
			`{"name": "VDD", "current": 3, "slew_ns": 5},{"name": "VDD", "current": 1, "slew_ns": 5}`, 1)},
		{"bad kind", strings.Replace(minimalDoc, `"kind": "pmic"`, `"kind": "alien"`, 1)},
		{"bad net ref", strings.Replace(minimalDoc, `"net": "VDD", "layer": 1, "current": 3,
     "pads": [{"rect": [5, 40, 15, 60]}]`, `"net": "NOPE", "layer": 1, "current": 3,
     "pads": [{"rect": [5, 40, 15, 60]}]`, 1)},
		{"bad routing layer", strings.Replace(minimalDoc, `"routing_layer": 1`, `"routing_layer": 7`, 1)},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestShapeJSONValidation(t *testing.T) {
	if _, err := (ShapeJSON{}).Region(); err == nil {
		t.Fatal("empty shape must error")
	}
	if _, err := (ShapeJSON{Rect: []int64{1, 2, 3}}).Region(); err == nil {
		t.Fatal("short rect must error")
	}
	if _, err := (ShapeJSON{Circle: []int64{1, 2}}).Region(); err == nil {
		t.Fatal("short circle must error")
	}
	if _, err := (ShapeJSON{Rect: []int64{0, 0, 1, 1}, Circle: []int64{0, 0, 1}}).Region(); err == nil {
		t.Fatal("two primitives must error")
	}
	g, err := (ShapeJSON{Poly: [][2]int64{{0, 0}, {10, 0}, {10, 10}, {0, 10}}}).Region()
	if err != nil || g.Area() != 100 {
		t.Fatalf("poly shape: area=%d err=%v", g.Area(), err)
	}
}

func TestRoundTripTwoRail(t *testing.T) {
	cs, err := cases.TwoRail()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, cs.Board, cs.RoutingLayer, cs.Budgets); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b2 := dec.Board
	if b2.Name != cs.Board.Name {
		t.Fatalf("name %q != %q", b2.Name, cs.Board.Name)
	}
	if len(b2.Nets) != len(cs.Board.Nets) || len(b2.Groups) != len(cs.Board.Groups) ||
		len(b2.Obstacle) != len(cs.Board.Obstacle) {
		t.Fatal("round trip changed element counts")
	}
	if dec.RoutingLayer != cs.RoutingLayer {
		t.Fatalf("routing layer %d != %d", dec.RoutingLayer, cs.RoutingLayer)
	}
	// Geometry must survive exactly (regions are canonical rect lists).
	for i, g := range cs.Board.Groups {
		if !b2.Groups[i].Shape().Equal(g.Shape()) {
			t.Fatalf("group %s geometry changed", g.Name)
		}
	}
	// Available space identical on the routing layer.
	for _, net := range cs.Board.Nets {
		a1 := cs.Board.AvailableSpace(net.ID, cs.RoutingLayer)
		a2 := b2.AvailableSpace(net.ID, cs.RoutingLayer)
		if !a1.Equal(a2) {
			t.Fatalf("net %s available space changed after round trip", net.Name)
		}
	}
	// Budgets preserved.
	for id, v := range cs.Budgets {
		if dec.Budgets[id] != v {
			t.Fatalf("budget for net %d: %d != %d", id, dec.Budgets[id], v)
		}
	}
}

func TestDecodeExampleDocument(t *testing.T) {
	f, err := os.Open("testdata/example_board.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dec, err := Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Board.Name != "example-two-rail" || dec.RoutingLayer != 3 {
		t.Fatalf("decoded %q layer %d", dec.Board.Name, dec.RoutingLayer)
	}
	if len(dec.Board.Nets) != 2 || len(dec.Board.Groups) != 5 || len(dec.Board.Obstacle) != 2 {
		t.Fatalf("counts: nets=%d groups=%d obstacles=%d",
			len(dec.Board.Nets), len(dec.Board.Groups), len(dec.Board.Obstacle))
	}
	if dec.Config.GrowNodes != 12 || dec.Config.ReheatDilations != 1 || dec.Config.DX != 5 {
		t.Fatalf("router config not applied: %+v", dec.Config)
	}
	if dec.Budgets[0] != 6500 || dec.Budgets[1] != 3000 {
		t.Fatalf("budgets = %v", dec.Budgets)
	}
	// The example must actually route end to end.
	res, err := sprout.RouteBoard(dec.Board, sprout.RouteOptions{
		Layer:   dec.RoutingLayer,
		Budgets: dec.Budgets,
		Config:  dec.Config,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rails) != 2 {
		t.Fatalf("rails = %d", len(res.Rails))
	}
	if vs := sprout.Audit(res, sprout.DRCLimits{}); len(vs) != 0 {
		t.Fatalf("example board must pass DRC: %v", vs)
	}
}
