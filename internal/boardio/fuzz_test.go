package boardio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the JSON board parser: arbitrary inputs must either
// fail cleanly or produce a board that re-encodes and re-decodes without
// error (no panics, no inconsistent state).
func FuzzDecode(f *testing.F) {
	f.Add(minimalDoc)
	f.Add(`{}`)
	f.Add(`{"name":"x","outline":[0,0,1,1],"stackup":[{"name":"L1","copper_um":35,"dielectric_below_um":0}],"rules":{"clearance":0,"tile_dx":1,"tile_dy":1,"via_cost":0},"nets":[],"groups":[],"routing_layer":1}`)
	f.Add(strings.Replace(minimalDoc, `"rect": [5, 40, 15, 60]`, `"poly": [[0,0],[9,0],[9,9],[0,9]]`, 1))
	f.Add(strings.Replace(minimalDoc, `"routing_layer": 1`, `"routing_layer": -2`, 1))
	f.Fuzz(func(t *testing.T, doc string) {
		dec, err := Decode(strings.NewReader(doc))
		if err != nil {
			return // clean rejection is fine
		}
		// Accepted documents must round-trip.
		var buf bytes.Buffer
		if err := Encode(&buf, dec.Board, dec.RoutingLayer, dec.Budgets); err != nil {
			t.Fatalf("accepted board failed to encode: %v", err)
		}
		dec2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-encoded board failed to decode: %v", err)
		}
		if dec2.Board.Name != dec.Board.Name ||
			len(dec2.Board.Nets) != len(dec.Board.Nets) ||
			len(dec2.Board.Groups) != len(dec.Board.Groups) {
			t.Fatal("round trip changed the board")
		}
	})
}
