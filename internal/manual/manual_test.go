package manual

import (
	"math"
	"testing"

	"sprout/internal/extract"
	"sprout/internal/geom"
	"sprout/internal/route"
)

func openScene() (geom.Region, []route.Terminal) {
	avail := geom.RegionFromRect(geom.R(0, 0, 200, 100))
	terms := []route.Terminal{
		{Name: "PMIC", Shape: geom.RegionFromRect(geom.R(0, 45, 10, 55)), Current: 4},
		{Name: "BGA", Shape: geom.RegionFromRect(geom.R(190, 45, 200, 55)), Current: 4},
	}
	return avail, terms
}

func TestManualRouteConnects(t *testing.T) {
	avail, terms := openScene()
	res, err := Route(avail, terms, 3000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !connectsAll(res.Shape, terms) {
		t.Fatal("manual route must connect terminals")
	}
	if !res.Shape.Subtract(avail).Empty() {
		t.Fatal("copper escaped the available space")
	}
	if res.Width < 1 {
		t.Fatalf("width = %d", res.Width)
	}
}

func TestManualRouteHitsAreaTarget(t *testing.T) {
	avail, terms := openScene()
	for _, target := range []int64{2000, 4000, 8000} {
		res, err := Route(avail, terms, target, 10)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(res.Shape.Area())
		if math.Abs(got-float64(target))/float64(target) > 0.35 {
			t.Fatalf("target %d: area %g deviates more than 35%%", target, got)
		}
	}
}

func TestManualRouteAroundObstacle(t *testing.T) {
	avail := geom.RegionFromRect(geom.R(0, 0, 200, 100)).
		Subtract(geom.RegionFromRect(geom.R(80, 0, 120, 70)))
	terms := []route.Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 10, 10, 20)), Current: 1},
		{Name: "T", Shape: geom.RegionFromRect(geom.R(190, 10, 200, 20)), Current: 1},
	}
	res, err := Route(avail, terms, 4000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !connectsAll(res.Shape, terms) {
		t.Fatal("manual route must connect around the obstacle")
	}
	if res.Shape.Overlaps(geom.RegionFromRect(geom.R(80, 0, 120, 70))) {
		t.Fatal("copper entered the obstacle")
	}
}

func TestManualRegularGeometry(t *testing.T) {
	// The manual shape must be "regular": few boundary vertices compared
	// to a SPROUT shape of the same area.
	avail, terms := openScene()
	res, err := Route(avail, terms, 4000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Shape.VertexCount(); v > 24 {
		t.Fatalf("manual shape has %d vertices; expected a regular corridor (<=24)", v)
	}
}

func TestManualVsSproutImpedanceComparable(t *testing.T) {
	// The paper's headline: SPROUT impedance is within a few percent of
	// manual routing at equal area. Allow a generous envelope here.
	avail, terms := openScene()
	target := int64(5000)
	man, err := Route(avail, terms, target, 10)
	if err != nil {
		t.Fatal(err)
	}
	spr, err := route.Route(avail, terms, route.Config{DX: 10, DY: 10, AreaMax: target})
	if err != nil {
		t.Fatal(err)
	}
	opt := extract.Options{Pitch: 5, SheetOhms: 0.0005, HeightUM: 100}
	repMan, err := extract.Extract(man.Shape, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	repSpr, err := extract.Extract(spr.Shape, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	ratio := repSpr.ResistanceOhms / repMan.ResistanceOhms
	if ratio > 1.5 || ratio < 0.4 {
		t.Fatalf("SPROUT/manual resistance ratio = %g, want comparable (0.4-1.5)", ratio)
	}
}

func TestManualRouteErrors(t *testing.T) {
	avail, terms := openScene()
	if _, err := Route(avail, terms, 0, 10); err == nil {
		t.Fatal("zero target must error")
	}
	if _, err := Route(avail, terms, 1000, 0); err == nil {
		t.Fatal("zero tile must error")
	}
	if _, err := Route(geom.EmptyRegion(), terms, 1000, 10); err == nil {
		t.Fatal("empty space must error")
	}
	// Unreachable terminals.
	split := geom.RegionFromRect(geom.R(0, 0, 200, 100)).
		Subtract(geom.RegionFromRect(geom.R(90, 0, 110, 100)))
	if _, err := Route(split, terms, 1000, 10); err == nil {
		t.Fatal("split space must error")
	}
}
