// Package manual emulates the human PCB designer that SPROUT is compared
// against in the paper's Tables II and III. The paper observes that
// "regular geometries are utilized primarily in the manual layout": a
// designer connects the PMIC to the BGA field with straight or L-shaped
// copper trunks of uniform width. This package reproduces that style
// deterministically: it finds the terminal-to-terminal backbone through
// the available space, rectifies it into axis-aligned corridor rectangles
// of one uniform width, and sizes the width so the copper area matches the
// same budget given to SPROUT — an apples-to-apples baseline.
package manual

import (
	"fmt"

	"sprout/internal/geom"
	"sprout/internal/route"
)

// Result is a manually-styled routed net.
type Result struct {
	// Shape is the corridor copper clipped to the available space.
	Shape geom.Region
	// Width is the uniform corridor width chosen to meet the area target.
	Width int64
}

// Route produces a regular-geometry layout connecting the terminals with
// uniform-width corridors whose total area approximates areaTarget.
// tile sets the backbone search granularity (same units as the geometry).
func Route(avail geom.Region, terms []route.Terminal, areaTarget int64, tile int64) (*Result, error) {
	if areaTarget <= 0 {
		return nil, fmt.Errorf("manual: area target %d must be positive", areaTarget)
	}
	if tile < 1 {
		return nil, fmt.Errorf("manual: tile %d must be >= 1", tile)
	}
	tg, err := route.BuildTileGraph(avail, terms, tile, tile)
	if err != nil {
		return nil, fmt.Errorf("manual: %w", err)
	}
	polylines, err := backbones(tg)
	if err != nil {
		return nil, err
	}

	pads := geom.EmptyRegion()
	for _, t := range terms {
		pads = pads.Union(t.Shape)
	}

	// Binary search the corridor width to hit the area target. Wider
	// corridors clip against the space, so area is monotone in width.
	// Keep the candidate whose area lands closest to the target so the
	// comparison against SPROUT uses equal metal.
	lo, hi := int64(1), avail.Bounds().W()+avail.Bounds().H()
	var best geom.Region
	var bestW int64
	var bestDiff int64 = -1
	for lo <= hi {
		w := (lo + hi) / 2
		shape := corridors(polylines, w).Intersect(avail).Union(pads)
		if !connectsAll(shape, terms) {
			lo = w + 1 // too thin somewhere after clipping
			continue
		}
		diff := shape.Area() - areaTarget
		if diff < 0 {
			diff = -diff
		}
		if bestDiff < 0 || diff < bestDiff {
			best, bestW, bestDiff = shape, w, diff
		}
		if shape.Area() < areaTarget {
			lo = w + 1
		} else {
			hi = w - 1
		}
	}
	if best.Empty() {
		return nil, fmt.Errorf("manual: no corridor width connects all terminals")
	}
	return &Result{Shape: best, Width: bestW}, nil
}

// backbones extracts the pairwise center-line polylines through the tile
// graph.
func backbones(tg *route.TileGraph) ([][]geom.Point, error) {
	cost := tg.CostGraph()
	var out [][]geom.Point
	k := len(tg.Terminals)
	for i := 0; i < k; i++ {
		rest := tg.Terminals[i+1:]
		if len(rest) == 0 {
			break
		}
		paths, err := cost.ShortestPaths(tg.Terminals[i], rest)
		if err != nil {
			return nil, fmt.Errorf("manual: backbone: %w", err)
		}
		for _, p := range paths {
			line := make([]geom.Point, len(p))
			for pi, id := range p {
				line[pi] = tg.Cells[id].Bounds().Center()
			}
			out = append(out, line)
		}
	}
	return out, nil
}

// corridors converts polylines into a union of axis-aligned rectangles of
// the given width. Diagonal steps between tile centers are rectified into
// an L (horizontal then vertical), which is exactly the "regular geometry"
// a human designer draws.
func corridors(polylines [][]geom.Point, width int64) geom.Region {
	half := width / 2
	if half < 1 {
		half = 1
	}
	var rects []geom.Rect
	seg := func(a, b geom.Point) {
		// Build the padded rect directly: the raw segment rect is
		// degenerate (zero width or height) and Expand treats degenerate
		// rects as empty.
		x0, x1 := a.X, b.X
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		y0, y1 := a.Y, b.Y
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		rects = append(rects, geom.R(x0-half, y0-half, x1+half, y1+half))
	}
	for _, line := range polylines {
		for i := 0; i+1 < len(line); i++ {
			a, b := line[i], line[i+1]
			if a.X == b.X || a.Y == b.Y {
				seg(a, b)
				continue
			}
			corner := geom.Pt(b.X, a.Y)
			seg(a, corner)
			seg(corner, b)
		}
	}
	return geom.RegionFromRects(rects)
}

// connectsAll reports whether one connected component of the shape touches
// every terminal.
func connectsAll(shape geom.Region, terms []route.Terminal) bool {
	for _, comp := range shape.Components() {
		all := true
		for _, t := range terms {
			if !comp.Overlaps(t.Shape) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
