package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
)

// newTestReplica builds an engine with an instant scripted route, named
// so its job ids reveal which replica ran a job.
func newTestReplica(t *testing.T, name string) (*Engine, *obs.Tracer) {
	t.Helper()
	tr := obs.New()
	eng := New(Config{Workers: 2, QueueDepth: 16, NodeName: name, RetryAfter: time.Second, Tracer: tr})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		return &sprout.BoardResult{Report: &obs.RunReport{Tool: name}}, nil
	}
	eng.Start()
	t.Cleanup(func() { _ = eng.Shutdown(context.Background()) })
	return eng, tr
}

// swapHandler lets a test start an httptest server before the handler
// that needs the server's own URL exists.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = h
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "not wired", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func TestHashRingDeterministicAndCovering(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	ring := newHashRing(nodes)
	owned := map[string]int{}
	for i := 0; i < 999; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := ring.owner(key)
		owned[owner]++
		seq := ring.sequence(key)
		if len(seq) != len(nodes) {
			t.Fatalf("sequence(%q) has %d nodes, want %d", key, len(seq), len(nodes))
		}
		if seq[0] != owner {
			t.Fatalf("sequence(%q)[0] = %s, owner = %s; the owner must come first", key, seq[0], owner)
		}
		if owner != ring.owner(key) {
			t.Fatalf("owner(%q) not deterministic", key)
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("sequence(%q) repeats %s", key, n)
			}
			seen[n] = true
		}
	}
	for _, n := range nodes {
		// With 64 vnodes the split is within a few percent of even; 10%
		// is a loose floor that still catches a broken ring.
		if owned[n] < 100 {
			t.Fatalf("node %s owns %d/999 keys; ring badly unbalanced: %v", n, owned[n], owned)
		}
	}
}

// shardFixture stands up n replicas behind plain handlers and returns
// their URLs plus a way to reach each engine.
func shardFixture(t *testing.T, n int) (urls []string, engines []*Engine, tracers []*obs.Tracer, servers []*httptest.Server) {
	t.Helper()
	for i := 0; i < n; i++ {
		eng, tr := newTestReplica(t, fmt.Sprintf("r%d", i+1))
		ts := httptest.NewServer(eng.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		engines = append(engines, eng)
		tracers = append(tracers, tr)
		servers = append(servers, ts)
	}
	return urls, engines, tracers, servers
}

// keysOwnedBy searches out keys whose ring owner is the given URL.
func keysOwnedBy(ring *hashRing, owner string, want int) []string {
	var keys []string
	for i := 0; len(keys) < want && i < 100000; i++ {
		k := fmt.Sprintf("owned-%s-%d", owner, i)
		if ring.owner(k) == owner {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestShardClientFailover: with one of three replicas hard-down
// (connection refused), submissions owned by the dead replica must fail
// over along the ring and succeed, counting each hop.
func TestShardClientFailover(t *testing.T) {
	doc := encodeBoardDoc(t)
	urls, _, _, servers := shardFixture(t, 3)
	dead := urls[1]
	servers[1].Close()

	tr := obs.New()
	sc := NewShardClient(urls, 7, func(c *Client) {
		c.MaxAttempts = 2
		c.BaseBackoff = time.Millisecond
		c.MaxBackoff = 4 * time.Millisecond
	})
	sc.Tracer = tr

	ring := newHashRing(urls)
	keys := append(keysOwnedBy(ring, dead, 4), keysOwnedBy(ring, urls[0], 2)...)
	ids := map[string]string{}
	for _, key := range keys {
		st, err := sc.Submit(context.Background(), doc, key)
		if err != nil {
			t.Fatalf("submit %q: %v (must fail over, not fail)", key, err)
		}
		if strings.HasPrefix(st.ID, "r2-") {
			t.Fatalf("key %q landed on the dead replica", key)
		}
		ids[key] = st.ID
	}
	counters, _ := tr.MetricsSnapshot()
	if counters["shard.failovers"] < 4 {
		t.Fatalf("shard.failovers = %d, want >= 4 (one per dead-owned key)", counters["shard.failovers"])
	}
	// Every accepted job is pollable to its result through the client.
	for key, id := range ids {
		rep, err := sc.WaitResult(context.Background(), id, 2*time.Millisecond)
		if err != nil || rep == nil {
			t.Fatalf("wait %s (key %q) = (%v, %v)", id, key, rep, err)
		}
		if _, err := sc.Status(context.Background(), id); err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
	}
}

// TestShardClientAllReplicasExhausted: when every replica is draining,
// the client must come back with the typed *AllReplicasError, not a
// generic failure and not a hang.
func TestShardClientAllReplicasExhausted(t *testing.T) {
	doc := encodeBoardDoc(t)
	urls, engines, _, _ := shardFixture(t, 3)
	for _, eng := range engines {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	sc := NewShardClient(urls, 7, func(c *Client) {
		c.MaxAttempts = 1
		c.BaseBackoff = time.Millisecond
	})
	_, err := sc.Submit(context.Background(), doc, "doomed")
	var all *AllReplicasError
	if !errors.As(err, &all) {
		t.Fatalf("submit against a fully draining ring = %v, want *AllReplicasError", err)
	}
	if len(all.Errs) != 3 {
		t.Fatalf("AllReplicasError covers %d replicas, want 3", len(all.Errs))
	}
}

// TestShardClientRejectedStopsImmediately: a non-retryable rejection
// (malformed document) is the same everywhere — no failover, no retries.
func TestShardClientRejectedStopsImmediately(t *testing.T) {
	urls, _, _, _ := shardFixture(t, 3)
	tr := obs.New()
	sc := NewShardClient(urls, 7, nil)
	sc.Tracer = tr
	_, err := sc.Submit(context.Background(), []byte("{not json"), "bad")
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Code != http.StatusBadRequest {
		t.Fatalf("malformed submit = %v, want *RejectedError with 400", err)
	}
	counters, _ := tr.MetricsSnapshot()
	if counters["shard.failovers"] != 0 {
		t.Fatalf("shard.failovers = %d after a 400, want 0", counters["shard.failovers"])
	}
}

// shardProxyFixture stands up n replicas in proxy mode (ShardHandler),
// each knowing the others as peers.
func shardProxyFixture(t *testing.T, n int) (urls []string, engines []*Engine, tracers []*obs.Tracer, servers []*httptest.Server) {
	t.Helper()
	swaps := make([]*swapHandler, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		servers = append(servers, ts)
	}
	for i := 0; i < n; i++ {
		eng, tr := newTestReplica(t, fmt.Sprintf("r%d", i+1))
		engines = append(engines, eng)
		tracers = append(tracers, tr)
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		swaps[i].set(eng.ShardHandler(urls[i], peers, nil))
	}
	return urls, engines, tracers, servers
}

// TestShardProxyRoutesToOwner: submissions posted to any replica land on
// their consistent-hash owner, and reads for the job work from every
// replica via the scatter path.
func TestShardProxyRoutesToOwner(t *testing.T) {
	doc := encodeBoardDoc(t)
	urls, _, _, _ := shardProxyFixture(t, 3)
	ring := newHashRing(urls)

	post := func(base, key string) Status {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %q = %d", key, resp.StatusCode)
		}
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// All submissions go to replica 1; job-id prefixes expose who ran them.
	names := map[string]string{urls[0]: "r1", urls[1]: "r2", urls[2]: "r3"}
	spread := map[string]bool{}
	for i := 0; i < 9; i++ {
		key := fmt.Sprintf("proxy-%d", i)
		st := post(urls[0], key)
		wantOwner := names[ring.owner(key)]
		if !strings.HasPrefix(st.ID, wantOwner+"-") {
			t.Fatalf("key %q ran as %s, want owner %s", key, st.ID, wantOwner)
		}
		spread[wantOwner] = true

		// The job is readable from a replica that does not hold it.
		other := urls[2]
		if ring.owner(key) == other {
			other = urls[1]
		}
		resp, err := http.Get(other + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cross-replica status for %s = %d, want 200", st.ID, resp.StatusCode)
		}
	}
	if len(spread) < 2 {
		t.Fatalf("9 keys all landed on one replica (%v); ring not spreading", spread)
	}

	// A byte-identical keyless retry routes to the same replica and
	// content-dedupes there: one job cluster-wide.
	a := post(urls[0], "")
	b := post(urls[1], "")
	if a.ID != b.ID {
		t.Fatalf("keyless equivalent submissions landed on %s and %s, want one job", a.ID, b.ID)
	}

	// Unknown ids 404 from every replica after the scatter.
	resp, err := http.Get(urls[1] + "/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestShardProxyFailover: a submission owned by a dead peer must be
// served by the next replica on the ring instead of erroring.
func TestShardProxyFailover(t *testing.T) {
	doc := encodeBoardDoc(t)
	urls, _, tracers, servers := shardProxyFixture(t, 3)
	ring := newHashRing(urls)
	servers[1].Close() // r2 is gone

	keys := keysOwnedBy(ring, urls[1], 3)
	for _, key := range keys {
		req, err := http.NewRequest(http.MethodPost, urls[0]+"/v1/jobs", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		if derr := json.NewDecoder(resp.Body).Decode(&st); derr != nil {
			t.Fatal(derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %q through dead owner = %d", key, resp.StatusCode)
		}
		if strings.HasPrefix(st.ID, "r2-") {
			t.Fatalf("key %q reportedly ran on the dead replica as %s", key, st.ID)
		}
	}
	counters, _ := tracers[0].MetricsSnapshot()
	if counters["shard.failovers"] < int64(len(keys)) {
		t.Fatalf("shard.failovers = %d, want >= %d", counters["shard.failovers"], len(keys))
	}
}

// TestShardMultiReplicaDrainUnderLoad is the sharded half of the chaos
// suite: concurrent clients submit through the shard client while one of
// three replicas drains mid-load (PR 4 semantics: 503 + Retry-After).
// Every submission must succeed — retried onto the draining replica's
// successor — and every accepted job must reach a terminal state
// somewhere in the cluster.
func TestShardMultiReplicaDrainUnderLoad(t *testing.T) {
	doc := encodeBoardDoc(t)
	urls, engines, _, _ := shardFixture(t, 3)

	tr := obs.New()
	sc := NewShardClient(urls, 11, func(c *Client) {
		c.MaxAttempts = 2
		c.BaseBackoff = time.Millisecond
		c.MaxBackoff = 4 * time.Millisecond
	})
	sc.Tracer = tr

	var (
		mu  sync.Mutex
		ids []string
	)
	const clients, perClient = 3, 8
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				st, err := sc.Submit(context.Background(), doc, fmt.Sprintf("drain-%d-%d", ci, i))
				if err != nil {
					t.Errorf("submit %d-%d: %v (two replicas stayed up; no submission may fail)", ci, i, err)
					return
				}
				mu.Lock()
				ids = append(ids, st.ID)
				mu.Unlock()
			}
		}(ci)
	}
	// Drain replica 1 while the load runs.
	if err := engines[0].Shutdown(context.Background()); err != nil {
		t.Errorf("drain: %v", err)
	}
	wg.Wait()

	// After the drain, keys owned by the drained replica must still be
	// accepted (failover), and the hop counter must show it happened.
	ring := newHashRing(urls)
	for _, key := range keysOwnedBy(ring, urls[0], 3) {
		st, err := sc.Submit(context.Background(), doc, key)
		if err != nil {
			t.Fatalf("post-drain submit %q: %v", key, err)
		}
		if strings.HasPrefix(st.ID, "r1-") {
			t.Fatalf("post-drain key %q accepted by the draining replica as %s", key, st.ID)
		}
		mu.Lock()
		ids = append(ids, st.ID)
		mu.Unlock()
	}
	counters, _ := tr.MetricsSnapshot()
	if counters["shard.failovers"] < 3 {
		t.Fatalf("shard.failovers = %d, want >= 3", counters["shard.failovers"])
	}

	// Zero accepted-job loss, cluster-wide: every id resolves to a
	// terminal state through the shard client (drained replicas keep
	// serving reads).
	for _, id := range ids {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		rep, err := sc.WaitResult(ctx, id, 2*time.Millisecond)
		cancel()
		var jf *JobFailedError
		switch {
		case err == nil:
			if rep == nil {
				t.Fatalf("job %s done with no report", id)
			}
		case errors.As(err, &jf):
			// Terminal failure (e.g. caught by the drain sweep) is an
			// answer; a vanished job is not.
			if jf.Status.ErrorKind != KindShutdown {
				t.Fatalf("job %s failed with kind %s: %s", id, jf.Status.ErrorKind, jf.Status.Error)
			}
		default:
			t.Fatalf("job %s unresolved: %v", id, err)
		}
	}
}
