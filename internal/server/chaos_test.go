package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"sprout"
	"sprout/internal/board"
	"sprout/internal/boardio"
	"sprout/internal/faultinject"
	"sprout/internal/geom"
	"sprout/internal/obs"
	"sprout/internal/sparse"
)

// encodeBoardDoc builds a genuinely routable two-rail board and encodes
// it as the JSON document the HTTP API accepts.
func encodeBoardDoc(t testing.TB) []byte {
	t.Helper()
	return namedBoardDoc(t, "chaos2")
}

// namedBoardDoc is encodeBoardDoc with a caller-chosen board name, so
// chaos scripts can tell one submission's board apart from another's.
func namedBoardDoc(t testing.TB, name string) []byte {
	t.Helper()
	stack := board.Stackup{Layers: []board.Layer{
		{Name: "L1", CopperUM: 35, DielectricBelowUM: 100},
		{Name: "L2", CopperUM: 35, IsPlane: true},
	}}
	rules := board.DesignRules{Clearance: 2, TileDX: 5, TileDY: 5, ViaCost: 5}
	b, err := board.New(name, geom.R(0, 0, 200, 100), stack, rules)
	if err != nil {
		t.Fatal(err)
	}
	budgets := map[board.NetID]int64{}
	for i, y := range []int64{20, 70} {
		net := b.AddNet([]string{"VDD", "VIO"}[i], 2, 5)
		budgets[net] = 3000
		if err := b.AddGroup(board.TerminalGroup{
			Name: "pmic" + b.Nets[i].Name, Kind: board.KindPMIC, Net: net, Layer: 1, Current: 2,
			Pads: []geom.Region{geom.RegionFromRect(geom.R(4, y, 12, y+10))},
		}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddGroup(board.TerminalGroup{
			Name: "bga" + b.Nets[i].Name, Kind: board.KindBGA, Net: net, Layer: 1, Current: 2,
			Pads: []geom.Region{geom.RegionFromRect(geom.R(180, y, 188, y+10))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := boardio.Encode(&buf, b, 1, budgets); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosShutdownUnderLoad is the chaos/soak test of the acceptance
// criteria: concurrent clients hammer the server while probabilistic
// fault injection fires inside the pipeline and a real SIGTERM lands
// mid-load. It asserts the three hardening invariants:
//
//  1. zero accepted-job loss — every job that got a 2xx submission
//     reaches a terminal state with a result or a typed error;
//  2. rejected submissions are typed and carry Retry-After;
//  3. shutdown completes within the drain deadline (plus scheduling
//     slack).
//
// SPROUT_SOAK=N scales the load for the CI soak job.
func TestChaosShutdownUnderLoad(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	doc := encodeBoardDoc(t)

	// Intermittent, seeded chaos inside the pipeline: occasional solver
	// breakdowns (the ladder absorbs most) and latency at the grow loop.
	faultinject.ArmProbabilistic(faultinject.SiteCG, 42, 0.05,
		func() error { return sparse.ErrNoConvergence })
	faultinject.ArmLatency(faultinject.SiteGrow, 43, 0.25, 300*time.Microsecond)

	soak := 1
	if v, err := strconv.Atoi(os.Getenv("SPROUT_SOAK")); err == nil && v > 1 {
		soak = v
	}
	const drainTimeout = 10 * time.Second

	tracer := obs.New()
	eng := New(Config{
		Workers:    3,
		QueueDepth: 6,
		JobTimeout: 30 * time.Second,
		RetryAfter: time.Second,
		Tracer:     tracer,
	})
	// Floor every job at ~2ms so a tight submission burst reliably
	// overloads the small queue and the drain has real work in flight.
	orig := eng.route
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		time.Sleep(2 * time.Millisecond)
		return orig(ctx, dec, opt)
	}
	eng.Start()
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	// The shutdown trigger is a real SIGTERM delivered to this process
	// mid-load, routed through the same signal plumbing cmd/sproutd uses.
	sigCtx, stopSig := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stopSig()

	var (
		mu       sync.Mutex
		accepted = map[string]bool{}
		rejected int
	)
	clients := 4
	perClient := 4 * soak
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := NewClient(ts.URL, int64(ci))
			cl.MaxAttempts = 3
			cl.BaseBackoff = 2 * time.Millisecond
			cl.MaxBackoff = 20 * time.Millisecond
			for i := 0; i < perClient; i++ {
				key := fmt.Sprintf("chaos-%d-%d", ci, i)
				st, err := cl.Submit(context.Background(), doc, key)
				mu.Lock()
				if err != nil {
					// Typed rejection after bounded retries: the submitter
					// knows the job never landed — rejection, not loss.
					rejected++
				} else {
					accepted[st.ID] = true
				}
				mu.Unlock()
			}
		}(ci)
	}

	// Let load build, then deliver SIGTERM to ourselves.
	time.Sleep(150 * time.Millisecond)
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sigCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM never arrived")
	}

	drainStart := time.Now()
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := eng.Shutdown(dctx)
	drainDur := time.Since(drainStart)
	wg.Wait()

	if drainDur > drainTimeout+5*time.Second {
		t.Fatalf("shutdown took %v, want bounded by the %v drain deadline", drainDur, drainTimeout)
	}
	if drainErr != nil {
		// Stragglers were cancelled — allowed, but then every one of them
		// must still be terminal below.
		t.Logf("drain cancelled stragglers: %v", drainErr)
	}

	// Invariant 1: zero accepted-job loss. Every accepted job is
	// terminal, with either a report (done) or a typed error (failed).
	mu.Lock()
	defer mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("chaos run accepted no jobs; load generator misconfigured")
	}
	done, failed := 0, 0
	for id := range accepted {
		st, ok := eng.Job(id)
		if !ok {
			t.Fatalf("accepted job %s vanished from the store", id)
		}
		if !st.State.Terminal() {
			t.Fatalf("accepted job %s stuck in state %s after shutdown", id, st.State)
		}
		switch st.State {
		case StateDone:
			done++
			_, rep, _, _ := eng.Result(id)
			if rep == nil {
				t.Fatalf("done job %s has no run report", id)
			}
		case StateFailed:
			failed++
			switch st.ErrorKind {
			case KindShutdown, KindDeadline, KindSolve, KindInternal:
			default:
				t.Fatalf("failed job %s has unexpected kind %q (err %s)", id, st.ErrorKind, st.Error)
			}
		}
	}
	t.Logf("chaos: %d accepted (%d done, %d failed), %d rejected, drain %v, cg checks %d (%d fired)",
		len(accepted), done, failed, rejected, drainDur,
		faultinject.Calls(faultinject.SiteCG), faultinject.Fired(faultinject.SiteCG))

	// Invariant 2: post-drain submissions are typed 503s with a
	// Retry-After hint (the 429 variant is covered by TestHTTPSurface).
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("post-drain submit = %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Bookkeeping cross-check: the accepted counter matches the set the
	// clients observed, so nothing was double-counted or lost.
	counters, _ := tracer.MetricsSnapshot()
	if got := counters["server.jobs.accepted"]; got != int64(len(accepted)) {
		t.Fatalf("accepted counter = %d, clients saw %d", got, len(accepted))
	}
	if got := counters["server.jobs.done"] + counters["server.jobs.failed"]; got != int64(len(accepted)) {
		t.Fatalf("terminal counters = %d, want %d (every accepted job terminal)", got, len(accepted))
	}
}
