package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sprout/internal/obs"
)

// forwardedByHeader marks a request already routed by a peer. It bounds
// proxy forwarding to one hop (a misconfigured ring degrades to local
// service instead of looping) and keeps peer-to-peer gathers — trace
// parts, fleet scrapes — from fanning out recursively.
const forwardedByHeader = "X-Sprout-Forwarded-By"

// This file is the multi-replica layer: a consistent-hash ring assigns
// every submission an owning replica, the ShardClient routes and fails
// over on the client side, and ShardHandler gives each sproutd a thin
// proxy mode so a client that talks to the "wrong" replica still lands
// on the right one. Routing is by content: the idempotency key when the
// client supplies one, else the SHA-256 of the document bytes — so
// retries and equivalent submissions from different front-ends converge
// on the same replica, where the store's dedupe can singleflight them.

// ringVnodes is the virtual-node multiplier: enough points that three
// replicas split the key space within a few percent of evenly, small
// enough that building a ring is negligible.
const ringVnodes = 64

// hashRing is a consistent-hash ring over replica names. Adding or
// removing one replica remaps only the keys it owned, which is what
// keeps a rolling restart from reshuffling every in-flight job.
type hashRing struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

func newHashRing(nodes []string) *hashRing {
	r := &hashRing{nodes: append([]string(nil), nodes...)}
	for _, n := range nodes {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// ringHash hashes a ring key. Raw FNV-1a of short strings that share a
// prefix (replica URLs with a vnode suffix) clusters into narrow bands,
// which collapses the ring; the 64-bit avalanche finalizer on top
// spreads those clusters across the whole space.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owner returns the replica owning the key (the first ring point at or
// after the key's hash, wrapping).
func (r *hashRing) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// sequence returns every replica in failover order for the key: the
// owner first, then the remaining distinct replicas walking the ring.
// A client that exhausts the sequence has genuinely tried everyone.
func (r *hashRing) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.nodes))
	out := make([]string, 0, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// ContentKey is the shard-routing key of a submission: the idempotency
// key when present, else the hex SHA-256 of the raw document bytes.
// Byte-identical retries therefore always land on the same replica.
// (Byte-different but equivalent documents may land on different
// replicas; each replica's canonical-hash dedupe still collapses the
// copies it receives.)
func ContentKey(doc []byte, idemKey string) string {
	if idemKey != "" {
		return idemKey
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// AllReplicasError reports a shard operation that exhausted every
// replica. Errs maps each replica base URL to the error it produced,
// so the caller can tell a cluster-wide drain from a network partition.
type AllReplicasError struct {
	Op   string
	Key  string
	Errs map[string]error
}

func (e *AllReplicasError) Error() string {
	parts := make([]string, 0, len(e.Errs))
	for _, base := range sortedKeys(e.Errs) {
		parts = append(parts, fmt.Sprintf("%s: %v", base, e.Errs[base]))
	}
	return fmt.Sprintf("shard: %s %q failed on all %d replicas: %s", e.Op, e.Key, len(e.Errs), strings.Join(parts, "; "))
}

func sortedKeys(m map[string]error) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ShardClient fans a client across N sproutd replicas: submissions are
// routed to their consistent-hash owner and failed over to the next
// replica on transport failure or retry exhaustion (a draining or dead
// replica must not fail the cluster). Status and result polls follow
// the replica that actually accepted the job.
type ShardClient struct {
	// Tracer receives shard.failovers (optional).
	Tracer *obs.Tracer

	ring     *hashRing
	replicas map[string]*Client

	mu     sync.Mutex
	owners map[string]*Client // job id -> replica that accepted it
}

// NewShardClient builds a shard client over the replica base URLs. The
// seed drives every per-replica client's backoff jitter. configure (may
// be nil) runs on each underlying Client for retry tuning.
func NewShardClient(bases []string, seed int64, configure func(*Client)) *ShardClient {
	s := &ShardClient{
		ring:     newHashRing(bases),
		replicas: make(map[string]*Client, len(bases)),
		owners:   map[string]*Client{},
	}
	for i, b := range bases {
		c := NewClient(b, seed+int64(i))
		if configure != nil {
			configure(c)
		}
		s.replicas[b] = c
	}
	return s
}

// Submit routes the document to its owning replica and fails over along
// the ring until a replica accepts it. Non-retryable rejections
// (*RejectedError — a malformed document is malformed everywhere) and
// context cancellation stop the walk immediately; everything else
// (connection refused, retries exhausted against a draining replica)
// moves to the next replica and bumps shard.failovers. When every
// replica fails, the error is a typed *AllReplicasError.
func (s *ShardClient) Submit(ctx context.Context, doc []byte, idemKey string) (Status, error) {
	key := ContentKey(doc, idemKey)
	if s.Tracer.Enabled() {
		// Client-side spans: each replica attempt becomes a hop of the
		// distributed trace, and the X-Sprout-Trace header the per-replica
		// client derives from the span context parents the server side.
		ctx = obs.WithTracer(ctx, s.Tracer)
	}
	errs := map[string]error{}
	for i, base := range s.ring.sequence(key) {
		if i > 0 {
			s.count(obs.MShardFailovers, 1)
		}
		c := s.replicas[base]
		sctx, sp := obs.StartSpan(ctx, "ShardSubmit", obs.A("peer", base), obs.A("attempt", i+1))
		st, err := c.Submit(sctx, doc, idemKey)
		sp.Fail(err)
		sp.End()
		if err == nil {
			s.mu.Lock()
			s.owners[st.ID] = c
			s.mu.Unlock()
			return st, nil
		}
		var rej *RejectedError
		if errors.As(err, &rej) {
			return Status{}, err
		}
		errs[base] = err
		if ctx.Err() != nil {
			return Status{}, fmt.Errorf("shard: submit interrupted: %w", ctx.Err())
		}
	}
	return Status{}, &AllReplicasError{Op: "submit", Key: key, Errs: errs}
}

// owner returns the replica that accepted the job, or every replica (in
// stable order) when the id is unknown — the scatter path for callers
// that learned a job id out of band.
func (s *ShardClient) candidates(id string) []*Client {
	s.mu.Lock()
	c := s.owners[id]
	s.mu.Unlock()
	if c != nil {
		return []*Client{c}
	}
	out := make([]*Client, 0, len(s.replicas))
	for _, base := range s.ring.nodes {
		out = append(out, s.replicas[base])
	}
	return out
}

// Status fetches a job's status from the replica that owns it,
// scattering across all replicas when the owner is unknown.
func (s *ShardClient) Status(ctx context.Context, id string) (Status, error) {
	errs := map[string]error{}
	for _, c := range s.candidates(id) {
		st, err := c.Status(ctx, id)
		if err == nil {
			return st, nil
		}
		errs[c.Base] = err
		if ctx.Err() != nil {
			return Status{}, fmt.Errorf("shard: status interrupted: %w", ctx.Err())
		}
	}
	return Status{}, &AllReplicasError{Op: "status", Key: id, Errs: errs}
}

// WaitResult polls the job to a terminal state on its owning replica
// (scattering when unknown). A *JobFailedError passes through: the job
// finished, just not successfully — that is an answer, not a reason to
// ask another replica.
func (s *ShardClient) WaitResult(ctx context.Context, id string, poll time.Duration) (*obs.RunReport, error) {
	errs := map[string]error{}
	for _, c := range s.candidates(id) {
		rep, err := c.WaitResult(ctx, id, poll)
		if err == nil {
			return rep, nil
		}
		var jf *JobFailedError
		if errors.As(err, &jf) {
			return rep, err
		}
		errs[c.Base] = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("shard: wait interrupted: %w", ctx.Err())
		}
	}
	return nil, &AllReplicasError{Op: "wait", Key: id, Errs: errs}
}

func (s *ShardClient) count(name string, n int64) {
	s.Tracer.Counter(name).Add(n)
}

// ShardHandler wraps the engine's HTTP API in a thin proxy: submissions
// whose consistent-hash owner is another replica are forwarded there
// (with ring-order failover back to this replica when peers are down),
// and status/result/trace reads for jobs this replica does not hold are
// scattered to the peers. self and peers are base URLs; self names this
// replica on the ring and must appear in every replica's configuration
// identically.
func (e *Engine) ShardHandler(self string, peers []string, client *http.Client) http.Handler {
	if client == nil {
		client = http.DefaultClient
	}
	local := e.Handler()
	p := &shardProxy{
		engine: e, local: local, self: self, peers: append([]string(nil), peers...),
		ring: newHashRing(append([]string{self}, peers...)), http: client,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", p.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", p.read)
	mux.HandleFunc("GET /v1/jobs/{id}/result", p.read)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", p.trace)
	mux.HandleFunc("GET /v1/fleet/metrics", p.fleetMetrics)
	// Liveness, readiness, metrics and raw trace parts are always answered
	// locally: they describe this replica, not the cluster.
	mux.Handle("/", local)
	return mux
}

type shardProxy struct {
	engine *Engine
	local  http.Handler
	self   string
	peers  []string
	ring   *hashRing
	http   *http.Client
}

// captureWriter tees the response body (bounded) so the proxy can read
// the job id out of the status JSON it just relayed.
type captureWriter struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (c *captureWriter) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *captureWriter) Write(b []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	if c.buf.Len() < maxBodyBytes {
		c.buf.Write(b)
	}
	return c.ResponseWriter.Write(b)
}

// jobIDFromBody extracts the job id from a submit response body ("" when
// the body is not a status document).
func jobIDFromBody(body []byte) string {
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		return ""
	}
	return st.ID
}

// submit routes a submission to its owning replica. The body must be
// read up front to compute the routing key; it is re-wrapped for
// whichever handler ends up serving it.
//
// Every hop is traced: the proxy opens a tracer that continues the
// client's X-Sprout-Trace (or starts the trace when there is none), one
// "ShardSubmit" span per attempted replica, and forwards the span's own
// header so the executing replica's job span nests under the hop that
// delivered it. The proxy's spans are filed under the resulting job id,
// ready to be stitched into the job's cross-replica trace.
func (p *shardProxy) submit(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(forwardedByHeader) != "" {
		// Already routed by a peer: serve locally, never re-forward. This
		// bounds any misconfigured ring to a single hop instead of a loop.
		p.local.ServeHTTP(w, r)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", maxBodyBytes))
		return
	}
	// The proxy's hop spans record under the node name (matching the job
	// tracer's replica attribution); the self URL is only a ring address.
	replica := p.engine.cfg.NodeName
	if replica == "" {
		replica = p.self
	}
	topts := []obs.Option{obs.WithReplica(replica)}
	if tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeaderName)); ok {
		topts = append(topts, obs.WithTraceID(tc.TraceID), obs.WithRemoteParent(tc.Parent))
	}
	tr := obs.New(topts...)
	ctx := obs.WithTracer(r.Context(), tr)

	key := ContentKey(body, r.Header.Get("Idempotency-Key"))
	for i, node := range p.ring.sequence(key) {
		if i > 0 {
			p.engine.count(obs.MShardFailovers, 1)
		}
		sctx, sp := obs.StartSpan(ctx, "ShardSubmit", obs.A("peer", node), obs.A("attempt", i+1))
		if node == p.self {
			p.serveLocalSubmit(w, r, sctx, body, tr, sp)
			return
		}
		if served, jobID := p.forward(w, r, node, body, obs.TraceHeader(sctx)); served {
			sp.End()
			p.engine.AddTracePart(jobID, tr.TracePart())
			return
		}
		sp.Fail(errors.New("peer unreachable"))
		sp.End()
	}
	// Every remote owner was unreachable and self was not on the
	// sequence (cannot happen — self is always ringed) or forwarding
	// failed everywhere: serve locally so the cluster degrades to a
	// single replica instead of erroring.
	sctx, sp := obs.StartSpan(ctx, "ShardSubmit", obs.A("peer", p.self), obs.A("fallback", true))
	p.serveLocalSubmit(w, r, sctx, body, tr, sp)
}

// serveLocalSubmit hands the submission to the local engine with the
// proxy hop's trace header attached, then files the proxy spans under
// the job id the engine answered with.
func (p *shardProxy) serveLocalSubmit(w http.ResponseWriter, r *http.Request, sctx context.Context, body []byte, tr *obs.Tracer, sp *obs.Span) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	if hdr := obs.TraceHeader(sctx); hdr != "" {
		r2.Header.Set(obs.TraceHeaderName, hdr)
	}
	cw := &captureWriter{ResponseWriter: w}
	p.local.ServeHTTP(cw, r2)
	sp.End()
	p.engine.AddTracePart(jobIDFromBody(cw.buf.Bytes()), tr.TracePart())
}

// forward proxies the submission to a peer. It reports true when the
// peer produced any HTTP response (even a rejection — that is the
// peer's answer, not a transport failure) and false when the peer was
// unreachable, in which case the caller fails over. On success the
// second return is the job id the peer answered with ("" on rejection
// bodies), so the caller can file its hop spans under the job.
func (p *shardProxy) forward(w http.ResponseWriter, r *http.Request, base string, body []byte, traceHeader string) (bool, string) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false, ""
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedByHeader, p.self)
	if traceHeader != "" {
		req.Header.Set(obs.TraceHeaderName, traceHeader)
	}
	resp, err := p.http.Do(req)
	if err != nil {
		p.engine.cfg.Log.Warn("shard forward failed", "peer", base, "err", err)
		return false, ""
	}
	defer resp.Body.Close()
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
	return true, jobIDFromBody(respBody)
}

// read serves job status/result/trace: locally when this replica holds
// the job, else scattered to the peers in ring order. A peer's 404
// keeps scattering; any other peer answer is relayed as-is.
func (p *shardProxy) read(w http.ResponseWriter, r *http.Request) {
	if p.engine.store.Get(r.PathValue("id")) != nil || r.Header.Get(forwardedByHeader) != "" {
		p.local.ServeHTTP(w, r)
		return
	}
	for _, node := range p.ring.nodes {
		if node == p.self {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, node+r.URL.RequestURI(), nil)
		if err != nil {
			continue
		}
		req.Header.Set(forwardedByHeader, p.self)
		resp, err := p.http.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		relay(w, resp)
		return
	}
	// Nobody has it: answer with the local 404.
	p.local.ServeHTTP(w, r)
}

// trace serves the fleet-stitched Chrome trace for a job. The replica
// that knows the job gathers every peer's trace parts, merges them with
// its own, and serves one timeline; a replica that does not know the
// job relays to whichever peer does (whose stitcher gathers back from
// everyone, including this replica). A request already forwarded once
// is answered from local parts only — gathers never recurse.
func (p *shardProxy) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	forwarded := r.Header.Get(forwardedByHeader) != ""
	known := p.engine.store.Get(id) != nil || len(p.engine.TraceParts(id)) > 0
	if !known && !forwarded {
		p.read(w, r)
		return
	}
	if known && !forwarded {
		if peer := p.gatherPeerParts(r.Context(), id); len(peer) > 0 {
			writeStitchedTrace(w, p.engine.cfg.Log, id, append(p.engine.TraceParts(id), peer...))
			return
		}
	}
	// No peer contributed (single replica, or everyone unreachable):
	// the local handler stitches what this replica holds, and keeps the
	// 202/404 semantics for unstarted or unknown jobs.
	p.local.ServeHTTP(w, r)
}

// gatherPeerParts collects the trace parts every peer holds for a job,
// sequentially, each under the fleet timeout. Unreachable peers and
// 404s contribute nothing — a partial trace is still a trace.
func (p *shardProxy) gatherPeerParts(ctx context.Context, id string) []obs.TracePart {
	var parts []obs.TracePart
	for _, node := range p.peers {
		pctx, cancel := context.WithTimeout(ctx, p.engine.cfg.FleetTimeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, node+"/v1/jobs/"+id+"/traceparts", nil)
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set(forwardedByHeader, p.self)
		resp, err := p.http.Do(req)
		if err != nil {
			cancel()
			continue
		}
		if resp.StatusCode == http.StatusOK {
			var peer []obs.TracePart
			if derr := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&peer); derr == nil {
				parts = append(parts, peer...)
			}
		}
		resp.Body.Close()
		cancel()
	}
	return parts
}

// fleetMetrics scatter-gathers every replica's metrics snapshot. Peers
// are scraped concurrently, each under its own fleet timeout; an
// unreachable peer keeps its row with the error recorded, so a partial
// fleet view is visibly partial ("replica down") rather than silently
// smaller ("replica missing").
func (p *shardProxy) fleetMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(forwardedByHeader) != "" {
		p.local.ServeHTTP(w, r)
		return
	}
	p.engine.syncGauges()
	self := p.engine.metricsDoc()
	peerRows := make([]FleetReplica, len(p.peers))
	var wg sync.WaitGroup
	for i, node := range p.peers {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			peerRows[i] = p.scrapePeer(r.Context(), node)
		}(i, node)
	}
	wg.Wait()
	rows := append([]FleetReplica{{Replica: p.self, Self: true, Metrics: &self}}, peerRows...)
	writeJSON(w, http.StatusOK, FleetMetrics{Replicas: rows})
}

// scrapePeer fetches one peer's JSON metrics snapshot under the fleet
// timeout, recording fleet.peer_errors and fleet.scrape_ms.
func (p *shardProxy) scrapePeer(ctx context.Context, node string) FleetReplica {
	row := FleetReplica{Replica: node}
	start := time.Now()
	pctx, cancel := context.WithTimeout(ctx, p.engine.cfg.FleetTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, node+"/metrics?format=json", nil)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	req.Header.Set(forwardedByHeader, p.self)
	resp, err := p.http.Do(req)
	if err != nil {
		p.engine.count(obs.MFleetPeerErrors, 1)
		row.Error = err.Error()
		return row
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.engine.count(obs.MFleetPeerErrors, 1)
		row.Error = fmt.Sprintf("unexpected status %d", resp.StatusCode)
		return row
	}
	m := &Metrics{}
	if derr := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(m); derr != nil {
		p.engine.count(obs.MFleetPeerErrors, 1)
		row.Error = derr.Error()
		return row
	}
	row.Metrics = m
	if p.engine.cfg.Tracer.Enabled() {
		p.engine.cfg.Tracer.Histogram(obs.MFleetScrapeMS).Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	}
	return row
}

// relay copies a proxied response through verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
