package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sprout/internal/obs"
)

// This file is the multi-replica layer: a consistent-hash ring assigns
// every submission an owning replica, the ShardClient routes and fails
// over on the client side, and ShardHandler gives each sproutd a thin
// proxy mode so a client that talks to the "wrong" replica still lands
// on the right one. Routing is by content: the idempotency key when the
// client supplies one, else the SHA-256 of the document bytes — so
// retries and equivalent submissions from different front-ends converge
// on the same replica, where the store's dedupe can singleflight them.

// ringVnodes is the virtual-node multiplier: enough points that three
// replicas split the key space within a few percent of evenly, small
// enough that building a ring is negligible.
const ringVnodes = 64

// hashRing is a consistent-hash ring over replica names. Adding or
// removing one replica remaps only the keys it owned, which is what
// keeps a rolling restart from reshuffling every in-flight job.
type hashRing struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

func newHashRing(nodes []string) *hashRing {
	r := &hashRing{nodes: append([]string(nil), nodes...)}
	for _, n := range nodes {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// ringHash hashes a ring key. Raw FNV-1a of short strings that share a
// prefix (replica URLs with a vnode suffix) clusters into narrow bands,
// which collapses the ring; the 64-bit avalanche finalizer on top
// spreads those clusters across the whole space.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owner returns the replica owning the key (the first ring point at or
// after the key's hash, wrapping).
func (r *hashRing) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// sequence returns every replica in failover order for the key: the
// owner first, then the remaining distinct replicas walking the ring.
// A client that exhausts the sequence has genuinely tried everyone.
func (r *hashRing) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.nodes))
	out := make([]string, 0, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// ContentKey is the shard-routing key of a submission: the idempotency
// key when present, else the hex SHA-256 of the raw document bytes.
// Byte-identical retries therefore always land on the same replica.
// (Byte-different but equivalent documents may land on different
// replicas; each replica's canonical-hash dedupe still collapses the
// copies it receives.)
func ContentKey(doc []byte, idemKey string) string {
	if idemKey != "" {
		return idemKey
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// AllReplicasError reports a shard operation that exhausted every
// replica. Errs maps each replica base URL to the error it produced,
// so the caller can tell a cluster-wide drain from a network partition.
type AllReplicasError struct {
	Op   string
	Key  string
	Errs map[string]error
}

func (e *AllReplicasError) Error() string {
	parts := make([]string, 0, len(e.Errs))
	for _, base := range sortedKeys(e.Errs) {
		parts = append(parts, fmt.Sprintf("%s: %v", base, e.Errs[base]))
	}
	return fmt.Sprintf("shard: %s %q failed on all %d replicas: %s", e.Op, e.Key, len(e.Errs), strings.Join(parts, "; "))
}

func sortedKeys(m map[string]error) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ShardClient fans a client across N sproutd replicas: submissions are
// routed to their consistent-hash owner and failed over to the next
// replica on transport failure or retry exhaustion (a draining or dead
// replica must not fail the cluster). Status and result polls follow
// the replica that actually accepted the job.
type ShardClient struct {
	// Tracer receives shard.failovers (optional).
	Tracer *obs.Tracer

	ring     *hashRing
	replicas map[string]*Client

	mu     sync.Mutex
	owners map[string]*Client // job id -> replica that accepted it
}

// NewShardClient builds a shard client over the replica base URLs. The
// seed drives every per-replica client's backoff jitter. configure (may
// be nil) runs on each underlying Client for retry tuning.
func NewShardClient(bases []string, seed int64, configure func(*Client)) *ShardClient {
	s := &ShardClient{
		ring:     newHashRing(bases),
		replicas: make(map[string]*Client, len(bases)),
		owners:   map[string]*Client{},
	}
	for i, b := range bases {
		c := NewClient(b, seed+int64(i))
		if configure != nil {
			configure(c)
		}
		s.replicas[b] = c
	}
	return s
}

// Submit routes the document to its owning replica and fails over along
// the ring until a replica accepts it. Non-retryable rejections
// (*RejectedError — a malformed document is malformed everywhere) and
// context cancellation stop the walk immediately; everything else
// (connection refused, retries exhausted against a draining replica)
// moves to the next replica and bumps shard.failovers. When every
// replica fails, the error is a typed *AllReplicasError.
func (s *ShardClient) Submit(ctx context.Context, doc []byte, idemKey string) (Status, error) {
	key := ContentKey(doc, idemKey)
	errs := map[string]error{}
	for i, base := range s.ring.sequence(key) {
		if i > 0 {
			s.count("shard.failovers", 1)
		}
		c := s.replicas[base]
		st, err := c.Submit(ctx, doc, idemKey)
		if err == nil {
			s.mu.Lock()
			s.owners[st.ID] = c
			s.mu.Unlock()
			return st, nil
		}
		var rej *RejectedError
		if errors.As(err, &rej) {
			return Status{}, err
		}
		errs[base] = err
		if ctx.Err() != nil {
			return Status{}, fmt.Errorf("shard: submit interrupted: %w", ctx.Err())
		}
	}
	return Status{}, &AllReplicasError{Op: "submit", Key: key, Errs: errs}
}

// owner returns the replica that accepted the job, or every replica (in
// stable order) when the id is unknown — the scatter path for callers
// that learned a job id out of band.
func (s *ShardClient) candidates(id string) []*Client {
	s.mu.Lock()
	c := s.owners[id]
	s.mu.Unlock()
	if c != nil {
		return []*Client{c}
	}
	out := make([]*Client, 0, len(s.replicas))
	for _, base := range s.ring.nodes {
		out = append(out, s.replicas[base])
	}
	return out
}

// Status fetches a job's status from the replica that owns it,
// scattering across all replicas when the owner is unknown.
func (s *ShardClient) Status(ctx context.Context, id string) (Status, error) {
	errs := map[string]error{}
	for _, c := range s.candidates(id) {
		st, err := c.Status(ctx, id)
		if err == nil {
			return st, nil
		}
		errs[c.Base] = err
		if ctx.Err() != nil {
			return Status{}, fmt.Errorf("shard: status interrupted: %w", ctx.Err())
		}
	}
	return Status{}, &AllReplicasError{Op: "status", Key: id, Errs: errs}
}

// WaitResult polls the job to a terminal state on its owning replica
// (scattering when unknown). A *JobFailedError passes through: the job
// finished, just not successfully — that is an answer, not a reason to
// ask another replica.
func (s *ShardClient) WaitResult(ctx context.Context, id string, poll time.Duration) (*obs.RunReport, error) {
	errs := map[string]error{}
	for _, c := range s.candidates(id) {
		rep, err := c.WaitResult(ctx, id, poll)
		if err == nil {
			return rep, nil
		}
		var jf *JobFailedError
		if errors.As(err, &jf) {
			return rep, err
		}
		errs[c.Base] = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("shard: wait interrupted: %w", ctx.Err())
		}
	}
	return nil, &AllReplicasError{Op: "wait", Key: id, Errs: errs}
}

func (s *ShardClient) count(name string, n int64) {
	s.Tracer.Counter(name).Add(n)
}

// ShardHandler wraps the engine's HTTP API in a thin proxy: submissions
// whose consistent-hash owner is another replica are forwarded there
// (with ring-order failover back to this replica when peers are down),
// and status/result/trace reads for jobs this replica does not hold are
// scattered to the peers. self and peers are base URLs; self names this
// replica on the ring and must appear in every replica's configuration
// identically.
func (e *Engine) ShardHandler(self string, peers []string, client *http.Client) http.Handler {
	if client == nil {
		client = http.DefaultClient
	}
	local := e.Handler()
	p := &shardProxy{engine: e, local: local, self: self, ring: newHashRing(append([]string{self}, peers...)), http: client}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", p.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", p.read)
	mux.HandleFunc("GET /v1/jobs/{id}/result", p.read)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", p.read)
	// Liveness, readiness and metrics are always answered locally: they
	// describe this replica, not the cluster.
	mux.Handle("/", local)
	return mux
}

type shardProxy struct {
	engine *Engine
	local  http.Handler
	self   string
	ring   *hashRing
	http   *http.Client
}

// submit routes a submission to its owning replica. The body must be
// read up front to compute the routing key; it is re-wrapped for
// whichever handler ends up serving it.
func (p *shardProxy) submit(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("X-Sprout-Forwarded-By") != "" {
		// Already routed by a peer: serve locally, never re-forward. This
		// bounds any misconfigured ring to a single hop instead of a loop.
		p.local.ServeHTTP(w, r)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", maxBodyBytes))
		return
	}
	key := ContentKey(body, r.Header.Get("Idempotency-Key"))
	for i, node := range p.ring.sequence(key) {
		if i > 0 {
			p.engine.count("shard.failovers", 1)
		}
		if node == p.self {
			r2 := r.Clone(r.Context())
			r2.Body = io.NopCloser(bytes.NewReader(body))
			p.local.ServeHTTP(w, r2)
			return
		}
		if p.forward(w, r, node, body) {
			return
		}
	}
	// Every remote owner was unreachable and self was not on the
	// sequence (cannot happen — self is always ringed) or forwarding
	// failed everywhere: serve locally so the cluster degrades to a
	// single replica instead of erroring.
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	p.local.ServeHTTP(w, r2)
}

// forward proxies the submission to a peer. It reports true when the
// peer produced any HTTP response (even a rejection — that is the
// peer's answer, not a transport failure) and false when the peer was
// unreachable, in which case the caller fails over.
func (p *shardProxy) forward(w http.ResponseWriter, r *http.Request, base string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set("X-Sprout-Forwarded-By", p.self)
	resp, err := p.http.Do(req)
	if err != nil {
		p.engine.cfg.Log.Warn("shard forward failed", "peer", base, "err", err)
		return false
	}
	defer resp.Body.Close()
	relay(w, resp)
	return true
}

// read serves job status/result/trace: locally when this replica holds
// the job, else scattered to the peers in ring order. A peer's 404
// keeps scattering; any other peer answer is relayed as-is.
func (p *shardProxy) read(w http.ResponseWriter, r *http.Request) {
	if p.engine.store.Get(r.PathValue("id")) != nil || r.Header.Get("X-Sprout-Forwarded-By") != "" {
		p.local.ServeHTTP(w, r)
		return
	}
	for _, node := range p.ring.nodes {
		if node == p.self {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, node+r.URL.RequestURI(), nil)
		if err != nil {
			continue
		}
		req.Header.Set("X-Sprout-Forwarded-By", p.self)
		resp, err := p.http.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		relay(w, resp)
		return
	}
	// Nobody has it: answer with the local 404.
	p.local.ServeHTTP(w, r)
}

// relay copies a proxied response through verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
