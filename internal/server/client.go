package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sprout"
	"sprout/internal/obs"
)

// Client is a small sproutd client: it submits board documents, retries
// typed rejections (429/503) with exponential backoff plus jitter —
// honoring the server's Retry-After hint when present — and polls jobs
// to their terminal state. The zero value is not usable; NewClient
// fills the defaults.
type Client struct {
	// Base is the server URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// MaxAttempts bounds submission retries (default 8).
	MaxAttempts int
	// MaxElapsed caps the total wall-clock time one Submit call spends
	// across all attempts and backoff sleeps, enforced with a context
	// deadline (0 = attempt count only). Without it, a slow sequence of
	// server Retry-After hints can stretch MaxAttempts far past the
	// caller's intent.
	MaxElapsed time.Duration
	// BaseBackoff/MaxBackoff shape the exponential backoff (defaults
	// 50ms / 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Tracer receives the client.submit.* retry telemetry — attempts per
	// submission, backoff slept, Retry-After hints honored, transport
	// retries — and supplies the X-Sprout-Trace header when the caller's
	// context does not already carry a trace (optional; nil disables).
	Tracer *obs.Tracer

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient returns a client with default retry tuning. The seed drives
// the backoff jitter, so tests replay the same retry schedule.
func NewClient(base string, seed int64) *Client {
	return &Client{
		Base:        base,
		HTTP:        http.DefaultClient,
		MaxAttempts: 8,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// JobFailedError is the client-side view of a terminally failed job. It
// unwraps to the matching typed error (sprout.ErrShuttingDown,
// context.DeadlineExceeded) so callers keep using errors.Is across the
// HTTP boundary.
type JobFailedError struct {
	Status Status
}

func (e *JobFailedError) Error() string {
	return fmt.Sprintf("job %s failed (%s): %s", e.Status.ID, e.Status.ErrorKind, e.Status.Error)
}

// Unwrap maps the failure kind back onto the typed errors of the
// failure-semantics matrix.
func (e *JobFailedError) Unwrap() error {
	switch e.Status.ErrorKind {
	case KindShutdown:
		return sprout.ErrShuttingDown
	case KindDeadline:
		return context.DeadlineExceeded
	}
	return nil
}

// JobQuarantinedError is the client-side view of a quarantined job: the
// server parked it after it exhausted its attempt budget, so polling is
// pointless — only an operator Requeue revives it. It unwraps to an
// error carrying the stored failure text, so errors.Is/As chains over
// the preserved diagnostics keep working.
type JobQuarantinedError struct {
	Status Status
}

func (e *JobQuarantinedError) Error() string {
	return fmt.Sprintf("job %s quarantined after %d attempts: %s", e.Status.ID, e.Status.Attempts, e.Status.Error)
}

// Unwrap exposes the stored failure as an opaque error value.
func (e *JobQuarantinedError) Unwrap() error {
	if e.Status.Error == "" {
		return nil
	}
	return errors.New(e.Status.Error)
}

// Submit posts a board document (boardio JSON schema). Overload and
// drain rejections are retried up to MaxAttempts with backoff; the
// idempotency key makes those retries safe — a submission that actually
// landed is answered from the existing job, not run twice.
func (c *Client) Submit(ctx context.Context, doc []byte, idemKey string) (Status, error) {
	if c.MaxElapsed > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.MaxElapsed)
		defer cancel()
	}
	if c.Tracer.Enabled() && obs.FromContext(ctx) == nil {
		// No trace in flight: the client's own tracer originates one, so
		// even a bare Submit propagates an X-Sprout-Trace to the server.
		ctx = obs.WithTracer(ctx, c.Tracer)
	}
	var last error
	attempts := 0
	defer func() {
		if c.Tracer.Enabled() {
			c.Tracer.Histogram(obs.MClientSubmitAttempts).Observe(float64(attempts))
		}
	}()
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		attempts = attempt + 1
		st, retryAfter, err := c.trySubmit(ctx, doc, idemKey)
		if err == nil {
			return st, nil
		}
		var re *retryableError
		if !errors.As(err, &re) {
			return Status{}, err
		}
		if re.err != nil && c.Tracer.Enabled() {
			c.Tracer.Counter(obs.MClientTransportRetries).Add(1)
		}
		last = err
		if attempt+1 >= c.maxAttempts() {
			break // out of attempts: don't sleep a backoff nobody will use
		}
		if werr := c.sleep(ctx, attempt, retryAfter); werr != nil {
			return Status{}, fmt.Errorf("client: submit interrupted: %w", werr)
		}
	}
	return Status{}, fmt.Errorf("client: submit gave up after %d attempts: %w", c.maxAttempts(), last)
}

// retryableError marks a failure the client should back off and retry:
// a typed rejection (429/503) or a transport-level error that left no
// response at all.
type retryableError struct {
	code int
	body string
	err  error // transport failure when no response was received
}

func (e *retryableError) Error() string {
	if e.err != nil {
		return e.err.Error()
	}
	return fmt.Sprintf("server rejected submission (HTTP %d): %s", e.code, e.body)
}

func (e *retryableError) Unwrap() error { return e.err }

// RejectedError is a non-retryable submission rejection (e.g. 400 for a
// malformed document). The shard router never fails these over: the same
// document would be rejected by every replica.
type RejectedError struct {
	Code int
	Body string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("client: submit rejected (HTTP %d): %s", e.Code, e.Body)
}

// newRequest materializes one submission attempt from the captured
// document bytes: every retry gets a fresh body reader positioned at
// offset zero, so a resend after a transport error carries the full
// document — a half-sent POST must never be resumed from wherever the
// broken connection left off.
func (c *Client) newRequest(ctx context.Context, doc []byte, idemKey string) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(doc))
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	if hdr := obs.TraceHeader(ctx); hdr != "" {
		// Propagate the caller's trace position (tracer plus innermost
		// span) so the server's job span nests under this submission.
		req.Header.Set(obs.TraceHeaderName, hdr)
	}
	return req, nil
}

func (c *Client) trySubmit(ctx context.Context, doc []byte, idemKey string) (Status, time.Duration, error) {
	req, err := c.newRequest(ctx, doc, idemKey)
	if err != nil {
		return Status{}, 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return Status{}, 0, fmt.Errorf("client: submit: %w", ctx.Err())
		}
		// A transport-level failure (connection refused, reset mid-body)
		// left no response; the idempotency key makes the resend safe, so
		// it is retried like an overload rejection.
		return Status{}, 0, &retryableError{err: fmt.Errorf("client: submit: %w", err)}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusOK:
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return Status{}, 0, fmt.Errorf("client: decode submit response: %w", err)
		}
		return st, 0, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return Status{}, parseRetryAfter(resp), &retryableError{code: resp.StatusCode, body: string(bytes.TrimSpace(body))}
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return Status{}, 0, &RejectedError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
	}
}

// parseRetryAfter reads the Retry-After hint: either delta-seconds or an
// absolute HTTP-date (RFC 7231 permits both). Absent, malformed, zero,
// negative, or already-past values all yield 0 — "no hint", falling back
// to the client's own backoff.
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

// backoffStep computes one equal-jitter backoff delay for the given
// attempt: half the capped exponential step fixed, half uniform random,
// so a fleet of retrying clients decorrelates while keeping a floor.
func (c *Client) backoffStep(attempt int) time.Duration {
	step := c.baseBackoff() << attempt
	if max := c.maxBackoff(); step > max || step <= 0 {
		step = max
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	return step/2 + time.Duration(c.rng.Int63n(int64(step/2)+1))
}

// sleep waits out one backoff step: the server's Retry-After hint when
// given, otherwise equal-jitter exponential backoff.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter time.Duration) error {
	d := retryAfter
	if d <= 0 {
		d = c.backoffStep(attempt)
	} else if c.Tracer.Enabled() {
		c.Tracer.Counter(obs.MClientRetryAfterUsed).Add(1)
	}
	if c.Tracer.Enabled() {
		c.Tracer.Histogram(obs.MClientSubmitBackoffMS).Observe(float64(d.Nanoseconds()) / 1e6)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.getJSON(ctx, "/v1/jobs/"+id, func(code int, body io.Reader) error {
		if code != http.StatusOK {
			return httpError(code, body)
		}
		return json.NewDecoder(body).Decode(&st)
	})
	return st, err
}

// Result fetches a terminal job's run report. A non-terminal job
// returns done=false with no error; a failed job returns a
// *JobFailedError carrying the terminal status.
func (c *Client) Result(ctx context.Context, id string) (rep *obs.RunReport, done bool, err error) {
	err = c.getJSON(ctx, "/v1/jobs/"+id+"/result", func(code int, body io.Reader) error {
		switch code {
		case http.StatusOK:
			done = true
			rep = &obs.RunReport{}
			return json.NewDecoder(body).Decode(rep)
		case http.StatusAccepted:
			return nil // still queued/running
		case http.StatusNotFound:
			return httpError(code, body)
		default:
			// Terminal failure: surface the typed status.
			var st Status
			if derr := json.NewDecoder(body).Decode(&st); derr != nil {
				return httpError(code, body)
			}
			done = true
			if st.State == StateQuarantined || st.ErrorKind == KindPoisoned {
				// Quarantine is terminal-until-requeued: stop polling now
				// instead of spinning until the caller's deadline.
				return &JobQuarantinedError{Status: st}
			}
			return &JobFailedError{Status: st}
		}
	})
	return rep, done, err
}

// WaitResult polls the job until it reaches a terminal state, returning
// the run report (or the *JobFailedError of a failed job). The context
// bounds the wait.
func (c *Client) WaitResult(ctx context.Context, id string, poll time.Duration) (*obs.RunReport, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		rep, done, err := c.Result(ctx, id)
		if err != nil || done {
			return rep, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("client: waiting for job %s: %w", id, ctx.Err())
		case <-t.C:
		}
	}
}

// ListJobs fetches status snapshots, optionally filtered by state
// ("" = all). ListJobs(ctx, StateQuarantined) is the operator's
// quarantine listing.
func (c *Client) ListJobs(ctx context.Context, state JobState) ([]Status, error) {
	path := "/v1/jobs"
	if state != "" {
		path += "?state=" + string(state)
	}
	var list JobList
	err := c.getJSON(ctx, path, func(code int, body io.Reader) error {
		if code != http.StatusOK {
			return httpError(code, body)
		}
		return json.NewDecoder(body).Decode(&list)
	})
	return list.Jobs, err
}

// Requeue revives a quarantined job and returns its refreshed status.
func (c *Client) Requeue(ctx context.Context, id string) (Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs/"+id+"/requeue", nil)
	if err != nil {
		return Status{}, fmt.Errorf("client: build request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Status{}, fmt.Errorf("client: requeue %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, httpError(resp.StatusCode, resp.Body)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("client: decode requeue response: %w", err)
	}
	return st, nil
}

func (c *Client) getJSON(ctx context.Context, path string, handle func(code int, body io.Reader) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: get %s: %w", path, err)
	}
	defer resp.Body.Close()
	return handle(resp.StatusCode, resp.Body)
}

func httpError(code int, body io.Reader) error {
	b, _ := io.ReadAll(io.LimitReader(body, 1024))
	return fmt.Errorf("client: HTTP %d: %s", code, bytes.TrimSpace(b))
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c *Client) baseBackoff() time.Duration {
	if c.BaseBackoff > 0 {
		return c.BaseBackoff
	}
	return 50 * time.Millisecond
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return 2 * time.Second
}
