package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestParseRetryAfterForms pins the Retry-After parser across both RFC
// 7231 forms and the malformed shapes real servers emit: delta-seconds,
// absolute HTTP-date, zero, negative, past dates, and garbage. Anything
// unusable must yield 0 ("no hint"), never a negative or huge sleep.
func TestParseRetryAfterForms(t *testing.T) {
	resp := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		name  string
		value string
		min   time.Duration
		max   time.Duration
	}{
		{"absent", "", 0, 0},
		{"seconds", "5", 5 * time.Second, 5 * time.Second},
		{"zero", "0", 0, 0},
		{"negative", "-3", 0, 0},
		{"garbage", "soon", 0, 0},
		{"float is not delta-seconds", "1.5", 0, 0},
		{"http-date future", time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat), 25 * time.Second, 30 * time.Second},
		{"http-date past", time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0, 0},
		{"http-date garbage", "Feb 30 25:61:00", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := parseRetryAfter(resp(tc.value))
			if got < tc.min || got > tc.max {
				t.Fatalf("parseRetryAfter(%q) = %v, want in [%v, %v]", tc.value, got, tc.min, tc.max)
			}
		})
	}
}

// TestBackoffStepEqualJitterBounds: every step must lie in
// [step/2, step] of the capped exponential — the equal-jitter contract
// that keeps a floor under the backoff while decorrelating a fleet.
func TestBackoffStepEqualJitterBounds(t *testing.T) {
	c := NewClient("http://unused", 99)
	c.BaseBackoff = 10 * time.Millisecond
	c.MaxBackoff = 80 * time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		step := c.BaseBackoff << attempt
		if step > c.MaxBackoff || step <= 0 {
			step = c.MaxBackoff
		}
		for i := 0; i < 50; i++ {
			d := c.backoffStep(attempt)
			if d < step/2 || d > step {
				t.Fatalf("attempt %d: backoffStep = %v, want in [%v, %v]", attempt, d, step/2, step)
			}
		}
	}
	// The shift past 63 bits must not wrap into a negative step.
	for _, attempt := range []int{40, 62, 63} {
		if d := c.backoffStep(attempt); d < c.MaxBackoff/2 || d > c.MaxBackoff {
			t.Fatalf("attempt %d: backoffStep = %v, want capped into [%v, %v]", attempt, d, c.MaxBackoff/2, c.MaxBackoff)
		}
	}
}

// TestSubmitMaxElapsed: the elapsed-time cap must cut a retry loop short
// even when the server's Retry-After hints would stretch MaxAttempts far
// past it.
func TestSubmitMaxElapsed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1") // 1s per retry, forever
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 1)
	c.MaxAttempts = 1000
	c.MaxElapsed = 150 * time.Millisecond
	start := time.Now()
	_, err := c.Submit(context.Background(), []byte(`{}`), "elapsed")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("submit succeeded against a permanently draining server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the MaxElapsed deadline to surface as context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("submit ran %v, want bounded near the 150ms MaxElapsed", elapsed)
	}
}

// TestSubmitResendsFullBodyAfterTransportError: a transport-level
// failure (connection dropped mid-request) is retried, and the retry
// must carry the complete document from offset zero. This is the
// regression guard for shard failover POSTs: the body is captured as a
// byte slice and re-wrapped per attempt by newRequest, never resumed
// from wherever the broken connection left off.
func TestSubmitResendsFullBodyAfterTransportError(t *testing.T) {
	doc := bytes.Repeat([]byte(`{"pad":"xxxxxxxx"}`), 4096) // ~72KB: large enough that a partial send is plausible
	var mu sync.Mutex
	var bodies [][]byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := len(bodies)
		bodies = append(bodies, nil)
		mu.Unlock()
		if n == 0 {
			// Read a prefix, then abort the connection: the client sees a
			// transport error, not an HTTP status.
			io.CopyN(io.Discard, r.Body, 10)
			panic(http.ErrAbortHandler)
		}
		got, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("retry attempt: read body: %v", err)
		}
		mu.Lock()
		bodies[n] = got
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j-resend"}`)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 1)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 2 * time.Millisecond
	st, err := c.Submit(context.Background(), doc, "resend")
	if err != nil {
		t.Fatalf("submit after transport error = %v, want success on retry", err)
	}
	if st.ID != "j-resend" {
		t.Fatalf("st.ID = %q, want j-resend", st.ID)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 2 {
		t.Fatalf("server saw %d attempts, want 2 (one aborted, one retried)", len(bodies))
	}
	if !bytes.Equal(bodies[1], doc) {
		t.Fatalf("retry body: got %d bytes, want the full %d-byte document resent from offset zero", len(bodies[1]), len(doc))
	}
}

// TestSubmitRejectedTyped: a non-retryable rejection surfaces as
// *RejectedError with the status code, after exactly one attempt.
func TestSubmitRejectedTyped(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, "bad board", http.StatusBadRequest)
	}))
	defer ts.Close()
	c := NewClient(ts.URL, 1)
	_, err := c.Submit(context.Background(), []byte(`{}`), "rej")
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want *RejectedError with 400", err)
	}
	if attempts != 1 {
		t.Fatalf("server saw %d attempts, want 1 (400 is not retryable)", attempts)
	}
}
