package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
)

// maxBodyBytes bounds a board document upload; anything larger is a 413,
// not an allocation.
const maxBodyBytes = 8 << 20

// Handler returns the sproutd HTTP API:
//
//	POST /v1/jobs              submit a board document (boardio schema)
//	GET  /v1/jobs/{id}         poll job status
//	GET  /v1/jobs/{id}/result  fetch the run report of a terminal job
//	GET  /v1/jobs/{id}/trace   fetch the job's Chrome trace
//	GET  /healthz              process liveness (always 200)
//	GET  /readyz               admission readiness (503 while draining)
//	GET  /metrics              server counters, histograms and gauges
//
// Failed jobs surface through /result with the status code of the
// DESIGN "Failure semantics" matrix: 503 shutdown, 504 deadline,
// 500 panic/solve/internal.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", e.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", e.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", e.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", e.handleTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if e.Accepting() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	})
	mux.HandleFunc("GET /metrics", e.handleMetrics)
	return mux
}

// statusFor maps a failure kind to its client-visible HTTP status — one
// half of the failure-semantics matrix (the submit path's 429/503 is the
// other half).
func statusFor(kind ErrKind) int {
	switch kind {
	case KindShutdown:
		return http.StatusServiceUnavailable
	case KindDeadline:
		return http.StatusGatewayTimeout
	default: // panic, solve, internal
		return http.StatusInternalServerError
	}
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec, err := boardio.Decode(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt := SubmitOptions{IdempotencyKey: r.Header.Get("Idempotency-Key")}
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, perr := time.ParseDuration(v)
		if perr != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q: want a positive Go duration", v))
			return
		}
		opt.Timeout = d
	}
	opt.WithManual = r.URL.Query().Get("manual") == "1"
	opt.SkipExtract = r.URL.Query().Get("skip_extract") == "1"
	opt.Explore = r.URL.Query().Get("explore") == "1"
	opt.ExploreSequential = r.URL.Query().Get("explore_seq") == "1"
	if v := r.URL.Query().Get("explore_workers"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad explore_workers %q: want a positive integer", v))
			return
		}
		opt.ExploreWorkers = n
	}

	st, err := e.Submit(dec, opt)
	switch {
	case errors.Is(err, sprout.ErrOverloaded):
		e.writeRetryable(w, http.StatusTooManyRequests, err)
	case errors.Is(err, sprout.ErrShuttingDown):
		e.writeRetryable(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case st.Deduped:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (e *Engine) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := e.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (e *Engine) handleResult(w http.ResponseWriter, r *http.Request) {
	st, rep, _, ok := e.Result(r.PathValue("id"))
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	case !st.State.Terminal():
		// Not ready yet: 202 tells the client to keep polling.
		writeJSON(w, http.StatusAccepted, st)
	case st.State == StateFailed:
		writeJSON(w, statusFor(st.ErrorKind), st)
	case rep == nil:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("job %s finished without a report", st.ID))
	default:
		writeJSON(w, http.StatusOK, rep)
	}
}

func (e *Engine) handleTrace(w http.ResponseWriter, r *http.Request) {
	st, _, tracer, ok := e.Result(r.PathValue("id"))
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	case tracer == nil:
		// Never started: nothing was traced.
		writeJSON(w, http.StatusAccepted, st)
	default:
		w.Header().Set("Content-Type", "application/json")
		if err := tracer.WriteChromeTrace(w); err != nil {
			e.cfg.Log.Warn("trace write failed", "job", st.ID, "err", err)
		}
	}
}

// Metrics is the /metrics document: the engine gauges plus the server
// tracer's counters and histograms.
type Metrics struct {
	Accepting  bool                            `json:"accepting"`
	QueueLen   int                             `json:"queue_len"`
	QueueCap   int                             `json:"queue_cap"`
	InFlight   int64                           `json:"in_flight"`
	Workers    int                             `json:"workers"`
	Counters   map[string]int64                `json:"counters,omitempty"`
	Gauges     map[string]int64                `json:"gauges,omitempty"`
	Histograms map[string]obs.HistogramSummary `json:"histograms,omitempty"`
}

func (e *Engine) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counters, hists := e.cfg.Tracer.MetricsSnapshot()
	writeJSON(w, http.StatusOK, Metrics{
		Accepting:  e.Accepting(),
		QueueLen:   e.QueueLen(),
		QueueCap:   e.cfg.QueueDepth,
		InFlight:   e.InFlight(),
		Workers:    e.cfg.Workers,
		Counters:   counters,
		Gauges:     e.cfg.Tracer.GaugesSnapshot(),
		Histograms: hists,
	})
}

// writeRetryable writes a typed rejection with the Retry-After hint
// clients use to pace their backoff.
func (e *Engine) writeRetryable(w http.ResponseWriter, code int, err error) {
	secs := int(math.Ceil(e.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, code, err)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
