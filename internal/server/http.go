package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
)

// maxBodyBytes bounds a board document upload; anything larger is a 413,
// not an allocation.
const maxBodyBytes = 8 << 20

// Handler returns the sproutd HTTP API:
//
//	POST /v1/jobs                  submit a board document (boardio schema)
//	GET  /v1/jobs                  list jobs (?state= filters, e.g. quarantined)
//	GET  /v1/jobs/{id}             poll job status
//	POST /v1/jobs/{id}/requeue     revive a quarantined job
//	GET  /v1/jobs/{id}/result      fetch the run report of a terminal job
//	GET  /v1/jobs/{id}/trace       fetch the job's stitched Chrome trace
//	GET  /v1/jobs/{id}/traceparts  raw trace parts known to this replica
//	GET  /v1/fleet/metrics         per-replica metric snapshots
//	GET  /healthz                  process liveness (always 200)
//	GET  /readyz                   admission readiness (503 while draining)
//	GET  /metrics                  Prometheus text (?format=json for JSON)
//
// Failed jobs surface through /result with the status code of the
// DESIGN "Failure semantics" matrix: 503 shutdown, 504 deadline,
// 500 panic/solve/internal.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", e.instrument("submit", e.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", e.instrument("list", e.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", e.instrument("status", e.handleStatus))
	mux.HandleFunc("POST /v1/jobs/{id}/requeue", e.instrument("requeue", e.handleRequeue))
	mux.HandleFunc("GET /v1/jobs/{id}/result", e.instrument("result", e.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", e.instrument("trace", e.handleTrace))
	mux.HandleFunc("GET /v1/jobs/{id}/traceparts", e.instrument("traceparts", e.handleTraceParts))
	mux.HandleFunc("GET /v1/fleet/metrics", e.instrument("fleet_metrics", e.handleFleetMetrics))
	mux.HandleFunc("GET /healthz", e.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	mux.HandleFunc("GET /readyz", e.instrument("readyz", func(w http.ResponseWriter, r *http.Request) {
		if e.Accepting() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	}))
	mux.HandleFunc("GET /metrics", e.instrument("metrics", e.handleMetrics))
	return mux
}

// probeRoutes are scraped or polled continuously; their access-log lines
// go to Debug so a steady-state server stays quiet at the default level.
var probeRoutes = map[string]bool{"healthz": true, "readyz": true, "metrics": true}

// statusRecorder captures the status a wrapped handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// instrument wraps a handler with the per-request observability surface:
// an http.request_ms observation labeled by route and status, and one
// structured access-log line (method, route, status, duration, job id,
// trace id, forwarding replica).
func (e *Engine) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		dur := time.Since(start)
		if e.cfg.Tracer.Enabled() {
			e.cfg.Tracer.Histogram(obs.WithLabels(obs.MHTTPRequestMS,
				"route", route, "status", strconv.Itoa(rec.status))).
				Observe(float64(dur.Nanoseconds()) / 1e6)
		}
		attrs := []any{
			"method", r.Method, "route", route, "status", rec.status,
			"dur_ms", float64(dur.Microseconds()) / 1e3,
		}
		if id := r.PathValue("id"); id != "" {
			attrs = append(attrs, "job", id)
		}
		if tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeaderName)); ok {
			attrs = append(attrs, "trace", tc.TraceID)
		}
		if fwd := r.Header.Get(forwardedByHeader); fwd != "" {
			attrs = append(attrs, "forwarded_by", fwd)
		}
		if probeRoutes[route] {
			e.cfg.Log.Debug("http request", attrs...)
		} else {
			e.cfg.Log.Info("http request", attrs...)
		}
	}
}

// statusFor maps a failure kind to its client-visible HTTP status — one
// half of the failure-semantics matrix (the submit path's 429/503 is the
// other half).
func statusFor(kind ErrKind) int {
	switch kind {
	case KindShutdown:
		return http.StatusServiceUnavailable
	case KindDeadline:
		return http.StatusGatewayTimeout
	case KindPoisoned:
		// Quarantined: the document itself keeps killing the worker, so
		// retrying as-is is futile — an operator requeue is the retry.
		return http.StatusUnprocessableEntity
	default: // panic, solve, internal
		return http.StatusInternalServerError
	}
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec, err := boardio.Decode(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt := SubmitOptions{IdempotencyKey: r.Header.Get("Idempotency-Key")}
	if tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeaderName)); ok {
		// Malformed headers detach the trace rather than failing the
		// submission — tracing is best-effort.
		opt.Trace = tc
	}
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, perr := time.ParseDuration(v)
		if perr != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q: want a positive Go duration", v))
			return
		}
		opt.Timeout = d
	}
	opt.WithManual = r.URL.Query().Get("manual") == "1"
	opt.SkipExtract = r.URL.Query().Get("skip_extract") == "1"
	opt.Explore = r.URL.Query().Get("explore") == "1"
	opt.ExploreSequential = r.URL.Query().Get("explore_seq") == "1"
	if v := r.URL.Query().Get("explore_workers"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad explore_workers %q: want a positive integer", v))
			return
		}
		opt.ExploreWorkers = n
	}

	st, err := e.Submit(dec, opt)
	switch {
	case errors.Is(err, sprout.ErrOverloaded):
		e.writeRetryable(w, http.StatusTooManyRequests, err)
	case errors.Is(err, sprout.ErrShuttingDown):
		e.writeRetryable(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case st.Deduped:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (e *Engine) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := e.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// JobList is the GET /v1/jobs document.
type JobList struct {
	Jobs []Status `json:"jobs"`
}

// handleList serves job status snapshots, optionally filtered by state
// (?state=quarantined is the operator's quarantine listing). In a
// sharded deployment this lists the local replica only.
func (e *Engine) handleList(w http.ResponseWriter, r *http.Request) {
	state := JobState(r.URL.Query().Get("state"))
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateQuarantined:
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown state %q", state))
		return
	}
	jobs := e.List(state)
	if jobs == nil {
		jobs = []Status{}
	}
	writeJSON(w, http.StatusOK, JobList{Jobs: jobs})
}

// handleRequeue revives a quarantined job. 404 unknown id, 409 when the
// job is not quarantined, 429/503 when admission has no room; 200 with
// the refreshed status on success.
func (e *Engine) handleRequeue(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, known, err := e.Requeue(id)
	switch {
	case !known:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
	case errors.Is(err, ErrNotQuarantined):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, sprout.ErrOverloaded):
		e.writeRetryable(w, http.StatusTooManyRequests, err)
	case errors.Is(err, sprout.ErrShuttingDown):
		e.writeRetryable(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (e *Engine) handleResult(w http.ResponseWriter, r *http.Request) {
	st, rep, _, ok := e.Result(r.PathValue("id"))
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	case !st.State.Terminal():
		// Not ready yet: 202 tells the client to keep polling.
		writeJSON(w, http.StatusAccepted, st)
	case st.State == StateQuarantined:
		// Quarantined jobs have no report and will not progress on their
		// own; 422 tells the client to stop polling and escalate.
		writeJSON(w, statusFor(KindPoisoned), st)
	case st.State == StateFailed:
		writeJSON(w, statusFor(st.ErrorKind), st)
	case rep == nil:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("job %s finished without a report", st.ID))
	default:
		writeJSON(w, http.StatusOK, rep)
	}
}

func (e *Engine) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, _, tracer, ok := e.Result(id)
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
	case tracer == nil && len(e.TraceParts(id)) == 0:
		// Never started: nothing was traced.
		writeJSON(w, http.StatusAccepted, st)
	default:
		// Stitch everything known locally — the job's own spans plus any
		// parts the proxy layer recorded — into one Chrome trace. (The
		// shard handler extends this with parts gathered from peers.)
		writeStitchedTrace(w, e.cfg.Log, id, e.TraceParts(id))
	}
}

// writeStitchedTrace merges trace parts and writes the Chrome trace.
func writeStitchedTrace(w http.ResponseWriter, log *slog.Logger, jobID string, parts []obs.TracePart) {
	st, err := obs.Stitch(parts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("stitch trace: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := st.WriteChromeTrace(w); err != nil {
		log.Warn("trace write failed", "job", jobID, "err", err)
	}
}

// handleTraceParts serves the raw trace parts this replica holds for a
// job — the stitcher's wire format, fetched peer-to-peer by whichever
// replica is asked for the full trace.
func (e *Engine) handleTraceParts(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	parts := e.TraceParts(id)
	if len(parts) == 0 && e.store.Get(id) == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, parts)
}

// Metrics is the /metrics document: the engine gauges plus the server
// tracer's counters and histograms.
type Metrics struct {
	Accepting  bool                            `json:"accepting"`
	QueueLen   int                             `json:"queue_len"`
	QueueCap   int                             `json:"queue_cap"`
	InFlight   int64                           `json:"in_flight"`
	Workers    int                             `json:"workers"`
	Counters   map[string]int64                `json:"counters,omitempty"`
	Gauges     map[string]int64                `json:"gauges,omitempty"`
	Histograms map[string]obs.HistogramSummary `json:"histograms,omitempty"`
}

// metricsDoc assembles the JSON metrics snapshot.
func (e *Engine) metricsDoc() Metrics {
	counters, hists := e.cfg.Tracer.MetricsSnapshot()
	return Metrics{
		Accepting:  e.Accepting(),
		QueueLen:   e.QueueLen(),
		QueueCap:   e.cfg.QueueDepth,
		InFlight:   e.InFlight(),
		Workers:    e.cfg.Workers,
		Counters:   counters,
		Gauges:     e.cfg.Tracer.GaugesSnapshot(),
		Histograms: hists,
	}
}

// handleMetrics serves Prometheus text exposition by default and the
// original JSON document under ?format=json. Both views read the same
// snapshot; gauges are synced from the engine's live state first.
func (e *Engine) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e.syncGauges()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, e.metricsDoc())
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	e.cfg.Tracer.WritePrometheus(w, obs.PromOptions{
		Labels: []string{"replica", e.cfg.NodeName, "shard", e.cfg.Shard},
	})
}

// FleetReplica is one replica's row of the fleet metrics document. An
// unreachable replica keeps its row, with Error set and Metrics nil, so
// a partial fleet view is visibly partial rather than silently smaller.
type FleetReplica struct {
	Replica string   `json:"replica"`
	Self    bool     `json:"self,omitempty"`
	Error   string   `json:"error,omitempty"`
	Metrics *Metrics `json:"metrics,omitempty"`
}

// FleetMetrics aggregates per-replica metric snapshots.
type FleetMetrics struct {
	Replicas []FleetReplica `json:"replicas"`
}

// handleFleetMetrics serves the single-replica fleet view; the shard
// handler shadows this route with a scatter-gather across the peer set.
func (e *Engine) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	e.syncGauges()
	doc := e.metricsDoc()
	writeJSON(w, http.StatusOK, FleetMetrics{
		Replicas: []FleetReplica{{Replica: e.cfg.NodeName, Self: true, Metrics: &doc}},
	})
}

// writeRetryable writes a typed rejection with the Retry-After hint
// clients use to pace their backoff.
func (e *Engine) writeRetryable(w http.ResponseWriter, code int, err error) {
	secs := int(math.Ceil(e.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, code, err)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
