package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sprout"
	"sprout/internal/board"
	"sprout/internal/boardio"
	"sprout/internal/geom"
	"sprout/internal/obs"
	"sprout/internal/sparse"
)

// testDecoded builds a minimal decoded board document for tests that
// inject their own route function (the board is never actually routed).
func testDecoded(t *testing.T) *boardio.Decoded {
	t.Helper()
	stack := board.Stackup{Layers: []board.Layer{
		{Name: "L1", CopperUM: 35, DielectricBelowUM: 100},
		{Name: "L2", CopperUM: 35, IsPlane: true},
	}}
	b, err := board.New("unit", geom.R(0, 0, 100, 50), stack,
		board.DesignRules{Clearance: 2, TileDX: 5, TileDY: 5, ViaCost: 5})
	if err != nil {
		t.Fatal(err)
	}
	return &boardio.Decoded{Board: b, RoutingLayer: 1}
}

// okResult is the canned success every scripted route returns.
func okResult() *sprout.BoardResult {
	return &sprout.BoardResult{Report: &obs.RunReport{Tool: "test"}}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAdmissionControlOverload(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDepth: 1, Tracer: obs.New()})
	release := make(chan struct{})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		<-release
		return okResult(), nil
	}
	eng.Start()
	dec := testDecoded(t)

	if _, err := eng.Submit(dec, SubmitOptions{}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	waitFor(t, "worker to pick up job 1", func() bool { return eng.InFlight() == 1 })
	if _, err := eng.Submit(dec, SubmitOptions{}); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	_, err := eng.Submit(dec, SubmitOptions{})
	if !errors.Is(err, sprout.ErrOverloaded) {
		t.Fatalf("third submit: want ErrOverloaded, got %v", err)
	}

	close(release)
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := eng.Shutdown(sctx); err != nil {
		t.Fatalf("drain should complete cleanly: %v", err)
	}
	for _, id := range []string{"job-1", "job-2"} {
		st, ok := eng.Job(id)
		if !ok || st.State != StateDone {
			t.Fatalf("%s = %+v, want done", id, st)
		}
	}
	counters, _ := eng.cfg.Tracer.MetricsSnapshot()
	if counters["server.jobs.accepted"] != 2 || counters["server.jobs.rejected_overloaded"] != 1 {
		t.Fatalf("counters = %v, want 2 accepted / 1 rejected", counters)
	}
}

func TestIdempotencyKeyDedupes(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		<-release
		return okResult(), nil
	}
	eng.Start()
	defer func() {
		close(release)
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = eng.Shutdown(sctx)
	}()

	dec := testDecoded(t)
	st1, err := eng.Submit(dec, SubmitOptions{IdempotencyKey: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := eng.Submit(dec, SubmitOptions{IdempotencyKey: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st1.ID || !st2.Deduped {
		t.Fatalf("retried submission must dedupe to %s, got %+v", st1.ID, st2)
	}
	st3, err := eng.Submit(dec, SubmitOptions{IdempotencyKey: "k2"})
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID == st1.ID || st3.Deduped {
		t.Fatalf("fresh key must create a fresh job, got %+v", st3)
	}
}

func TestJobDeadlineExceeded(t *testing.T) {
	eng := New(Config{Workers: 1})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	eng.Start()
	st, err := eng.Submit(testDecoded(t), SubmitOptions{Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to time out", func() bool {
		got, _ := eng.Job(st.ID)
		return got.State.Terminal()
	})
	got, _ := eng.Job(st.ID)
	if got.State != StateFailed || got.ErrorKind != KindDeadline {
		t.Fatalf("job = %+v, want failed/deadline", got)
	}

	// The HTTP view of the same failure is a 504.
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("result status = %d, want 504", resp.StatusCode)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = eng.Shutdown(sctx)
}

func TestPanicContainment(t *testing.T) {
	eng := New(Config{Workers: 1, Tracer: obs.New()})
	calls := 0
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		calls++
		if calls == 1 {
			panic("poisoned board")
		}
		return okResult(), nil
	}
	eng.Start()
	dec := testDecoded(t)
	st1, err := eng.Submit(dec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "panicking job to fail", func() bool {
		got, _ := eng.Job(st1.ID)
		return got.State.Terminal()
	})
	got, _ := eng.Job(st1.ID)
	if got.State != StateFailed || got.ErrorKind != KindPanic {
		t.Fatalf("job = %+v, want failed/panic", got)
	}
	if !strings.Contains(got.Error, "poisoned board") {
		t.Fatalf("error should carry the panic value: %q", got.Error)
	}

	// The pool survived: the next job completes normally.
	st2, err := eng.Submit(dec, SubmitOptions{})
	if err != nil {
		t.Fatalf("engine must keep serving after a contained panic: %v", err)
	}
	waitFor(t, "follow-up job to finish", func() bool {
		got, _ := eng.Job(st2.ID)
		return got.State == StateDone
	})
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = eng.Shutdown(sctx)
}

func TestShutdownDrainsQueuedJobs(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDepth: 8})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		time.Sleep(2 * time.Millisecond)
		return okResult(), nil
	}
	eng.Start()
	dec := testDecoded(t)
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := eng.Submit(dec, SubmitOptions{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := eng.Shutdown(sctx); err != nil {
		t.Fatalf("drain must complete within the deadline: %v", err)
	}
	if eng.Accepting() {
		t.Fatal("engine must stop accepting once shutdown starts")
	}
	for _, id := range ids {
		st, _ := eng.Job(id)
		if st.State != StateDone {
			t.Fatalf("queued job %s = %+v, want drained to done", id, st)
		}
	}
	if _, err := eng.Submit(dec, SubmitOptions{}); !errors.Is(err, sprout.ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: want ErrShuttingDown, got %v", err)
	}
}

func TestShutdownCancelsStragglers(t *testing.T) {
	eng := New(Config{Workers: 2})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		<-ctx.Done() // honors cancellation, like the real pipeline
		return nil, ctx.Err()
	}
	eng.Start()
	dec := testDecoded(t)
	st, err := eng.Submit(dec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to start", func() bool { return eng.InFlight() == 1 })

	start := time.Now()
	sctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = eng.Shutdown(sctx)
	if err == nil {
		t.Fatal("an expired drain deadline must be reported")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain error should wrap the deadline: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("shutdown took %v, want bounded by drain deadline plus prompt cancellation", elapsed)
	}
	got, _ := eng.Job(st.ID)
	if got.State != StateFailed || got.ErrorKind != KindShutdown {
		t.Fatalf("straggler = %+v, want failed/shutdown", got)
	}
	if !strings.Contains(got.Error, sprout.ErrShuttingDown.Error()) {
		t.Fatalf("straggler error should be the typed shutdown error: %q", got.Error)
	}
}

func TestHTTPSurface(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDepth: 1, Tracer: obs.New()})
	release := make(chan struct{})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		<-release
		return okResult(), nil
	}
	eng.Start()
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}

	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while accepting = %d", resp.StatusCode)
	}
	if resp, _ := get("/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}

	// Malformed documents are a 400, not a crash.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad document = %d, want 400", resp.StatusCode)
	}

	// Fill the worker and the queue, then overload: the 429 must carry
	// Retry-After. Distinct idempotency keys keep equivalent documents
	// from content-deduping onto one job — this test wants three jobs.
	doc := encodeBoardDoc(t)
	post := func(key string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("h1"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 = %d, want 202", resp.StatusCode)
	}
	waitFor(t, "worker pickup", func() bool { return eng.InFlight() == 1 })
	if resp := post("h2"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2 = %d, want 202", resp.StatusCode)
	}
	over := post("h3")
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload = %d, want 429", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After hint")
	}

	// Metrics reflect the rejection and the gauges.
	mresp, body := get("/metrics?format=json")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", mresp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	if m.Counters["server.jobs.rejected_overloaded"] < 1 || !m.Accepting || m.Workers != 1 {
		t.Fatalf("metrics = %+v, want rejected>=1, accepting, workers=1", m)
	}

	close(release)
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := eng.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	// Draining: readyz flips, submissions get 503 + Retry-After.
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	drained := post("h4")
	if drained.StatusCode != http.StatusServiceUnavailable || drained.Header.Get("Retry-After") == "" {
		t.Fatalf("post-drain submit = %d (Retry-After %q), want 503 with hint",
			drained.StatusCode, drained.Header.Get("Retry-After"))
	}
	// Results from before the drain are still served.
	if resp, _ := get("/v1/jobs/job-1/result"); resp.StatusCode != http.StatusOK {
		t.Fatalf("result after drain = %d, want 200", resp.StatusCode)
	}
}

// TestExploreJobSurface covers the sproutd exploration surface: the
// explore knobs thread from the HTTP query through SubmitOptions into
// the explorer's RouteOptions, and the sweep digest (winning order,
// cache stats) lands in job status while the winner's report is served
// as the job result.
func TestExploreJobSurface(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDepth: 2, Tracer: obs.New()})
	var gotOpt sprout.RouteOptions
	eng.explore = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.OrderExploration, error) {
		gotOpt = opt
		return &sprout.OrderExploration{
			Best:      okResult(),
			BestOrder: []board.NetID{1, 0},
			BestScore: 0.25,
			Tried:     2,
			Failed:    []sprout.OrderError{{Order: []board.NetID{0, 1}, Kind: sprout.OrderKindRoute}},
			Stats:     sprout.ExploreStats{Orders: 3, Parallel: true, PrefixHits: 3, PrefixMisses: 4},
		}, nil
	}
	eng.Start()
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = eng.Shutdown(sctx)
	}()

	doc := encodeBoardDoc(t)

	// A bad worker count is a 400, not a silently defaulted sweep.
	resp, err := http.Post(ts.URL+"/v1/jobs?explore=1&explore_workers=zero",
		"application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad explore_workers = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/jobs?explore=1&explore_workers=2&explore_seq=1",
		"application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var sub Status
	if jerr := json.NewDecoder(resp.Body).Decode(&sub); jerr != nil {
		t.Fatal(jerr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explore submit = %d, want 202", resp.StatusCode)
	}

	waitFor(t, "explore job to finish", func() bool {
		st, ok := eng.Job(sub.ID)
		return ok && st.State == StateDone
	})
	if gotOpt.ExploreWorkers != 2 || !gotOpt.ExploreSequential {
		t.Fatalf("explore knobs not threaded: %+v", gotOpt)
	}

	st, _ := eng.Job(sub.ID)
	ex := st.Exploration
	if ex == nil {
		t.Fatal("done exploration job must carry an exploration summary")
	}
	if fmt.Sprint(ex.BestOrder) != "[1 0]" || ex.BestScore != 0.25 ||
		ex.OrdersTried != 2 || ex.OrdersFailed != 1 ||
		ex.PrefixHits != 3 || ex.PrefixMisses != 4 {
		t.Fatalf("exploration summary = %+v", ex)
	}

	// The winner's run report is the job result.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.RunReport
	if jerr := json.NewDecoder(rresp.Body).Decode(&rep); jerr != nil {
		t.Fatal(jerr)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || rep.Tool != "test" {
		t.Fatalf("result = %d / %+v, want 200 with the winner's report", rresp.StatusCode, rep)
	}

	counters, _ := eng.cfg.Tracer.MetricsSnapshot()
	if counters["server.explore.orders"] != 3 ||
		counters["server.explore.prefix_hits"] != 3 ||
		counters["server.explore.prefix_misses"] != 4 {
		t.Fatalf("explore counters = %v", counters)
	}
}

func TestClientRetriesWithBackoff(t *testing.T) {
	var attempts int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			w.Header().Set("Retry-After", "0") // malformed-as-useless hint: forces backoff path
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(Status{ID: "job-9", State: StateQueued})
	}))
	defer srv.Close()

	cl := NewClient(srv.URL, 7)
	cl.BaseBackoff = time.Millisecond
	cl.MaxBackoff = 8 * time.Millisecond
	st, err := cl.Submit(context.Background(), []byte("{}"), "k")
	if err != nil {
		t.Fatalf("submit should succeed after retries: %v", err)
	}
	if st.ID != "job-9" || attempts != 3 {
		t.Fatalf("st=%+v attempts=%d, want job-9 after 3 attempts", st, attempts)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var attempts int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(Status{ID: "job-1", State: StateQueued})
	}))
	defer srv.Close()

	cl := NewClient(srv.URL, 7)
	cl.BaseBackoff = time.Millisecond // would retry almost instantly without the hint
	start := time.Now()
	if _, err := cl.Submit(context.Background(), []byte("{}"), ""); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("client retried after %v, must honor the 1s Retry-After hint", elapsed)
	}
}

func TestClientGivesUpEventually(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, 7)
	cl.MaxAttempts = 3
	cl.BaseBackoff = time.Millisecond
	cl.MaxBackoff = 2 * time.Millisecond
	_, err := cl.Submit(context.Background(), []byte("{}"), "")
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("want bounded retries, got %v", err)
	}
}

func TestJobFailedErrorUnwrapsTyped(t *testing.T) {
	shut := &JobFailedError{Status: Status{ErrorKind: KindShutdown}}
	if !errors.Is(shut, sprout.ErrShuttingDown) {
		t.Fatal("shutdown kind must unwrap to ErrShuttingDown")
	}
	dead := &JobFailedError{Status: Status{ErrorKind: KindDeadline}}
	if !errors.Is(dead, context.DeadlineExceeded) {
		t.Fatal("deadline kind must unwrap to DeadlineExceeded")
	}
	internal := &JobFailedError{Status: Status{ErrorKind: KindInternal}}
	if errors.Is(internal, sprout.ErrShuttingDown) || errors.Is(internal, context.DeadlineExceeded) {
		t.Fatal("internal kind must not unwrap to a typed error")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrKind
	}{
		{sprout.ErrShuttingDown, KindShutdown},
		{fmt.Errorf("wrap: %w", sprout.ErrShuttingDown), KindShutdown},
		{context.Canceled, KindShutdown},
		{context.DeadlineExceeded, KindDeadline},
		{fmt.Errorf("net VDD: %w", context.DeadlineExceeded), KindDeadline},
		{&sprout.PanicError{Value: "x"}, KindPanic},
		{fmt.Errorf("rail: %w", &sparse.SolveError{}), KindSolve},
		{errors.New("plain"), KindInternal},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}
