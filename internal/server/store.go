package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
	"sprout/internal/sparse"
)

// JobState is the lifecycle state of one routing job.
type JobState string

const (
	// StateQueued: accepted by admission control, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is routing the board.
	StateRunning JobState = "running"
	// StateDone: terminal, result available.
	StateDone JobState = "done"
	// StateFailed: terminal, the job ended with a typed error.
	StateFailed JobState = "failed"
	// StateQuarantined: terminal, the job exhausted its attempt budget
	// without ever finishing — the crash-loop shape. Quarantined jobs keep
	// their document so an operator requeue can revive them, but nothing
	// runs them until that happens.
	StateQuarantined JobState = "quarantined"
)

// Terminal reports whether the state is final. Every accepted job must
// reach a terminal state — that is the server's zero-loss invariant,
// asserted by the chaos test. Quarantine counts as terminal: the job
// will not progress on its own, only an explicit requeue revives it.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateQuarantined
}

// ErrKind classifies a job failure for the HTTP layer; the mapping to
// client-visible status codes is the DESIGN "Failure semantics" matrix.
type ErrKind string

const (
	// KindDeadline: the per-job deadline expired (504).
	KindDeadline ErrKind = "deadline"
	// KindShutdown: the server drained or cancelled the job while
	// shutting down (503).
	KindShutdown ErrKind = "shutdown"
	// KindPanic: a contained internal panic (500).
	KindPanic ErrKind = "panic"
	// KindSolve: every rung of the solver fallback ladder failed (500).
	KindSolve ErrKind = "solve"
	// KindInternal: any other routing failure (500).
	KindInternal ErrKind = "internal"
	// KindPoisoned: the job was quarantined after exhausting its attempt
	// budget — it kept taking the process down without reaching a terminal
	// state (422).
	KindPoisoned ErrKind = "poisoned"
)

// ErrNotQuarantined rejects a requeue of a job that is not quarantined
// (409): only jobs parked by the poison-quarantine sweep can be revived.
var ErrNotQuarantined = errors.New("server: only quarantined jobs can be requeued")

// classify maps a job error to its ErrKind. Order matters: shutdown and
// deadline are checked before the generic unwrap chains.
func classify(err error) ErrKind {
	switch {
	case errors.Is(err, sprout.ErrShuttingDown), errors.Is(err, context.Canceled):
		// Only the server cancels a job context, and it only does so while
		// draining; a bare Canceled is therefore a shutdown casualty.
		return KindShutdown
	case errors.Is(err, context.DeadlineExceeded):
		return KindDeadline
	}
	var pe *sprout.PanicError
	if errors.As(err, &pe) {
		return KindPanic
	}
	var se *sparse.SolveError
	if errors.As(err, &se) {
		return KindSolve
	}
	return KindInternal
}

// Job is one accepted routing request and its outcome. Fields are
// written under the store lock; callers receive copies via Status.
type Job struct {
	id      string
	idemKey string
	// hash is the canonical content identity of the submission ("" when
	// the submission carried no parseable document). Equivalent
	// submissions singleflight onto the job registered under their hash.
	hash  string
	state JobState
	board string

	submitted time.Time
	started   time.Time
	finished  time.Time

	err  error
	kind ErrKind

	// doc and opt are the decoded request, consumed by the worker.
	doc *boardio.Decoded
	opt sprout.RouteOptions
	// raw is the canonical document encoding, kept by the persistent
	// store so the job can be re-decoded and re-run after a crash (nil in
	// the in-memory store, and cleared once the job is terminal).
	raw []byte
	// explore marks an order-exploration job (worker calls the explore
	// function instead of the route function).
	explore bool
	// exploration summarizes a finished exploration job for the status
	// surface (nil for plain routing jobs).
	exploration *ExplorationSummary
	// timeout is the per-job deadline.
	timeout time.Duration
	// attempts counts how many times a worker started this job. The
	// persistent store makes each start durable before the board is
	// touched, so recovery can quarantine a job that keeps killing the
	// process instead of re-enqueueing it forever.
	attempts int
	// checkpoint is the job's latest durable exploration checkpoint (an
	// opaque frame decoded by the sprout package), nil for plain routing
	// jobs and cleared once the job is terminal via Finish.
	checkpoint []byte
	// trace is the distributed-trace position propagated with the
	// submission (zero when the submitter carried no X-Sprout-Trace);
	// the worker's tracer continues it. Immutable after Create.
	trace obs.TraceContext
	// report is the per-job machine-readable run summary (nil until
	// done; a failed run may still carry a partial tracer).
	report *obs.RunReport
	// tracer is the job's private tracer, kept so the Chrome trace of
	// the run — successful or failed — can be fetched afterwards.
	tracer *obs.Tracer
}

// ID returns the job id (stable across restarts of a persistent store).
func (j *Job) ID() string { return j.id }

// ExplorationSummary is the status-surface digest of an exploration
// job: the winning order and how the sweep went.
type ExplorationSummary struct {
	// BestOrder is the winning net sequence (net ids).
	BestOrder []int `json:"best_order,omitempty"`
	// BestScore is the winner's current-weighted total resistance.
	BestScore float64 `json:"best_score,omitempty"`
	// OrdersTried and OrdersFailed count evaluated and failed orders.
	OrdersTried  int `json:"orders_tried"`
	OrdersFailed int `json:"orders_failed,omitempty"`
	// PrefixHits and PrefixMisses report the prefix-cache effectiveness
	// of the parallel explorer: misses count actual rail routes, hits
	// count memoized reuses (both 0 on the sequential path).
	PrefixHits   int64 `json:"prefix_hits,omitempty"`
	PrefixMisses int64 `json:"prefix_misses,omitempty"`
}

// Status is the JSON-facing snapshot of a job.
type Status struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Board string   `json:"board,omitempty"`
	// Exploration carries the order-sweep digest for exploration jobs
	// once the worker finished the sweep (nil otherwise).
	Exploration *ExplorationSummary `json:"exploration,omitempty"`
	// Deduped marks a submission that was answered from an existing job,
	// via its idempotency key or its canonical content hash.
	Deduped bool `json:"deduped,omitempty"`
	// Error and ErrorKind are set on failed and quarantined jobs.
	Error     string  `json:"error,omitempty"`
	ErrorKind ErrKind `json:"error_kind,omitempty"`
	// Attempts counts worker starts (1 for a job that ran once).
	Attempts int `json:"attempts,omitempty"`
	// Durations in milliseconds (0 until the phase completes).
	QueueMS float64 `json:"queue_ms,omitempty"`
	RunMS   float64 `json:"run_ms,omitempty"`
}

// JobSpec is the store-facing shape of one submission, assembled by the
// engine's Submit path.
type JobSpec struct {
	// IdemKey is the client idempotency key ("" = none).
	IdemKey string
	// Hash is the canonical content hash of the document ("" disables
	// content dedupe for this submission).
	Hash string
	// Raw is the canonical document encoding; the persistent store
	// appends it to the accept record so the job survives a crash.
	Raw []byte
	// Doc and Opt are the decoded request the worker consumes.
	Doc *boardio.Decoded
	Opt sprout.RouteOptions
	// Timeout is the per-job deadline; Explore selects the exploration
	// worker path.
	Timeout time.Duration
	Explore bool
	// Trace continues the submitter's distributed trace (zero = start a
	// fresh one when the job runs).
	Trace obs.TraceContext
}

// DedupeKind reports how Create matched a submission to an existing job.
type DedupeKind int

const (
	// DedupeNone: a fresh job was created.
	DedupeNone DedupeKind = iota
	// DedupeKey: the idempotency key had been seen before.
	DedupeKey
	// DedupeContent: a byte-different but canonically equivalent document
	// singleflighted onto an existing live job.
	DedupeContent
)

// JobStore is the job table behind the engine: idempotent creation,
// lifecycle transitions with terminal-once semantics, and snapshots for
// the HTTP surface. Two implementations exist: the in-memory memStore
// (PR 4 semantics — results live until the process exits) and the
// crash-safe persistStore (WAL + snapshot on disk; accepted jobs survive
// a SIGKILL and are re-enqueued on the next start).
//
// Every implementation must keep the terminal-once invariant: Finish
// transitions a job at most once, and late writers are dropped.
type JobStore interface {
	// Create registers a new queued job, or returns the existing one the
	// submission dedupes onto (dedupe != DedupeNone). A non-nil error
	// means the job could not be made durable and was not registered.
	Create(spec JobSpec, now time.Time) (j *Job, dedupe DedupeKind, err error)
	// Drop removes a job that was never accepted (queue full). Dropping
	// is not loss: the submitter got a 429 and knows to retry.
	Drop(j *Job)
	// Get returns the job by id (nil when unknown).
	Get(id string) *Job
	// SetRunning transitions a queued job to running and hands the worker
	// its payload; ok=false when the job already went terminal.
	SetRunning(j *Job, tracer *obs.Tracer, now time.Time) (doc *boardio.Decoded, opt sprout.RouteOptions, explore, ok bool)
	// NoteExploration records the sweep digest of an exploration job.
	NoteExploration(j *Job, ex *sprout.OrderExploration)
	// Finish transitions a job to its terminal state exactly once; the
	// return reports whether this call was the terminal transition.
	Finish(j *Job, report *obs.RunReport, err error, now time.Time) bool
	// NonTerminal snapshots every job not yet terminal.
	NonTerminal() []*Job
	// Status and Result snapshot a job for the HTTP layer.
	Status(j *Job) Status
	Result(j *Job) (*obs.RunReport, *obs.Tracer)
	// Recovered returns the jobs a restart found accepted but unfinished,
	// in original acceptance order; the engine re-enqueues them on Start.
	// Empty for the in-memory store.
	Recovered() []*Job
	// List snapshots every job in the given state (all jobs when state is
	// empty), in acceptance order.
	List(state JobState) []Status
	// Quarantined returns the jobs currently in quarantine, in acceptance
	// order. The engine sizes its queue so each has a requeue slot.
	Quarantined() []*Job
	// Quarantine force-transitions a non-terminal job into quarantine with
	// the given diagnostic; false when the job was already terminal.
	Quarantine(j *Job, reason string, now time.Time) bool
	// Requeue revives a quarantined job: back to queued with a fresh
	// attempt budget. Fails when the job is not quarantined or when the
	// transition could not be made durable.
	Requeue(j *Job, now time.Time) error
	// SaveCheckpoint durably records the job's latest exploration
	// checkpoint; Checkpoint returns the stored frame (nil when none).
	// Both are no-ops once the job is terminal.
	SaveCheckpoint(j *Job, frame []byte) error
	Checkpoint(j *Job) []byte
	// Close releases store resources (fsyncs and closes the WAL). The
	// in-memory store's Close is a no-op.
	Close() error
}

// memStore is the idempotent in-memory job table. It outlives the worker
// pool: results stay fetchable after the drain so clients can collect
// the outcome of every accepted job.
type memStore struct {
	mu     sync.Mutex
	prefix string
	next   int
	jobs   map[string]*Job
	byKey  map[string]string // idempotency key -> job id
	byHash map[string]string // canonical content hash -> job id
}

func newMemStore(prefix string) *memStore {
	return &memStore{prefix: prefix, jobs: map[string]*Job{}, byKey: map[string]string{}, byHash: map[string]string{}}
}

// jobID formats the id for the n-th job of this store. The optional
// prefix (Config.NodeName) makes ids unique across replicas, which the
// shard proxy's scatter-on-miss lookup relies on.
func (s *memStore) jobID(n int) string {
	if s.prefix != "" {
		return fmt.Sprintf("%s-job-%d", s.prefix, n)
	}
	return fmt.Sprintf("job-%d", n)
}

// jobSeq parses the sequence number back out of an id minted by jobID
// (ok=false for foreign ids). The persistent store uses it to restore
// the id counter from a replayed log.
func (s *memStore) jobSeq(id string) (int, bool) {
	rest, found := strings.CutPrefix(id, "job-")
	if s.prefix != "" {
		rest, found = strings.CutPrefix(id, s.prefix+"-job-")
	}
	if !found {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Create registers a new queued job, or returns the existing job this
// submission dedupes onto: by idempotency key first, else — only for
// keyless submissions — by canonical content hash. A submission that
// carries a fresh explicit key is honored as a distinct run even when
// its content matches an existing job. Failed jobs never absorb new
// submissions: their hash registration is cleared so an equivalent
// resubmission gets a fresh attempt.
func (s *memStore) Create(spec JobSpec, now time.Time) (j *Job, dedupe DedupeKind, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if spec.IdemKey != "" {
		if id, ok := s.byKey[spec.IdemKey]; ok {
			return s.jobs[id], DedupeKey, nil
		}
	} else if spec.Hash != "" {
		if id, ok := s.byHash[spec.Hash]; ok {
			return s.jobs[id], DedupeContent, nil
		}
	}
	s.next++
	j = &Job{
		id:        s.jobID(s.next),
		idemKey:   spec.IdemKey,
		hash:      spec.Hash,
		state:     StateQueued,
		board:     spec.Doc.Board.Name,
		submitted: now,
		doc:       spec.Doc,
		opt:       spec.Opt,
		raw:       spec.Raw,
		explore:   spec.Explore,
		timeout:   spec.Timeout,
		trace:     spec.Trace,
	}
	s.insertLocked(j)
	return j, DedupeNone, nil
}

// insertLocked registers a job in the tables. Callers hold s.mu.
func (s *memStore) insertLocked(j *Job) {
	s.jobs[j.id] = j
	if j.idemKey != "" {
		s.byKey[j.idemKey] = j.id
	}
	if j.hash != "" {
		if _, taken := s.byHash[j.hash]; !taken {
			s.byHash[j.hash] = j.id
		}
	}
}

// Drop removes a job that was never accepted (queue full).
func (s *memStore) Drop(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.id)
	if j.idemKey != "" {
		delete(s.byKey, j.idemKey)
	}
	if j.hash != "" && s.byHash[j.hash] == j.id {
		delete(s.byHash, j.hash)
	}
}

// Get returns the job by id (nil when unknown).
func (s *memStore) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// SetRunning transitions a queued job to running and hands the worker
// its payload. Returns ok=false when the job already reached a terminal
// state (e.g. failed by the drain sweep racing the worker), in which
// case the worker must not run it. The payload is read under the store
// lock so the worker never touches fields a finish may clear.
func (s *memStore) SetRunning(j *Job, tracer *obs.Tracer, now time.Time) (doc *boardio.Decoded, opt sprout.RouteOptions, explore, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state.Terminal() {
		return nil, sprout.RouteOptions{}, false, false
	}
	j.state = StateRunning
	j.started = now
	j.attempts++
	j.tracer = tracer
	return j.doc, j.opt, j.explore, true
}

// NoteExploration records the sweep digest of an exploration job before
// it goes terminal, so the status surface can report the winning order.
func (s *memStore) NoteExploration(j *Job, ex *sprout.OrderExploration) {
	sum := &ExplorationSummary{
		BestScore:    ex.BestScore,
		OrdersTried:  ex.Tried,
		OrdersFailed: len(ex.Failed),
		PrefixHits:   ex.Stats.PrefixHits,
		PrefixMisses: ex.Stats.PrefixMisses,
	}
	for _, id := range ex.BestOrder {
		sum.BestOrder = append(sum.BestOrder, int(id))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j.exploration = sum
}

// Finish transitions a job to its terminal state exactly once; late
// writers (a worker completing after the drain sweep already failed the
// job) are dropped, keeping the first terminal outcome authoritative.
func (s *memStore) Finish(j *Job, report *obs.RunReport, err error, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finishLocked(j, report, err, now)
}

func (s *memStore) finishLocked(j *Job, report *obs.RunReport, err error, now time.Time) bool {
	if j.state.Terminal() {
		return false
	}
	j.finished = now
	j.report = report
	// The decoded board is dead weight once the job is terminal; free it
	// so a long-lived server does not accumulate every board ever routed.
	// The checkpoint likewise: it only matters while the job can still run.
	j.doc = nil
	j.raw = nil
	j.checkpoint = nil
	if err != nil {
		j.state = StateFailed
		j.err = err
		j.kind = classify(err)
		// A failed job must not absorb equivalent resubmissions — clear
		// its content registration so the next one runs fresh.
		if j.hash != "" && s.byHash[j.hash] == j.id {
			delete(s.byHash, j.hash)
		}
	} else {
		j.state = StateDone
	}
	return true
}

// NonTerminal snapshots every job that has not reached a terminal state.
func (s *memStore) NonTerminal() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if !j.state.Terminal() {
			out = append(out, j)
		}
	}
	return out
}

// Status snapshots a job for the HTTP layer.
func (s *memStore) Status(j *Job) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

func (s *memStore) statusLocked(j *Job) Status {
	st := Status{ID: j.id, State: j.state, Board: j.board, Exploration: j.exploration, Attempts: j.attempts}
	if j.err != nil {
		st.Error = j.err.Error()
		st.ErrorKind = j.kind
	}
	if !j.started.IsZero() {
		st.QueueMS = float64(j.started.Sub(j.submitted).Nanoseconds()) / 1e6
		if !j.finished.IsZero() {
			st.RunMS = float64(j.finished.Sub(j.started).Nanoseconds()) / 1e6
		}
	} else if !j.finished.IsZero() {
		// Never started: failed straight from the queue (drain sweep).
		st.QueueMS = float64(j.finished.Sub(j.submitted).Nanoseconds()) / 1e6
	}
	return st
}

// Result returns the job's report and tracer (both may be nil).
func (s *memStore) Result(j *Job) (*obs.RunReport, *obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.report, j.tracer
}

// Recovered is empty for the in-memory store: nothing survives restart.
func (s *memStore) Recovered() []*Job { return nil }

// List snapshots every job in the given state (all when state is ""),
// in acceptance order — the sequence number embedded in the id, which
// persists across restarts of the durable store.
func (s *memStore) List(state JobState) []Status {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if state == "" || j.state == state {
			jobs = append(jobs, j)
		}
	}
	sort.Slice(jobs, func(a, b int) bool {
		na, _ := s.jobSeq(jobs[a].id)
		nb, _ := s.jobSeq(jobs[b].id)
		return na < nb
	})
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = s.statusLocked(j)
	}
	s.mu.Unlock()
	return out
}

// Quarantined returns the quarantined jobs in acceptance order.
func (s *memStore) Quarantined() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if j.state == StateQuarantined {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		na, _ := s.jobSeq(out[a].id)
		nb, _ := s.jobSeq(out[b].id)
		return na < nb
	})
	return out
}

// Quarantine force-transitions a non-terminal job into quarantine. Like
// a failure, a quarantined job must not absorb equivalent resubmissions,
// but unlike a failure it keeps its document so a requeue can re-run it.
func (s *memStore) Quarantine(j *Job, reason string, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantineLocked(j, reason, now)
}

func (s *memStore) quarantineLocked(j *Job, reason string, now time.Time) bool {
	if j.state.Terminal() {
		return false
	}
	j.state = StateQuarantined
	j.kind = KindPoisoned
	j.err = errors.New(reason)
	j.finished = now
	if j.hash != "" && s.byHash[j.hash] == j.id {
		delete(s.byHash, j.hash)
	}
	return true
}

// Requeue revives a quarantined job: back to queued with a cleared
// outcome and a fresh attempt budget. The stored checkpoint survives, so
// a requeued exploration job resumes instead of restarting.
func (s *memStore) Requeue(j *Job, now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requeueLocked(j, now)
}

func (s *memStore) requeueLocked(j *Job, now time.Time) error {
	if j.state != StateQuarantined {
		return fmt.Errorf("server: requeue %s: state is %q: %w", j.id, j.state, ErrNotQuarantined)
	}
	j.state = StateQueued
	j.attempts = 0
	j.err = nil
	j.kind = ""
	j.started = time.Time{}
	j.finished = time.Time{}
	return nil
}

// SaveCheckpoint records the job's latest exploration checkpoint.
func (s *memStore) SaveCheckpoint(j *Job, frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state.Terminal() {
		return nil
	}
	j.checkpoint = frame
	return nil
}

// Checkpoint returns the stored checkpoint frame (nil when none).
func (s *memStore) Checkpoint(j *Job) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.checkpoint
}

// Close is a no-op for the in-memory store.
func (s *memStore) Close() error { return nil }
