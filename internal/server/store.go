package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
	"sprout/internal/sparse"
)

// JobState is the lifecycle state of one routing job.
type JobState string

const (
	// StateQueued: accepted by admission control, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is routing the board.
	StateRunning JobState = "running"
	// StateDone: terminal, result available.
	StateDone JobState = "done"
	// StateFailed: terminal, the job ended with a typed error.
	StateFailed JobState = "failed"
)

// Terminal reports whether the state is final. Every accepted job must
// reach a terminal state — that is the server's zero-loss invariant,
// asserted by the chaos test.
func (s JobState) Terminal() bool { return s == StateDone || s == StateFailed }

// ErrKind classifies a job failure for the HTTP layer; the mapping to
// client-visible status codes is the DESIGN "Failure semantics" matrix.
type ErrKind string

const (
	// KindDeadline: the per-job deadline expired (504).
	KindDeadline ErrKind = "deadline"
	// KindShutdown: the server drained or cancelled the job while
	// shutting down (503).
	KindShutdown ErrKind = "shutdown"
	// KindPanic: a contained internal panic (500).
	KindPanic ErrKind = "panic"
	// KindSolve: every rung of the solver fallback ladder failed (500).
	KindSolve ErrKind = "solve"
	// KindInternal: any other routing failure (500).
	KindInternal ErrKind = "internal"
)

// classify maps a job error to its ErrKind. Order matters: shutdown and
// deadline are checked before the generic unwrap chains.
func classify(err error) ErrKind {
	switch {
	case errors.Is(err, sprout.ErrShuttingDown), errors.Is(err, context.Canceled):
		// Only the server cancels a job context, and it only does so while
		// draining; a bare Canceled is therefore a shutdown casualty.
		return KindShutdown
	case errors.Is(err, context.DeadlineExceeded):
		return KindDeadline
	}
	var pe *sprout.PanicError
	if errors.As(err, &pe) {
		return KindPanic
	}
	var se *sparse.SolveError
	if errors.As(err, &se) {
		return KindSolve
	}
	return KindInternal
}

// Job is one accepted routing request and its outcome. Fields are
// written under the store lock; callers receive copies via Status.
type Job struct {
	id      string
	idemKey string
	state   JobState
	board   string

	submitted time.Time
	started   time.Time
	finished  time.Time

	err  error
	kind ErrKind

	// doc and opt are the decoded request, consumed by the worker.
	doc *boardio.Decoded
	opt sprout.RouteOptions
	// explore marks an order-exploration job (worker calls the explore
	// function instead of the route function).
	explore bool
	// exploration summarizes a finished exploration job for the status
	// surface (nil for plain routing jobs).
	exploration *ExplorationSummary
	// timeout is the per-job deadline.
	timeout time.Duration
	// report is the per-job machine-readable run summary (nil until
	// done; a failed run may still carry a partial tracer).
	report *obs.RunReport
	// tracer is the job's private tracer, kept so the Chrome trace of
	// the run — successful or failed — can be fetched afterwards.
	tracer *obs.Tracer
}

// ExplorationSummary is the status-surface digest of an exploration
// job: the winning order and how the sweep went.
type ExplorationSummary struct {
	// BestOrder is the winning net sequence (net ids).
	BestOrder []int `json:"best_order,omitempty"`
	// BestScore is the winner's current-weighted total resistance.
	BestScore float64 `json:"best_score,omitempty"`
	// OrdersTried and OrdersFailed count evaluated and failed orders.
	OrdersTried  int `json:"orders_tried"`
	OrdersFailed int `json:"orders_failed,omitempty"`
	// PrefixHits and PrefixMisses report the prefix-cache effectiveness
	// of the parallel explorer: misses count actual rail routes, hits
	// count memoized reuses (both 0 on the sequential path).
	PrefixHits   int64 `json:"prefix_hits,omitempty"`
	PrefixMisses int64 `json:"prefix_misses,omitempty"`
}

// Status is the JSON-facing snapshot of a job.
type Status struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Board string   `json:"board,omitempty"`
	// Exploration carries the order-sweep digest for exploration jobs
	// once the worker finished the sweep (nil otherwise).
	Exploration *ExplorationSummary `json:"exploration,omitempty"`
	// Deduped marks a submission that was answered from an existing job
	// via its idempotency key.
	Deduped bool `json:"deduped,omitempty"`
	// Error and ErrorKind are set on failed jobs.
	Error     string  `json:"error,omitempty"`
	ErrorKind ErrKind `json:"error_kind,omitempty"`
	// Durations in milliseconds (0 until the phase completes).
	QueueMS float64 `json:"queue_ms,omitempty"`
	RunMS   float64 `json:"run_ms,omitempty"`
}

// store is the idempotent in-memory job table. It outlives the worker
// pool: results stay fetchable after the drain so clients can collect
// the outcome of every accepted job.
type store struct {
	mu    sync.Mutex
	next  int
	jobs  map[string]*Job
	byKey map[string]string // idempotency key -> job id
}

func newStore() *store {
	return &store{jobs: map[string]*Job{}, byKey: map[string]string{}}
}

// create registers a new queued job, or returns the existing one when
// the idempotency key has been seen before (existing=true). The caller
// must remove the job with drop if admission subsequently rejects it.
func (s *store) create(idemKey string, doc *boardio.Decoded, opt sprout.RouteOptions, timeout time.Duration, explore bool, now time.Time) (j *Job, existing bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idemKey != "" {
		if id, ok := s.byKey[idemKey]; ok {
			return s.jobs[id], true
		}
	}
	s.next++
	j = &Job{
		id:        fmt.Sprintf("job-%d", s.next),
		idemKey:   idemKey,
		state:     StateQueued,
		board:     doc.Board.Name,
		submitted: now,
		doc:       doc,
		opt:       opt,
		explore:   explore,
		timeout:   timeout,
	}
	s.jobs[j.id] = j
	if idemKey != "" {
		s.byKey[idemKey] = j.id
	}
	return j, false
}

// drop removes a job that was never accepted (queue full). Dropping is
// not loss: the submitter got a 429 and knows to retry.
func (s *store) drop(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.id)
	if j.idemKey != "" {
		delete(s.byKey, j.idemKey)
	}
}

// get returns the job by id (nil when unknown).
func (s *store) get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// setRunning transitions a queued job to running and hands the worker
// its payload. Returns ok=false when the job already reached a terminal
// state (e.g. failed by the drain sweep racing the worker), in which
// case the worker must not run it. The payload is read under the store
// lock so the worker never touches fields a finish may clear.
func (s *store) setRunning(j *Job, tracer *obs.Tracer, now time.Time) (doc *boardio.Decoded, opt sprout.RouteOptions, explore, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state.Terminal() {
		return nil, sprout.RouteOptions{}, false, false
	}
	j.state = StateRunning
	j.started = now
	j.tracer = tracer
	return j.doc, j.opt, j.explore, true
}

// noteExploration records the sweep digest of an exploration job before
// it goes terminal, so the status surface can report the winning order.
func (s *store) noteExploration(j *Job, ex *sprout.OrderExploration) {
	sum := &ExplorationSummary{
		BestScore:    ex.BestScore,
		OrdersTried:  ex.Tried,
		OrdersFailed: len(ex.Failed),
		PrefixHits:   ex.Stats.PrefixHits,
		PrefixMisses: ex.Stats.PrefixMisses,
	}
	for _, id := range ex.BestOrder {
		sum.BestOrder = append(sum.BestOrder, int(id))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j.exploration = sum
}

// finish transitions a job to its terminal state exactly once; late
// writers (a worker completing after the drain sweep already failed the
// job) are dropped, keeping the first terminal outcome authoritative.
func (s *store) finish(j *Job, report *obs.RunReport, err error, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.finished = now
	j.report = report
	// The decoded board is dead weight once the job is terminal; free it
	// so a long-lived server does not accumulate every board ever routed.
	j.doc = nil
	if err != nil {
		j.state = StateFailed
		j.err = err
		j.kind = classify(err)
	} else {
		j.state = StateDone
	}
	return true
}

// nonTerminal snapshots every job that has not reached a terminal state.
func (s *store) nonTerminal() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if !j.state.Terminal() {
			out = append(out, j)
		}
	}
	return out
}

// status snapshots a job for the HTTP layer.
func (s *store) status(j *Job) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{ID: j.id, State: j.state, Board: j.board, Exploration: j.exploration}
	if j.err != nil {
		st.Error = j.err.Error()
		st.ErrorKind = j.kind
	}
	if !j.started.IsZero() {
		st.QueueMS = float64(j.started.Sub(j.submitted).Nanoseconds()) / 1e6
		if !j.finished.IsZero() {
			st.RunMS = float64(j.finished.Sub(j.started).Nanoseconds()) / 1e6
		}
	} else if !j.finished.IsZero() {
		// Never started: failed straight from the queue (drain sweep).
		st.QueueMS = float64(j.finished.Sub(j.submitted).Nanoseconds()) / 1e6
	}
	return st
}

// result returns the job's report and tracer (both may be nil).
func (s *store) result(j *Job) (*obs.RunReport, *obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.report, j.tracer
}
