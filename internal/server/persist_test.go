package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/faultinject"
	"sprout/internal/obs"
)

// specFor decodes a board document into the JobSpec the engine's Submit
// path would build, so store tests exercise the same shapes.
func specFor(t testing.TB, doc []byte, key string) JobSpec {
	t.Helper()
	dec, err := boardio.Decode(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	raw, hash := canonicalSubmission(dec, SubmitOptions{})
	return JobSpec{
		IdemKey: key,
		Hash:    hash,
		Raw:     raw,
		Doc:     dec,
		Opt: sprout.RouteOptions{
			Layer:   dec.RoutingLayer,
			Budgets: dec.Budgets,
			Config:  dec.Config,
		},
		Timeout: time.Minute,
	}
}

// TestPersistentStoreRecovery is the basic crash round-trip: a store
// with a finished job, a running job, and a queued job is reopened, and
// recovery serves the finished result while re-queueing the other two
// in acceptance order.
func TestPersistentStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	doc := encodeBoardDoc(t)
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ja, _, err := st.Create(specFor(t, doc, "a"), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	jb, _, err := st.Create(specFor(t, doc, "b"), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	jc, _, err := st.Create(specFor(t, doc, "c"), time.Now())
	if err != nil {
		t.Fatal(err)
	}

	st.SetRunning(ja, obs.New(), time.Now())
	if !st.Finish(ja, &obs.RunReport{Tool: "persist-test"}, nil, time.Now()) {
		t.Fatal("finish was not the terminal transition")
	}
	st.SetRunning(jb, obs.New(), time.Now()) // running at "crash" time
	_ = jc                                   // still queued
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()

	// The finished job kept its terminal state and its report.
	got := st2.Get(ja.ID())
	if got == nil {
		t.Fatalf("finished job %s lost across restart", ja.ID())
	}
	if s := st2.Status(got); s.State != StateDone {
		t.Fatalf("finished job state = %s, want done", s.State)
	}
	rep, _ := st2.Result(got)
	if rep == nil || rep.Tool != "persist-test" {
		t.Fatalf("finished job report = %+v, want the persisted one", rep)
	}

	// The running and queued jobs came back queued, in acceptance order.
	rec := st2.Recovered()
	if len(rec) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec))
	}
	if rec[0].ID() != jb.ID() || rec[1].ID() != jc.ID() {
		t.Fatalf("recovered order = [%s %s], want [%s %s]", rec[0].ID(), rec[1].ID(), jb.ID(), jc.ID())
	}
	for _, j := range rec {
		if s := st2.Status(j); s.State != StateQueued {
			t.Fatalf("recovered job %s state = %s, want queued", j.ID(), s.State)
		}
		if j.doc == nil {
			t.Fatalf("recovered job %s has no decoded document to re-run", j.ID())
		}
	}
}

// TestPersistentStoreDedupeSurvivesRestart: idempotency keys replayed
// from the log keep deduping after a restart.
func TestPersistentStoreDedupeSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	doc := encodeBoardDoc(t)
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j1, _, err := st.Create(specFor(t, doc, "dup"), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	j2, dedupe, err := st2.Create(specFor(t, doc, "dup"), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if dedupe != DedupeKey || j2.ID() != j1.ID() {
		t.Fatalf("post-restart create = (%s, %v), want key-dedupe onto %s", j2.ID(), dedupe, j1.ID())
	}
}

// TestWALTornTailTruncated appends garbage to a live WAL and asserts
// the next open truncates it, counts it, and recovers every intact
// record — corruption is a logged event, never a fatal one.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	doc := encodeBoardDoc(t)
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"t1", "t2", "t3"} {
		if _, _, err := st.Create(specFor(t, doc, key), time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without the closing compaction, leaving the accepts in the
	// WAL, then damage the tail the way a torn write would.
	st.Kill()
	st.Close()
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tr := obs.New()
	st2, err := OpenStore(dir, StoreOptions{Tracer: tr})
	if err != nil {
		t.Fatalf("open over torn tail failed: %v (must truncate, not fail)", err)
	}
	defer st2.Close()
	if got := len(st2.Recovered()); got != 3 {
		t.Fatalf("recovered %d jobs, want all 3 intact ones", got)
	}
	counters, _ := tr.MetricsSnapshot()
	if counters["wal.truncated_tail"] != 1 {
		t.Fatalf("wal.truncated_tail = %d, want 1", counters["wal.truncated_tail"])
	}
	if counters["wal.recovered_jobs"] != 3 {
		t.Fatalf("wal.recovered_jobs = %d, want 3", counters["wal.recovered_jobs"])
	}
}

// TestWALCorruptFaultSite arms the corrupt-tail fault: the store reports
// the accept durable but tears the record on disk. Recovery must
// truncate the tear and carry on with the intact prefix.
func TestWALCorruptFaultSite(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	dir := t.TempDir()
	doc := encodeBoardDoc(t)
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Tear the third accept record (appends 1 and 2 are the first jobs).
	faultinject.Arm(faultinject.SiteWALCorrupt, 3, func() error { return os.ErrInvalid })
	for _, key := range []string{"c1", "c2", "c3"} {
		if _, _, err := st.Create(specFor(t, doc, key), time.Now()); err != nil {
			t.Fatalf("create %s: %v (a torn write reports success)", key, err)
		}
	}
	st.Close()
	faultinject.Reset()

	tr := obs.New()
	st2, err := OpenStore(dir, StoreOptions{Tracer: tr})
	if err != nil {
		t.Fatalf("open over injected tear failed: %v", err)
	}
	defer st2.Close()
	if got := len(st2.Recovered()); got != 2 {
		t.Fatalf("recovered %d jobs, want the 2 before the tear", got)
	}
	counters, _ := tr.MetricsSnapshot()
	if counters["wal.truncated_tail"] != 1 {
		t.Fatalf("wal.truncated_tail = %d, want 1", counters["wal.truncated_tail"])
	}
}

// TestWALWriteFaultRejectsSubmission: a disk fault on the accept path
// must reject the submission (no durability, no 202) and unwind the
// in-memory registration so a retry can land cleanly.
func TestWALWriteFaultRejectsSubmission(t *testing.T) {
	for _, site := range []string{faultinject.SiteWALWrite, faultinject.SiteWALSync} {
		t.Run(site, func(t *testing.T) {
			faultinject.Reset()
			defer faultinject.Reset()
			dir := t.TempDir()
			doc := encodeBoardDoc(t)
			st, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			faultinject.Arm(site, 0, func() error { return os.ErrClosed })
			j, _, err := st.Create(specFor(t, doc, "disk-fault"), time.Now())
			if err == nil {
				t.Fatalf("create succeeded through a %s fault; job %v", site, j.ID())
			}
			faultinject.Disarm(site)
			if st.Get("job-1") != nil {
				t.Fatal("failed accept left a registered job behind")
			}
			// The retry lands and reuses the sequence cleanly.
			j2, dedupe, err := st.Create(specFor(t, doc, "disk-fault"), time.Now())
			if err != nil || dedupe != DedupeNone {
				t.Fatalf("retry after disk fault = (%v, %v), want a fresh accept", err, dedupe)
			}
			if s := st.Status(j2); s.State != StateQueued {
				t.Fatalf("retried job state = %s, want queued", s.State)
			}
		})
	}
}

// TestSnapshotCompactionBoundsWAL: the WAL folds into the snapshot every
// SnapshotEvery appends, so the log stays short no matter how many jobs
// flow through.
func TestSnapshotCompactionBoundsWAL(t *testing.T) {
	dir := t.TempDir()
	doc := encodeBoardDoc(t)
	tr := obs.New()
	st, err := OpenStore(dir, StoreOptions{SnapshotEvery: 4, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		j, _, err := st.Create(specFor(t, doc, fmt.Sprintf("snap-%d", i)), time.Now())
		if err != nil {
			t.Fatal(err)
		}
		st.SetRunning(j, obs.New(), time.Now())
		st.Finish(j, &obs.RunReport{Tool: "compact"}, nil, time.Now())
	}
	counters, _ := tr.MetricsSnapshot()
	// One compaction at open plus at least one triggered by the append
	// countdown (6 jobs x 3 records > 4).
	if counters["wal.compactions"] < 2 {
		t.Fatalf("wal.compactions = %d, want >= 2", counters["wal.compactions"])
	}
	st.Close()

	// Everything survives the compacted form.
	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(st2.Recovered()) != 0 {
		t.Fatalf("recovered %d jobs, want 0 (all terminal)", len(st2.Recovered()))
	}
	for i := 1; i <= 6; i++ {
		j := st2.Get(st2.mem.jobID(i))
		if j == nil {
			t.Fatalf("job %d lost across compaction", i)
		}
		if rep, _ := st2.Result(j); rep == nil || rep.Tool != "compact" {
			t.Fatalf("job %d report lost across compaction", i)
		}
	}
}

// FuzzWALDecode hammers the frame decoder with arbitrary bytes: it must
// never panic, the valid offset must stay in bounds, and every record it
// does return must re-encode into a frame the decoder accepts again.
func FuzzWALDecode(f *testing.F) {
	rec, err := encodeWALRecord(&walRecord{T: walAccept, ID: "job-1", Key: "k", Board: "b"})
	if err != nil {
		f.Fatal(err)
	}
	fin, err := encodeWALRecord(&walRecord{T: walFinish, ID: "job-1", Err: "boom", Kind: KindInternal})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rec)
	f.Add(append(append([]byte{}, rec...), fin...))
	f.Add(append(append([]byte{}, rec...), fin[:len(fin)/2]...)) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3}) // implausible length
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := decodeWAL(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d out of bounds [0,%d]", valid, len(data))
		}
		// The valid prefix must re-decode to exactly the same records —
		// truncation at the reported offset loses nothing intact.
		again, validAgain := decodeWAL(data[:valid])
		if len(again) != len(recs) || validAgain != valid {
			t.Fatalf("re-decode of valid prefix: %d records/%d bytes, want %d/%d",
				len(again), validAgain, len(recs), valid)
		}
		for _, r := range recs {
			buf, err := encodeWALRecord(r)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
			rt, n := decodeWAL(buf)
			if len(rt) != 1 || n != len(buf) {
				t.Fatalf("re-encoded record does not round-trip: %d records, %d/%d bytes", len(rt), n, len(buf))
			}
		}
	})
}
