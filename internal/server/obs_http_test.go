package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
)

// chromeDoc is the slice of the Chrome trace-event JSON the tests
// inspect.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func getChromeTrace(t *testing.T, url string) chromeDoc {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	var doc chromeDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace from %s is not Chrome JSON: %v", url, err)
	}
	return doc
}

// waitTerminal polls a job's status through any replica until it reaches
// a terminal state.
func waitTerminal(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && st.State.Terminal() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
}

// TestShardProxyTraceStitchAcrossFailover is the headline acceptance
// test: a job submitted to replica A whose ring owner is dead fails over
// to replica B, and afterwards EITHER replica serves one stitched Chrome
// trace in which B's Job span nests (via a cross-replica flow arrow)
// under A's ShardSubmit hop span.
func TestShardProxyTraceStitchAcrossFailover(t *testing.T) {
	doc := encodeBoardDoc(t)
	urls, _, _, servers := shardProxyFixture(t, 3)
	ring := newHashRing(urls)

	// A key whose owner is urls[2] (to be killed) and whose first
	// failover target is urls[1] — so A=r1 proxies and B=r2 executes.
	var key string
	for i := 0; key == "" && i < 100000; i++ {
		k := fmt.Sprintf("failover-trace-%d", i)
		if seq := ring.sequence(k); seq[0] == urls[2] && seq[1] == urls[1] {
			key = k
		}
	}
	if key == "" {
		t.Fatal("no key with the wanted owner/failover layout")
	}
	servers[2].Close()

	req, err := http.NewRequest(http.MethodPost, urls[0]+"/v1/jobs", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("failover submit = %d (%+v)", resp.StatusCode, st)
	}
	if !strings.HasPrefix(st.ID, "r2-") {
		t.Fatalf("job %s did not fail over to r2", st.ID)
	}
	waitTerminal(t, urls[0], st.ID)

	// The raw parts: the proxy's hop spans from r1 plus the job tracer
	// from r2, all under one propagated trace id.
	presp, err := http.Get(urls[1] + "/v1/jobs/" + st.ID + "/traceparts")
	if err != nil {
		t.Fatal(err)
	}
	var localParts []obs.TracePart
	if err := json.NewDecoder(presp.Body).Decode(&localParts); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	aresp, err := http.Get(urls[0] + "/v1/jobs/" + st.ID + "/traceparts")
	if err != nil {
		t.Fatal(err)
	}
	var proxyParts []obs.TracePart
	if err := json.NewDecoder(aresp.Body).Decode(&proxyParts); err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	all := append(append([]obs.TracePart(nil), localParts...), proxyParts...)
	if len(all) < 2 {
		t.Fatalf("want parts from both replicas, got %d", len(all))
	}
	for _, p := range all {
		if p.TraceID != all[0].TraceID {
			t.Fatalf("parts disagree on the trace id: %s vs %s", p.TraceID, all[0].TraceID)
		}
	}
	stitched, err := obs.Stitch(all)
	if err != nil {
		t.Fatal(err)
	}
	var hopID uint64
	for _, s := range stitched.Spans {
		if s.Name == "ShardSubmit" && s.Replica == "r1" && s.Err == "" {
			hopID = s.ID
		}
	}
	if hopID == 0 {
		t.Fatalf("no successful ShardSubmit hop span from r1 in %+v", stitched.Spans)
	}
	foundJob := false
	for _, s := range stitched.Spans {
		if s.Name == "Job" && s.Replica == "r2" {
			foundJob = true
			if !s.Remote || s.Parent != hopID {
				t.Fatalf("Job span must nest under r1's hop span: parent=%d remote=%v want parent=%d",
					s.Parent, s.Remote, hopID)
			}
		}
	}
	if !foundJob {
		t.Fatal("no Job span from the executing replica")
	}

	// The rendered trace is identical in structure from either replica:
	// two process rows, the hop flow arrow, the Job on r2's row.
	for _, base := range []string{urls[0], urls[1]} {
		doc := getChromeTrace(t, base+"/v1/jobs/"+st.ID+"/trace")
		pids := map[string]int{}
		spanPID := map[string]int{}
		flows := 0
		for _, ev := range doc.TraceEvents {
			switch {
			case ev.Name == "process_name" && ev.Ph == "M":
				pids[ev.Args["name"].(string)] = ev.PID
			case ev.Name == "hop" && (ev.Ph == "s" || ev.Ph == "f"):
				flows++
			case ev.Ph == "X":
				spanPID[ev.Name] = ev.PID
			}
		}
		if pids["r1"] == 0 || pids["r2"] == 0 {
			t.Fatalf("trace from %s lacks a process row per replica: %v", base, pids)
		}
		if flows < 2 {
			t.Fatalf("trace from %s draws no cross-replica flow arrow", base)
		}
		if spanPID["Job"] != pids["r2"] || spanPID["ShardSubmit"] != pids["r1"] {
			t.Fatalf("trace from %s misattributes spans: %v vs %v", base, spanPID, pids)
		}
	}
}

// TestMetricsPrometheusStageQuantiles runs a real board through the full
// pipeline and asserts the Prometheus exposition carries p50/p95/p99
// companions for every stage histogram, under replica/shard labels.
func TestMetricsPrometheusStageQuantiles(t *testing.T) {
	doc := encodeBoardDoc(t)
	tracer := obs.New(obs.WithReplica("m1"))
	eng := New(Config{Workers: 2, QueueDepth: 8, NodeName: "m1", Shard: "s1", Tracer: tracer})
	eng.Start()
	t.Cleanup(func() { _ = eng.Shutdown(context.Background()) })
	ts := httptest.NewServer(eng.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitTerminal(t, ts.URL, st.ID)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	if !strings.Contains(text, `replica="m1"`) || !strings.Contains(text, `shard="s1"`) {
		t.Fatal("exposition lacks the replica/shard labels")
	}
	stageFams := regexp.MustCompile(`(?m)^# TYPE (sprout_stage_\w+) histogram$`).FindAllStringSubmatch(text, -1)
	if len(stageFams) == 0 {
		t.Fatalf("no stage histograms on /metrics; a real routing job must surface stage latency\n%s", text)
	}
	for _, m := range stageFams {
		for _, q := range []string{"_p50", "_p95", "_p99"} {
			if !strings.Contains(text, "# TYPE "+m[1]+q+" gauge") {
				t.Fatalf("stage histogram %s lacks its %s companion gauge", m[1], q)
			}
		}
	}
	for _, fam := range []string{
		"sprout_server_jobs_accepted_total", "sprout_server_job_run_ms_bucket",
		"sprout_server_accepting", "sprout_server_workers",
	} {
		if !strings.Contains(text, fam) {
			t.Fatalf("exposition lacks %s", fam)
		}
	}

	// The JSON view survives under ?format=json and carries the same
	// stage histograms with ordered quantiles.
	jresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var doc2 Metrics
	if err := json.NewDecoder(jresp.Body).Decode(&doc2); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	stages := 0
	for name, h := range doc2.Histograms {
		if strings.HasPrefix(name, obs.MStagePrefix) {
			stages++
			if h.Count == 0 || h.P50 > h.P95 || h.P95 > h.P99 {
				t.Fatalf("stage histogram %s has disordered quantiles: %+v", name, h)
			}
		}
	}
	if stages == 0 {
		t.Fatal("JSON metrics lack stage histograms")
	}
}

// TestMetricsConcurrentScrapes hammers both exposition formats while
// jobs run — the -race harness for the scrape path.
func TestMetricsConcurrentScrapes(t *testing.T) {
	doc := encodeBoardDoc(t)
	eng, _ := newTestReplica(t, "scrape")
	ts := httptest.NewServer(eng.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				url := ts.URL + "/metrics"
				if i%2 == 1 {
					url += "?format=json"
				}
				resp, err := http.Get(url)
				if err != nil {
					errc <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("scrape %s = %d", url, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(doc))
				if err != nil {
					errc <- err
					return
				}
				req.Header.Set("Idempotency-Key", fmt.Sprintf("scrape-%d-%d", g, i))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errc <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestMetricsScrapeDuringDrain: a scrape landing mid-drain answers
// promptly and must not hold the drain past its deadline.
func TestMetricsScrapeDuringDrain(t *testing.T) {
	release := make(chan struct{})
	tr := obs.New()
	eng := New(Config{Workers: 1, QueueDepth: 4, NodeName: "drainer", Tracer: tr})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		select {
		case <-release:
			return &sprout.BoardResult{Report: &obs.RunReport{}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	eng.Start()
	ts := httptest.NewServer(eng.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(encodeBoardDoc(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 0; eng.InFlight() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { drained <- eng.Shutdown(dctx) }()

	// Mid-drain: the scrape answers, reports not-accepting, and readyz
	// flips — the probes a rolling restart relies on.
	scrapeStart := time.Now()
	mresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if m.Accepting {
		t.Fatal("mid-drain scrape reports accepting=true")
	}
	if d := time.Since(scrapeStart); d > 2*time.Second {
		t.Fatalf("mid-drain scrape took %v; it must not wait for the drain", d)
	}
	presp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("mid-drain Prometheus scrape = %d", presp.StatusCode)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain failed after the job released: %v", err)
	}
}

// TestFleetMetricsScatterGather: /v1/fleet/metrics on any replica rows
// up the whole ring, keeping a visible row (with the error) for a dead
// peer instead of dropping it.
func TestFleetMetricsScatterGather(t *testing.T) {
	urls, engines, tracers, servers := shardProxyFixture(t, 3)
	servers[2].Close()

	resp, err := http.Get(urls[0] + "/v1/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet metrics = %d", resp.StatusCode)
	}
	var fleet FleetMetrics
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet.Replicas) != 3 {
		t.Fatalf("fleet view has %d rows, want 3 (self + 2 peers)", len(fleet.Replicas))
	}
	var selfRow, liveRow, deadRow int
	for _, row := range fleet.Replicas {
		switch {
		case row.Self:
			selfRow++
			if row.Metrics == nil || row.Replica != urls[0] {
				t.Fatalf("self row malformed: %+v", row)
			}
		case row.Error != "":
			deadRow++
			if row.Metrics != nil {
				t.Fatalf("dead row carries metrics: %+v", row)
			}
		case row.Metrics != nil:
			liveRow++
			if !row.Metrics.Accepting {
				t.Fatalf("live peer row not accepting: %+v", row)
			}
		}
	}
	if selfRow != 1 || liveRow != 1 || deadRow != 1 {
		t.Fatalf("rows = self %d / live %d / dead %d, want 1/1/1", selfRow, liveRow, deadRow)
	}
	counters, hists := tracers[0].MetricsSnapshot()
	if counters[obs.MFleetPeerErrors] < 1 {
		t.Fatalf("fleet.peer_errors = %d, want >= 1 for the dead peer", counters[obs.MFleetPeerErrors])
	}
	if hists[obs.MFleetScrapeMS].Count < 1 {
		t.Fatal("fleet.scrape_ms recorded nothing for the live peer")
	}
	_ = engines
}

// TestClientRetryTelemetry: the submit client reports attempts used,
// backoff slept and Retry-After hints honored into its tracer.
func TestClientRetryTelemetry(t *testing.T) {
	var mu sync.Mutex
	requests := 0
	sawTrace := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		requests++
		n := requests
		sawTrace = sawTrace || r.Header.Get(obs.TraceHeaderName) != ""
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		writeJSON(w, http.StatusAccepted, Status{ID: "j-1", State: StateQueued})
	}))
	t.Cleanup(ts.Close)

	tr := obs.New(obs.WithReplica("cli"))
	c := &Client{Base: ts.URL, MaxAttempts: 3, Tracer: tr}
	if _, err := c.Submit(context.Background(), []byte(`{}`), "retry-key"); err != nil {
		t.Fatalf("submit should succeed on the second attempt: %v", err)
	}
	counters, hists := tr.MetricsSnapshot()
	if counters[obs.MClientRetryAfterUsed] != 1 {
		t.Fatalf("retry_after_honored = %d, want 1", counters[obs.MClientRetryAfterUsed])
	}
	att := hists[obs.MClientSubmitAttempts]
	if att.Count != 1 || att.Sum != 2 {
		t.Fatalf("attempts histogram = %+v, want one submission of 2 attempts", att)
	}
	bo := hists[obs.MClientSubmitBackoffMS]
	if bo.Count != 1 || bo.Sum < 1000 {
		t.Fatalf("backoff histogram = %+v, want one >=1000ms sleep (the Retry-After hint)", bo)
	}
	if !sawTrace {
		t.Fatal("client with a tracer must propagate X-Sprout-Trace")
	}

	// Transport-level failures count separately.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	tr2 := obs.New()
	c2 := &Client{Base: deadURL, MaxAttempts: 2, BaseBackoff: time.Millisecond, Tracer: tr2}
	if _, err := c2.Submit(context.Background(), []byte(`{}`), "gone"); err == nil {
		t.Fatal("submit to a dead server must fail")
	}
	counters2, _ := tr2.MetricsSnapshot()
	if counters2[obs.MClientTransportRetries] != 2 {
		t.Fatalf("transport_retries = %d, want 2 (both attempts refused)", counters2[obs.MClientTransportRetries])
	}
}

// syncWriter serializes log writes from the engine's goroutines.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.String()
}

// TestAccessLogLines: every request produces exactly one structured
// access-log line; API routes log at Info, probe routes at Debug.
func TestAccessLogLines(t *testing.T) {
	logBuf := &syncWriter{}
	tr := obs.New()
	eng := New(Config{
		Workers: 1, QueueDepth: 4, NodeName: "logger",
		Tracer: tr, Log: obs.NewLogger(logBuf, obs.Verbose),
	})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		return &sprout.BoardResult{Report: &obs.RunReport{}}, nil
	}
	eng.Start()
	t.Cleanup(func() { _ = eng.Shutdown(context.Background()) })
	ts := httptest.NewServer(eng.Handler())
	t.Cleanup(ts.Close)

	traceID := obs.NewTraceID()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(encodeBoardDoc(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeaderName, obs.TraceContext{TraceID: traceID, Parent: 1}.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()

	logs := logBuf.String()
	var submitLine, healthLine, statusLine string
	for _, line := range strings.Split(logs, "\n") {
		if !strings.Contains(line, `msg="http request"`) {
			continue
		}
		switch {
		case strings.Contains(line, "route=submit"):
			submitLine = line
		case strings.Contains(line, "route=healthz"):
			healthLine = line
		case strings.Contains(line, "route=status"):
			statusLine = line
		}
	}
	if submitLine == "" || healthLine == "" || statusLine == "" {
		t.Fatalf("missing access-log lines:\n%s", logs)
	}
	for _, want := range []string{"level=INFO", "method=POST", "status=202", "dur_ms=", "trace=" + traceID} {
		if !strings.Contains(submitLine, want) {
			t.Fatalf("submit line %q lacks %q", submitLine, want)
		}
	}
	if !strings.Contains(healthLine, "level=DEBUG") {
		t.Fatalf("probe route must log at Debug, got %q", healthLine)
	}
	if !strings.Contains(statusLine, "job="+st.ID) {
		t.Fatalf("status line %q lacks the job id", statusLine)
	}
}
