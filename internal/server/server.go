// Package server is sproutd's long-running routing service: a bounded
// worker pool with admission control in front of the sprout facade,
// per-job isolation (deadline-derived contexts, panic containment,
// per-job run reports and traces), an idempotent in-memory job store,
// and chaos-tested graceful shutdown that drains in-flight work under a
// bounded deadline.
//
// The package deliberately splits the engine (this file: pool,
// admission, lifecycle) from the HTTP surface (http.go) so the
// robustness invariants — every accepted job reaches a terminal state,
// rejection is typed, shutdown is bounded — are testable without a
// socket.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
)

// Config tunes the engine. The zero value is usable: Normalize fills
// conservative defaults.
type Config struct {
	// Workers is the number of concurrent routing jobs (in-flight limit).
	Workers int
	// Store is the job table (nil = in-memory; pass OpenStore's result
	// for the crash-safe persistent store). The engine re-enqueues the
	// store's Recovered jobs on Start. Closing the store after Shutdown
	// is the creator's responsibility.
	Store JobStore
	// NodeName prefixes job ids minted by the default in-memory store
	// (replica identity for sharded deployments; a persistent store takes
	// its name from StoreOptions instead).
	NodeName string
	// Shard labels this replica's Prometheus series with its shard
	// identity ("" = NodeName).
	Shard string
	// FleetTimeout bounds each per-peer scrape of the fleet-metrics
	// scatter-gather (default 2s).
	FleetTimeout time.Duration
	// QueueDepth bounds the admission queue; a submission that finds the
	// queue full is rejected with sprout.ErrOverloaded (HTTP 429).
	QueueDepth int
	// JobTimeout is the default per-job deadline; MaxJobTimeout caps a
	// client-requested one.
	JobTimeout    time.Duration
	MaxJobTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: jobs still running when it
	// expires are cancelled with sprout.ErrShuttingDown.
	DrainTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429/503 rejections.
	RetryAfter time.Duration
	// CheckpointEvery persists an exploration job's frontier to the store
	// after every N settled orders, so a crashed (or later requeued) job
	// resumes mid-sweep instead of restarting. 0 selects the default (8);
	// negative disables checkpointing.
	CheckpointEvery int
	// Tracer receives the server-wide counters and histograms backing
	// /metrics (optional; nil disables).
	Tracer *obs.Tracer
	// Log receives lifecycle events (optional).
	Log *slog.Logger
}

// Normalize fills defaults in place and returns the config.
func (c Config) Normalize() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 10 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.FleetTimeout <= 0 {
		c.FleetTimeout = 2 * time.Second
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8
	}
	if c.Shard == "" {
		c.Shard = c.NodeName
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// routeFunc runs one routing job. Tests substitute it to script worker
// behavior; production uses sprout.RouteBoardCtx.
type routeFunc func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error)

func defaultRoute(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
	return sprout.RouteBoardCtx(ctx, dec.Board, opt)
}

// exploreFunc runs one order-exploration job; production uses
// sprout.ExploreNetOrdersCtx.
type exploreFunc func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.OrderExploration, error)

func defaultExplore(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.OrderExploration, error) {
	return sprout.ExploreNetOrdersCtx(ctx, dec.Board, opt)
}

// Engine is the routing service core. Create with New, start the pool
// with Start, stop with Shutdown.
type Engine struct {
	cfg     Config
	store   JobStore
	route   routeFunc
	explore exploreFunc
	// recovered holds the persistent store's accepted-but-unfinished jobs
	// until Start re-enqueues them.
	recovered []*Job

	queue    chan *Job
	draining chan struct{}
	drainOne sync.Once
	wg       sync.WaitGroup

	// runCtx parents every job context; stopRun cancels stragglers when
	// the drain deadline expires.
	runCtx  context.Context
	stopRun context.CancelFunc

	accepting atomic.Bool
	inFlight  atomic.Int64

	// partsMu guards the bounded store of foreign trace parts: span sets
	// recorded on other replicas (or on this replica's proxy layer) for
	// jobs this replica touched, keyed by job id and stitched on demand by
	// GET /v1/jobs/{id}/trace.
	partsMu   sync.Mutex
	parts     map[string][]obs.TracePart
	partsFIFO []string
}

// New builds an engine; call Start to spin up the workers.
func New(cfg Config) *Engine {
	cfg = cfg.Normalize()
	st := cfg.Store
	if st == nil {
		st = newMemStore(cfg.NodeName)
	}
	recovered := st.Recovered()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:       cfg,
		store:     st,
		route:     defaultRoute,
		explore:   defaultExplore,
		recovered: recovered,
		// The queue must absorb every recovered job on top of the normal
		// admission depth, or a crash with a deep backlog would deadlock
		// its own restart. Quarantined jobs get headroom too, so an
		// operator requeueing the whole quarantine never hits a full queue
		// that recovery itself created.
		queue:    make(chan *Job, cfg.QueueDepth+len(recovered)+len(st.Quarantined())),
		draining: make(chan struct{}),
		runCtx:   ctx,
		stopRun:  cancel,
		parts:    map[string][]obs.TracePart{},
	}
	e.accepting.Store(true)
	return e
}

// Start re-enqueues jobs a persistent store recovered (in their original
// acceptance order, ahead of any new admission), then launches the
// worker pool.
func (e *Engine) Start() {
	for _, j := range e.recovered {
		e.queue <- j
		e.count(obs.MJobsRecovered, 1)
	}
	if n := len(e.recovered); n > 0 {
		e.cfg.Log.Info("re-enqueued recovered jobs", "jobs", n)
	}
	e.recovered = nil
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	e.cfg.Log.Info("engine started", "workers", e.cfg.Workers, "queue", e.cfg.QueueDepth)
}

// Accepting reports whether admission is open (false once shutdown
// starts) — the /readyz signal.
func (e *Engine) Accepting() bool { return e.accepting.Load() }

// QueueLen and InFlight are the /metrics gauges.
func (e *Engine) QueueLen() int                 { return len(e.queue) }
func (e *Engine) InFlight() int64               { return e.inFlight.Load() }
func (e *Engine) RetryAfterHint() time.Duration { return e.cfg.RetryAfter }

// SubmitOptions carries the per-submission knobs.
type SubmitOptions struct {
	// IdempotencyKey dedupes retried submissions: a key already seen
	// returns the existing job instead of enqueueing a duplicate.
	IdempotencyKey string
	// Timeout overrides the default per-job deadline (capped at
	// Config.MaxJobTimeout; 0 = default).
	Timeout time.Duration
	// WithManual and SkipExtract mirror sprout.RouteOptions.
	WithManual  bool
	SkipExtract bool
	// Explore runs net-order exploration instead of a single-order route:
	// the job's report is the winning order's, and the status carries the
	// best order plus tried/failed counts.
	Explore bool
	// ExploreWorkers and ExploreSequential mirror the sprout.RouteOptions
	// explorer knobs (pool bound; force the sequential reference path).
	ExploreWorkers    int
	ExploreSequential bool
	// Trace continues the submitter's distributed trace: the job tracer
	// adopts its trace id and parents its root span under the propagated
	// span ref. The zero value starts a fresh trace.
	Trace obs.TraceContext
}

// canonicalSubmission derives the content identity of a submission: the
// canonical document bytes (persisted by the durable store) and their
// hash salted with the option flags that change what gets computed.
// Submissions differing only in JSON formatting — or in knobs that do
// not affect the result, like timeout or explorer parallelism — share a
// hash and singleflight onto one job. A document-less Decoded (built
// directly from a Board in tests) yields "" and opts out of dedupe.
func canonicalSubmission(dec *boardio.Decoded, opt SubmitOptions) (raw []byte, hash string) {
	if dec.Doc == nil {
		return nil, ""
	}
	b, err := dec.Doc.Canonical()
	if err != nil {
		return nil, ""
	}
	h := sha256.New()
	h.Write(b)
	fmt.Fprintf(h, "|explore=%t|manual=%t|skip_extract=%t", opt.Explore, opt.WithManual, opt.SkipExtract)
	return b, hex.EncodeToString(h.Sum(nil))
}

// Submit runs admission control over a decoded board document. It
// returns the job's status snapshot, or a typed rejection:
// sprout.ErrShuttingDown when draining, sprout.ErrOverloaded when the
// queue is full. Accepted jobs are guaranteed to reach a terminal state.
//
// Submissions dedupe two ways: an Idempotency-Key seen before returns
// the original job, and a keyless submission whose canonical content
// hash matches a live job singleflights onto it — one computation, every
// submitter polls the same result.
func (e *Engine) Submit(dec *boardio.Decoded, opt SubmitOptions) (Status, error) {
	if !e.accepting.Load() {
		e.count(obs.MJobsRejectedShutdown, 1)
		return Status{}, sprout.ErrShuttingDown
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = e.cfg.JobTimeout
	}
	if timeout > e.cfg.MaxJobTimeout {
		timeout = e.cfg.MaxJobTimeout
	}
	raw, hash := canonicalSubmission(dec, opt)
	spec := JobSpec{
		IdemKey: opt.IdempotencyKey,
		Hash:    hash,
		Raw:     raw,
		Doc:     dec,
		Opt: sprout.RouteOptions{
			Layer:             dec.RoutingLayer,
			Budgets:           dec.Budgets,
			Config:            dec.Config,
			WithManual:        opt.WithManual,
			SkipExtract:       opt.SkipExtract,
			ExploreWorkers:    opt.ExploreWorkers,
			ExploreSequential: opt.ExploreSequential,
		},
		Timeout: timeout,
		Explore: opt.Explore,
		Trace:   opt.Trace,
	}
	job, dedupe, err := e.store.Create(spec, time.Now())
	if err != nil {
		e.count(obs.MJobsRejectedStore, 1)
		return Status{}, fmt.Errorf("server: submission not durable: %w", err)
	}
	if dedupe != DedupeNone {
		e.count(obs.MJobsDeduped, 1)
		if dedupe == DedupeContent {
			e.count(obs.MDedupeHits, 1)
		}
		st := e.store.Status(job)
		st.Deduped = true
		return st, nil
	}
	select {
	case e.queue <- job:
		e.count(obs.MJobsAccepted, 1)
		return e.store.Status(job), nil
	default:
		e.store.Drop(job)
		e.count(obs.MJobsRejectedOverloaded, 1)
		return Status{}, sprout.ErrOverloaded
	}
}

// Job returns the status snapshot for a job id (ok=false when unknown).
func (e *Engine) Job(id string) (Status, bool) {
	j := e.store.Get(id)
	if j == nil {
		return Status{}, false
	}
	return e.store.Status(j), true
}

// Result returns a terminal job's run report and tracer. The bool is
// false when the job is unknown.
func (e *Engine) Result(id string) (Status, *obs.RunReport, *obs.Tracer, bool) {
	j := e.store.Get(id)
	if j == nil {
		return Status{}, nil, nil, false
	}
	rep, tr := e.store.Result(j)
	return e.store.Status(j), rep, tr, true
}

// List returns status snapshots of every job in the given state, in
// acceptance order ("" = all jobs) — the GET /v1/jobs surface.
func (e *Engine) List(state JobState) []Status {
	return e.store.List(state)
}

// Requeue revives a quarantined job: its attempt budget resets, its
// diagnostics clear, and it re-enters the admission queue — keeping any
// exploration checkpoint, so the revived job resumes mid-sweep. The bool
// is false when the job is unknown. Typed rejections: ErrNotQuarantined
// for jobs in any other state (409), sprout.ErrShuttingDown while
// draining, sprout.ErrOverloaded when the queue is full (the job is
// re-quarantined rather than lost).
func (e *Engine) Requeue(id string) (Status, bool, error) {
	if !e.accepting.Load() {
		return Status{}, true, sprout.ErrShuttingDown
	}
	j := e.store.Get(id)
	if j == nil {
		return Status{}, false, nil
	}
	if err := e.store.Requeue(j, time.Now()); err != nil {
		return Status{}, true, err
	}
	select {
	case e.queue <- j:
		e.count(obs.MJobsRequeued, 1)
		e.cfg.Log.Info("job requeued from quarantine", "job", j.id, "board", j.board)
		return e.store.Status(j), true, nil
	default:
		// No queue slot: park the job back in quarantine so it stays
		// revivable instead of sitting queued-but-unreachable.
		e.store.Quarantine(j, "server: requeue rejected, admission queue full", time.Now())
		e.count(obs.MJobsRejectedOverloaded, 1)
		return Status{}, true, sprout.ErrOverloaded
	}
}

// worker pulls jobs until shutdown; once draining begins it keeps
// pulling until the queue is empty, then exits.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case j := <-e.queue:
			e.runJob(j)
		case <-e.draining:
			// Drain mode: finish whatever is still queued, never block.
			for {
				select {
				case j := <-e.queue:
					e.runJob(j)
				default:
					return
				}
			}
		}
	}
}

// runJob executes one job under full isolation: its own deadline-derived
// context, its own tracer (so the run report and Chrome trace are
// per-job), and panic containment — a poisoned board marks its own job
// failed and leaves the process serving.
func (e *Engine) runJob(j *Job) {
	topts := []obs.Option{obs.WithReplica(e.cfg.NodeName)}
	if j.trace.Valid() {
		// The submitter propagated an X-Sprout-Trace: adopt its trace id
		// and hang this job's root span under the propagated span ref, so
		// stitching reconstructs the cross-replica timeline.
		topts = append(topts, obs.WithTraceID(j.trace.TraceID), obs.WithRemoteParent(j.trace.Parent))
	}
	tracer := obs.New(topts...)
	doc, opt, explore, ok := e.store.SetRunning(j, tracer, time.Now())
	if !ok {
		return // already failed by the drain sweep
	}
	queueWait := time.Since(j.submitted)
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)

	ctx, cancel := context.WithTimeout(e.runCtx, j.timeout)
	defer cancel()
	ctx = obs.WithTracer(ctx, tracer)
	ctx, jobSpan := obs.StartSpan(ctx, "Job",
		obs.A("job", j.id), obs.A("replica", e.cfg.NodeName), obs.A("board", j.board))

	start := time.Now()
	var report *obs.RunReport
	var err error
	if explore {
		var ex *sprout.OrderExploration
		ex, err = e.exploreContained(ctx, doc, e.wireCheckpoints(j, opt))
		if ex != nil {
			e.store.NoteExploration(j, ex)
			e.count(obs.MServerExploreOrders, int64(ex.Stats.Orders))
			e.count(obs.MServerExploreHits, ex.Stats.PrefixHits)
			e.count(obs.MServerExploreMisses, ex.Stats.PrefixMisses)
			if ex.Best != nil {
				report = ex.Best.Report
			}
		}
	} else {
		var res *sprout.BoardResult
		res, err = e.routeContained(ctx, doc, opt)
		if res != nil {
			report = res.Report
		}
	}
	dur := time.Since(start)

	if err != nil && errors.Is(err, context.Canceled) && e.runCtx.Err() != nil {
		// The server, not the client, cancelled this job: it is a drain
		// straggler, and its terminal error says so.
		err = fmt.Errorf("%w: %w", sprout.ErrShuttingDown, err)
	}
	jobSpan.Fail(err)
	jobSpan.End()
	// Fold the job tracer's stage/solver metrics into the replica tracer,
	// so /metrics exposes per-stage latency quantiles across all jobs.
	e.cfg.Tracer.AbsorbMetrics(tracer)
	if !e.store.Finish(j, report, err, time.Now()) {
		return
	}
	e.observe(obs.MJobQueueWaitMS, float64(queueWait.Nanoseconds())/1e6)
	e.observe(obs.MJobRunMS, float64(dur.Nanoseconds())/1e6)
	e.observe(obs.MJobAttempts, float64(e.store.Status(j).Attempts))
	if err != nil {
		e.count(obs.MJobsFailed, 1)
		e.count(obs.MJobsFailedPrefix+string(classify(err)), 1)
		e.cfg.Log.Warn("job failed", "job", j.id, "board", j.board, "kind", classify(err), "err", err)
	} else {
		e.count(obs.MJobsDone, 1)
		e.cfg.Log.Info("job done", "job", j.id, "board", j.board, "run_ms", dur.Milliseconds())
	}
}

// wireCheckpoints arms an exploration job's options with durable
// checkpointing: any stored frame from a previous attempt is decoded into
// ExploreResume (a frame that fails to decode is dropped and the sweep
// restarts — a checkpoint is an optimization, never a correctness
// dependency), and the sink persists each new frame through the store's
// WAL so the next attempt finds it.
func (e *Engine) wireCheckpoints(j *Job, opt sprout.RouteOptions) sprout.RouteOptions {
	if frame := e.store.Checkpoint(j); len(frame) > 0 {
		ck, err := sprout.DecodeCheckpoint(frame)
		if err != nil {
			e.count(obs.MCkptDecodeFailures, 1)
			e.cfg.Log.Warn("stored checkpoint rejected, exploring from scratch", "job", j.id, "err", err)
		} else {
			opt.ExploreResume = ck
			e.count(obs.MCkptResumes, 1)
			e.cfg.Log.Info("resuming exploration from checkpoint",
				"job", j.id, "done", ck.Done, "orders", ck.Orders)
		}
	}
	if e.cfg.CheckpointEvery > 0 {
		opt.ExploreCheckpointEvery = e.cfg.CheckpointEvery
		opt.ExploreCheckpointSink = func(ck *sprout.ExploreCheckpoint) error {
			frame, err := sprout.EncodeCheckpoint(ck)
			if err != nil {
				return err
			}
			return e.store.SaveCheckpoint(j, frame)
		}
	}
	return opt
}

// routeContained invokes the route function with panic containment. The
// sprout facade already converts its own panics; this second barrier
// covers everything else on the job path (decode helpers, report
// assembly, test-injected routes), so no job can crash the pool.
func (e *Engine) routeContained(ctx context.Context, doc *boardio.Decoded, opt sprout.RouteOptions) (res *sprout.BoardResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.count(obs.MJobsPanics, 1)
			err = &sprout.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return e.route(ctx, doc, opt)
}

// exploreContained is routeContained for exploration jobs: same panic
// barrier, different payload.
func (e *Engine) exploreContained(ctx context.Context, doc *boardio.Decoded, opt sprout.RouteOptions) (ex *sprout.OrderExploration, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.count(obs.MJobsPanics, 1)
			err = &sprout.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return e.explore(ctx, doc, opt)
}

// Shutdown drains the engine: admission closes immediately (readyz goes
// unready), queued and running jobs are given until ctx expires to
// finish, and stragglers past the deadline are cancelled with
// sprout.ErrShuttingDown. On return every accepted job is terminal; the
// store keeps serving results. The returned error is non-nil only when
// the drain deadline expired and stragglers had to be cancelled.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.accepting.Store(false)
	e.drainOne.Do(func() { close(e.draining) })
	e.cfg.Log.Info("draining", "queued", e.QueueLen(), "in_flight", e.InFlight())

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline expired: cancel every in-flight job context. The
		// pipeline honors cancellation within one iteration (PR 1), so the
		// pool unwinds promptly.
		e.stopRun()
		<-done
		err = fmt.Errorf("server: drain deadline expired, cancelled stragglers: %w", ctx.Err())
	}
	e.stopRun()
	// Sweep: any job still non-terminal (accepted after the workers
	// checked the queue, or orphaned in the channel) fails typed rather
	// than vanishing. This is the zero-loss guarantee.
	for _, j := range e.store.NonTerminal() {
		if e.store.Finish(j, nil, sprout.ErrShuttingDown, time.Now()) {
			e.count(obs.MJobsFailed, 1)
			e.count(obs.MJobsFailedPrefix+string(KindShutdown), 1)
		}
	}
	e.cfg.Log.Info("drained", "err", err)
	return err
}

// maxTracePartJobs bounds how many jobs' foreign trace parts a replica
// retains for stitching; the oldest job's parts go first.
const maxTracePartJobs = 512

// AddTracePart records a trace part captured outside this job's own
// tracer — on another replica, or by this replica's proxy layer — so
// GET /v1/jobs/{id}/trace can stitch the cross-replica timeline.
func (e *Engine) AddTracePart(jobID string, part obs.TracePart) {
	if jobID == "" || (len(part.Spans) == 0 && len(part.Events) == 0) {
		return
	}
	var evicted int
	e.partsMu.Lock()
	if _, ok := e.parts[jobID]; !ok {
		e.partsFIFO = append(e.partsFIFO, jobID)
	}
	e.parts[jobID] = append(e.parts[jobID], part)
	for len(e.partsFIFO) > maxTracePartJobs {
		old := e.partsFIFO[0]
		e.partsFIFO = e.partsFIFO[1:]
		evicted += len(e.parts[old])
		delete(e.parts, old)
	}
	e.partsMu.Unlock()
	e.count(obs.MTracePartsStored, 1)
	if evicted > 0 {
		e.count(obs.MTracePartsEvicted, int64(evicted))
	}
}

// TraceParts returns every part known locally for a job: the job's own
// tracer part (when it ran here) plus foreign parts recorded by the
// proxy layer. Empty when the job is unknown and nothing was recorded.
func (e *Engine) TraceParts(id string) []obs.TracePart {
	var parts []obs.TracePart
	if j := e.store.Get(id); j != nil {
		if _, tr := e.store.Result(j); tr != nil {
			if p := tr.TracePart(); len(p.Spans) > 0 || len(p.Events) > 0 {
				parts = append(parts, p)
			}
		}
	}
	e.partsMu.Lock()
	parts = append(parts, e.parts[id]...)
	e.partsMu.Unlock()
	return parts
}

// syncGauges publishes the engine's live state into the tracer's gauge
// table so a scrape reads current values, not the last job's.
func (e *Engine) syncGauges() {
	t := e.cfg.Tracer
	if !t.Enabled() {
		return
	}
	var acc int64
	if e.accepting.Load() {
		acc = 1
	}
	t.Gauge(obs.MServerAccepting).Set(acc)
	t.Gauge(obs.MServerQueueLen).Set(int64(e.QueueLen()))
	t.Gauge(obs.MServerQueueCap).Set(int64(e.cfg.QueueDepth))
	t.Gauge(obs.MServerInFlight).Set(e.InFlight())
	t.Gauge(obs.MServerWorkers).Set(int64(e.cfg.Workers))
}

func (e *Engine) count(name string, n int64) {
	e.cfg.Tracer.Counter(name).Add(n)
}

func (e *Engine) observe(name string, v float64) {
	e.cfg.Tracer.Histogram(name).Observe(v)
}
