package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/faultinject"
	"sprout/internal/obs"
)

// Filenames inside a store directory.
const (
	walFileName  = "wal.log"
	snapFileName = "snapshot.json"
)

// StoreOptions tunes the persistent job store. The zero value is usable.
type StoreOptions struct {
	// Name prefixes job ids (replica identity; must be unique per replica
	// in a sharded deployment). "" keeps the bare "job-N" form.
	Name string
	// NoSync disables the fsync after each accept record. Accepts get
	// faster, but jobs accepted in the unsynced window can vanish in a
	// crash — the durability contract drops from fsync-on-accept to
	// best-effort. The store-throughput benchmark measures the gap.
	NoSync bool
	// SnapshotEvery is the number of WAL appends between snapshot +
	// log-compaction passes (default 4096).
	SnapshotEvery int
	// MaxAttempts is the per-job start budget: recovery quarantines a
	// non-terminal job whose durable attempt count has reached it, instead
	// of re-enqueueing a board that keeps taking the process down. 0
	// selects the default of 3; negative disables quarantine entirely.
	MaxAttempts int
	// Tracer receives the wal.* counters (optional).
	Tracer *obs.Tracer
	// Log receives recovery and compaction events (optional).
	Log *slog.Logger
}

// DefaultMaxAttempts is the start budget applied when StoreOptions (or
// the -max-attempts flag) leaves MaxAttempts at zero.
const DefaultMaxAttempts = 3

func (o StoreOptions) normalize() StoreOptions {
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 4096
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.Log == nil {
		o.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// jobSnap is one job row of a snapshot file: the accept record plus the
// lifecycle outcome reached so far.
type jobSnap struct {
	Accept      *walRecord          `json:"accept"`
	State       JobState            `json:"state"`
	Started     time.Time           `json:"started,omitempty"`
	Finished    time.Time           `json:"finished,omitempty"`
	Err         string              `json:"err,omitempty"`
	Kind        ErrKind             `json:"kind,omitempty"`
	Report      json.RawMessage     `json:"report,omitempty"`
	Exploration *ExplorationSummary `json:"exploration,omitempty"`
	Attempts    int                 `json:"attempts,omitempty"`
	Checkpoint  []byte              `json:"checkpoint,omitempty"`
}

// storeSnap is the snapshot file: the id counter plus every job row.
type storeSnap struct {
	Next int        `json:"next"`
	Jobs []*jobSnap `json:"jobs"`
}

// PersistentStore is the crash-safe JobStore: an in-memory table mirrored
// to an append-only WAL with fsync-on-accept, periodically folded into a
// snapshot file with log compaction. Opening a store directory replays
// snapshot + WAL, truncates a torn tail instead of failing, and exposes
// accepted-but-unfinished jobs through Recovered so the engine re-runs
// them — the zero-accepted-job-loss guarantee extended across SIGKILL.
//
// Execution is at-least-once (a job that computed but whose finish record
// never hit the disk re-runs after a crash); the terminal state each job
// reaches is recorded exactly once.
type PersistentStore struct {
	mem  *memStore
	opts StoreOptions
	dir  string

	// mu serializes state transition + WAL append so the log order always
	// matches the table order. Reads (Get/Status/Result/NonTerminal) go
	// straight to mem under its own lock.
	mu        sync.Mutex
	wal       *walFile
	appends   int
	recovered []*Job
}

var _ JobStore = (*PersistentStore)(nil)

// OpenStore opens (creating if needed) a persistent job store rooted at
// dir and runs recovery: snapshot load, WAL replay, torn-tail truncation,
// and re-queueing of accepted-but-unfinished jobs. The recovered state is
// immediately re-snapshotted so the WAL starts compact.
func OpenStore(dir string, opts StoreOptions) (*PersistentStore, error) {
	opts = opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: store dir: %w", err)
	}
	p := &PersistentStore{mem: newMemStore(opts.Name), opts: opts, dir: dir}
	if err := p.recover(); err != nil {
		return nil, err
	}
	wal, err := openWALFile(filepath.Join(dir, walFileName))
	if err != nil {
		return nil, err
	}
	p.wal = wal
	// Fold what recovery replayed into a fresh snapshot so the next
	// restart does not re-pay this one's WAL scan.
	p.mu.Lock()
	err = p.compactLocked()
	p.mu.Unlock()
	if err != nil {
		wal.close()
		return nil, err
	}
	return p, nil
}

// recover rebuilds the in-memory table from snapshot + WAL. Replay is
// idempotent: a crash between snapshot rename and WAL reset leaves
// records in the log that the snapshot already folded in, and they must
// apply as no-ops.
func (p *PersistentStore) recover() error {
	var start time.Time
	if p.opts.Tracer.Enabled() {
		start = time.Now()
		defer func() {
			p.opts.Tracer.Histogram(obs.MWALRecoverMS).Observe(float64(time.Since(start)) / 1e6)
		}()
	}
	snapPath := filepath.Join(p.dir, snapFileName)
	data, err := os.ReadFile(snapPath)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: read snapshot: %w", err)
	}
	if len(data) > 0 {
		var snap storeSnap
		if jerr := json.Unmarshal(data, &snap); jerr != nil {
			// A corrupt snapshot is unrecoverable state damage for the jobs
			// it held, but must not take the service down: log and start
			// from the WAL alone.
			p.opts.Log.Error("snapshot corrupt, discarding", "path", snapPath, "err", jerr)
		} else {
			p.mem.next = snap.Next
			for _, row := range snap.Jobs {
				p.applySnapRow(row)
			}
		}
	}

	recs, truncated, err := loadWAL(filepath.Join(p.dir, walFileName))
	if err != nil {
		return err
	}
	if truncated > 0 {
		p.opts.Tracer.Counter(obs.MWALTruncatedTail).Add(1)
		p.opts.Log.Warn("wal tail torn or corrupt, truncated", "bytes", truncated)
	}
	for _, rec := range recs {
		p.applyWALRecord(rec)
	}

	// Everything accepted but not terminal re-queues, in acceptance order —
	// unless its durable start count already exhausted the attempt budget,
	// in which case the board has demonstrably taken the process down
	// MaxAttempts times and re-running it would crash-loop the replica.
	// Those jobs go to quarantine with their attempt history preserved;
	// only an operator requeue revives them.
	p.mem.mu.Lock()
	var recovered []*Job
	var quarantined int
	for _, j := range p.mem.jobs {
		if j.state.Terminal() {
			continue
		}
		if p.opts.MaxAttempts > 0 && j.attempts >= p.opts.MaxAttempts {
			p.mem.quarantineLocked(j, fmt.Sprintf(
				"server: quarantined after %d attempts without reaching a terminal state", j.attempts), time.Now())
			quarantined++
			p.opts.Log.Warn("job quarantined as poisonous",
				"job", j.id, "board", j.board, "attempts", j.attempts)
			continue
		}
		j.state = StateQueued
		j.started = time.Time{}
		recovered = append(recovered, j)
	}
	p.mem.mu.Unlock()
	sort.Slice(recovered, func(a, b int) bool {
		na, _ := p.mem.jobSeq(recovered[a].id)
		nb, _ := p.mem.jobSeq(recovered[b].id)
		return na < nb
	})
	p.recovered = recovered
	p.opts.Tracer.Counter(obs.MWALRecoveredJobs).Add(int64(len(recovered)))
	p.opts.Tracer.Counter(obs.MJobsQuarantined).Add(int64(quarantined))
	if len(recs) > 0 || len(recovered) > 0 || quarantined > 0 {
		p.opts.Log.Info("store recovered",
			"jobs", len(p.mem.jobs), "wal_records", len(recs),
			"requeued", len(recovered), "quarantined", quarantined)
	}
	return nil
}

// applySnapRow materializes one snapshot job row (skipping ids already
// present, which cannot happen in a well-formed snapshot but keeps the
// loader total).
func (p *PersistentStore) applySnapRow(row *jobSnap) {
	if row == nil || row.Accept == nil || row.Accept.ID == "" {
		return
	}
	p.mem.mu.Lock()
	defer p.mem.mu.Unlock()
	if _, exists := p.mem.jobs[row.Accept.ID]; exists {
		return
	}
	j := p.jobFromAccept(row.Accept)
	j.state = row.State
	j.started = row.Started
	j.finished = row.Finished
	j.exploration = row.Exploration
	j.attempts = row.Attempts
	j.checkpoint = row.Checkpoint
	switch {
	case row.State == StateQuarantined:
		// Quarantined rows keep their decoded document (a requeue re-runs
		// them) but carry the preserved diagnostics.
		j.err = errors.New(row.Err)
		j.kind = row.Kind
	case row.State.Terminal():
		j.doc, j.raw = nil, nil
		j.checkpoint = nil
		if row.State == StateFailed {
			j.err = errors.New(row.Err)
			j.kind = row.Kind
		}
		if len(row.Report) > 0 {
			rep := &obs.RunReport{}
			if err := json.Unmarshal(row.Report, rep); err == nil {
				j.report = rep
			}
		}
	}
	p.insertRecoveredLocked(j)
	// Failed and quarantined jobs must not absorb equivalent
	// resubmissions: undo the content registration insertLocked made.
	if (row.State == StateFailed || row.State == StateQuarantined) &&
		j.hash != "" && p.mem.byHash[j.hash] == j.id {
		delete(p.mem.byHash, j.hash)
	}
}

// applyWALRecord replays one log record onto the table, idempotently.
func (p *PersistentStore) applyWALRecord(rec *walRecord) {
	p.mem.mu.Lock()
	defer p.mem.mu.Unlock()
	switch rec.T {
	case walAccept:
		if _, exists := p.mem.jobs[rec.ID]; exists {
			return
		}
		p.insertRecoveredLocked(p.jobFromAccept(rec))
	case walRun:
		// Legacy start record (pre-attempt-budget logs): each one is one
		// worker start.
		if j := p.mem.jobs[rec.ID]; j != nil && !j.state.Terminal() {
			j.state = StateRunning
			j.started = rec.TS
			j.attempts++
		}
	case walAttempt:
		// Attempt records carry the absolute start count, so replaying a
		// record the snapshot already folded in is a no-op (max, not ++).
		if j := p.mem.jobs[rec.ID]; j != nil && !j.state.Terminal() {
			j.state = StateRunning
			j.started = rec.TS
			if rec.Attempt > j.attempts {
				j.attempts = rec.Attempt
			}
		}
	case walCheckpoint:
		if j := p.mem.jobs[rec.ID]; j != nil && !j.state.Terminal() && len(rec.Ckpt) > 0 {
			j.checkpoint = rec.Ckpt
		}
	case walQuarantine:
		if j := p.mem.jobs[rec.ID]; j != nil && !j.state.Terminal() {
			p.mem.quarantineLocked(j, rec.Err, rec.TS)
			if rec.Attempt > j.attempts {
				j.attempts = rec.Attempt
			}
		}
	case walRequeue:
		if j := p.mem.jobs[rec.ID]; j != nil && j.state == StateQuarantined {
			_ = p.mem.requeueLocked(j, rec.TS)
		}
	case walFinish:
		j := p.mem.jobs[rec.ID]
		if j == nil || j.state.Terminal() {
			return
		}
		j.finished = rec.TS
		j.doc, j.raw = nil, nil
		j.exploration = rec.Exploration
		if rec.Err != "" || rec.Kind != "" {
			j.state = StateFailed
			j.err = errors.New(rec.Err)
			j.kind = rec.Kind
			if j.hash != "" && p.mem.byHash[j.hash] == j.id {
				delete(p.mem.byHash, j.hash)
			}
		} else {
			j.state = StateDone
			if len(rec.Report) > 0 {
				rep := &obs.RunReport{}
				if err := json.Unmarshal(rec.Report, rep); err == nil {
					j.report = rep
				}
			}
		}
	case walDrop:
		if j := p.mem.jobs[rec.ID]; j != nil {
			delete(p.mem.jobs, j.id)
			if j.idemKey != "" {
				delete(p.mem.byKey, j.idemKey)
			}
			if j.hash != "" && p.mem.byHash[j.hash] == j.id {
				delete(p.mem.byHash, j.hash)
			}
		}
	}
}

// jobFromAccept rebuilds a queued Job from an accept record, re-decoding
// the canonical document. A document that no longer decodes (disk damage
// inside an intact CRC frame, or a schema change across versions) yields
// a job pre-failed with KindInternal rather than a recovery abort.
func (p *PersistentStore) jobFromAccept(rec *walRecord) *Job {
	j := &Job{
		id:        rec.ID,
		idemKey:   rec.Key,
		hash:      rec.Hash,
		state:     StateQueued,
		board:     rec.Board,
		submitted: rec.TS,
		raw:       rec.Doc,
		explore:   rec.Explore,
		timeout:   time.Duration(rec.TimeoutNS),
	}
	if tc, ok := obs.ParseTraceContext(rec.Trace); ok {
		j.trace = tc
	}
	if len(rec.Doc) > 0 {
		dec, err := boardio.Decode(bytes.NewReader(rec.Doc))
		if err != nil {
			p.opts.Log.Error("recovered job document no longer decodes", "job", rec.ID, "err", err)
			j.state = StateFailed
			j.finished = time.Now()
			j.err = fmt.Errorf("server: recovered document undecodable: %w", err)
			j.kind = KindInternal
			j.raw = nil
			return j
		}
		j.doc = dec
		j.opt = sprout.RouteOptions{
			Layer:             dec.RoutingLayer,
			Budgets:           dec.Budgets,
			Config:            dec.Config,
			WithManual:        rec.Manual,
			SkipExtract:       rec.SkipExtract,
			ExploreWorkers:    rec.ExploreWorkers,
			ExploreSequential: rec.ExploreSeq,
		}
	} else {
		j.state = StateFailed
		j.finished = time.Now()
		j.err = errors.New("server: accept record carries no document")
		j.kind = KindInternal
	}
	return j
}

// insertRecoveredLocked registers a replayed job and advances the id
// counter past its sequence number. Callers hold mem.mu.
func (p *PersistentStore) insertRecoveredLocked(j *Job) {
	p.mem.insertLocked(j)
	if n, ok := p.mem.jobSeq(j.id); ok && n > p.mem.next {
		p.mem.next = n
	}
}

// acceptRecord builds the WAL accept record for a job.
func acceptRecord(j *Job) *walRecord {
	return &walRecord{
		T: walAccept, ID: j.id, TS: j.submitted,
		Key: j.idemKey, Hash: j.hash, Board: j.board,
		Doc:       j.raw,
		TimeoutNS: int64(j.timeout), Explore: j.explore,
		Manual: j.opt.WithManual, SkipExtract: j.opt.SkipExtract,
		ExploreWorkers: j.opt.ExploreWorkers, ExploreSeq: j.opt.ExploreSequential,
		Trace: j.trace.Header(),
	}
}

// appendLocked writes one record and runs the compaction countdown.
// Callers hold p.mu.
func (p *PersistentStore) appendLocked(rec *walRecord, sync bool) error {
	var start time.Time
	if p.opts.Tracer.Enabled() {
		start = time.Now()
	}
	if err := p.wal.append(rec, sync); err != nil {
		return err
	}
	if p.opts.Tracer.Enabled() {
		p.opts.Tracer.Histogram(obs.MWALAppendMS).Observe(float64(time.Since(start)) / 1e6)
	}
	p.opts.Tracer.Counter(obs.MWALAppends).Add(1)
	p.appends++
	if p.appends >= p.opts.SnapshotEvery {
		if err := p.compactLocked(); err != nil {
			// Compaction failure leaves a longer WAL, not lost state.
			p.opts.Log.Error("wal compaction failed", "err", err)
		}
	}
	return nil
}

// compactLocked folds the current table into snapshot.json (write temp,
// fsync, rename) and truncates the WAL. Callers hold p.mu.
func (p *PersistentStore) compactLocked() error {
	if p.wal.killed {
		return nil
	}
	var start time.Time
	if p.opts.Tracer.Enabled() {
		start = time.Now()
	}
	snap := p.snapshotRows()
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	tmp := filepath.Join(p.dir, snapFileName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: snapshot temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("server: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("server: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("server: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, snapFileName)); err != nil {
		return fmt.Errorf("server: snapshot rename: %w", err)
	}
	// The rename is only durable once the directory entry itself is on
	// disk: without this fsync a power loss can leave the directory
	// pointing at the old snapshot while the WAL below gets truncated —
	// silently losing every job the new snapshot folded in.
	if err := syncDir(p.dir); err != nil {
		return fmt.Errorf("server: snapshot dir fsync: %w", err)
	}
	if err := p.wal.reset(); err != nil {
		return err
	}
	p.appends = 0
	if p.opts.Tracer.Enabled() {
		p.opts.Tracer.Histogram(obs.MWALCompactMS).Observe(float64(time.Since(start)) / 1e6)
	}
	p.opts.Tracer.Counter(obs.MWALCompactions).Add(1)
	p.opts.Log.Info("wal compacted", "jobs", len(snap.Jobs))
	return nil
}

// snapshotRows captures every job as a snapshot row.
func (p *PersistentStore) snapshotRows() *storeSnap {
	p.mem.mu.Lock()
	defer p.mem.mu.Unlock()
	snap := &storeSnap{Next: p.mem.next}
	for _, j := range p.mem.jobs {
		row := &jobSnap{
			Accept:      acceptRecord(j),
			State:       j.state,
			Started:     j.started,
			Finished:    j.finished,
			Exploration: j.exploration,
			Attempts:    j.attempts,
			Checkpoint:  j.checkpoint,
		}
		if j.err != nil {
			row.Err = j.err.Error()
			row.Kind = j.kind
		}
		if j.report != nil {
			if b, err := json.Marshal(j.report); err == nil {
				row.Report = b
			}
		}
		snap.Jobs = append(snap.Jobs, row)
	}
	// Deterministic file contents make snapshots diffable and testable.
	sort.Slice(snap.Jobs, func(a, b int) bool { return snap.Jobs[a].Accept.ID < snap.Jobs[b].Accept.ID })
	return snap
}

// Create registers the job in memory, then makes the acceptance durable
// (fsync unless NoSync) before the submitter sees a 202. A WAL failure
// unwinds the in-memory registration: the submission is rejected rather
// than accepted-without-durability.
func (p *PersistentStore) Create(spec JobSpec, now time.Time) (*Job, DedupeKind, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, dedupe, err := p.mem.Create(spec, now)
	if err != nil || dedupe != DedupeNone {
		return j, dedupe, err
	}
	if err := p.appendLocked(acceptRecord(j), !p.opts.NoSync); err != nil {
		p.mem.Drop(j)
		return nil, DedupeNone, fmt.Errorf("server: persist accept: %w", err)
	}
	return j, DedupeNone, nil
}

// Drop unwinds an accept rejected by admission. The drop record is not
// fsynced: losing it merely resurrects a job the client was told to
// retry, which then runs to a terminal state — wasted work, not loss.
func (p *PersistentStore) Drop(j *Job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mem.Drop(j)
	if err := p.appendLocked(&walRecord{T: walDrop, ID: j.id, TS: time.Now()}, false); err != nil {
		p.opts.Log.Warn("wal drop record failed", "job", j.id, "err", err)
	}
}

// SetRunning forwards to the table and makes the start durable as an
// attempt record, fsynced (unless NoSync) before the worker touches the
// board: the attempt budget only works if a start that SIGKILLs the
// process a microsecond later is still counted at the next recovery. A
// failed append is logged, not fatal — an undercounted attempt grants a
// poison job one extra try, it never loses a job.
func (p *PersistentStore) SetRunning(j *Job, tracer *obs.Tracer, now time.Time) (*boardio.Decoded, sprout.RouteOptions, bool, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	doc, opt, explore, ok := p.mem.SetRunning(j, tracer, now)
	if ok {
		rec := &walRecord{T: walAttempt, ID: j.id, TS: now, Attempt: j.attempts}
		if err := p.appendLocked(rec, !p.opts.NoSync); err != nil {
			p.opts.Log.Warn("wal attempt record failed", "job", j.id, "err", err)
		}
	}
	return doc, opt, explore, ok
}

// NoteExploration is memory-only; the digest rides the finish record.
func (p *PersistentStore) NoteExploration(j *Job, ex *sprout.OrderExploration) {
	p.mem.NoteExploration(j, ex)
}

// Finish applies the terminal transition and logs it with the run report,
// so results survive restart. Unsynced: a finish record lost to a crash
// re-runs the job (at-least-once execution), it never loses it.
func (p *PersistentStore) Finish(j *Job, report *obs.RunReport, err error, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.mem.Finish(j, report, err, now) {
		return false
	}
	rec := &walRecord{T: walFinish, ID: j.id, TS: now, Exploration: j.exploration}
	if err != nil {
		rec.Err = err.Error()
		rec.Kind = classify(err)
		if rec.Err == "" {
			rec.Err = "unknown failure"
		}
	} else if report != nil {
		if b, merr := json.Marshal(report); merr == nil {
			rec.Report = b
		}
	}
	if aerr := p.appendLocked(rec, false); aerr != nil {
		p.opts.Log.Warn("wal finish record failed", "job", j.id, "err", aerr)
	}
	return true
}

func (p *PersistentStore) Get(id string) *Job                          { return p.mem.Get(id) }
func (p *PersistentStore) NonTerminal() []*Job                         { return p.mem.NonTerminal() }
func (p *PersistentStore) Status(j *Job) Status                        { return p.mem.Status(j) }
func (p *PersistentStore) Result(j *Job) (*obs.RunReport, *obs.Tracer) { return p.mem.Result(j) }
func (p *PersistentStore) List(state JobState) []Status                { return p.mem.List(state) }
func (p *PersistentStore) Quarantined() []*Job                         { return p.mem.Quarantined() }
func (p *PersistentStore) Checkpoint(j *Job) []byte                    { return p.mem.Checkpoint(j) }

// Quarantine force-transitions a non-terminal job into quarantine and
// logs it durably (fsynced unless NoSync — quarantine is a promise the
// job will not run again without an operator, so it must hold across a
// crash).
func (p *PersistentStore) Quarantine(j *Job, reason string, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.mem.Quarantine(j, reason, now) {
		return false
	}
	rec := &walRecord{T: walQuarantine, ID: j.id, TS: now, Err: reason, Kind: KindPoisoned, Attempt: j.attempts}
	if err := p.appendLocked(rec, !p.opts.NoSync); err != nil {
		p.opts.Log.Warn("wal quarantine record failed", "job", j.id, "err", err)
	}
	p.opts.Tracer.Counter(obs.MJobsQuarantined).Add(1)
	return true
}

// Requeue revives a quarantined job. The requeue record is fsynced
// (unless NoSync) before the caller may enqueue the job: a revival the
// disk never saw would re-quarantine the job at the next recovery while
// a worker is already rerunning it. A WAL failure unwinds the in-memory
// transition so table and log stay consistent.
func (p *PersistentStore) Requeue(j *Job, now time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.mem.Requeue(j, now); err != nil {
		return err
	}
	if aerr := p.appendLocked(&walRecord{T: walRequeue, ID: j.id, TS: now}, !p.opts.NoSync); aerr != nil {
		p.mem.Quarantine(j, "server: requeue not durable: "+aerr.Error(), now)
		return fmt.Errorf("server: persist requeue: %w", aerr)
	}
	return nil
}

// SaveCheckpoint durably records the job's latest exploration checkpoint
// (fsynced unless NoSync — a checkpoint that vanishes in the crash it
// exists to survive is dead weight). Errors are returned, not fatal: the
// sweep continues and simply loses resume coverage for this interval.
func (p *PersistentStore) SaveCheckpoint(j *Job, frame []byte) error {
	if ferr := faultinject.Check(faultinject.SiteCkptWrite); ferr != nil {
		p.opts.Tracer.Counter(obs.MWALCkptWriteErrors).Add(1)
		return fmt.Errorf("server: checkpoint write: %w", ferr)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mem.Status(j).State.Terminal() {
		return nil
	}
	if err := p.mem.SaveCheckpoint(j, frame); err != nil {
		return err
	}
	rec := &walRecord{T: walCheckpoint, ID: j.id, TS: time.Now(), Ckpt: frame}
	if err := p.appendLocked(rec, !p.opts.NoSync); err != nil {
		p.opts.Tracer.Counter(obs.MWALCkptWriteErrors).Add(1)
		return fmt.Errorf("server: persist checkpoint: %w", err)
	}
	p.opts.Tracer.Counter(obs.MWALCkptWrites).Add(1)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file inside it survives
// power loss.
func syncDir(dir string) error {
	if ferr := faultinject.Check(faultinject.SiteDirSync); ferr != nil {
		return fmt.Errorf("server: sync dir: %w", ferr)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("server: open dir for sync: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("server: sync dir: %w", err)
	}
	return d.Close()
}

// Recovered returns the jobs found accepted but unfinished at open, in
// acceptance order.
func (p *PersistentStore) Recovered() []*Job { return p.recovered }

// Close snapshots once more and closes the WAL.
func (p *PersistentStore) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.compactLocked(); err != nil {
		p.opts.Log.Warn("final compaction failed", "err", err)
	}
	return p.wal.close()
}

// Kill simulates the process dying right now: every subsequent WAL write
// silently vanishes while the in-memory engine keeps going, exactly the
// observable disk state a SIGKILL leaves behind. The chaos tests crash a
// live store with Kill, reopen the directory, and assert recovery.
func (p *PersistentStore) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wal.kill()
}
