package server

import (
	"fmt"
	"testing"
	"time"

	"sprout/internal/obs"
)

// BenchmarkStoreAccept measures the accept-path latency of each store:
// the in-memory baseline, the WAL with fsync-on-accept (the durability
// contract sproutd ships with), and the WAL without fsync (the -no-fsync
// trade). The fsync/nosync gap is the price of crash safety per job.
func BenchmarkStoreAccept(b *testing.B) {
	doc := encodeBoardDoc(b)
	spec := specFor(b, doc, "")

	bench := func(b *testing.B, open func(b *testing.B) JobStore) {
		st := open(b)
		defer st.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := spec
			s.IdemKey = fmt.Sprintf("bench-%d", i) // distinct keys: no dedupe short-circuit
			j, dedupe, err := st.Create(s, time.Now())
			if err != nil {
				b.Fatal(err)
			}
			if dedupe != DedupeNone {
				b.Fatal("benchmark submission deduped; keys must be unique")
			}
			st.SetRunning(j, nil, time.Now())
			st.Finish(j, &obs.RunReport{}, nil, time.Now())
		}
	}

	b.Run("mem", func(b *testing.B) {
		bench(b, func(b *testing.B) JobStore { return newMemStore("") })
	})
	b.Run("wal-fsync", func(b *testing.B) {
		bench(b, func(b *testing.B) JobStore {
			st, err := OpenStore(b.TempDir(), StoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			return st
		})
	})
	b.Run("wal-nosync", func(b *testing.B) {
		bench(b, func(b *testing.B) JobStore {
			st, err := OpenStore(b.TempDir(), StoreOptions{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			return st
		})
	})
}

// BenchmarkWALRecovery measures reopening a store that holds a 256-job
// accepted-but-unfinished backlog — the restart cost after a crash under
// load. The first iteration replays the raw WAL; later ones load the
// snapshot that open folds it into, which is the steady-state restart.
func BenchmarkWALRecovery(b *testing.B) {
	doc := encodeBoardDoc(b)
	dir := b.TempDir()
	st, err := OpenStore(dir, StoreOptions{NoSync: true, SnapshotEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	const backlog = 256
	for i := 0; i < backlog; i++ {
		if _, _, err := st.Create(specFor(b, doc, fmt.Sprintf("rec-%d", i)), time.Now()); err != nil {
			b.Fatal(err)
		}
	}
	st.Kill()
	st.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st2, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(st2.Recovered()); got != backlog {
			b.Fatalf("recovered %d, want %d", got, backlog)
		}
		b.StopTimer()
		st2.Close()
		b.StartTimer()
	}
}
