package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
)

// TestChaosPoisonJobQuarantine is the crash-loop half of the self-healing
// suite: one deterministic-poison board takes the process down on every
// attempt while good jobs keep finishing. After exactly MaxAttempts real
// kill/recover cycles the poison job must land in quarantine — diagnostics
// and attempt count preserved across further restarts, the board never
// run again — and an operator requeue must revive it once it is healed.
func TestChaosPoisonJobQuarantine(t *testing.T) {
	dir := t.TempDir()
	poisonDoc := namedBoardDoc(t, "poison")
	goodDoc := encodeBoardDoc(t)

	// SPROUT_SOAK=N scales the good-job traffic per cycle.
	soak := 1
	if v, err := strconv.Atoi(os.Getenv("SPROUT_SOAK")); err == nil && v > 1 {
		soak = v
	}

	// healed flips once the "bug" is fixed: until then the poison board
	// hangs its worker until the process dies.
	var healed atomic.Bool
	script := func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		if dec.Board.Name == "poison" && !healed.Load() {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &sprout.BoardResult{Report: &obs.RunReport{Tool: dec.Board.Name}}, nil
	}

	var poisonID string
	for cycle := 1; cycle <= DefaultMaxAttempts; cycle++ {
		tr := obs.New()
		ps, err := OpenStore(dir, StoreOptions{Tracer: tr})
		if err != nil {
			t.Fatalf("cycle %d: open: %v", cycle, err)
		}
		wantRecovered := 1
		if cycle == 1 {
			wantRecovered = 0
		}
		if got := len(ps.Recovered()); got != wantRecovered {
			t.Fatalf("cycle %d: recovered %d jobs, want %d", cycle, got, wantRecovered)
		}
		eng := New(Config{Workers: 2, QueueDepth: 8 + soak, JobTimeout: 30 * time.Second, Store: ps, Tracer: tr})
		eng.route = script
		eng.Start()
		ts := httptest.NewServer(eng.Handler())
		cl := NewClient(ts.URL, int64(cycle))

		if cycle == 1 {
			st, err := cl.Submit(context.Background(), poisonDoc, "poison")
			if err != nil {
				t.Fatalf("submit poison: %v", err)
			}
			poisonID = st.ID
		}
		// The poison job's start must be durable (attempt c on the WAL)
		// before this cycle's crash.
		waitFor(t, fmt.Sprintf("poison attempt %d to start", cycle), func() bool {
			st, ok := eng.Job(poisonID)
			return ok && st.State == StateRunning && st.Attempts == cycle
		})
		// The replica keeps serving while the poison job wedges a worker.
		for i := 0; i < soak; i++ {
			st, err := cl.Submit(context.Background(), goodDoc, fmt.Sprintf("good-%d-%d", cycle, i))
			if err != nil {
				t.Fatalf("cycle %d: submit good job: %v", cycle, err)
			}
			if _, err := cl.WaitResult(context.Background(), st.ID, time.Millisecond); err != nil {
				t.Fatalf("cycle %d: good job alongside poison: %v", cycle, err)
			}
		}

		// SIGKILL: the disk stops taking writes, then the process dies.
		ps.Kill()
		dead, cancel := context.WithCancel(context.Background())
		cancel()
		_ = eng.Shutdown(dead)
		ts.Close()
		ps.Close()
	}

	// Recovery after the MaxAttempts-th crash: the poison job is out of
	// budget and must be quarantined, not re-enqueued.
	tr := obs.New()
	ps, err := OpenStore(dir, StoreOptions{Tracer: tr})
	if err != nil {
		t.Fatalf("reopen after final crash: %v", err)
	}
	if got := len(ps.Recovered()); got != 0 {
		t.Fatalf("recovered %d jobs, want 0 (poison must be quarantined, good jobs terminal)", got)
	}
	q := ps.Quarantined()
	if len(q) != 1 || q[0].ID() != poisonID {
		t.Fatalf("quarantined = %v, want exactly [%s]", q, poisonID)
	}
	counters, _ := tr.MetricsSnapshot()
	if counters[obs.MJobsQuarantined] != 1 {
		t.Fatalf("%s = %d, want 1", obs.MJobsQuarantined, counters[obs.MJobsQuarantined])
	}
	eng := New(Config{Workers: 2, QueueDepth: 8, JobTimeout: 30 * time.Second, Store: ps, Tracer: tr})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		if dec.Board.Name == "poison" {
			t.Errorf("quarantined board was routed again without a requeue")
		}
		return script(ctx, dec, opt)
	}
	eng.Start()
	ts := httptest.NewServer(eng.Handler())
	cl := NewClient(ts.URL, 99)

	st, ok := eng.Job(poisonID)
	if !ok {
		t.Fatalf("poison job %s lost across the crashes", poisonID)
	}
	if st.State != StateQuarantined || st.ErrorKind != KindPoisoned {
		t.Fatalf("poison job = %s/%s, want quarantined/poisoned", st.State, st.ErrorKind)
	}
	if st.Attempts != DefaultMaxAttempts {
		t.Fatalf("poison attempts = %d, want %d", st.Attempts, DefaultMaxAttempts)
	}
	if !strings.Contains(st.Error, fmt.Sprintf("quarantined after %d attempts", DefaultMaxAttempts)) {
		t.Fatalf("quarantine diagnostics missing attempt history: %q", st.Error)
	}
	// The replica stays healthy: a fresh job routes while the poison sits.
	fresh, err := cl.Submit(context.Background(), goodDoc, "good-after-quarantine")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitResult(context.Background(), fresh.ID, time.Millisecond); err != nil {
		t.Fatalf("fresh job after quarantine: %v", err)
	}

	// Operator surfaces: the quarantine listing shows the job, the result
	// endpoint maps it to 422, and WaitResult stops polling with the typed
	// error instead of spinning to the deadline.
	listed, err := cl.ListJobs(context.Background(), StateQuarantined)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].ID != poisonID {
		t.Fatalf("quarantine listing = %+v, want exactly [%s]", listed, poisonID)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + poisonID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("result of quarantined job = HTTP %d, want 422", resp.StatusCode)
	}
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer waitCancel()
	_, werr := cl.WaitResult(waitCtx, poisonID, time.Millisecond)
	var qerr *JobQuarantinedError
	if !errors.As(werr, &qerr) {
		t.Fatalf("WaitResult on quarantined job = %v, want *JobQuarantinedError", werr)
	}
	if qerr.Status.Attempts != DefaultMaxAttempts || qerr.Status.ErrorKind != KindPoisoned {
		t.Fatalf("quarantine error status = %+v", qerr.Status)
	}
	if waitCtx.Err() != nil {
		t.Fatal("WaitResult polled a quarantined job until the deadline")
	}

	// Requeue rejections are typed: unknown id is 404, non-quarantined 409.
	if _, err := cl.Requeue(context.Background(), "job-404"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("requeue of unknown job: %v, want HTTP 404", err)
	}
	if _, err := cl.Requeue(context.Background(), fresh.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("requeue of done job: %v, want HTTP 409", err)
	}

	// Clean restart: quarantine is a durable promise, not recovery-local
	// state — diagnostics and attempt count survive.
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	tr2 := obs.New()
	ps2, err := OpenStore(dir, StoreOptions{Tracer: tr2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ps2.Recovered()); got != 0 {
		t.Fatalf("clean restart recovered %d jobs, want 0", got)
	}
	st2 := ps2.Status(ps2.Get(poisonID))
	if st2.State != StateQuarantined || st2.Attempts != DefaultMaxAttempts || st2.Error != st.Error {
		t.Fatalf("quarantine did not survive restart: %+v", st2)
	}

	// The fix ships; an operator requeue revives the job with a fresh
	// attempt budget and it finally finishes.
	healed.Store(true)
	eng2 := New(Config{Workers: 2, QueueDepth: 8, JobTimeout: 30 * time.Second, Store: ps2, Tracer: tr2})
	eng2.route = script
	eng2.Start()
	ts2 := httptest.NewServer(eng2.Handler())
	defer ts2.Close()
	cl2 := NewClient(ts2.URL, 7)
	rst, err := cl2.Requeue(context.Background(), poisonID)
	if err != nil {
		t.Fatalf("requeue healed job: %v", err)
	}
	if rst.State.Terminal() {
		t.Fatalf("requeued job still terminal: %+v", rst)
	}
	rep, err := cl2.WaitResult(context.Background(), poisonID, time.Millisecond)
	if err != nil {
		t.Fatalf("requeued job: %v", err)
	}
	if rep.Tool != "poison" {
		t.Fatalf("requeued job report = %q, want the poison board's run", rep.Tool)
	}
	final, _ := eng2.Job(poisonID)
	if final.State != StateDone || final.Attempts != 1 {
		t.Fatalf("requeued job = %s attempts=%d, want done after 1 fresh attempt", final.State, final.Attempts)
	}
	mresp, err := http.Get(ts2.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Counters[obs.MJobsRequeued] != 1 {
		t.Fatalf("/metrics %s = %d, want 1", obs.MJobsRequeued, m.Counters[obs.MJobsRequeued])
	}
	if err := eng2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryMixedBacklog pins recovery triage over every job class at
// once: terminal jobs keep their outcomes, runnable jobs re-queue in
// acceptance order, and only the job that exhausted its attempt budget is
// quarantined.
func TestRecoveryMixedBacklog(t *testing.T) {
	dir := t.TempDir()
	doc := encodeBoardDoc(t)
	ps, err := OpenStore(dir, StoreOptions{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(key string) *Job {
		j, _, err := ps.Create(specFor(t, doc, key), time.Now())
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	done, failed, poison, crashed, queued := mk("done"), mk("failed"), mk("poison"), mk("crashed"), mk("queued")

	ps.SetRunning(done, nil, time.Now())
	ps.Finish(done, &obs.RunReport{Tool: "ok"}, nil, time.Now())
	ps.SetRunning(failed, nil, time.Now())
	ps.Finish(failed, nil, errors.New("solver exploded"), time.Now())
	// Two starts without a finish: the poison shape at MaxAttempts=2.
	ps.SetRunning(poison, nil, time.Now())
	ps.SetRunning(poison, nil, time.Now())
	// One start: unlucky, still within budget.
	ps.SetRunning(crashed, nil, time.Now())
	// queued never starts.

	ps.Kill()
	ps.Close()

	ps2, err := OpenStore(dir, StoreOptions{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ps2.Close()

	rec := ps2.Recovered()
	if len(rec) != 2 || rec[0].ID() != crashed.ID() || rec[1].ID() != queued.ID() {
		ids := make([]string, len(rec))
		for i, j := range rec {
			ids[i] = j.ID()
		}
		t.Fatalf("recovered %v, want [%s %s] in acceptance order", ids, crashed.ID(), queued.ID())
	}
	q := ps2.Quarantined()
	if len(q) != 1 || q[0].ID() != poison.ID() {
		t.Fatalf("quarantined %d jobs, want exactly the out-of-budget one", len(q))
	}
	want := map[string]JobState{
		done.ID():    StateDone,
		failed.ID():  StateFailed,
		poison.ID():  StateQuarantined,
		crashed.ID(): StateQueued,
		queued.ID():  StateQueued,
	}
	for id, ws := range want {
		st := ps2.Status(ps2.Get(id))
		if st.State != ws {
			t.Errorf("job %s = %s, want %s", id, st.State, ws)
		}
	}
	if st := ps2.Status(ps2.Get(failed.ID())); !strings.Contains(st.Error, "solver exploded") {
		t.Errorf("failed job lost its diagnostics: %q", st.Error)
	}
	if rep, _ := ps2.Result(ps2.Get(done.ID())); rep == nil || rep.Tool != "ok" {
		t.Errorf("done job lost its report across the crash")
	}
	// The full listing is in acceptance order with every class present.
	list := ps2.List("")
	if len(list) != 5 {
		t.Fatalf("listed %d jobs, want 5", len(list))
	}
	order := []string{done.ID(), failed.ID(), poison.ID(), crashed.ID(), queued.ID()}
	for i, st := range list {
		if st.ID != order[i] {
			t.Fatalf("list[%d] = %s, want %s (acceptance order)", i, st.ID, order[i])
		}
	}
}

// TestRequeueSurvivesRestart pins the durability of the operator requeue:
// the revival (and the attempt-budget reset it grants) must hold across a
// SIGKILL that lands right after it, and the job's exploration checkpoint
// must ride along so the revived job resumes instead of restarting.
func TestRequeueSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	doc := encodeBoardDoc(t)
	frame := []byte("opaque-checkpoint-frame")

	ps, err := OpenStore(dir, StoreOptions{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := ps.Create(specFor(t, doc, "rq"), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	ps.SetRunning(j, nil, time.Now())
	if err := ps.SaveCheckpoint(j, frame); err != nil {
		t.Fatal(err)
	}
	ps.Kill()
	ps.Close()

	// One start against a budget of one: recovery quarantines.
	ps2, err := OpenStore(dir, StoreOptions{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	j2 := ps2.Get(j.ID())
	if st := ps2.Status(j2); st.State != StateQuarantined || st.Attempts != 1 {
		t.Fatalf("after crash: %+v, want quarantined with 1 attempt", st)
	}
	if string(ps2.Checkpoint(j2)) != string(frame) {
		t.Fatal("checkpoint did not survive into quarantine")
	}
	if err := ps2.Requeue(j2, time.Now()); err != nil {
		t.Fatal(err)
	}
	if st := ps2.Status(j2); st.State != StateQueued || st.Attempts != 0 || st.Error != "" {
		t.Fatalf("after requeue: %+v, want queued with a fresh budget", st)
	}
	// The process dies immediately after the requeue: the fsynced requeue
	// record must still revive the job at the next recovery.
	ps2.Kill()
	ps2.Close()

	ps3, err := OpenStore(dir, StoreOptions{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ps3.Close()
	rec := ps3.Recovered()
	if len(rec) != 1 || rec[0].ID() != j.ID() {
		t.Fatalf("recovered %d jobs after requeue+kill, want the revived job", len(rec))
	}
	j3 := ps3.Get(j.ID())
	if st := ps3.Status(j3); st.State != StateQueued || st.Attempts != 0 {
		t.Fatalf("revived job after restart: %+v", st)
	}
	if string(ps3.Checkpoint(j3)) != string(frame) {
		t.Fatal("checkpoint lost across requeue and restart")
	}
}
