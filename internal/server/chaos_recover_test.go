package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
)

// TestChaosKillAndRecover is the crash-recovery half of the chaos suite:
// a loaded engine on a persistent store is killed mid-flight (WAL writes
// stop cold, exactly like SIGKILL), the same data directory is reopened,
// and a fresh engine must re-run every accepted-but-unfinished job so
// every accepted job reaches a terminal state exactly once — with the
// pre-crash results still served from the durable store.
func TestChaosKillAndRecover(t *testing.T) {
	dir := t.TempDir()
	doc := encodeBoardDoc(t)

	// SPROUT_SOAK=N scales the load for the CI crash-recovery soak job.
	soak := 1
	if v, err := strconv.Atoi(os.Getenv("SPROUT_SOAK")); err == nil && v > 1 {
		soak = v
	}
	total := 8 * soak
	finishedBeforeKill := 3 * soak

	tr := obs.New()
	ps, err := OpenStore(dir, StoreOptions{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Config{Workers: 2, QueueDepth: total + 8, JobTimeout: 30 * time.Second, Store: ps, Tracer: tr})
	// Scripted route: each job completes only when released, so the test
	// controls exactly how many finish records hit the WAL before the kill.
	release := make(chan struct{})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		select {
		case <-release:
			return &sprout.BoardResult{Report: &obs.RunReport{Tool: "pre-crash"}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	eng.Start()
	ts := httptest.NewServer(eng.Handler())

	cl := NewClient(ts.URL, 1)
	ids := make([]string, 0, total)
	for i := 0; i < total; i++ {
		st, err := cl.Submit(context.Background(), doc, fmt.Sprintf("kr-%d", i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	for i := 0; i < finishedBeforeKill; i++ {
		release <- struct{}{}
	}
	waitFor(t, "pre-crash jobs to finish", func() bool {
		counters, _ := tr.MetricsSnapshot()
		return counters["server.jobs.done"] >= int64(finishedBeforeKill)
	})

	// Crash: the disk stops taking writes, then the process "dies" — an
	// already-expired drain deadline cancels everything still running.
	ps.Kill()
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	_ = eng.Shutdown(dead)
	ts.Close()
	ps.Close()

	// Restart on the same data directory.
	tr2 := obs.New()
	ps2, err := OpenStore(dir, StoreOptions{Tracer: tr2})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	wantRecovered := total - finishedBeforeKill
	if got := len(ps2.Recovered()); got != wantRecovered {
		t.Fatalf("recovered %d jobs, want %d (accepted %d, %d finished pre-kill)",
			got, wantRecovered, total, finishedBeforeKill)
	}
	eng2 := New(Config{Workers: 2, QueueDepth: 32, JobTimeout: 30 * time.Second, Store: ps2, Tracer: tr2})
	eng2.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		return &sprout.BoardResult{Report: &obs.RunReport{Tool: "post-crash"}}, nil
	}
	eng2.Start()
	ts2 := httptest.NewServer(eng2.Handler())
	defer ts2.Close()

	waitFor(t, "recovered jobs to re-run", func() bool {
		for _, id := range ids {
			st, ok := eng2.Job(id)
			if !ok || !st.State.Terminal() {
				return false
			}
		}
		return true
	})

	// Exactly-once terminal: every accepted job is present and done, and
	// each pre-crash result survived with its persisted report.
	done := 0
	for _, id := range ids {
		st, ok := eng2.Job(id)
		if !ok {
			t.Fatalf("accepted job %s lost across the crash", id)
		}
		if st.State != StateDone {
			t.Fatalf("job %s = %s (%s), want done", id, st.State, st.Error)
		}
		done++
		_, rep, _, _ := eng2.Result(id)
		if rep == nil {
			t.Fatalf("job %s has no report after recovery", id)
		}
	}
	if done != total {
		t.Fatalf("done = %d, want %d", done, total)
	}
	preCrash := 0
	for _, id := range ids {
		if _, rep, _, _ := eng2.Result(id); rep != nil && rep.Tool == "pre-crash" {
			preCrash++
		}
	}
	if preCrash != finishedBeforeKill {
		t.Fatalf("%d pre-crash reports survived, want %d (finish records were on disk)",
			preCrash, finishedBeforeKill)
	}

	// The recovery counters are visible on the public /metrics surface.
	resp, err := http.Get(ts2.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if got := m.Counters["wal.recovered_jobs"]; got != int64(wantRecovered) {
		t.Fatalf("/metrics wal.recovered_jobs = %d, want %d", got, wantRecovered)
	}
	if got := m.Counters["server.jobs.recovered"]; got != int64(wantRecovered) {
		t.Fatalf("/metrics server.jobs.recovered = %d, want %d", got, wantRecovered)
	}

	if err := eng2.Shutdown(context.Background()); err != nil {
		t.Fatalf("clean drain after recovery: %v", err)
	}
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveredJobsRespectAdmissionOrder: a restart with a backlog
// deeper than the admission queue must not deadlock — the engine sizes
// its queue to absorb every recovered job.
func TestRecoveredBacklogDeeperThanQueue(t *testing.T) {
	dir := t.TempDir()
	doc := encodeBoardDoc(t)
	ps, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const backlog = 12
	for i := 0; i < backlog; i++ {
		if _, _, err := ps.Create(specFor(t, doc, fmt.Sprintf("bk-%d", i)), time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	ps.Kill()
	ps.Close()

	ps2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps2.Close()
	if got := len(ps2.Recovered()); got != backlog {
		t.Fatalf("recovered %d, want %d", got, backlog)
	}
	// QueueDepth 2 << backlog 12: Start must still return promptly.
	eng := New(Config{Workers: 1, QueueDepth: 2, Store: ps2, Tracer: obs.New()})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		return &sprout.BoardResult{Report: &obs.RunReport{}}, nil
	}
	started := make(chan struct{})
	go func() {
		eng.Start()
		close(started)
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("Start deadlocked re-enqueuing a backlog deeper than the queue")
	}
	waitFor(t, "backlog to drain", func() bool {
		return len(eng.store.NonTerminal()) == 0
	})
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
