package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"sprout"
	"sprout/internal/board"
	"sprout/internal/boardio"
	"sprout/internal/faultinject"
	"sprout/internal/geom"
	"sprout/internal/obs"
)

// exploreBoardDoc builds a routable three-rail board (six net orders, so
// a CheckpointEvery of 2 yields mid-sweep checkpoints) encoded as the
// JSON document the HTTP API accepts.
func exploreBoardDoc(t testing.TB) []byte {
	t.Helper()
	stack := board.Stackup{Layers: []board.Layer{
		{Name: "L1", CopperUM: 35, DielectricBelowUM: 100},
		{Name: "L2", CopperUM: 35, IsPlane: true},
	}}
	rules := board.DesignRules{Clearance: 2, TileDX: 5, TileDY: 5, ViaCost: 5}
	b, err := board.New("explore3", geom.R(0, 0, 200, 120), stack, rules)
	if err != nil {
		t.Fatal(err)
	}
	budgets := map[board.NetID]int64{}
	for i, y := range []int64{10, 50, 90} {
		net := b.AddNet([]string{"VDD", "VIO", "VAUX"}[i], 2, 5)
		budgets[net] = 3000
		if err := b.AddGroup(board.TerminalGroup{
			Name: "pmic" + b.Nets[i].Name, Kind: board.KindPMIC, Net: net, Layer: 1, Current: 2,
			Pads: []geom.Region{geom.RegionFromRect(geom.R(4, y, 12, y+10))},
		}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddGroup(board.TerminalGroup{
			Name: "bga" + b.Nets[i].Name, Kind: board.KindBGA, Net: net, Layer: 1, Current: 2,
			Pads: []geom.Region{geom.RegionFromRect(geom.R(180, y, 188, y+10))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := boardio.Encode(&buf, b, 1, budgets); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// submitExplore runs the engine's real submit path for an exploration job.
func submitExplore(t *testing.T, eng *Engine, doc []byte, key string) string {
	t.Helper()
	dec, err := boardio.Decode(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Submit(dec, SubmitOptions{IdempotencyKey: key, Explore: true})
	if err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// TestChaosCheckpointResume is the durable-checkpoint half of the
// self-healing suite, run end to end with the real explorer: a replica is
// killed mid-sweep right after its first checkpoint hits the WAL, the
// directory is reopened, and the recovered job must resume from the
// checkpoint — finishing with results bit-identical to an uninterrupted
// sweep while routing strictly fewer rails.
func TestChaosCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	doc := exploreBoardDoc(t)

	tr := obs.New()
	ps, err := OpenStore(dir, StoreOptions{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Config{Workers: 1, QueueDepth: 4, JobTimeout: 60 * time.Second,
		CheckpointEvery: 2, Store: ps, Tracer: tr})
	// The kill switch rides the checkpoint sink: the instant the first
	// frame is durable, the disk dies and the sweep's context is cut —
	// the tightest possible crash after a checkpoint.
	origExplore := eng.explore
	eng.explore = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.OrderExploration, error) {
		kctx, kill := context.WithCancel(ctx)
		defer kill()
		inner := opt.ExploreCheckpointSink
		opt.ExploreCheckpointSink = func(ck *sprout.ExploreCheckpoint) error {
			err := inner(ck)
			ps.Kill()
			kill()
			return err
		}
		return origExplore(kctx, dec, opt)
	}
	eng.Start()
	id := submitExplore(t, eng, doc, "ckpt-chaos")
	waitFor(t, "sweep to die at its first checkpoint", func() bool {
		st, ok := eng.Job(id)
		return ok && st.State.Terminal()
	})
	counters, _ := tr.MetricsSnapshot()
	if counters[obs.MWALCkptWrites] < 1 {
		t.Fatalf("%s = %d, want >= 1 before the crash", obs.MWALCkptWrites, counters[obs.MWALCkptWrites])
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	_ = eng.Shutdown(dead)
	ps.Close()

	// Restart: the job recovers with its checkpoint and must resume.
	tr2 := obs.New()
	ps2, err := OpenStore(dir, StoreOptions{Tracer: tr2})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	if got := len(ps2.Recovered()); got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
	if len(ps2.Checkpoint(ps2.Get(id))) == 0 {
		t.Fatal("checkpoint frame did not survive the crash")
	}
	eng2 := New(Config{Workers: 1, QueueDepth: 4, JobTimeout: 60 * time.Second,
		CheckpointEvery: 2, Store: ps2, Tracer: tr2})
	eng2.Start()
	waitFor(t, "recovered sweep to finish", func() bool {
		st, ok := eng2.Job(id)
		return ok && st.State.Terminal()
	})
	resumed, _ := eng2.Job(id)
	if resumed.State != StateDone {
		t.Fatalf("recovered job = %s (%s), want done", resumed.State, resumed.Error)
	}
	if resumed.Attempts != 2 {
		t.Fatalf("recovered job attempts = %d, want 2", resumed.Attempts)
	}
	if resumed.Exploration == nil {
		t.Fatal("recovered exploration job carries no sweep digest")
	}
	counters2, _ := tr2.MetricsSnapshot()
	if counters2[obs.MCkptResumes] != 1 {
		t.Fatalf("%s = %d, want 1", obs.MCkptResumes, counters2[obs.MCkptResumes])
	}
	if counters2[obs.MExploreCkptOrders] < 2 {
		t.Fatalf("%s = %d, want >= 2 (checkpoint every 2)", obs.MExploreCkptOrders, counters2[obs.MExploreCkptOrders])
	}
	if err := eng2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}

	// Baseline: the same document swept uninterrupted on a fresh engine.
	tr3 := obs.New()
	eng3 := New(Config{Workers: 1, QueueDepth: 4, JobTimeout: 60 * time.Second, Tracer: tr3})
	eng3.Start()
	baseID := submitExplore(t, eng3, doc, "ckpt-baseline")
	waitFor(t, "baseline sweep to finish", func() bool {
		st, ok := eng3.Job(baseID)
		return ok && st.State.Terminal()
	})
	baseline, _ := eng3.Job(baseID)
	if baseline.State != StateDone || baseline.Exploration == nil {
		t.Fatalf("baseline sweep = %s (%s)", baseline.State, baseline.Error)
	}
	if err := eng3.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Bit-identical selection: same winner, same score, same sweep shape.
	re, be := resumed.Exploration, baseline.Exploration
	if !reflect.DeepEqual(re.BestOrder, be.BestOrder) {
		t.Fatalf("resumed best order %v != uninterrupted %v", re.BestOrder, be.BestOrder)
	}
	if re.BestScore != be.BestScore {
		t.Fatalf("resumed best score %v != uninterrupted %v", re.BestScore, be.BestScore)
	}
	if re.OrdersTried != be.OrdersTried || re.OrdersFailed != be.OrdersFailed {
		t.Fatalf("resumed sweep shape %d/%d != uninterrupted %d/%d",
			re.OrdersTried, re.OrdersFailed, be.OrdersTried, be.OrdersFailed)
	}
	// Strictly fewer rail routes: the replayed prefix cost nothing.
	if re.PrefixMisses >= be.PrefixMisses {
		t.Fatalf("resumed sweep routed %d rails, uninterrupted routed %d — the checkpoint saved no work",
			re.PrefixMisses, be.PrefixMisses)
	}
	t.Logf("checkpoint resume: %d rail routes vs %d uninterrupted (best order %v, score %.6g)",
		re.PrefixMisses, be.PrefixMisses, re.BestOrder, re.BestScore)
}

// TestSaveCheckpointFaultInjection pins the non-fatal contract of the
// checkpoint persist path: an injected write fault surfaces as an error
// plus a counter, stores nothing, and a later healthy persist succeeds.
func TestSaveCheckpointFaultInjection(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := obs.New()
	ps, err := OpenStore(t.TempDir(), StoreOptions{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	j, _, err := ps.Create(specFor(t, encodeBoardDoc(t), "ck"), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	faultinject.Arm(faultinject.SiteCkptWrite, 1, func() error { return boom })
	if err := ps.SaveCheckpoint(j, []byte("frame-1")); !errors.Is(err, boom) {
		t.Fatalf("armed SaveCheckpoint: %v, want %v", err, boom)
	}
	if ps.Checkpoint(j) != nil {
		t.Fatal("failed persist left a checkpoint behind")
	}
	counters, _ := tr.MetricsSnapshot()
	if counters[obs.MWALCkptWriteErrors] != 1 {
		t.Fatalf("%s = %d, want 1", obs.MWALCkptWriteErrors, counters[obs.MWALCkptWriteErrors])
	}
	if err := ps.SaveCheckpoint(j, []byte("frame-2")); err != nil {
		t.Fatalf("disarmed SaveCheckpoint: %v", err)
	}
	if string(ps.Checkpoint(j)) != "frame-2" {
		t.Fatal("healthy persist after a fault did not stick")
	}
}

// TestCompactionSurvivesSyncFaults drives the two durability barriers the
// snapshot+compaction pass crosses — the directory fsync after the
// snapshot rename, and the fsync of the truncated WAL — through injected
// failures. Either fault must degrade to "compaction skipped, WAL keeps
// the state": reopening the directory recovers every job.
func TestCompactionSurvivesSyncFaults(t *testing.T) {
	for name, site := range map[string]string{
		"dir_fsync_after_rename": faultinject.SiteDirSync,
		"wal_truncate_fsync":     faultinject.SiteWALSync,
	} {
		t.Run(name, func(t *testing.T) {
			faultinject.Reset()
			defer faultinject.Reset()
			dir := t.TempDir()
			doc := encodeBoardDoc(t)
			ps, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				j, _, err := ps.Create(specFor(t, doc, fmt.Sprintf("sf-%d", i)), time.Now())
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					ps.SetRunning(j, nil, time.Now())
				}
			}
			// The close-time compaction hits the armed barrier and must fail
			// soft: the WAL still holds every record.
			faultinject.Arm(site, 1, func() error { return errors.New("power loss at the barrier") })
			ps.Close()
			faultinject.Reset()

			ps2, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatalf("reopen after %s fault: %v", name, err)
			}
			defer ps2.Close()
			if got := len(ps2.Recovered()); got != 2 {
				t.Fatalf("recovered %d jobs after %s fault, want 2", got, name)
			}
			if st := ps2.Status(ps2.Recovered()[0]); st.Attempts != 1 {
				t.Fatalf("first job attempts = %d across the fault, want 1", st.Attempts)
			}
		})
	}
}
