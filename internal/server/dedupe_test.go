package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprout"
	"sprout/internal/boardio"
	"sprout/internal/obs"
)

// reencodeDoc rewrites a board document through a generic map: the JSON
// keys come back alphabetized and re-indented, so the bytes differ while
// the parsed document — and therefore the canonical hash — is identical.
func reencodeDoc(t *testing.T, doc []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(doc, &m); err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(m, "", "    ")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out, doc) {
		t.Fatal("re-encoded document is byte-identical; the test needs a different encoding")
	}
	return out
}

// TestContentDedupeSingleflight: byte-different but canonically
// equivalent keyless submissions racing under concurrent load must
// collapse onto one computation, with every submitter polling the same
// job to the same successful result.
func TestContentDedupeSingleflight(t *testing.T) {
	doc := encodeBoardDoc(t)
	alt := reencodeDoc(t, doc)

	tr := obs.New()
	eng := New(Config{Workers: 2, QueueDepth: 16, Tracer: tr})
	var calls atomic.Int64
	release := make(chan struct{})
	eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
		calls.Add(1)
		<-release
		return &sprout.BoardResult{Report: &obs.RunReport{Tool: "singleflight"}}, nil
	}
	eng.Start()
	defer eng.Shutdown(context.Background())
	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	// First submission lands and starts computing; the gate holds it
	// running while the equivalent copies race in.
	cl := NewClient(ts.URL, 1)
	first, err := cl.Submit(context.Background(), doc, "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job to start", func() bool { return calls.Load() == 1 })

	const racers = 6
	var wg sync.WaitGroup
	statuses := make([]Status, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := doc
			if i%2 == 1 {
				body = alt // byte-different, canonically equivalent
			}
			statuses[i], errs[i] = NewClient(ts.URL, int64(i)).Submit(context.Background(), body, "")
		}(i)
	}
	wg.Wait()
	close(release)

	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if statuses[i].ID != first.ID {
			t.Fatalf("racer %d landed on job %s, want singleflight onto %s", i, statuses[i].ID, first.ID)
		}
		if !statuses[i].Deduped {
			t.Fatalf("racer %d status not marked deduped", i)
		}
	}
	// One computation, every submitter gets the same successful result.
	rep, err := cl.WaitResult(context.Background(), first.ID, 5*time.Millisecond)
	if err != nil || rep == nil || rep.Tool != "singleflight" {
		t.Fatalf("result = (%+v, %v), want the shared report", rep, err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("route ran %d times, want exactly 1", got)
	}
	counters, _ := tr.MetricsSnapshot()
	if counters["dedupe.hits"] != racers {
		t.Fatalf("dedupe.hits = %d, want %d", counters["dedupe.hits"], racers)
	}
}

// TestContentDedupePolicy pins the dedupe boundaries: explicit fresh
// idempotency keys force distinct runs even for identical content, and
// a failed job never absorbs an equivalent resubmission.
func TestContentDedupePolicy(t *testing.T) {
	doc := encodeBoardDoc(t)

	t.Run("fresh keys force distinct runs", func(t *testing.T) {
		eng := New(Config{Workers: 1, QueueDepth: 16, Tracer: obs.New()})
		var calls atomic.Int64
		eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
			calls.Add(1)
			return &sprout.BoardResult{Report: &obs.RunReport{}}, nil
		}
		eng.Start()
		defer eng.Shutdown(context.Background())
		ts := httptest.NewServer(eng.Handler())
		defer ts.Close()
		cl := NewClient(ts.URL, 1)
		a, err := cl.Submit(context.Background(), doc, "key-a")
		if err != nil {
			t.Fatal(err)
		}
		b, err := cl.Submit(context.Background(), doc, "key-b")
		if err != nil {
			t.Fatal(err)
		}
		if a.ID == b.ID {
			t.Fatalf("distinct keys collapsed onto one job %s", a.ID)
		}
	})

	t.Run("failed jobs are not absorbed", func(t *testing.T) {
		eng := New(Config{Workers: 1, QueueDepth: 16, Tracer: obs.New()})
		var calls atomic.Int64
		eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
			if calls.Add(1) == 1 {
				return nil, errors.New("transient board damage")
			}
			return &sprout.BoardResult{Report: &obs.RunReport{}}, nil
		}
		eng.Start()
		defer eng.Shutdown(context.Background())
		ts := httptest.NewServer(eng.Handler())
		defer ts.Close()
		cl := NewClient(ts.URL, 1)
		a, err := cl.Submit(context.Background(), doc, "")
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "first attempt to fail", func() bool {
			st, _ := eng.Job(a.ID)
			return st.State == StateFailed
		})
		b, err := cl.Submit(context.Background(), doc, "")
		if err != nil {
			t.Fatal(err)
		}
		if b.ID == a.ID {
			t.Fatal("equivalent resubmission deduped onto a failed job")
		}
		if rep, werr := cl.WaitResult(context.Background(), b.ID, 5*time.Millisecond); werr != nil || rep == nil {
			t.Fatalf("fresh attempt = (%v, %v), want success", rep, werr)
		}
	})

	t.Run("option flags change the hash", func(t *testing.T) {
		eng := New(Config{Workers: 1, QueueDepth: 16, Tracer: obs.New()})
		eng.route = func(ctx context.Context, dec *boardio.Decoded, opt sprout.RouteOptions) (*sprout.BoardResult, error) {
			return &sprout.BoardResult{Report: &obs.RunReport{}}, nil
		}
		eng.Start()
		defer eng.Shutdown(context.Background())
		ts := httptest.NewServer(eng.Handler())
		defer ts.Close()
		post := func(query string) Status {
			t.Helper()
			resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", bytes.NewReader(doc))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var st Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			return st
		}
		plain := post("")
		manual := post("?manual=1")
		if plain.ID == manual.ID {
			t.Fatal("manual=1 deduped onto the plain run; the flag changes the computation")
		}
		// A knob that does not change the result (timeout) still dedupes.
		timeout := post("?timeout=90s")
		if timeout.ID != plain.ID {
			t.Fatalf("timeout-only resubmission = %s, want dedupe onto %s", timeout.ID, plain.ID)
		}
	})
}
