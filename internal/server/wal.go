package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"sprout/internal/faultinject"
)

// The WAL is an append-only log of job lifecycle records. Each record is
// framed as
//
//	4 bytes little-endian payload length
//	4 bytes little-endian IEEE CRC-32 of the payload
//	payload (JSON walRecord)
//
// so a reader can detect a torn or corrupted tail — the normal aftermath
// of a crash mid-write — and truncate it instead of failing recovery.
// walMaxRecord bounds a single record; a length field beyond it is
// treated as corruption, not an allocation.
const (
	walHeaderSize = 8
	walMaxRecord  = 16 << 20
)

// Record types, in lifecycle order. "drop" unwinds an accept whose job
// was rejected by admission after the accept record was already durable.
// "attempt" supersedes "run" (kept for replaying old logs): it carries
// the start count so recovery can tell a job that keeps crashing the
// process from one that was merely unlucky. "ckpt" carries an opaque
// exploration checkpoint so a killed sweep resumes instead of restarting.
// "quarantine" and "requeue" record the poison-job state transitions.
const (
	walAccept     = "accept"
	walRun        = "run"
	walAttempt    = "attempt"
	walFinish     = "finish"
	walDrop       = "drop"
	walCheckpoint = "ckpt"
	walQuarantine = "quarantine"
	walRequeue    = "requeue"
)

// walRecord is one WAL entry / one job snapshot row. Accept records
// carry everything needed to re-create and re-run the job after a crash:
// the canonical document plus the submission knobs that are not derivable
// from it. Finish records carry the terminal outcome, including the run
// report, so results survive restart.
type walRecord struct {
	T  string    `json:"t"`
	ID string    `json:"id"`
	TS time.Time `json:"ts"`

	// Accept fields.
	Key            string          `json:"key,omitempty"`
	Hash           string          `json:"hash,omitempty"`
	Board          string          `json:"board,omitempty"`
	Doc            json.RawMessage `json:"doc,omitempty"`
	TimeoutNS      int64           `json:"timeout_ns,omitempty"`
	Explore        bool            `json:"explore,omitempty"`
	Manual         bool            `json:"manual,omitempty"`
	SkipExtract    bool            `json:"skip_extract,omitempty"`
	ExploreWorkers int             `json:"explore_workers,omitempty"`
	ExploreSeq     bool            `json:"explore_seq,omitempty"`
	// Trace is the submitter's X-Sprout-Trace header, persisted so a
	// recovered job re-attaches to the originating distributed trace.
	Trace string `json:"trace,omitempty"`

	// Finish fields. Err/Kind double as the preserved diagnostics on a
	// quarantine record.
	Err         string              `json:"err,omitempty"`
	Kind        ErrKind             `json:"kind,omitempty"`
	Report      json.RawMessage     `json:"report,omitempty"`
	Exploration *ExplorationSummary `json:"exploration,omitempty"`

	// Attempt is the 1-based start count on attempt and quarantine
	// records; Ckpt is the opaque exploration-checkpoint frame on ckpt
	// records (base64 via encoding/json).
	Attempt int    `json:"attempt,omitempty"`
	Ckpt    []byte `json:"ckpt,omitempty"`
}

// encodeWALRecord frames one record payload.
func encodeWALRecord(rec *walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("server: encode wal record: %w", err)
	}
	buf := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[walHeaderSize:], payload)
	return buf, nil
}

// decodeWAL parses every intact record from data and returns them along
// with the byte offset of the valid prefix. Anything past the offset —
// a torn header, a short payload, a CRC mismatch, an implausible length,
// or unparseable JSON — is corruption to be truncated by the caller.
// decodeWAL itself never fails: a damaged log yields the records before
// the damage.
func decodeWAL(data []byte) (recs []*walRecord, valid int) {
	off := 0
	for {
		if len(data)-off < walHeaderSize {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n <= 0 || n > walMaxRecord || len(data)-off-walHeaderSize < n {
			return recs, off
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		rec := &walRecord{}
		if err := json.Unmarshal(payload, rec); err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += walHeaderSize + n
	}
}

// walFile is the open log: append (optionally fsynced), truncate-and-
// restart after compaction, and a kill switch that simulates the process
// dying (all subsequent writes vanish, exactly like a SIGKILL).
type walFile struct {
	f      *os.File
	path   string
	killed bool
}

func openWALFile(path string) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("server: seek wal: %w", err)
	}
	return &walFile{f: f, path: path}, nil
}

// append writes one framed record, honoring the disk fault sites. sync
// requests an fsync after the write (the accept path's durability
// barrier). When the corrupt-tail site fires, append deliberately writes
// a torn record and reports success — the caller believes the record is
// durable, exactly like a crash between the write and the flush.
func (w *walFile) append(rec *walRecord, sync bool) error {
	if w.killed {
		return nil // the "process" died; writes go nowhere
	}
	buf, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if ferr := faultinject.Check(faultinject.SiteWALCorrupt); ferr != nil {
		// Injected torn write: half the record reaches the disk, the
		// caller is told all of it did. Recovery must truncate this.
		_, _ = w.f.Write(buf[:walHeaderSize+(len(buf)-walHeaderSize)/2])
		w.killed = true // nothing coherent can follow a torn tail
		return nil
	}
	if ferr := faultinject.Check(faultinject.SiteWALWrite); ferr != nil {
		return fmt.Errorf("server: wal write: %w", ferr)
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("server: wal write: %w", err)
	}
	if sync {
		if ferr := faultinject.Check(faultinject.SiteWALSync); ferr != nil {
			return fmt.Errorf("server: wal fsync: %w", ferr)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("server: wal fsync: %w", err)
		}
	}
	return nil
}

// reset truncates the log to empty after a successful snapshot. The
// truncate is fsynced: without it a power loss could resurrect the
// pre-compaction log bytes next to the new snapshot and replay stale
// lifecycle records over fresher state.
func (w *walFile) reset() error {
	if w.killed {
		return nil
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("server: truncate wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("server: seek wal: %w", err)
	}
	if ferr := faultinject.Check(faultinject.SiteWALSync); ferr != nil {
		return fmt.Errorf("server: sync truncated wal: %w", ferr)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("server: sync truncated wal: %w", err)
	}
	return nil
}

// kill flips the simulated-SIGKILL switch: every later append and reset
// silently vanishes, as if the process had died now. Test-only.
func (w *walFile) kill() { w.killed = true }

func (w *walFile) close() error {
	if w.killed {
		// A killed process does not get to flush; just release the fd.
		return w.f.Close()
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("server: close wal: %w", err)
	}
	return w.f.Close()
}

// loadWAL reads the log at path, truncating a torn or corrupt tail in
// place so the next append continues from a coherent offset. It returns
// the intact records and how many bytes of damage were cut (0 = clean).
func loadWAL(path string) (recs []*walRecord, truncated int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("server: read wal: %w", err)
	}
	recs, valid := decodeWAL(data)
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, 0, fmt.Errorf("server: truncate torn wal tail: %w", err)
		}
		truncated = int64(len(data) - valid)
	}
	return recs, truncated, nil
}
