package route

import (
	"math"
	"testing"

	"sprout/internal/geom"
)

// obstacleSpace builds a 100x60 space with a central blockage and three
// terminals, echoing the paper's Fig. 8 demonstration scene.
func obstacleSpace(t *testing.T) (geom.Region, []Terminal) {
	t.Helper()
	avail := geom.RegionFromRect(geom.R(0, 0, 100, 60)).
		Subtract(geom.RegionFromRect(geom.R(40, 20, 60, 40)))
	terms := []Terminal{
		{Name: "PMIC", Shape: geom.RegionFromRect(geom.R(0, 25, 5, 35)), Current: 4},
		{Name: "BGA1", Shape: geom.RegionFromRect(geom.R(95, 5, 100, 15)), Current: 2},
		{Name: "BGA2", Shape: geom.RegionFromRect(geom.R(95, 45, 100, 55)), Current: 2},
	}
	return avail, terms
}

func TestSeedConnectsTerminals(t *testing.T) {
	avail, terms := obstacleSpace(t)
	tg, err := BuildTileGraph(avail, terms, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	members, err := tg.Seed()
	if err != nil {
		t.Fatal(err)
	}
	if !tg.terminalsConnected(members) {
		t.Fatal("seed must connect all terminals")
	}
	for _, term := range tg.Terminals {
		if !members[term] {
			t.Fatal("terminals must be members of the seed")
		}
	}
	// The seed must be a small fraction of the space.
	if a := tg.MembersArea(members); a >= avail.Area()/2 {
		t.Fatalf("seed area %d suspiciously large vs space %d", a, avail.Area())
	}
}

func TestSeedFillsVoids(t *testing.T) {
	// A ring-shaped seed would have a void; build a space where paths
	// naturally enclose a pocket: square with slot obstacle in the middle
	// bottom, terminals at three corners.
	avail := geom.RegionFromRect(geom.R(0, 0, 60, 60)).
		Subtract(geom.RegionFromRect(geom.R(25, 25, 35, 35)))
	terms := []Terminal{
		{Name: "A", Shape: geom.RegionFromRect(geom.R(0, 0, 5, 5))},
		{Name: "B", Shape: geom.RegionFromRect(geom.R(55, 0, 60, 5))},
		{Name: "C", Shape: geom.RegionFromRect(geom.R(55, 55, 60, 60))},
		{Name: "D", Shape: geom.RegionFromRect(geom.R(0, 55, 5, 60))},
	}
	tg, err := BuildTileGraph(avail, terms, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	members, err := tg.Seed()
	if err != nil {
		t.Fatal(err)
	}
	// Any interior hole in the member shape must be the blockage itself,
	// not routable void (Alg. 2 produces a voidless subgraph).
	shape := tg.Union(members)
	frame := shape.Bounds()
	for _, comp := range geom.RegionFromRect(frame).Subtract(shape).Components() {
		if touchesFrame(comp, frame) {
			continue
		}
		// Interior pocket: must not contain routable space.
		if comp.Overlaps(avail) {
			t.Fatalf("voidless seed violated: routable pocket %v left unfilled", comp.Bounds())
		}
	}
}

func TestNodeCurrentsSeriesChain(t *testing.T) {
	// 5 tiles in a row, terminals at both ends: every node carries the
	// same current, and pair resistance equals the series chain.
	avail := geom.RegionFromRect(geom.R(0, 0, 50, 10))
	terms := []Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 0, 3, 3)), Current: 1},
		{Name: "T", Shape: geom.RegionFromRect(geom.R(47, 0, 50, 3)), Current: 1},
	}
	tg, err := BuildTileGraph(avail, terms, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]bool, tg.G.N())
	for i := range members {
		members[i] = true
	}
	m, err := tg.NodeCurrents(members, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 nodes, 4 unit-conductance edges in series: R = 4.
	if math.Abs(m.Resistance-4) > 1e-6 {
		t.Fatalf("chain resistance = %g, want 4", m.Resistance)
	}
	if len(m.PairResistance) != 1 || math.Abs(m.PairResistance[0]-4) > 1e-6 {
		t.Fatalf("pair resistance = %v, want [4]", m.PairResistance)
	}
	// End nodes see current 1 (one incident edge), middle nodes 2.
	s, tt := tg.Terminals[0], tg.Terminals[1]
	for id := 0; id < tg.G.N(); id++ {
		want := 2.0
		if id == s || id == tt {
			want = 1.0
		}
		if math.Abs(m.NodeCurrent[id]-want) > 1e-6 {
			t.Fatalf("node %d current = %g, want %g", id, m.NodeCurrent[id], want)
		}
	}
}

func TestNodeCurrentsErrors(t *testing.T) {
	tg, _ := twoTerm(t, 40, 20, 10)
	bad := make([]bool, 3)
	if _, err := tg.NodeCurrents(bad, nil); err == nil {
		t.Fatal("wrong mask length must error")
	}
	none := make([]bool, tg.G.N())
	if _, err := tg.NodeCurrents(none, nil); err == nil {
		t.Fatal("terminals outside subgraph must error")
	}
	// Terminals present but disconnected.
	only := make([]bool, tg.G.N())
	only[tg.Terminals[0]] = true
	only[tg.Terminals[1]] = true
	if _, err := tg.NodeCurrents(only, nil); err == nil {
		t.Fatal("disconnected terminals must error")
	}
}

func TestSmartGrowReducesResistance(t *testing.T) {
	avail, terms := obstacleSpace(t)
	tg, err := BuildTileGraph(avail, terms, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	members, err := tg.Seed()
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSolveCache()
	prev, err := tg.Resistance(members)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		added, err := tg.SmartGrow(members, 6, warm)
		if err != nil {
			t.Fatal(err)
		}
		if len(added) == 0 {
			break
		}
		cur, err := tg.Resistance(members)
		if err != nil {
			t.Fatal(err)
		}
		// Rayleigh monotonicity: adding conductors can only help.
		if cur > prev+1e-9 {
			t.Fatalf("grow iteration %d increased resistance %g -> %g", i, prev, cur)
		}
		prev = cur
	}
}

func TestSmartGrowPrefersHighCurrentRegions(t *testing.T) {
	// With a narrow neck carrying all current, growth should widen the
	// neck region rather than scatter.
	avail := geom.RegionFromRect(geom.R(0, 0, 100, 30))
	terms := []Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 10, 5, 20)), Current: 1},
		{Name: "T", Shape: geom.RegionFromRect(geom.R(95, 10, 100, 20)), Current: 1},
	}
	tg, err := BuildTileGraph(avail, terms, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	members, err := tg.Seed()
	if err != nil {
		t.Fatal(err)
	}
	added, err := tg.SmartGrow(members, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 10 {
		t.Fatalf("added %d, want 10", len(added))
	}
	// Every added node must touch the existing corridor (y within one
	// tile of the seed row).
	for _, id := range added {
		b := tg.Cells[id].Bounds()
		if b.Y0 > 25 || b.Y1 < 5 {
			t.Fatalf("added node %d at %v far from the current corridor", id, b)
		}
	}
}

func TestSmartRefineKeepsAreaAndConnectivity(t *testing.T) {
	avail, terms := obstacleSpace(t)
	tg, err := BuildTileGraph(avail, terms, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	members, err := tg.Seed()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.SmartGrow(members, 30, nil); err != nil {
		t.Fatal(err)
	}
	beforeCount := MemberCount(members)
	res, err := tg.SmartRefine(members, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tg.terminalsConnected(members) {
		t.Fatal("refine must keep terminals connected")
	}
	if got := MemberCount(members); got != beforeCount {
		t.Fatalf("refine changed node count %d -> %d", beforeCount, got)
	}
	if res <= 0 {
		t.Fatalf("refine resistance = %g, want > 0", res)
	}
}

func TestRemoveLowCurrentNeverRemovesTerminals(t *testing.T) {
	tg, _ := twoTerm(t, 60, 20, 10)
	members := make([]bool, tg.G.N())
	for i := range members {
		members[i] = true
	}
	m, err := tg.NodeCurrents(members, nil)
	if err != nil {
		t.Fatal(err)
	}
	tg.removeLowCurrent(members, m.NodeCurrent, tg.G.N())
	for _, term := range tg.Terminals {
		if !members[term] {
			t.Fatal("terminal removed")
		}
	}
	if !tg.terminalsConnected(members) {
		t.Fatal("terminals disconnected")
	}
}

func TestDilateErode(t *testing.T) {
	avail, terms := obstacleSpace(t)
	tg, err := BuildTileGraph(avail, terms, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	members, err := tg.Seed()
	if err != nil {
		t.Fatal(err)
	}
	areaBefore := tg.MembersArea(members)
	n := tg.Dilate(members)
	if n == 0 {
		t.Fatal("dilate must add boundary nodes")
	}
	if tg.MembersArea(members) <= areaBefore {
		t.Fatal("dilate must increase area")
	}
	if err := tg.Erode(members, areaBefore, 4, nil); err != nil {
		t.Fatal(err)
	}
	if got := tg.MembersArea(members); got > areaBefore {
		t.Fatalf("erode left area %d > budget %d", got, areaBefore)
	}
	if !tg.terminalsConnected(members) {
		t.Fatal("erode disconnected terminals")
	}
}

func TestRouteEndToEnd(t *testing.T) {
	avail, terms := obstacleSpace(t)
	res, err := Route(avail, terms, Config{DX: 5, DY: 5, AreaMax: 3200, ReheatDilations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shape.Empty() {
		t.Fatal("route must produce copper")
	}
	if res.Shape.Area() > 3200 {
		t.Fatalf("area %d exceeds budget 3200", res.Shape.Area())
	}
	// Copper must stay inside the available space.
	if !res.Shape.Subtract(avail).Empty() {
		t.Fatal("copper escaped the available space")
	}
	// Copper must reach every terminal.
	for _, term := range terms {
		if !res.Shape.Overlaps(term.Shape) {
			t.Fatalf("copper misses terminal %s", term.Name)
		}
	}
	if res.Resistance <= 0 {
		t.Fatalf("resistance = %g", res.Resistance)
	}
	// Trace must contain all stages in order.
	stages := map[string]bool{}
	for _, rec := range res.Trace {
		stages[rec.Stage] = true
	}
	for _, want := range []string{"seed", "grow", "refine", "dilate", "erode"} {
		if !stages[want] {
			t.Fatalf("trace missing stage %q: %+v", want, stages)
		}
	}
	if res.Trace[0].Stage != "seed" {
		t.Fatal("first trace record must be seed")
	}
	// Final resistance must not exceed the seed resistance.
	if res.Resistance > res.Trace[0].Resistance+1e-9 {
		t.Fatalf("pipeline worsened resistance: seed %g final %g",
			res.Trace[0].Resistance, res.Resistance)
	}
}

func TestRouteMoreAreaLowerResistance(t *testing.T) {
	// The heart of Fig. 12a: larger area budget, lower resistance.
	avail, terms := obstacleSpace(t)
	var prev float64
	for i, budget := range []int64{2500, 3500, 5000} {
		res, err := Route(avail, terms, Config{DX: 5, DY: 5, AreaMax: budget})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Resistance > prev*1.02 {
			t.Fatalf("budget %d resistance %g not below previous %g", budget, res.Resistance, prev)
		}
		prev = res.Resistance
	}
}

func TestRouteRespectsAreaBudgetTightly(t *testing.T) {
	avail, terms := obstacleSpace(t)
	res, err := Route(avail, terms, Config{DX: 5, DY: 5, AreaMax: 2800})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Shape.Area()
	if got > 2800+25*25 { // one tile of overshoot tolerance
		t.Fatalf("area %d far above budget 2800", got)
	}
	if got < 2300 {
		t.Fatalf("area %d far below budget 2800 (under-grown)", got)
	}
}

func TestRouteSeedExceedsBudgetError(t *testing.T) {
	avail, terms := obstacleSpace(t)
	if _, err := Route(avail, terms, Config{DX: 5, DY: 5, AreaMax: 10}); err == nil {
		t.Fatal("impossible budget must error")
	}
}

func TestRouteDefaultsApplied(t *testing.T) {
	avail, terms := obstacleSpace(t)
	res, err := Route(avail, terms, Config{DX: 5, DY: 5})
	if err != nil {
		t.Fatal(err)
	}
	seedArea := res.Trace[0].Area
	if res.Shape.Area() > 4*seedArea+600 {
		t.Fatalf("default budget should be ~4x seed area: got %d vs seed %d",
			res.Shape.Area(), seedArea)
	}
}
