package route

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"strings"
	"time"

	"sprout/internal/faultinject"
	"sprout/internal/geom"
	"sprout/internal/obs"
	"sprout/internal/sparse"
)

// stageCtx opens a tracing span for one pipeline stage and tags the
// goroutine's pprof labels with the stage name, so CPU profiles attribute
// solver time to paper stages (the labels are inherited by the solver
// worker pool). The returned done func ends the span and restores the
// previous labels; it must run on the goroutine that called stageCtx.
func stageCtx(ctx context.Context, stage string, attrs ...obs.Attr) (context.Context, *obs.Span, func()) {
	lctx := pprof.WithLabels(ctx, pprof.Labels("stage", stage))
	pprof.SetGoroutineLabels(lctx)
	sctx, sp := obs.StartSpan(lctx, stage, attrs...)
	// Each stage feeds its stage.<name> latency histogram so /metrics can
	// report p50/p95/p99 per paper stage. Gated on the tracer so the
	// disabled path stays free of clock reads.
	tr := obs.FromContext(ctx)
	var start time.Time
	if tr.Enabled() {
		start = time.Now()
	}
	return sctx, sp, func() {
		sp.End()
		if tr.Enabled() {
			tr.Histogram(obs.MStagePrefix + strings.ToLower(stage)).Observe(float64(time.Since(start)) / 1e6)
		}
		pprof.SetGoroutineLabels(ctx)
	}
}

// Config tunes the SPROUT pipeline. Zero values select the documented
// defaults.
type Config struct {
	// DX, DY are the tile dimensions (paper Alg. 1 Δx, Δy). Default 10.
	DX, DY int64
	// AreaMax is the metal area budget A_max in grid units squared
	// (paper Eq. 5). Zero means "seed area times 4".
	AreaMax int64
	// GrowNodes is ΔV, the number of nodes added per SmartGrow iteration.
	// Default: enough tiles to add ~2% of the area budget, at least 1.
	GrowNodes int
	// RefineNodes is k for SmartRefine. Default max(GrowNodes/2, 1).
	RefineNodes int
	// RefineIters caps the refinement iterations. Default 10; negative
	// disables refinement entirely (used by ablation studies).
	RefineIters int
	// RefineTol stops refinement when the relative resistance improvement
	// falls below it (paper Fig. 8f: "the reduction in impedance is
	// negligible, triggering termination"). Default 1e-3.
	RefineTol float64
	// ReheatDilations is the number of dilation sweeps of the reheating
	// stage (§II-F). Zero disables reheating.
	ReheatDilations int
	// ErodeBatch is the number of nodes removed per erosion iteration
	// during reheating. Default GrowNodes.
	ErodeBatch int
	// NoSolverCache disables the incremental solver session (DESIGN.md
	// §5g): every nodal analysis then rebuilds its subgraph, Laplacian,
	// and preconditioner from scratch, keeping only warm-start vectors.
	// Results are identical either way; the flag exists for differential
	// testing and ablation runs.
	NoSolverCache bool
}

// Validate rejects configurations that would silently misbehave once
// withDefaults filled the zero fields: negative tile dimensions, a
// negative area budget, or a refinement tolerance that is NaN or negative
// (the improvement test would then never terminate refinement early).
func (c Config) Validate() error {
	if c.DX < 0 || c.DY < 0 {
		return fmt.Errorf("route: tile dimensions DX=%d DY=%d must be non-negative (0 selects the default)", c.DX, c.DY)
	}
	if c.AreaMax < 0 {
		return fmt.Errorf("route: AreaMax %d must be non-negative (0 selects 4x the seed area)", c.AreaMax)
	}
	if math.IsNaN(c.RefineTol) || c.RefineTol < 0 {
		return fmt.Errorf("route: RefineTol %g must be a non-negative number (0 selects the default 1e-3)", c.RefineTol)
	}
	return nil
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.DX == 0 {
		c.DX = 10
	}
	if c.DY == 0 {
		c.DY = c.DX
	}
	if c.RefineIters == 0 {
		c.RefineIters = 10
	}
	if c.RefineTol == 0 {
		c.RefineTol = 1e-3
	}
	return c
}

// IterRecord traces one pipeline step for convergence analysis (Fig. 8)
// and the runtime study (§II-H).
type IterRecord struct {
	Stage      string        // "seed", "grow", "refine", "dilate", "erode"
	Nodes      int           // subgraph order |V_n^s|
	Area       int64         // metal area
	Resistance float64       // objective (relative units)
	Elapsed    time.Duration // cumulative wall clock
}

// Result is a routed net.
type Result struct {
	// Shape is the synthesized copper region (back-converted union of the
	// member tiles, paper §II-G).
	Shape geom.Region
	// Members is the final member mask over tile-graph nodes.
	Members []bool
	// Graph is the tile graph the route was computed on.
	Graph *TileGraph
	// Resistance is the final weighted pairwise effective resistance in
	// relative (sheet-squares) units.
	Resistance float64
	// PairResistance lists final per-pair effective resistances.
	PairResistance []float64
	// Trace records every pipeline iteration.
	Trace []IterRecord
	// Solve summarizes the solver-fallback-ladder telemetry across every
	// nodal analysis the pipeline ran — successful solves included.
	Solve sparse.SolveStats
}

// Route runs the full pipeline without cancellation support; see RouteCtx.
func Route(avail geom.Region, terms []Terminal, cfg Config) (*Result, error) {
	return RouteCtx(context.Background(), avail, terms, cfg)
}

// RouteCtx runs the full SPROUT pipeline on one net's available space
// (paper Fig. 3): tile → seed → SmartGrow to the area budget → SmartRefine
// → optional reheating → back conversion. The context is checked between
// pipeline iterations and inside the linear solves; on cancellation the
// pipeline aborts with ctx.Err().
func RouteCtx(ctx context.Context, avail geom.Region, terms []Terminal, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	tg, err := spaceToGraph(ctx, avail, terms, cfg)
	if err != nil {
		return nil, err
	}
	return tg.RouteCtx(ctx, cfg)
}

// spaceToGraph runs the tiling stage (paper Alg. 1) under its tracing
// span, annotated with the resulting graph size.
func spaceToGraph(ctx context.Context, avail geom.Region, terms []Terminal, cfg Config) (*TileGraph, error) {
	_, sp, done := stageCtx(ctx, "SpaceToGraph")
	defer done()
	tg, err := BuildTileGraph(avail, terms, cfg.DX, cfg.DY)
	if err != nil {
		sp.Fail(err)
		return nil, err
	}
	sp.SetAttrs(
		obs.A("nodes", tg.G.N()),
		obs.A("edges", tg.G.M()),
		obs.A("terminals", len(tg.Terminals)))
	return tg, nil
}

// SeedOnly runs only the tiling and seed stages (paper Algorithm 2) — the
// degraded route a rail falls back to when the full pipeline fails
// (per-rail failure isolation). The result carries the seed shape and, when
// the nodal analysis itself still works, its metrics; otherwise Resistance
// is NaN.
func SeedOnly(ctx context.Context, avail geom.Region, terms []Terminal, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	tg, err := spaceToGraph(ctx, avail, terms, cfg)
	if err != nil {
		return nil, err
	}
	sctx, sp, done := stageCtx(ctx, "Seed", obs.A("degraded", true))
	defer done()
	members, err := tg.Seed()
	if err != nil {
		sp.Fail(err)
		return nil, err
	}
	warm := NewSolveCache()
	warm.noSession = cfg.NoSolverCache
	res := &Result{
		Shape:      tg.Union(members),
		Members:    members,
		Graph:      tg,
		Resistance: math.NaN(),
	}
	if m, merr := tg.NodeCurrentsCtx(sctx, members, warm); merr == nil {
		res.Resistance = m.Resistance
		res.PairResistance = m.PairResistance
	} else {
		sp.Fail(merr)
	}
	res.Solve = warm.stats
	res.Trace = []IterRecord{{
		Stage:      "seed",
		Nodes:      MemberCount(members),
		Area:       tg.MembersArea(members),
		Resistance: res.Resistance,
	}}
	return res, nil
}

// Route runs the pipeline on an already built tile graph without
// cancellation support; see RouteCtx.
func (tg *TileGraph) Route(cfg Config) (*Result, error) {
	return tg.RouteCtx(context.Background(), cfg)
}

// RouteCtx runs the pipeline on an already built tile graph.
func (tg *TileGraph) RouteCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	var trace []IterRecord
	warm := NewSolveCache()
	warm.noSession = cfg.NoSolverCache

	record := func(stage string, members []bool, res float64) {
		trace = append(trace, IterRecord{
			Stage:      stage,
			Nodes:      MemberCount(members),
			Area:       tg.MembersArea(members),
			Resistance: res,
			Elapsed:    time.Since(start),
		})
		if obs.Enabled(ctx) {
			attrs := []obs.Attr{
				obs.A("nodes", MemberCount(members)),
				obs.A("area", tg.MembersArea(members)),
			}
			if !math.IsNaN(res) {
				attrs = append(attrs, obs.A("resistance", res))
			}
			obs.Event(ctx, "iter."+stage, attrs...)
		}
	}

	// runStage runs one pipeline stage under its span + pprof labels and
	// records a failure on the span before propagating it.
	runStage := func(name string, fn func(sctx context.Context, sp *obs.Span) error) error {
		sctx, sp, done := stageCtx(ctx, name)
		err := fn(sctx, sp)
		sp.Fail(err)
		done()
		return err
	}

	// Stage 1: seed (Alg. 2).
	var members []bool
	if err := runStage("Seed", func(sctx context.Context, sp *obs.Span) error {
		var err error
		members, err = tg.Seed()
		if err != nil {
			return err
		}
		m, err := tg.NodeCurrentsCtx(sctx, members, warm)
		if err != nil {
			return fmt.Errorf("route: seed metrics: %w", err)
		}
		sp.SetAttrs(
			obs.A("nodes", MemberCount(members)),
			obs.A("area", tg.MembersArea(members)))
		record("seed", members, m.Resistance)
		return nil
	}); err != nil {
		return nil, err
	}

	areaMax := cfg.AreaMax
	if areaMax <= 0 {
		areaMax = 4 * tg.MembersArea(members)
	}
	if tg.MembersArea(members) > areaMax {
		return nil, fmt.Errorf("route: seed area %d already exceeds budget %d; increase AreaMax",
			tg.MembersArea(members), areaMax)
	}
	growNodes := cfg.GrowNodes
	if growNodes <= 0 {
		tileArea := cfg.DX * cfg.DY
		growNodes = int(areaMax / 50 / tileArea)
		if growNodes < 1 {
			growNodes = 1
		}
	}
	refineNodes := cfg.RefineNodes
	if refineNodes <= 0 {
		refineNodes = growNodes / 2
		if refineNodes < 1 {
			refineNodes = 1
		}
	}
	erodeBatch := cfg.ErodeBatch
	if erodeBatch <= 0 {
		erodeBatch = growNodes
	}

	// Stage 2: SmartGrow until the area budget is reached (Alg. 4, §II-D),
	// then trim any overshoot so the budget constraint of Eq. 5 holds from
	// here on. Each iteration is a cancellation point (and a
	// fault-injection site so tests can abort mid-grow deterministically).
	if err := runStage("Grow", func(sctx context.Context, sp *obs.Span) error {
		grows := 0
		for tg.MembersArea(members) < areaMax {
			if err := faultinject.Check(faultinject.SiteGrow); err != nil {
				return fmt.Errorf("route: grow: %w", err)
			}
			if err := sctx.Err(); err != nil {
				return err
			}
			added, err := tg.SmartGrowCtx(sctx, members, growNodes, warm)
			if err != nil {
				return fmt.Errorf("route: grow: %w", err)
			}
			if len(added) == 0 {
				break // space exhausted before the budget
			}
			mm, err := tg.NodeCurrentsCtx(sctx, members, warm)
			if err != nil {
				return fmt.Errorf("route: grow metrics: %w", err)
			}
			grows++
			record("grow", members, mm.Resistance)
		}
		sp.SetAttrs(obs.A("iterations", grows), obs.A("area", tg.MembersArea(members)))
		// The last grow batch may overshoot A_max; erode the excess.
		if err := tg.ErodeCtx(sctx, members, areaMax, erodeBatch, warm); err != nil {
			return fmt.Errorf("route: trim: %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Stage 3: SmartRefine until improvement is negligible (Alg. 5, §II-E).
	refinePass := func(rctx context.Context, prev float64) (float64, error) {
		for it := 0; it < cfg.RefineIters; it++ {
			if err := faultinject.Check(faultinject.SiteRefine); err != nil {
				return 0, err
			}
			if err := rctx.Err(); err != nil {
				return 0, err
			}
			res, err := tg.SmartRefineCtx(rctx, members, refineNodes, warm)
			if err != nil {
				return 0, err
			}
			record("refine", members, res)
			if prev-res < cfg.RefineTol*prev {
				return res, nil
			}
			prev = res
		}
		return prev, nil
	}
	var cur float64
	if err := runStage("Refine", func(sctx context.Context, sp *obs.Span) error {
		mm, err := tg.NodeCurrentsCtx(sctx, members, warm)
		if err != nil {
			return fmt.Errorf("route: trim metrics: %w", err)
		}
		cur, err = refinePass(sctx, mm.Resistance)
		if err != nil {
			return fmt.Errorf("route: refine: %w", err)
		}
		sp.SetAttrs(obs.A("resistance", cur))
		return nil
	}); err != nil {
		return nil, err
	}

	// Snapshot the best within-budget configuration seen so far. Reheating
	// is an exploration move (§II-F) and may regress; it is only accepted
	// when it finds a better basin.
	best := append([]bool(nil), members...)
	bestRes := cur

	// Stage 4: reheating (§II-F): dilate past the budget, erode back.
	if cfg.ReheatDilations > 0 {
		if err := runStage("Reheat", func(sctx context.Context, sp *obs.Span) error {
			if err := sctx.Err(); err != nil {
				return err
			}
			for d := 0; d < cfg.ReheatDilations; d++ {
				if tg.Dilate(members) == 0 {
					break
				}
			}
			mm, err := tg.NodeCurrentsCtx(sctx, members, warm)
			if err != nil {
				return fmt.Errorf("route: dilate metrics: %w", err)
			}
			record("dilate", members, mm.Resistance)
			if err := tg.ErodeCtx(sctx, members, areaMax, erodeBatch, warm); err != nil {
				return fmt.Errorf("route: erode: %w", err)
			}
			mm, err = tg.NodeCurrentsCtx(sctx, members, warm)
			if err != nil {
				return fmt.Errorf("route: erode metrics: %w", err)
			}
			record("erode", members, mm.Resistance)

			// A short refine pass settles the eroded shape.
			cur, err = refinePass(sctx, mm.Resistance)
			if err != nil {
				return fmt.Errorf("route: post-reheat refine: %w", err)
			}
			if cur < bestRes {
				bestRes = cur
				copy(best, members)
			} else {
				copy(members, best) // reheat regressed: restore
				record("restore", members, bestRes)
				sp.SetAttrs(obs.A("restored", true))
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	final, err := tg.NodeCurrentsCtx(ctx, members, warm)
	if err != nil {
		return nil, fmt.Errorf("route: final metrics: %w", err)
	}
	res := &Result{
		Members:        members,
		Graph:          tg,
		Resistance:     final.Resistance,
		PairResistance: final.PairResistance,
		Trace:          trace,
	}
	// Stage 5: back conversion (§II-G) — tiles to copper polygons.
	if err := runStage("BackConvert", func(sctx context.Context, sp *obs.Span) error {
		res.Shape = tg.Union(members)
		return nil
	}); err != nil {
		return nil, err
	}
	res.Solve = warm.stats
	return res, nil
}
