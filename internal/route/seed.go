package route

import (
	"fmt"

	"sprout/internal/geom"
)

// Seed builds the voidless seed subgraph of paper Algorithm 2: the union
// of minimum-resistance paths between every terminal pair, with interior
// voids filled to accelerate convergence (Fig. 8a-b). It returns the
// member mask over tile-graph nodes.
func (tg *TileGraph) Seed() ([]bool, error) {
	cost := tg.CostGraph()
	members := make([]bool, tg.G.N())
	k := len(tg.Terminals)
	for i := 0; i < k; i++ {
		rest := tg.Terminals[i+1:]
		if len(rest) == 0 {
			break
		}
		paths, err := cost.ShortestPaths(tg.Terminals[i], rest)
		if err != nil {
			return nil, fmt.Errorf("route: seed from terminal %d: %w", i, err)
		}
		for _, p := range paths {
			for _, id := range p {
				members[id] = true
			}
		}
	}
	tg.fillVoids(members)
	return members, nil
}

// fillVoids adds every node whose tile lies inside an interior void of the
// member shape (paper Alg. 2 lines 6-10: nodes within the exterior
// boundary of the seed polygon join the subgraph).
func (tg *TileGraph) fillVoids(members []bool) {
	shape := tg.Union(members)
	if shape.Empty() {
		return
	}
	frame := shape.Bounds()
	voids := geom.EmptyRegion()
	for _, comp := range geom.RegionFromRect(frame).Subtract(shape).Components() {
		if touchesFrame(comp, frame) {
			continue // open to the outside: not a void
		}
		voids = voids.Union(comp)
	}
	if voids.Empty() {
		return
	}
	for id := range members {
		if !members[id] && tg.Cells[id].Overlaps(voids) {
			members[id] = true
		}
	}
}

// touchesFrame reports whether the region reaches the frame boundary.
func touchesFrame(g geom.Region, frame geom.Rect) bool {
	b := g.Bounds()
	return b.X0 == frame.X0 || b.Y0 == frame.Y0 || b.X1 == frame.X1 || b.Y1 == frame.Y1
}
