package route

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sprout/internal/geom"
	"sprout/internal/graph"
	"sprout/internal/sparse"
)

// This file is the differential gate on the incremental solver session
// (DESIGN.md §5g): random member-toggle sequences run through the
// incremental path and the from-scratch oracle side by side. While no
// warm-start invalidation has fired the two paths must agree bit for bit —
// voltages, metrics, and ladder telemetry — because member-selection
// decisions in grow/refine depend on exact float comparisons. After an
// invalidation the paths legitimately diverge (the session solved cold at
// full tolerance where the oracle kept a stale warm vector), so agreement
// drops to sparse.ApproxEqual.

// toggleStep is one step of a differential scenario: the non-terminal
// nodes whose membership flips before evaluating. An empty step repeats
// the previous mask, exercising the session's same-mask hit path.
type toggleStep []int

// diffHarness drives one board through a toggle sequence on both paths.
type diffHarness struct {
	tg      *TileGraph
	members []bool
	inc     *SolveCache // incremental session path
	scr     *SolveCache // from-scratch oracle (session disabled)
	// diverged flips once an invalidation ran: from then on the paths
	// carry different warm vectors and only approximate agreement holds.
	diverged bool
}

func newDiffHarness(t *testing.T, tg *TileGraph, members []bool) *diffHarness {
	t.Helper()
	scr := NewSolveCache()
	scr.noSession = true
	return &diffHarness{
		tg:      tg,
		members: append([]bool(nil), members...),
		inc:     NewSolveCache(),
		scr:     scr,
	}
}

func sameStats(a, b sparse.SolveStats) bool {
	if a.Solves != b.Solves || a.Iterations != b.Iterations ||
		a.Escalations != b.Escalations || a.Failures != b.Failures ||
		a.WorstResidual != b.WorstResidual || len(a.Rungs) != len(b.Rungs) {
		return false
	}
	for k, v := range a.Rungs {
		if b.Rungs[k] != v {
			return false
		}
	}
	return true
}

// step applies one toggle and evaluates both paths. It returns a non-nil
// error describing the first disagreement; an agreed-on evaluation failure
// (e.g. disconnected terminals) reverts the toggle and is not a mismatch.
func (h *diffHarness) step(st toggleStep) error {
	for _, id := range st {
		h.members[id] = !h.members[id]
	}
	invBefore := int64(0)
	if h.inc.sess != nil {
		invBefore = h.inc.sess.invalidations
	}
	mi, erri := h.tg.NodeCurrents(h.members, h.inc)
	ms, errs := h.tg.NodeCurrents(h.members, h.scr)
	if (erri == nil) != (errs == nil) {
		return fmt.Errorf("error disagreement: incremental %v, scratch %v", erri, errs)
	}
	if erri != nil {
		if erri.Error() != errs.Error() {
			return fmt.Errorf("error text disagreement: %q vs %q", erri, errs)
		}
		for _, id := range st {
			h.members[id] = !h.members[id] // revert: keep the run alive
		}
		return nil
	}
	if h.inc.sess != nil && h.inc.sess.invalidations != invBefore {
		h.diverged = true
	}
	exact := !h.diverged
	cmp := func(what string, a, b float64) error {
		if exact {
			if a != b {
				return fmt.Errorf("%s: incremental %x vs scratch %x (bit mismatch)", what, a, b)
			}
			return nil
		}
		if !sparse.ApproxEqualTol(a, b, 1e-6) {
			return fmt.Errorf("%s: incremental %g vs scratch %g", what, a, b)
		}
		return nil
	}
	if err := cmp("Resistance", mi.Resistance, ms.Resistance); err != nil {
		return err
	}
	if len(mi.PairResistance) != len(ms.PairResistance) {
		return fmt.Errorf("pair count %d vs %d", len(mi.PairResistance), len(ms.PairResistance))
	}
	for i := range mi.PairResistance {
		if err := cmp(fmt.Sprintf("PairResistance[%d]", i), mi.PairResistance[i], ms.PairResistance[i]); err != nil {
			return err
		}
	}
	for i := range mi.NodeCurrent {
		if err := cmp(fmt.Sprintf("NodeCurrent[%d]", i), mi.NodeCurrent[i], ms.NodeCurrent[i]); err != nil {
			return err
		}
	}
	if exact && !sameStats(mi.Solve, ms.Solve) {
		return fmt.Errorf("solver stats disagree: incremental %+v vs scratch %+v", mi.Solve, ms.Solve)
	}
	return nil
}

// runToggleSeq replays a full scenario from a fresh pair of caches and
// returns the index of the first failing step with its error.
func runToggleSeq(t *testing.T, tg *TileGraph, seedMask []bool, seq []toggleStep) (int, error) {
	t.Helper()
	h := newDiffHarness(t, tg, seedMask)
	for i, st := range seq {
		if err := h.step(st); err != nil {
			return i, err
		}
	}
	return -1, nil
}

// shrinkToggleSeq greedily drops steps while the scenario still fails,
// producing a minimal reproduction for the failure report.
func shrinkToggleSeq(t *testing.T, tg *TileGraph, seedMask []bool, seq []toggleStep) []toggleStep {
	t.Helper()
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(seq); i++ {
			cand := append(append([]toggleStep(nil), seq[:i]...), seq[i+1:]...)
			if _, err := runToggleSeq(t, tg, seedMask, cand); err != nil {
				seq = cand
				changed = true
				break
			}
		}
	}
	return seq
}

// nonTerminalNodes lists toggleable node ids.
func nonTerminalNodes(tg *TileGraph) []int {
	isTerm := make(map[int]bool, len(tg.Terminals))
	for _, t := range tg.Terminals {
		isTerm[t] = true
	}
	var out []int
	for id := 0; id < tg.G.N(); id++ {
		if !isTerm[id] {
			out = append(out, id)
		}
	}
	return out
}

// TestDifferentialIncrementalVsScratch is the property gate: seeded random
// toggle sequences — grow-like additions, refine-like swaps, duplicate
// masks — agree between the incremental session and the from-scratch
// oracle. Failures are shrunk to a minimal step sequence before reporting.
func TestDifferentialIncrementalVsScratch(t *testing.T) {
	avail, terms := obstacleSpace(t)
	tg, err := BuildTileGraph(avail, terms, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	seedMask, err := tg.Seed()
	if err != nil {
		t.Fatal(err)
	}
	candidates := nonTerminalNodes(tg)
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			seq := make([]toggleStep, 0, 40)
			for i := 0; i < 40; i++ {
				if rng.Intn(4) == 0 {
					seq = append(seq, toggleStep{}) // duplicate mask: hit path
					continue
				}
				st := make(toggleStep, 0, 3)
				for k := 0; k <= rng.Intn(3); k++ {
					st = append(st, candidates[rng.Intn(len(candidates))])
				}
				seq = append(seq, st)
			}
			if i, err := runToggleSeq(t, tg, seedMask, seq); err != nil {
				min := shrinkToggleSeq(t, tg, seedMask, seq)
				t.Fatalf("differential mismatch at step %d: %v\nminimal reproduction (%d steps): %v",
					i, err, len(min), min)
			}
		})
	}
}

// TestDifferentialSessionHitPathIsCheap pins the session economics the
// benchmarks rely on: duplicate-mask evaluations are cache hits (no
// rebuild) and re-solve in zero CG iterations off the converged warm
// vectors.
func TestDifferentialSessionHitPathIsCheap(t *testing.T) {
	tg, _ := twoTerm(t, 80, 40, 5)
	members := make([]bool, tg.G.N())
	for i := range members {
		members[i] = true
	}
	warm := NewSolveCache()
	if _, err := tg.NodeCurrents(members, warm); err != nil {
		t.Fatal(err)
	}
	s := warm.sess
	if s == nil || s.rebuilds != 1 {
		t.Fatalf("first evaluation must rebuild once, got %+v", s)
	}
	m, err := tg.NodeCurrents(members, warm)
	if err != nil {
		t.Fatal(err)
	}
	if s.hits != 1 || s.rebuilds != 1 {
		t.Fatalf("repeat evaluation must hit, got hits=%d rebuilds=%d", s.hits, s.rebuilds)
	}
	if m.Solve.Iterations != 0 {
		t.Fatalf("repeat evaluation spent %d CG iterations, want 0 (converged warm start)", m.Solve.Iterations)
	}
}

// weakBridgeTileGraph hand-builds the near-singular board of sparse's
// TestWarmStartNearSingularLaplacian as a tile graph: two 4x4 unit grids
// joined by a 1e-9 bridge, terminals at the far corners. The grounded
// Laplacian's condition number is ~1e9 — the regime where a stale warm
// vector stalls the primary rung instead of converging.
func weakBridgeTileGraph(t *testing.T) *TileGraph {
	t.Helper()
	w, h := 4, 4
	n := 2 * w * h
	g := graph.New(n)
	addEdge := func(u, v int, wt float64) {
		t.Helper()
		if err := g.AddEdge(u, v, wt); err != nil {
			t.Fatal(err)
		}
	}
	block := func(off int) {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				id := off + y*w + x
				if x+1 < w {
					addEdge(id, id+1, 1)
				}
				if y+1 < h {
					addEdge(id, id+w, 1)
				}
			}
		}
	}
	block(0)
	block(w * h)
	addEdge(w*h-1, w*h, 1e-9)
	return &TileGraph{
		G:           g,
		Terminals:   []int{0, n - 1},
		TermCurrent: []float64{1, 1},
	}
}

// TestStaleWarmVectorTriggersColdFallback is the regression gate on the
// stale-warm-start fix: a poisoned warm vector on the near-singular board
// stalls the primary rung; the session must detect the stall, invalidate
// the pair's warm vector (solver.cache.invalidations), and deliver the
// full-tolerance cold answer bit-identically — where the historic path
// settles for the relaxed rung's degraded solution seeded by the stale
// Krylov space.
func TestStaleWarmVectorTriggersColdFallback(t *testing.T) {
	tg := weakBridgeTileGraph(t)
	members := make([]bool, tg.G.N())
	for i := range members {
		members[i] = true
	}
	// The cold oracle: no warm cache at all.
	oracle, err := tg.NodeCurrents(members, nil)
	if err != nil {
		t.Fatal(err)
	}
	poison := func(warm *SolveCache) {
		t.Helper()
		if _, err := tg.NodeCurrents(members, warm); err != nil {
			t.Fatal(err)
		}
		if len(warm.pairVolts) != 1 || warm.pairVolts[0] == nil {
			t.Fatalf("expected one cached pair vector, got %v", warm.pairVolts)
		}
		// A catastrophic stale vector: potentials at the float ceiling,
		// alternating sign. The first matvec overflows, the residual
		// goes NaN, and CG burns its entire budget without converging —
		// the stall mode a vector scaled by the old 1e9 bridge exhibits
		// once the bridge is gone from the system.
		for i := range warm.pairVolts[0] {
			v := 1e308
			if i%2 == 1 {
				v = -1e308
			}
			warm.pairVolts[0][i] = v
		}
	}

	// Historic path: the stall escalates off the primary rung and the
	// relaxed rung's answer is accepted.
	legacy := NewSolveCache()
	legacy.noSession = true
	poison(legacy)
	mLegacy, err := tg.NodeCurrents(members, legacy)
	if err != nil {
		t.Fatalf("legacy path: %v", err)
	}
	if mLegacy.Solve.Escalations == 0 {
		t.Fatalf("poisoned warm start did not stall the primary rung (stats %+v); the scenario lost its teeth", mLegacy.Solve)
	}

	// Session path: same poison, but the stall is detected, the warm
	// vector dropped, and the ladder re-run cold at full tolerance.
	sess := NewSolveCache()
	poison(sess)
	mSess, err := tg.NodeCurrents(members, sess)
	if err != nil {
		t.Fatalf("session path: %v", err)
	}
	if got := sess.sess.invalidations; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
	if mSess.Solve.Rungs[sparse.RungCG] != 1 {
		t.Fatalf("cold fallback must win on the primary rung at full tolerance, stats %+v", mSess.Solve)
	}
	for i := range oracle.NodeCurrent {
		if mSess.NodeCurrent[i] != oracle.NodeCurrent[i] {
			t.Fatalf("NodeCurrent[%d]: session %x vs cold oracle %x (bit mismatch)", i, mSess.NodeCurrent[i], oracle.NodeCurrent[i])
		}
	}
	if mSess.Resistance != oracle.Resistance {
		t.Fatalf("Resistance: session %x vs cold oracle %x", mSess.Resistance, oracle.Resistance)
	}
	// And the fix is an improvement, not just a difference: the session's
	// answer honors the full tolerance while the legacy answer was only
	// relaxed-tolerance accurate.
	if mSess.Solve.WorstResidual > 1e-10 {
		t.Fatalf("session residual %g exceeds the full tolerance", mSess.Solve.WorstResidual)
	}
	if !math.IsNaN(mLegacy.Resistance) && mLegacy.Solve.WorstResidual <= mSess.Solve.WorstResidual {
		t.Logf("note: legacy residual %g vs session %g", mLegacy.Solve.WorstResidual, mSess.Solve.WorstResidual)
	}
}

// FuzzIncrementalNodeCurrents fuzzes the toggle stream: bytes drive
// membership flips on a fixed board and every evaluation must agree with
// the from-scratch oracle (bit-exactly until an invalidation fires).
func FuzzIncrementalNodeCurrents(f *testing.F) {
	f.Add(uint64(1), []byte{3, 7, 11, 3, 19})
	f.Add(uint64(2), []byte{0, 0, 0, 0})
	f.Add(uint64(42), []byte{5, 29, 5, 29, 13, 13, 2})
	avail := geom.RegionFromRect(geom.R(0, 0, 100, 60)).
		Subtract(geom.RegionFromRect(geom.R(40, 20, 60, 40)))
	terms := []Terminal{
		{Name: "PMIC", Shape: geom.RegionFromRect(geom.R(0, 25, 5, 35)), Current: 4},
		{Name: "BGA1", Shape: geom.RegionFromRect(geom.R(95, 5, 100, 15)), Current: 2},
		{Name: "BGA2", Shape: geom.RegionFromRect(geom.R(95, 45, 100, 55)), Current: 2},
	}
	tg, err := BuildTileGraph(avail, terms, 10, 10)
	if err != nil {
		f.Fatal(err)
	}
	seedMask, err := tg.Seed()
	if err != nil {
		f.Fatal(err)
	}
	candidates := nonTerminalNodes(tg)
	f.Fuzz(func(t *testing.T, seed uint64, toggles []byte) {
		if len(toggles) > 64 {
			toggles = toggles[:64]
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		h := newDiffHarness(t, tg, seedMask)
		for i, b := range toggles {
			var st toggleStep
			if b%4 != 0 {
				// Offset by the seeded stream so equal bytes still
				// explore different nodes across seeds.
				st = toggleStep{candidates[(int(b)+rng.Intn(len(candidates)))%len(candidates)]}
			}
			if err := h.step(st); err != nil {
				t.Fatalf("step %d (byte %d): %v", i, b, err)
			}
		}
	})
}
