package route

import (
	"context"
	"sort"

	"sprout/internal/obs"
)

// removeLowCurrent removes up to k non-terminal member nodes in ascending
// node-current order, skipping any removal that would disconnect the
// terminals (paper Alg. 5 lines 3-6; the connectivity guard is required in
// practice: the minimum-current node can be a bridge behind a terminal).
// It returns the removed ids.
func (tg *TileGraph) removeLowCurrent(members []bool, nodeCurrent []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	type cand struct {
		id  int
		cur float64
	}
	var cands []cand
	for id, in := range members {
		if in && !tg.IsTerminal(id) {
			cands = append(cands, cand{id, nodeCurrent[id]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		//lint:ignore floateq sort comparators need exact comparison: an epsilon tie-break is not transitive and breaks strict weak ordering
		if cands[i].cur != cands[j].cur {
			return cands[i].cur < cands[j].cur
		}
		return cands[i].id < cands[j].id
	})
	removed := make([]int, 0, k)
	for _, c := range cands {
		if len(removed) >= k {
			break
		}
		members[c.id] = false
		if tg.terminalsConnected(members) {
			removed = append(removed, c.id)
		} else {
			members[c.id] = true // bridge node: keep it
		}
	}
	return removed
}

// TerminalsConnected reports whether all terminals are mutually reachable
// within the member mask (exported for audits and ablation baselines).
func (tg *TileGraph) TerminalsConnected(members []bool) bool {
	return tg.terminalsConnected(members)
}

// terminalsConnected reports whether all terminals are mutually reachable
// within the member mask.
func (tg *TileGraph) terminalsConnected(members []bool) bool {
	// BFS from the first terminal restricted to members.
	start := tg.Terminals[0]
	if !members[start] {
		return false
	}
	seen := make([]bool, tg.G.N())
	seen[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		tg.G.Neighbors(u, func(v int, w float64) {
			if members[v] && !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		})
	}
	for _, t := range tg.Terminals {
		if !seen[t] {
			return false
		}
	}
	return true
}

// SmartRefine performs one refinement step without cancellation support;
// see SmartRefineCtx.
func (tg *TileGraph) SmartRefine(members []bool, k int, warm *SolveCache) (float64, error) {
	return tg.SmartRefineCtx(context.Background(), members, k, warm)
}

// SmartRefineCtx performs one refinement step (paper Algorithm 5): remove
// the k lowest-current nodes, then re-grow k nodes at the highest-current
// boundary. It returns the change in node count (normally zero) and the
// resistance after the step.
func (tg *TileGraph) SmartRefineCtx(ctx context.Context, members []bool, k int, warm *SolveCache) (float64, error) {
	m, err := tg.NodeCurrentsCtx(ctx, members, warm)
	if err != nil {
		return 0, err
	}
	removed := tg.removeLowCurrent(members, m.NodeCurrent, k)
	obs.Event(ctx, "refine.swap", obs.A("requested", k), obs.A("swapped", len(removed)))
	if len(removed) == 0 {
		return m.Resistance, nil
	}
	// Re-grow exactly as many nodes as were removed (Alg. 5 line 7 calls
	// SmartGrow with k).
	if _, err := tg.SmartGrowCtx(ctx, members, len(removed), warm); err != nil {
		return 0, err
	}
	m2, err := tg.NodeCurrentsCtx(ctx, members, warm)
	if err != nil {
		return 0, err
	}
	return m2.Resistance, nil
}

// Erode erodes to the area budget without cancellation support; see
// ErodeCtx.
func (tg *TileGraph) Erode(members []bool, areaMax int64, batch int, warm *SolveCache) error {
	return tg.ErodeCtx(context.Background(), members, areaMax, batch, warm)
}

// ErodeCtx removes member nodes in ascending current order until the
// member area drops to at most areaMax (the erosion operation of the
// reheating stage, §II-F). It recomputes the node-current metric every
// `batch` removals to track the shifting current distribution.
func (tg *TileGraph) ErodeCtx(ctx context.Context, members []bool, areaMax int64, batch int, warm *SolveCache) error {
	if batch < 1 {
		batch = 1
	}
	tileArea := tg.DX * tg.DY
	for {
		over := tg.MembersArea(members) - areaMax
		if over <= 0 {
			return nil
		}
		m, err := tg.NodeCurrentsCtx(ctx, members, warm)
		if err != nil {
			return err
		}
		// Remove only as many nodes as the excess area requires, capped at
		// the batch size, so erosion lands on the budget instead of
		// undershooting it.
		k := int((over + tileArea - 1) / tileArea)
		if k < 1 {
			k = 1
		}
		if k > batch {
			k = batch
		}
		removed := tg.removeLowCurrent(members, m.NodeCurrent, k)
		obs.Event(ctx, "erode.batch", obs.A("requested", k), obs.A("removed", len(removed)))
		if len(removed) == 0 {
			return nil // nothing removable without disconnecting terminals
		}
	}
}
