package route

import (
	"context"
	"sort"

	"sprout/internal/obs"
)

// SmartGrow grows the subgraph without cancellation support; see
// SmartGrowCtx.
func (tg *TileGraph) SmartGrow(members []bool, k int, warm *SolveCache) ([]int, error) {
	return tg.SmartGrowCtx(context.Background(), members, k, warm)
}

// SmartGrowCtx adds up to k boundary nodes to the member subgraph, choosing
// the candidates adjacent to the members with the highest node current
// (paper Algorithm 4). It returns the ids actually added. The caller is
// responsible for stopping at the area budget.
func (tg *TileGraph) SmartGrowCtx(ctx context.Context, members []bool, k int, warm *SolveCache) ([]int, error) {
	if k <= 0 {
		return nil, nil
	}
	m, err := tg.NodeCurrentsCtx(ctx, members, warm)
	if err != nil {
		return nil, err
	}
	added := tg.growByCurrent(members, m.NodeCurrent, k)
	obs.Event(ctx, "grow.batch", obs.A("requested", k), obs.A("added", len(added)))
	return added, nil
}

// growByCurrent scores every boundary candidate by the summed node current
// of its member neighbours (paper Alg. 4 lines 7-8) and admits the top k.
func (tg *TileGraph) growByCurrent(members []bool, nodeCurrent []float64, k int) []int {
	boundary := tg.G.Boundary(members)
	if len(boundary) == 0 || k <= 0 {
		return nil
	}
	type cand struct {
		id    int
		score float64
	}
	cands := make([]cand, 0, len(boundary))
	for _, c := range boundary {
		score := 0.0
		tg.G.Neighbors(c, func(v int, w float64) {
			if members[v] {
				score += nodeCurrent[v]
			}
		})
		cands = append(cands, cand{c, score})
	}
	sort.Slice(cands, func(i, j int) bool {
		//lint:ignore floateq sort comparators need exact comparison: an epsilon tie-break is not transitive and breaks strict weak ordering
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].id < cands[j].id // deterministic tie-break
	})
	if k > len(cands) {
		k = len(cands)
	}
	added := make([]int, 0, k)
	for _, c := range cands[:k] {
		members[c.id] = true
		added = append(added, c.id)
	}
	return added
}

// Dilate adds the entire boundary to the subgraph (the dilation operation
// of the reheating stage, paper §II-F). It returns the number of nodes
// added.
func (tg *TileGraph) Dilate(members []bool) int {
	boundary := tg.G.Boundary(members)
	for _, id := range boundary {
		members[id] = true
	}
	return len(boundary)
}
