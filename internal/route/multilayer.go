package route

import (
	"context"
	"fmt"
	"sort"

	"sprout/internal/geom"
	"sprout/internal/graph"
	"sprout/internal/obs"
)

// LayerSpace is one layer's available space for a net.
type LayerSpace struct {
	Layer int
	Avail geom.Region
}

// MLTerminal is a terminal pinned to a specific layer for multilayer
// planning (paper Appendix: T_n = {t_1^{l_1}, ..., t_k^{l_k}}).
type MLTerminal struct {
	Name    string
	Layer   int
	Shape   geom.Region
	Current float64
}

// Via is an interlayer connection placed by the multilayer planner.
type Via struct {
	At         geom.Point
	FromLayer  int
	ToLayer    int
	padHalfLen int64
}

// PadHalf returns the half-width of the via land pad.
func (v Via) PadHalf() int64 { return v.padHalfLen }

// ViaPlan is the decomposition of a multilayer routing problem into
// single-layer problems (paper Fig. 13c): the placed vias and, per layer,
// the terminal set (original terminals plus via lands).
type ViaPlan struct {
	Vias     []Via
	PerLayer map[int][]Terminal
}

// PlanMultilayer plans the layer assignment without cancellation or
// tracing support; see PlanMultilayerCtx.
func PlanMultilayer(spaces []LayerSpace, terms []MLTerminal, viaPitch int64, viaCost float64) (*ViaPlan, error) {
	return PlanMultilayerCtx(context.Background(), spaces, terms, viaPitch, viaCost)
}

// PlanMultilayerCtx runs the multilayer planning stage (paper Algorithm 6)
// under its tracing span, annotated with the resulting via count.
func PlanMultilayerCtx(ctx context.Context, spaces []LayerSpace, terms []MLTerminal, viaPitch int64, viaCost float64) (*ViaPlan, error) {
	_, sp, done := stageCtx(ctx, "MultilayerPlan",
		obs.A("layers", len(spaces)), obs.A("terminals", len(terms)))
	defer done()
	plan, err := planMultilayer(spaces, terms, viaPitch, viaCost)
	if err != nil {
		sp.Fail(err)
		return nil, err
	}
	sp.SetAttrs(obs.A("vias", len(plan.Vias)))
	return plan, nil
}

// planMultilayer determines the least-cost layer assignment for a net whose
// terminals cannot be connected within a single layer (paper Algorithm 6).
// It tiles every layer at the via pitch, builds the 3-D graph with
// via edges weighted viaCost (vs. 1 per lateral step), finds shortest
// paths between all terminal pairs, and converts the layer changes into
// vias. Each via becomes a terminal on both layers it joins.
func planMultilayer(spaces []LayerSpace, terms []MLTerminal, viaPitch int64, viaCost float64) (*ViaPlan, error) {
	if len(spaces) == 0 {
		return nil, fmt.Errorf("route: multilayer needs at least one layer space")
	}
	if len(terms) < 2 {
		return nil, fmt.Errorf("route: multilayer needs at least two terminals")
	}
	if viaPitch < 1 {
		return nil, fmt.Errorf("route: via pitch %d must be >= 1", viaPitch)
	}
	if viaCost <= 0 {
		viaCost = 1
	}
	// Sort layers ascending and index them.
	sorted := append([]LayerSpace(nil), spaces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Layer < sorted[j].Layer })
	layerIdx := map[int]int{}
	for i, ls := range sorted {
		if _, dup := layerIdx[ls.Layer]; dup {
			return nil, fmt.Errorf("route: duplicate layer %d", ls.Layer)
		}
		layerIdx[ls.Layer] = i
	}
	for _, t := range terms {
		if _, ok := layerIdx[t.Layer]; !ok {
			return nil, fmt.Errorf("route: terminal %q on layer %d with no available space", t.Name, t.Layer)
		}
	}

	// Tile each layer at the via pitch; cells are whole grid boxes clipped
	// to available space, one node per connected piece.
	type cell struct {
		layer int // index into sorted
		shape geom.Region
	}
	var cells []cell
	// Per layer, map grid box -> node ids.
	grids := make([]map[[2]int64][]int, len(sorted))
	var frame geom.Rect
	for _, ls := range sorted {
		frame = frame.Union(ls.Avail.Bounds())
	}
	for li, ls := range sorted {
		grids[li] = map[[2]int64][]int{}
		if ls.Avail.Empty() {
			continue
		}
		nx := (frame.X1 - frame.X0 + viaPitch - 1) / viaPitch
		ny := (frame.Y1 - frame.Y0 + viaPitch - 1) / viaPitch
		for i := int64(0); i < nx; i++ {
			for j := int64(0); j < ny; j++ {
				box := geom.R(frame.X0+i*viaPitch, frame.Y0+j*viaPitch,
					frame.X0+(i+1)*viaPitch, frame.Y0+(j+1)*viaPitch)
				piece := ls.Avail.IntersectRect(box)
				if piece.Empty() {
					continue
				}
				for _, comp := range piece.Components() {
					grids[li][[2]int64{i, j}] = append(grids[li][[2]int64{i, j}], len(cells))
					cells = append(cells, cell{li, comp})
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("route: no routable space on any layer")
	}

	g := graph.New(len(cells))
	// Lateral edges within a layer.
	for li := range sorted {
		for key, ids := range grids[li] {
			for _, d := range [2][2]int64{{1, 0}, {0, 1}} {
				nkey := [2]int64{key[0] + d[0], key[1] + d[1]}
				for _, a := range ids {
					for _, bid := range grids[li][nkey] {
						if contactLength(cells[a].shape, cells[bid].shape) > 0 {
							_ = g.AddEdge(a, bid, 1)
						}
					}
				}
			}
		}
	}
	// Vertical (via) edges between adjacent layers where cells overlap.
	for li := 0; li+1 < len(sorted); li++ {
		for key, ids := range grids[li] {
			for _, a := range ids {
				for _, bid := range grids[li+1][key] {
					if cells[a].shape.Overlaps(cells[bid].shape) {
						_ = g.AddEdge(a, bid, viaCost)
					}
				}
			}
		}
	}

	// Map terminals onto nodes (first overlapping cell on the terminal's
	// layer, Alg. 6 identifyTerminals).
	termNode := make([]int, len(terms))
	for ti, t := range terms {
		li := layerIdx[t.Layer]
		found := -1
		for id, c := range cells {
			if c.layer == li && c.shape.Overlaps(t.Shape) {
				found = id
				break
			}
		}
		if found == -1 {
			return nil, fmt.Errorf("route: terminal %q overlaps no routable cell on layer %d", t.Name, t.Layer)
		}
		termNode[ti] = found
	}

	// Pairwise shortest paths; collect the via crossings.
	type viaKey struct {
		x, y   int64
		lo, hi int
	}
	viaSet := map[viaKey]bool{}
	for i := 0; i < len(terms); i++ {
		var dsts []int
		for j := i + 1; j < len(terms); j++ {
			dsts = append(dsts, termNode[j])
		}
		if len(dsts) == 0 {
			break
		}
		paths, err := g.ShortestPaths(termNode[i], dsts)
		if err != nil {
			return nil, fmt.Errorf("route: multilayer path from %q: %w", terms[i].Name, err)
		}
		for _, p := range paths {
			for s := 0; s+1 < len(p); s++ {
				a, b := cells[p[s]], cells[p[s+1]]
				if a.layer == b.layer {
					continue
				}
				// Via at the centroid of the overlap.
				ov := a.shape.Intersect(b.shape)
				center := ov.Bounds().Center()
				lo, hi := a.layer, b.layer
				if lo > hi {
					lo, hi = hi, lo
				}
				viaSet[viaKey{center.X, center.Y, lo, hi}] = true
			}
		}
	}

	// Assemble the plan: original terminals plus a via land on each layer
	// the via joins.
	plan := &ViaPlan{PerLayer: map[int][]Terminal{}}
	for _, t := range terms {
		plan.PerLayer[t.Layer] = append(plan.PerLayer[t.Layer], Terminal{
			Name: t.Name, Shape: t.Shape, Current: t.Current,
		})
	}
	keys := make([]viaKey, 0, len(viaSet))
	for k := range viaSet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].lo != keys[j].lo {
			return keys[i].lo < keys[j].lo
		}
		if keys[i].x != keys[j].x {
			return keys[i].x < keys[j].x
		}
		return keys[i].y < keys[j].y
	})
	padHalf := viaPitch / 4
	if padHalf < 1 {
		padHalf = 1
	}
	for vi, k := range keys {
		at := geom.Pt(k.x, k.y)
		v := Via{At: at, FromLayer: sorted[k.lo].Layer, ToLayer: sorted[k.hi].Layer, padHalfLen: padHalf}
		plan.Vias = append(plan.Vias, v)
		land := geom.RegionFromRect(geom.RectAround(at, padHalf))
		for _, layer := range []int{v.FromLayer, v.ToLayer} {
			// A via landing within one pitch of an existing terminal is
			// electrically that terminal's connection point; adding a
			// second terminal in the same routing tile would over-constrain
			// the single-layer pass.
			near := land.Bloat(viaPitch)
			merged := false
			for _, ex := range plan.PerLayer[layer] {
				if near.Overlaps(ex.Shape) {
					merged = true
					break
				}
			}
			if merged {
				continue
			}
			plan.PerLayer[layer] = append(plan.PerLayer[layer], Terminal{
				Name:    fmt.Sprintf("via%d", vi),
				Shape:   land.Intersect(sorted[layerIdx[layer]].Avail),
				Current: 1,
			})
		}
	}
	// Via lands clipped to empty space would break downstream routing.
	for layer, ts := range plan.PerLayer {
		for _, t := range ts {
			if t.Shape.Empty() {
				return nil, fmt.Errorf("route: via land %q empty on layer %d", t.Name, layer)
			}
		}
	}
	return plan, nil
}

// RouteLayer routes one layer of a multilayer plan without cancellation
// support; see RouteLayerCtx.
func RouteLayer(avail geom.Region, terms []Terminal, cfg Config) ([]*Result, error) {
	return RouteLayerCtx(context.Background(), avail, terms, cfg)
}

// RouteLayerCtx routes one layer of a multilayer plan. The available space
// of a layer engaged by vias is typically disjoint (that is why vias were
// needed), so the layer is decomposed into connected components and every
// component holding two or more terminals is routed independently (paper
// Appendix: "the routing process is separately performed on each layer,
// from source to via, between vias, and from via to target"). Components
// with fewer than two terminals need no copper. cfg.AreaMax applies per
// component.
func RouteLayerCtx(ctx context.Context, avail geom.Region, terms []Terminal, cfg Config) ([]*Result, error) {
	comps := avail.Components()
	byComp := make([][]Terminal, len(comps))
	for _, t := range terms {
		placed := false
		for ci, comp := range comps {
			if comp.Overlaps(t.Shape) {
				byComp[ci] = append(byComp[ci], t)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("route: terminal %q overlaps no component of the layer space", t.Name)
		}
	}
	var out []*Result
	for ci, subset := range byComp {
		if len(subset) < 2 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := RouteCtx(ctx, comps[ci], subset, cfg)
		if err != nil {
			return nil, fmt.Errorf("route: component %d: %w", ci, err)
		}
		out = append(out, res)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("route: no component holds two terminals")
	}
	return out, nil
}

// LayersUsed returns the sorted layers that have two or more terminals in
// the plan and therefore need a single-layer routing pass.
func (p *ViaPlan) LayersUsed() []int {
	var out []int
	for layer, ts := range p.PerLayer {
		if len(ts) >= 2 {
			out = append(out, layer)
		}
	}
	sort.Ints(out)
	return out
}
