package route

import (
	"testing"

	"sprout/internal/geom"
)

// twoTerm returns a simple open rectangle space with terminals at the left
// and right edges.
func twoTerm(t *testing.T, w, h, dx int64) (*TileGraph, geom.Region) {
	t.Helper()
	avail := geom.RegionFromRect(geom.R(0, 0, w, h))
	terms := []Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 0, dx, h)), Current: 1},
		{Name: "T", Shape: geom.RegionFromRect(geom.R(w-dx, 0, w, h)), Current: 1},
	}
	tg, err := BuildTileGraph(avail, terms, dx, dx)
	if err != nil {
		t.Fatal(err)
	}
	return tg, avail
}

func TestBuildTileGraphGridCounts(t *testing.T) {
	// 40x20 space, 10x10 tiles -> 4x2 = 8 tiles. Left column (2 tiles)
	// contracts into terminal S, right column into T: 8-2 = 6 nodes.
	tg, _ := twoTerm(t, 40, 20, 10)
	if tg.G.N() != 6 {
		t.Fatalf("nodes = %d, want 6", tg.G.N())
	}
	var total int64
	for _, a := range tg.Area {
		total += a
	}
	if total != 800 {
		t.Fatalf("total tile area = %d, want 800", total)
	}
	if tg.Terminals[0] == tg.Terminals[1] {
		t.Fatal("terminals must be distinct nodes")
	}
}

func TestBuildTileGraphEdgeConductance(t *testing.T) {
	// Two full 10x10 tiles side by side: contact 10, pitch 10 -> g = 1.
	avail := geom.RegionFromRect(geom.R(0, 0, 20, 10))
	terms := []Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 0, 2, 2))},
		{Name: "T", Shape: geom.RegionFromRect(geom.R(18, 0, 20, 2))},
	}
	tg, err := BuildTileGraph(avail, terms, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	edges := tg.G.Edges()
	if len(edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(edges))
	}
	if edges[0].Weight != 1 {
		t.Fatalf("conductance = %g, want 1 (full contact)", edges[0].Weight)
	}
}

func TestBuildTileGraphHalfContact(t *testing.T) {
	// L-shaped space: the contact between the corner tile and its right
	// neighbor is halved (paper Fig. 6: narrower contact, lower weight).
	avail := geom.RegionFromRects([]geom.Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 10}, // full tile A
		{X0: 10, Y0: 0, X1: 20, Y1: 5}, // half-height tile B
	})
	terms := []Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 0, 2, 2))},
		{Name: "T", Shape: geom.RegionFromRect(geom.R(18, 0, 20, 2))},
	}
	tg, err := BuildTileGraph(avail, terms, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	edges := tg.G.Edges()
	if len(edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(edges))
	}
	if edges[0].Weight != 0.5 {
		t.Fatalf("conductance = %g, want 0.5 (half contact)", edges[0].Weight)
	}
}

func TestBuildTileGraphSplitsDisconnectedTilePieces(t *testing.T) {
	// A tile crossed by a full-height slot: the two pieces must become
	// distinct nodes with no conducting edge across the slot.
	avail := geom.RegionFromRect(geom.R(0, 0, 10, 10)).
		Subtract(geom.RegionFromRect(geom.R(4, 0, 6, 10)))
	terms := []Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 0, 2, 2))},
		{Name: "T", Shape: geom.RegionFromRect(geom.R(8, 0, 10, 2))},
	}
	tg, err := BuildTileGraph(avail, terms, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tg.G.N() != 2 {
		t.Fatalf("nodes = %d, want 2 pieces", tg.G.N())
	}
	if tg.G.M() != 0 {
		t.Fatalf("edges = %d, want 0 (slot must break conduction)", tg.G.M())
	}
}

func TestBuildTileGraphTerminalContraction(t *testing.T) {
	// A terminal spanning multiple tiles becomes one node whose cell is
	// the union (paper Fig. 7).
	avail := geom.RegionFromRect(geom.R(0, 0, 40, 10))
	terms := []Terminal{
		{Name: "S", Shape: geom.RegionFromRect(geom.R(0, 0, 25, 10))}, // covers 3 tiles
		{Name: "T", Shape: geom.RegionFromRect(geom.R(38, 0, 40, 10))},
	}
	tg, err := BuildTileGraph(avail, terms, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tg.G.N() != 2 {
		t.Fatalf("nodes = %d, want 2 (3 tiles contracted + 1)", tg.G.N())
	}
	s := tg.Terminals[0]
	if tg.Area[s] != 300 {
		t.Fatalf("contracted terminal area = %d, want 300", tg.Area[s])
	}
}

func TestBuildTileGraphErrors(t *testing.T) {
	avail := geom.RegionFromRect(geom.R(0, 0, 20, 10))
	padS := geom.RegionFromRect(geom.R(0, 0, 2, 2))
	padT := geom.RegionFromRect(geom.R(18, 0, 20, 2))
	if _, err := BuildTileGraph(avail, []Terminal{{Name: "S", Shape: padS}}, 10, 10); err == nil {
		t.Fatal("one terminal must error")
	}
	if _, err := BuildTileGraph(avail, []Terminal{{Name: "S", Shape: padS}, {Name: "T", Shape: padT}}, 0, 10); err == nil {
		t.Fatal("zero tile size must error")
	}
	if _, err := BuildTileGraph(geom.EmptyRegion(), []Terminal{{Name: "S", Shape: padS}, {Name: "T", Shape: padT}}, 10, 10); err == nil {
		t.Fatal("empty space must error")
	}
	// Terminal outside the space.
	out := geom.RegionFromRect(geom.R(100, 100, 110, 110))
	if _, err := BuildTileGraph(avail, []Terminal{{Name: "S", Shape: padS}, {Name: "X", Shape: out}}, 10, 10); err == nil {
		t.Fatal("unroutable terminal must error")
	}
	// Two terminals sharing a tile.
	padT2 := geom.RegionFromRect(geom.R(3, 3, 5, 5))
	if _, err := BuildTileGraph(avail, []Terminal{{Name: "S", Shape: padS}, {Name: "T", Shape: padT2}}, 10, 10); err == nil {
		t.Fatal("terminals sharing a tile must error")
	}
	// Empty terminal shape.
	if _, err := BuildTileGraph(avail, []Terminal{{Name: "S", Shape: padS}, {Name: "T", Shape: geom.EmptyRegion()}}, 10, 10); err == nil {
		t.Fatal("empty terminal shape must error")
	}
}

func TestCostGraphReciprocal(t *testing.T) {
	tg, _ := twoTerm(t, 40, 20, 10)
	cost := tg.CostGraph()
	for _, e := range cost.Edges() {
		orig := 0.0
		tg.G.Neighbors(e.U, func(v int, w float64) {
			if v == e.V {
				orig = w
			}
		})
		if orig == 0 {
			t.Fatalf("cost edge (%d,%d) missing in conductance graph", e.U, e.V)
		}
		if e.Weight != 1/orig {
			t.Fatalf("cost = %g, want %g", e.Weight, 1/orig)
		}
	}
}

func TestUnionAndMembersArea(t *testing.T) {
	tg, avail := twoTerm(t, 40, 20, 10)
	all := make([]bool, tg.G.N())
	for i := range all {
		all[i] = true
	}
	if !tg.Union(all).Equal(avail) {
		t.Fatal("union of all cells must equal the available space")
	}
	if tg.MembersArea(all) != avail.Area() {
		t.Fatal("members area of full mask must equal space area")
	}
	none := make([]bool, tg.G.N())
	if !tg.Union(none).Empty() || tg.MembersArea(none) != 0 {
		t.Fatal("empty mask must give empty union")
	}
	if MemberCount(all) != tg.G.N() || MemberCount(none) != 0 {
		t.Fatal("member count")
	}
}

func TestIsTerminal(t *testing.T) {
	tg, _ := twoTerm(t, 40, 20, 10)
	for _, term := range tg.Terminals {
		if !tg.IsTerminal(term) {
			t.Fatalf("node %d should be terminal", term)
		}
	}
	count := 0
	for id := 0; id < tg.G.N(); id++ {
		if tg.IsTerminal(id) {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("terminal count = %d, want 2", count)
	}
}

func TestContactLength(t *testing.T) {
	a := geom.RegionFromRect(geom.R(0, 0, 10, 10))
	b := geom.RegionFromRect(geom.R(10, 2, 20, 8))
	if got := contactLength(a, b); got != 6 {
		t.Fatalf("contact = %d, want 6", got)
	}
	c := geom.RegionFromRect(geom.R(10, 10, 20, 20)) // corner touch
	if got := contactLength(a, c); got != 0 {
		t.Fatalf("corner contact = %d, want 0", got)
	}
	d := geom.RegionFromRect(geom.R(30, 0, 40, 10)) // far away
	if got := contactLength(a, d); got != 0 {
		t.Fatalf("distant contact = %d, want 0", got)
	}
}
